(* Quickstart: Byzantine consensus among nodes that know neither how many
   peers exist nor how many may be faulty.

   Seven correct replicas of a configuration service disagree about a
   proposed configuration version; two compromised replicas equivocate.
   Nobody is configured with n = 9 or f = 2 — each node knows only its own
   identifier — yet Algorithm 3 drives every correct replica to the same
   decision in O(f) rounds.

     dune exec examples/quickstart.exe *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba

(* The consensus protocol is a functor over the opinion type. *)
module Consensus = Consensus.Make (Value.Int)
module Net = Network.Make (Consensus)
module Attacks = Ubpa_adversary.Consensus_attacks.Make (Value.Int)

let () =
  (* Identifiers are unique but *not* consecutive — the id-only model. *)
  let ids = Node_id.scatter ~seed:2024L 9 in
  let correct_ids = List.filteri (fun i _ -> i < 7) ids in
  let byz_ids = List.filteri (fun i _ -> i >= 7) ids in

  (* Four replicas propose version 1, three propose version 2. *)
  let proposals = [ 1; 1; 1; 1; 2; 2; 2 ] in
  let correct = List.combine correct_ids proposals in

  (* The compromised replicas tell half the network "1" and the other half
     "2", at every step of the protocol. *)
  let byzantine =
    List.map (fun id -> (id, Attacks.split_world 1 2)) byz_ids
  in

  Fmt.pr "Cluster of %d replicas (%d compromised), nobody knows n or f.@."
    (List.length ids) (List.length byz_ids);
  List.iter2
    (fun id v -> Fmt.pr "  replica %a proposes version %d@." Node_id.pp id v)
    correct_ids proposals;

  let net = Net.create ~seed:7L ~correct ~byzantine () in
  (match Net.run net with
  | `All_halted -> ()
  | `Max_rounds_reached _ -> failwith "consensus did not terminate"
  | `No_correct_nodes -> assert false);

  Fmt.pr "@.After %d synchronous rounds:@." (Net.round net);
  List.iter
    (fun (id, version) ->
      Fmt.pr "  replica %a decided version %d@." Node_id.pp id version)
    (Net.outputs net);

  let decisions = List.map snd (Net.outputs net) |> List.sort_uniq compare in
  match decisions with
  | [ v ] -> Fmt.pr "@.Agreement: every correct replica decided version %d.@." v
  | _ -> failwith "correct replicas disagreed — this must never happen"
