(* Clock synchronization by repeated approximate agreement — the classic
   application of Algorithm 4 (the paper cites Welch-Lynch clock sync as a
   use of approximate agreement).

   Eight nodes carry hardware clocks that drift apart by up to ±2 time
   units per epoch. Every epoch they run one round of approximate
   agreement on their clock readings and adopt the output. Two byzantine
   nodes report absurd clock values, pulling in opposite directions.
   Because each agreement round halves the correct skew while drift adds
   at most a constant, the skew converges to a small steady band instead
   of growing without bound — without anyone knowing how many clocks
   exist or how many are lying.

     dune exec examples/clock_sync.exe *)

open Ubpa_util
open Ubpa_scenarios

let () =
  let n_correct = 8 in
  let drift_per_epoch = 2.0 in
  let epochs = 12 in
  let rng = Rng.create 2026L in

  (* Initial clocks: badly desynchronized. *)
  let clocks =
    Array.init n_correct (fun i -> 100.0 +. (3.0 *. float_of_int i))
  in
  let skew () =
    let lo, hi = Stats.min_max (Array.to_list clocks) in
    hi -. lo
  in

  Fmt.pr "epoch  skew-before  skew-after-sync@.";
  Fmt.pr "-----  -----------  ---------------@.";
  for epoch = 1 to epochs do
    (* Hardware drift. *)
    Array.iteri
      (fun i c ->
        clocks.(i) <-
          c +. 10.0 (* time passes *)
          +. Rng.float rng (2. *. drift_per_epoch)
          -. drift_per_epoch)
      clocks;
    let before = skew () in
    (* One-shot approximate agreement on the readings; byzantine nodes
       report -10^6 / +10^6. *)
    let s =
      Scenarios.Aa.run
        ~seed:(Int64.of_int (1000 + epoch))
        ~byz:
          [
            Ubpa_adversary.Aa_attacks.pull_apart ~low:(-1e6) ~high:1e6;
            Ubpa_adversary.Aa_attacks.outlier 1e6;
          ]
        ~n_correct
        ~inputs:(fun i -> clocks.(i))
        ()
    in
    List.iteri
      (fun i (_, v) -> clocks.(i) <- v)
      s.Scenarios.Aa.outputs;
    Fmt.pr "%5d  %11.3f  %15.3f@." epoch before (skew ());
    assert (s.Scenarios.Aa.within_range)
  done;

  let final = skew () in
  Fmt.pr "@.Final skew %.3f (started at %.1f, drift ±%.1f per epoch).@."
    final
    (3.0 *. float_of_int (n_correct - 1))
    drift_per_epoch;
  (* Steady state: the skew stays below the drift bound's fixed point
     (drift accumulates 2d per epoch, halving gives fixed point ~4d). *)
  assert (final <= 4.0 *. drift_per_epoch)
