(* Sensor fusion in a wireless sensor network with a changing population —
   one of the motivating settings of the paper's introduction.

   Ten temperature sensors hold noisy readings; three are malfunctioning
   (Byzantine) and actively pull the network apart with extreme values.
   The sensors iterate approximate agreement (Algorithm 4): every round
   each sensor broadcasts its estimate, trims the ⌊n_v/3⌋ most extreme
   received values — without knowing how many sensors exist or how many are
   broken — and moves to the midpoint. A fresh sensor joins mid-run and
   integrates seamlessly, because nothing in the protocol depends on a
   membership count.

     dune exec examples/sensor_fusion.exe *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba

module Net = Network.Make (Approx_agreement)

let () =
  let iterations = 8 in
  let ids = Node_id.scatter ~seed:99L 14 in
  let sensor_ids = List.filteri (fun i _ -> i < 10) ids in
  let byz_ids = List.filteri (fun i _ -> i >= 10 && i < 13) ids in
  let late_id = List.nth ids 13 in

  (* True temperature is ~21.5C; sensors read it with offsets. *)
  let readings = [ 20.9; 21.2; 21.4; 21.5; 21.5; 21.6; 21.7; 21.9; 22.1; 22.4 ] in
  let correct =
    List.map2
      (fun id value -> (id, { Approx_agreement.value; iterations }))
      sensor_ids readings
  in
  let byzantine =
    List.map
      (fun id ->
        (id, Ubpa_adversary.Aa_attacks.pull_apart ~low:(-40.) ~high:95.))
      byz_ids
  in

  Fmt.pr "10 sensors, readings %.1f..%.1fC; 3 byzantine sensors feeding -40/95C.@."
    (List.nth readings 0)
    (List.nth readings 9);

  let net = Net.create ~seed:5L ~correct ~byzantine () in

  (* Two rounds in, a new sensor is switched on with a fresh reading. *)
  Net.step_round net;
  Net.step_round net;
  Fmt.pr "round 3: sensor %a joins with reading 21.0C@." Node_id.pp late_id;
  Net.join_correct net late_id
    { Approx_agreement.value = 21.0; iterations = iterations - 2 };

  (match Net.run net with
  | `All_halted -> ()
  | `Max_rounds_reached _ -> failwith "sensors did not converge"
  | `No_correct_nodes -> assert false);

  Fmt.pr "@.After %d iterations:@." iterations;
  let estimates =
    List.map
      (fun (id, (p : Approx_agreement.progress)) ->
        Fmt.pr "  sensor %a converged to %.4fC (saw %d values)@." Node_id.pp id
          p.estimate p.n_v;
        p.estimate)
      (Net.outputs net)
  in
  let lo, hi = Stats.min_max estimates in
  Fmt.pr "@.Spread of fused estimates: %.5fC (inputs spanned %.1fC)@."
    (hi -. lo) (22.4 -. 20.9);
  assert (lo >= 20.9 && hi <= 22.4)
