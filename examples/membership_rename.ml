(* Byzantine renaming: turning sparse 30-bit node identifiers into dense
   slot numbers 1..n — e.g. to index a static shard table — without anyone
   knowing n, and despite Byzantine members (appendix of the paper).

     dune exec examples/membership_rename.exe *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba

module Net = Network.Make (Renaming)

let () =
  let ids = Node_id.scatter ~seed:77L 8 in
  let correct_ids = List.filteri (fun i _ -> i < 6) ids in
  let byz_ids = List.filteri (fun i _ -> i >= 6) ids in

  Fmt.pr "6 correct nodes with sparse identifiers:@.";
  List.iter (fun id -> Fmt.pr "  %a@." Node_id.pp id) correct_ids;
  Fmt.pr "2 byzantine nodes mirror traffic to look legitimate.@.";

  let correct = List.map (fun id -> (id, ())) correct_ids in
  let byzantine =
    List.map (fun id -> (id, Ubpa_adversary.Generic.mirror)) byz_ids
  in
  let net = Net.create ~seed:3L ~correct ~byzantine () in
  (match Net.run net with
  | `All_halted -> ()
  | `Max_rounds_reached _ -> failwith "renaming did not terminate"
  | `No_correct_nodes -> assert false);

  Fmt.pr "@.After %d rounds every node agrees on the slot table:@."
    (Net.round net);
  (match Net.outputs net with
  | (_, (first : Renaming.output)) :: rest ->
      List.iter
        (fun (id, slot) -> Fmt.pr "  slot %d <- %a@." slot Node_id.pp id)
        first.names;
      (* Consistency: all nodes computed the same table. *)
      List.iter
        (fun (_, (o : Renaming.output)) -> assert (o.names = first.names))
        rest;
      Fmt.pr "@.Each node also knows its own slot:@.";
      List.iter
        (fun (id, (o : Renaming.output)) ->
          Fmt.pr "  %a -> slot %d@." Node_id.pp id o.my_name)
        (Net.outputs net)
  | [] -> failwith "no outputs");
  Fmt.pr "@.Renaming is consistent across the cluster.@."
