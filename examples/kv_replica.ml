(* A replicated key-value store on top of the dynamic total-ordering
   protocol: state machine replication without knowing the cluster size.

   Each replica receives client commands ("SET k v" / "DEL k") through its
   local API, submits them as events, and applies the *agreed chain* — not
   its local submission order — to its copy of the store. Because every
   correct replica's chain is a prefix of every other's, the stores never
   diverge, even though clients talk to different replicas and replicas
   never learn how many peers exist.

     dune exec examples/kv_replica.exe *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba

module Order = Total_order.Make (Value.String)
module Net = Network.Make (Order)

(* --- the state machine --- *)

module Store = Map.Make (String)

let apply store command =
  match String.split_on_char ' ' command with
  | [ "SET"; k; v ] -> Store.add k v store
  | [ "DEL"; k ] -> Store.remove k store
  | _ -> store (* unknown commands are ignored deterministically *)

let replay chain =
  List.fold_left
    (fun store (e : Order.chain_entry) -> apply store e.event)
    Store.empty chain

let pp_store ppf store =
  let bindings = Store.bindings store in
  if bindings = [] then Fmt.string ppf "(empty)"
  else
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string string)) ppf bindings

(* --- the cluster --- *)

let () =
  let replicas = Node_id.scatter ~seed:123L 4 in

  (* Clients issue commands against different replicas over time. *)
  let commands =
    [
      (1, 0, "SET user alice");
      (2, 1, "SET balance 100");
      (3, 2, "SET balance 75");
      (4, 3, "SET city zurich");
      (5, 0, "DEL user");
      (6, 1, "SET balance 90");
      (7, 2, "SET user bob");
    ]
  in
  let stimulus ~round id =
    List.filter_map
      (fun (r, replica, cmd) ->
        if r = round && Node_id.equal id (List.nth replicas replica) then
          Some (Order.Witness cmd)
        else None)
      commands
  in

  let correct = List.map (fun id -> (id, Order.Genesis)) replicas in
  let net = Net.create ~seed:19L ~stimulus ~correct ~byzantine:[] () in

  Fmt.pr "4 replicas, 7 commands submitted through different replicas.@.";
  for _ = 1 to 55 do
    Net.step_round net
  done;

  let stores =
    List.map
      (fun (id, (o : Order.chain_output)) -> (id, replay o.chain, o.chain))
      (Net.outputs net)
  in
  Fmt.pr "@.Agreed command log (replica %a's view):@." Node_id.pp
    (fst (List.hd (Net.outputs net)));
  (match stores with
  | (_, _, chain) :: _ ->
      List.iteri
        (fun i (e : Order.chain_entry) ->
          Fmt.pr "  %d. %s@." (i + 1) e.event)
        chain
  | [] -> ());

  Fmt.pr "@.Replica states after replay:@.";
  List.iter
    (fun (id, store, _) ->
      Fmt.pr "  %a: %a@." Node_id.pp id pp_store store)
    stores;

  (* All stores must be identical. *)
  (match stores with
  | (_, first, _) :: rest ->
      List.iter
        (fun (_, store, _) ->
          assert (Store.equal String.equal store first))
        rest
  | [] -> assert false);
  Fmt.pr "@.All replicas converged to the same state.@."
