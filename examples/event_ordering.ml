(* Permissionless-style total ordering of events — the blockchain-flavoured
   application from the paper's Section "Application to Dynamic Networks".

   A set of participants observes client transactions and must agree on one
   global order without anyone knowing the network size (participants come
   and go). Every logical round starts a parallel-consensus group over the
   events witnessed in the previous round; once a round is old enough
   (r - r' > 5|S|/2 + 2) its group's outputs are final and appended to the
   chain. The chains at any two correct participants are always prefixes of
   one another.

     dune exec examples/event_ordering.exe *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba

module Order = Total_order.Make (Value.String)
module Net = Network.Make (Order)

let () =
  let ids = Node_id.scatter ~seed:404L 5 in
  let genesis = List.filteri (fun i _ -> i < 4) ids in
  let joiner = List.nth ids 4 in

  (* Transactions submitted by clients over the first 8 rounds. *)
  let tx_schedule =
    [
      (1, 0, "alice->bob:5");
      (2, 1, "bob->carol:2");
      (3, 2, "carol->dave:9");
      (4, 3, "dave->alice:1");
      (5, 0, "alice->carol:3");
      (6, 1, "bob->dave:7");
      (7, 2, "carol->alice:4");
      (8, 3, "dave->bob:6");
    ]
  in
  let stimulus ~round id =
    List.filter_map
      (fun (r, holder, tx) ->
        if r = round && Node_id.equal id (List.nth genesis holder) then
          Some (Order.Witness tx)
        else None)
      tx_schedule
  in

  let correct = List.map (fun id -> (id, Order.Genesis)) genesis in
  let net = Net.create ~seed:11L ~stimulus ~correct ~byzantine:[] () in

  Fmt.pr "4 genesis participants ordering 8 transactions; 1 node joins at round 6.@.";
  for r = 1 to 60 do
    if r = 6 then begin
      Fmt.pr "round 6: participant %a joins the network@." Node_id.pp joiner;
      Net.join_correct net joiner Order.Joiner
    end;
    Net.step_round net
  done;

  Fmt.pr "@.Chains after %d rounds:@." (Net.round net);
  let chains =
    List.map
      (fun (id, (o : Order.chain_output)) ->
        Fmt.pr "  %a (frontier r%d): %d entries@." Node_id.pp id o.frontier
          (List.length o.chain);
        (id, o.chain))
      (Net.outputs net)
  in
  (* Print the longest chain as the agreed ledger. *)
  let _, longest =
    List.fold_left
      (fun (len, best) (_, c) ->
        if List.length c > len then (List.length c, c) else (len, best))
      (-1, []) chains
  in
  Fmt.pr "@.The ledger:@.";
  List.iteri
    (fun i (e : Order.chain_entry) ->
      Fmt.pr "  %2d. [round %d] %s (witnessed by %a)@." (i + 1) e.group
        e.event Node_id.pp e.origin)
    longest;
  (* Chain-prefix: every participant's chain is a prefix of the ledger
     (modulo its own first group, for the joiner). *)
  List.iter
    (fun (_, chain) ->
      match chain with
      | [] -> ()
      | (first : Order.chain_entry) :: _ ->
          let suffix =
            List.filter
              (fun (e : Order.chain_entry) -> e.group >= first.group)
              longest
          in
          let rec prefix a b =
            match (a, b) with
            | [], _ -> true
            | x :: xs, y :: ys -> x = y && prefix xs ys
            | _ -> false
          in
          assert (prefix chain suffix))
    chains;
  Fmt.pr "@.chain-prefix verified across all participants.@."
