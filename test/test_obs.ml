(* Wire-level observability: sizing pins, wire-counter accounting, and the
   cross-core differential.

   The structural sizes pinned here are load-bearing: encoded_bits feeds
   the committed CX1 baseline, so a change in the wire-encoding model
   shows up as a baseline diff AND as a failure here, with the test naming
   the constant that moved. *)

open Ubpa_util
open Ubpa_sim
open Ubpa_obs
open Helpers

let id i = Node_id.of_int i

(* ----- structural sizing model ----- *)

let test_sizing_primitives () =
  check_int "int is one word" 64 (Sizing.structural_bits 42);
  check_int "unit is immediate" 64 (Sizing.structural_bits ());
  check_int "bool is immediate" 64 (Sizing.structural_bits true);
  check_int "string: word + 8 bits/byte" (64 + 24) (Sizing.structural_bits "abc");
  check_int "empty string is just the header" 64 (Sizing.structural_bits "");
  check_int "float box: tag + word" (8 + 64) (Sizing.structural_bits 1.5);
  check_int "pair: tag + 2 words" (8 + 128) (Sizing.structural_bits (1, 2));
  check_int "None is immediate" 64 (Sizing.structural_bits None);
  check_int "Some int: tag + word" (8 + 64) (Sizing.structural_bits (Some 1));
  check_int "two-cons list" 208 (Sizing.structural_bits [ 1; 2 ]);
  check_int "float array: header + payload" (64 + 128)
    (Sizing.structural_bits [| 1.0; 2.0 |])

let test_sizing_monotone_in_payload () =
  (* A protocol embedding a bigger value must never get cheaper. *)
  check_true "longer string costs more"
    (Sizing.structural_bits "long payload" > Sizing.structural_bits "p")

(* ----- per-protocol encoded_bits pins ----- *)

let test_encoded_bits_consensus_core () =
  let module C = Unknown_ba.Consensus_core.Make (Unknown_ba.Value.Int) in
  check_int "Init is an immediate constructor" 64 (C.encoded_bits C.Init);
  check_int "Input carries one word" (8 + 64) (C.encoded_bits (C.Input 5));
  check_int "Cand_echo carries a node id" (8 + 64)
    (C.encoded_bits (C.Cand_echo (id 7)));
  check_int "Prefer and Strongprefer price identically"
    (C.encoded_bits (C.Prefer 1))
    (C.encoded_bits (C.Strongprefer 1))

let test_encoded_bits_binary_consensus () =
  let module B = Unknown_ba.Binary_consensus in
  (* The hand-written sizer: 3 tag bits, 1 bit per vote — deliberately far
     below the structural default, which would price a bool at a word. *)
  check_int "Init" 3 (B.encoded_bits B.Init);
  check_int "Input is tag + 1 vote bit" 4 (B.encoded_bits (B.Input true));
  check_int "Support is tag + 1 vote bit" 4 (B.encoded_bits (B.Support false));
  check_int "Opinion is tag + 1 vote bit" 4 (B.encoded_bits (B.Opinion true));
  check_int "Cand_echo is tag + an id word" 67
    (B.encoded_bits (B.Cand_echo (id 3)));
  check_true "sizer undercuts the structural default"
    (B.encoded_bits (B.Input true)
    < Protocol.structural_bits (B.Input true))

let test_encoded_bits_structural_protocols () =
  (* Structural protocols must agree with the sizing module verbatim. *)
  let module R = Unknown_ba.Reliable_broadcast.Make (Unknown_ba.Value.String) in
  let m = R.inject (R.Payload "hello") in
  check_int "RB inherits the structural sizer"
    (Protocol.structural_bits m) (R.encoded_bits m)

(* ----- wire counters ----- *)

let fill_wire w =
  Wire.record w ~round:1 ~sender:(id 0) ~recipient:(id 1) ~kind:"echo" ~bits:72;
  Wire.record w ~round:1 ~sender:(id 0) ~recipient:(id 2) ~kind:"echo" ~bits:72;
  Wire.record w ~round:2 ~sender:(id 2) ~recipient:(id 1) ~kind:"vote" ~bits:4;
  w

let test_wire_accumulates () =
  let w = fill_wire (Wire.create ()) in
  check_int "messages" 3 (Wire.messages w);
  check_int "bits" 148 (Wire.bits w);
  check_int "rounds tracked" 2 (List.length (Wire.per_round w));
  check_int "nodes tracked" 2 (List.length (Wire.per_node w));
  (match List.assoc_opt "echo" (Wire.per_kind w) with
  | Some c -> check_int "echo bits" 144 c.Wire.bits
  | None -> Alcotest.fail "no echo kind");
  check_true "equal to itself" (Wire.equal w (fill_wire (Wire.create ())));
  check_false "fresh wire differs" (Wire.equal w (Wire.create ()))

let test_wire_json_roundtrip () =
  let w = fill_wire (Wire.create ()) in
  match Wire.of_json (Wire.to_json w) with
  | Ok w' -> check_true "wire round-trips" (Wire.equal w w')
  | Error msg -> Alcotest.fail msg

(* ----- complexity fits ----- *)

let test_fit_quadratic_holds () =
  let pts = List.map (fun n -> (n, float_of_int (3 * n * n))) [ 5; 9; 13 ] in
  let f = Complexity.fit ~name:"q" ~exponent:2 pts in
  check_true "holds" f.Complexity.holds;
  check_true "constant calibrated on the smallest n"
    (Float.abs (f.Complexity.constant -. 3.) < 1e-9);
  check_true "slope near 2" (Float.abs (f.Complexity.slope -. 2.) < 0.05)

let test_fit_rejects_cubic_against_quadratic () =
  let pts = List.map (fun n -> (n, float_of_int (n * n * n))) [ 5; 9; 13; 21 ] in
  let f = Complexity.fit ~name:"c" ~exponent:2 pts in
  check_false "cubic growth breaks an n^2 envelope" f.Complexity.holds

let test_fit_headroom_absorbs_constants () =
  (* Same exponent, noisy constant within headroom: still holds. *)
  let pts = [ (5, 80.); (9, 243.); (13, 530.) ] in
  let f = Complexity.fit ~name:"n2" ~exponent:2 pts in
  check_true "within 2x headroom of the calibrated envelope"
    f.Complexity.holds

let test_fit_json_roundtrip () =
  let f =
    Complexity.fit ~name:"rt" ~exponent:3
      [ (5, 125.); (9, 729.); (13, 2197.) ]
  in
  match Complexity.of_json (Complexity.to_json f) with
  | Ok f' -> check_true "fit round-trips" (f = f')
  | Error msg -> Alcotest.fail msg

(* ----- cross-core wire differential ----- *)

(* Same randomized traffic shape as the delivery differential, but the
   property under test is the on_deliver stream: both cores must report
   the identical wire multiset — totals, per round, per node, per kind. *)
let random_traffic rng =
  let universe = 2 + Rng.int rng 9 in
  let ids = List.init universe id in
  let present =
    List.filter (fun _ -> Rng.int rng 4 > 0) ids |> Node_id.Set.of_list
  in
  let n_msgs = Rng.int rng 60 in
  let envelopes =
    List.concat_map
      (fun _ ->
        let src = Rng.pick rng ids in
        let payload = Rng.int rng 5 in
        let env =
          if Rng.bool rng then Envelope.broadcast ~src payload
          else Envelope.send ~src ~dst:(Rng.pick rng ids) payload
        in
        if Rng.int rng 4 = 0 then [ env; env ] else [ env ])
      (List.init n_msgs Fun.id)
  in
  (present, envelopes)

let wire_of_route routefn ~present ~envelopes =
  let w = Wire.create () in
  let on_deliver ~recipient ~src payload =
    Wire.record w ~round:1 ~sender:src ~recipient
      ~kind:(Printf.sprintf "k%d" (payload mod 3))
      ~bits:(Sizing.structural_bits payload)
  in
  let _, count = routefn ~on_deliver ~present ~envelopes in
  (w, count)

let prop_wire_cross_core_identity =
  QCheck2.Test.make ~count:120
    ~name:"wire counters: indexed core == reference core on random traffic"
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let present, envelopes = random_traffic rng in
      let w_ref, c_ref =
        wire_of_route
          (fun ~on_deliver ~present ~envelopes ->
            Delivery.route_reference ~on_deliver ~equal:Int.equal ~present
              ~envelopes ())
          ~present ~envelopes
      in
      let w_idx, c_idx =
        wire_of_route
          (fun ~on_deliver ~present ~envelopes ->
            Delivery.route_indexed ~on_deliver ~interner:None ~equal:Int.equal
              ~present ~envelopes ())
          ~present ~envelopes
      in
      c_ref = c_idx
      && Wire.equal w_ref w_idx
      && Wire.messages w_ref = c_ref)

let test_on_deliver_matches_count () =
  (* The hook fires exactly once per counted delivery. *)
  let rng = Rng.create 0xB17C0DEL in
  for _ = 1 to 25 do
    let present, envelopes = random_traffic rng in
    let w, count =
      wire_of_route
        (fun ~on_deliver ~present ~envelopes ->
          Delivery.route ~on_deliver ~interner:None ~impl:Delivery.Indexed
            ~equal:Int.equal ~present ~envelopes ())
        ~present ~envelopes
    in
    check_int "hook fired once per delivery" count (Wire.messages w)
  done

let suite =
  ( "obs",
    [
      quick "sizing: primitive pins" test_sizing_primitives;
      quick "sizing: monotone in payload" test_sizing_monotone_in_payload;
      quick "encoded_bits: consensus core" test_encoded_bits_consensus_core;
      quick "encoded_bits: binary consensus sizer"
        test_encoded_bits_binary_consensus;
      quick "encoded_bits: structural protocols"
        test_encoded_bits_structural_protocols;
      quick "wire: accumulates and compares" test_wire_accumulates;
      quick "wire: json round-trip" test_wire_json_roundtrip;
      quick "complexity: quadratic fit holds" test_fit_quadratic_holds;
      quick "complexity: wrong exponent rejected"
        test_fit_rejects_cubic_against_quadratic;
      quick "complexity: headroom absorbs constants"
        test_fit_headroom_absorbs_constants;
      quick "complexity: json round-trip" test_fit_json_roundtrip;
      quick "on_deliver fires once per delivery" test_on_deliver_matches_count;
    ]
    @ qcheck_cases [ prop_wire_cross_core_identity ] )
