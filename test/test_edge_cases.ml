(** Degenerate and stress configurations: the algorithms must behave at
    n = 1..3 (f = 0) and at the largest sizes the suite exercises. *)

open Ubpa_sim
open Ubpa_scenarios
open Helpers

(* ----- tiny networks ----- *)

let test_consensus_singleton () =
  let s = Scenarios.Consensus_int.run ~n_correct:1 ~inputs:(fun _ -> 5) () in
  check_true "terminated" s.Scenarios.Consensus_int.all_terminated;
  check_true "agreed" s.Scenarios.Consensus_int.agreed;
  List.iter
    (fun (_, v) -> check_int "decides own input" 5 v)
    s.Scenarios.Consensus_int.outputs

let test_consensus_pair_and_triple () =
  List.iter
    (fun n ->
      let s =
        Scenarios.Consensus_int.run ~n_correct:n ~inputs:binary_split ()
      in
      check_true
        (Printf.sprintf "n=%d agreed" n)
        (s.Scenarios.Consensus_int.all_terminated
        && s.Scenarios.Consensus_int.agreed))
    [ 2; 3 ]

let test_rb_singleton () =
  let s = Scenarios.Rb.run ~n_correct:1 ~payload:"solo" () in
  check_true "accepts own broadcast" s.Scenarios.Rb.all_accepted_sender_payload;
  check_int "in round 3" 3 s.Scenarios.Rb.max_accept_round

let test_rotor_singleton () =
  let s = Scenarios.Rotor_int.run ~n_correct:1 () in
  check_true "terminated" s.Scenarios.Rotor_int.all_terminated;
  (* The single node selects itself once, then the index wraps. *)
  match s.Scenarios.Rotor_int.outputs with
  | [ (_, o) ] -> check_int "one selection" 1 (List.length o.Scenarios.Rotor_int.P.selections)
  | _ -> Alcotest.fail "expected one output"

let test_aa_singleton () =
  let s = Scenarios.Aa.run ~n_correct:1 ~inputs:(fun _ -> 9.5) () in
  check_true "within" s.Scenarios.Aa.within_range;
  List.iter
    (fun (_, v) -> Alcotest.(check (float 1e-9)) "keeps own value" 9.5 v)
    s.Scenarios.Aa.outputs

let test_renaming_singleton () =
  let s = Scenarios.Renaming_run.run ~n_correct:1 () in
  check_true "terminated" s.Scenarios.Renaming_run.all_terminated;
  List.iter
    (fun (_, (o : Unknown_ba.Renaming.output)) ->
      check_int "name 1" 1 o.my_name)
    s.Scenarios.Renaming_run.outputs

let test_binary_pair () =
  let s = Scenarios.Binary.run ~n_correct:2 ~inputs:(fun i -> i = 0) () in
  check_true "terminated+agreed"
    (s.Scenarios.Binary.all_terminated && s.Scenarios.Binary.agreed)

(* ----- stress ----- *)

let test_consensus_stress_mixed_adversaries () =
  let module A = Scenarios.Consensus_int.Attacks in
  let byz =
    [
      A.split_world 0 1;
      A.split_world 1 0;
      A.stubborn 9;
      A.half_stubborn 0;
      A.silent_member;
      Ubpa_adversary.Generic.spam;
      Ubpa_adversary.Generic.random_mix;
      Ubpa_adversary.Generic.split_mirror;
      Ubpa_adversary.Generic.replay ~delay:3;
      Ubpa_adversary.Combinators.merge
        [ A.stubborn 3; Ubpa_adversary.Generic.mirror ];
      Ubpa_adversary.Combinators.switch_at ~round:9 Strategy.silent
        (A.split_world 0 1);
      Ubpa_adversary.Combinators.with_probability 0.7 (A.half_stubborn 1);
      Strategy.silent;
    ]
  in
  (* n = 40, f = 13 = max_f: the heaviest single consensus run in the
     suite, under a 13-strategy zoo. *)
  let s =
    Scenarios.Consensus_int.run ~byz ~n_correct:27 ~inputs:binary_split ()
  in
  check_true "agreement at n=40 under a 13-strategy zoo"
    (s.Scenarios.Consensus_int.all_terminated
    && s.Scenarios.Consensus_int.agreed
    && s.Scenarios.Consensus_int.valid)

let test_parallel_stress_many_instances () =
  let k = 32 in
  let s =
    Scenarios.Parallel_int.run ~n_correct:4
      ~inputs:(fun _ -> List.init k (fun j -> (j, j * j)))
      ()
  in
  check_true "32 instances in one phase"
    (s.Scenarios.Parallel_int.all_terminated
    && s.Scenarios.Parallel_int.agreed);
  check_int "one phase" 7 s.Scenarios.Parallel_int.rounds

let test_total_order_stress () =
  let churn =
    {
      Scenarios.Total_order_str.join_at = [ (4, 1); (7, 1) ];
      leave_at = [ (10, 1) ];
    }
  in
  let s =
    Scenarios.Total_order_str.run
      ~byz:[ Strategy.silent; Strategy.silent ]
      ~churn ~n_genesis:7 ~rounds:12 ~events_per_round:2 ()
  in
  check_true "prefix at n=9 with byz and churn" s.Scenarios.Total_order_str.prefix_consistent;
  check_true "events ordered"
    (List.exists (fun l -> l >= 20) s.Scenarios.Total_order_str.chain_lengths)

let test_rb_large () =
  let s =
    Scenarios.Rb.run
      ~byz:(List.init 20 (fun _ -> Strategy.silent))
      ~n_correct:41 ~payload:"big" ()
  in
  check_true "n=61 f=20 accepts in round 3"
    (s.Scenarios.Rb.all_accepted_sender_payload
    && s.Scenarios.Rb.max_accept_round = 3)

let suite =
  ( "edge-cases",
    [
      quick "consensus alone in the network" test_consensus_singleton;
      quick "consensus with two and three nodes" test_consensus_pair_and_triple;
      quick "reliable broadcast to oneself" test_rb_singleton;
      quick "rotor with a single candidate" test_rotor_singleton;
      quick "approximate agreement alone" test_aa_singleton;
      quick "renaming a single node" test_renaming_singleton;
      quick "binary consensus with two nodes" test_binary_pair;
      slow "consensus n=40 under a 13-strategy adversary zoo"
        test_consensus_stress_mixed_adversaries;
      slow "parallel consensus with 32 instances" test_parallel_stress_many_instances;
      slow "total order n=9 with churn and byzantine nodes" test_total_order_stress;
      slow "reliable broadcast at n=61" test_rb_large;
    ] )
