open Ubpa_sim
open Ubpa_scenarios
open Helpers
module B = Scenarios.Binary

let check_ok s =
  check_true "terminated" s.B.all_terminated;
  check_true "agreement" s.B.agreed;
  check_true "strong validity" s.B.valid

let test_unanimous () =
  let s = B.run ~n_correct:4 ~inputs:(fun _ -> true) () in
  check_ok s;
  List.iter (fun (_, v) -> check_true "output true" v) s.B.outputs

let test_unanimous_false () =
  let s = B.run ~n_correct:5 ~inputs:(fun _ -> false) () in
  check_ok s;
  List.iter (fun (_, v) -> check_false "output false" v) s.B.outputs

let test_split_all_correct () =
  let s = B.run ~n_correct:5 ~inputs:(fun i -> i mod 2 = 0) () in
  check_ok s

let test_split_world_attack () =
  let f = 2 in
  let s =
    B.run
      ~byz:(List.init f (fun _ -> Ubpa_adversary.Bc_attacks.split_world))
      ~n_correct:7
      ~inputs:(fun i -> i mod 2 = 0)
      ()
  in
  check_ok s

let test_stubborn_validity () =
  (* All correct nodes hold false; byzantine push true everywhere. Strong
     validity: the output must be false. *)
  let s =
    B.run
      ~byz:[ Ubpa_adversary.Bc_attacks.stubborn true; Strategy.silent ]
      ~n_correct:7
      ~inputs:(fun _ -> false)
      ()
  in
  check_ok s;
  List.iter (fun (_, v) -> check_false "output false" v) s.B.outputs

let test_silent_members () =
  let s =
    B.run
      ~byz:(List.init 2 (fun _ -> Ubpa_adversary.Bc_attacks.silent_member))
      ~n_correct:5
      ~inputs:(fun i -> i < 3)
      ()
  in
  check_ok s

let test_rounds_o_n () =
  (* Termination is rotor-driven: O(n) rounds (n rotor turns, 5 rounds per
     turn, + init + one zombie phase). *)
  let n = 7 in
  let s = B.run ~n_correct:n ~inputs:(fun i -> i mod 2 = 0) () in
  check_ok s;
  check_true
    (Printf.sprintf "rounds %d within 5(n+2)+2" s.B.rounds)
    (s.B.rounds <= (5 * (n + 2)) + 2)

let test_boundary () =
  List.iter
    (fun f ->
      let s =
        B.run
          ~byz:(List.init f (fun _ -> Ubpa_adversary.Bc_attacks.split_world))
          ~n_correct:((2 * f) + 1)
          ~inputs:(fun i -> i mod 2 = 0)
          ()
      in
      check_true
        (Printf.sprintf "agreement at f=%d" f)
        (s.B.agreed && s.B.valid && s.B.all_terminated))
    [ 1; 2; 3 ]

let test_skew_grace_period () =
  (* Decision rounds (first Deliver) may be ragged by up to one phase, but
     halts include the zombie phase, so active participation windows always
     overlap. *)
  let s =
    B.run
      ~byz:[ Ubpa_adversary.Bc_attacks.split_world ]
      ~n_correct:3
      ~inputs:(fun i -> i mod 2 = 0)
      ()
  in
  check_ok s;
  match s.B.decision_rounds with
  | [] -> Alcotest.fail "no decisions"
  | l ->
      let lo = List.fold_left min max_int l in
      let hi = List.fold_left max min_int l in
      check_true "decision skew at most one phase" (hi - lo <= 5)


(* Unit-level: exact round schedule, driven without the engine. *)
let test_schedule_unit () =
  let open Ubpa_util in
  let open Ubpa_sim in
  let module B = Unknown_ba.Binary_consensus in
  let a = Node_id.of_int 10
  and b = Node_id.of_int 20
  and c = Node_id.of_int 30
  and d = Node_id.of_int 40 in
  let everyone msg_of = List.map (fun s -> (s, msg_of s)) [ a; b; c; d ] in
  let st = B.init ~self:a ~round:0 true in
  (* Round 1: init. *)
  let _, sends, _ = B.step ~self:a ~round:1 ~stim:[] st ~inbox:[] in
  Helpers.check_true "init" (sends = [ (Envelope.Broadcast, B.Init) ]);
  (* Round 2: echo the inits. *)
  let _, sends, _ =
    B.step ~self:a ~round:2 ~stim:[] st ~inbox:(everyone (fun _ -> B.Init))
  in
  Helpers.check_int "four candidate echoes" 4 (List.length sends);
  (* Round 3 (pos 1): broadcast the input. *)
  let _, sends, _ =
    B.step ~self:a ~round:3 ~stim:[] st
      ~inbox:(everyone (fun s -> B.Cand_echo s))
  in
  Helpers.check_true "input true"
    (List.mem (Envelope.Broadcast, B.Input true) sends);
  (* Round 4 (pos 2): 3/4 inputs true -> support true. *)
  let _, sends, _ =
    B.step ~self:a ~round:4 ~stim:[] st
      ~inbox:
        [ (a, B.Input true); (b, B.Input true); (c, B.Input true); (d, B.Input false) ]
  in
  Helpers.check_true "support true"
    (List.mem (Envelope.Broadcast, B.Support true) sends);
  (* Round 5 (pos 3): unanimous supports -> adopt. *)
  let _, _, _ =
    B.step ~self:a ~round:5 ~stim:[] st ~inbox:(everyone (fun _ -> B.Support true))
  in
  Helpers.check_true "opinion adopted" (B.current_opinion st);
  Helpers.check_int "phase 1" 1 (B.phase st)

(* Genericity: the same machinery runs over float and string opinions. *)
module Cf = Unknown_ba.Consensus.Make (Unknown_ba.Value.Float)
module Cf_net = Ubpa_sim.Network.Make (Cf)
module Cs = Unknown_ba.Consensus.Make (Unknown_ba.Value.String)
module Cs_net = Ubpa_sim.Network.Make (Cs)

let test_float_consensus () =
  let ids = Scenarios.make_ids ~seed:95L 4 in
  let net =
    Cf_net.create
      ~correct:(List.mapi (fun i id -> (id, 3.14 +. float_of_int i)) ids)
      ~byzantine:[] ()
  in
  Helpers.check_true "halted" (Cf_net.run net = `All_halted);
  match Cf_net.outputs net with
  | (_, first) :: rest ->
      List.iter
        (fun (_, v) -> Alcotest.(check (float 1e-9)) "agree" first v)
        rest
  | [] -> Alcotest.fail "no outputs"

let test_string_consensus () =
  let ids = Scenarios.make_ids ~seed:96L 5 in
  let proposals = [ "red"; "green"; "blue"; "red"; "green" ] in
  let net =
    Cs_net.create
      ~correct:(List.map2 (fun id v -> (id, v)) ids proposals)
      ~byzantine:[] ()
  in
  Helpers.check_true "halted" (Cs_net.run net = `All_halted);
  match Cs_net.outputs net with
  | (_, first) :: rest ->
      Helpers.check_true "valid" (List.mem first proposals);
      List.iter (fun (_, v) -> Alcotest.(check string) "agree" first v) rest
  | [] -> Alcotest.fail "no outputs"

let suite =
  ( "binary-consensus",
    [
      quick "unanimous true" test_unanimous;
      quick "unanimous false" test_unanimous_false;
      quick "split inputs, all correct" test_split_all_correct;
      quick "split-world equivocation" test_split_world_attack;
      quick "stubborn byzantine cannot override strong validity"
        test_stubborn_validity;
      quick "silent members" test_silent_members;
      quick "O(n) rounds (rotor-driven)" test_rounds_o_n;
      quick "n = 3f+1 boundary" test_boundary;
      quick "termination skew covered by the grace phase"
        test_skew_grace_period;
      quick "unit: exact round schedule" test_schedule_unit;
      quick "genericity: float opinions" test_float_consensus;
      quick "genericity: string opinions" test_string_consensus;
    ] )
