(** Fault-injection subsystem: plan validation and queries, then the
    engine-level semantics — crash/recover windows, omission, loss, the
    all-halted write-off — and the zero-cost guarantee that an empty plan
    leaves a run byte-identical to no plan at all. *)

open Ubpa_util
open Ubpa_sim
open Helpers
module F = Ubpa_faults

let id i = Node_id.of_int i

(* ----- plan validation ----- *)

let rejects msg f =
  check_true msg
    (match f () with
    | exception Invalid_argument _ -> true
    | (_ : F.plan) -> false)

let test_validation () =
  rejects "loss > 1 rejected" (fun () -> F.make ~loss:1.5 []);
  rejects "negative dup rejected" (fun () -> F.make ~dup:(-0.1) []);
  rejects "round 0 rejected" (fun () ->
      F.make [ (id 1, [ F.crash ~at:0 () ]) ]);
  rejects "recover before crash rejected" (fun () ->
      F.make [ (id 1, [ F.crash ~at:5 ~recover:5 () ]) ]);
  rejects "rejoin before leave rejected" (fun () ->
      F.make [ (id 1, [ F.leave ~at:4 ~rejoin:3 () ]) ]);
  rejects "omission prob > 1 rejected" (fun () ->
      F.make [ (id 1, [ F.send_omission ~first:1 ~prob:2.0 () ]) ]);
  rejects "duplicate node rejected" (fun () ->
      F.make [ (id 1, [ F.crash ~at:2 () ]); (id 1, [ F.crash ~at:3 () ]) ])

let test_queries () =
  let plan =
    F.make
      [
        (id 3, [ F.crash ~at:3 ~recover:5 () ]);
        (id 1, [ F.leave ~at:2 () ]);
        (id 2, [ F.send_omission ~first:2 ~last:4 ~prob:0.5 () ]);
      ]
  in
  check_true "not empty" (not (F.is_empty plan));
  check_true "empty is empty" (F.is_empty F.empty);
  Alcotest.(check (list node_id))
    "victims ascending"
    [ id 1; id 2; id 3 ]
    (F.victims plan);
  check_true "benign only without loss/dup" (F.benign_only plan);
  check_false "loss breaks benign_only"
    (F.benign_only (F.make ~loss:0.1 []));
  (* crash window [3, 5) *)
  check_true "up before crash" (F.status plan ~node:(id 3) ~round:2 = `Up);
  check_true "crashed at 3" (F.status plan ~node:(id 3) ~round:3 = `Crashed);
  check_true "crashed at 4" (F.status plan ~node:(id 3) ~round:4 = `Crashed);
  check_true "recovered at 5" (F.status plan ~node:(id 3) ~round:5 = `Up);
  check_true "left forever" (F.status plan ~node:(id 1) ~round:9 = `Left);
  check_true "unlisted node is up" (F.status plan ~node:(id 9) ~round:3 = `Up);
  (* permanent-down write-off *)
  check_true "leave without rejoin is permanent"
    (F.permanently_down plan ~node:(id 1) ~round:2);
  check_false "crash with recovery is not permanent"
    (F.permanently_down plan ~node:(id 3) ~round:3);
  (* omission windows *)
  check_true "omission active in window"
    (F.send_omission_prob plan ~node:(id 2) ~round:3 = 0.5);
  check_true "omission inactive after window"
    (F.send_omission_prob plan ~node:(id 2) ~round:5 = 0.);
  check_true "recv omission defaults to 0"
    (F.recv_omission_prob plan ~node:(id 2) ~round:3 = 0.)

(* ----- engine semantics, observed through consensus runs ----- *)

module C = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int)
module Net = Network.Make (C)

let population n = Node_id.scatter ~seed:11L n

let consensus_net ?faults ?trace ?(seed = 5L) ~n () =
  let ids = population n in
  Net.create ?faults ?trace ~seed
    ~correct:(List.mapi (fun i nid -> (nid, i mod 2)) ids)
    ~byzantine:[] ()

let test_crash_stop_written_off () =
  let ids = population 7 in
  let victim = List.hd ids in
  let faults = F.make [ (victim, [ F.crash ~at:2 () ]) ] in
  let net = consensus_net ~faults ~n:7 () in
  (match Net.run ~max_rounds:100 net with
  | `All_halted -> ()
  | `Max_rounds_reached _ | `No_correct_nodes ->
      Alcotest.fail "survivors should decide despite one crash-stop");
  let r = Net.report net victim in
  check_true "victim marked down" (r.Net.down_since = Some 2);
  check_true "victim never halted" (r.Net.halted_at = None);
  List.iter
    (fun nid ->
      if not (Node_id.equal nid victim) then
        check_true "survivor halted"
          ((Net.report net nid).Net.halted_at <> None))
    ids

let test_crash_recover_decides () =
  let ids = population 7 in
  let victim = List.hd ids in
  let faults = F.make [ (victim, [ F.crash ~at:2 ~recover:4 () ]) ] in
  let net = consensus_net ~faults ~n:7 () in
  check_true "all halted after recovery"
    (Net.run ~max_rounds:200 net = `All_halted);
  let r = Net.report net victim in
  check_true "victim back up" (r.Net.down_since = None);
  check_true "victim decided (state intact)" (r.Net.halted_at <> None)

let test_send_omission_tolerated () =
  let ids = population 7 in
  let victim = List.hd ids in
  let faults =
    F.make [ (victim, [ F.send_omission ~first:2 ~prob:1.0 () ]) ]
  in
  let net = consensus_net ~faults ~n:7 () in
  check_true "one fully send-omitting node is tolerated (f = 2)"
    (Net.run ~max_rounds:200 net = `All_halted)

let test_total_loss_stalls () =
  (* Dropping every envelope from round 1 on cannot decide; the stalled
     payload names every correct node. *)
  let ids = population 4 in
  let faults = F.make ~loss:1.0 [] in
  let net = consensus_net ~faults ~n:4 () in
  match Net.run ~max_rounds:30 net with
  | `Max_rounds_reached stalled ->
      Alcotest.(check (list node_id))
        "everyone stalled, ascending" (Node_id.sorted ids) stalled
  | `All_halted | `No_correct_nodes ->
      Alcotest.fail "total loss must not reach agreement"

let test_fault_events_traced () =
  let ids = population 7 in
  let victim = List.hd ids in
  let faults =
    F.make ~loss:0.3
      [ (victim, [ F.crash ~at:2 ~recover:4 () ]) ]
  in
  let trace = Trace.create () in
  let net = consensus_net ~faults ~trace ~n:7 () in
  ignore (Net.run ~max_rounds:200 net);
  let faults_seen =
    List.filter (fun (e : Trace.event) -> e.kind = Trace.Fault) (Trace.events trace)
  in
  check_true "fault events recorded" (List.length faults_seen >= 2);
  check_true "crash event at round 2"
    (List.exists
       (fun (e : Trace.event) ->
         e.round = 2 && e.node = Some victim && e.kind = Trace.Fault)
       faults_seen)

(* ----- delay faults and the runtime-facing queries (PR 8) ----- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  go 0

let test_delay_queries () =
  let p =
    F.make
      [
        (id 2, [ F.delay ~first:2 ~last:4 ~prob:0.5 ~rounds:2 () ]);
        (id 3, [ F.crash ~at:3 () ]);
      ]
  in
  check_true "delay active in window"
    (F.delay_spec p ~node:(id 2) ~round:3 = Some (0.5, 2));
  check_true "delay inactive after window"
    (F.delay_spec p ~node:(id 2) ~round:5 = None);
  check_true "delay inactive for other nodes"
    (F.delay_spec p ~node:(id 3) ~round:3 = None);
  check_false "plain crash plan has no recovery" (F.has_recovery p);
  check_true "crash-recover detected"
    (F.has_recovery (F.make [ (id 1, [ F.crash ~at:2 ~recover:4 () ]) ]));
  check_true "crashes lists unrecovered crash and leave rounds"
    (F.crashes
       (F.make [ (id 1, [ F.crash ~at:2 () ]); (id 2, [ F.leave ~at:3 () ]) ])
    = [ (id 1, 2); (id 2, 3) ]);
  check_true "recovered crash is not a crash"
    (F.crashes (F.make [ (id 1, [ F.crash ~at:2 ~recover:4 () ]) ]) = [])

let test_delay_drops_in_sim () =
  (* A delayed envelope misses its delivery round: the synchronous
     engine has no late slot, so the receive edge drops it with a fault
     trace event. Total delay on every node behaves like total loss. *)
  let ids = population 4 in
  let faults =
    F.make
      (List.map
         (fun nid -> (nid, [ F.delay ~first:1 ~prob:1.0 ~rounds:1 () ]))
         ids)
  in
  let trace = Trace.create () in
  let net = consensus_net ~faults ~trace ~n:4 () in
  (match Net.run ~max_rounds:10 net with
  | `Max_rounds_reached _ -> ()
  | `All_halted | `No_correct_nodes ->
      Alcotest.fail "total delay must stall consensus");
  check_true "delay fault events traced"
    (List.exists
       (fun (e : Trace.event) ->
         e.kind = Trace.Fault && contains e.what "fault: delay")
       (Trace.events trace))

(* ----- the --faults spec DSL ----- *)

let test_parse_spec () =
  let ids = population 5 in
  (match F.parse_spec ~ids "crash:1@3,delay:2@1..4=0.5x1,loss=0.05" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok plan ->
      let sorted = Node_id.sorted ids in
      let v1 = List.nth sorted 1 and v2 = List.nth sorted 2 in
      check_false "plan not empty" (F.is_empty plan);
      check_true "crash clause lands on index 1"
        (F.status plan ~node:v1 ~round:3 = `Crashed);
      check_true "delay clause lands on index 2"
        (F.delay_spec plan ~node:v2 ~round:2 = Some (0.5, 1));
      check_true "delay window closes"
        (F.delay_spec plan ~node:v2 ~round:5 = None);
      check_true "crashes query sees the crash" (F.crashes plan = [ (v1, 3) ]));
  (match F.parse_spec ~ids "send-omit:0@2..3=0.5,recv-omit:4@1..=1.0,dup=0.1" with
  | Error e -> Alcotest.failf "omission spec rejected: %s" e
  | Ok plan ->
      let sorted = Node_id.sorted ids in
      check_true "send-omit window"
        (F.send_omission_prob plan ~node:(List.nth sorted 0) ~round:2 = 0.5);
      check_true "send-omit closes"
        (F.send_omission_prob plan ~node:(List.nth sorted 0) ~round:4 = 0.);
      check_true "open-ended recv-omit"
        (F.recv_omission_prob plan ~node:(List.nth sorted 4) ~round:9 = 1.0));
  let bad s =
    match F.parse_spec ~ids s with Error _ -> true | Ok _ -> false
  in
  check_true "empty spec rejected" (bad "");
  check_true "unknown clause rejected" (bad "explode:1@2");
  check_true "out-of-range index rejected" (bad "crash:9@2");
  check_true "prob > 1 rejected" (bad "loss=1.5");
  check_true "inverted window rejected" (bad "recv-omit:1@4..2=0.5");
  check_true "crash round 0 rejected" (bad "crash:1@0");
  check_true "garbage rejected" (bad "crash:one@two")

(* ----- the zero-cost guarantee ----- *)

let jsonl_of_run ?faults () =
  let trace = Trace.create () in
  let net = consensus_net ?faults ~trace ~n:7 () in
  ignore (Net.run ~max_rounds:200 net);
  Trace.to_jsonl trace

let test_empty_plan_is_no_plan () =
  let without = jsonl_of_run () in
  let empty = jsonl_of_run ~faults:F.empty () in
  Alcotest.(check string)
    "empty plan leaves the trace byte-identical" without empty

let suite =
  ( "faults",
    [
      quick "plan validation rejects bad input" test_validation;
      quick "plan queries" test_queries;
      quick "crash-stop victim is written off" test_crash_stop_written_off;
      quick "crash-recover keeps state and decides" test_crash_recover_decides;
      quick "one send-omitting node is tolerated" test_send_omission_tolerated;
      quick "total loss stalls with full stalled payload" test_total_loss_stalls;
      quick "injected faults are trace events" test_fault_events_traced;
      quick "delay queries and recovery/crash listings" test_delay_queries;
      quick "delayed envelopes drop at the receive edge" test_delay_drops_in_sim;
      quick "--faults spec DSL parses and validates" test_parse_spec;
      quick "empty plan is byte-identical to no plan" test_empty_plan_is_no_plan;
    ] )
