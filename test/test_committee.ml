(* Committee sampling (King–Saia style) and the sub-quadratic agreement
   protocol built on it.

   Three layers under test: the pure sampling functions (determinism —
   including across Pool workers —, size and concentration bounds, the
   attestor/audience inversion), the sparse fan-out through every
   delivery core (the committee protocols are the first consumers of
   large addressed-unicast batches, so the cores must agree byte-for-byte
   on exactly that shape), and the protocol end-to-end under the attacks
   that target the spreading phase. *)

open Ubpa_util
open Ubpa_sim
open Ubpa_harness
open Ubpa_scenarios
open Unknown_ba
open Helpers
module C = Scenarios.Committee_int

(* ----- sampling: determinism and bounds ----- *)

let universe_of ~seed n = Scenarios.make_ids ~seed n

let test_sampling_deterministic () =
  let universe = universe_of ~seed:11L 101 in
  let a = Committee.members ~seed:42L ~universe in
  let b = Committee.members ~seed:42L ~universe in
  check_true "same committee from same seed" (a = b);
  let shuffled = List.rev universe in
  check_true "universe order is irrelevant"
    (a = Committee.members ~seed:42L ~universe:shuffled);
  check_false "different seed, different committee"
    (a = Committee.members ~seed:43L ~universe);
  let self = List.nth universe 17 in
  check_true "attestor sample deterministic"
    (Committee.attestors ~seed:42L ~universe ~self
    = Committee.attestors ~seed:42L ~universe:shuffled ~self)

let test_sampling_sizes () =
  List.iter
    (fun n ->
      let universe = universe_of ~seed:5L n in
      let committee = Committee.members ~seed:7L ~universe in
      check_int
        (Printf.sprintf "committee size at n=%d" n)
        (Committee.committee_size n)
        (List.length committee);
      let com = Node_id.Set.of_list committee in
      check_true "committee drawn from the universe"
        (List.for_all (fun id -> List.exists (Node_id.equal id) universe)
           committee);
      let self = List.hd universe in
      let att = Committee.attestors ~seed:7L ~universe ~self in
      check_int
        (Printf.sprintf "attestor size at n=%d" n)
        (Committee.attestor_size n) (List.length att);
      check_true "attestors are committee members"
        (List.for_all (fun id -> Node_id.Set.mem id com) att))
    [ 5; 40; 101; 301 ]

let test_audience_inverts_attestors () =
  let universe = universe_of ~seed:3L 61 in
  let committee = Committee.members ~seed:9L ~universe in
  List.iteri
    (fun i member ->
      if i < 4 then
        let audience = Committee.audience ~seed:9L ~universe ~member in
        (* Soundness: everyone in the audience sampled this member. *)
        check_true "audience members sampled this attestor"
          (List.for_all
             (fun o ->
               List.exists (Node_id.equal member)
                 (Committee.attestors ~seed:9L ~universe ~self:o))
             audience);
        (* Completeness: everyone who sampled it is in the audience. *)
        check_true "every sampler is in the audience"
          (List.for_all
             (fun o ->
               (not
                  (List.exists (Node_id.equal member)
                     (Committee.attestors ~seed:9L ~universe ~self:o)))
               || List.exists (Node_id.equal o) audience)
             universe))
    committee;
  check_true "non-members have no audience"
    (List.for_all
       (fun o ->
         List.exists (Node_id.equal o) committee
         || Committee.audience ~seed:9L ~universe ~member:o = [])
       universe)

let test_concentration_bounds () =
  (* The model assumption is ε-slacked: f ≤ (1−ε)n/3, exercised at the
     experiments' f = n/6. The adversary fixes its corruption set before
     the seed is revealed — here the lexicographically first n/6
     identifiers, a fully contiguous (worst-clustered) placement — and
     over a bank of seeds every sampled committee must keep its Byzantine
     fraction below the 1/3 the inner consensus tolerates, and most
     attestor samples must keep an honest majority. *)
  let n = 301 in
  let universe = universe_of ~seed:77L n in
  let sorted = Node_id.sorted universe in
  let f = n / 6 in
  let byz = Node_id.Set.of_list (List.filteri (fun i _ -> i < f) sorted) in
  List.iter
    (fun seed ->
      let committee = Committee.members ~seed ~universe in
      let k = List.length committee in
      let bad =
        List.length (List.filter (fun id -> Node_id.Set.mem id byz) committee)
      in
      check_true
        (Printf.sprintf "committee < k/3 Byzantine at seed %Ld (%d of %d)"
           seed bad k)
        (3 * bad < k);
      let honest_majorities =
        List.length
          (List.filter
             (fun self ->
               let att = Committee.attestors ~seed ~universe ~self in
               let bad_att =
                 List.length
                   (List.filter (fun id -> Node_id.Set.mem id byz) att)
               in
               2 * bad_att < List.length att)
             sorted)
      in
      check_true
        (Printf.sprintf "most attestor samples honest-majority at seed %Ld"
           seed)
        (10 * honest_majorities > 9 * n))
    (List.init 12 (fun i -> Int64.of_int (1000 + (i * 37))))

let test_sampling_identical_across_jobs () =
  (* The CX2 sweep maps cells with Pool at arbitrary --jobs; the sampled
     structures must be byte-identical however the map is scheduled. *)
  let cells = List.init 8 (fun i -> Int64.of_int (50 + i)) in
  let sample seed =
    let universe = universe_of ~seed:13L 101 in
    let committee = Committee.members ~seed ~universe in
    let att =
      Committee.attestors ~seed ~universe ~self:(List.nth universe 3)
    in
    List.map Node_id.to_int committee @ List.map Node_id.to_int att
  in
  let serial = Pool.map ~jobs:1 sample cells in
  let parallel = Pool.map ~jobs:4 sample cells in
  check_true "Pool jobs=1 and jobs=4 byte-identical" (serial = parallel)

(* ----- sparse fan-out differential across delivery cores ----- *)

(* The committee protocol's traffic is large batches of addressed
   unicasts (inner consensus at k ≈ 2√n fan-out, reports at √n·log n
   fan-out) — a shape the original differential's uniform random traffic
   underweights. Generate exactly that shape from real samples and
   require all three cores to agree on inboxes and wire counters. *)
let committee_traffic rng =
  let n = 20 + Rng.int rng 60 in
  let seed = Rng.int64 rng in
  let universe = Scenarios.make_ids ~seed n in
  let committee = Committee.members ~seed ~universe in
  let present =
    List.filter (fun _ -> Rng.int rng 10 > 0) universe |> Node_id.Set.of_list
  in
  let inner =
    List.concat_map
      (fun m ->
        if Rng.int rng 3 = 0 then []
        else
          List.map
            (fun peer -> Envelope.send ~src:m ~dst:peer (Rng.int rng 5))
            committee)
      committee
  in
  let reports =
    List.concat_map
      (fun m ->
        if Rng.bool rng then []
        else
          List.map
            (fun o -> Envelope.send ~src:m ~dst:o (100 + Rng.int rng 3))
            (Committee.audience ~seed ~universe ~member:m))
      committee
  in
  (present, inner @ reports)

let wire_of routefn ~present ~envelopes =
  let w = Ubpa_obs.Wire.create () in
  let on_deliver ~recipient ~src payload =
    Ubpa_obs.Wire.record w ~round:1 ~sender:src ~recipient
      ~kind:(if payload >= 100 then "report" else "inner")
      ~bits:(Ubpa_obs.Sizing.structural_bits payload)
  in
  let inboxes, count = routefn ~on_deliver ~present ~envelopes in
  (inboxes, count, w)

let prop_sparse_fanout_cross_core =
  QCheck2.Test.make ~count:80
    ~name:"sparse committee fan-out: arena == indexed == reference"
    QCheck2.Gen.(int_range 1 100_000)
    (fun qseed ->
      let rng = Rng.create (Int64.of_int qseed) in
      let present, envelopes = committee_traffic rng in
      let route impl ~on_deliver ~present ~envelopes =
        Delivery.route ~on_deliver ~interner:None ~impl ~equal:Int.equal
          ~present ~envelopes ()
      in
      let i_ref, c_ref, w_ref =
        wire_of
          (fun ~on_deliver ~present ~envelopes ->
            Delivery.route_reference ~on_deliver ~equal:Int.equal ~present
              ~envelopes ())
          ~present ~envelopes
      in
      List.for_all
        (fun impl ->
          let i, c, w = wire_of (route impl) ~present ~envelopes in
          c = c_ref
          && Node_id.Map.equal ( = ) i i_ref
          && Ubpa_obs.Wire.equal w w_ref)
        [ Delivery.Indexed; Delivery.Arena ])

(* ----- protocol end-to-end ----- *)

let check_green ?(expect_valid = true) msg (s : C.summary) =
  check_true (msg ^ ": all terminated") s.C.all_terminated;
  check_true (msg ^ ": agreement") s.C.agreed;
  if expect_valid then check_true (msg ^ ": validity") s.C.valid;
  check_true (msg ^ ": monitors green") s.C.monitor_green

let test_unanimous_all_correct () =
  let s = C.run ~seed:21L ~n_correct:40 ~inputs:all_same () in
  check_green "unanimous n=40" s;
  List.iter (fun (_, v) -> check_int "decided the input" 7 v) s.C.outputs

let test_split_inputs_all_correct () =
  let s = C.run ~seed:22L ~n_correct:45 ~inputs:binary_split () in
  check_green "split n=45" s

let test_silent_byzantine () =
  let f = 7 in
  let s =
    C.run ~seed:23L
      ~byz:(List.init f (fun _ -> C.Attacks.silent_member))
      ~n_correct:(6 * f) ~inputs:binary_split ()
  in
  check_green "silent f=n/6" s;
  check_true "some Byzantine was sampled somewhere or not — bounded"
    (3 * s.C.byz_members < List.length s.C.committee)

let test_report_equivocate_attack () =
  let f = 5 in
  let s =
    C.run ~seed:24L
      ~byz:(List.init f (fun _ -> C.Attacks.report_equivocate 0 1))
      ~n_correct:(6 * f) ~inputs:all_same ()
  in
  check_green "report equivocation" s

let test_report_flood_attack () =
  let f = 5 in
  let s =
    C.run ~seed:25L
      ~byz:(List.init f (fun _ -> C.Attacks.report_flood 99))
      ~n_correct:(6 * f) ~inputs:all_same ()
  in
  check_green "report flood" s;
  List.iter
    (fun (_, v) -> check_int "forged value never adopted" 7 v)
    s.C.outputs

let test_inner_split_attack () =
  let f = 5 in
  let s =
    C.run ~seed:26L
      ~byz:(List.init f (fun _ -> C.Attacks.inner_split 0 1))
      ~n_correct:(6 * f) ~inputs:binary_split ()
  in
  check_green "inner split" s

let test_cores_agree_end_to_end () =
  (* The same run on the indexed and arena cores must produce identical
     outputs, rounds and wire counters — CX1's identity claim at the
     committee protocol's fan-out shape, end to end. *)
  let run delivery =
    C.run ~seed:27L ~delivery ~n_correct:50
      ~byz:[ C.Attacks.silent_member; C.Attacks.report_flood 5 ]
      ~inputs:binary_split ()
  in
  let a = run Delivery.Indexed and b = run Delivery.Arena in
  check_true "same outputs" (a.C.outputs = b.C.outputs);
  check_int "same rounds" a.C.rounds b.C.rounds;
  check_int "same delivered" a.C.delivered_msgs b.C.delivered_msgs;
  check_int "same max budget bits" a.C.max_budget_bits b.C.max_budget_bits

let test_budget_is_subquadratic () =
  (* Not the gated envelope (that is CX2's job over a real sweep) — just
     the qualitative point: the densest node's budget stays well under
     the all-to-all cost n·(bits of one message round). *)
  let s = C.run ~seed:28L ~n_correct:120 ~inputs:binary_split () in
  check_green "n=120 plain" s;
  check_true "max per-node budget well below dense cost"
    (s.C.max_budget_msgs < 120 * 40)

let suite =
  ( "committee",
    [
      quick "sampling: deterministic in (seed, universe-set)"
        test_sampling_deterministic;
      quick "sampling: sizes k=⌈2√n⌉, q=2⌈log2 n⌉" test_sampling_sizes;
      quick "sampling: audience inverts attestors"
        test_audience_inverts_attestors;
      quick "sampling: concentration under f=n/6 prefix corruption"
        test_concentration_bounds;
      quick "sampling: identical across Pool --jobs"
        test_sampling_identical_across_jobs;
      quick "protocol: unanimous inputs, all correct"
        test_unanimous_all_correct;
      quick "protocol: split inputs, all correct"
        test_split_inputs_all_correct;
      quick "protocol: silent Byzantine at f=n/6" test_silent_byzantine;
      quick "protocol: report equivocation blunted"
        test_report_equivocate_attack;
      quick "protocol: forged report flood never adopted"
        test_report_flood_attack;
      quick "protocol: inner split-world through the overlay"
        test_inner_split_attack;
      quick "protocol: indexed and arena cores byte-identical"
        test_cores_agree_end_to_end;
      quick "protocol: per-node budget qualitatively sparse"
        test_budget_is_subquadratic;
    ]
    @ Helpers.qcheck_cases [ prop_sparse_fanout_cross_core ] )
