open Ubpa_util
open Ubpa_sim
open Helpers

(* A minimal probe protocol: each round broadcasts (self, round); collects
   everything it hears. Halts after [lifetime] rounds with its log. *)
module Probe = struct
  type input = { lifetime : int }
  type stimulus = Protocol.No_stimulus.t
  type message = Ping of int (* round the ping was sent *)
  type output = (int * Node_id.t * int) list
  (* (round received, sender, round sent) *)

  type state = {
    lifetime : int;
    mutable log : (int * Node_id.t * int) list;
    mutable steps : int;
  }

  let name = "probe"
  let init ~self:_ ~round:_ ({ lifetime } : input) =
    { lifetime; log = []; steps = 0 }
  let pp_message ppf (Ping r) = Fmt.pf ppf "ping(%d)" r

  include Protocol.Structural (struct
    type t = message
  end)

  let step ~self:_ ~round ~stim:_ st ~inbox =
    st.steps <- st.steps + 1;
    List.iter
      (fun (src, Ping r) -> st.log <- (round, src, r) :: st.log)
      inbox;
    let sends = [ (Envelope.Broadcast, Ping round) ] in
    if st.steps >= st.lifetime then (st, [], Protocol.Stop (List.rev st.log))
    else (st, sends, Protocol.Continue)
end

module Net = Network.Make (Probe)

let ids n = Node_id.scatter ~seed:11L n

let mk ?(byz = []) ?(rushing = true) ?stimulus:_ n lifetime =
  let correct = List.map (fun id -> (id, { Probe.lifetime })) (ids n) in
  Net.create ~rushing ~correct ~byzantine:byz ()

let test_delivery_next_round () =
  let net = mk 3 3 in
  let _ = Net.run net in
  List.iter
    (fun (_, log) ->
      (* pings sent in round r are logged in round r+1 *)
      List.iter
        (fun (recv, _, sent) -> check_int "one-round latency" (sent + 1) recv)
        log)
    (Net.outputs net)

let test_broadcast_includes_self () =
  let net = mk 1 2 in
  let _ = Net.run net in
  match Net.outputs net with
  | [ (id, log) ] ->
      check_true "self delivery"
        (List.exists (fun (_, src, _) -> Node_id.equal src id) log)
  | _ -> Alcotest.fail "expected one node"

let test_all_pairs_delivered () =
  let n = 4 in
  let net = mk n 2 in
  let _ = Net.run net in
  List.iter
    (fun (_, log) ->
      (* round 2 must contain a ping from each of the n nodes *)
      let senders =
        List.filter_map
          (fun (recv, src, _) -> if recv = 2 then Some src else None)
          log
      in
      check_int "n pings in round 2" n (List.length (Node_id.sorted senders)))
    (Net.outputs net)

let test_halted_node_stops () =
  (* One node lives 2 rounds, others 5: the short-lived node must not
     appear in logs after round 3 (its last send is in round 2). *)
  let all = ids 3 in
  let correct =
    List.mapi
      (fun i id -> (id, { Probe.lifetime = (if i = 0 then 2 else 5) }))
      all
  in
  let short = List.nth all 0 in
  let net = Net.create ~correct ~byzantine:[] () in
  let _ = Net.run net in
  List.iter
    (fun (id, log) ->
      if not (Node_id.equal id short) then
        check_false "no pings from halted node after its death"
          (List.exists
             (fun (recv, src, _) -> Node_id.equal src short && recv > 3)
             log))
    (Net.outputs net)

let test_duplicate_payload_suppressed () =
  (* A byzantine node sending the same payload twice in a round is
     delivered once; two different payloads both arrive. *)
  let dup =
    Strategy.v ~name:"dup" (fun _ _ view ->
        if view.Strategy.round = 1 then
          [
            (Envelope.Broadcast, Probe.Ping 100);
            (Envelope.Broadcast, Probe.Ping 100);
            (Envelope.Broadcast, Probe.Ping 200);
          ]
        else [])
  in
  let byz_id = Node_id.of_int 999 in
  let correct = List.map (fun id -> (id, { Probe.lifetime = 3 })) (ids 2) in
  let net = Net.create ~correct ~byzantine:[ (byz_id, dup) ] () in
  let _ = Net.run net in
  List.iter
    (fun (_, log) ->
      let from_byz =
        List.filter (fun (_, src, _) -> Node_id.equal src byz_id) log
      in
      check_int "dedup kept two distinct payloads" 2 (List.length from_byz))
    (Net.outputs net)

let test_point_to_point () =
  let all = ids 3 in
  let target = List.nth all 1 in
  let direct =
    Strategy.v ~name:"direct" (fun _ _ view ->
        if view.Strategy.round = 1 then [ (Envelope.To target, Probe.Ping 42) ]
        else [])
  in
  let byz_id = Node_id.of_int 777 in
  let correct = List.map (fun id -> (id, { Probe.lifetime = 3 })) all in
  let net = Net.create ~correct ~byzantine:[ (byz_id, direct) ] () in
  let _ = Net.run net in
  List.iter
    (fun (id, log) ->
      let got = List.exists (fun (_, src, _) -> Node_id.equal src byz_id) log in
      if Node_id.equal id target then check_true "target got it" got
      else check_false "others did not" got)
    (Net.outputs net)

let test_rushing_view () =
  (* The rushing adversary must see correct-node sends of the current
     round. *)
  let seen = ref false in
  let peek =
    Strategy.v ~name:"peek" (fun _ _ view ->
        if view.Strategy.rushing <> [] then seen := true;
        [])
  in
  let correct = List.map (fun id -> (id, { Probe.lifetime = 2 })) (ids 2) in
  let net =
    Net.create ~correct ~byzantine:[ (Node_id.of_int 5, peek) ] ()
  in
  let _ = Net.run net in
  check_true "rushing view populated" !seen

let test_non_rushing_view () =
  let seen = ref false in
  let peek =
    Strategy.v ~name:"peek" (fun _ _ view ->
        if view.Strategy.rushing <> [] then seen := true;
        [])
  in
  let correct = List.map (fun id -> (id, { Probe.lifetime = 2 })) (ids 2) in
  let net =
    Net.create ~rushing:false ~correct
      ~byzantine:[ (Node_id.of_int 5, peek) ]
      ()
  in
  let _ = Net.run net in
  check_false "no rushing view when disabled" !seen

let test_join_mid_run () =
  let correct = List.map (fun id -> (id, { Probe.lifetime = 6 })) (ids 2) in
  let net = Net.create ~correct ~byzantine:[] () in
  Net.step_round net;
  Net.step_round net;
  let late = Node_id.of_int 123456 in
  Net.join_correct net late { Probe.lifetime = 4 };
  let _ = Net.run net in
  let rep = Net.report net late in
  check_int "joined at round 3" 3 rep.Net.joined_at;
  (* the late node's pings reach the others *)
  List.iter
    (fun (id, log) ->
      if not (Node_id.equal id late) then
        check_true "heard the late joiner"
          (List.exists (fun (_, src, _) -> Node_id.equal src late) log))
    (Net.outputs net)

let test_duplicate_id_rejected () =
  let id = Node_id.of_int 1 in
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Network.create: duplicate node identifiers")
    (fun () ->
      ignore
        (Net.create
           ~correct:[ (id, { Probe.lifetime = 1 }); (id, { Probe.lifetime = 1 }) ]
           ~byzantine:[] ()))

let test_metrics () =
  let n = 3 in
  let net = mk n 2 in
  let _ = Net.run net in
  let m = Net.metrics net in
  (* lifetime 2: every node broadcasts in round 1 only (halting in round 2
     sends nothing), so sends = n and deliveries = n*n. *)
  check_int "sends" n (Metrics.sends_correct m);
  check_int "deliveries" (n * n) (Metrics.delivered m);
  check_int "rounds" 2 (Metrics.rounds m)

let test_metrics_per_round () =
  let n = 3 in
  let net = mk n 3 in
  let _ = Net.run net in
  let m = Net.metrics net in
  let per_round = Metrics.delivered_per_round m in
  (* lifetime 3: broadcasts in rounds 1 and 2 deliver in rounds 2 and 3. *)
  check_true "rows ascending in round"
    (List.map fst per_round = List.sort compare (List.map fst per_round));
  check_true "rows unique"
    (List.length (List.sort_uniq compare (List.map fst per_round))
    = List.length per_round);
  check_true "per-round counts sum to the total"
    (List.fold_left (fun acc (_, c) -> acc + c) 0 per_round
    = Metrics.delivered m);
  let times = Metrics.round_times_ms m in
  check_int "one timing row per round" (Metrics.rounds m) (List.length times);
  check_true "timing rows ascending"
    (List.map fst times = List.init (Metrics.rounds m) (fun i -> i + 1));
  check_true "timings are non-negative" (List.for_all (fun (_, ms) -> ms >= 0.) times);
  check_true "elapsed is the sum of round times"
    (Float.abs
       (Metrics.elapsed_ms m
       -. List.fold_left (fun acc (_, ms) -> acc +. ms) 0. times)
    < 1e-6)

let test_metrics_json_roundtrip () =
  let net = mk 3 3 in
  let _ = Net.run net in
  let m = Net.metrics net in
  match Metrics.of_json (Metrics.to_json m) with
  | Error msg -> Alcotest.fail msg
  | Ok m' ->
      check_int "rounds" (Metrics.rounds m) (Metrics.rounds m');
      check_int "sends" (Metrics.sends_correct m) (Metrics.sends_correct m');
      check_int "delivered" (Metrics.delivered m) (Metrics.delivered m');
      check_true "per-round rows"
        (Metrics.delivered_per_round m = Metrics.delivered_per_round m');
      check_true "round times"
        (Metrics.round_times_ms m = Metrics.round_times_ms m');
      check_true "kinds" (Metrics.kinds m = Metrics.kinds m')

let test_trace_records () =
  let trace = Trace.create () in
  let correct = List.map (fun id -> (id, { Probe.lifetime = 2 })) (ids 2) in
  let net = Net.create ~trace ~correct ~byzantine:[] () in
  let _ = Net.run net in
  check_true "join events recorded"
    (Trace.find trace ~f:(fun e -> e.Trace.what = "join (correct)") <> None);
  check_true "halt events recorded"
    (Trace.find trace ~f:(fun e -> e.Trace.what = "halt") <> None);
  check_true "events carry typed kinds"
    (Trace.find trace ~f:(fun e -> e.Trace.kind = Trace.Join) <> None
    && Trace.find trace ~f:(fun e -> e.Trace.kind = Trace.Send) <> None
    && Trace.find trace ~f:(fun e -> e.Trace.kind = Trace.Halt) <> None)

let test_trace_json () =
  let trace = Trace.create () in
  let correct = List.map (fun id -> (id, { Probe.lifetime = 2 })) (ids 2) in
  let net = Net.create ~trace ~correct ~byzantine:[] () in
  let _ = Net.run net in
  let events = Trace.events trace in
  (* Every event round-trips through its JSON encoding. *)
  List.iter
    (fun e ->
      match Trace.event_of_json (Trace.event_to_json e) with
      | Ok e' ->
          check_true "event round-trips"
            (e'.Trace.round = e.Trace.round
            && e'.Trace.kind = e.Trace.kind
            && e'.Trace.what = e.Trace.what
            && Option.map Node_id.to_int e'.Trace.node
               = Option.map Node_id.to_int e.Trace.node)
      | Error msg -> Alcotest.fail msg)
    events;
  (* JSONL: one parseable line per event, in order. *)
  let lines =
    Trace.to_jsonl trace |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per event" (List.length events) (List.length lines);
  List.iter
    (fun line ->
      match Ubpa_util.Json.of_string line with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail msg)
    lines

let test_decision_round_reported () =
  let net = mk 2 4 in
  let _ = Net.run net in
  List.iter
    (fun r ->
      check_true "halted_at = 4" (r.Net.halted_at = Some 4);
      check_true "first output at halt" (r.Net.first_output_round = Some 4))
    (Net.reports net)

let test_run_until () =
  let net = mk 2 100 in
  let res = Net.run_until ~max_rounds:10 net ~stop:(fun n -> Net.round n >= 5) in
  check_true "stopped by predicate" (res = `Stopped);
  check_int "round 5" 5 (Net.round net)

let suite =
  ( "sim",
    [
      quick "messages arrive exactly one round later" test_delivery_next_round;
      quick "broadcast delivers to self" test_broadcast_includes_self;
      quick "broadcast reaches every node" test_all_pairs_delivered;
      quick "halted nodes stop sending and receiving" test_halted_node_stops;
      quick "duplicate (sender,payload) suppressed per round"
        test_duplicate_payload_suppressed;
      quick "point-to-point reaches only the target" test_point_to_point;
      quick "rushing adversary sees current-round sends" test_rushing_view;
      quick "non-rushing adversary sees nothing" test_non_rushing_view;
      quick "nodes can join mid-run" test_join_mid_run;
      quick "duplicate identifiers rejected" test_duplicate_id_rejected;
      quick "metrics count sends, deliveries, rounds" test_metrics;
      quick "per-round metrics: ordering, timing, totals" test_metrics_per_round;
      quick "metrics JSON round-trip" test_metrics_json_roundtrip;
      quick "trace records engine events" test_trace_records;
      quick "trace events serialize to JSON/JSONL" test_trace_json;
      quick "reports carry decision rounds" test_decision_round_reported;
      quick "run_until stops on predicate" test_run_until;
    ] )
