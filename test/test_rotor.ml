open Ubpa_sim
open Ubpa_scenarios
open Helpers
module R = Scenarios.Rotor_int

let test_all_correct_terminates () =
  let s = R.run ~n_correct:5 () in
  check_true "terminated" s.R.all_terminated;
  check_true "good round" s.R.good_round_exists

let test_termination_bound () =
  (* Theorem rc: O(n) rounds. With the 2 init rounds the bound here is
     n + 3 for all-correct runs (each node is selected once, then repeat). *)
  let n = 7 in
  let s = R.run ~n_correct:n () in
  List.iter
    (fun r -> check_true "O(n) rounds" (r <= n + 3))
    s.R.termination_rounds

let test_silent_byz () =
  let f = 2 in
  let s =
    R.run ~byz:(List.init f (fun _ -> Strategy.silent)) ~n_correct:5 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true "good round despite silent byz" s.R.good_round_exists

let test_staggered_announcer () =
  (* Byzantine nodes announce to only part of the network, percolating into
     candidate sets over several rounds. *)
  let f = 3 in
  let byz =
    List.init f (fun i ->
        R.Attacks.staggered_announcer
          ~fraction:(0.35 +. (0.15 *. float_of_int i)))
  in
  let s = R.run ~byz ~n_correct:10 () in
  check_true "terminated" s.R.all_terminated;
  check_true "good round under staggered announcers" s.R.good_round_exists

let test_ghost_candidates_never_selected () =
  let ghosts = List.map Ubpa_util.Node_id.of_int [ 900001; 900002 ] in
  let f = 2 in
  let byz = List.init f (fun _ -> R.Attacks.ghost_candidate_pusher ghosts) in
  let s = R.run ~byz ~n_correct:7 () in
  check_true "terminated" s.R.all_terminated;
  List.iter
    (fun (_, (o : R.P.output)) ->
      List.iter
        (fun (_, coord) ->
          check_false "ghost never selected"
            (List.exists (Ubpa_util.Node_id.equal coord) ghosts))
        o.R.P.selections)
    s.R.outputs

let test_two_faced_coordinator () =
  (* A byzantine coordinator can hand out different opinions, but a good
     round with a *correct* coordinator still happens. *)
  let s =
    R.run ~byz:[ R.Attacks.two_faced_coordinator 111 222 ] ~n_correct:4 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true "correct good round exists" s.R.good_round_exists

let test_selections_cover_correct_nodes () =
  (* With everyone correct, every node's identifier gets a turn before
     termination. *)
  let n = 5 in
  let s = R.run ~n_correct:n () in
  List.iter
    (fun (_, (o : R.P.output)) ->
      check_int "n selections" n (List.length o.R.P.selections))
    s.R.outputs

let test_opinions_accepted_from_good_coordinator () =
  let s = R.run ~n_correct:4 () in
  (* every node accepted at least one opinion (there are >= 4 coordinator
     turns and all are correct) *)
  List.iter
    (fun (_, (o : R.P.output)) ->
      check_true "accepted opinions" (List.length o.R.P.accepted_opinions > 0))
    s.R.outputs

let test_termination_skew () =
  (* Correct nodes terminate within one round of each other: candidate sets
     are consistent by the relay property. *)
  let s =
    R.run
      ~byz:[ R.Attacks.staggered_announcer ~fraction:0.5 ]
      ~n_correct:7 ()
  in
  match s.R.termination_rounds with
  | [] -> Alcotest.fail "no terminations"
  | l ->
      let lo = List.fold_left min max_int l in
      let hi = List.fold_left max min_int l in
      check_true "skew <= 1" (hi - lo <= 1)

let test_shift_attack_no_early_break () =
  (* Regression for a subtlety in Algorithm 2: C_v is sorted by identifier,
     so a candidate with a *small* id inserted late shifts the positions and
     C_v[r mod |C_v|] re-hits an already-selected coordinator before the
     index ever wrapped. Two colluders with the smallest identifiers — one
     announcing instantly, one percolating one round later — would then
     terminate the rotor after selecting only Byzantine coordinators. The
     implementation follows the proof of Lemma rc-gdrnd and breaks only
     once r >= |C_v|, so a good round must still happen. *)
  let open Ubpa_util in
  let module R = Scenarios.Rotor_int in
  let correct_ids = List.map Node_id.of_int [ 100; 200; 300; 400; 500 ] in
  let early = Node_id.of_int 2 in
  (* announces to everyone *)
  let late = Node_id.of_int 1 in
  (* announces to a subset; enters C_v one round later, shifting it *)
  let full_announcer =
    Strategy.v ~name:"full" (fun _ _ view ->
        if view.Strategy.round = 1 then
          [ (Ubpa_sim.Envelope.Broadcast, R.P.inject R.P.Init) ]
        else [])
  in
  let staggered = R.Attacks.staggered_announcer ~fraction:0.45 in
  let correct = List.mapi (fun i id -> (id, i)) correct_ids in
  let net =
    R.Net.create
      ~correct
      ~byzantine:[ (early, full_announcer); (late, staggered) ]
      ()
  in
  let _ = R.Net.run ~max_rounds:100 net in
  let outputs = R.Net.outputs net in
  check_int "all terminated" 5 (List.length outputs);
  (* a good round: some rotor index where every correct node selected the
     same correct coordinator *)
  let good =
    match outputs with
    | [] -> false
    | (_, (first : R.P.output)) :: _ ->
        List.exists
          (fun (idx, _) ->
            match
              List.map
                (fun (_, (o : R.P.output)) -> List.assoc_opt idx o.R.P.selections)
                outputs
            with
            | Some c :: rest ->
                List.for_all (fun c' -> c' = Some c) rest
                && List.exists (Node_id.equal c) correct_ids
            | _ -> false)
          first.R.P.selections
  in
  check_true "good round despite the shift attack" good

let test_larger_network () =
  let s = R.run ~byz:(List.init 6 (fun _ -> Strategy.silent)) ~n_correct:19 () in
  check_true "n=25 f=6 terminates with good round"
    (s.R.all_terminated && s.R.good_round_exists)

let suite =
  ( "rotor-coordinator",
    [
      quick "all-correct run terminates with a good round"
        test_all_correct_terminates;
      quick "termination within O(n) rounds" test_termination_bound;
      quick "silent byzantine nodes" test_silent_byz;
      quick "staggered announcers (worst-case drip)" test_staggered_announcer;
      quick "ghost candidates never enter selection"
        test_ghost_candidates_never_selected;
      quick "two-faced byzantine coordinator" test_two_faced_coordinator;
      quick "every correct node gets a coordinator turn"
        test_selections_cover_correct_nodes;
      quick "opinions of good coordinators are accepted"
        test_opinions_accepted_from_good_coordinator;
      quick "termination skew at most one round" test_termination_skew;
      quick "sorted-insertion shift cannot break the rotor early"
        test_shift_attack_no_early_break;
      slow "larger network n=25" test_larger_network;
    ] )
