(** Property-based tests: random populations, inputs, seeds, and adversary
    mixes; the paper's safety claims must hold on every draw. *)

open Ubpa_sim
open Ubpa_scenarios
open Helpers

let consensus_attack_pool =
  let module A = Scenarios.Consensus_int.Attacks in
  [|
    (fun _ -> Strategy.silent);
    (fun _ -> A.silent_member);
    (fun i -> A.split_world (i mod 2) ((i + 1) mod 2));
    (fun i -> A.stubborn i);
    (fun i -> A.half_stubborn i);
    (fun _ -> Ubpa_adversary.Generic.mirror);
    (fun _ -> Ubpa_adversary.Generic.spam);
    (fun _ -> Ubpa_adversary.Generic.split_mirror);
    (fun _ -> Ubpa_adversary.Generic.crash_after 5);
    (fun _ -> Ubpa_adversary.Generic.random_mix);
    (* combinator-wrapped compound attacks *)
    (fun i ->
      Ubpa_adversary.Combinators.switch_at ~round:7
        Ubpa_adversary.Generic.mirror
        (A.split_world (i mod 2) ((i + 1) mod 2)));
    (fun i ->
      Ubpa_adversary.Combinators.target_subset ~fraction:0.5 (A.stubborn i));
    (fun i ->
      Ubpa_adversary.Combinators.with_probability 0.6 (A.half_stubborn i));
    (fun i ->
      Ubpa_adversary.Combinators.merge
        [ A.stubborn i; Ubpa_adversary.Generic.spam ]);
  |]

let gen_scene =
  QCheck2.Gen.(
    let* f = int_range 0 3 in
    let* extra = int_range 0 3 in
    let* seed = int_range 1 10_000 in
    let* attack_ix = array_size (pure f) (int_bound (Array.length consensus_attack_pool - 1)) in
    let* inputs = array_size (pure ((3 * f) + 1 + extra - f)) (int_bound 4) in
    pure (f, extra, seed, attack_ix, inputs))

let prop_consensus_safe =
  QCheck2.Test.make ~count:60 ~name:"consensus: agreement+validity on random scenes"
    gen_scene (fun (f, extra, seed, attack_ix, inputs) ->
      let n_correct = (3 * f) + 1 + extra - f in
      let byz =
        Array.to_list (Array.mapi (fun i ix -> consensus_attack_pool.(ix) i) attack_ix)
      in
      let s =
        Scenarios.Consensus_int.run
          ~seed:(Int64.of_int seed)
          ~byz ~n_correct
          ~inputs:(fun i -> inputs.(i mod Array.length inputs))
          ()
      in
      s.Scenarios.Consensus_int.all_terminated
      && s.Scenarios.Consensus_int.agreed
      && s.Scenarios.Consensus_int.valid)

let aa_attack_pool =
  [|
    (fun _ -> Strategy.silent);
    (fun _ -> Ubpa_adversary.Aa_attacks.pull_apart ~low:(-1e5) ~high:1e5);
    (fun _ -> Ubpa_adversary.Aa_attacks.outlier 1e7);
    (fun _ -> Ubpa_adversary.Aa_attacks.tracker ~offset:3.);
    (fun _ -> Ubpa_adversary.Generic.mirror);
  |]

let gen_aa =
  QCheck2.Gen.(
    let* f = int_range 0 3 in
    let* extra = int_range 0 4 in
    let* seed = int_range 1 10_000 in
    let* attack_ix = array_size (pure f) (int_bound (Array.length aa_attack_pool - 1)) in
    let* values =
      array_size
        (pure ((3 * f) + 1 + extra - f))
        (float_bound_inclusive 1000.)
    in
    pure (f, seed, attack_ix, values))

let prop_aa_safe =
  QCheck2.Test.make ~count:80
    ~name:"approximate agreement: within-range and halving on random scenes"
    gen_aa (fun (f, seed, attack_ix, values) ->
      let n_correct = Array.length values in
      ignore f;
      let byz =
        Array.to_list (Array.mapi (fun i ix -> aa_attack_pool.(ix) i) attack_ix)
      in
      let s =
        Scenarios.Aa.run
          ~seed:(Int64.of_int seed)
          ~byz ~n_correct
          ~inputs:(fun i -> values.(i))
          ()
      in
      s.Scenarios.Aa.within_range
      && s.Scenarios.Aa.contraction <= 0.5 +. 1e-9)

let gen_rb =
  QCheck2.Gen.(
    let* f = int_range 0 3 in
    let* extra = int_range 0 3 in
    let* seed = int_range 1 10_000 in
    pure (f, extra, seed))

let prop_rb_correctness =
  QCheck2.Test.make ~count:60
    ~name:"reliable broadcast: correct sender accepted in round 3"
    gen_rb (fun (f, extra, seed) ->
      let n_correct = (2 * f) + 1 + extra in
      let s =
        Scenarios.Rb.run
          ~seed:(Int64.of_int seed)
          ~byz:(List.init f (fun _ -> Strategy.silent))
          ~n_correct ~payload:"prop" ()
      in
      s.Scenarios.Rb.all_accepted_sender_payload
      && s.Scenarios.Rb.max_accept_round = 3)

let prop_renaming_consistent =
  QCheck2.Test.make ~count:40
    ~name:"renaming: consistent dense names on random populations"
    QCheck2.Gen.(
      let* f = int_range 0 2 in
      let* extra = int_range 0 4 in
      let* seed = int_range 1 10_000 in
      pure (f, extra, seed))
    (fun (f, extra, seed) ->
      let n_correct = (2 * f) + 1 + extra in
      let s =
        Scenarios.Renaming_run.run
          ~seed:(Int64.of_int seed)
          ~byz:(List.init f (fun _ -> Strategy.silent))
          ~n_correct ()
      in
      s.Scenarios.Renaming_run.all_terminated
      && s.Scenarios.Renaming_run.consistent
      && s.Scenarios.Renaming_run.names_are_dense)

let prop_parallel_agreement =
  QCheck2.Test.make ~count:30
    ~name:"parallel consensus: pair-set agreement on random scenes"
    QCheck2.Gen.(
      let* f = int_range 0 2 in
      let* seed = int_range 1 10_000 in
      let* k = int_range 0 3 in
      let* holders = int_bound 2 in
      pure (f, seed, k, holders))
    (fun (f, seed, k, holders) ->
      let n_correct = (2 * f) + 2 in
      let inputs i =
        if i <= holders then List.init k (fun j -> (j, (10 * j) + i)) else []
      in
      let byz =
        List.init f (fun i ->
            if i mod 2 = 0 then
              Scenarios.Parallel_int.Attacks.ghost_instance ~id:77 5
            else Strategy.silent)
      in
      let s =
        Scenarios.Parallel_int.run ~seed:(Int64.of_int seed) ~byz ~n_correct
          ~inputs ()
      in
      s.Scenarios.Parallel_int.all_terminated && s.Scenarios.Parallel_int.agreed)


let bc_attack_pool =
  [|
    (fun _ -> Strategy.silent);
    (fun _ -> Ubpa_adversary.Bc_attacks.silent_member);
    (fun _ -> Ubpa_adversary.Bc_attacks.split_world);
    (fun i -> Ubpa_adversary.Bc_attacks.stubborn (i mod 2 = 0));
    (fun _ -> Ubpa_adversary.Generic.mirror);
    (fun _ -> Ubpa_adversary.Generic.spam);
  |]

let prop_binary_safe =
  QCheck2.Test.make ~count:40
    ~name:"binary consensus: agreement+strong-validity on random scenes"
    QCheck2.Gen.(
      let* f = int_range 0 2 in
      let* extra = int_range 0 3 in
      let* seed = int_range 1 10_000 in
      let* attack_ix =
        array_size (pure f) (int_bound (Array.length bc_attack_pool - 1))
      in
      let* inputs = array_size (pure ((2 * f) + 1 + extra)) bool in
      pure (f, seed, attack_ix, inputs))
    (fun (f, seed, attack_ix, inputs) ->
      ignore f;
      let n_correct = Array.length inputs in
      let byz =
        Array.to_list
          (Array.mapi (fun i ix -> bc_attack_pool.(ix) i) attack_ix)
      in
      let s =
        Scenarios.Binary.run ~seed:(Int64.of_int seed) ~byz ~n_correct
          ~inputs:(fun i -> inputs.(i))
          ()
      in
      s.Scenarios.Binary.all_terminated
      && s.Scenarios.Binary.agreed
      && s.Scenarios.Binary.valid)

let prop_trb_agreement =
  QCheck2.Test.make ~count:40
    ~name:"terminating reliable broadcast: common output on random scenes"
    QCheck2.Gen.(
      let* f = int_range 0 2 in
      let* extra = int_range 0 3 in
      let* seed = int_range 1 10_000 in
      let* byz_sender = bool in
      pure (f, extra, seed, byz_sender))
    (fun (f, extra, seed, byz_sender) ->
      let f = if byz_sender then max f 1 else f in
      let n_correct = (2 * f) + 1 + extra in
      let s =
        Scenarios.Trb_str.run ~seed:(Int64.of_int seed)
          ~byz:(List.init f (fun _ -> Strategy.silent))
          ~byz_sender ~n_correct ~payload:"p" ()
      in
      s.Scenarios.Trb_str.all_terminated && s.Scenarios.Trb_str.agreed
      && (byz_sender
         || List.for_all
              (fun (_, o) -> o = Some "p")
              s.Scenarios.Trb_str.outputs))

let prop_rotor_good_round =
  QCheck2.Test.make ~count:40
    ~name:"rotor: good round exists under random staggered announcers"
    QCheck2.Gen.(
      let* f = int_range 0 3 in
      let* extra = int_range 0 3 in
      let* seed = int_range 1 10_000 in
      let* fracs = array_size (pure f) (float_range 0.2 0.9) in
      pure (f, extra, seed, fracs))
    (fun (f, extra, seed, fracs) ->
      let n_correct = (2 * f) + 1 + extra in
      let byz =
        Array.to_list
          (Array.map
             (fun fr ->
               Scenarios.Rotor_int.Attacks.staggered_announcer ~fraction:fr)
             fracs)
      in
      let s =
        Scenarios.Rotor_int.run ~seed:(Int64.of_int seed) ~byz ~n_correct ()
      in
      s.Scenarios.Rotor_int.all_terminated
      && s.Scenarios.Rotor_int.good_round_exists)


let prop_total_order_prefix =
  QCheck2.Test.make ~count:10
    ~name:"total order: chain-prefix under random small churn"
    QCheck2.Gen.(
      let* seed = int_range 1 10_000 in
      let* n_genesis = int_range 4 5 in
      let* rounds = int_range 4 8 in
      let* epr = int_range 0 2 in
      let* join_round = int_range 3 6 in
      let* with_join = bool in
      pure (seed, n_genesis, rounds, epr, join_round, with_join))
    (fun (seed, n_genesis, rounds, epr, join_round, with_join) ->
      let churn =
        if with_join then
          { Scenarios.Total_order_str.join_at = [ (join_round, 1) ]; leave_at = [] }
        else Scenarios.Total_order_str.no_churn
      in
      let s =
        Scenarios.Total_order_str.run ~seed:(Int64.of_int seed) ~churn
          ~n_genesis ~rounds ~events_per_round:epr ()
      in
      s.Scenarios.Total_order_str.prefix_consistent)


(* Differential property: the id-only reliable broadcast exchanges exactly
   as many messages as the Srikanth-Toueg baseline on fault-free runs —
   the paper's "message complexity is unaffected" claim, as an equality. *)
module St = Ubpa_baselines.St_broadcast.Make (Unknown_ba.Value.String)
module St_net = Ubpa_sim.Network.Make (St)

let st_delivered ~seed ~n =
  let ids = Scenarios.make_ids ~seed n in
  let correct =
    List.mapi
      (fun i id ->
        ( id,
          { St.payload = (if i = 0 then Some "m" else None);
            f = Scenarios.max_f n } ))
      ids
  in
  let net = St_net.create ~correct ~byzantine:[] () in
  let stop net =
    let reports = St_net.reports net in
    reports <> []
    && List.for_all
         (fun r ->
           match r.St_net.last_output with Some (_ :: _) -> true | _ -> false)
         reports
  in
  let _ = St_net.run_until ~max_rounds:20 net ~stop in
  (* Match the two settle rounds the Rb scenario runs. *)
  St_net.step_round net;
  St_net.step_round net;
  Ubpa_sim.Metrics.delivered (St_net.metrics net)

let prop_rb_matches_baseline_messages =
  QCheck2.Test.make ~count:20
    ~name:"reliable broadcast: message count equals Srikanth-Toueg baseline"
    QCheck2.Gen.(
      let* n = int_range 4 30 in
      let* seed = int_range 1 10_000 in
      pure (n, seed))
    (fun (n, seed) ->
      let seed = Int64.of_int seed in
      let ours = Scenarios.Rb.run ~seed ~n_correct:n ~payload:"m" () in
      ours.Scenarios.Rb.delivered_msgs = st_delivered ~seed ~n)

let prop_async_partitions_always_disagree =
  QCheck2.Test.make ~count:20
    ~name:"impossibility: asynchronous partitions disagree for any sizes"
    QCheck2.Gen.(
      let* a = int_range 1 6 in
      let* b = int_range 1 6 in
      let* seed = int_range 1 10_000 in
      pure (a, b, seed))
    (fun (a, b, seed) ->
      let v =
        Ubpa_semisync.Partition.asynchronous ~seed:(Int64.of_int seed)
          ~size_a:a ~size_b:b ()
      in
      v.Ubpa_semisync.Partition.disagreement
      && List.for_all (fun x -> x = 1) v.Ubpa_semisync.Partition.outputs_a
      && List.for_all (fun x -> x = 0) v.Ubpa_semisync.Partition.outputs_b)

let suite =
  ( "properties",
    qcheck_cases
      [
        prop_consensus_safe;
        prop_aa_safe;
        prop_rb_correctness;
        prop_renaming_consistent;
        prop_parallel_agreement;
        prop_binary_safe;
        prop_trb_agreement;
        prop_rotor_good_round;
        prop_total_order_prefix;
        prop_rb_matches_baseline_messages;
        prop_async_partitions_always_disagree;
      ] )
