(* Artifact schema round-trips and the bench_diff regression gate. *)

open Ubpa_report
open Helpers

let mk ?(experiment = "E1") ?(fast = true) ?(elapsed_ms = 12.5)
    ?(claims =
      [
        { Artifact.cid = "E1.a"; description = "bound a"; status = Artifact.Pass };
        { Artifact.cid = "E1.b"; description = "bound b"; status = Artifact.Pass };
      ])
    ?(rows = [ [ "4"; "yes"; "48" ]; [ "7"; "yes"; "147" ] ])
    ?(complexity = []) () =
  let columns = [ "n"; "ok"; "msgs" ] in
  {
    Artifact.experiment;
    title = "fixture table";
    fast;
    seeds = [ 1; 2 ];
    elapsed_ms;
    columns;
    rows;
    claims;
    metrics = Artifact.derive_metrics ~columns ~rows;
    complexity;
  }

let fail_claim c = { c with Artifact.status = Artifact.Fail }

let test_derive_metrics () =
  let a = mk () in
  (* "n" and "msgs" are numeric, "ok" is not. *)
  check_true "numeric columns only"
    (List.map fst a.Artifact.metrics
    = [ "n:sum"; "n:max"; "msgs:sum"; "msgs:max" ]);
  check_true "sum" (List.assoc "msgs:sum" a.Artifact.metrics = 195.);
  check_true "max" (List.assoc "msgs:max" a.Artifact.metrics = 147.)

let test_json_roundtrip () =
  let a = mk () in
  match Artifact.of_json (Artifact.to_json a) with
  | Ok a' -> check_true "artifact round-trips" (a = a')
  | Error msg -> Alcotest.fail msg

let test_write_load_dir () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ubpa-report-test" in
  let nested = Filename.concat (Filename.concat dir "deep") "er" in
  let a = mk () and b = mk ~experiment:"E2" () in
  let (_ : string) = Artifact.write ~dir:nested a in
  let (_ : string) = Artifact.write ~dir:nested b in
  (match Artifact.load_dir nested with
  | Ok [ a'; b' ] ->
      check_true "sorted by experiment"
        (a'.Artifact.experiment = "E1" && b'.Artifact.experiment = "E2");
      check_true "contents survive the filesystem" (a = a')
  | Ok l -> Alcotest.failf "expected 2 artifacts, got %d" (List.length l)
  | Error msg -> Alcotest.fail msg);
  check_true "missing dir is an error"
    (match Artifact.load_dir (Filename.concat dir "nope") with
    | Error _ -> true
    | Ok _ -> false)

let test_check_claims () =
  let ok = mk () in
  check_true "all-pass artifacts gate clean"
    (Diff.failures (Diff.check_claims [ ok ]) = []);
  let bad =
    mk ~claims:(List.map fail_claim ok.Artifact.claims) ()
  in
  check_int "each failed claim is one failure" 2
    (List.length (Diff.failures (Diff.check_claims [ ok; bad ])));
  let empty = mk ~claims:[] () in
  let issues = Diff.check_claims [ empty ] in
  check_true "empty claims block is info, not failure"
    (Diff.failures issues = [] && issues <> [])

let test_compare_identical () =
  let a = [ mk (); mk ~experiment:"E2" () ] in
  check_true "dir diffed against itself is clean"
    (Diff.failures (Diff.compare ~baseline:a ~candidate:a ()) = [])

let test_compare_claim_regression () =
  let base = mk () in
  let cand =
    mk ~claims:(List.map fail_claim base.Artifact.claims) ()
  in
  let fs = Diff.failures (Diff.compare ~baseline:[ base ] ~candidate:[ cand ] ()) in
  (* Each claim fails twice: once as a pass->fail flip, once absolutely. *)
  check_true "claim regression fails the gate" (List.length fs >= 2)

let test_compare_metric_regression () =
  let base = mk () in
  let worse = mk ~rows:[ [ "4"; "yes"; "480" ]; [ "7"; "yes"; "1470" ] ] () in
  let fs =
    Diff.failures (Diff.compare ~baseline:[ base ] ~candidate:[ worse ] ())
  in
  check_true "10x message growth fails the default 10% budget" (fs <> []);
  check_true "a 200%% budget absorbs small growth"
    (Diff.failures
       (Diff.compare ~threshold:2000. ~baseline:[ base ] ~candidate:[ worse ] ())
    = [])

let test_compare_missing_experiment () =
  let base = [ mk (); mk ~experiment:"E2" () ] in
  let cand = [ mk () ] in
  check_true "dropping an experiment fails the gate"
    (Diff.failures (Diff.compare ~baseline:base ~candidate:cand ()) <> [])

let test_compare_incomparable_sweeps () =
  let base = mk ~fast:false () in
  let cand = mk ~fast:true ~rows:[ [ "4"; "yes"; "999999" ] ] () in
  let issues = Diff.compare ~baseline:[ base ] ~candidate:[ cand ] () in
  check_true "fast-vs-full sweeps skip the metric gate"
    (Diff.failures issues = [])

let test_exact_gate () =
  let base = mk () in
  check_true "exact mode passes on identical tables"
    (Diff.failures
       (Diff.compare ~exact:true ~baseline:[ base ] ~candidate:[ base ] ())
    = []);
  (* A one-cell drift is invisible to the metric gate at default threshold
     (48 -> 49 is ~2% growth) but must fail the exact gate. *)
  let drifted = mk ~rows:[ [ "4"; "yes"; "49" ]; [ "7"; "yes"; "147" ] ] () in
  check_true "cell drift passes the threshold gate"
    (Diff.failures
       (Diff.compare ~baseline:[ base ] ~candidate:[ drifted ] ())
    = []);
  check_true "cell drift fails the exact gate"
    (Diff.failures
       (Diff.compare ~exact:true ~baseline:[ base ] ~candidate:[ drifted ] ())
    <> []);
  (* Wall-clock metadata stays exempt even in exact mode. *)
  let slower = mk ~elapsed_ms:9999. () in
  check_true "elapsed_ms is exempt from the exact gate"
    (Diff.failures
       (Diff.compare ~exact:true ~baseline:[ base ] ~candidate:[ slower ] ())
    = [])

let test_time_gate_opt_in () =
  let base = mk ~elapsed_ms:10. () in
  let cand = mk ~elapsed_ms:100. () in
  check_true "timing is not gated by default"
    (Diff.failures (Diff.compare ~baseline:[ base ] ~candidate:[ cand ] ()) = []);
  check_true "timing gated when a budget is given"
    (Diff.failures
       (Diff.compare ~time_threshold:50. ~baseline:[ base ] ~candidate:[ cand ]
          ())
    <> [])

let suite =
  ( "report",
    [
      quick "derive_metrics picks numeric columns" test_derive_metrics;
      quick "artifact JSON round-trip" test_json_roundtrip;
      quick "write/load_dir with nested directories" test_write_load_dir;
      quick "claim gate" test_check_claims;
      quick "diff: identical dirs pass" test_compare_identical;
      quick "diff: claim regression fails" test_compare_claim_regression;
      quick "diff: metric regression fails" test_compare_metric_regression;
      quick "diff: missing experiment fails" test_compare_missing_experiment;
      quick "diff: incomparable sweeps are skipped" test_compare_incomparable_sweeps;
      quick "diff: exact mode is a refactor gate" test_exact_gate;
      quick "diff: wall-clock gate is opt-in" test_time_gate_opt_in;
    ] )
