open Ubpa_util
open Helpers

let test_threshold_exact () =
  (* count >= n/3 over the rationals, no flooring. *)
  check_true "3/9" (Threshold.ge_third ~count:3 ~of_:9);
  check_false "2/9" (Threshold.ge_third ~count:2 ~of_:9);
  check_true "4/10 (10/3 = 3.33)" (Threshold.ge_third ~count:4 ~of_:10);
  check_false "3/10" (Threshold.ge_third ~count:3 ~of_:10);
  check_true "7/10 (2*10/3 = 6.67)" (Threshold.ge_two_thirds ~count:7 ~of_:10);
  check_false "6/10" (Threshold.ge_two_thirds ~count:6 ~of_:10);
  check_true "6/9" (Threshold.ge_two_thirds ~count:6 ~of_:9);
  check_false "0/1 third" (Threshold.ge_third ~count:0 ~of_:1);
  check_true "1/1" (Threshold.ge_two_thirds ~count:1 ~of_:1)

let test_threshold_negation () =
  for n = 1 to 50 do
    for c = 0 to n do
      Alcotest.(check bool)
        (Printf.sprintf "lt_third %d/%d" c n)
        (not (Threshold.ge_third ~count:c ~of_:n))
        (Threshold.lt_third ~count:c ~of_:n)
    done
  done

let test_floor_third () =
  check_int "0" 0 (Threshold.floor_third 2);
  check_int "1" 1 (Threshold.floor_third 4);
  check_int "3" 3 (Threshold.floor_third 9);
  check_int "3 for 11" 3 (Threshold.floor_third 11)

let test_node_id_scatter () =
  let ids = Node_id.scatter ~seed:42L 100 in
  check_int "count" 100 (List.length ids);
  check_int "distinct" 100 (List.length (Node_id.sorted ids));
  (* non-consecutive: no two ids differ by exactly 1 *)
  let sorted = Node_id.sorted ids |> List.map Node_id.to_int in
  let rec adjacent = function
    | a :: (b :: _ as rest) -> b - a = 1 || adjacent rest
    | _ -> false
  in
  check_false "no adjacent identifiers" (adjacent sorted)

let test_node_id_scatter_deterministic () =
  let a = Node_id.scatter ~seed:7L 20 in
  let b = Node_id.scatter ~seed:7L 20 in
  check_true "same seed, same ids" (a = b);
  let c = Node_id.scatter ~seed:8L 20 in
  check_false "different seed, different ids" (a = c)

let test_rng_deterministic () =
  let a = Rng.create 1L and b = Rng.create 1L in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  check_true "streams equal" (xs = ys)

let test_rng_split_independent () =
  let root = Rng.create 1L in
  let child = Rng.split root in
  (* Drawing from the child must not change what the root produces next
     relative to a root that also split. *)
  let root' = Rng.create 1L in
  let _ = Rng.split root' in
  let _ = List.init 5 (fun _ -> Rng.int child 100) in
  check_int "root unaffected by child draws" (Rng.int root' 1000)
    (Rng.int root 1000)

let test_rng_bounds () =
  let rng = Rng.create 99L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    check_true "in bounds" (v >= 0 && v < 7)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5L in
  let l = List.init 20 Fun.id in
  let s = Rng.shuffle rng l in
  check_true "permutation" (List.sort compare s = l)

let test_tally_dedup () =
  let t = Tally.create ~compare:String.compare () in
  let a = Node_id.of_int 1 and b = Node_id.of_int 2 in
  Tally.add t ~sender:a "x";
  Tally.add t ~sender:a "x";
  Tally.add t ~sender:b "x";
  check_int "same sender counted once" 2 (Tally.count t "x");
  check_int "absent content" 0 (Tally.count t "y")

let test_tally_max_and_meeting () =
  let t = Tally.create ~compare:String.compare () in
  List.iteri
    (fun i v -> Tally.add t ~sender:(Node_id.of_int i) v)
    [ "a"; "a"; "a"; "b"; "b"; "c" ];
  (match Tally.max_by_count t with
  | Some ("a", 3) -> ()
  | other ->
      Alcotest.failf "expected (a,3), got %s"
        (match other with
        | Some (k, c) -> Printf.sprintf "(%s,%d)" k c
        | None -> "none"));
  let meets = Tally.meeting t ~threshold:(fun c -> c >= 2) in
  check_true "a and b meet" (List.sort compare meets = [ "a"; "b" ])

let test_tally_tie_break () =
  let t = Tally.create ~compare:String.compare () in
  Tally.add t ~sender:(Node_id.of_int 1) "z";
  Tally.add t ~sender:(Node_id.of_int 2) "a";
  match Tally.max_by_count t with
  | Some ("a", 1) -> ()
  | _ -> Alcotest.fail "tie must break toward the smaller content"

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 1.; 2.; 3.; 4. ]);
  Alcotest.(check (float 1e-9)) "range" 2.0 (Stats.range [ 1.; 2.; 3. ]);
  let lo, hi = Stats.min_max [ 5.; -1.; 3. ] in
  Alcotest.(check (float 1e-9)) "min" (-1.) lo;
  Alcotest.(check (float 1e-9)) "max" 5. hi;
  Alcotest.(check (float 1e-9)) "p100" 9. (Stats.percentile 100. [ 1.; 9.; 3. ])

let test_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.; 1.; 2.; 3. ] in
  check_int "buckets" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check_int "all counted" 4 total

let test_table () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rowf t "%d|%s" 3 "four";
  let csv = Table.to_csv t in
  check_true "csv header" (String.length csv > 0);
  Alcotest.(check string) "csv" "a,b\n1,2\n3,four\n" csv;
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Table.add_row (t): expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv_quoting () =
  let t = Table.create ~title:"q" ~columns:[ "x" ] in
  Table.add_row t [ "a,b" ];
  Alcotest.(check string) "quoted" "x\n\"a,b\"\n" (Table.to_csv t)


let test_value_modules () =
  let open Unknown_ba.Value in
  check_true "int order" (Int.compare 1 2 < 0);
  check_true "float order" (Float.compare 1.5 1.25 > 0);
  check_true "bool order" (Bool.compare false true < 0);
  check_true "string order" (String.compare "a" "b" < 0);
  let module O = Option (Int) in
  check_true "bottom sorts below values" (O.compare None (Some 0) < 0);
  check_int "equal options" 0 (O.compare (Some 3) (Some 3));
  Alcotest.(check string) "bottom renders" "⊥" (Fmt.to_to_string O.pp None)

let test_max_f () =
  List.iter
    (fun (n, expected) ->
      check_int (Printf.sprintf "max_f %d" n) expected (Ubpa_scenarios.Scenarios.max_f n))
    [ (1, 0); (3, 0); (4, 1); (6, 1); (7, 2); (13, 4); (61, 20) ];
  (* n > 3f holds at max_f and fails just above. *)
  for n = 1 to 100 do
    let f = Ubpa_scenarios.Scenarios.max_f n in
    check_true "n > 3f" (n > 3 * f);
    check_false "maximal" (n > 3 * (f + 1))
  done

let suite =
  ( "util",
    [
      quick "threshold: exact rational comparisons" test_threshold_exact;
      quick "threshold: lt_third is the negation" test_threshold_negation;
      quick "threshold: floor_third" test_floor_third;
      quick "node_id: scatter is distinct and non-consecutive"
        test_node_id_scatter;
      quick "node_id: scatter is deterministic" test_node_id_scatter_deterministic;
      quick "rng: deterministic" test_rng_deterministic;
      quick "rng: split independence" test_rng_split_independent;
      quick "rng: int stays in bounds" test_rng_bounds;
      quick "rng: shuffle is a permutation" test_rng_shuffle_permutation;
      quick "tally: duplicate senders collapse" test_tally_dedup;
      quick "tally: max_by_count and meeting" test_tally_max_and_meeting;
      quick "tally: deterministic tie-break" test_tally_tie_break;
      quick "stats: summaries" test_stats;
      quick "stats: histogram" test_histogram;
      quick "table: render and csv" test_table;
      quick "table: csv quoting" test_table_csv_quoting;
      quick "value modules order and print" test_value_modules;
      quick "max_f is the tight n>3f bound" test_max_f;
    ] )
