(** Online safety monitors, driven directly with hand-built observations
    and trace events — every invariant must fire on its violation, stay
    green otherwise, skip excused nodes, and report (never assert). *)

open Ubpa_util
open Ubpa_sim
open Helpers
module M = Ubpa_monitor

let id i = Node_id.of_int i

let obs ?(joined = 1) ?halted ?(down = false) ?output i =
  { M.node = id i; joined_at = joined; halted_at = halted; down; output }

let fires ?excused ~round invariants observations =
  let m = M.create ?excused invariants in
  M.observe m ~round observations;
  M.first_violation m

let test_agreement () =
  let inv = [ M.agreement ~equal:Int.equal ~pp:Fmt.int () ] in
  let split =
    [ obs 1 ~halted:3 ~output:0; obs 2 ~halted:3 ~output:1; obs 3 ~output:1 ]
  in
  (match fires ~round:3 inv split with
  | Some v ->
      Alcotest.(check string) "invariant name" "agreement" v.M.invariant;
      check_int "round recorded" 3 v.M.round
  | None -> Alcotest.fail "split decision must fire");
  check_true "unanimous is green"
    (fires ~round:3 inv [ obs 1 ~halted:3 ~output:1; obs 2 ~halted:3 ~output:1 ]
    = None);
  check_true "provisional outputs are not decisions"
    (fires ~round:3 inv [ obs 1 ~halted:3 ~output:0; obs 2 ~output:1 ] = None)

let test_excused_invisible () =
  let inv = [ M.agreement ~equal:Int.equal () ] in
  check_true "excused node cannot violate"
    (fires
       ~excused:(Node_id.Set.singleton (id 2))
       ~round:3 inv
       [ obs 1 ~halted:3 ~output:0; obs 2 ~halted:3 ~output:1 ]
    = None)

let test_validity () =
  let inv = [ M.validity ~ok:(fun _ v -> v = 0 || v = 1) () ] in
  (match fires ~round:4 inv [ obs 1 ~halted:4 ~output:7 ] with
  | Some v -> check_true "names the node" (v.M.node = Some (id 1))
  | None -> Alcotest.fail "out-of-range decision must fire");
  check_true "valid decision green"
    (fires ~round:4 inv [ obs 1 ~halted:4 ~output:1 ] = None)

let test_termination_by () =
  let inv = [ M.termination_by ~round:5 () ] in
  check_true "before the deadline nothing fires"
    (fires ~round:4 inv [ obs 1 ] = None);
  (match fires ~round:5 inv [ obs 1 ~halted:3 ~output:1; obs 2 ] with
  | Some v -> check_true "laggard named" (v.M.node = Some (id 2))
  | None -> Alcotest.fail "laggard at the deadline must fire");
  check_true "a down node is not a laggard"
    (fires ~round:5 inv [ obs 1 ~halted:3 ~output:1; obs 2 ~down:true ] = None)

let test_progress_by () =
  let inv =
    [
      M.progress_by ~name:"has-output" ~round:4
        ~ok:(fun o -> o.M.output <> None)
        ();
    ]
  in
  (match fires ~round:4 inv [ obs 1 ~output:1; obs 2 ] with
  | Some v ->
      Alcotest.(check string) "custom name" "has-output" v.M.invariant
  | None -> Alcotest.fail "missing progress must fire");
  check_true "progress everywhere is green"
    (fires ~round:9 inv [ obs 1 ~output:1; obs 2 ~output:2 ] = None)

let test_unforgeable () =
  let inv =
    [ M.unforgeable ~keys:(fun o -> o) ~forged:(fun k -> k = 13) () ]
  in
  check_true "clean outputs green"
    (fires ~round:2 inv [ obs 1 ~output:[ 1; 2 ] ] = None);
  check_true "fires on a forged key even before halt"
    (fires ~round:2 inv [ obs 1 ~output:[ 1; 13 ] ] <> None)

let test_accept_relay () =
  let m = M.create [ M.accept_relay ~keys:(fun o -> o) () ] in
  (* Round 3: node 1 accepts key 7; node 2 has nothing yet — that is
     fine, relay allows one round. *)
  M.observe m ~round:3 [ obs 1 ~output:[ 7 ]; obs 2 ~output:[] ];
  check_true "one round of slack" (M.first_violation m = None);
  (* Round 4: node 2 still lacks it — violation. *)
  M.observe m ~round:4 [ obs 1 ~output:[ 7 ]; obs 2 ~output:[] ];
  (match M.first_violation m with
  | Some v -> check_true "laggard named" (v.M.node = Some (id 2))
  | None -> Alcotest.fail "missed relay must fire");
  (* Late joiners and down nodes are exempt. *)
  let m2 = M.create [ M.accept_relay ~keys:(fun o -> o) () ] in
  M.observe m2 ~round:3 [ obs 1 ~output:[ 7 ] ];
  M.observe m2 ~round:4
    [ obs 1 ~output:[ 7 ]; obs 2 ~joined:4 ~output:[]; obs 3 ~down:true ~output:[] ];
  check_true "late joiner and down node exempt" (M.first_violation m2 = None)

let test_no_send_after_halt () =
  let ev ?node ~round kind what = { Trace.round; node; kind; what } in
  let m = M.create [ M.no_send_after_halt () ] in
  M.observe_event m (ev ~node:(id 1) ~round:3 Trace.Halt "halt");
  M.observe_event m (ev ~node:(id 2) ~round:4 Trace.Send "send");
  check_true "other nodes may send" (M.first_violation m = None);
  M.observe_event m (ev ~node:(id 1) ~round:4 Trace.Send "send");
  (match M.first_violation m with
  | Some v ->
      check_true "halted sender named" (v.M.node = Some (id 1));
      check_int "at the send round" 4 v.M.round
  | None -> Alcotest.fail "send after halt must fire");
  (* Excused nodes are skipped at the event layer too. *)
  let m2 =
    M.create ~excused:(Node_id.Set.singleton (id 1)) [ M.no_send_after_halt () ]
  in
  M.observe_event m2 (ev ~node:(id 1) ~round:3 Trace.Halt "halt");
  M.observe_event m2 (ev ~node:(id 1) ~round:4 Trace.Send "send");
  check_true "excused events invisible" (M.first_violation m2 = None)

let test_fires_once_and_first () =
  let m =
    M.create
      [
        M.agreement ~equal:Int.equal ();
        M.validity ~ok:(fun _ v -> v < 10) ();
      ]
  in
  let bad = [ obs 1 ~halted:2 ~output:0; obs 2 ~halted:2 ~output:33 ] in
  M.observe m ~round:2 bad;
  M.observe m ~round:3 bad;
  M.observe m ~round:4 bad;
  check_int "each invariant fires at most once" 2
    (List.length (M.violations m));
  (match M.first_violation m with
  | Some v -> check_int "first violation keeps its round" 2 v.M.round
  | None -> Alcotest.fail "expected violations");
  check_false "all_green reports the truth" (M.all_green m)

let test_custom () =
  let inv =
    [
      M.custom ~name:"even-round-quiet"
        ~on_round:(fun ~round obs ->
          if round mod 2 = 0 && obs <> [] then
            Some (None, "observed on an even round")
          else None)
        ();
    ]
  in
  check_true "odd round green" (fires ~round:3 inv [ obs 1 ] = None);
  match fires ~round:4 inv [ obs 1 ] with
  | Some v ->
      Alcotest.(check string) "name" "even-round-quiet" v.M.invariant
  | None -> Alcotest.fail "custom hook must fire"

let suite =
  ( "monitor",
    [
      quick "agreement" test_agreement;
      quick "excused nodes are invisible" test_excused_invisible;
      quick "validity" test_validity;
      quick "termination-by deadline" test_termination_by;
      quick "progress-by deadline" test_progress_by;
      quick "unforgeability" test_unforgeable;
      quick "accept-relay" test_accept_relay;
      quick "no send after halt (events)" test_no_send_after_halt;
      quick "fires once, first violation kept" test_fires_once_and_first;
      quick "custom invariant" test_custom;
    ] )
