open Ubpa_util
open Ubpa_sim
open Helpers

module C = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int)
module Net = Network.Make (C)

let traced_run () =
  let trace = Trace.create () in
  let ids = Node_id.scatter ~seed:91L 4 in
  let net =
    Net.create ~trace
      ~correct:(List.mapi (fun i id -> (id, i mod 2)) ids)
      ~byzantine:[] ()
  in
  let _ = Net.run net in
  (trace, ids, Net.round net)

let test_dimensions () =
  let trace, ids, rounds = traced_run () in
  let tl = Timeline.of_trace trace in
  check_int "rounds" rounds (Timeline.rounds tl);
  check_true "all nodes present" (Timeline.nodes tl = Node_id.sorted ids)

let test_rendering () =
  let trace, ids, _ = traced_run () in
  let tl = Timeline.of_trace trace in
  let s = Timeline.to_string tl in
  check_true "header row" (String.length s > 0);
  (* Every node id appears; every node joined in round 1 and decided. *)
  List.iter
    (fun id ->
      let needle = Fmt.str "%a" Node_id.pp id in
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      check_true "node row present" (contains s needle))
    ids;
  let lines = String.split_on_char '\n' s in
  check_int "header + n rows + trailing newline" (4 + 2) (List.length lines);
  (* decided marker on every node row *)
  List.iteri
    (fun i line ->
      if i > 0 && String.trim line <> "" then
        check_true "D marker" (String.contains line 'D'))
    lines

let test_truncation () =
  let trace, _, _ = traced_run () in
  let tl = Timeline.of_trace trace in
  let s = Timeline.to_string ~max_rounds:3 tl in
  check_true "ellipsis column"
    (String.split_on_char '\n' s
    |> List.hd
    |> fun h ->
    String.length h >= 3 && String.sub h (String.length h - 3) 3 = "...")

let test_empty () =
  let tl = Timeline.of_trace Trace.disabled in
  check_int "no rounds" 0 (Timeline.rounds tl);
  Alcotest.(check string) "empty banner" "(empty timeline)\n" (Timeline.to_string tl)

let suite =
  ( "timeline",
    [
      quick "dimensions match the run" test_dimensions;
      quick "rendering contains every node and decision" test_rendering;
      quick "wide executions are truncated" test_truncation;
      quick "empty trace" test_empty;
    ] )
