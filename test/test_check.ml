(** Exhaustive checker (lib/check): verdicts on calibrated cells,
    counterexample replayability, --jobs and symmetry identity, the
    committed-baseline golden, and the chaos-vs-checker differential
    (one scripted fault plan through both systems must give byte-identical
    terminal states, stalled sets, and monitor verdicts). *)

open Ubpa_util
open Helpers
module M = Ubpa_monitor
module F = Ubpa_faults
module Ck_rb = Ubpa_check.Checker.Make (Ubpa_check.Models.Rb)
module Ck_cons = Ubpa_check.Checker.Make (Ubpa_check.Models.Consensus)

let verdict = function
  | Ubpa_check.Checker.Verified -> "verified"
  | Violated -> "violation"
  | Out_of_budget -> "out-of-budget"

(* ----- verdicts on the calibrated envelope cells ----- *)

let test_rb_verified () =
  let r = Ck_rb.check ~n:4 ~f:1 ~max_rounds:4 () in
  Alcotest.(check string) "n=4 f=1 proved" "verified" (verdict r.verdict);
  check_true "nothing to replay" (r.cex = None);
  check_true "symmetry pruned some orbits" (r.stats.sym_skips > 0);
  check_int "explored to the horizon" 4 r.stats.depth

let test_rb_benign_verified () =
  let r =
    Ck_rb.check ~n:4 ~f:0 ~crash_budget:1 ~omit_budget:1 ~max_rounds:4 ()
  in
  Alcotest.(check string)
    "one crash + one omission stay safe" "verified" (verdict r.verdict)

let test_consensus_violation () =
  (* n = 3, f = 1 sits on the 3f >= n boundary: agreement must break. *)
  let r = Ck_cons.check ~n:3 ~f:1 ~max_rounds:8 () in
  Alcotest.(check string) "boundary breaks" "violation" (verdict r.verdict);
  match r.cex with
  | None -> Alcotest.fail "violation without a counterexample"
  | Some cx ->
      Alcotest.(check string) "agreement is the broken property" "agreement"
        cx.cx_property;
      check_true "minimized script still reproduces it" cx.cx_replayed

(* ----- counterexample JSONL: round-trip and replay ----- *)

let test_rb_cex_roundtrip () =
  let r = Ck_rb.check ~n:3 ~f:1 ~max_rounds:5 () in
  Alcotest.(check string) "f > n/3 breaks RB" "violation" (verdict r.verdict);
  match r.cex with
  | None -> Alcotest.fail "violation without a counterexample"
  | Some cx ->
      check_true "replayed" cx.cx_replayed;
      check_true "some byz messages survive minimization" (cx.cx_byz_msgs > 0);
      (* the trace is standard JSONL: parse -> re-record -> serialize is
         the identity *)
      let events =
        match Ubpa_sim.Trace.of_jsonl cx.cx_jsonl with
        | Ok evs -> evs
        | Error e -> Alcotest.fail ("counterexample JSONL unparseable: " ^ e)
      in
      let tr = Ubpa_sim.Trace.create () in
      List.iter
        (fun (e : Ubpa_sim.Trace.event) ->
          Ubpa_sim.Trace.record tr ~round:e.round ?node:e.node ~kind:e.kind
            e.what)
        events;
      Alcotest.(check string)
        "trace JSONL round-trips byte-for-byte" cx.cx_jsonl
        (Ubpa_sim.Trace.to_jsonl tr);
      check_true "trace carries the violation event"
        (List.exists
           (fun (e : Ubpa_sim.Trace.event) ->
             e.kind = Ubpa_sim.Trace.Engine
             && String.length e.what >= 9
             && String.sub e.what 0 9 = "violation")
           events)

(* ----- determinism: --jobs and symmetry must not change the answer ----- *)

let test_jobs_identical () =
  let run jobs = Ck_rb.check ~jobs ~n:3 ~f:1 ~max_rounds:5 () in
  let a = run 1 and b = run 2 in
  check_true "full result identical at jobs 1 vs 2 (incl. cex JSONL)" (a = b)

let test_symmetry_sound () =
  let on = Ck_rb.check ~symmetry:true ~n:4 ~f:1 ~max_rounds:3 () in
  let off = Ck_rb.check ~symmetry:false ~n:4 ~f:1 ~max_rounds:3 () in
  Alcotest.(check string) "same verdict" (verdict off.verdict)
    (verdict on.verdict);
  check_true "reduction actually pruned" (on.stats.sym_skips > 0);
  check_int "the full search prunes nothing" 0 off.stats.sym_skips;
  check_true "fewer distinct configs under the reduction"
    (on.stats.distinct < off.stats.distinct)

(* ----- golden: the committed boundary counterexample ----- *)

(* `dune runtest` runs in the test directory, `dune exec` wherever the
   caller stands — accept both. *)
let baseline_cex =
  if Sys.file_exists "../bench/baseline/CEX_MC1.jsonl" then
    "../bench/baseline/CEX_MC1.jsonl"
  else "bench/baseline/CEX_MC1.jsonl"

let test_committed_cex_golden () =
  let ic = open_in_bin baseline_cex in
  let len = in_channel_length ic in
  let committed = really_input_string ic len in
  close_in ic;
  let r = Ck_rb.check ~n:3 ~f:1 ~max_rounds:5 () in
  match r.cex with
  | None -> Alcotest.fail "rb n=3 f=1 no longer yields a counterexample"
  | Some cx ->
      Alcotest.(check string)
        "fresh minimal counterexample matches bench/baseline/CEX_MC1.jsonl"
        committed cx.cx_jsonl;
      check_true "and it replays" cx.cx_replayed

(* ----- differential: one fault plan through engine and checker ----- *)

(* The same crash schedule (victim down from round 3, no recovery) runs
   through the real simulator (Network + Ubpa_faults + Harness) and the
   checker's scripted replay. Terminal state keys, outputs, halting
   rounds, finished/stalled shape, and online monitor verdicts must agree
   exactly — this is what licenses the checker's verdicts as statements
   about the engine's semantics. *)

module P = Ubpa_check.Models.Consensus.P
module H = Ubpa_harness.Harness.Make (P)

let crash_round = 3

let monitor ~victim =
  M.create
    ~excused:(Node_id.Set.of_list [ victim ])
    [
      M.agreement ~equal:Int.equal ~pp:Fmt.int ();
      M.validity ~ok:(fun _ v -> v = 0 || v = 1) ();
      M.no_send_after_halt ();
    ]

let engine_side ~max_rounds ~correct ~victim =
  let mon = monitor ~victim in
  let plan = F.make [ (victim, [ F.crash ~at:crash_round () ]) ] in
  let o =
    H.execute ~seed:7L ~delivery:Ubpa_sim.Delivery.Naive ~faults:plan
      ~monitor:mon ~max_rounds ~correct ~byzantine:[] ()
  in
  let states =
    H.Net.states o.H.net
    |> List.map (fun (id, st) -> (id, Ubpa_check.Models.Consensus.state_key st))
    |> List.sort compare
  in
  (o, states, M.first_violation mon)

let checker_side ~max_rounds ~correct ~victim =
  let mon = monitor ~victim in
  let rec script r =
    if r > crash_round then []
    else
      (if r = crash_round then
         { Ck_cons.silent_action with crash = Some victim }
       else Ck_cons.silent_action)
      :: script (r + 1)
  in
  let o =
    Ck_cons.replay ~monitor:mon ~max_rounds ~correct ~byzantine:[]
      ~actions:(script 1) ()
  in
  (o, List.sort compare o.state_keys, M.first_violation mon)

let violation_key = Option.map (fun (v : M.violation) -> (v.invariant, v.round, v.detail))

let test_differential_terminating () =
  let correct_ids, _ = Ck_cons.population ~seed:7L ~n:4 ~f:0 in
  let victim = List.nth correct_ids 2 in
  let correct = List.mapi (fun i id -> (id, i mod 2)) correct_ids in
  let eo, estates, everdict = engine_side ~max_rounds:30 ~correct ~victim in
  let co, cstates, cverdict = checker_side ~max_rounds:30 ~correct ~victim in
  check_true "engine run halted" (eo.H.finished = `All_halted);
  check_true "checker replay halted" (co.Ck_cons.finished = `All_halted);
  check_int "same round count" eo.H.rounds co.Ck_cons.rounds;
  Alcotest.(check (list (pair node_id string)))
    "byte-identical terminal states" estates cstates;
  check_true "same decisions"
    (List.sort compare eo.H.outputs = List.sort compare co.Ck_cons.outputs);
  check_true "same monitor verdict (none)"
    (violation_key everdict = violation_key cverdict && everdict = None)

let test_differential_truncated () =
  (* Cut the run before termination: Max_rounds_reached must report the
     same stalled set from both systems — the crash victim included, and
     written off identically by the halt test (the checker's [all_done]
     mirrors [Network.all_halted]). *)
  let correct_ids, _ = Ck_cons.population ~seed:7L ~n:4 ~f:0 in
  let victim = List.nth correct_ids 2 in
  let correct = List.mapi (fun i id -> (id, i mod 2)) correct_ids in
  let eo, estates, _ = engine_side ~max_rounds:5 ~correct ~victim in
  let co, cstates, _ = checker_side ~max_rounds:5 ~correct ~victim in
  (match (eo.H.finished, co.Ck_cons.finished) with
  | `Max_rounds_reached es, `Max_rounds_reached cs ->
      Alcotest.(check (list node_id)) "identical stalled sets" es cs;
      check_true "the crash victim is reported stalled"
        (List.exists (Node_id.equal victim) es)
  | _ -> Alcotest.fail "expected Max_rounds_reached from both systems");
  Alcotest.(check (list (pair node_id string)))
    "byte-identical mid-run states" estates cstates

let suite =
  ( "check",
    [
      slow "rb n=4 f=1 verified exhaustively" test_rb_verified;
      quick "rb benign faults verified" test_rb_benign_verified;
      quick "consensus boundary violation replays" test_consensus_violation;
      quick "rb counterexample JSONL round-trips" test_rb_cex_roundtrip;
      quick "jobs 1 vs 2 byte-identical" test_jobs_identical;
      slow "symmetry reduction is sound" test_symmetry_sound;
      quick "committed CEX_MC1.jsonl golden" test_committed_cex_golden;
      quick "differential: engine vs checker (halting)"
        test_differential_terminating;
      quick "differential: engine vs checker (stalled)"
        test_differential_truncated;
    ] )
