let () =
  Alcotest.run "unknown-ba"
    [
      Test_util.suite;
      Test_json.suite;
      Test_report.suite;
      Test_sim.suite;
      Test_delivery.suite;
      Test_rb.suite;
      Test_rotor.suite;
      Test_consensus.suite;
      Test_binary.suite;
      Test_core_internals.suite;
      Test_integration.suite;
      Test_adversary.suite;
      Test_edge_cases.suite;
      Test_timeline.suite;
      Test_aa.suite;
      Test_parallel.suite;
      Test_total_order.suite;
      Test_renaming.suite;
      Test_trb.suite;
      Test_baselines.suite;
      Test_semisync.suite;
      Test_properties.suite;
    ]
