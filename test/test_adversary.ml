(** Tests for the adversary framework itself: generic strategies and
    combinators, observed through consensus runs and a probe protocol. *)

open Ubpa_util
open Ubpa_sim
open Ubpa_scenarios
open Ubpa_adversary
open Helpers

module C = Scenarios.Consensus_int

let safe s =
  s.C.all_terminated && s.C.agreed && s.C.valid

let test_half_stubborn () =
  let s =
    C.run
      ~byz:(List.init 2 (fun _ -> C.Attacks.half_stubborn 9))
      ~n_correct:5 ~inputs:Helpers.binary_split ()
  in
  check_true "agreement under asymmetric quorums" (safe s)

let test_switch_at () =
  (* Behaves like a normal participant, turns into split-world mid-run. *)
  let turncoat =
    Combinators.switch_at ~round:6 Generic.mirror (C.Attacks.split_world 0 1)
  in
  let s = C.run ~byz:[ turncoat ] ~n_correct:4 ~inputs:binary_split () in
  check_true "agreement despite a turncoat" (safe s)

let test_merge () =
  let chimera =
    Combinators.merge [ C.Attacks.stubborn 7; Generic.spam ]
  in
  let s = C.run ~byz:[ chimera ] ~n_correct:4 ~inputs:binary_split () in
  check_true "agreement under merged attacks" (safe s)

let test_only_rounds () =
  let burst =
    Combinators.only_rounds (fun r -> r mod 3 = 0) (C.Attacks.split_world 0 1)
  in
  let s = C.run ~byz:[ burst ] ~n_correct:4 ~inputs:binary_split () in
  check_true "agreement under bursty attack" (safe s)

let test_target_subset () =
  let partial =
    Combinators.target_subset ~fraction:0.4 (C.Attacks.stubborn 3)
  in
  let s = C.run ~byz:[ partial ] ~n_correct:7 ~inputs:binary_split () in
  check_true "agreement under subset-visibility attack" (safe s)

let test_with_probability () =
  let flaky = Combinators.with_probability 0.5 (C.Attacks.split_world 0 1) in
  let s = C.run ~byz:[ flaky ] ~n_correct:4 ~inputs:binary_split () in
  check_true "agreement under probabilistic attack" (safe s)

(* Determinism: the same seed must produce the same execution even with
   randomized strategies. *)
let test_strategy_determinism () =
  let run () =
    C.run ~seed:77L
      ~byz:[ Generic.random_mix; Combinators.with_probability 0.3 Generic.spam ]
      ~n_correct:5 ~inputs:binary_split ()
  in
  let s1 = run () and s2 = run () in
  check_true "identical outputs" (s1.C.outputs = s2.C.outputs);
  check_int "identical message counts" s1.C.delivered_msgs s2.C.delivered_msgs

(* Strategy mechanics on a probe view. *)
let probe_view ~round ~correct : int Strategy.view =
  {
    Strategy.round;
    self = Node_id.of_int 1;
    correct;
    byzantine = [];
    inbox = [];
    rushing = [];
    equal_message = Int.equal;
  }

let test_subset_rerouting () =
  let broadcaster =
    Strategy.v ~name:"b" (fun _ _ _ -> [ (Envelope.Broadcast, 42) ])
  in
  let sub = Combinators.target_subset ~fraction:0.5 broadcaster in
  let act = Strategy.instantiate sub (Rng.create 1L) (Node_id.of_int 1) in
  let correct = List.map Node_id.of_int [ 10; 20; 30; 40 ] in
  let sends = act (probe_view ~round:1 ~correct) in
  check_int "broadcast became two targeted sends" 2 (List.length sends);
  List.iter
    (fun (dest, payload) ->
      check_int "payload preserved" 42 payload;
      match dest with
      | Envelope.To t ->
          check_true "targets the first half"
            (Node_id.to_int t = 10 || Node_id.to_int t = 20)
      | Envelope.Broadcast -> Alcotest.fail "no broadcasts expected")
    sends

let test_switch_state_isolation () =
  (* Sub-strategies get independent RNG splits: instantiating the switch
     twice with the same seed gives identical behaviour. *)
  let s = Combinators.switch_at ~round:3 Generic.random_mix Generic.random_mix in
  let mk () = Strategy.instantiate s (Rng.create 9L) (Node_id.of_int 1) in
  let v =
    {
      (probe_view ~round:5 ~correct:(List.map Node_id.of_int [ 2; 3 ])) with
      Strategy.inbox = [ (Node_id.of_int 2, 5) ];
    }
  in
  check_true "deterministic" (mk () v = mk () v)

(* ----- withdrawn Byzantine nodes vanish from later views ----- *)

module CInt = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int)
module CNet = Network.Make (CInt)

let test_withdrawn_byzantine_invisible () =
  (* A Byzantine node goes silent ([Generic.crash_after]) and is then
     withdrawn ([remove_byzantine]) while membership keeps changing: no
     later [Strategy.view.byzantine] may list it. *)
  let ids = Node_id.scatter ~seed:21L 10 in
  let correct_ids = List.filteri (fun i _ -> i < 6) ids in
  let witness = List.nth ids 6
  and crasher = List.nth ids 7
  and late_byz = List.nth ids 8
  and late_correct = List.nth ids 9 in
  let seen = ref [] in
  let recorder =
    Strategy.v ~name:"recorder" (fun _ _ v ->
        seen := (v.Strategy.round, v.Strategy.byzantine) :: !seen;
        [])
  in
  let net =
    CNet.create ~seed:3L
      ~correct:(List.mapi (fun i nid -> (nid, i mod 2)) correct_ids)
      ~byzantine:[ (witness, recorder); (crasher, Generic.crash_after 2) ]
      ()
  in
  for _ = 1 to 4 do
    CNet.step_round net
  done;
  CNet.remove_byzantine net crasher;
  (* Dynamic membership in both populations after the withdrawal. *)
  CNet.join_byzantine net late_byz Generic.silent;
  CNet.join_correct net late_correct 1;
  for _ = 1 to 4 do
    CNet.step_round net
  done;
  let appears nid (_, byz) = List.exists (Node_id.equal nid) byz in
  check_true "crashed node visible while still a member"
    (List.exists (fun ((r, _) as e) -> r <= 4 && appears crasher e) !seen);
  check_false "withdrawn node never reappears in later views"
    (List.exists (fun ((r, _) as e) -> r > 4 && appears crasher e) !seen);
  check_true "late Byzantine join is visible afterwards"
    (List.exists (fun ((r, _) as e) -> r > 5 && appears late_byz e) !seen);
  check_false "withdrawn node is gone from byzantine_ids"
    (List.exists (Node_id.equal crasher) (CNet.byzantine_ids net))

let suite =
  ( "adversary",
    [
      quick "half-stubborn asymmetric attack" test_half_stubborn;
      quick "switch_at turncoat" test_switch_at;
      quick "merge combinator" test_merge;
      quick "only_rounds gating" test_only_rounds;
      quick "target_subset partial visibility" test_target_subset;
      quick "with_probability flakiness" test_with_probability;
      quick "randomized strategies are seed-deterministic"
        test_strategy_determinism;
      quick "subset combinator reroutes broadcasts" test_subset_rerouting;
      quick "combinator state isolation" test_switch_state_isolation;
      quick "withdrawn byzantine node vanishes from views"
        test_withdrawn_byzantine_invisible;
    ] )
