open Helpers
open Ubpa_semisync

let test_async_disagreement () =
  (* First lemma of Section "Synchrony is Necessary": with unbounded cross
     delays the two partitions decide their own inputs. *)
  let v = Partition.asynchronous ~size_a:4 ~size_b:4 () in
  check_true "A decided" (v.Partition.outputs_a <> []);
  check_true "B decided" (v.Partition.outputs_b <> []);
  List.iter (fun x -> check_int "A decides 1" 1 x) v.Partition.outputs_a;
  List.iter (fun x -> check_int "B decides 0" 0 x) v.Partition.outputs_b;
  check_true "disagreement" v.Partition.disagreement;
  check_true "messages still in flight at decision"
    v.Partition.undelivered_at_decision

let test_async_asymmetric_sizes () =
  let v = Partition.asynchronous ~size_a:2 ~size_b:6 () in
  check_true "disagreement regardless of sizes" v.Partition.disagreement

let test_semisync_disagreement_with_bounded_delay () =
  (* Second lemma: all delays bounded by a finite delta, yet disagreement. *)
  let delta = 100.0 in
  let v = Partition.semi_synchronous ~size_a:3 ~size_b:3 ~delta () in
  check_true "disagreement" v.Partition.disagreement;
  check_true "every delay finite and bounded by delta"
    (v.Partition.max_delay <= delta);
  check_true "decisions happened before delta"
    (v.Partition.decision_time_a < delta
    && v.Partition.decision_time_b < delta)

let test_semisync_delta_too_small_rejected () =
  (* The construction requires delta > max(T_a, T_b). *)
  check_true "raises on tiny delta"
    (try
       ignore (Partition.semi_synchronous ~size_a:3 ~size_b:3 ~delta:2.0 ());
       false
     with Invalid_argument _ -> true)

let test_synchronous_control () =
  (* Control experiment: when the cross delay fits inside the round
     duration, the same protocol agrees — synchrony really is the missing
     ingredient. *)
  let open Ubpa_util in
  let module C = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int) in
  let module Sim = Event_sim.Make (C) in
  let ids = Node_id.scatter ~seed:53L 6 in
  let in_a id =
    List.exists (Node_id.equal id) (List.filteri (fun i _ -> i < 3) ids)
  in
  let nodes = List.map (fun id -> (id, if in_a id then 1 else 0)) ids in
  let sim = Sim.create ~delay:(fun ~src:_ ~dst:_ ~at:_ -> 0.9) ~nodes () in
  Sim.run ~until:1000. sim;
  let outs = List.filter_map (fun (_, o) -> o) (Sim.outputs sim) in
  check_int "all decided" 6 (List.length outs);
  match outs with
  | v :: rest -> List.iter (fun v' -> check_int "agreement" v v') rest
  | [] -> Alcotest.fail "no outputs"

let test_event_sim_rejects_nonpositive_delay () =
  let open Ubpa_util in
  let module C = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int) in
  let module Sim = Event_sim.Make (C) in
  let ids = Node_id.scatter ~seed:54L 2 in
  let nodes = List.map (fun id -> (id, 0)) ids in
  let sim = Sim.create ~delay:(fun ~src:_ ~dst:_ ~at:_ -> 0.) ~nodes () in
  check_true "raises"
    (try
       Sim.run ~until:10. sim;
       false
     with Invalid_argument _ -> true)

let test_max_delay_tracking () =
  let v = Partition.semi_synchronous ~size_a:3 ~size_b:3 ~delta:64.0 () in
  Alcotest.(check (float 1e-9)) "max delay equals delta" 64.0 v.Partition.max_delay


(* ----- Event_sim direct behaviour ----- *)

module Probe = struct
  open Ubpa_sim

  type input = unit
  type stimulus = Protocol.No_stimulus.t
  type message = Ping of int
  type output = (int * Ubpa_util.Node_id.t * int) list
  type state = { mutable log : (int * Ubpa_util.Node_id.t * int) list; mutable r : int }

  let name = "probe"
  let init ~self:_ ~round:_ () = { log = []; r = 0 }
  let pp_message ppf (Ping r) = Fmt.pf ppf "ping(%d)" r

  include Protocol.Structural (struct
    type t = message
  end)

  let step ~self:_ ~round ~stim:_ st ~inbox =
    st.r <- round;
    List.iter (fun (src, Ping k) -> st.log <- (round, src, k) :: st.log) inbox;
    if round >= 4 then (st, [], Protocol.Stop (List.rev st.log))
    else (st, [ (Envelope.Broadcast, Ping round) ], Protocol.Continue)
end

module Psim = Event_sim.Make (Probe)

let two_nodes () =
  let ids = Ubpa_util.Node_id.scatter ~seed:55L 2 in
  (List.nth ids 0, List.nth ids 1)

let test_event_sim_delivery_time () =
  let a, b = two_nodes () in
  (* Delay 0.5 < round duration 1.0: a ping sent at tick k arrives before
     tick k+1 and is consumed there — one-round latency, like the
     synchronous engine. *)
  let sim =
    Psim.create
      ~delay:(fun ~src:_ ~dst:_ ~at:_ -> 0.5)
      ~nodes:[ (a, ()); (b, ()) ]
      ()
  in
  Psim.run ~until:100. sim;
  check_true "halted" (Psim.all_halted sim);
  List.iter
    (fun (_, out) ->
      match out with
      | None -> Alcotest.fail "no output"
      | Some log ->
          check_true "log not empty" (log <> []);
          List.iter
            (fun (recv, _, sent) -> check_int "one-tick latency" (sent + 1) recv)
            log)
    (Psim.outputs sim)

let test_event_sim_slow_link_postpones () =
  let a, b = two_nodes () in
  (* Delay 2.5: pings skip a tick and arrive two ticks later. *)
  let sim =
    Psim.create
      ~delay:(fun ~src:_ ~dst:_ ~at:_ -> 2.5)
      ~nodes:[ (a, ()); (b, ()) ]
      ()
  in
  Psim.run ~until:100. sim;
  List.iter
    (fun (_, out) ->
      match out with
      | Some log ->
          List.iter
            (fun (recv, _, sent) -> check_int "three-tick latency" (sent + 3) recv)
            log
      | None -> Alcotest.fail "no output")
    (Psim.outputs sim)

let test_event_sim_decided_at () =
  let a, b = two_nodes () in
  let sim =
    Psim.create
      ~delay:(fun ~src:_ ~dst:_ ~at:_ -> 0.5)
      ~nodes:[ (a, ()); (b, ()) ]
      ()
  in
  Psim.run ~until:100. sim;
  Alcotest.(check (option (float 1e-9))) "decided at tick 4" (Some 4.)
    (Psim.decided_at sim a);
  Alcotest.(check (float 1e-9)) "max delay tracked" 0.5 (Psim.max_delay_assigned sim)

let test_event_sim_run_horizon () =
  let a, b = two_nodes () in
  let sim =
    Psim.create
      ~delay:(fun ~src:_ ~dst:_ ~at:_ -> 0.5)
      ~nodes:[ (a, ()); (b, ()) ]
      ()
  in
  Psim.run ~until:2.0 sim;
  check_false "not halted yet" (Psim.all_halted sim);
  check_true "clock bounded" (Psim.now sim <= 2.0)

let suite =
  ( "semisync-impossibility",
    [
      quick "asynchronous partitions disagree" test_async_disagreement;
      quick "asymmetric partition sizes" test_async_asymmetric_sizes;
      quick "semi-synchronous bounded-delay disagreement"
        test_semisync_disagreement_with_bounded_delay;
      quick "lemma precondition enforced" test_semisync_delta_too_small_rejected;
      quick "control: short delays restore agreement" test_synchronous_control;
      quick "event sim rejects non-positive delays"
        test_event_sim_rejects_nonpositive_delay;
      quick "max delay is tracked" test_max_delay_tracking;
      quick "event sim: sub-round delays give one-tick latency"
        test_event_sim_delivery_time;
      quick "event sim: slow links postpone delivery" test_event_sim_slow_link_postpones;
      quick "event sim: decision times and max delay" test_event_sim_decided_at;
      quick "event sim: run horizon respected" test_event_sim_run_horizon;
    ] )
