(* The networked runtime against the lockstep simulator: frame codec
   units, trace diffing, and PR-6-style differentials — the same
   protocol on concurrent per-node processes must produce byte-identical
   decide sets, trace events, wire counters and monitor verdicts as the
   simulator, with the replay oracle catching any tampered schedule. On
   sequential-only builds the differentials collapse to asserting the
   graceful "runtime unavailable" error path. *)

open Ubpa_util
open Ubpa_sim
open Helpers

module Frame = Ubpa_runtime.Frame

(* ----- frame codec ----- *)

let frame ?(src = 3) ?(round = 2) body =
  { Frame.src = Node_id.of_int src; round; body }

let test_frame_roundtrip () =
  List.iter
    (fun body ->
      let f = frame body in
      let d = Frame.decode (Frame.encode f) in
      check_true "src" (Node_id.equal d.Frame.src f.Frame.src);
      check_int "round" f.Frame.round d.Frame.round;
      Alcotest.(check string) "body" f.Frame.body d.Frame.body)
    [ ""; "x"; String.make 5000 'q'; "\x00\xff\x01binary" ]

let test_frame_decoder_incremental () =
  (* Three frames through the stream decoder one byte at a time: each
     frame must complete exactly once, in order, with nothing left over. *)
  let fs = [ frame "alpha"; frame ~src:9 ~round:7 ""; frame "omega" ] in
  let stream = String.concat "" (List.map Frame.encode fs) in
  let d = Frame.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      got := !got @ Frame.feed d (Bytes.make 1 c) 1)
    stream;
  check_int "frames" (List.length fs) (List.length !got);
  check_int "no leftover" 0 (Frame.pending_bytes d);
  List.iter2
    (fun (a : Frame.t) (b : Frame.t) ->
      check_true "src" (Node_id.equal a.Frame.src b.Frame.src);
      check_int "round" a.Frame.round b.Frame.round;
      Alcotest.(check string) "body" a.Frame.body b.Frame.body)
    fs !got

let test_frame_decoder_batch () =
  let fs = List.init 10 (fun i -> frame ~src:i ~round:i (String.make i 'b')) in
  let stream = Bytes.of_string (String.concat "" (List.map Frame.encode fs)) in
  let d = Frame.decoder () in
  let got = Frame.feed d stream (Bytes.length stream) in
  check_int "all frames in one feed" 10 (List.length got);
  check_int "no leftover" 0 (Frame.pending_bytes d)

let test_frame_partial_pending () =
  let f = frame "partial" in
  let enc = Frame.encode f in
  let cut = String.length enc - 3 in
  let d = Frame.decoder () in
  let got = Frame.feed d (Bytes.of_string (String.sub enc 0 cut)) cut in
  check_int "incomplete frame yields nothing" 0 (List.length got);
  check_int "bytes buffered" cut (Frame.pending_bytes d)

(* ----- trace diff ----- *)

let ev ?node ~round kind what =
  { Trace.round; node = Option.map Node_id.of_int node; kind; what }

let test_trace_diff_identical () =
  let evs =
    [
      ev ~round:1 ~node:1 Trace.Join "join (correct)";
      ev ~round:1 ~node:1 Trace.Send "send x";
      ev ~round:2 ~node:1 Trace.Halt "halt";
    ]
  in
  check_true "equal" (Trace.equal_events evs evs);
  let d = Trace.diff_events evs evs in
  check_true "no divergence" (d.Trace.first_divergence = None);
  check_int "len a" 3 d.Trace.length_a;
  check_int "len b" 3 d.Trace.length_b

let test_trace_diff_divergence () =
  let a =
    [
      ev ~round:1 ~node:1 Trace.Join "join (correct)";
      ev ~round:1 ~node:1 Trace.Send "send x";
    ]
  in
  let b =
    [
      ev ~round:1 ~node:1 Trace.Join "join (correct)";
      ev ~round:1 ~node:1 Trace.Send "send y";
    ]
  in
  check_false "not equal" (Trace.equal_events a b);
  match (Trace.diff_events a b).Trace.first_divergence with
  | Some (1, Some ea, Some eb) ->
      Alcotest.(check string) "a side" "send x" ea.Trace.what;
      Alcotest.(check string) "b side" "send y" eb.Trace.what
  | _ -> Alcotest.fail "expected divergence at index 1 with both events"

let test_trace_diff_prefix () =
  let a = [ ev ~round:1 ~node:1 Trace.Join "join (correct)" ] in
  let b = a @ [ ev ~round:1 ~node:1 Trace.Halt "halt" ] in
  (match (Trace.diff_events a b).Trace.first_divergence with
  | Some (1, None, Some e) ->
      Alcotest.(check string) "b continues" "halt" e.Trace.what
  | _ -> Alcotest.fail "expected one-sided divergence at index 1");
  let d = Trace.diff_events a b in
  let halt_counts =
    List.filter (fun (k, _, _) -> String.equal k "halt") d.Trace.kind_counts
  in
  match halt_counts with
  | [ (_, 0, 1) ] -> ()
  | _ -> Alcotest.fail "expected halt kind count 0 vs 1"

let test_trace_of_events_roundtrip () =
  let evs =
    [
      ev ~round:1 ~node:4 Trace.Join "join (correct)";
      ev ~round:3 Trace.Engine "engine note";
    ]
  in
  check_true "of_events preserves"
    (Trace.equal_events evs (Trace.events (Trace.of_events evs)))

(* ----- runtime vs simulator differentials ----- *)

module Ec = Ubpa_harness.Runtime_exec.Make (Ubpa_scenarios.Scenarios.Consensus_int.P)
module Er = Ubpa_harness.Runtime_exec.Make (Ubpa_scenarios.Scenarios.Rb.P)

let consensus_correct ~seed n =
  let ids = Ubpa_harness.Harness.make_ids ~seed n in
  List.mapi (fun i id -> (id, i mod 2)) ids

let rb_correct ~seed n =
  let ids = Ubpa_harness.Harness.make_ids ~seed n in
  List.mapi (fun i id -> (id, if i = 0 then Some "payload" else None)) ids

let assert_verdict name = function
  | Error e -> Alcotest.failf "%s: runtime error: %s" name e
  | Ok v ->
      List.iter
        (fun c ->
          check_true
            (Printf.sprintf "%s: %s%s" name c.Ec.c_name
               (if c.Ec.c_ok then "" else " — " ^ c.Ec.c_detail))
            c.Ec.c_ok)
        v.Ec.v_checks

let assert_verdict_rb name = function
  | Error e -> Alcotest.failf "%s: runtime error: %s" name e
  | Ok v ->
      List.iter
        (fun c ->
          check_true
            (Printf.sprintf "%s: %s%s" name c.Er.c_name
               (if c.Er.c_ok then "" else " — " ^ c.Er.c_detail))
            c.Er.c_ok)
        v.Er.v_checks

let test_unavailable_graceful () =
  if not Ec.RT.available then
    match Ec.RT.run ~correct:(consensus_correct ~seed:1L 4) () with
    | Ok _ -> Alcotest.fail "sequential build must not run the runtime"
    | Error e ->
        check_true "mentions runtime unavailable"
          (String.length e >= 19
          && String.equal (String.sub e 0 19) "runtime unavailable")

let test_consensus_domains_differential () =
  if Ec.RT.available then
    List.iter
      (fun (seed, n) ->
        assert_verdict
          (Printf.sprintf "consensus domains seed=%Ld n=%d" seed n)
          (Ec.compare_with_sim ~transport:`Domains ~max_rounds:40
             ~correct:(consensus_correct ~seed n) ()))
      [ (1L, 4); (2L, 5); (7L, 7) ]

let test_consensus_socket_differential () =
  if Ec.RT.available then
    assert_verdict "consensus socket seed=1 n=5"
      (Ec.compare_with_sim ~transport:`Socket ~max_rounds:40
         ~correct:(consensus_correct ~seed:1L 5) ())

let test_rb_differential () =
  (* RB never halts: both runs execute exactly max_rounds and must agree
     on the cumulative accepted sets. *)
  if Er.RT.available then
    List.iter
      (fun transport ->
        assert_verdict_rb
          (Printf.sprintf "rb %s" (Er.RT.transport_name transport))
          (Er.compare_with_sim ~transport ~max_rounds:6
             ~correct:(rb_correct ~seed:3L 5) ()))
      [ `Domains; `Socket ]

let test_round_ms_pacing () =
  (* A non-zero round duration must not change behaviour, only pace it. *)
  if Ec.RT.available then
    assert_verdict "consensus domains round-ms=2"
      (Ec.compare_with_sim ~transport:`Domains ~round_ms:2. ~max_rounds:40
         ~correct:(consensus_correct ~seed:1L 4) ())

let test_decides_byte_identical () =
  (* The decide sets, rendered, must match byte for byte — the sharpest
     form of the decision-equivalence claim. *)
  if Ec.RT.available then
    match
      Ec.compare_with_sim ~transport:`Domains ~max_rounds:40
        ~correct:(consensus_correct ~seed:5L 5) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok v ->
        let render outs =
          String.concat ";"
            (List.map
               (fun (id, o) -> Fmt.str "%a=%d" Node_id.pp id o)
               outs)
        in
        let rt =
          List.filter_map
            (fun (s : Ec.RT.node_summary) ->
              Option.map (fun o -> (s.Ec.RT.ns_id, o)) s.Ec.RT.ns_output)
            v.Ec.v_run.Ec.RT.r_nodes
        in
        Alcotest.(check string)
          "decide sets byte-identical" (render v.Ec.v_sim.Ec.H.outputs)
          (render rt);
        Alcotest.(check string)
          "oracle decide set too"
          (render v.Ec.v_sim.Ec.H.outputs)
          (render v.Ec.v_oracle.Ec.RT.Oracle.outputs)

let test_monitor_verdicts_identical () =
  (* Feed the runtime's outcome and the simulator's through the same
     monitor (agreement + event sanity) and compare verdicts. *)
  if Ec.RT.available then
    match
      Ec.compare_with_sim ~transport:`Domains ~max_rounds:40
        ~correct:(consensus_correct ~seed:4L 5) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok v ->
        let verdict events obs ~round =
          let m =
            Ubpa_monitor.create
              [
                Ubpa_monitor.agreement ~equal:Int.equal ();
                Ubpa_monitor.no_send_after_halt ();
              ]
          in
          List.iter (Ubpa_monitor.observe_event m) events;
          Ubpa_monitor.observe m ~round obs;
          List.map
            (fun (x : Ubpa_monitor.violation) ->
              (x.Ubpa_monitor.invariant, x.Ubpa_monitor.detail))
            (Ubpa_monitor.violations m)
        in
        let rt_obs =
          List.map
            (fun (s : Ec.RT.node_summary) ->
              {
                Ubpa_monitor.node = s.Ec.RT.ns_id;
                joined_at = 1;
                halted_at = s.Ec.RT.ns_halted_at;
                down = false;
                output = s.Ec.RT.ns_output;
              })
            v.Ec.v_run.Ec.RT.r_nodes
        in
        let round = v.Ec.v_run.Ec.RT.r_rounds in
        let rt_verdict = verdict v.Ec.v_run.Ec.RT.r_events rt_obs ~round in
        let sim_verdict =
          verdict
            (Trace.events (Ec.H.Net.trace v.Ec.v_sim.Ec.H.net))
            (Ec.H.observations v.Ec.v_sim.Ec.H.net)
            ~round
        in
        check_true "both monitors green" (rt_verdict = [] && sim_verdict = []);
        check_true "verdicts identical" (rt_verdict = sim_verdict)

let test_oracle_catches_tampering () =
  (* Drop one delivered message from the recorded schedule: the replay
     oracle must flag the exact round, instead of rubber-stamping. *)
  if Ec.RT.available then
    match Ec.RT.run ~max_rounds:40 ~correct:(consensus_correct ~seed:1L 4) () with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok run ->
        check_true "untampered schedule replays clean"
          (Ec.RT.replay run).Ec.RT.Oracle.ok;
        let sc = run.Ec.RT.r_schedule in
        let tampered_rounds =
          List.mapi
            (fun i m ->
              if i <> 1 then m
              else
                Node_id.Map.mapi
                  (fun _ (nr : Ec.RT.Oracle.node_round) ->
                    match nr.Ec.RT.Oracle.nr_inbox with
                    | [] -> nr
                    | _ :: rest -> { nr with Ec.RT.Oracle.nr_inbox = rest })
                  m)
            sc.Ec.RT.Oracle.sc_rounds
        in
        let outcome =
          Ec.RT.Oracle.replay
            { sc with Ec.RT.Oracle.sc_rounds = tampered_rounds }
        in
        check_false "tampered schedule flagged" outcome.Ec.RT.Oracle.ok;
        match outcome.Ec.RT.Oracle.divergence with
        | Some d -> check_int "flagged at round 2" 2 d.Ec.RT.Oracle.d_round
        | None -> Alcotest.fail "expected a divergence report"

let suite =
  ( "runtime",
    [
      quick "frame roundtrip" test_frame_roundtrip;
      quick "frame decoder byte-by-byte" test_frame_decoder_incremental;
      quick "frame decoder batch" test_frame_decoder_batch;
      quick "frame partial buffers" test_frame_partial_pending;
      quick "trace diff identical" test_trace_diff_identical;
      quick "trace diff divergence" test_trace_diff_divergence;
      quick "trace diff prefix" test_trace_diff_prefix;
      quick "trace of_events roundtrip" test_trace_of_events_roundtrip;
      quick "unavailable is graceful" test_unavailable_graceful;
      quick "consensus domains differential" test_consensus_domains_differential;
      quick "consensus socket differential" test_consensus_socket_differential;
      quick "rb differential both transports" test_rb_differential;
      quick "round-ms pacing is behaviour-neutral" test_round_ms_pacing;
      quick "decide sets byte-identical" test_decides_byte_identical;
      quick "monitor verdicts identical" test_monitor_verdicts_identical;
      quick "oracle catches tampering" test_oracle_catches_tampering;
    ] )
