(* The networked runtime against the lockstep simulator: frame codec
   units (including hostile-header rejection), the deadline synchronizer
   as pure state, trace diffing, PR-6-style differentials — the same
   protocol on concurrent per-node processes must produce byte-identical
   decide sets, trace events, wire counters and monitor verdicts as the
   simulator — and the fault-injection path, gated on graceful
   degradation under the delivered-schedule oracle. The codec and
   synchronizer tests run on any OCaml; on sequential-only builds the
   differentials collapse to asserting the graceful "runtime
   unavailable" error path. *)

open Ubpa_util
open Ubpa_sim
open Helpers

module Frame = Ubpa_runtime.Frame
module Sync = Ubpa_runtime.Sync

(* ----- frame codec ----- *)

let frame ?(src = 3) ?(round = 2) ?(kind = Frame.Data) body =
  { Frame.src = Node_id.of_int src; round; kind; body }

let decode_exn s =
  match Frame.decode s with
  | Ok f -> f
  | Error e -> Alcotest.failf "decode failed: %s" e

let feed_exn d buf len =
  match Frame.feed d buf len with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "feed failed: %s" e

let test_frame_roundtrip () =
  List.iter
    (fun body ->
      let f = frame body in
      let d = decode_exn (Frame.encode f) in
      check_true "src" (Node_id.equal d.Frame.src f.Frame.src);
      check_int "round" f.Frame.round d.Frame.round;
      check_true "kind" (d.Frame.kind = Frame.Data);
      Alcotest.(check string) "body" f.Frame.body d.Frame.body)
    [ ""; "x"; String.make 5000 'q'; "\x00\xff\x01binary" ];
  List.iter
    (fun kind ->
      let f = frame ~kind "" in
      check_true "control kind survives"
        ((decode_exn (Frame.encode f)).Frame.kind = kind))
    [ Frame.Done; Frame.Halt ]

let test_frame_decoder_incremental () =
  (* Three frames through the stream decoder one byte at a time: each
     frame must complete exactly once, in order, with nothing left over.
     The control marker in the middle must come out as a marker. *)
  let fs =
    [ frame "alpha"; frame ~src:9 ~round:7 ~kind:Frame.Done ""; frame "omega" ]
  in
  let stream = String.concat "" (List.map Frame.encode fs) in
  let d = Frame.decoder () in
  let got = ref [] in
  String.iter (fun c -> got := !got @ feed_exn d (Bytes.make 1 c) 1) stream;
  check_int "frames" (List.length fs) (List.length !got);
  check_int "no leftover" 0 (Frame.pending_bytes d);
  List.iter2
    (fun (a : Frame.t) (b : Frame.t) ->
      check_true "src" (Node_id.equal a.Frame.src b.Frame.src);
      check_int "round" a.Frame.round b.Frame.round;
      check_true "kind" (a.Frame.kind = b.Frame.kind);
      Alcotest.(check string) "body" a.Frame.body b.Frame.body)
    fs !got

let test_frame_decoder_batch () =
  let fs = List.init 10 (fun i -> frame ~src:i ~round:i (String.make i 'b')) in
  let stream = Bytes.of_string (String.concat "" (List.map Frame.encode fs)) in
  let d = Frame.decoder () in
  let got = feed_exn d stream (Bytes.length stream) in
  check_int "all frames in one feed" 10 (List.length got);
  check_int "no leftover" 0 (Frame.pending_bytes d)

let test_frame_partial_pending () =
  let f = frame "partial" in
  let enc = Frame.encode f in
  let cut = String.length enc - 3 in
  let d = Frame.decoder () in
  let got = feed_exn d (Bytes.of_string (String.sub enc 0 cut)) cut in
  check_int "incomplete frame yields nothing" 0 (List.length got);
  check_int "bytes buffered" cut (Frame.pending_bytes d)

(* A hostile or corrupt header must surface as a clean [Error] from both
   decoders — never an unbounded allocation, an exception, or a decoder
   buffering forever toward a body that will never arrive. *)

let hostile_header ~len ~kind =
  let b = Bytes.make Frame.header_bytes '\x00' in
  Bytes.set_int32_be b 0 len;
  Bytes.set_int64_be b 4 3L;
  Bytes.set_int32_be b 12 2l;
  Bytes.set b 16 (Char.chr kind);
  b

let rejected = function Error _ -> true | Ok _ -> false

let test_frame_hostile_headers () =
  let oversize =
    hostile_header ~len:(Int32.of_int (Frame.max_body_bytes + 1)) ~kind:0
  in
  check_true "decode rejects oversized length"
    (rejected (Frame.decode (Bytes.to_string oversize)));
  let d = Frame.decoder () in
  check_true "stream decoder rejects oversized length without buffering"
    (rejected (Frame.feed d oversize (Bytes.length oversize)));
  let negative = hostile_header ~len:(-1l) ~kind:0 in
  check_true "decode rejects negative length"
    (rejected (Frame.decode (Bytes.to_string negative)));
  let d = Frame.decoder () in
  check_true "stream decoder rejects negative length"
    (rejected (Frame.feed d negative (Bytes.length negative)));
  let bad_kind = hostile_header ~len:0l ~kind:9 in
  check_true "decode rejects unknown kind"
    (rejected (Frame.decode (Bytes.to_string bad_kind)));
  let d = Frame.decoder () in
  check_true "stream decoder rejects unknown kind"
    (rejected (Frame.feed d bad_kind (Bytes.length bad_kind)));
  check_true "decode rejects trailing bytes"
    (rejected (Frame.decode (Frame.encode (frame "x") ^ "y")));
  check_true "decode rejects short buffer" (rejected (Frame.decode "abc"));
  check_true "encode refuses an oversized body"
    (match Frame.encode (frame (String.make (Frame.max_body_bytes + 1) 'z')) with
    | exception Invalid_argument _ -> true
    | (_ : string) -> false);
  (* The documented bound itself is fine: exactly max_body_bytes. *)
  let full = frame (String.make Frame.max_body_bytes 'f') in
  check_int "max-size body round-trips" Frame.max_body_bytes
    (String.length (decode_exn (Frame.encode full)).Frame.body)

(* ----- deadline synchronizer (pure state, runs on any OCaml) ----- *)

let nid = Node_id.of_int
let peers4 = [ nid 1; nid 2; nid 3; nid 4 ]

let dframe ~src ~round body =
  { Frame.src = nid src; round; kind = Frame.Data; body }

let marker ?(kind = Frame.Done) ~src ~round () =
  { Frame.src = nid src; round; kind; body = "" }

let markers_from srcs ~round =
  List.map (fun src -> marker ~src ~round ()) srcs

let test_sync_fast_path () =
  (* round_ms = 0: no deadline, the fast path is the only path. *)
  let s = Sync.create ~peers:peers4 ~round_ms:0. ~dead_after:2 in
  Sync.begin_round s ~round:1 ~now:0.;
  check_true "nothing offered: waiting" (Sync.ready s ~now:1000. = None);
  Sync.offer s [ dframe ~src:2 ~round:1 "m"; marker ~src:2 ~round:1 () ];
  check_int "three peers still block" 3 (List.length (Sync.waiting_on s));
  Sync.offer s (markers_from [ 1; 3; 4 ] ~round:1);
  match Sync.ready s ~now:1000. with
  | None -> Alcotest.fail "all markers in: round must complete"
  | Some v ->
      check_int "one data frame delivered" 1 (List.length v.Sync.v_inbox);
      check_true "no missing peers" (v.Sync.v_missing = []);
      check_true "no presumed-dead peers" (v.Sync.v_newly_dead = []);
      check_int "no late frames" 0 (Sync.late_frames s)

let test_sync_deadline_no_frames () =
  let s = Sync.create ~peers:peers4 ~round_ms:1000. ~dead_after:3 in
  Sync.begin_round s ~round:1 ~now:0.;
  check_true "before the deadline: waiting" (Sync.ready s ~now:0.5 = None);
  match Sync.ready s ~now:1.5 with
  | None -> Alcotest.fail "deadline fired: must advance anyway"
  | Some v ->
      check_true "empty inbox" (v.Sync.v_inbox = []);
      check_int "every peer reported missing" 4 (List.length v.Sync.v_missing)

let test_sync_deadline_partial () =
  let s = Sync.create ~peers:peers4 ~round_ms:1000. ~dead_after:3 in
  Sync.begin_round s ~round:1 ~now:0.;
  Sync.offer s
    (dframe ~src:1 ~round:1 "a" :: markers_from [ 1; 2 ] ~round:1);
  check_true "two markers of four: still waiting" (Sync.ready s ~now:0.9 = None);
  match Sync.ready s ~now:1.1 with
  | None -> Alcotest.fail "deadline must fire"
  | Some v ->
      check_int "on-time data delivered" 1 (List.length v.Sync.v_inbox);
      check_true "missing = exactly the silent peers"
        (List.map Node_id.to_int v.Sync.v_missing = [ 3; 4 ])

let test_sync_late_frames_monotone () =
  let s = Sync.create ~peers:peers4 ~round_ms:1000. ~dead_after:3 in
  Sync.begin_round s ~round:1 ~now:0.;
  ignore (Sync.ready s ~now:1.5);
  Sync.begin_round s ~round:2 ~now:1.5;
  check_int "no late frames yet" 0 (Sync.late_frames s);
  Sync.offer s [ dframe ~src:3 ~round:1 "late" ];
  check_int "round-1 data in round 2 is late" 1 (Sync.late_frames s);
  Sync.offer s [ dframe ~src:4 ~round:1 "later" ];
  check_int "late count is monotone" 2 (Sync.late_frames s);
  check_int "late frames still count as data" 2 (Sync.data_frames s);
  (match Sync.ready s ~now:2.6 with
  | Some v -> check_true "late frames never deliver" (v.Sync.v_inbox = [])
  | None -> Alcotest.fail "deadline must fire");
  check_true "late-frame events recorded at the counting round"
    (List.for_all
       (fun (e : Sync.event) -> e.Sync.e_round = 2)
       (Sync.events s)
    && List.length (Sync.events s) = 2)

let test_sync_dead_peer () =
  let s = Sync.create ~peers:peers4 ~round_ms:1000. ~dead_after:2 in
  let live = [ 1; 2; 3 ] in
  (* Round 1: peer 4 silent, first missed deadline. *)
  Sync.begin_round s ~round:1 ~now:0.;
  Sync.offer s (markers_from live ~round:1);
  (match Sync.ready s ~now:1.5 with
  | Some v ->
      check_true "one silent round is not death" (v.Sync.v_newly_dead = []);
      check_true "but it is missing"
        (List.map Node_id.to_int v.Sync.v_missing = [ 4 ])
  | None -> Alcotest.fail "deadline must fire");
  (* Round 2: silent again — crosses dead_after = 2. *)
  Sync.begin_round s ~round:2 ~now:1.5;
  Sync.offer s (markers_from live ~round:2);
  (match Sync.ready s ~now:3. with
  | Some v ->
      check_true "presumed dead after two consecutive silent rounds"
        (List.map Node_id.to_int v.Sync.v_newly_dead = [ 4 ])
  | None -> Alcotest.fail "deadline must fire");
  check_true "dead list updated"
    (List.map Node_id.to_int (Sync.dead_peers s) = [ 4 ]);
  check_true "death is a recorded event"
    (List.exists
       (fun (e : Sync.event) -> Node_id.equal e.Sync.e_peer (nid 4))
       (Sync.events s));
  (* Round 3: the dead peer no longer blocks — the live markers alone
     complete the round on the fast path, well before the deadline. *)
  Sync.begin_round s ~round:3 ~now:3.;
  check_int "dead peer not awaited" 3 (List.length (Sync.waiting_on s));
  Sync.offer s (markers_from live ~round:3);
  match Sync.ready s ~now:3.1 with
  | Some v -> check_true "fast path without the dead peer" (v.Sync.v_missing = [])
  | None -> Alcotest.fail "a dead peer must not block the round"

let test_sync_halt_excuses () =
  let s = Sync.create ~peers:peers4 ~round_ms:0. ~dead_after:2 in
  Sync.begin_round s ~round:1 ~now:0.;
  Sync.offer s
    (marker ~kind:Frame.Halt ~src:4 ~round:1 () :: markers_from [ 1; 2; 3 ] ~round:1);
  (match Sync.ready s ~now:0. with
  | Some v -> check_true "halt counts as the round's marker" (v.Sync.v_missing = [])
  | None -> Alcotest.fail "halt marker must complete the round");
  (* The farewell excuses the halted peer from every later round — even
     with no deadline at all, the survivors' markers are enough. *)
  Sync.begin_round s ~round:2 ~now:0.;
  check_int "halted peer not awaited" 3 (List.length (Sync.waiting_on s));
  Sync.offer s (markers_from [ 1; 2; 3 ] ~round:2);
  check_true "round completes without the halted peer"
    (Sync.ready s ~now:0. <> None)

(* ----- trace diff ----- *)

let ev ?node ~round kind what =
  { Trace.round; node = Option.map Node_id.of_int node; kind; what }

let test_trace_diff_identical () =
  let evs =
    [
      ev ~round:1 ~node:1 Trace.Join "join (correct)";
      ev ~round:1 ~node:1 Trace.Send "send x";
      ev ~round:2 ~node:1 Trace.Halt "halt";
    ]
  in
  check_true "equal" (Trace.equal_events evs evs);
  let d = Trace.diff_events evs evs in
  check_true "no divergence" (d.Trace.first_divergence = None);
  check_int "len a" 3 d.Trace.length_a;
  check_int "len b" 3 d.Trace.length_b

let test_trace_diff_divergence () =
  let a =
    [
      ev ~round:1 ~node:1 Trace.Join "join (correct)";
      ev ~round:1 ~node:1 Trace.Send "send x";
    ]
  in
  let b =
    [
      ev ~round:1 ~node:1 Trace.Join "join (correct)";
      ev ~round:1 ~node:1 Trace.Send "send y";
    ]
  in
  check_false "not equal" (Trace.equal_events a b);
  match (Trace.diff_events a b).Trace.first_divergence with
  | Some (1, Some ea, Some eb) ->
      Alcotest.(check string) "a side" "send x" ea.Trace.what;
      Alcotest.(check string) "b side" "send y" eb.Trace.what
  | _ -> Alcotest.fail "expected divergence at index 1 with both events"

let test_trace_diff_prefix () =
  let a = [ ev ~round:1 ~node:1 Trace.Join "join (correct)" ] in
  let b = a @ [ ev ~round:1 ~node:1 Trace.Halt "halt" ] in
  (match (Trace.diff_events a b).Trace.first_divergence with
  | Some (1, None, Some e) ->
      Alcotest.(check string) "b continues" "halt" e.Trace.what
  | _ -> Alcotest.fail "expected one-sided divergence at index 1");
  let d = Trace.diff_events a b in
  let halt_counts =
    List.filter (fun (k, _, _) -> String.equal k "halt") d.Trace.kind_counts
  in
  match halt_counts with
  | [ (_, 0, 1) ] -> ()
  | _ -> Alcotest.fail "expected halt kind count 0 vs 1"

let test_trace_of_events_roundtrip () =
  let evs =
    [
      ev ~round:1 ~node:4 Trace.Join "join (correct)";
      ev ~round:3 Trace.Engine "engine note";
    ]
  in
  check_true "of_events preserves"
    (Trace.equal_events evs (Trace.events (Trace.of_events evs)))

(* ----- runtime vs simulator differentials ----- *)

module Ec = Ubpa_harness.Runtime_exec.Make (Ubpa_scenarios.Scenarios.Consensus_int.P)
module Er = Ubpa_harness.Runtime_exec.Make (Ubpa_scenarios.Scenarios.Rb.P)

let consensus_correct ~seed n =
  let ids = Ubpa_harness.Harness.make_ids ~seed n in
  List.mapi (fun i id -> (id, i mod 2)) ids

let rb_correct ~seed n =
  let ids = Ubpa_harness.Harness.make_ids ~seed n in
  List.mapi (fun i id -> (id, if i = 0 then Some "payload" else None)) ids

let assert_verdict name = function
  | Error e -> Alcotest.failf "%s: runtime error: %s" name e
  | Ok v ->
      List.iter
        (fun c ->
          check_true
            (Printf.sprintf "%s: %s%s" name c.Ec.c_name
               (if c.Ec.c_ok then "" else " — " ^ c.Ec.c_detail))
            c.Ec.c_ok)
        v.Ec.v_checks

let assert_verdict_rb name = function
  | Error e -> Alcotest.failf "%s: runtime error: %s" name e
  | Ok v ->
      List.iter
        (fun c ->
          check_true
            (Printf.sprintf "%s: %s%s" name c.Er.c_name
               (if c.Er.c_ok then "" else " — " ^ c.Er.c_detail))
            c.Er.c_ok)
        v.Er.v_checks

let test_unavailable_graceful () =
  if not Ec.RT.available then
    match Ec.RT.run ~correct:(consensus_correct ~seed:1L 4) () with
    | Ok _ -> Alcotest.fail "sequential build must not run the runtime"
    | Error e ->
        check_true "mentions runtime unavailable"
          (String.length e >= 19
          && String.equal (String.sub e 0 19) "runtime unavailable")

let test_consensus_domains_differential () =
  if Ec.RT.available then
    List.iter
      (fun (seed, n) ->
        assert_verdict
          (Printf.sprintf "consensus domains seed=%Ld n=%d" seed n)
          (Ec.compare_with_sim ~transport:`Domains ~max_rounds:40
             ~correct:(consensus_correct ~seed n) ()))
      [ (1L, 4); (2L, 5); (7L, 7) ]

let test_consensus_socket_differential () =
  if Ec.RT.available then
    assert_verdict "consensus socket seed=1 n=5"
      (Ec.compare_with_sim ~transport:`Socket ~max_rounds:40
         ~correct:(consensus_correct ~seed:1L 5) ())

let test_rb_differential () =
  (* RB never halts: both runs execute exactly max_rounds and must agree
     on the cumulative accepted sets. *)
  if Er.RT.available then
    List.iter
      (fun transport ->
        assert_verdict_rb
          (Printf.sprintf "rb %s" (Er.RT.transport_name transport))
          (Er.compare_with_sim ~transport ~max_rounds:6
             ~correct:(rb_correct ~seed:3L 5) ()))
      [ `Domains; `Socket ]

let test_round_ms_pacing () =
  (* A real round deadline on a fault-free run must not change behaviour:
     the marker fast path completes every round before the timer can
     fire, so the exact-lockstep gate still holds. *)
  if Ec.RT.available then
    assert_verdict "consensus domains round-ms=50"
      (Ec.compare_with_sim ~transport:`Domains ~round_ms:50. ~max_rounds:40
         ~correct:(consensus_correct ~seed:1L 4) ())

let test_decides_byte_identical () =
  (* The decide sets, rendered, must match byte for byte — the sharpest
     form of the decision-equivalence claim. *)
  if Ec.RT.available then
    match
      Ec.compare_with_sim ~transport:`Domains ~max_rounds:40
        ~correct:(consensus_correct ~seed:5L 5) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok v ->
        let render outs =
          String.concat ";"
            (List.map
               (fun (id, o) -> Fmt.str "%a=%d" Node_id.pp id o)
               outs)
        in
        let rt =
          List.filter_map
            (fun (s : Ec.RT.node_summary) ->
              Option.map (fun o -> (s.Ec.RT.ns_id, o)) s.Ec.RT.ns_output)
            v.Ec.v_run.Ec.RT.r_nodes
        in
        Alcotest.(check string)
          "decide sets byte-identical" (render v.Ec.v_sim.Ec.H.outputs)
          (render rt);
        Alcotest.(check string)
          "oracle decide set too"
          (render v.Ec.v_sim.Ec.H.outputs)
          (render v.Ec.v_oracle.Ec.RT.Oracle.outputs)

let test_monitor_verdicts_identical () =
  (* Feed the runtime's outcome and the simulator's through the same
     monitor (agreement + event sanity) and compare verdicts. *)
  if Ec.RT.available then
    match
      Ec.compare_with_sim ~transport:`Domains ~max_rounds:40
        ~correct:(consensus_correct ~seed:4L 5) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok v ->
        let verdict events obs ~round =
          let m =
            Ubpa_monitor.create
              [
                Ubpa_monitor.agreement ~equal:Int.equal ();
                Ubpa_monitor.no_send_after_halt ();
              ]
          in
          List.iter (Ubpa_monitor.observe_event m) events;
          Ubpa_monitor.observe m ~round obs;
          List.map
            (fun (x : Ubpa_monitor.violation) ->
              (x.Ubpa_monitor.invariant, x.Ubpa_monitor.detail))
            (Ubpa_monitor.violations m)
        in
        let rt_obs =
          List.map
            (fun (s : Ec.RT.node_summary) ->
              {
                Ubpa_monitor.node = s.Ec.RT.ns_id;
                joined_at = 1;
                halted_at = s.Ec.RT.ns_halted_at;
                down = false;
                output = s.Ec.RT.ns_output;
              })
            v.Ec.v_run.Ec.RT.r_nodes
        in
        let round = v.Ec.v_run.Ec.RT.r_rounds in
        let rt_verdict = verdict v.Ec.v_run.Ec.RT.r_events rt_obs ~round in
        let sim_verdict =
          verdict
            (Trace.events (Ec.H.Net.trace v.Ec.v_sim.Ec.H.net))
            (Ec.H.observations v.Ec.v_sim.Ec.H.net)
            ~round
        in
        check_true "both monitors green" (rt_verdict = [] && sim_verdict = []);
        check_true "verdicts identical" (rt_verdict = sim_verdict)

let test_oracle_catches_tampering () =
  (* Drop one delivered message from the recorded schedule: the replay
     oracle must flag the exact round, instead of rubber-stamping. *)
  if Ec.RT.available then
    match Ec.RT.run ~max_rounds:40 ~correct:(consensus_correct ~seed:1L 4) () with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok run ->
        check_true "untampered schedule replays clean"
          (Ec.RT.replay run).Ec.RT.Oracle.ok;
        let sc = run.Ec.RT.r_schedule in
        let tampered_rounds =
          List.mapi
            (fun i m ->
              if i <> 1 then m
              else
                Node_id.Map.mapi
                  (fun _ (nr : Ec.RT.Oracle.node_round) ->
                    match nr.Ec.RT.Oracle.nr_inbox with
                    | [] -> nr
                    | _ :: rest -> { nr with Ec.RT.Oracle.nr_inbox = rest })
                  m)
            sc.Ec.RT.Oracle.sc_rounds
        in
        let outcome =
          Ec.RT.Oracle.replay
            { sc with Ec.RT.Oracle.sc_rounds = tampered_rounds }
        in
        check_false "tampered schedule flagged" outcome.Ec.RT.Oracle.ok;
        match outcome.Ec.RT.Oracle.divergence with
        | Some d -> check_int "flagged at round 2" 2 d.Ec.RT.Oracle.d_round
        | None -> Alcotest.fail "expected a divergence report"

(* ----- fault injection: graceful degradation differentials ----- *)

let plan_exn ~ids spec =
  match Ubpa_faults.parse_spec ~ids spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad fault spec %s: %s" spec e

let assert_fault_checks name (fv : Ec.fault_verdict) =
  List.iter
    (fun c ->
      check_true
        (Printf.sprintf "%s: %s%s" name c.Ec.c_name
           (if c.Ec.c_ok then "" else " — " ^ c.Ec.c_detail))
        c.Ec.c_ok)
    fv.Ec.f_checks

let fault_check_ok (fv : Ec.fault_verdict) name =
  List.exists
    (fun c -> String.equal c.Ec.c_name name && c.Ec.c_ok)
    fv.Ec.f_checks

let test_faulty_crash_degrades () =
  (* One crash plus background loss, real deadline: the four survivors
     must agree, decide, and replay clean through the delivered-schedule
     oracle, with the victim on the crash ledger. *)
  if Ec.RT.available then
    let ids = Ubpa_harness.Harness.make_ids ~seed:1L 5 in
    let plan = plan_exn ~ids "crash:1@3,loss=0.05" in
    match
      Ec.run_with_faults ~round_ms:60. ~max_rounds:40 ~faults:plan ~seed:7L
        ~correct:(consensus_correct ~seed:1L 5) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok fv ->
        assert_fault_checks "crash+loss" fv;
        check_true "graceful degradation verdict" fv.Ec.f_ok;
        check_int "four survivors" 4 (List.length fv.Ec.f_survivors)

let test_faulty_same_seed_deterministic () =
  (* Every fault decision derives from (seed, src, dst, direction): the
     same plan and seed must reproduce the identical event stream and
     injection counters on both transports — byte for byte. *)
  if Ec.RT.available then begin
    let ids = Ubpa_harness.Harness.make_ids ~seed:1L 5 in
    let plan = plan_exn ~ids "loss=0.10" in
    let go transport =
      match
        Ec.run_with_faults ~transport ~max_rounds:40 ~faults:plan ~seed:3L
          ~correct:(consensus_correct ~seed:1L 5) ()
      with
      | Error e -> Alcotest.failf "runtime error: %s" e
      | Ok fv ->
          ( Trace.to_jsonl (Trace.of_events fv.Ec.f_run.Ec.RT.r_events),
            fv.Ec.f_run.Ec.RT.r_injected )
    in
    let ja, ia = go `Domains in
    let jb, ib = go `Domains in
    Alcotest.(check string) "same seed, same transport: identical trace" ja jb;
    let jc, ic = go `Socket in
    Alcotest.(check string)
      "domains and socket identical, faults included" ja jc;
    check_true "injection counters identical" (ia = ib && ia = ic);
    check_true "loss was actually injected"
      (ia.Ubpa_runtime.Transport_faulty.inj_lost > 0)
  end

let test_faulty_beyond_budget_violates () =
  (* Total receive-omission isolates one node: survivors stay safe and
     decide, the victim starves — a liveness violation the gate must
     report, not paper over. *)
  if Ec.RT.available then
    let ids = Ubpa_harness.Harness.make_ids ~seed:1L 4 in
    let plan = plan_exn ~ids "recv-omit:1@1..12=1.0" in
    match
      Ec.run_with_faults ~max_rounds:12 ~faults:plan ~seed:1L
        ~correct:(consensus_correct ~seed:1L 4) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok fv ->
        check_false "isolation must be flagged as a violation" fv.Ec.f_ok;
        check_true "safety stays green while liveness fails"
          (fault_check_ok fv "monitors"
          && fault_check_ok fv "survivor-agreement"
          && fault_check_ok fv "crash-view"
          && fault_check_ok fv "oracle-replay");
        check_false "the starved node cannot decide"
          (fault_check_ok fv "survivors-decide")

(* ----- golden: the committed beyond-budget trace ----- *)

(* `dune runtest` runs in the test directory, `dune exec` wherever the
   caller stands — accept both. *)
let baseline_rt2 =
  if Sys.file_exists "../bench/baseline/TRACE_RT2.jsonl" then
    "../bench/baseline/TRACE_RT2.jsonl"
  else "bench/baseline/TRACE_RT2.jsonl"

let test_committed_rt2_trace_golden () =
  (* Re-run RT2's beyond-budget isolation cell with the bench's exact
     parameters and require the recorded trace to match the committed
     artifact byte for byte. *)
  if Ec.RT.available then begin
    let ic = open_in_bin baseline_rt2 in
    let len = in_channel_length ic in
    let committed = really_input_string ic len in
    close_in ic;
    let ids = Ubpa_harness.Harness.make_ids ~seed:1L 4 in
    let plan = plan_exn ~ids "recv-omit:1@1..12=1.0" in
    match
      Ec.run_with_faults ~transport:`Domains ~max_rounds:12 ~faults:plan
        ~seed:1L ~correct:(consensus_correct ~seed:1L 4) ()
    with
    | Error e -> Alcotest.failf "runtime error: %s" e
    | Ok fv ->
        Alcotest.(check string)
          "fresh violation trace matches bench/baseline/TRACE_RT2.jsonl"
          committed
          (Trace.to_jsonl (Trace.of_events fv.Ec.f_run.Ec.RT.r_events))
  end

let suite =
  ( "runtime",
    [
      quick "frame roundtrip" test_frame_roundtrip;
      quick "frame decoder byte-by-byte" test_frame_decoder_incremental;
      quick "frame decoder batch" test_frame_decoder_batch;
      quick "frame partial buffers" test_frame_partial_pending;
      quick "frame hostile headers rejected" test_frame_hostile_headers;
      quick "sync fast path" test_sync_fast_path;
      quick "sync deadline with no frames" test_sync_deadline_no_frames;
      quick "sync deadline with partial frames" test_sync_deadline_partial;
      quick "sync late frames monotone" test_sync_late_frames_monotone;
      quick "sync dead-peer detection" test_sync_dead_peer;
      quick "sync halt excuses the peer" test_sync_halt_excuses;
      quick "trace diff identical" test_trace_diff_identical;
      quick "trace diff divergence" test_trace_diff_divergence;
      quick "trace diff prefix" test_trace_diff_prefix;
      quick "trace of_events roundtrip" test_trace_of_events_roundtrip;
      quick "unavailable is graceful" test_unavailable_graceful;
      quick "consensus domains differential" test_consensus_domains_differential;
      quick "consensus socket differential" test_consensus_socket_differential;
      quick "rb differential both transports" test_rb_differential;
      quick "round-ms pacing is behaviour-neutral" test_round_ms_pacing;
      quick "decide sets byte-identical" test_decides_byte_identical;
      quick "monitor verdicts identical" test_monitor_verdicts_identical;
      quick "oracle catches tampering" test_oracle_catches_tampering;
      quick "faulty crash degrades gracefully" test_faulty_crash_degrades;
      quick "faulty runs are seed-deterministic" test_faulty_same_seed_deterministic;
      quick "beyond-budget isolation violates" test_faulty_beyond_budget_violates;
      quick "committed RT2 trace is reproducible" test_committed_rt2_trace_golden;
    ] )
