open Ubpa_sim
open Ubpa_scenarios
open Helpers
module P = Scenarios.Parallel_int

let check_ok s =
  check_true "terminated" s.P.all_terminated;
  check_true "agreement on pair sets" s.P.agreed

let test_common_pair_is_output () =
  (* Validity: a pair input at every correct node is output everywhere. *)
  let s = P.run ~n_correct:4 ~inputs:(fun _ -> [ (10, 5) ]) () in
  check_ok s;
  List.iter
    (fun (_, pairs) -> check_true "(10,5) present" (List.mem (10, 5) pairs))
    s.P.outputs

let test_multiple_instances () =
  let s =
    P.run ~n_correct:5 ~inputs:(fun _ -> [ (1, 11); (2, 22); (3, 33) ]) ()
  in
  check_ok s;
  List.iter
    (fun (_, pairs) ->
      check_true "all three pairs" (pairs = [ (1, 11); (2, 22); (3, 33) ]))
    s.P.outputs

let test_partial_awareness () =
  (* Only one correct node holds the pair; the others discover the instance
     during the first phase. Any outcome is legal as long as nodes agree. *)
  let s =
    P.run ~n_correct:5
      ~inputs:(fun i -> if i = 0 then [ (42, 7) ] else [])
      ()
  in
  check_ok s

let test_disjoint_inputs () =
  let s = P.run ~n_correct:4 ~inputs:(fun i -> [ (i, 100 + i) ]) () in
  check_ok s

let test_no_inputs_terminates () =
  (* Nobody has anything to propose; everyone must still terminate after
     the first (empty) phase. *)
  let s = P.run ~n_correct:4 ~inputs:(fun _ -> []) () in
  check_ok s;
  List.iter (fun (_, pairs) -> check_int "empty output" 0 (List.length pairs)) s.P.outputs

let test_ghost_instance_suppressed () =
  (* Theorem parCon, second half: an identifier no correct node holds must
     never be output. *)
  let s =
    P.run
      ~byz:[ P.Attacks.ghost_instance ~id:99 77 ]
      ~n_correct:4
      ~inputs:(fun _ -> [ (1, 5) ])
      ()
  in
  check_ok s;
  List.iter
    (fun (_, pairs) ->
      check_false "ghost id 99 never output" (List.mem_assoc 99 pairs);
      check_true "real pair survives" (List.mem (1, 5) pairs))
    s.P.outputs

let test_late_instance_discarded () =
  (* Messages for an unknown instance arriving after the first phase are
     dropped. *)
  let s =
    P.run
      ~byz:[ P.Attacks.late_instance ~id:55 9 ~after_round:9 ]
      ~n_correct:4
      ~inputs:(fun _ -> [ (1, 5) ])
      ()
  in
  check_ok s;
  List.iter
    (fun (_, pairs) -> check_false "late id never output" (List.mem_assoc 55 pairs))
    s.P.outputs

let test_split_instance_attack () =
  let s =
    P.run
      ~byz:[ P.Attacks.split_instance ~id:1 0 1 ]
      ~n_correct:7
      ~inputs:(fun _ -> [ (1, 0) ])
      ()
  in
  check_ok s

let test_silent_byz_members () =
  let s =
    P.run
      ~byz:[ Strategy.silent; Strategy.silent ]
      ~n_correct:7
      ~inputs:(fun _ -> [ (4, 44); (5, 55) ])
      ()
  in
  check_ok s;
  List.iter
    (fun (_, pairs) -> check_true "both pairs" (pairs = [ (4, 44); (5, 55) ]))
    s.P.outputs

let test_conflicting_values_same_instance () =
  (* Correct nodes input different values under the same identifier: they
     must agree on one of them (or on nothing), never split. *)
  let s = P.run ~n_correct:5 ~inputs:(fun i -> [ (1, i mod 2) ]) () in
  check_ok s

let test_marker_flood () =
  (* Byzantine markers for a live instance neither create preferences nor
     block the real quorum. *)
  let s =
    P.run
      ~byz:[ P.Attacks.marker_flood ~id:1; Strategy.silent ]
      ~n_correct:5
      ~inputs:(fun _ -> [ (1, 42) ])
      ()
  in
  check_ok s;
  List.iter
    (fun (_, pairs) -> check_true "(1,42) decided" (List.mem (1, 42) pairs))
    s.P.outputs

let test_many_instances () =
  let k = 8 in
  let s =
    P.run ~n_correct:4
      ~inputs:(fun _ -> List.init k (fun j -> (j, 2 * j)))
      ()
  in
  check_ok s;
  List.iter
    (fun (_, pairs) -> check_int "k instances decided" k (List.length pairs))
    s.P.outputs

let suite =
  ( "parallel-consensus",
    [
      quick "common pair is output everywhere" test_common_pair_is_output;
      quick "several instances run in lockstep" test_multiple_instances;
      quick "instances discovered from other nodes" test_partial_awareness;
      quick "disjoint single-holder inputs" test_disjoint_inputs;
      quick "no inputs: clean termination" test_no_inputs_terminates;
      quick "byzantine ghost instance decides ⊥" test_ghost_instance_suppressed;
      quick "late instance messages discarded" test_late_instance_discarded;
      quick "split values within one instance" test_split_instance_attack;
      quick "silent byzantine members" test_silent_byz_members;
      quick "conflicting correct inputs in one instance"
        test_conflicting_values_same_instance;
      quick "byzantine marker flood" test_marker_flood;
      quick "eight instances at once" test_many_instances;
    ] )
