(* The multicore sweep executor and the dense-index primitives it feeds:
   Pool.map must be List.map with workers (same results, same order, same
   exception), and Interner/Bitset/dense Tally must be observably identical
   to the sparse structures they replace. *)

open Ubpa_util
open Ubpa_harness
open Helpers

(* ----- Pool.map ----- *)

let jobs_levels = [ 1; 2; 8 ]

let test_pool_map_ordered () =
  let items = List.init 200 (fun i -> i - 50) in
  let f n = (n * n) - (3 * n) in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs f items))
    jobs_levels

let test_pool_map_uneven_work () =
  (* Cells with wildly different costs still merge in submission order. *)
  let items = List.init 40 (fun i -> i) in
  let f n =
    let spin = if n mod 7 = 0 then 40_000 else 10 in
    let acc = ref n in
    for _ = 1 to spin do
      acc := ((!acc * 31) + 1) land 0xffffff
    done;
    !acc
  in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs f items))
    jobs_levels

let test_pool_map_empty_and_small () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "empty jobs=%d" jobs)
        [] (Pool.map ~jobs (fun x -> x) []);
      Alcotest.(check (list int))
        (Printf.sprintf "singleton jobs=%d" jobs)
        [ 42 ]
        (Pool.map ~jobs (fun x -> x + 41) [ 1 ]))
    jobs_levels

let test_pool_map_jobs_zero () =
  (* ~jobs:0 means "all cores"; semantics must not change. *)
  let items = List.init 50 (fun i -> i) in
  Alcotest.(check (list int))
    "jobs=0" (List.map succ items)
    (Pool.map ~jobs:0 succ items)

let test_pool_map_exception () =
  (* The exception of the lowest-indexed failing item propagates, and the
     pool is not leaked: the next map on the same backend still works. *)
  let f n = if n = 5 || n = 17 then failwith (Printf.sprintf "boom-%d" n) else n in
  List.iter
    (fun jobs ->
      (match Pool.map ~jobs f (List.init 30 (fun i -> i)) with
      | _ -> Alcotest.failf "jobs=%d: expected an exception" jobs
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "lowest-index failure at jobs=%d" jobs)
            "boom-5" msg);
      Alcotest.(check (list int))
        (Printf.sprintf "pool usable after failure at jobs=%d" jobs)
        [ 2; 3; 4 ]
        (Pool.map ~jobs succ [ 1; 2; 3 ]))
    jobs_levels

let prop_pool_matches_list_map =
  QCheck2.Test.make ~count:100
    ~name:"Pool.map ~jobs:k equals List.map for k in 1..8"
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_range 0 60) (int_range (-1000) 1000)))
    (fun (jobs, items) ->
      Pool.map ~jobs (fun n -> (n * 7) - 1) items
      = List.map (fun n -> (n * 7) - 1) items)

(* ----- Interner ----- *)

let test_interner_roundtrip () =
  let ids = Node_id.scatter ~seed:2026L 64 in
  let intr = Interner.create ~hint:8 () in
  List.iteri
    (fun i id ->
      check_int (Printf.sprintf "first-seen index %d" i) i (Interner.intern intr id))
    ids;
  check_int "size" 64 (Interner.size intr);
  List.iteri
    (fun i id ->
      check_int (Printf.sprintf "re-intern %d idempotent" i) i
        (Interner.intern intr id);
      check_true (Printf.sprintf "mem %d" i) (Interner.mem intr id);
      Alcotest.(check (option int))
        (Printf.sprintf "find_opt %d" i)
        (Some i) (Interner.find_opt intr id);
      check_true
        (Printf.sprintf "extern inverse %d" i)
        (Node_id.equal id (Interner.extern intr i)))
    ids;
  check_int "size unchanged by lookups" 64 (Interner.size intr);
  let stranger = Node_id.of_int 123_456_789 in
  check_false "unknown id" (Interner.mem intr stranger);
  Alcotest.(check (option int)) "unknown find_opt" None
    (Interner.find_opt intr stranger);
  Alcotest.check_raises "extern out of range"
    (Invalid_argument "Interner.extern: index 64 out of 0..63") (fun () ->
      ignore (Interner.extern intr 64))

let test_interner_iter_order () =
  let ids = Node_id.scatter ~seed:7L 20 in
  let intr = Interner.create () in
  List.iter (fun id -> ignore (Interner.intern intr id)) ids;
  let seen = ref [] in
  Interner.iter intr (fun ix id -> seen := (ix, id) :: !seen);
  let seen = List.rev !seen in
  check_int "iter covers all" 20 (List.length seen);
  List.iteri
    (fun i (ix, id) ->
      check_int (Printf.sprintf "iter index %d" i) i ix;
      check_true
        (Printf.sprintf "iter id %d" i)
        (Node_id.equal id (List.nth ids i)))
    seen

(* ----- Bitset ----- *)

let test_bitset_basics () =
  let b = Bitset.create ~hint:4 () in
  check_int "empty count" 0 (Bitset.count b);
  check_false "empty mem" (Bitset.mem b 0);
  check_false "mem far beyond capacity" (Bitset.mem b 100_000);
  Bitset.add b 3;
  Bitset.add b 0;
  Bitset.add b 3;
  check_int "idempotent add" 2 (Bitset.count b);
  check_true "mem 0" (Bitset.mem b 0);
  check_true "mem 3" (Bitset.mem b 3);
  check_false "mem 1" (Bitset.mem b 1);
  (* growth well past the hint *)
  Bitset.add b 977;
  check_true "grown mem" (Bitset.mem b 977);
  check_false "grown non-member" (Bitset.mem b 976);
  check_int "count after growth" 3 (Bitset.count b);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Bitset.add: negative index") (fun () -> Bitset.add b (-1))

let test_bitset_clear () =
  let b = Bitset.create ~hint:4 () in
  Bitset.clear b;
  check_int "clear on empty" 0 (Bitset.count b);
  List.iter (Bitset.add b) [ 0; 7; 512 ];
  Bitset.clear b;
  check_int "count after clear" 0 (Bitset.count b);
  check_false "mem 0 after clear" (Bitset.mem b 0);
  check_false "mem 512 after clear" (Bitset.mem b 512);
  (* The grown capacity survives the clear and stays usable. *)
  Bitset.add b 512;
  check_true "re-add after clear" (Bitset.mem b 512);
  check_int "count after re-add" 1 (Bitset.count b)

(* ----- Arena ----- *)

let test_arena_basics () =
  let a = Arena.create ~hint:2 ~dummy:(-1) () in
  check_int "empty length" 0 (Arena.length a);
  for i = 0 to 99 do
    Arena.push a (i * i)
  done;
  check_int "length after pushes" 100 (Arena.length a);
  check_true "capacity grew" (Arena.capacity a >= 100);
  check_int "get 0" 0 (Arena.get a 0);
  check_int "get 99" (99 * 99) (Arena.get a 99);
  check_int "unsafe_get" (7 * 7) (Arena.unsafe_get a 7);
  Arena.set a 7 42;
  check_int "set/get" 42 (Arena.get a 7);
  check_int "fold sums"
    (List.fold_left ( + ) 0
       (List.init 100 (fun i -> if i = 7 then 42 else i * i)))
    (Arena.fold a ~init:0 ~f:( + ));
  let seen = ref 0 in
  Arena.iteri a (fun i v -> if i = 9 then seen := v);
  check_int "iteri passes indices" 81 !seen;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Arena.get: index 100 out of 0..99") (fun () ->
      ignore (Arena.get a 100));
  let cap = Arena.capacity a in
  Arena.clear a;
  check_int "clear drops length" 0 (Arena.length a);
  check_int "clear keeps capacity" cap (Arena.capacity a);
  Arena.push a 5;
  check_int "reusable after clear" 5 (Arena.get a 0);
  Arena.reset a;
  check_int "reset drops length" 0 (Arena.length a);
  Alcotest.check_raises "read after reset"
    (Invalid_argument "Arena.get: index 0 out of 0..-1") (fun () ->
      ignore (Arena.get a 0))

(* ----- dense Tally vs sparse Tally ----- *)

let prop_tally_dense_equals_sparse =
  QCheck2.Test.make ~count:100
    ~name:"dense tally observationally equals sparse tally"
    QCheck2.Gen.(
      list_size (int_range 0 80) (pair (int_bound 15) (int_bound 5)))
    (fun events ->
      let ids = Node_id.scatter ~seed:55L 16 in
      let id_of i = List.nth ids i in
      let sparse = Tally.create ~compare:Int.compare () in
      let intr = Interner.create () in
      let dense = Tally.create_dense ~compare:Int.compare ~interner:intr () in
      List.iter
        (fun (sender_ix, content) ->
          Tally.add sparse ~sender:(id_of sender_ix) content;
          Tally.add dense ~sender:(id_of sender_ix) content)
        events;
      let contents = List.sort compare (Tally.contents sparse) in
      let sorted_senders t k =
        List.sort Node_id.compare (Tally.senders t k)
      in
      List.sort compare (Tally.contents dense) = contents
      && List.for_all
           (fun k ->
             Tally.count sparse k = Tally.count dense k
             && sorted_senders sparse k = sorted_senders dense k)
           contents
      && Tally.max_by_count sparse = Tally.max_by_count dense
      && List.for_all
           (fun thr ->
             List.sort compare (Tally.meeting sparse ~threshold:(fun c -> c >= thr))
             = List.sort compare (Tally.meeting dense ~threshold:(fun c -> c >= thr)))
           [ 1; 2; 4 ])

let suite =
  ( "pool+dense-index",
    [
      quick "Pool.map preserves order at jobs=1/2/8" test_pool_map_ordered;
      quick "Pool.map with uneven per-cell work" test_pool_map_uneven_work;
      quick "Pool.map on empty and singleton lists" test_pool_map_empty_and_small;
      quick "Pool.map ~jobs:0 uses all cores" test_pool_map_jobs_zero;
      quick "Pool.map re-raises the lowest-indexed exception"
        test_pool_map_exception;
      quick "Interner intern/extern round-trip" test_interner_roundtrip;
      quick "Interner.iter ascending first-seen order" test_interner_iter_order;
      quick "Bitset membership, growth, idempotence" test_bitset_basics;
      quick "Bitset.clear keeps capacity" test_bitset_clear;
      quick "Arena push/get/clear/reset" test_arena_basics;
    ]
    @ qcheck_cases [ prop_pool_matches_list_map; prop_tally_dense_equals_sparse ]
  )
