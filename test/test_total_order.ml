open Ubpa_scenarios
open Helpers
module T = Scenarios.Total_order_str

let test_static_prefix_and_growth () =
  let s = T.run ~n_genesis:4 ~rounds:8 ~events_per_round:1 () in
  check_true "chain-prefix" s.T.prefix_consistent;
  check_true "chain-growth: events got ordered"
    (List.exists (fun l -> l > 0) s.T.chain_lengths)

let test_all_events_eventually_ordered () =
  let s = T.run ~n_genesis:4 ~rounds:6 ~events_per_round:1 () in
  (* After the drain, every submitted event should appear in the longest
     chain (submissions happen once per round by one correct node). *)
  let longest = List.fold_left max 0 s.T.chain_lengths in
  check_true
    (Printf.sprintf "ordered %d of %d submitted" longest s.T.events_submitted)
    (longest >= s.T.events_submitted - 1)

let test_identical_final_chains () =
  let s = T.run ~n_genesis:4 ~rounds:5 ~events_per_round:1 () in
  match s.T.chains with
  | [] -> Alcotest.fail "no chains"
  | (_, first) :: rest ->
      List.iter
        (fun (_, o) ->
          check_true "same frontier ±1 chain prefix"
            (o.T.P.chain = first.T.P.chain
            || List.length o.T.P.chain <> List.length first.T.P.chain))
        rest

let test_multiple_events_per_round () =
  let s = T.run ~n_genesis:5 ~rounds:6 ~events_per_round:3 () in
  check_true "prefix holds with parallel events" s.T.prefix_consistent;
  check_true "many events ordered"
    (List.exists (fun l -> l >= 6) s.T.chain_lengths)

let test_with_silent_byz () =
  let s =
    T.run
      ~byz:[ Ubpa_sim.Strategy.silent ]
      ~n_genesis:4 ~rounds:6 ~events_per_round:1 ()
  in
  check_true "prefix under silent byz" s.T.prefix_consistent;
  check_true "growth under silent byz"
    (List.exists (fun l -> l > 0) s.T.chain_lengths)

let test_join_mid_run () =
  let churn = { T.join_at = [ (4, 1) ]; leave_at = [] } in
  let s = T.run ~churn ~n_genesis:4 ~rounds:10 ~events_per_round:1 () in
  check_true "prefix with a joiner" s.T.prefix_consistent;
  check_int "five chains collected" 5 (List.length s.T.chains)

let test_leave_mid_run () =
  let churn = { T.join_at = []; leave_at = [ (6, 1) ] } in
  let s = T.run ~churn ~n_genesis:5 ~rounds:10 ~events_per_round:1 () in
  check_true "prefix with a leaver" s.T.prefix_consistent

let test_churn_both_ways () =
  let churn = { T.join_at = [ (5, 1); (8, 1) ]; leave_at = [ (9, 1) ] } in
  let s = T.run ~churn ~n_genesis:5 ~rounds:12 ~events_per_round:1 () in
  check_true "prefix under churn" s.T.prefix_consistent

let test_no_events_empty_chains () =
  let s = T.run ~n_genesis:4 ~rounds:5 ~events_per_round:0 () in
  check_true "prefix trivially" s.T.prefix_consistent;
  List.iter (fun l -> check_int "empty chain" 0 l) s.T.chain_lengths


module To_attacks = Ubpa_adversary.To_attacks.Make (Unknown_ba.Value.String)

let test_ack_liar () =
  (* Joiners adopt the plurality round; f liars cannot outvote g honest
     answers, so joins and chains stay consistent. *)
  let churn = { T.join_at = [ (5, 1) ]; leave_at = [] } in
  let s =
    T.run
      ~byz:[ To_attacks.ack_liar ~offset:7 ]
      ~churn ~n_genesis:4 ~rounds:10 ~events_per_round:1 ()
  in
  check_true "prefix under ack lies" s.T.prefix_consistent;
  check_int "joiner produced a chain" 5 (List.length s.T.chains)

let test_event_forger () =
  let s =
    T.run
      ~byz:[ To_attacks.event_forger "byz-tx" ]
      ~n_genesis:4 ~rounds:8 ~events_per_round:1 ()
  in
  check_true "prefix under forged events" s.T.prefix_consistent;
  check_true "correct events still ordered"
    (List.exists (fun l -> l > 0) s.T.chain_lengths)

let test_phantom_present () =
  let s =
    T.run
      ~byz:[ To_attacks.phantom_present ]
      ~n_genesis:5 ~rounds:8 ~events_per_round:1 ()
  in
  check_true "prefix despite divergent membership views" s.T.prefix_consistent

let test_absent_flipper () =
  let s =
    T.run
      ~byz:[ To_attacks.absent_flipper ]
      ~n_genesis:5 ~rounds:10 ~events_per_round:1 ()
  in
  check_true "prefix under membership churn attack" s.T.prefix_consistent;
  check_true "growth under membership churn attack"
    (List.exists (fun l -> l > 0) s.T.chain_lengths)

let test_group_splitter () =
  (* The strongest attack on the ordering layer: equivocation inside the
     consensus groups themselves. Chain-prefix must survive. *)
  let s =
    T.run
      ~byz:[ To_attacks.group_splitter ]
      ~n_genesis:5 ~rounds:8 ~events_per_round:1 ()
  in
  check_true "prefix under in-group equivocation" s.T.prefix_consistent;
  check_true "events still ordered"
    (List.exists (fun l -> l > 0) s.T.chain_lengths)

let suite =
  ( "total-order",
    [
      slow "chain-prefix and chain-growth (static set)"
        test_static_prefix_and_growth;
      slow "all submitted events get ordered" test_all_events_eventually_ordered;
      slow "final chains agree" test_identical_final_chains;
      slow "multiple events per round" test_multiple_events_per_round;
      slow "silent byzantine participant" test_with_silent_byz;
      slow "node joins mid-run" test_join_mid_run;
      slow "node leaves mid-run" test_leave_mid_run;
      slow "join and leave churn" test_churn_both_ways;
      slow "no events: chains stay empty" test_no_events_empty_chains;
      slow "byzantine ack lies to joiners" test_ack_liar;
      slow "byzantine event forging" test_event_forger;
      slow "phantom present splits membership views" test_phantom_present;
      slow "byzantine present/absent flapping" test_absent_flipper;
      slow "equivocation inside consensus groups" test_group_splitter;
    ] )
