open Ubpa_scenarios
open Helpers
module C = Scenarios.Consensus_int

let check_agreement s =
  check_true "all terminated" s.C.all_terminated;
  check_true "agreement" s.C.agreed;
  check_true "validity" s.C.valid

let test_unanimous_one_phase () =
  (* Lemma earlyConValidity: identical inputs decide at the end of the
     first phase: 2 init rounds + 5 phase rounds = round 7. *)
  let s = C.run ~n_correct:4 ~inputs:all_same () in
  check_agreement s;
  List.iter (fun r -> check_int "decided in round 7" 7 r) s.C.decision_rounds

let test_split_inputs_all_correct () =
  let s = C.run ~n_correct:5 ~inputs:binary_split () in
  check_agreement s

let test_silent_byz () =
  let f = 2 in
  let s =
    C.run
      ~byz:(List.init f (fun _ -> C.Attacks.silent_member))
      ~n_correct:5 ~inputs:binary_split ()
  in
  check_agreement s

let test_split_world_attack () =
  let f = 2 in
  let s =
    C.run
      ~byz:(List.init f (fun _ -> C.Attacks.split_world 0 1))
      ~n_correct:7 ~inputs:binary_split ()
  in
  check_agreement s

let test_split_world_boundary () =
  (* n = 3f + 1: the tightest admissible ratio. *)
  List.iter
    (fun f ->
      let s =
        C.run
          ~byz:(List.init f (fun _ -> C.Attacks.split_world 0 1))
          ~n_correct:((2 * f) + 1)
          ~inputs:binary_split ()
      in
      check_true (Printf.sprintf "agreement at f=%d" f) (s.C.agreed && s.C.valid))
    [ 1; 2; 3; 4 ]

let test_stubborn_attack_validity () =
  (* All correct nodes hold 7; byzantine nodes push 9 relentlessly. The
     output must still be 7. *)
  let f = 2 in
  let s =
    C.run
      ~byz:(List.init f (fun _ -> C.Attacks.stubborn 9))
      ~n_correct:5 ~inputs:all_same ()
  in
  check_agreement s;
  List.iter (fun (_, v) -> check_int "output is the unanimous input" 7 v) s.C.outputs

let test_round_complexity_o_f () =
  (* Theorem earlyCon: O(f) rounds. Generous constant: <= 5(2f+4)+2. *)
  List.iter
    (fun f ->
      let s =
        C.run
          ~byz:(List.init f (fun _ -> C.Attacks.split_world 0 1))
          ~n_correct:((2 * f) + 1)
          ~inputs:binary_split ()
      in
      let bound = (5 * ((2 * f) + 4)) + 2 in
      List.iter
        (fun r ->
          check_true
            (Printf.sprintf "rounds %d <= %d at f=%d" r bound f)
            (r <= bound))
        s.C.decision_rounds)
    [ 1; 2; 3 ]

let test_termination_skew_one_phase () =
  let s =
    C.run
      ~byz:[ C.Attacks.split_world 0 1 ]
      ~n_correct:3 ~inputs:binary_split ()
  in
  check_agreement s;
  match s.C.decision_rounds with
  | [] -> Alcotest.fail "no decisions"
  | l ->
      let lo = List.fold_left min max_int l in
      let hi = List.fold_left max min_int l in
      check_true "skew at most one phase (5 rounds)" (hi - lo <= 5)

let test_real_valued_inputs () =
  (* Algorithm 3 takes arbitrary (here: spread-out) values, not only bits. *)
  let s = C.run ~n_correct:5 ~inputs:(fun i -> 1000 + (17 * i)) () in
  check_true "agreed" s.C.agreed;
  check_true "valid" s.C.valid

let test_crash_fault () =
  let s =
    C.run
      ~byz:[ Ubpa_adversary.Generic.crash_after 4 ]
      ~n_correct:4 ~inputs:binary_split ()
  in
  check_agreement s

let test_mirror_fault () =
  let s =
    C.run
      ~byz:[ Ubpa_adversary.Generic.mirror ]
      ~n_correct:4 ~inputs:binary_split ()
  in
  check_agreement s

let test_spam_fault () =
  let s =
    C.run
      ~byz:[ Ubpa_adversary.Generic.spam ]
      ~n_correct:4 ~inputs:binary_split ()
  in
  check_agreement s

let test_larger_network () =
  let s =
    C.run
      ~byz:(List.init 5 (fun _ -> C.Attacks.split_world 0 1))
      ~n_correct:16 ~inputs:binary_split ()
  in
  check_agreement s

let suite =
  ( "consensus",
    [
      quick "unanimous inputs decide in one phase" test_unanimous_one_phase;
      quick "split inputs, all correct" test_split_inputs_all_correct;
      quick "silent members (substitution rule)" test_silent_byz;
      quick "split-world equivocation" test_split_world_attack;
      quick "split-world at the n=3f+1 boundary" test_split_world_boundary;
      quick "stubborn minority cannot break validity"
        test_stubborn_attack_validity;
      quick "O(f) round complexity" test_round_complexity_o_f;
      quick "termination skew at most one phase" test_termination_skew_one_phase;
      quick "non-binary opinions" test_real_valued_inputs;
      quick "crash fault" test_crash_fault;
      quick "mirror fault" test_mirror_fault;
      quick "spam fault" test_spam_fault;
      slow "larger network n=21 f=5" test_larger_network;
    ] )
