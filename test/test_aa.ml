open Ubpa_scenarios
open Helpers
module A = Scenarios.Aa

let test_within_range_all_correct () =
  let s = A.run ~n_correct:5 ~inputs:ramp () in
  check_true "outputs within the correct input range" s.A.within_range

let test_halving () =
  (* The output range is at most half the input range (proof of the main
     theorem: outputs live in [(min+med)/2, (med+max)/2]). *)
  let s = A.run ~n_correct:7 ~inputs:ramp () in
  check_true "contraction <= 1/2 + eps" (s.A.contraction <= 0.5 +. 1e-9)

let test_pull_apart_attack () =
  let f = 2 in
  let s =
    A.run
      ~byz:
        (List.init f (fun _ ->
             Ubpa_adversary.Aa_attacks.pull_apart ~low:(-1e6) ~high:1e6))
      ~n_correct:7 ~inputs:ramp ()
  in
  check_true "trimming absorbs extremes" s.A.within_range;
  check_true "still contracting" (s.A.contraction <= 1.0)

let test_outlier_attack () =
  let s =
    A.run
      ~byz:[ Ubpa_adversary.Aa_attacks.outlier 1e9 ]
      ~n_correct:4 ~inputs:ramp ()
  in
  check_true "outlier discarded" s.A.within_range

let test_tracker_attack () =
  let s =
    A.run
      ~byz:[ Ubpa_adversary.Aa_attacks.tracker ~offset:5.0 ]
      ~n_correct:4 ~inputs:ramp ()
  in
  check_true "adaptive tracker absorbed" s.A.within_range

let test_unanimous_inputs_fixed_point () =
  let s = A.run ~n_correct:5 ~inputs:(fun _ -> 3.25) () in
  List.iter
    (fun (_, v) -> Alcotest.(check (float 1e-9)) "stays at 3.25" 3.25 v)
    s.A.outputs

let test_iterated_convergence () =
  (* k iterations shrink the range by 2^k. *)
  let k = 6 in
  let s = A.run ~iterations:k ~n_correct:7 ~inputs:ramp () in
  check_true "within" s.A.within_range;
  let bound = (1. /. (2. ** float_of_int k)) +. 1e-9 in
  check_true
    (Printf.sprintf "contraction %.6f <= 2^-%d" s.A.contraction k)
    (s.A.contraction <= bound)

let test_iterated_under_attack () =
  let k = 4 in
  let s =
    A.run ~iterations:k
      ~byz:
        [
          Ubpa_adversary.Aa_attacks.pull_apart ~low:(-100.) ~high:100.;
          Ubpa_adversary.Aa_attacks.outlier 999.;
        ]
      ~n_correct:7 ~inputs:ramp ()
  in
  check_true "within range after iterations under attack" s.A.within_range;
  check_true "still halving each round" (s.A.contraction <= (0.5 ** float_of_int k) +. 1e-9)

let test_midpoint_rule_unit () =
  (* Direct unit tests on the reduction. *)
  Alcotest.(check (option (float 1e-9)))
    "no discard below 3 values" (Some 1.5)
    (Unknown_ba.Approx_agreement.midpoint_rule [ 1.; 2. ]);
  Alcotest.(check (option (float 1e-9)))
    "discard one extreme each side" (Some 3.0)
    (Unknown_ba.Approx_agreement.midpoint_rule [ -100.; 2.; 3.; 4.; 100. ]);
  Alcotest.(check (option (float 1e-9)))
    "empty" None
    (Unknown_ba.Approx_agreement.midpoint_rule []);
  Alcotest.(check (option (float 1e-9)))
    "single" (Some 5.)
    (Unknown_ba.Approx_agreement.midpoint_rule [ 5. ])

let test_dynamic_join () =
  (* A node joining mid-run (Section "Application to Dynamic Networks"):
     the protocol keeps contracting; new values may widen the range, which
     the paper explicitly allows. Here we check the join is simply safe. *)
  let open Ubpa_util in
  let ids = Scenarios.make_ids ~seed:31L 6 in
  let genesis = List.filteri (fun i _ -> i < 5) ids in
  let late = List.nth ids 5 in
  let correct =
    List.mapi
      (fun i id ->
        (id, { Unknown_ba.Approx_agreement.value = ramp i; iterations = 6 }))
      genesis
  in
  let net = A.Net.create ~correct ~byzantine:[] () in
  A.Net.step_round net;
  A.Net.step_round net;
  A.Net.join_correct net late
    { Unknown_ba.Approx_agreement.value = 20.0; iterations = 4 };
  let _ = A.Net.run net in
  let outputs = A.Net.outputs net in
  check_int "all six produced outputs" 6 (List.length outputs);
  List.iter
    (fun ((_ : Node_id.t), (p : Unknown_ba.Approx_agreement.progress)) ->
      check_true "estimates stay in the global input range"
        (p.estimate >= 0.0 && p.estimate <= 40.0))
    outputs

let test_leave_stimulus () =
  let open Ubpa_util in
  let ids = Scenarios.make_ids ~seed:32L 4 in
  let leaver = List.hd ids in
  let stimulus ~round id =
    if round = 3 && Node_id.equal id leaver then
      [ Unknown_ba.Approx_agreement.Leave ]
    else []
  in
  let correct =
    List.mapi
      (fun i id ->
        (id, { Unknown_ba.Approx_agreement.value = ramp i; iterations = 10 }))
      ids
  in
  let net = A.Net.create ~stimulus ~correct ~byzantine:[] () in
  let _ = A.Net.run net in
  let rep = A.Net.report net leaver in
  check_true "leaver halted early"
    (match rep.A.Net.halted_at with Some r -> r <= 4 | None -> false)


let test_dynamic_runner_halving_and_widening () =
  (* The scenario behind experiment E5b: under a pull-apart adversary the
     spread halves round over round; four simultaneous joiners exceed the
     trimming and widen it; contraction then resumes; and every estimate
     stays within the range of all inputs ever supplied. *)
  let s =
    Scenarios.Aa.run_dynamic ~n_start:7 ~iterations:10
      ~byz:
        (List.init 2 (fun _ ->
             Ubpa_adversary.Aa_attacks.pull_apart ~low:(-1e6) ~high:1e6))
      ~joins:[ (4, 200.0); (4, 300.0); (4, 400.0); (4, 500.0) ]
      ~inputs:ramp ()
  in
  check_true "final estimates in the global input range"
    s.Scenarios.Aa.within_global_range;
  check_int "all four joiners entered" 4
    (List.length s.Scenarios.Aa.joins_applied);
  let spread r =
    List.find_map
      (fun (r', lo, hi) -> if r' = r then Some (hi -. lo) else None)
      s.Scenarios.Aa.range_per_round
    |> Option.get
  in
  check_true "halving before the join" (spread 3 <= (spread 2 /. 2.) +. 1e-9);
  check_true "join widened the spread" (spread 5 > spread 4);
  check_true "contraction resumed" (spread 7 <= spread 5 /. 2.)

let suite =
  ( "approximate-agreement",
    [
      quick "outputs within the input range" test_within_range_all_correct;
      quick "output range halves" test_halving;
      quick "pull-apart equivocation absorbed" test_pull_apart_attack;
      quick "outlier absorbed" test_outlier_attack;
      quick "adaptive tracker absorbed" test_tracker_attack;
      quick "unanimous inputs are a fixed point" test_unanimous_inputs_fixed_point;
      quick "iterated convergence at rate 2^-k" test_iterated_convergence;
      quick "iterated convergence under attack" test_iterated_under_attack;
      quick "midpoint rule unit cases" test_midpoint_rule_unit;
      quick "dynamic join mid-run" test_dynamic_join;
      quick "dynamic runner: halving, widening joins, resumed contraction"
        test_dynamic_runner_halving_and_widening;
      quick "leave stimulus halts a node" test_leave_stimulus;
    ] )
