open Ubpa_sim
open Ubpa_scenarios
open Helpers
module R = Scenarios.Renaming_run

let test_all_correct () =
  let n = 5 in
  let s = R.run ~n_correct:n () in
  check_true "terminated" s.R.all_terminated;
  check_true "consistent" s.R.consistent;
  check_true "dense ranks" s.R.names_are_dense;
  List.iter
    (fun (_, (o : Unknown_ba.Renaming.output)) ->
      check_int "n names" n (List.length o.names);
      check_true "my name assigned" (o.my_name >= 1 && o.my_name <= n))
    s.R.outputs

let test_names_follow_id_order () =
  let s = R.run ~n_correct:4 () in
  List.iter
    (fun (_, (o : Unknown_ba.Renaming.output)) ->
      let sorted_ids = List.map fst o.names in
      check_true "ranks ascend with identifiers"
        (sorted_ids = Ubpa_util.Node_id.sorted sorted_ids))
    s.R.outputs

let test_silent_byz () =
  (* Silent byzantine nodes never announce, so only correct identifiers get
     renamed — consistently. *)
  let f = 2 in
  let s =
    R.run ~byz:(List.init f (fun _ -> Strategy.silent)) ~n_correct:5 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true "consistent" s.R.consistent;
  List.iter
    (fun (_, (o : Unknown_ba.Renaming.output)) ->
      check_int "only correct ids named" 5 (List.length o.names))
    s.R.outputs

let test_announcing_byz () =
  (* Byzantine nodes that announce normally (mirror) are included in S —
     that is allowed; consistency is what matters. *)
  let s =
    R.run ~byz:[ Ubpa_adversary.Generic.mirror ] ~n_correct:4 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true "consistent" s.R.consistent;
  check_true "dense" s.R.names_are_dense

let test_round_complexity () =
  (* O(f) rounds: with the 4f+3 bound of the proof plus init rounds. *)
  let f = 2 in
  let s =
    R.run ~byz:(List.init f (fun _ -> Strategy.silent)) ~n_correct:7 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true
    (Printf.sprintf "rounds %d within bound" s.R.rounds)
    (s.R.rounds <= (4 * f) + 10)

let test_large_ids_small_names () =
  let s = R.run ~n_correct:6 () in
  List.iter
    (fun ((id : Ubpa_util.Node_id.t), (o : Unknown_ba.Renaming.output)) ->
      check_true "identifier large, name small"
        (Ubpa_util.Node_id.to_int id > 6 && o.my_name <= 6))
    s.R.outputs


let test_partial_announcer () =
  (* The byzantine identifier percolates into S over several rounds; the
     two-round stability window and the vote relay must still yield a
     common, dense table. *)
  let s =
    R.run
      ~byz:
        [
          Ubpa_adversary.Rename_attacks.partial_announcer ~fraction:0.4;
          Ubpa_adversary.Rename_attacks.partial_announcer ~fraction:0.6;
        ]
      ~n_correct:7 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true "consistent" s.R.consistent;
  check_true "dense" s.R.names_are_dense

let test_vote_rusher () =
  (* Premature terminate(k) floods from f < n_v/3 nodes must not trigger
     early (inconsistent) termination. *)
  let s =
    R.run
      ~byz:(List.init 2 (fun _ -> Ubpa_adversary.Rename_attacks.vote_rusher))
      ~n_correct:7 ()
  in
  check_true "terminated" s.R.all_terminated;
  check_true "consistent despite vote rushing" s.R.consistent

let test_churning_candidate () =
  (* Ghost echoes from f colluders never cross n_v/3, so S stabilizes. *)
  let s =
    R.run
      ~byz:
        (List.init 2 (fun _ -> Ubpa_adversary.Rename_attacks.churning_candidate))
      ~n_correct:7 ()
  in
  check_true "terminated despite churn attempts" s.R.all_terminated;
  check_true "consistent" s.R.consistent;
  (* The announced byzantine identifiers are in S, their ghosts are not. *)
  List.iter
    (fun (_, (o : Unknown_ba.Renaming.output)) ->
      check_int "correct + announcing byz only" 9 (List.length o.names))
    s.R.outputs

let suite =
  ( "renaming",
    [
      quick "all-correct renaming is consistent and dense" test_all_correct;
      quick "ranks follow identifier order" test_names_follow_id_order;
      quick "silent byzantine nodes excluded" test_silent_byz;
      quick "announcing byzantine nodes tolerated" test_announcing_byz;
      quick "O(f) round complexity" test_round_complexity;
      quick "large identifiers become small names" test_large_ids_small_names;
      quick "partial announcer percolates safely" test_partial_announcer;
      quick "premature terminate votes rejected" test_vote_rusher;
      quick "ghost churn cannot prevent stability" test_churning_candidate;
    ] )
