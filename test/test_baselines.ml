open Ubpa_util
open Ubpa_sim
open Unknown_ba
open Helpers

(* ----- Srikanth–Toueg broadcast (known f) ----- *)

module St = Ubpa_baselines.St_broadcast.Make (Value.String)
module St_net = Network.Make (St)

let run_st ~n_correct ~f_byz ~f_param payload =
  let ids = Node_id.scatter ~seed:61L (n_correct + f_byz) in
  let correct_ids = List.filteri (fun i _ -> i < n_correct) ids in
  let byz_ids = List.filteri (fun i _ -> i >= n_correct) ids in
  let correct =
    List.mapi
      (fun i id ->
        (id, { St.payload = (if i = 0 then Some payload else None); f = f_param }))
      correct_ids
  in
  let byzantine = List.map (fun id -> (id, Strategy.silent)) byz_ids in
  let net = St_net.create ~correct ~byzantine () in
  let stop net =
    let reports = St_net.reports net in
    reports <> []
    && List.for_all
         (fun r ->
           match r.St_net.last_output with Some (_ :: _) -> true | _ -> false)
         reports
  in
  let _ = St_net.run_until ~max_rounds:30 net ~stop in
  net

let test_st_correct_sender () =
  let net = run_st ~n_correct:5 ~f_byz:0 ~f_param:1 "msg" in
  List.iter
    (fun (_, accepted) ->
      check_true "accepted"
        (List.exists (fun (a : St.accepted) -> a.payload = "msg") accepted);
      List.iter
        (fun (a : St.accepted) -> check_int "round 3" 3 a.accepted_round)
        accepted)
    (St_net.outputs net)

let test_st_with_byz () =
  let net = run_st ~n_correct:7 ~f_byz:3 ~f_param:3 "m" in
  check_int "all accepted" 7 (List.length (St_net.outputs net))

(* ----- Phase king (known n, f, members) ----- *)

module Pk = Ubpa_baselines.Phase_king.Make (Value.Int)
module Pk_net = Network.Make (Pk)

let run_pk ?(byz = []) ~n_correct ~inputs () =
  let n = n_correct + List.length byz in
  let f = (n - 1) / 3 in
  let ids = Node_id.scatter ~seed:62L n in
  let correct_ids = List.filteri (fun i _ -> i < n_correct) ids in
  let byz_ids = List.filteri (fun i _ -> i >= n_correct) ids in
  let correct =
    List.mapi
      (fun i id -> (id, { Pk.value = inputs i; members = ids; f }))
      correct_ids
  in
  let byzantine = List.combine byz_ids byz in
  let net = Pk_net.create ~correct ~byzantine () in
  let res = Pk_net.run ~max_rounds:200 net in
  (net, res)

let test_pk_unanimous () =
  let net, res = run_pk ~n_correct:4 ~inputs:(fun _ -> 1) () in
  check_true "terminated" (res = `All_halted);
  List.iter (fun (_, v) -> check_int "validity" 1 v) (Pk_net.outputs net)

let test_pk_split () =
  let net, res = run_pk ~n_correct:4 ~inputs:binary_split () in
  check_true "terminated" (res = `All_halted);
  match Pk_net.outputs net with
  | (_, first) :: rest ->
      List.iter (fun (_, v) -> check_int "agreement" first v) rest
  | [] -> Alcotest.fail "no outputs"

let test_pk_byz () =
  let net, res =
    run_pk
      ~byz:[ Ubpa_adversary.Generic.split_mirror; Strategy.silent ]
      ~n_correct:5 ~inputs:binary_split ()
  in
  check_true "terminated" (res = `All_halted);
  match Pk_net.outputs net with
  | (_, first) :: rest ->
      List.iter (fun (_, v) -> check_int "agreement" first v) rest
  | [] -> Alcotest.fail "no outputs"

let test_pk_round_count () =
  let net, _ = run_pk ~n_correct:7 ~inputs:binary_split () in
  (* f = 2: 3 phases of 3 rounds + 1 application round. *)
  check_int "3(f+1)+1 rounds" 10 (Pk_net.round net)

(* ----- Dolev et al. approximate agreement (known f) ----- *)

module Da = Ubpa_baselines.Dolev_aa
module Da_net = Network.Make (Da)

let test_dolev_reduce () =
  Alcotest.(check (option (float 1e-9)))
    "discard f" (Some 3.)
    (Da.reduce ~f:1 [ -50.; 2.; 3.; 4.; 60. ]);
  Alcotest.(check (option (float 1e-9)))
    "f larger than sensible is clamped" (Some 3.)
    (Da.reduce ~f:10 [ 1.; 3.; 200. ]);
  Alcotest.(check (option (float 1e-9))) "empty" None (Da.reduce ~f:1 [])

let test_dolev_run () =
  let ids = Node_id.scatter ~seed:63L 5 in
  let correct =
    List.mapi
      (fun i id -> (id, { Da.value = ramp i; iterations = 3; f = 1 }))
      ids
  in
  let net = Da_net.create ~correct ~byzantine:[] () in
  let _ = Da_net.run net in
  let outs = Da_net.outputs net in
  check_int "all done" 5 (List.length outs);
  List.iter
    (fun (_, (p : Da.progress)) ->
      check_true "within input range" (p.estimate >= 0. && p.estimate <= 40.))
    outs

let test_dolev_vs_unknown_same_shape () =
  (* With the same inputs and no faults, the known-f and unknown-n/f
     reductions coincide when ⌊n/3⌋ = f. *)
  let values = [ 0.; 10.; 20.; 30. ] in
  let ours = Unknown_ba.Approx_agreement.midpoint_rule values in
  let theirs = Da.reduce ~f:1 values in
  Alcotest.(check (option (float 1e-9))) "same midpoint" theirs ours

let suite =
  ( "baselines",
    [
      quick "srikanth-toueg: correct sender accepted in round 3"
        test_st_correct_sender;
      quick "srikanth-toueg: byzantine third tolerated" test_st_with_byz;
      quick "phase-king: unanimous validity" test_pk_unanimous;
      quick "phase-king: split inputs agree" test_pk_split;
      quick "phase-king: byzantine faults" test_pk_byz;
      quick "phase-king: exact round count" test_pk_round_count;
      quick "dolev reduce unit cases" test_dolev_reduce;
      quick "dolev aa run" test_dolev_run;
      quick "dolev vs unknown coincide at matched parameters"
        test_dolev_vs_unknown_same_shape;
    ] )
