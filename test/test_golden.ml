(* Golden differential tests for the dense-index refactors.

   The fingerprints below were captured from the pre-refactor accumulators
   (List.mem_assoc dedup in total_order, List.mem relay scans in renaming,
   Set/Map tallies in the cores) over seeded churn sweeps; the refactored
   code must reproduce them bit-for-bit. The serialization covers every
   observable of the runs — per-node chains with origins and events,
   frontier lags, renaming name tables — so any behavioural drift in the
   replacement structures shows up as a fingerprint mismatch, not a flaky
   downstream failure. *)

open Ubpa_util
open Ubpa_scenarios
open Helpers
module T = Scenarios.Total_order_str
module R = Scenarios.Renaming_run

let fnv1a (s : string) : int64 =
  let basis = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let total_order_fingerprint ~seed =
  let s =
    T.run ~seed:(Int64.of_int seed)
      ~churn:{ T.join_at = [ (4, 1) ]; leave_at = [ (7, 1) ] }
      ~n_genesis:5 ~rounds:10 ~events_per_round:2 ()
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "rounds=%d msgs=%d submitted=%d prefix=%b|" s.T.rounds
       s.T.delivered_msgs s.T.events_submitted s.T.prefix_consistent);
  List.iter
    (fun (id, (o : T.P.chain_output)) ->
      Buffer.add_string buf
        (Printf.sprintf "node=%d lr=%d fr=%d:" (Node_id.to_int id)
           o.T.P.logical_round o.T.P.frontier);
      List.iter
        (fun (e : T.P.chain_entry) ->
          Buffer.add_string buf
            (Printf.sprintf "(%d,%d,%s)" e.T.P.group
               (Node_id.to_int e.T.P.origin)
               e.T.P.event))
        o.T.P.chain;
      Buffer.add_char buf '|')
    s.T.chains;
  List.iter
    (fun l -> Buffer.add_string buf (Printf.sprintf "%d," l))
    s.T.frontier_lags;
  fnv1a (Buffer.contents buf)

let renaming_fingerprint ~seed =
  let s = R.run ~seed:(Int64.of_int seed) ~n_correct:6 () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "n=%d f=%d rounds=%d msgs=%d cons=%b dense=%b term=%b|"
       s.R.n s.R.f s.R.rounds s.R.delivered_msgs s.R.consistent
       s.R.names_are_dense s.R.all_terminated);
  List.iter
    (fun (id, (o : Unknown_ba.Renaming.output)) ->
      Buffer.add_string buf
        (Printf.sprintf "node=%d my=%d:" (Node_id.to_int id) o.my_name);
      List.iter
        (fun (nid, rank) ->
          Buffer.add_string buf
            (Printf.sprintf "(%d,%d)" (Node_id.to_int nid) rank))
        o.names;
      Buffer.add_char buf '|')
    s.R.outputs;
  fnv1a (Buffer.contents buf)

let check_fp name expected actual =
  Alcotest.(check string) name (Printf.sprintf "%016Lx" expected)
    (Printf.sprintf "%016Lx" actual)

let test_total_order_goldens () =
  List.iter
    (fun (seed, expected) ->
      check_fp
        (Printf.sprintf "total-order seed=%d" seed)
        expected
        (total_order_fingerprint ~seed))
    [
      (11, 0x39cd0a9b83cfc836L);
      (42, 0xdb3c33e523f14a1eL);
      (1009, 0xfd481038063443f2L);
    ]

let test_renaming_goldens () =
  List.iter
    (fun (seed, expected) ->
      check_fp
        (Printf.sprintf "renaming seed=%d" seed)
        expected
        (renaming_fingerprint ~seed))
    [
      (11, 0x8cd54ed086897df5L);
      (42, 0x1087126fdd54ba83L);
      (1009, 0xdf634c3ce11e67afL);
    ]

let suite =
  ( "golden-fingerprints",
    [
      quick "total-order churn sweep matches pre-refactor goldens"
        test_total_order_goldens;
      quick "renaming sweep matches pre-refactor goldens"
        test_renaming_goldens;
    ] )
