open Ubpa_sim
open Ubpa_scenarios
open Helpers
module T = Scenarios.Trb_str

let test_correct_sender () =
  let s = T.run ~n_correct:4 ~payload:"broadcast-me" () in
  check_true "terminated" s.T.all_terminated;
  check_true "agreed" s.T.agreed;
  List.iter
    (fun (_, o) ->
      Alcotest.(check (option string)) "payload delivered" (Some "broadcast-me") o)
    s.T.outputs

let test_correct_sender_with_byz () =
  let s =
    T.run
      ~byz:[ Strategy.silent; Strategy.silent ]
      ~n_correct:7 ~payload:"p" ()
  in
  check_true "agreed" (s.T.agreed && s.T.all_terminated);
  List.iter
    (fun (_, o) -> Alcotest.(check (option string)) "payload" (Some "p") o)
    s.T.outputs

let test_silent_byz_sender () =
  (* The designated sender is byzantine and silent: all correct nodes must
     agree on the empty opinion. *)
  let s =
    T.run ~byz:[ Strategy.silent ] ~byz_sender:true ~n_correct:4 ~payload:"x" ()
  in
  check_true "terminated" s.T.all_terminated;
  check_true "agreed" s.T.agreed;
  List.iter
    (fun (_, o) -> Alcotest.(check (option string)) "empty opinion" None o)
    s.T.outputs

let test_equivocating_byz_sender () =
  (* The sender hands different payloads to different nodes; consensus must
     still drive everyone to a single common output. *)
  let module P = T.P in
  let equivocator =
    Strategy.v ~name:"trb-equivocator" (fun _ _ view ->
        if view.Strategy.round = 1 then
          let correct = view.Strategy.correct in
          let half = List.length correct / 2 in
          List.mapi
            (fun i t ->
              let m = if i < half then "red" else "blue" in
              (Ubpa_sim.Envelope.To t, P.Trb_payload m))
            correct
        else [])
  in
  let s = T.run ~byz:[ equivocator ] ~byz_sender:true ~n_correct:7 ~payload:"red" () in
  check_true "terminated" s.T.all_terminated;
  check_true "agreed on one of the faces (or none)" s.T.agreed

let test_rounds_o_f () =
  let s = T.run ~byz:[ Strategy.silent ] ~n_correct:4 ~payload:"q" () in
  check_true "terminates quickly" (s.T.rounds <= 25)

let suite =
  ( "terminating-reliable-broadcast",
    [
      quick "correct sender: payload delivered everywhere" test_correct_sender;
      quick "correct sender with byzantine bystanders"
        test_correct_sender_with_byz;
      quick "silent byzantine sender: common empty output"
        test_silent_byz_sender;
      quick "equivocating byzantine sender: common output"
        test_equivocating_byz_sender;
      quick "O(f) rounds" test_rounds_o_f;
    ] )
