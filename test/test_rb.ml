open Ubpa_sim
open Ubpa_scenarios
open Helpers
module Rb = Scenarios.Rb

let test_correct_sender_accepts_round3 () =
  (* Lemma rb-correct: with a correct sender every correct node accepts in
     round 3. *)
  let s = Rb.run ~n_correct:4 ~payload:"hello" () in
  check_true "all accepted" s.Rb.all_accepted_sender_payload;
  check_int "accept round 3 (min)" 3 s.Rb.min_accept_round;
  check_int "accept round 3 (max)" 3 s.Rb.max_accept_round

let test_correct_sender_with_silent_byz () =
  let f = 3 in
  let s =
    Rb.run
      ~byz:(List.init f (fun _ -> Strategy.silent))
      ~n_correct:7 ~payload:"msg" ()
  in
  check_true "all accepted despite silent byz" s.Rb.all_accepted_sender_payload;
  check_int "round 3 still" 3 s.Rb.max_accept_round

let test_relay_bound_under_partial_sender () =
  (* Byzantine sender delivers to only 40% of correct nodes; acceptance may
     be staggered but by the relay property at most one round apart. *)
  let s =
    Rb.run
      ~byz:[ Rb.Attacks.partial_sender "part" ~fraction:0.4 ]
      ~byz_sender:true ~n_correct:7 ~payload:"part" ()
  in
  let rounds =
    List.concat_map
      (fun (_, entries) -> List.map (fun (_, _, r) -> r) entries)
      s.Rb.accepted
  in
  match rounds with
  | [] -> () (* nobody accepted: fine, the sender is byzantine *)
  | _ ->
      check_int "acceptance is unanimous" (List.length s.Rb.accepted)
        (List.length rounds);
      let lo = List.fold_left min max_int rounds in
      let hi = List.fold_left max min_int rounds in
      check_true "relay: skew <= 1 round" (hi - lo <= 1)

let test_equivocating_sender_consistent () =
  (* Sender sends m1 to half, m2 to the other half. Each payload must be
     accepted by all correct nodes or none (within the run horizon), never
     by a strict subset forever. *)
  let s =
    Rb.run
      ~byz:[ Rb.Attacks.equivocating_sender "m1" "m2" ]
      ~byz_sender:true ~n_correct:6 ~payload:"m1" ~max_rounds:30 ()
  in
  let count payload =
    List.length
      (List.filter
         (fun (_, entries) -> List.exists (fun (m, _, _) -> m = payload) entries)
         s.Rb.accepted)
  in
  let n = List.length s.Rb.accepted in
  List.iter
    (fun p ->
      let c = count p in
      check_true
        (Printf.sprintf "payload %s accepted by all or none (got %d/%d)" p c n)
        (c = 0 || c = n))
    [ "m1"; "m2" ]

let test_unforgeability_ghost_echoes () =
  (* f byzantine nodes echo a payload attributed to a correct node that
     never sent it; with f < n_v/3 no correct node may accept it. *)
  let claimed = List.hd (Scenarios.make_ids ~seed:1L 7) in
  (* claimed is the first correct id in the run's population (seed 1). *)
  let f = 2 in
  let s =
    Rb.run
      ~byz:(List.init f (fun _ -> Rb.Attacks.forging_echoer "forged" ~claimed))
      ~n_correct:7 ~payload:"real" ()
  in
  check_true "real payload accepted" s.Rb.all_accepted_sender_payload;
  List.iter
    (fun (_, entries) ->
      check_false "forged payload never accepted"
        (List.exists (fun (m, _, _) -> m = "forged") entries))
    s.Rb.accepted

let test_echo_amplifier_harmless () =
  let s =
    Rb.run
      ~byz:[ Rb.Attacks.echo_amplifier; Rb.Attacks.echo_amplifier ]
      ~n_correct:7 ~payload:"amp" ()
  in
  check_true "accepted" s.Rb.all_accepted_sender_payload

let test_multiple_concurrent_senders () =
  (* Two correct designated senders at once: both payloads accepted by
     everyone (the implementation tracks acceptance per (payload, sender)
     pair). Built directly on the protocol to control inputs. *)
  let open Ubpa_util in
  let ids = Scenarios.make_ids ~seed:21L 5 in
  let correct =
    List.mapi
      (fun i id ->
        (id, if i = 0 then Some "a" else if i = 1 then Some "b" else None))
      ids
  in
  let net = Rb.Net.create ~correct ~byzantine:[] () in
  let all_accepted_two net =
    let reports = Rb.Net.reports net in
    reports <> []
    && List.for_all
         (fun r ->
           match r.Rb.Net.last_output with
           | Some l -> List.length l >= 2
           | None -> false)
         reports
  in
  let res = Rb.Net.run_until ~max_rounds:20 net ~stop:all_accepted_two in
  check_true "both payloads accepted everywhere" (res = `Stopped);
  List.iter
    (fun r ->
      match r.Rb.Net.last_output with
      | Some l ->
          let payloads = List.map (fun a -> a.Rb.P.payload) l in
          check_true "a present" (List.mem "a" payloads);
          check_true "b present" (List.mem "b" payloads)
      | None -> Alcotest.fail "missing output")
    (Rb.Net.reports net);
  ignore (List.hd ids |> Node_id.to_int)

let test_minimal_n4_f1 () =
  let s = Rb.run ~byz:[ Strategy.silent ] ~n_correct:3 ~payload:"tiny" () in
  check_true "n=4 f=1 works" s.Rb.all_accepted_sender_payload

let test_spam_attack () =
  let s =
    Rb.run ~byz:[ Ubpa_adversary.Generic.spam ] ~n_correct:4 ~payload:"x" ()
  in
  check_true "accepted under spam" s.Rb.all_accepted_sender_payload

let test_split_mirror_attack () =
  let s =
    Rb.run
      ~byz:[ Ubpa_adversary.Generic.split_mirror ]
      ~n_correct:4 ~payload:"x" ()
  in
  check_true "accepted under split-mirror" s.Rb.all_accepted_sender_payload

let suite =
  ( "reliable-broadcast",
    [
      quick "correct sender: everyone accepts in round 3"
        test_correct_sender_accepts_round3;
      quick "correct sender + silent byzantine third"
        test_correct_sender_with_silent_byz;
      quick "relay: partial delivery converges within one round"
        test_relay_bound_under_partial_sender;
      quick "equivocating sender: all-or-none per payload"
        test_equivocating_sender_consistent;
      quick "unforgeability: ghost echoes never accepted"
        test_unforgeability_ghost_echoes;
      quick "echo amplifier cannot block acceptance" test_echo_amplifier_harmless;
      quick "two concurrent correct senders" test_multiple_concurrent_senders;
      quick "minimal network n=4, f=1" test_minimal_n4_f1;
      quick "spam attack" test_spam_attack;
      quick "split-mirror attack" test_split_mirror_attack;
    ] )
