(** Shared test plumbing. *)

open Ubpa_util

let node_id = Alcotest.testable Node_id.pp Node_id.equal

let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b
let check_int msg a b = Alcotest.(check int) msg a b

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* Deterministic inputs used all over the tests. *)
let binary_split i = i mod 2
let all_same _ = 7
let ramp i = float_of_int (10 * i)

let qcheck_cases props = List.map QCheck_alcotest.to_alcotest props
