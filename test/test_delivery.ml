(* Delivery cores: differential tests against the seed core.

   [Delivery.route_reference] is the seed engine's list-scan delivery kept
   verbatim as an executable specification; these tests replay randomized
   traffic through it, [Delivery.route_indexed] (engine v2, sparse and
   dense) and [Delivery.route_arena] (engine v3) and require bit-for-bit
   identical inboxes, delivery counts and wire counters, then repeat the
   comparison at the network level with full protocol runs under all
   cores. *)

open Ubpa_util
open Ubpa_sim

let id i = Node_id.of_int i

(* ----- randomized traffic through both cores ----- *)

(* One round's worth of traffic: a universe of nodes of which a random
   subset is present (models halted / not-yet-joined recipients), unicasts
   and broadcasts in random proportion, with deliberate duplicate sends —
   same (sender, payload) repeated as broadcast, as unicast, and as a
   broadcast/unicast mix. *)
let random_traffic rng =
  let universe = 2 + Rng.int rng 9 in
  let ids = List.init universe id in
  let present =
    List.filter (fun _ -> Rng.int rng 4 > 0) ids |> Node_id.Set.of_list
  in
  let n_msgs = Rng.int rng 60 in
  let envelopes =
    List.concat_map
      (fun _ ->
        let src = Rng.pick rng ids in
        (* Small payload space so duplicates are common. *)
        let payload = Rng.int rng 5 in
        let env =
          if Rng.bool rng then Envelope.broadcast ~src payload
          else Envelope.send ~src ~dst:(Rng.pick rng ids) payload
        in
        (* Occasionally send the exact same envelope again back to back. *)
        if Rng.int rng 4 = 0 then [ env; env ] else [ env ])
      (List.init n_msgs Fun.id)
  in
  (present, envelopes)

let same_inboxes a b =
  Node_id.Map.equal
    (fun a b ->
      List.length a = List.length b
      && List.for_all2
           (fun (s1, p1) (s2, p2) -> Node_id.equal s1 s2 && p1 = p2)
           a b)
    a b

(* Run one core with a wire observer attached at its accept point; the
   [Wire.equal] comparison below is multiset-shaped (per round, recipient
   and kind), which is exactly the cross-core guarantee — cores may visit
   a broadcast's recipients in different orders. *)
let with_wire core ~present ~envelopes =
  let wire = Ubpa_obs.Wire.create () in
  let on_deliver ~recipient ~src payload =
    Ubpa_obs.Wire.record wire ~round:1 ~sender:src ~recipient ~kind:"m"
      ~bits:(16 + (8 * payload))
  in
  let inboxes, count = core ~on_deliver ~present ~envelopes in
  (inboxes, count, wire)

let cores :
    (string
    * (on_deliver:int Delivery.on_deliver ->
      present:Node_id.Set.t ->
      envelopes:int Envelope.t list ->
      (Node_id.t * int) list Node_id.Map.t * int))
    list =
  [
    ( "indexed-sparse",
      fun ~on_deliver ~present ~envelopes ->
        Delivery.route_indexed ~on_deliver ~interner:None ~equal:Int.equal
          ~present ~envelopes () );
    ( "indexed-dense",
      fun ~on_deliver ~present ~envelopes ->
        Delivery.route_indexed ~on_deliver
          ~interner:(Some (Interner.create ()))
          ~equal:Int.equal ~present ~envelopes () );
    ( "arena",
      fun ~on_deliver ~present ~envelopes ->
        Delivery.route ~on_deliver ~interner:None ~impl:Delivery.Arena
          ~equal:Int.equal ~present ~envelopes () );
  ]

let check_same ~present ~envelopes =
  let ref_inboxes, ref_count, ref_wire =
    with_wire
      (fun ~on_deliver ~present ~envelopes ->
        Delivery.route_reference ~on_deliver ~equal:Int.equal ~present
          ~envelopes ())
      ~present ~envelopes
  in
  List.iter
    (fun (name, core) ->
      let inboxes, count, wire = with_wire core ~present ~envelopes in
      Alcotest.(check int) (name ^ ": delivered count") ref_count count;
      Alcotest.(check bool)
        (name ^ ": inboxes identical")
        true
        (same_inboxes ref_inboxes inboxes);
      Alcotest.(check bool)
        (name ^ ": wire counters identical")
        true
        (Ubpa_obs.Wire.equal ref_wire wire))
    cores

let test_differential_random () =
  let rng = Rng.create 0xD311FEA7L in
  for _ = 1 to 300 do
    let present, envelopes = random_traffic rng in
    check_same ~present ~envelopes
  done

let test_differential_adversarial () =
  (* Hand-built worst cases for the dedup keying. *)
  let present = Node_id.Set.of_list [ id 0; id 1; id 2 ] in
  let b = Envelope.broadcast in
  let u = Envelope.send in
  let cases =
    [
      (* Same payload broadcast twice by the same sender: one delivery each. *)
      [ b ~src:(id 0) 7; b ~src:(id 0) 7 ];
      (* Same payload from two senders: both delivered (keyed by sender). *)
      [ b ~src:(id 0) 7; b ~src:(id 1) 7 ];
      (* Unicast then broadcast of the same (sender, payload): the broadcast
         must still reach the recipients the unicast missed. *)
      [ u ~src:(id 0) ~dst:(id 1) 7; b ~src:(id 0) 7 ];
      (* Broadcast then duplicate unicast: the unicast adds nothing. *)
      [ b ~src:(id 0) 7; u ~src:(id 0) ~dst:(id 2) 7 ];
      (* Unicast to an absent node only. *)
      [ u ~src:(id 0) ~dst:(id 9) 7 ];
      (* Sender not present still delivers (rushing nodes may have halted). *)
      [ b ~src:(id 9) 3 ];
      [];
    ]
  in
  List.iter (fun envelopes -> check_same ~present ~envelopes) cases

let test_inbox_order () =
  (* Inboxes are sorted by sender, same-sender messages in send order. *)
  let present = Node_id.Set.of_list [ id 0 ] in
  let envelopes =
    [
      Envelope.broadcast ~src:(id 2) 20;
      Envelope.broadcast ~src:(id 1) 10;
      Envelope.broadcast ~src:(id 2) 21;
      Envelope.broadcast ~src:(id 1) 11;
    ]
  in
  let inboxes, _ =
    Delivery.route_indexed ~interner:None ~equal:Int.equal ~present ~envelopes
      ()
  in
  Alcotest.(check (list (pair int int)))
    "sender-sorted, send order within sender"
    [ (1, 10); (1, 11); (2, 20); (2, 21) ]
    (List.map
       (fun (s, p) -> (Node_id.to_int s, p))
       (Node_id.Map.find (id 0) inboxes))

(* ----- engine v3: reused arena state and lazy views ----- *)

(* The arena state is the whole point of engine v3: one grow-only
   structure fed round after round, presence changing under it, with every
   round's view still matching the reference core on fresh state. This is
   the test that would catch stale-round leakage (marks, slices or dedup
   tables surviving a clear). *)
let test_arena_state_reuse () =
  let rng = Rng.create 0xA7E4A57A7EL in
  let state : int Delivery.arena_state = Delivery.arena_create ~hint:4 () in
  for _ = 1 to 200 do
    let present, envelopes = random_traffic rng in
    let ref_inboxes, ref_count =
      Delivery.route_reference ~equal:Int.equal ~present ~envelopes ()
    in
    let view =
      Delivery.route_arena ~state ~equal:Int.equal ~present ~envelopes ()
    in
    Alcotest.(check int)
      "reused state: delivered" ref_count
      (Delivery.view_delivered view);
    Alcotest.(check bool)
      "reused state: inboxes" true
      (same_inboxes ref_inboxes (Delivery.view_to_map view));
    (* Lazy reads agree with the materialised map, including nodes that
       are unknown or absent this round. *)
    Node_id.Map.iter
      (fun nid inbox ->
        Alcotest.(check (list (pair int int)))
          "view_inbox = map entry"
          (List.map (fun (s, p) -> (Node_id.to_int s, p)) inbox)
          (List.map
             (fun (s, p) -> (Node_id.to_int s, p))
             (Delivery.view_inbox view nid)))
      ref_inboxes;
    Alcotest.(check (list (pair int int)))
      "unknown recipient reads empty" []
      (List.map
         (fun (s, p) -> (Node_id.to_int s, p))
         (Delivery.view_inbox view (id 99)));
    Alcotest.(check bool)
      "view_present = present set" true
      (Node_id.Set.equal present
         (Node_id.Set.of_list (Delivery.view_present view)))
  done

(* QCheck differential: structured random batches — unicasts, broadcasts,
   back-to-back duplicates, absent recipients, absent senders — through
   the arena core against both the reference and the indexed cores. *)
let gen_batch =
  QCheck2.Gen.(
    let* universe = int_range 2 9 in
    let* present_mask = array_size (pure universe) bool in
    let* msgs =
      list_size (int_bound 50)
        (triple (int_bound universe)
           (option (int_bound universe))
           (int_bound 4))
    in
    pure (universe, present_mask, msgs))

let prop_arena_differential =
  QCheck2.Test.make ~count:300
    ~name:"arena vs reference vs indexed on random envelope batches"
    gen_batch
    (fun (universe, present_mask, msgs) ->
      let present =
        List.init universe Fun.id
        |> List.filter (fun i -> present_mask.(i))
        |> List.map id |> Node_id.Set.of_list
      in
      let envelopes =
        List.concat
          (List.mapi
             (fun i (src, dst, payload) ->
               let env =
                 match dst with
                 | None -> Envelope.broadcast ~src:(id src) payload
                 | Some d -> Envelope.send ~src:(id src) ~dst:(id d) payload
               in
               (* Every third envelope is sent twice back to back, so the
                  dedup paths are always exercised. *)
               if i mod 3 = 0 then [ env; env ] else [ env ])
             msgs)
      in
      let ref_inboxes, ref_count, ref_wire =
        with_wire
          (fun ~on_deliver ~present ~envelopes ->
            Delivery.route_reference ~on_deliver ~equal:Int.equal ~present
              ~envelopes ())
          ~present ~envelopes
      in
      List.for_all
        (fun (_, core) ->
          let inboxes, count, wire = with_wire core ~present ~envelopes in
          count = ref_count
          && same_inboxes ref_inboxes inboxes
          && Ubpa_obs.Wire.equal ref_wire wire)
        cores)

(* ----- full protocol runs under both engines ----- *)

module C = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int)
module Net = Network.Make (C)
module A = Ubpa_adversary.Consensus_attacks.Make (Unknown_ba.Value.Int)

let consensus_run ~delivery =
  let ids = Node_id.scatter ~seed:41L 10 in
  let correct_ids = List.filteri (fun i _ -> i < 8) ids in
  let byz_ids = List.filteri (fun i _ -> i >= 8) ids in
  let net =
    Net.create ~delivery
      ~correct:(List.mapi (fun i nid -> (nid, i mod 2)) correct_ids)
      ~byzantine:(List.map (fun nid -> (nid, A.split_world 0 1)) byz_ids)
      ()
  in
  let finished = Net.run ~max_rounds:300 net in
  (finished, Net.round net, Metrics.delivered (Net.metrics net),
   Net.outputs net)

let test_engine_equivalence () =
  let f1, r1, d1, o1 = consensus_run ~delivery:Delivery.Indexed in
  let f2, r2, d2, o2 = consensus_run ~delivery:Delivery.Naive in
  let f3, r3, d3, o3 = consensus_run ~delivery:Delivery.Arena in
  Alcotest.(check bool)
    "all halted" true
    (f1 = `All_halted && f2 = `All_halted && f3 = `All_halted);
  Alcotest.(check int) "same rounds" r2 r1;
  Alcotest.(check int) "same deliveries" d2 d1;
  Alcotest.(check (list (pair int int)))
    "same decisions"
    (List.map (fun (nid, v) -> (Node_id.to_int nid, v)) o2)
    (List.map (fun (nid, v) -> (Node_id.to_int nid, v)) o1);
  Alcotest.(check int) "arena: same rounds" r2 r3;
  Alcotest.(check int) "arena: same deliveries" d2 d3;
  Alcotest.(check (list (pair int int)))
    "arena: same decisions"
    (List.map (fun (nid, v) -> (Node_id.to_int nid, v)) o2)
    (List.map (fun (nid, v) -> (Node_id.to_int nid, v)) o3)

(* [wire_accounting:false] must change what is observed, never what
   happens: same run, empty wire log, delivered metrics intact. *)
let test_wire_accounting_off () =
  let run ~delivery ~wire_accounting =
    let ids = Node_id.scatter ~seed:41L 10 in
    let correct_ids = List.filteri (fun i _ -> i < 8) ids in
    let byz_ids = List.filteri (fun i _ -> i >= 8) ids in
    let net =
      Net.create ~delivery ~wire_accounting
        ~correct:(List.mapi (fun i nid -> (nid, i mod 2)) correct_ids)
        ~byzantine:(List.map (fun nid -> (nid, A.split_world 0 1)) byz_ids)
        ()
    in
    ignore (Net.run ~max_rounds:300 net);
    ( Net.round net,
      Metrics.delivered (Net.metrics net),
      Ubpa_obs.Wire.messages (Net.wire net),
      Net.outputs net )
  in
  List.iter
    (fun delivery ->
      let r_on, d_on, w_on, o_on = run ~delivery ~wire_accounting:true in
      let r_off, d_off, w_off, o_off = run ~delivery ~wire_accounting:false in
      Alcotest.(check int) "same rounds" r_on r_off;
      Alcotest.(check int) "same delivered metric" d_on d_off;
      Alcotest.(check bool) "wire recorded when on" true (w_on > 0);
      Alcotest.(check int) "wire silent when off" 0 w_off;
      Alcotest.(check bool) "same outputs" true (o_on = o_off))
    [ Delivery.Indexed; Delivery.Arena ]

(* ----- trace-level determinism across cores ----- *)

(* Stronger than outcome equivalence: the same seed must yield the same
   execution event for event, so the JSONL traces are byte-identical —
   including every fault decision when a plan is active, since the fault
   stream is keyed to engine-determined orders only. *)
let traced_jsonl ~delivery ?faults () =
  let ids = Node_id.scatter ~seed:41L 10 in
  let correct_ids = List.filteri (fun i _ -> i < 8) ids in
  let byz_ids = List.filteri (fun i _ -> i >= 8) ids in
  let trace = Trace.create () in
  let net =
    Net.create ~delivery ~seed:17L ?faults ~trace
      ~correct:(List.mapi (fun i nid -> (nid, i mod 2)) correct_ids)
      ~byzantine:(List.map (fun nid -> (nid, A.split_world 0 1)) byz_ids)
      ()
  in
  ignore (Net.run ~max_rounds:300 net);
  Trace.to_jsonl trace

let test_trace_determinism () =
  let reference = traced_jsonl ~delivery:Delivery.Naive () in
  Alcotest.(check string)
    "no faults: byte-identical JSONL" reference
    (traced_jsonl ~delivery:Delivery.Indexed ());
  Alcotest.(check string)
    "no faults: arena byte-identical JSONL" reference
    (traced_jsonl ~delivery:Delivery.Arena ());
  let ids = Node_id.scatter ~seed:41L 10 in
  let faults =
    Ubpa_faults.make ~loss:0.15 ~dup:0.1
      [
        (List.nth ids 0, [ Ubpa_faults.crash ~at:3 ~recover:6 () ]);
        ( List.nth ids 1,
          [ Ubpa_faults.send_omission ~first:2 ~last:8 ~prob:0.5 () ] );
        ( List.nth ids 2,
          [ Ubpa_faults.recv_omission ~first:2 ~last:8 ~prob:0.5 () ] );
      ]
  in
  let reference = traced_jsonl ~delivery:Delivery.Naive ~faults () in
  Alcotest.(check string)
    "fault plan: byte-identical JSONL" reference
    (traced_jsonl ~delivery:Delivery.Indexed ~faults ());
  (* Fault plans push the arena core onto the materialised-map path, so
     the post-route filters draw from the fault stream in the exact same
     order — the trace must stay byte-identical there too. *)
  Alcotest.(check string)
    "fault plan: arena byte-identical JSONL" reference
    (traced_jsonl ~delivery:Delivery.Arena ~faults ())

(* ----- zero-correct-node networks ----- *)

let test_no_correct_nodes () =
  let empty = Net.create ~correct:[] ~byzantine:[] () in
  Alcotest.(check bool)
    "empty network" true
    (Net.run empty = `No_correct_nodes);
  let byz_only =
    Net.create ~correct:[]
      ~byzantine:
        (List.map
           (fun nid -> (nid, A.split_world 0 1))
           (Node_id.scatter ~seed:42L 3))
      ()
  in
  Alcotest.(check bool)
    "byzantine-only network" true
    (Net.run byz_only = `No_correct_nodes);
  Alcotest.(check int) "no rounds consumed" 0 (Net.round byz_only)

let test_queued_join_still_runs () =
  (* A queued correct join means the run is not vacuous. *)
  let net = Net.create ~correct:[] ~byzantine:[] () in
  Net.join_correct net (id 1) 0;
  Alcotest.(check bool)
    "queued correct join runs" true
    (Net.run ~max_rounds:50 net <> `No_correct_nodes)

(* ----- clock shim ----- *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ms ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ms () in
    Alcotest.(check bool) "now_ms non-decreasing" true (t >= !prev);
    prev := t
  done;
  Alcotest.(check bool)
    "elapsed_ms clamps to >= 0" true
    (Clock.elapsed_ms ~since:(!prev +. 1e9) >= 0.)

let suite =
  ( "delivery",
    [
      Alcotest.test_case "differential: randomized traffic" `Quick
        test_differential_random;
      Alcotest.test_case "differential: adversarial dedup cases" `Quick
        test_differential_adversarial;
      Alcotest.test_case "inbox ordering" `Quick test_inbox_order;
      Alcotest.test_case "arena: reused state matches reference" `Quick
        test_arena_state_reuse;
      Alcotest.test_case "engine equivalence: full consensus run" `Quick
        test_engine_equivalence;
      Alcotest.test_case "wire accounting off: same run, silent wire" `Quick
        test_wire_accounting_off;
      Alcotest.test_case "trace determinism across cores (with faults)" `Quick
        test_trace_determinism;
      Alcotest.test_case "run on zero-correct network" `Quick
        test_no_correct_nodes;
      Alcotest.test_case "queued correct join is not vacuous" `Quick
        test_queued_join_still_runs;
      Alcotest.test_case "clock shim is monotonic" `Quick test_clock_monotonic;
    ]
    @ Helpers.qcheck_cases [ prop_arena_differential ] )
