(** Chaos harness: seeded schedules, envelope arithmetic, row
    aggregation, and one small end-to-end sweep — within-envelope runs
    green, the over-budget blackout end degrading with a report. *)

open Ubpa_util
open Ubpa_harness
open Ubpa_scenarios
open Helpers
module F = Ubpa_faults

let ids = Node_id.scatter ~seed:3L 10

let test_schedule_deterministic () =
  let mk () = Chaos.schedule ~seed:42L ~correct_ids:ids ~budget:3 () in
  let a = mk () and b = mk () in
  Alcotest.(check (list node_id)) "same victims" a.Chaos.victims b.Chaos.victims;
  Alcotest.(check string)
    "same plan"
    (Fmt.str "%a" F.pp a.Chaos.plan)
    (Fmt.str "%a" F.pp b.Chaos.plan);
  check_int "budget kept" 3 a.Chaos.budget;
  check_int "one victim per budget unit" 3 (List.length a.Chaos.victims)

let test_budget_capped () =
  let s = Chaos.schedule ~seed:1L ~correct_ids:ids ~budget:99 () in
  check_int "budget capped at population" (List.length ids) s.Chaos.budget

let test_blackout_style () =
  let s =
    Chaos.schedule ~style:`Crash_blackout ~seed:7L ~correct_ids:ids ~budget:4 ()
  in
  List.iter
    (fun v ->
      check_true "every victim crashed from round 2"
        (F.status s.Chaos.plan ~node:v ~round:2 = `Crashed))
    s.Chaos.victims

let test_within_envelope () =
  let benign = Chaos.schedule ~seed:5L ~correct_ids:ids ~budget:2 () in
  (* n = 11, f = 3: two benign victims plus one Byzantine fit. *)
  check_true "2 benign + 1 byz within f=3"
    (Chaos.within_envelope benign ~n:11 ~byz:1);
  check_false "3 benign + 1 byz exceed f=3"
    (Chaos.within_envelope
       (Chaos.schedule ~seed:5L ~correct_ids:ids ~budget:3 ())
       ~n:11 ~byz:1);
  check_false "global loss leaves the envelope at any budget"
    (Chaos.within_envelope
       (Chaos.schedule ~loss:0.1 ~seed:5L ~correct_ids:ids ~budget:0 ())
       ~n:11 ~byz:1)

let test_row_aggregation () =
  let v round =
    Some { Ubpa_monitor.invariant = "agreement"; round; node = None; detail = "" }
  in
  let r =
    Chaos.row ~protocol:"p" ~budget:2 ~byz:1 ~n:11 ~within:true
      [ None; v 6; None; v 9 ]
  in
  check_int "runs" 4 r.Chaos.runs;
  check_int "green" 2 r.Chaos.green;
  check_int "violated" 2 r.Chaos.violated;
  check_int "reported equals violated" r.Chaos.violated r.Chaos.reported;
  Alcotest.(check string) "sample names the first" "agreement@r6" r.Chaos.sample

let test_max_green_budget () =
  let row budget violated =
    {
      Chaos.protocol = "p";
      budget;
      byz = 1;
      n = 11;
      within = violated = 0;
      runs = 2;
      green = 2 - violated;
      violated;
      reported = violated;
      sample = "-";
    }
  in
  let rows = [ row 0 0; row 2 0; row 1 0; row 3 1; row 5 0 ] in
  check_true "stops at the first degraded budget"
    (Chaos.max_green_budget ~rows ~protocol:"p" = Some 2);
  check_true "unknown protocol has no green budget"
    (Chaos.max_green_budget ~rows ~protocol:"q" = None)

(* ----- a small end-to-end sweep ----- *)

let test_sweep_end_to_end () =
  let rows, records =
    Chaos_runs.sweep ~protocols:[ "consensus" ] ~budgets:[ 0; 5 ]
      ~seeds_per_budget:2 ~base_seed:1L ()
  in
  check_int "one row per budget" 2 (List.length rows);
  check_int "one record per run" 4 (List.length records);
  let at b = List.find (fun r -> r.Chaos.budget = b) rows in
  let benign = at 0 and blackout = at 5 in
  check_true "budget 0 is within the envelope" benign.Chaos.within;
  check_int "budget 0 stays green" 0 benign.Chaos.violated;
  check_false "budget 5 leaves the envelope" blackout.Chaos.within;
  check_true "blackout end degrades" (blackout.Chaos.violated >= 1);
  check_int "every violation is reported" blackout.Chaos.violated
    blackout.Chaos.reported;
  (* the records carry the same verdicts the rows aggregate *)
  let violated_records =
    List.filter (fun r -> r.Chaos_runs.violation <> None) records
  in
  check_int "records match the table"
    (benign.Chaos.violated + blackout.Chaos.violated)
    (List.length violated_records)

let suite =
  ( "chaos",
    [
      quick "schedules are seed-deterministic" test_schedule_deterministic;
      quick "budget capped at population" test_budget_capped;
      quick "blackout crashes every victim" test_blackout_style;
      quick "envelope arithmetic" test_within_envelope;
      quick "row aggregation" test_row_aggregation;
      quick "max all-green budget" test_max_green_budget;
      slow "sweep: green inside, degrades outside" test_sweep_end_to_end;
    ] )
