(* The minimal JSON layer: encoding, parsing, round-trips. *)

open Ubpa_util
open Helpers

let check_str = Alcotest.(check string)

let sample : Json.t =
  `Assoc
    [
      ("null", `Null);
      ("bool", `Bool true);
      ("int", `Int (-42));
      ("float", `Float 1.5);
      ("string", `String "line\n\"quoted\"\tand \\ slash");
      ("list", `List [ `Int 1; `List []; `Assoc [] ]);
      ("nested", `Assoc [ ("k", `List [ `Bool false; `Null ]) ]);
    ]

let test_roundtrip () =
  List.iter
    (fun pretty ->
      let s = Json.to_string ~pretty sample in
      match Json.of_string s with
      | Ok v -> check_true "round-trip preserves the value" (v = sample)
      | Error msg -> Alcotest.fail msg)
    [ true; false ]

let test_compact_has_no_whitespace () =
  let s = Json.to_string ~pretty:false (`List [ `Int 1; `Bool true; `Null ]) in
  check_str "compact form" "[1,true,null]" s

let test_parse_literals () =
  let p s = Json.of_string_exn s in
  check_true "null" (p "null" = `Null);
  check_true "ints" (p " [1, -2, 0] " = `List [ `Int 1; `Int (-2); `Int 0 ]);
  check_true "floats are kept distinct from ints" (p "1.0" = `Float 1.0);
  check_true "exponents" (p "2e3" = `Float 2000.);
  check_true "escapes"
    (p {|"aA\n"|} = `String "aA\n");
  check_true "surrogate pair" (p {|"😀"|} = `String "\xf0\x9f\x98\x80")

let test_parse_errors () =
  let fails s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check_true "empty" (fails "");
  check_true "trailing garbage" (fails "1 x");
  check_true "unterminated string" (fails "\"abc");
  check_true "bare word" (fails "nul");
  check_true "missing colon" (fails "{\"a\" 1}");
  check_true "unclosed list" (fails "[1, 2")

let test_float_roundtrip () =
  List.iter
    (fun f ->
      let s = Json.to_string ~pretty:false (`Float f) in
      match Json.of_string_exn s with
      | `Float f' -> check_true "float round-trips exactly" (f = f')
      | `String _ -> check_true "non-finite encodes as string" (not (Float.is_finite f))
      | _ -> Alcotest.fail "unexpected shape")
    [ 0.1; 1e-12; 3.141592653589793; 1e300; 0.5 ]

let test_nonfinite () =
  let enc f = Json.to_string ~pretty:false (`Float f) in
  check_str "nan" "\"nan\"" (enc Float.nan);
  check_str "inf" "\"inf\"" (enc Float.infinity);
  check_true "to_float maps back"
    (Json.to_float (Json.of_string_exn "\"inf\"") = Some Float.infinity)

let test_accessors () =
  let j = Json.of_string_exn {|{"a": {"b": [1, 2.5, "x"]}}|} in
  let b = Option.bind (Json.member "a" j) (Json.member "b") in
  match Option.bind b Json.to_list with
  | Some [ one; two_five; x ] ->
      check_true "to_int" (Json.to_int one = Some 1);
      check_true "to_float accepts ints" (Json.to_float one = Some 1.);
      check_true "to_float" (Json.to_float two_five = Some 2.5);
      check_true "to_string_opt" (Json.to_string_opt x = Some "x");
      check_true "member misses return None" (Json.member "z" j = None)
  | _ -> Alcotest.fail "accessor chain broke"

let suite =
  ( "json",
    [
      quick "round-trip, pretty and compact" test_roundtrip;
      quick "compact form has no whitespace" test_compact_has_no_whitespace;
      quick "literal parsing" test_parse_literals;
      quick "malformed inputs are rejected" test_parse_errors;
      quick "floats round-trip exactly" test_float_roundtrip;
      quick "non-finite floats" test_nonfinite;
      quick "accessors" test_accessors;
    ] )
