(** Cross-module integration tests, including the paper's Discussion
    remarks made executable. *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba
open Helpers

(* ----- Renaming -> classic phase-king pipeline -----

   The Discussion notes that algorithms "could be compiled to work without
   the knowledge of n and f". One concrete compilation: run the id-only
   renaming first; afterwards every correct node knows a common set S —
   hence n = |S| and f = ⌊(n-1)/3⌋ — and can run any classic algorithm that
   needs the member list, here Berman-Garay-Perry phase king. *)

module Rename_net = Network.Make (Renaming)
module Pk = Ubpa_baselines.Phase_king.Make (Value.Int)
module Pk_net = Network.Make (Pk)

let test_rename_then_phase_king () =
  let ids = Node_id.scatter ~seed:81L 7 in
  let correct_ids = List.filteri (fun i _ -> i < 5) ids in
  let byz_ids = List.filteri (fun i _ -> i >= 5) ids in
  (* Stage 1: renaming in the id-only model. Byzantine nodes announce
     themselves (mirror) so they end up in S — the worst case for stage 2,
     since they will get phase-king turns. *)
  let net1 =
    Rename_net.create
      ~correct:(List.map (fun id -> (id, ())) correct_ids)
      ~byzantine:(List.map (fun id -> (id, Ubpa_adversary.Generic.mirror)) byz_ids)
      ()
  in
  (match Rename_net.run net1 with
  | `All_halted -> ()
  | `Max_rounds_reached _ -> Alcotest.fail "renaming did not terminate"
  | `No_correct_nodes -> assert false);
  let tables =
    List.map (fun (_, (o : Renaming.output)) -> o.names) (Rename_net.outputs net1)
  in
  let table = List.hd tables in
  List.iter (fun t -> check_true "common table" (t = table)) tables;
  (* Stage 2: every correct node derives (members, n, f) from the common
     table and runs the classic algorithm. *)
  let members = List.map fst table in
  let n = List.length members in
  let f = (n - 1) / 3 in
  check_true "f covers the byzantine announcers" (f >= List.length byz_ids);
  let net2 =
    Pk_net.create
      ~correct:
        (List.mapi
           (fun i id -> (id, { Pk.value = i mod 2; members; f }))
           correct_ids)
      ~byzantine:
        (List.map (fun id -> (id, Ubpa_adversary.Generic.split_mirror)) byz_ids)
      ()
  in
  (match Pk_net.run net2 with
  | `All_halted -> ()
  | `Max_rounds_reached _ -> Alcotest.fail "phase king did not terminate"
  | `No_correct_nodes -> assert false);
  match Pk_net.outputs net2 with
  | (_, first) :: rest ->
      List.iter (fun (_, v) -> check_int "phase-king agreement" first v) rest
  | [] -> Alcotest.fail "no outputs"

(* ----- Subset approximate agreement (Discussion) -----

   "Consider a set of nodes that are in approximate agreement with each
   other already and a new node joins. Then the new node can execute
   Algorithm 4 only with a subset of nodes to get closer to the value of
   most of the nodes." *)

let test_new_node_converges_via_subset () =
  (* A converged population around 42 (spread 0.5), and a newcomer holding
     a wildly different value. Sampling only 5 of the 12 estimates plus its
     own value, the midpoint rule moves the newcomer into (or towards) the
     population's neighbourhood. *)
  let population = List.init 12 (fun i -> 42.0 +. (0.04 *. float_of_int i)) in
  let subset = List.filteri (fun i _ -> i < 5) population in
  let newcomer = 1000.0 in
  match Approx_agreement.midpoint_rule (newcomer :: subset) with
  | None -> Alcotest.fail "no result"
  | Some v ->
      check_true
        (Printf.sprintf "newcomer moved from %.0f to %.2f" newcomer v)
        (v < newcomer /. 2.);
      (* One more exchange with the subset lands inside the population
         range. *)
      let v2 =
        Option.get (Approx_agreement.midpoint_rule (v :: subset))
      in
      check_true "second step lands near the population"
        (v2 >= 42.0 && v2 <= 42.5 +. (v -. 42.5) /. 2.)

(* ----- TRB on top of consensus stays consistent with direct RB ----- *)

let test_trb_agrees_with_rb_on_correct_sender () =
  let open Ubpa_scenarios in
  let rb = Scenarios.Rb.run ~n_correct:5 ~payload:"same" () in
  let trb = Scenarios.Trb_str.run ~n_correct:5 ~payload:"same" () in
  check_true "rb accepted" rb.Scenarios.Rb.all_accepted_sender_payload;
  check_true "trb agreed" trb.Scenarios.Trb_str.agreed;
  List.iter
    (fun (_, o) ->
      Alcotest.(check (option string)) "same payload" (Some "same") o)
    trb.Scenarios.Trb_str.outputs

(* ----- engine: byzantine churn ----- *)

module C = Consensus.Make (Value.Int)
module C_net = Network.Make (C)
module C_attacks = Ubpa_adversary.Consensus_attacks.Make (Value.Int)

let test_byzantine_join_and_leave_mid_run () =
  let ids = Node_id.scatter ~seed:82L 6 in
  let correct_ids = List.filteri (fun i _ -> i < 4) ids in
  let byz1 = List.nth ids 4 in
  let byz2 = List.nth ids 5 in
  let net =
    C_net.create
      ~correct:(List.mapi (fun i id -> (id, i mod 2)) correct_ids)
      ~byzantine:[ (byz1, C_attacks.split_world 0 1) ]
      ()
  in
  C_net.step_round net;
  C_net.step_round net;
  (* The adversary swaps its troops mid-run: one leaves, one joins. The
     joiner is not in anyone's member set (membership froze at round 3), so
     it must be harmless; the leaver's silence triggers substitution. *)
  C_net.remove_byzantine net byz1;
  C_net.join_byzantine net byz2 (C_attacks.stubborn 9);
  (match C_net.run net with
  | `All_halted -> ()
  | `Max_rounds_reached _ -> Alcotest.fail "did not terminate"
  | `No_correct_nodes -> assert false);
  match C_net.outputs net with
  | (_, first) :: rest ->
      List.iter (fun (_, v) -> check_int "agreement" first v) rest;
      check_int "all decided" 4 (List.length (C_net.outputs net))
  | [] -> Alcotest.fail "no outputs"

let test_engine_send_trace () =
  let trace = Trace.create () in
  let ids = Node_id.scatter ~seed:83L 3 in
  let net =
    C_net.create ~trace
      ~correct:(List.map (fun id -> (id, 1)) ids)
      ~byzantine:[] ()
  in
  let _ = C_net.run net in
  let is_send e =
    String.length e.Trace.what >= 4 && String.sub e.Trace.what 0 4 = "send"
  in
  check_true "sends recorded" (Trace.find trace ~f:is_send <> None)

let suite =
  ( "integration",
    [
      quick "renaming bootstraps a classic known-n/f algorithm"
        test_rename_then_phase_king;
      quick "subset approximate agreement pulls a newcomer in"
        test_new_node_converges_via_subset;
      quick "terminating RB consistent with plain RB" test_trb_agrees_with_rb_on_correct_sender;
      quick "byzantine join/leave mid-run" test_byzantine_join_and_leave_mid_run;
      quick "engine records message-level traces" test_engine_send_trace;
    ] )
