(** White-box tests: drive the state-machine cores by hand-crafting
    inboxes, without the network engine. *)

open Ubpa_util
open Unknown_ba
open Helpers

let id = Node_id.of_int
let a = id 100
let b = id 200
let c = id 300
let d = id 400

(* ----- Rotor_core ----- *)

let echoes_from senders candidate =
  List.map (fun s -> (s, candidate)) senders

let test_rotor_core_thresholds () =
  let r = Rotor_core.create () in
  (* 1 echo out of n_v = 4: below n_v/3 -> neither relayed nor added. *)
  let res =
    Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:(echoes_from [ b ] (id 7))
  in
  check_true "not relayed" (res.relay_echoes = []);
  check_true "not selected" (res.selected = None);
  (* 2 of 4 echoes: past n_v/3, below 2n_v/3 -> relayed, not added. *)
  let res =
    Rotor_core.rotor_round r ~self:a ~n_v:4
      ~echoes:(echoes_from [ b; c ] (id 7))
  in
  check_true "relayed" (res.relay_echoes = [ id 7 ]);
  check_true "still not in C" (Rotor_core.candidates r = []);
  (* 3 of 4: past 2n_v/3 -> added and immediately selectable. *)
  let res =
    Rotor_core.rotor_round r ~self:a ~n_v:4
      ~echoes:(echoes_from [ b; c; d ] (id 7))
  in
  check_true "added" (Rotor_core.candidates r = [ id 7 ]);
  check_true "selected" (res.selected = Some (id 7))

let test_rotor_core_duplicate_echo_senders () =
  let r = Rotor_core.create () in
  (* The same sender echoing thrice counts once. *)
  let res =
    Rotor_core.rotor_round r ~self:a ~n_v:4
      ~echoes:[ (b, id 7); (b, id 7); (b, id 7) ]
  in
  check_true "one sender is not a quorum" (Rotor_core.candidates r = []);
  check_true "not relayed either" (res.relay_echoes = [])

let test_rotor_core_round_robin_and_wrap () =
  let r = Rotor_core.create () in
  let all = echoes_from [ a; b; c; d ] in
  (* Round 0: all three candidates arrive at once. *)
  let res0 =
    Rotor_core.rotor_round r ~self:a ~n_v:4
      ~echoes:(all (id 10) @ all (id 20) @ all (id 30))
  in
  check_true "sorted C" (Rotor_core.candidates r = [ id 10; id 20; id 30 ]);
  check_true "select smallest first" (res0.selected = Some (id 10));
  let res1 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:[] in
  check_true "then second" (res1.selected = Some (id 20));
  let res2 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:[] in
  check_true "then third" (res2.selected = Some (id 30));
  let res3 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:[] in
  check_true "wrap terminates" res3.finished

let test_rotor_core_shift_repeats_instead_of_breaking () =
  let r = Rotor_core.create () in
  let all = echoes_from [ a; b; c; d ] in
  let res0 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:(all (id 20)) in
  check_true "first selection" (res0.selected = Some (id 20));
  (* A smaller candidate arrives late and shifts C: position 1 now re-hits
     20. This must repeat the turn, not terminate (r=1 < |C|=2). *)
  let res1 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:(all (id 5)) in
  check_false "no premature break" res1.finished;
  check_true "repeat of 20" (res1.selected = Some (id 20));
  (* r=2 wraps onto the never-selected newcomer 5: it still gets a turn. *)
  let res2 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:[] in
  check_false "newcomer still gets its turn" res2.finished;
  check_true "newcomer selected" (res2.selected = Some (id 5));
  (* r=3 >= |C|=2 re-hits a selected coordinator: now the break fires. *)
  let res3 = Rotor_core.rotor_round r ~self:a ~n_v:4 ~echoes:[] in
  check_true "wrap break" res3.finished

let test_rotor_core_i_am_coordinator () =
  let r = Rotor_core.create () in
  let all = echoes_from [ a; b; c; d ] in
  let res = Rotor_core.rotor_round r ~self:(id 10) ~n_v:4 ~echoes:(all (id 10)) in
  check_true "self selected" res.i_am_coordinator

(* ----- Consensus_core round schedule ----- *)

module C = Consensus_core.Make (Value.Int)

let members_inbox msg_of = List.map (fun s -> (s, msg_of s)) [ a; b; c; d ]

let test_consensus_core_schedule () =
  let core = C.create ~self:a ~input:1 in
  (* Round 1: init broadcast. *)
  let sends, st = C.step core ~inbox:[] in
  check_true "round1 init" (sends = [ (Ubpa_sim.Envelope.Broadcast, C.Init) ]);
  check_true "running" (st = C.Running);
  (* Round 2: echo every init. *)
  let sends, _ = C.step core ~inbox:(members_inbox (fun _ -> C.Init)) in
  check_int "four echoes" 4 (List.length sends);
  (* Round 3: membership fixes; input broadcast. *)
  let sends, _ = C.step core ~inbox:(members_inbox (fun s -> C.Cand_echo s)) in
  check_int "n_v fixed at 4" 4 (C.n_v core);
  check_true "input broadcast"
    (List.mem (Ubpa_sim.Envelope.Broadcast, C.Input 1) sends);
  (* Round 4: 3 of 4 inputs say 1 -> prefer 1. *)
  let sends, _ =
    C.step core
      ~inbox:
        [ (a, C.Input 1); (b, C.Input 1); (c, C.Input 1); (d, C.Input 0) ]
  in
  check_true "prefer 1" (List.mem (Ubpa_sim.Envelope.Broadcast, C.Prefer 1) sends);
  (* Round 5: unanimous prefers -> strongprefer + opinion adopted. *)
  let sends, _ = C.step core ~inbox:(members_inbox (fun _ -> C.Prefer 1)) in
  check_true "strongprefer 1"
    (List.mem (Ubpa_sim.Envelope.Broadcast, C.Strongprefer 1) sends);
  check_int "opinion 1" 1 (C.opinion core);
  (* Round 6 (rotor): strongprefer stash arrives now. *)
  let _, st = C.step core ~inbox:(members_inbox (fun _ -> C.Strongprefer 1)) in
  check_true "still running" (st = C.Running);
  (* Round 7: resolve -> decided. *)
  let _, st = C.step core ~inbox:[] in
  check_true "decided 1" (st = C.Decided 1)

let test_consensus_core_discards_non_members () =
  let core = C.create ~self:a ~input:1 in
  let _ = C.step core ~inbox:[] in
  let _ = C.step core ~inbox:(members_inbox (fun _ -> C.Init)) in
  let _ = C.step core ~inbox:(members_inbox (fun s -> C.Cand_echo s)) in
  (* Round 4: members vote 1; five strangers flood 0. Strangers must be
     discarded, so the node prefers 1. *)
  let strangers = List.init 5 (fun i -> (id (900 + i), C.Input 0)) in
  let sends, _ =
    C.step core
      ~inbox:(members_inbox (fun _ -> C.Input 1) @ strangers)
  in
  check_true "prefer 1 despite stranger flood"
    (List.mem (Ubpa_sim.Envelope.Broadcast, C.Prefer 1) sends)

let test_consensus_core_substitution_for_silent_member () =
  let core = C.create ~self:a ~input:1 in
  let _ = C.step core ~inbox:[] in
  let _ = C.step core ~inbox:(members_inbox (fun _ -> C.Init)) in
  let _ = C.step core ~inbox:(members_inbox (fun s -> C.Cand_echo s)) in
  (* Round 4: d is phase-silent (terminated). Three real inputs + d
     substituted with my own input -> 4 of 4 -> prefer. *)
  let sends, _ =
    C.step core ~inbox:[ (a, C.Input 1); (b, C.Input 1); (c, C.Input 1) ]
  in
  check_true "prefer 1 via substitution"
    (List.mem (Ubpa_sim.Envelope.Broadcast, C.Prefer 1) sends);
  (* Round 5: again d silent; my prefer is substituted for it. *)
  let sends, _ =
    C.step core ~inbox:[ (a, C.Prefer 1); (b, C.Prefer 1); (c, C.Prefer 1) ]
  in
  check_true "strongprefer 1 via substitution"
    (List.mem (Ubpa_sim.Envelope.Broadcast, C.Strongprefer 1) sends);
  (* Rotor round: stash 3 strongprefers (d silent). *)
  let _ = C.step core ~inbox:[ (a, C.Strongprefer 1); (b, C.Strongprefer 1); (c, C.Strongprefer 1) ] in
  (* Resolve: 3 + substituted = 4 >= 2n/3 -> decided. *)
  let _, st = C.step core ~inbox:[] in
  check_true "decided with a silent member" (st = C.Decided 1)

let test_consensus_core_no_substitution_for_active_member () =
  let core = C.create ~self:a ~input:1 in
  let _ = C.step core ~inbox:[] in
  let _ = C.step core ~inbox:(members_inbox (fun _ -> C.Init)) in
  let _ = C.step core ~inbox:(members_inbox (fun s -> C.Cand_echo s)) in
  (* All four members sent inputs (so nobody is phase-silent), but split
     2-2: no 2n/3 quorum, node must send nothing at position 2. *)
  let sends, _ =
    C.step core
      ~inbox:
        [ (a, C.Input 1); (b, C.Input 1); (c, C.Input 0); (d, C.Input 0) ]
  in
  check_true "no prefer on a split" (sends = []);
  (* Position 3: only a and b sent prefer; c and d are active (sent inputs)
     so NO substitution happens for them: 2 of 4 < 2n/3 but >= n/3, so the
     opinion updates without a strongprefer. *)
  let sends, _ =
    C.step core ~inbox:[ (a, C.Prefer 1); (b, C.Prefer 1) ]
  in
  check_false "no strongprefer"
    (List.exists
       (fun (_, m) -> match m with C.Strongprefer _ -> true | _ -> false)
       sends);
  check_int "opinion updated to 1" 1 (C.opinion core)

(* ----- Parallel_consensus_core ----- *)

module Pc = Parallel_consensus_core.Make (Value.Int)

let pc_members_inbox msg_of = List.map (fun s -> (s, msg_of s)) [ a; b; c; d ]

let bootstrap core =
  let _ = Pc.step core ~inbox:[] in
  let _ = Pc.step core ~inbox:(pc_members_inbox (fun _ -> Pc.Init)) in
  let _ = Pc.step core ~inbox:(pc_members_inbox (fun s -> Pc.Cand_echo s)) in
  ()

let test_pc_core_own_instance_flow () =
  let core = Pc.create ~self:a ~inputs:[ (1, 5) ] () in
  let _ = Pc.step core ~inbox:[] in
  let _ = Pc.step core ~inbox:(pc_members_inbox (fun _ -> Pc.Init)) in
  (* Round 3 = phase 1 position 1: broadcast the input pair. *)
  let sends, _ = Pc.step core ~inbox:(pc_members_inbox (fun s -> Pc.Cand_echo s)) in
  check_true "input broadcast"
    (List.mem (Ubpa_sim.Envelope.Broadcast, Pc.Inst (1, Pc.Input (Some 5))) sends);
  (* Position 2: everyone input 5 -> prefer Some 5. *)
  let sends, _ =
    Pc.step core ~inbox:(pc_members_inbox (fun _ -> Pc.Inst (1, Pc.Input (Some 5))))
  in
  check_true "prefer(5)"
    (List.mem (Ubpa_sim.Envelope.Broadcast, Pc.Inst (1, Pc.Prefer (Some 5))) sends);
  (* Position 3: unanimous prefer -> strongprefer. *)
  let sends, _ =
    Pc.step core
      ~inbox:(pc_members_inbox (fun _ -> Pc.Inst (1, Pc.Prefer (Some 5))))
  in
  check_true "strongprefer(5)"
    (List.mem
       (Ubpa_sim.Envelope.Broadcast, Pc.Inst (1, Pc.Strongprefer (Some 5)))
       sends);
  (* Position 4 (rotor) receives the strongprefer quorum. *)
  let _ =
    Pc.step core
      ~inbox:(pc_members_inbox (fun _ -> Pc.Inst (1, Pc.Strongprefer (Some 5))))
  in
  (* Position 5: resolve -> Done with the pair. *)
  let _, st = Pc.step core ~inbox:[] in
  check_true "done with (1,5)" (st = Pc.Done [ (1, 5) ])

let test_pc_core_ghost_instance_bot_suppression () =
  let core = Pc.create ~self:a ~inputs:[] () in
  bootstrap core;
  (* Position 2 of phase 1: a ghost instance arrives via a single input.
     The node discovers it and — filling ⊥ for the three silent members —
     prefers ⊥. *)
  let sends, _ = Pc.step core ~inbox:[ (d, Pc.Inst (9, Pc.Input (Some 7))) ] in
  check_true "discovered" (Pc.instances core = [ 9 ]);
  check_true "prefer bottom"
    (List.mem (Ubpa_sim.Envelope.Broadcast, Pc.Inst (9, Pc.Prefer None)) sends);
  (* Position 3: every correct node (discovered simultaneously) prefers ⊥;
     strongprefer ⊥ follows. *)
  let sends, _ =
    Pc.step core ~inbox:(pc_members_inbox (fun _ -> Pc.Inst (9, Pc.Prefer None)))
  in
  check_true "strongprefer bottom"
    (List.mem
       (Ubpa_sim.Envelope.Broadcast, Pc.Inst (9, Pc.Strongprefer None))
       sends);
  let _ =
    Pc.step core
      ~inbox:(pc_members_inbox (fun _ -> Pc.Inst (9, Pc.Strongprefer None)))
  in
  let _, st = Pc.step core ~inbox:[] in
  check_true "terminated with no output" (st = Pc.Done []);
  check_true "instance decided bottom" (Pc.decided core = [ (9, None) ])

let test_pc_core_late_instance_ignored () =
  let core = Pc.create ~self:a ~inputs:[] () in
  bootstrap core;
  (* Finish phase 1 with no instances. *)
  let _ = Pc.step core ~inbox:[] in
  let _ = Pc.step core ~inbox:[] in
  let _ = Pc.step core ~inbox:[] in
  let _, st = Pc.step core ~inbox:[ (d, Pc.Inst (5, Pc.Input (Some 3))) ] in
  (* Phase 1 position 5: discovery via Input is only legal at position 2,
     so nothing was created and the host finishes empty. *)
  check_true "no instance" (Pc.instances core = []);
  check_true "done empty" (st = Pc.Done [])

let test_pc_core_restrict_filters_senders () =
  let core =
    Pc.create
      ~restrict:(Node_id.Set.of_list [ a; b ])
      ~self:a ~inputs:[ (1, 5) ] ()
  in
  let _ = Pc.step core ~inbox:[] in
  let _ = Pc.step core ~inbox:(pc_members_inbox (fun _ -> Pc.Init)) in
  let _ = Pc.step core ~inbox:(pc_members_inbox (fun s -> Pc.Cand_echo s)) in
  (* Only a and b count towards n_v — c and d were filtered. *)
  check_int "restricted membership" 2 (List.length (Pc.members core))

let test_pc_core_duplicate_input_ids_rejected () =
  check_true "raises"
    (try
       ignore (Pc.create ~self:a ~inputs:[ (1, 5); (1, 6) ] ());
       false
     with Invalid_argument _ -> true)

let suite =
  ( "core-internals",
    [
      quick "rotor-core: n_v/3 and 2n_v/3 thresholds" test_rotor_core_thresholds;
      quick "rotor-core: duplicate echo senders collapse"
        test_rotor_core_duplicate_echo_senders;
      quick "rotor-core: round-robin then wrap" test_rotor_core_round_robin_and_wrap;
      quick "rotor-core: insertion shift repeats, never breaks early"
        test_rotor_core_shift_repeats_instead_of_breaking;
      quick "rotor-core: coordinator self-detection" test_rotor_core_i_am_coordinator;
      quick "consensus-core: exact 5-round phase schedule"
        test_consensus_core_schedule;
      quick "consensus-core: non-members are discarded"
        test_consensus_core_discards_non_members;
      quick "consensus-core: substitution for phase-silent members"
        test_consensus_core_substitution_for_silent_member;
      quick "consensus-core: no substitution for active members"
        test_consensus_core_no_substitution_for_active_member;
      quick "pc-core: own instance decides in one phase" test_pc_core_own_instance_flow;
      quick "pc-core: ghost instance converges to ⊥" test_pc_core_ghost_instance_bot_suppression;
      quick "pc-core: late discovery ignored" test_pc_core_late_instance_ignored;
      quick "pc-core: restriction filters senders" test_pc_core_restrict_filters_senders;
      quick "pc-core: duplicate instance ids rejected"
        test_pc_core_duplicate_input_ids_rejected;
    ] )
