# Convenience targets; everything is plain dune underneath.
#
# JOBS controls the sweep executor: `make bench-json JOBS=8` runs every
# experiment's cells on 8 worker domains (0 = all cores). Tables are
# byte-identical at any JOBS — PERF2 machine-checks that claim.

JOBS ?= 1

# Seed for the runtime-chaos smoke; every fault decision derives from it
# through per-edge splitmix64 streams, so reruns are byte-identical.
UBPA_SEED ?= 7

.PHONY: all build test bench bench-fast bench-csv bench-json bench-check \
	bench-only bench-baseline bench-gate scale check check-full chaos \
	runtime runtime-chaos fmt fmt-check linkcheck examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- --jobs $(JOBS)

bench-fast:
	dune exec bench/main.exe -- --fast --jobs $(JOBS)

bench-csv:
	dune exec bench/main.exe -- --csv results/ --jobs $(JOBS)

# Machine-readable artifacts: one BENCH_<exp>.json per experiment, each
# carrying the table, timing, seeds, and pass/fail paper claims.
bench-json:
	dune exec bench/main.exe -- --json results/json/ --jobs $(JOBS)

# What CI runs: fast sweeps + the self-checking claim gate.
bench-check:
	dune exec bench/main.exe -- --fast --no-timing --json results/json-fast/ \
		--jobs $(JOBS)
	dune exec bin/bench_diff.exe -- --check-claims results/json-fast/

# Selected experiments only, with the claim gate:
# `make bench-only EXP=SCALE,RT3`.
bench-only:
	dune exec bench/main.exe -- --only $(EXP) --no-timing \
		--json results/json-only/ --jobs $(JOBS)
	dune exec bin/bench_diff.exe -- --check-claims results/json-only/

# Engine v3 at scale: the full SCALE sweep — single-sender RB to
# n=10,000 and consensus to n=301 (55M deliveries) under the arena
# core, cross-core identity and flat-allocation claims gated.
# ~5 min serial; the n=10,000 cell wants several GB of RAM (per-node
# protocol state, not the delivery engine).
scale:
	dune exec bench/main.exe -- --only SCALE --no-timing \
		--json results/json-scale/ --jobs $(JOBS)
	dune exec bin/bench_diff.exe -- --check-claims results/json-scale/

# Regenerate the committed refactor-gate baseline. PERF is excluded on
# purpose: it races the two delivery cores head to head, so its timing
# cells change run to run and can never be a determinism reference.
# PERF2 is included on purpose: its digests are independent of machine,
# --jobs, and pool backend, so the baseline pins executor determinism.
# SCALE and CX2 are re-run in full mode: their committed baselines carry
# the rows that are the scaling evidence — SCALE's n=10,000 delivery
# sweep, CX2's n=3,001 per-node √n·polylog(n) budget fits (CI's
# fast-mode exact diff skips cell comparison when the fast flags differ;
# the claims still gate), while timing/alloc cells everywhere are exempt
# from the exact diff by column name (Diff.exact_exempt_columns).
bench-baseline:
	dune exec bench/main.exe -- --fast --no-timing --json bench/baseline/
	dune exec bench/main.exe -- --only SCALE --no-timing --json bench/baseline/
	dune exec bench/main.exe -- --only CX2 --no-timing --json bench/baseline/
	rm -f bench/baseline/BENCH_PERF.json

# The refactor gate CI runs: fast sweeps diffed cell-for-cell against
# the committed baseline (wall-clock metadata exempt, timing gate off).
# The baseline was produced serially, so running the gate with JOBS > 1
# doubles as the parallel-vs-serial byte-identity check.
bench-gate:
	dune exec bench/main.exe -- --fast --no-timing --json results/json-fast/ \
		--jobs $(JOBS)
	dune exec bin/bench_diff.exe -- --exact bench/baseline results/json-fast/

# Exhaustive small-model safety checking (MC1): the six calibrated cells
# through `ubpa check`'s engine, then the claim gate over the verdicts.
# CI runs this on both compiler legs; `make bench-gate` additionally
# diffs the artifact byte-for-byte against bench/baseline/BENCH_MC1.json.
check:
	dune exec bench/main.exe -- --only MC1 --fast --no-timing \
		--json results/json-mc/ --jobs $(JOBS)
	dune exec bin/bench_diff.exe -- --check-claims results/json-mc/

# Deeper, slower sweeps straight through the CLI (~4 min serial) — not
# part of any gate. `make check-full JOBS=0` uses every core for the
# frontier expansion.
check-full:
	dune exec bin/ubpa_cli.exe -- check --protocol rb -n 5 -f 1 \
		--max-rounds 3 --jobs $(JOBS) --expect verified
	dune exec bin/ubpa_cli.exe -- check --protocol consensus -n 4 -f 1 \
		--max-rounds 8 --jobs $(JOBS) --expect verified
	dune exec bin/ubpa_cli.exe -- check --protocol rb -n 4 -f 1 \
		--max-rounds 6 --jobs $(JOBS) --expect verified

# Fixed-seed chaos smoke sweep: randomized benign-fault schedules under
# the online safety monitors, per protocol and fault budget. Within the
# proven envelope every monitor must stay green; the over-budget end
# degrades with a first-violation report. See EXPERIMENTS.md (R1).
chaos:
	dune exec bin/ubpa_cli.exe -- chaos

# Networked-runtime smoke: per-node concurrent processes on both
# transports, each run gated by the lockstep-simulator oracle (the exit
# code is the verdict). Needs an OCaml 5 build; on 4.14 this fails with
# "runtime unavailable". See EXPERIMENTS.md (RT1) for the bench version.
runtime:
	dune exec bin/ubpa_cli.exe -- run --runtime domains --protocol consensus -n 5
	dune exec bin/ubpa_cli.exe -- run --runtime socket --protocol consensus -n 5
	dune exec bin/ubpa_cli.exe -- run --runtime domains --protocol rb -n 5 \
		--max-rounds 6
	dune exec bin/ubpa_cli.exe -- run --runtime socket --protocol rb -n 5 \
		--max-rounds 6

# Fault-injected runtime smoke: seeded wire faults + process crashes on
# both transports, gated on graceful degradation (delivered-schedule
# oracle, monitors, survivor agreement), plus one deliberately
# beyond-budget cell that must produce its violation. Exit codes are the
# verdict. `make runtime-chaos UBPA_SEED=9` re-rolls every fault stream.
# See EXPERIMENTS.md (RT2) for the committed-baseline version.
runtime-chaos:
	dune exec bin/ubpa_cli.exe -- run --runtime domains --protocol consensus \
		-n 5 --seed $(UBPA_SEED) --round-ms 60 --faults "crash:1@3,loss=0.05"
	dune exec bin/ubpa_cli.exe -- run --runtime socket --protocol consensus \
		-n 5 --seed $(UBPA_SEED) --round-ms 60 --faults "crash:1@3,loss=0.05"
	dune exec bin/ubpa_cli.exe -- run --runtime domains --protocol rb -n 5 \
		--seed $(UBPA_SEED) --max-rounds 6 --round-ms 60 --faults "crash:2@2"
	dune exec bin/ubpa_cli.exe -- run --runtime socket --protocol rb -n 5 \
		--seed $(UBPA_SEED) --max-rounds 6 --round-ms 60 \
		--faults "delay:1@1..4=0.5x1,dup=0.05"
	dune exec bin/ubpa_cli.exe -- run --runtime domains --protocol consensus \
		-n 4 --seed 1 --max-rounds 12 --faults "recv-omit:1@1..12=1.0" \
		--expect violation

fmt:
	dune build @fmt --auto-promote

fmt-check:
	dune build @fmt

# Dead-link gate over the repo's markdown (top level + docs/); CI runs it.
linkcheck:
	dune exec bin/md_linkcheck.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_fusion.exe
	dune exec examples/event_ordering.exe
	dune exec examples/membership_rename.exe
	dune exec examples/kv_replica.exe
	dune exec examples/clock_sync.exe

clean:
	dune clean
