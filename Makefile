# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-fast bench-csv bench-json bench-check \
	fmt fmt-check examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

bench-csv:
	dune exec bench/main.exe -- --csv results/

# Machine-readable artifacts: one BENCH_<exp>.json per experiment, each
# carrying the table, timing, seeds, and pass/fail paper claims.
bench-json:
	dune exec bench/main.exe -- --json results/json/

# What CI runs: fast sweeps + the self-checking claim gate.
bench-check:
	dune exec bench/main.exe -- --fast --no-timing --json results/json-fast/
	dune exec bin/bench_diff.exe -- --check-claims results/json-fast/

fmt:
	dune build @fmt --auto-promote

fmt-check:
	dune build @fmt

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_fusion.exe
	dune exec examples/event_ordering.exe
	dune exec examples/membership_rename.exe
	dune exec examples/kv_replica.exe
	dune exec examples/clock_sync.exe

clean:
	dune clean
