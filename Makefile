# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-fast examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

bench-csv:
	dune exec bench/main.exe -- --csv results/

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sensor_fusion.exe
	dune exec examples/event_ordering.exe
	dune exec examples/membership_rename.exe
	dune exec examples/kv_replica.exe
	dune exec examples/clock_sync.exe

clean:
	dune clean
