(* Regression gate over benchmark artifact directories.

   One directory: verify every claim in every BENCH_*.json is "pass".
   Two directories: additionally diff candidate against baseline —
   pass->fail claim flips, missing experiments, and derived metrics
   (message counts, round counts, ...) that grew beyond the threshold
   all make the exit status non-zero, which is what CI keys off. *)

open Ubpa_report

let usage =
  "bench_diff [options] DIR            check claims in one artifact dir\n\
   bench_diff [options] BASELINE CAND  diff two artifact dirs\n\n\
   exit status: 0 ok, 1 claim failure or regression, 2 usage/IO error\n"

let () =
  let check_claims_only = ref false in
  let threshold = ref 10. in
  let time_threshold = ref None in
  let exact = ref false in
  let dirs = ref [] in
  let spec =
    [
      ( "--check-claims",
        Arg.Set check_claims_only,
        " only verify claim statuses (default for a single directory)" );
      ( "--threshold",
        Arg.Set_float threshold,
        "PCT allowed relative growth per derived metric (default 10)" );
      ( "--time-threshold",
        Arg.Float (fun f -> time_threshold := Some f),
        "PCT also gate wall-clock elapsed_ms (off by default: CI timing is \
         noisy)" );
      ( "--exact",
        Arg.Set exact,
        " require candidate tables to be cell-for-cell identical to the \
         baseline (refactor gate; wall-clock metadata stays exempt)" );
    ]
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let load dir =
    match Artifact.load_dir dir with
    | Ok [] ->
        Printf.eprintf "%s: no BENCH_*.json artifacts found\n" dir;
        exit 2
    | Ok artifacts -> artifacts
    | Error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let issues =
    match List.rev !dirs with
    | [ dir ] -> Diff.check_claims (load dir)
    | [ baseline; candidate ] ->
        let baseline = load baseline and candidate = load candidate in
        if !check_claims_only then Diff.check_claims candidate
        else
          Diff.compare ~threshold:!threshold ?time_threshold:!time_threshold
            ~exact:!exact ~baseline ~candidate ()
    | _ ->
        prerr_string usage;
        exit 2
  in
  List.iter (fun i -> Format.printf "%a@." Diff.pp_issue i) issues;
  match Diff.failures issues with
  | [] ->
      print_endline "bench_diff: ok";
      exit 0
  | fs ->
      Printf.printf "bench_diff: %d failure(s)\n" (List.length fs);
      exit 1
