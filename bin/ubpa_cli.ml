(* ubpa — drive the paper's algorithms from the command line.

   Examples:
     ubpa consensus -n 10 -f 3 --adversary split-world
     ubpa rb -n 7 -f 2 --adversary equivocate
     ubpa rotor -n 13 -f 4 --adversary staggered
     ubpa aa -n 10 -f 3 --iterations 6
     ubpa parallel -n 7 -f 2 --instances 4
     ubpa rename -n 9 -f 2
     ubpa trb -n 7 -f 2 --byzantine-sender
     ubpa order --genesis 4 --rounds 8
     ubpa impossibility --mode semisync --delta 64 *)

open Cmdliner
open Ubpa_scenarios
open Ubpa_sim

let seed_t =
  let doc = "Seed for the deterministic simulation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let n_t =
  let doc = "Total number of nodes (correct + byzantine)." in
  Arg.(value & opt int 7 & info [ "n" ] ~docv:"N" ~doc)

let f_t =
  let doc = "Number of byzantine nodes (must satisfy n > 3f)." in
  Arg.(value & opt int 2 & info [ "f" ] ~docv:"F" ~doc)

let adversary_t choices =
  let doc =
    Printf.sprintf "Byzantine strategy: %s."
      (String.concat ", " (List.map fst choices))
  in
  Arg.(
    value
    & opt (enum choices) (snd (List.hd choices))
    & info [ "adversary" ] ~docv:"STRATEGY" ~doc)

let check_nf n f =
  if f < 0 || n <= 3 * f then
    Fmt.epr
      "warning: n = %d, f = %d violates n > 3f; the guarantees of the paper \
       do not apply.@."
      n f

let i64 seed = Int64.of_int seed

(* ----- consensus ----- *)

let consensus_cmd =
  let run n f seed adversary =
    check_nf n f;
    let module C = Scenarios.Consensus_int in
    let byz = List.init f (fun i -> adversary i) in
    let s =
      C.run ~seed:(i64 seed) ~byz ~n_correct:(n - f)
        ~inputs:(fun i -> i mod 2)
        ()
    in
    Fmt.pr "n=%d f=%d rounds=%d msgs=%d@." s.C.n s.C.f s.C.rounds
      s.C.delivered_msgs;
    List.iter
      (fun (id, v) -> Fmt.pr "  %a -> %d@." Ubpa_util.Node_id.pp id v)
      s.C.outputs;
    Fmt.pr "agreement=%b unanimity-validity=%b@." s.C.agreed s.C.valid;
    if not s.C.agreed then exit 1
  in
  let adversaries =
    [
      ("split-world", fun _ -> Scenarios.Consensus_int.Attacks.split_world 0 1);
      ("stubborn", fun _ -> Scenarios.Consensus_int.Attacks.stubborn 9);
      ("silent", fun _ -> Scenarios.Consensus_int.Attacks.silent_member);
      ("mirror", fun _ -> Ubpa_adversary.Generic.mirror);
      ("spam", fun _ -> Ubpa_adversary.Generic.spam);
      ("random", fun _ -> Ubpa_adversary.Generic.random_mix);
    ]
  in
  Cmd.v
    (Cmd.info "consensus" ~doc:"Early-terminating consensus (Algorithm 3)")
    Term.(const run $ n_t $ f_t $ seed_t $ adversary_t adversaries)


(* ----- binary consensus ----- *)

let binary_cmd =
  let run n f seed adversary =
    check_nf n f;
    let module B = Scenarios.Binary in
    let byz = List.init f (fun i -> adversary i) in
    let s =
      B.run ~seed:(i64 seed) ~byz ~n_correct:(n - f)
        ~inputs:(fun i -> i mod 2 = 0)
        ()
    in
    Fmt.pr "n=%d f=%d rounds=%d msgs=%d@." s.B.n s.B.f s.B.rounds
      s.B.delivered_msgs;
    List.iter
      (fun (id, v) -> Fmt.pr "  %a -> %b@." Ubpa_util.Node_id.pp id v)
      s.B.outputs;
    Fmt.pr "agreement=%b strong-validity=%b@." s.B.agreed s.B.valid;
    if not s.B.agreed then exit 1
  in
  let adversaries =
    [
      ("split-world", fun _ -> Ubpa_adversary.Bc_attacks.split_world);
      ("stubborn", fun _ -> Ubpa_adversary.Bc_attacks.stubborn true);
      ("silent", fun _ -> Ubpa_adversary.Bc_attacks.silent_member);
    ]
  in
  Cmd.v
    (Cmd.info "binary"
       ~doc:"Rotor-driven binary consensus (the paper's original algorithm)")
    Term.(const run $ n_t $ f_t $ seed_t $ adversary_t adversaries)

(* ----- reliable broadcast ----- *)

let rb_cmd =
  let run n f seed adversary =
    check_nf n f;
    let module R = Scenarios.Rb in
    let byz_sender = adversary == `Equivocate || adversary == `Partial in
    let byz =
      match adversary with
      | `Silent -> List.init f (fun _ -> Strategy.silent)
      | `Equivocate ->
          R.Attacks.equivocating_sender "m1" "m2"
          :: List.init (max 0 (f - 1)) (fun _ -> Strategy.silent)
      | `Partial ->
          R.Attacks.partial_sender "m" ~fraction:0.4
          :: List.init (max 0 (f - 1)) (fun _ -> Strategy.silent)
      | `None -> []
    in
    let s =
      R.run ~seed:(i64 seed) ~byz ~byz_sender
        ~n_correct:(n - List.length byz) ~payload:"m" ()
    in
    Fmt.pr "n=%d f=%d rounds=%d msgs=%d@." s.R.n s.R.f s.R.rounds
      s.R.delivered_msgs;
    List.iter
      (fun (id, entries) ->
        Fmt.pr "  %a accepted %d payload(s)@." Ubpa_util.Node_id.pp id
          (List.length entries))
      s.R.accepted;
    Fmt.pr "designated payload accepted everywhere=%b (rounds %d..%d)@."
      s.R.all_accepted_sender_payload s.R.min_accept_round s.R.max_accept_round
  in
  let adversaries =
    [
      ("none", `None);
      ("silent", `Silent);
      ("equivocate", `Equivocate);
      ("partial", `Partial);
    ]
  in
  Cmd.v
    (Cmd.info "rb" ~doc:"Reliable broadcast (Algorithm 1)")
    Term.(const run $ n_t $ f_t $ seed_t $ adversary_t adversaries)

(* ----- rotor ----- *)

let rotor_cmd =
  let run n f seed adversary =
    check_nf n f;
    let module R = Scenarios.Rotor_int in
    let byz =
      match adversary with
      | `Silent -> List.init f (fun _ -> Strategy.silent)
      | `Staggered ->
          List.init f (fun i ->
              R.Attacks.staggered_announcer
                ~fraction:(0.34 +. (0.07 *. float_of_int (i mod 5))))
      | `None -> []
    in
    let s = R.run ~seed:(i64 seed) ~byz ~n_correct:(n - List.length byz) () in
    Fmt.pr "n=%d f=%d rounds=%d msgs=%d terminated=%b@." s.R.n s.R.f s.R.rounds
      s.R.delivered_msgs s.R.all_terminated;
    (match s.R.outputs with
    | (_, o) :: _ ->
        Fmt.pr "coordinator schedule (first node):@.";
        List.iter
          (fun (r, c) -> Fmt.pr "  rotor round %d: %a@." r Ubpa_util.Node_id.pp c)
          o.R.P.selections
    | [] -> ());
    Fmt.pr "good round (common correct coordinator)=%b@." s.R.good_round_exists;
    if not s.R.good_round_exists then exit 1
  in
  let adversaries =
    [ ("none", `None); ("silent", `Silent); ("staggered", `Staggered) ]
  in
  Cmd.v
    (Cmd.info "rotor" ~doc:"Rotor-coordinator (Algorithm 2)")
    Term.(const run $ n_t $ f_t $ seed_t $ adversary_t adversaries)

(* ----- approximate agreement ----- *)

let aa_cmd =
  let iterations_t =
    Arg.(value & opt int 4 & info [ "iterations" ] ~docv:"K" ~doc:"Iterations.")
  in
  let run n f seed iterations adversary =
    check_nf n f;
    let module A = Scenarios.Aa in
    let byz =
      match adversary with
      | `Pull -> List.init f (fun _ -> Ubpa_adversary.Aa_attacks.pull_apart ~low:(-1e6) ~high:1e6)
      | `Outlier -> List.init f (fun _ -> Ubpa_adversary.Aa_attacks.outlier 1e9)
      | `Silent -> List.init f (fun _ -> Strategy.silent)
      | `None -> []
    in
    let s =
      A.run ~seed:(i64 seed) ~byz ~iterations ~n_correct:(n - List.length byz)
        ~inputs:(fun i -> float_of_int (10 * i))
        ()
    in
    List.iter
      (fun (id, v) -> Fmt.pr "  %a -> %.6f@." Ubpa_util.Node_id.pp id v)
      s.A.outputs;
    let ilo, ihi = s.A.input_range and olo, ohi = s.A.output_range in
    Fmt.pr "input range [%.1f, %.1f] output range [%.4f, %.4f]@." ilo ihi olo
      ohi;
    Fmt.pr "within-range=%b contraction=%.6f (bound %.6f)@." s.A.within_range
      s.A.contraction
      (0.5 ** float_of_int iterations);
    if not s.A.within_range then exit 1
  in
  let adversaries =
    [ ("none", `None); ("pull-apart", `Pull); ("outlier", `Outlier); ("silent", `Silent) ]
  in
  Cmd.v
    (Cmd.info "aa" ~doc:"Approximate agreement (Algorithm 4)")
    Term.(const run $ n_t $ f_t $ seed_t $ iterations_t $ adversary_t adversaries)

(* ----- parallel consensus ----- *)

let parallel_cmd =
  let instances_t =
    Arg.(
      value & opt int 3
      & info [ "instances" ] ~docv:"K" ~doc:"Instances per node.")
  in
  let run n f seed instances =
    check_nf n f;
    let module P = Scenarios.Parallel_int in
    let byz =
      if f = 0 then []
      else
        P.Attacks.ghost_instance ~id:999 1
        :: List.init (f - 1) (fun _ -> Strategy.silent)
    in
    let s =
      P.run ~seed:(i64 seed) ~byz ~n_correct:(n - List.length byz)
        ~inputs:(fun _ -> List.init instances (fun j -> (j, 10 * j)))
        ()
    in
    Fmt.pr "n=%d f=%d rounds=%d msgs=%d@." s.P.n s.P.f s.P.rounds
      s.P.delivered_msgs;
    (match s.P.outputs with
    | (_, pairs) :: _ ->
        List.iter (fun (id, v) -> Fmt.pr "  instance %d -> %d@." id v) pairs
    | [] -> ());
    Fmt.pr "agreement=%b (byzantine ghost instance 999 suppressed)@." s.P.agreed;
    if not s.P.agreed then exit 1
  in
  Cmd.v
    (Cmd.info "parallel" ~doc:"Parallel consensus (Algorithm 5)")
    Term.(const run $ n_t $ f_t $ seed_t $ instances_t)

(* ----- renaming ----- *)

let rename_cmd =
  let run n f seed =
    check_nf n f;
    let module R = Scenarios.Renaming_run in
    let s =
      R.run ~seed:(i64 seed)
        ~byz:(List.init f (fun _ -> Strategy.silent))
        ~n_correct:(n - f) ()
    in
    Fmt.pr "n=%d f=%d rounds=%d@." s.R.n s.R.f s.R.rounds;
    (match s.R.outputs with
    | (_, (o : Unknown_ba.Renaming.output)) :: _ ->
        List.iter
          (fun (id, rank) ->
            Fmt.pr "  %a -> name %d@." Ubpa_util.Node_id.pp id rank)
          o.names
    | [] -> ());
    Fmt.pr "consistent=%b dense=%b@." s.R.consistent s.R.names_are_dense;
    if not s.R.consistent then exit 1
  in
  Cmd.v
    (Cmd.info "rename" ~doc:"Byzantine renaming (appendix)")
    Term.(const run $ n_t $ f_t $ seed_t)

(* ----- terminating reliable broadcast ----- *)

let trb_cmd =
  let byz_sender_t =
    Arg.(
      value & flag
      & info [ "byzantine-sender" ]
          ~doc:"Make the designated sender byzantine (and silent).")
  in
  let run n f seed byz_sender =
    check_nf n f;
    let module T = Scenarios.Trb_str in
    let s =
      T.run ~seed:(i64 seed)
        ~byz:(List.init (max f (if byz_sender then 1 else 0)) (fun _ -> Strategy.silent))
        ~byz_sender ~n_correct:(n - max f (if byz_sender then 1 else 0))
        ~payload:"hello" ()
    in
    Fmt.pr "n=%d f=%d rounds=%d@." s.T.n s.T.f s.T.rounds;
    List.iter
      (fun (id, o) ->
        Fmt.pr "  %a -> %a@." Ubpa_util.Node_id.pp id
          Fmt.(option ~none:(any "(empty)") string)
          o)
      s.T.outputs;
    Fmt.pr "agreement=%b@." s.T.agreed;
    if not s.T.agreed then exit 1
  in
  Cmd.v
    (Cmd.info "trb" ~doc:"Terminating reliable broadcast (appendix)")
    Term.(const run $ n_t $ f_t $ seed_t $ byz_sender_t)

(* ----- total order ----- *)

let order_cmd =
  let genesis_t =
    Arg.(value & opt int 4 & info [ "genesis" ] ~docv:"G" ~doc:"Genesis nodes.")
  in
  let rounds_t =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~docv:"R" ~doc:"Rounds of event submission.")
  in
  let run seed genesis rounds =
    let module T = Scenarios.Total_order_str in
    let s =
      T.run ~seed:(i64 seed) ~n_genesis:genesis ~rounds ~events_per_round:1 ()
    in
    Fmt.pr "rounds=%d events=%d msgs=%d@." s.T.rounds s.T.events_submitted
      s.T.delivered_msgs;
    (match s.T.chains with
    | (_, (o : T.P.chain_output)) :: _ ->
        List.iteri
          (fun i (e : T.P.chain_entry) ->
            Fmt.pr "  %2d. [r%d] %s@." (i + 1) e.group e.event)
          o.chain
    | [] -> ());
    Fmt.pr "chain-prefix=%b@." s.T.prefix_consistent;
    if not s.T.prefix_consistent then exit 1
  in
  Cmd.v
    (Cmd.info "order" ~doc:"Dynamic total ordering (Algorithm 6)")
    Term.(const run $ seed_t $ genesis_t $ rounds_t)


(* ----- message-level trace ----- *)

(* Offline analyses over a parsed JSONL trace (ubpa trace --file). Each is
   a pure function of the event list, so they compose: --summarize
   --per-round --top-senders 3 prints all three reports in order. *)

let trace_summarize (events : Trace.event list) =
  let rounds = List.fold_left (fun acc (e : Trace.event) -> max acc e.round) 0 events in
  let nodes =
    List.sort_uniq compare
      (List.filter_map (fun (e : Trace.event) -> e.node) events)
  in
  let per_kind = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      let k = Trace.kind_to_string e.kind in
      Hashtbl.replace per_kind k
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_kind k)))
    events;
  Fmt.pr "%d events, rounds 1..%d, %d distinct nodes@." (List.length events)
    rounds (List.length nodes);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_kind []
  |> List.sort (fun (ka, a) (kb, b) -> compare (-a, ka) (-b, kb))
  |> List.iter (fun (k, v) -> Fmt.pr "  %-9s %d@." k v)

let trace_per_round (events : Trace.event list) =
  let rounds = List.fold_left (fun acc (e : Trace.event) -> max acc e.round) 0 events in
  Fmt.pr "%-6s %-7s %s@." "round" "events" "by kind";
  for r = 1 to rounds do
    let here = List.filter (fun (e : Trace.event) -> e.round = r) events in
    let per_kind = Hashtbl.create 8 in
    List.iter
      (fun (e : Trace.event) ->
        let k = Trace.kind_to_string e.kind in
        Hashtbl.replace per_kind k
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_kind k)))
      here;
    let breakdown =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) per_kind []
      |> List.sort compare
      |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
      |> String.concat " "
    in
    Fmt.pr "r%-5d %-7d %s@." r (List.length here) breakdown
  done

let trace_top_senders k (events : Trace.event list) =
  let per_node = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      match (e.kind, e.node) with
      | (Trace.Send | Trace.Byz_send), Some id ->
          Hashtbl.replace per_node id
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_node id))
      | _ -> ())
    events;
  let ranked =
    Hashtbl.fold (fun id v acc -> (id, v) :: acc) per_node []
    |> List.sort (fun (ia, a) (ib, b) -> compare (-a, ia) (-b, ib))
  in
  Fmt.pr "top senders (send + byz-send events):@.";
  List.iteri
    (fun i (id, v) ->
      if i < k then Fmt.pr "  %2d. %a  %d sends@." (i + 1) Ubpa_util.Node_id.pp id v)
    ranked

let trace_grep kind_str (events : Trace.event list) =
  match Trace.kind_of_string kind_str with
  | None ->
      Fmt.epr "unknown event kind %S (try: join, leave, send, byz-send, \
               output, halt, fault, engine)@."
        kind_str;
      exit 1
  | Some kind ->
      List.iter
        (fun (e : Trace.event) ->
          if e.kind = kind then
            Fmt.pr "r%03d %a %s@." e.round
              Fmt.(option ~none:(any "(engine)  ") Ubpa_util.Node_id.pp)
              e.node e.what)
        events

let trace_pp_event ppf (e : Trace.event) =
  Fmt.pf ppf "round %d %s%s: %s" e.Trace.round
    (Trace.kind_to_string e.Trace.kind)
    (match e.Trace.node with
    | None -> ""
    | Some id -> Fmt.str " %a" Ubpa_util.Node_id.pp id)
    e.Trace.what

(* ubpa trace --diff A.jsonl B.jsonl: first divergent event + per-kind
   count deltas, nonzero exit on divergence — the offline face of the
   Trace.diff_events primitive the runtime's oracle gate uses. *)
let trace_diff path_a path_b =
  let load path =
    let contents =
      try In_channel.with_open_bin path In_channel.input_all
      with Sys_error msg ->
        Fmt.epr "%s@." msg;
        exit 1
    in
    match Trace.of_jsonl contents with
    | Ok events -> events
    | Error msg ->
        Fmt.epr "%s: %s@." path msg;
        exit 1
  in
  let a = load path_a and b = load path_b in
  let d = Trace.diff_events a b in
  Fmt.pr "%s: %d event(s)@.%s: %d event(s)@." path_a d.Trace.length_a path_b
    d.Trace.length_b;
  let deltas =
    List.filter (fun (_, ca, cb) -> ca <> cb) d.Trace.kind_counts
  in
  if deltas <> [] then begin
    Fmt.pr "per-kind deltas:@.";
    List.iter
      (fun (k, ca, cb) -> Fmt.pr "  %-8s %d vs %d (%+d)@." k ca cb (cb - ca))
      deltas
  end;
  match d.Trace.first_divergence with
  | None -> Fmt.pr "traces are identical@."
  | Some (i, ea, eb) ->
      let side ppf = function
        | Some e -> trace_pp_event ppf e
        | None -> Fmt.pf ppf "(stream ended)"
      in
      Fmt.pr "first divergence at event %d:@.  A: %a@.  B: %a@." i side ea
        side eb;
      exit 1

let trace_cmd =
  let timeline_t =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:"Render an ASCII per-node round timeline instead of a live \
                event stream.")
  in
  let file_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Analyze a JSONL trace file (one event object per line, as \
             written by the bench pipeline's TRACE_CX1.jsonl) instead of \
             running a live demo.")
  in
  let summarize_t =
    Arg.(
      value & flag
      & info [ "summarize" ]
          ~doc:"With --file: print event totals, round span, and a per-kind \
                breakdown.")
  in
  let per_round_t =
    Arg.(
      value & flag
      & info [ "per-round" ]
          ~doc:"With --file: print a round-by-round event count with a \
                per-kind breakdown.")
  in
  let top_senders_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "top-senders" ] ~docv:"K"
          ~doc:"With --file: rank nodes by send events and print the top K.")
  in
  let grep_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "grep" ] ~docv:"KIND"
          ~doc:
            "With --file: print only events of this kind (join, leave, \
             send, byz-send, output, halt, fault, engine).")
  in
  let diff_t =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare two JSONL traces given as positional arguments: report \
             per-kind count deltas and the first divergent event; exit \
             nonzero on divergence.")
  in
  let files_t =
    Arg.(value & pos_all string [] & info [] ~docv:"FILE")
  in
  let run n f seed timeline file summarize per_round top_senders grep diff
      files =
    if diff then begin
      match files with
      | [ a; b ] -> trace_diff a b
      | _ ->
          Fmt.epr "ubpa trace --diff needs exactly two trace files@.";
          exit 2
    end
    else
    match file with
    | Some path ->
        (* Offline mode: no simulation, just the recorded events. *)
        let contents =
          try In_channel.with_open_bin path In_channel.input_all
          with Sys_error msg ->
            Fmt.epr "%s@." msg;
            exit 1
        in
        (match Trace.of_jsonl contents with
        | Error msg ->
            Fmt.epr "%s: %s@." path msg;
            exit 1
        | Ok events ->
            let analyses =
              List.concat
                [
                  (if summarize then [ fun () -> trace_summarize events ] else []);
                  (if per_round then [ fun () -> trace_per_round events ] else []);
                  (match top_senders with
                  | Some k -> [ (fun () -> trace_top_senders k events) ]
                  | None -> []);
                  (match grep with
                  | Some kind -> [ (fun () -> trace_grep kind events) ]
                  | None -> []);
                ]
            in
            if analyses = [] then
              (* Default view: the round timeline. *)
              Fmt.pr "%s@." (Timeline.to_string (Timeline.of_events events))
            else
              List.iteri
                (fun i analyze ->
                  if i > 0 then Fmt.pr "@.";
                  analyze ())
                analyses)
    | None ->
        check_nf n f;
        (* A small consensus run with the engine's live trace enabled: every
           send, output, and halt is printed as it happens. *)
        let module C = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int) in
        let module H = Ubpa_harness.Harness.Make (C) in
        let module A =
          Ubpa_adversary.Consensus_attacks.Make (Unknown_ba.Value.Int)
        in
        let correct_ids, byz_ids =
          Ubpa_harness.Harness.split_population ~seed:(i64 seed)
            ~n_correct:(n - f) ~n_byz:f
        in
        let correct = List.mapi (fun i id -> (id, i mod 2)) correct_ids in
        let byzantine = List.map (fun id -> (id, A.split_world 0 1)) byz_ids in
        let trace = Trace.create ~live:(not timeline) () in
        let o = H.execute ~trace ~max_rounds:200 ~correct ~byzantine () in
        let stalled =
          match o.H.finished with
          | `All_halted | `Stopped -> []
          | `Max_rounds_reached stalled ->
              Fmt.epr "did not terminate@.";
              stalled
          | `No_correct_nodes -> assert false
        in
        let m = o.H.metrics in
        if timeline then
          Fmt.pr "%s@."
            (Timeline.to_string ~stalled
               ~wire:(Metrics.wire_msgs m, Metrics.wire_bits m)
               (Timeline.of_trace trace))
        else begin
          Fmt.pr "@.%d trace events@." (List.length (Trace.events trace));
          Fmt.pr "wire: %d msgs, %d bits@." (Metrics.wire_msgs m)
            (Metrics.wire_bits m)
        end;
        Fmt.pr "decisions:@.";
        List.iter
          (fun (id, v) -> Fmt.pr "  %a -> %d@." Ubpa_util.Node_id.pp id v)
          o.H.outputs
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a small consensus with a live message-level trace or an \
             ASCII timeline, analyze a recorded JSONL trace (--file) with \
             --summarize, --per-round, --top-senders, --grep, or compare \
             two JSONL traces (--diff A.jsonl B.jsonl)")
    Term.(
      const run $ n_t $ f_t $ seed_t $ timeline_t $ file_t $ summarize_t
      $ per_round_t $ top_senders_t $ grep_t $ diff_t $ files_t)

(* ----- networked runtime ----- *)

(* ubpa run: drive the protocol over actual concurrent per-node processes
   (lib/runtime) instead of the lockstep simulator, then hold the run to
   the simulator's verdict: the recorded delivery schedule must replay
   cleanly through the indexed core, and decisions, decide rounds, trace
   events and wire accounting must match a fresh simulator run on the
   same population. Needs an OCaml 5 build; on 4.14 it fails gracefully
   with "runtime unavailable". *)
let run_cmd =
  let runtime_t =
    Arg.(
      value
      & opt (enum [ ("domains", `Domains); ("socket", `Socket) ]) `Domains
      & info [ "runtime" ] ~docv:"TRANSPORT"
          ~doc:
            "Transport backend: domains (OCaml 5 domains with in-process \
             mailboxes) or socket (Unix-domain socketpairs with \
             length-prefixed framing).")
  in
  let protocol_t =
    Arg.(
      value
      & opt (enum [ ("consensus", `Consensus); ("rb", `Rb) ]) `Consensus
      & info [ "protocol" ] ~docv:"P"
          ~doc:"Protocol to run: consensus or rb (reliable broadcast).")
  in
  let round_ms_t =
    Arg.(
      value & opt float 0.
      & info [ "round-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock round duration in milliseconds; 0 runs rounds flat \
             out.")
  in
  let max_rounds_t =
    Arg.(
      value & opt int 32
      & info [ "max-rounds" ] ~docv:"R"
          ~doc:
            "Stop after R rounds if the protocol has not halted (rb never \
             halts by design).")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the networked run's trace as JSONL to $(docv) (same \
             vocabulary as the simulator's; analyze or compare with ubpa \
             trace).")
  in
  let faults_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Inject wire/process faults: comma-separated clauses over \
             0-based node positions in the seeded population — loss=P, \
             dup=P, crash:I@R, leave:I@R, send-omit:I@A..B=P, \
             recv-omit:I@A..B=P, delay:I@A..B=PxD. Example: \
             $(b,crash:1@3,delay:2@1..4=0.5x1,loss=0.05). Switches the \
             gate from exact lockstep equivalence to graceful \
             degradation (delivered-schedule oracle, monitors, survivor \
             agreement).")
  in
  let dead_after_t =
    Arg.(
      value & opt int 2
      & info [ "dead-after" ] ~docv:"K"
          ~doc:
            "Presume a peer dead after K consecutive silent deadline \
             rounds and stop waiting on it (needs --round-ms > 0).")
  in
  let expect_t =
    Arg.(
      value
      & opt (enum [ ("ok", `Ok); ("violation", `Violation) ]) `Ok
      & info [ "expect" ] ~docv:"WHAT"
          ~doc:
            "With --faults: expected verdict. $(b,ok) (default) exits 0 \
             when every degradation check passes; $(b,violation) exits 0 \
             when at least one fails — for beyond-budget plans whose \
             whole point is the counterexample.")
  in
  let finish ~transport ~n ~rounds ~late ~frame_bytes ~wire ~checks ~events
      ~decisions ~trace_out =
    Fmt.pr "runtime=%s n=%d rounds=%d late-frames=%d frame-bytes=%d@."
      transport n rounds late frame_bytes;
    Fmt.pr "wire: %d msgs, %d bits@."
      (Ubpa_obs.Wire.messages wire)
      (Ubpa_obs.Wire.bits wire);
    Fmt.pr "oracle checks:@.";
    List.iter
      (fun (name, ok, detail) ->
        if ok then Fmt.pr "  %-13s ok@." name
        else Fmt.pr "  %-13s FAIL: %s@." name detail)
      checks;
    (match trace_out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc
              (Trace.to_jsonl (Trace.of_events events)));
        Fmt.pr "trace written to %s@." path);
    Fmt.pr "decisions:@.";
    List.iter (fun line -> Fmt.pr "  %s@." line) decisions;
    if not (List.for_all (fun (_, ok, _) -> ok) checks) then exit 1
  in
  let finish_faults ~transport ~n ~plan ~rounds ~late ~frame_bytes
      ~injected:(lost, dup, delayed) ~dead ~crashed ~survivors ~checks
      ~events ~decisions ~trace_out ~expect =
    Fmt.pr "runtime=%s n=%d rounds=%d late-frames=%d frame-bytes=%d@."
      transport n rounds late frame_bytes;
    Fmt.pr "fault plan: %a@." Ubpa_faults.pp plan;
    Fmt.pr "injected: lost=%d dup=%d delayed=%d@." lost dup delayed;
    (match crashed with
    | [] -> ()
    | _ ->
        Fmt.pr "crashed: %s@."
          (String.concat ", "
             (List.map
                (fun (id, at) ->
                  Fmt.str "%a@r%d" Ubpa_util.Node_id.pp id at)
                crashed)));
    (match dead with
    | [] -> ()
    | _ ->
        Fmt.pr "presumed dead: %s@."
          (String.concat ", "
             (List.map
                (fun (observer, peer, at) ->
                  Fmt.str "%a saw %a dead r%d" Ubpa_util.Node_id.pp observer
                    Ubpa_util.Node_id.pp peer at)
                dead)));
    Fmt.pr "survivors: %d/%d, %d decided@." (List.length survivors) n
      (List.length decisions);
    Fmt.pr "degradation checks:@.";
    List.iter
      (fun (name, ok, detail) ->
        if ok then Fmt.pr "  %-18s ok@." name
        else Fmt.pr "  %-18s FAIL: %s@." name detail)
      checks;
    (match trace_out with
    | None -> ()
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc
              (Trace.to_jsonl (Trace.of_events events)));
        Fmt.pr "trace written to %s@." path);
    Fmt.pr "decisions:@.";
    List.iter (fun line -> Fmt.pr "  %s@." line) decisions;
    let ok = List.for_all (fun (_, ok, _) -> ok) checks in
    (match (ok, expect) with
    | true, `Ok -> Fmt.pr "verdict: degraded gracefully (as expected)@."
    | false, `Violation ->
        Fmt.pr "verdict: violation (expected — plan is beyond budget)@."
    | true, `Violation ->
        Fmt.pr "verdict: NO violation, but --expect violation@."
    | false, `Ok -> Fmt.pr "verdict: VIOLATION@.");
    if ok <> (expect = `Ok) then exit 1
  in
  let run runtime protocol n seed round_ms max_rounds trace_out faults
      dead_after expect =
    let ids = Ubpa_harness.Harness.make_ids ~seed:(i64 seed) n in
    let parse_plan spec =
      match Ubpa_faults.parse_spec ~ids spec with
      | Ok plan -> plan
      | Error e ->
          Fmt.epr "error: bad --faults spec: %s@." e;
          exit 2
    in
    match protocol with
    | `Consensus -> (
        let module E =
          Ubpa_harness.Runtime_exec.Make (Scenarios.Consensus_int.P) in
        let correct = List.mapi (fun i id -> (id, i mod 2)) ids in
        match faults with
        | Some spec -> (
            let plan = parse_plan spec in
            match
              E.run_with_faults ~transport:runtime ~round_ms ~max_rounds
                ~dead_after ~faults:plan ~seed:(i64 seed) ~correct ()
            with
            | Error e ->
                Fmt.epr "error: %s@." e;
                exit 1
            | Ok fv ->
                finish_faults ~transport:fv.E.f_run.E.RT.r_transport ~n ~plan
                  ~rounds:fv.E.f_run.E.RT.r_rounds
                  ~late:fv.E.f_run.E.RT.r_late_frames
                  ~frame_bytes:fv.E.f_run.E.RT.r_frame_bytes
                  ~injected:
                    ( fv.E.f_run.E.RT.r_injected
                        .Ubpa_runtime.Transport_faulty.inj_lost,
                      fv.E.f_run.E.RT.r_injected
                        .Ubpa_runtime.Transport_faulty.inj_dup,
                      fv.E.f_run.E.RT.r_injected
                        .Ubpa_runtime.Transport_faulty.inj_delayed )
                  ~dead:fv.E.f_run.E.RT.r_dead
                  ~crashed:fv.E.f_run.E.RT.r_crashed
                  ~survivors:fv.E.f_survivors
                  ~checks:
                    (List.map
                       (fun c -> (c.E.c_name, c.E.c_ok, c.E.c_detail))
                       fv.E.f_checks)
                  ~events:fv.E.f_run.E.RT.r_events
                  ~decisions:
                    (List.filter_map
                       (fun (s : E.RT.node_summary) ->
                         Option.map
                           (fun o ->
                             Fmt.str "%a -> %d" Ubpa_util.Node_id.pp
                               s.E.RT.ns_id o)
                           s.E.RT.ns_output)
                       fv.E.f_run.E.RT.r_nodes)
                  ~trace_out ~expect)
        | None -> (
            match
              E.compare_with_sim ~transport:runtime ~round_ms ~max_rounds
                ~correct ()
            with
        | Error e ->
            Fmt.epr "error: %s@." e;
            exit 1
        | Ok v ->
            finish ~transport:v.E.v_run.E.RT.r_transport ~n
              ~rounds:v.E.v_run.E.RT.r_rounds
              ~late:v.E.v_run.E.RT.r_late_frames
              ~frame_bytes:v.E.v_run.E.RT.r_frame_bytes
              ~wire:v.E.v_run.E.RT.r_wire
              ~checks:
                (List.map
                   (fun c -> (c.E.c_name, c.E.c_ok, c.E.c_detail))
                   v.E.v_checks)
              ~events:v.E.v_run.E.RT.r_events
              ~decisions:
                (List.filter_map
                   (fun (s : E.RT.node_summary) ->
                     Option.map
                       (fun o ->
                         Fmt.str "%a -> %d" Ubpa_util.Node_id.pp s.E.RT.ns_id
                           o)
                       s.E.RT.ns_output)
                   v.E.v_run.E.RT.r_nodes)
              ~trace_out))
    | `Rb -> (
        let module E = Ubpa_harness.Runtime_exec.Make (Scenarios.Rb.P) in
        let correct =
          List.mapi
            (fun i id ->
              (id, if i = 0 then Some (Printf.sprintf "m%d" seed) else None))
            ids
        in
        (* RB outputs are cumulative accepted streams, not single
           decisions: the degradation gate's agreement relation is
           consistency — no sender accepted with two different payloads
           across two nodes. *)
        let rb_consistent (a : Scenarios.Rb.P.output)
            (b : Scenarios.Rb.P.output) =
          List.for_all
            (fun (x : Scenarios.Rb.P.accepted) ->
              List.for_all
                (fun (y : Scenarios.Rb.P.accepted) ->
                  (not
                     (Ubpa_util.Node_id.equal x.Scenarios.Rb.P.sender
                        y.Scenarios.Rb.P.sender))
                  || String.equal x.Scenarios.Rb.P.payload
                       y.Scenarios.Rb.P.payload)
                b)
            a
        in
        match faults with
        | Some spec -> (
            let plan = parse_plan spec in
            match
              E.run_with_faults ~equal_output:rb_consistent
                ~transport:runtime ~round_ms ~max_rounds ~dead_after
                ~faults:plan ~seed:(i64 seed) ~correct ()
            with
            | Error e ->
                Fmt.epr "error: %s@." e;
                exit 1
            | Ok fv ->
                finish_faults ~transport:fv.E.f_run.E.RT.r_transport ~n ~plan
                  ~rounds:fv.E.f_run.E.RT.r_rounds
                  ~late:fv.E.f_run.E.RT.r_late_frames
                  ~frame_bytes:fv.E.f_run.E.RT.r_frame_bytes
                  ~injected:
                    ( fv.E.f_run.E.RT.r_injected
                        .Ubpa_runtime.Transport_faulty.inj_lost,
                      fv.E.f_run.E.RT.r_injected
                        .Ubpa_runtime.Transport_faulty.inj_dup,
                      fv.E.f_run.E.RT.r_injected
                        .Ubpa_runtime.Transport_faulty.inj_delayed )
                  ~dead:fv.E.f_run.E.RT.r_dead
                  ~crashed:fv.E.f_run.E.RT.r_crashed
                  ~survivors:fv.E.f_survivors
                  ~checks:
                    (List.map
                       (fun c -> (c.E.c_name, c.E.c_ok, c.E.c_detail))
                       fv.E.f_checks)
                  ~events:fv.E.f_run.E.RT.r_events
                  ~decisions:
                    (List.filter_map
                       (fun (s : E.RT.node_summary) ->
                         Option.map
                           (fun acc ->
                             Fmt.str "%a accepted %d pair(s)"
                               Ubpa_util.Node_id.pp s.E.RT.ns_id
                               (List.length acc))
                           s.E.RT.ns_output)
                       fv.E.f_run.E.RT.r_nodes)
                  ~trace_out ~expect)
        | None -> (
            match
              E.compare_with_sim ~transport:runtime ~round_ms ~max_rounds
                ~correct ()
            with
            | Error e ->
                Fmt.epr "error: %s@." e;
                exit 1
            | Ok v ->
                finish ~transport:v.E.v_run.E.RT.r_transport ~n
                  ~rounds:v.E.v_run.E.RT.r_rounds
                  ~late:v.E.v_run.E.RT.r_late_frames
                  ~frame_bytes:v.E.v_run.E.RT.r_frame_bytes
                  ~wire:v.E.v_run.E.RT.r_wire
                  ~checks:
                    (List.map
                       (fun c -> (c.E.c_name, c.E.c_ok, c.E.c_detail))
                       v.E.v_checks)
                  ~events:v.E.v_run.E.RT.r_events
                  ~decisions:
                    (List.filter_map
                       (fun (s : E.RT.node_summary) ->
                         Option.map
                           (fun acc ->
                             Fmt.str "%a accepted %d pair(s)"
                               Ubpa_util.Node_id.pp s.E.RT.ns_id
                               (List.length acc))
                           s.E.RT.ns_output)
                       v.E.v_run.E.RT.r_nodes)
                  ~trace_out))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a protocol on the networked runtime (one concurrent process \
          per node behind a transport) and check trace equivalence against \
          the lockstep simulator")
    Term.(
      const run $ runtime_t $ protocol_t $ n_t $ seed_t $ round_ms_t
      $ max_rounds_t $ trace_out_t $ faults_t $ dead_after_t $ expect_t)

(* ----- chaos sweep ----- *)

let chaos_cmd =
  let protocol_t =
    let doc =
      "Protocol to sweep: all, consensus, rb, or aa (default all)."
    in
    Arg.(
      value
      & opt (enum (("all", None) :: List.map (fun p -> (p, Some p)) Chaos_runs.protocols)) None
      & info [ "protocol" ] ~docv:"PROTOCOL" ~doc)
  in
  let budgets_t =
    let doc = "Fault budgets to sweep (victims per schedule)." in
    Arg.(
      value
      & opt (list int) Chaos_runs.default_budgets
      & info [ "budgets" ] ~docv:"B1,B2,.." ~doc)
  in
  let runs_t =
    let doc = "Randomized schedules per (protocol, budget) point." in
    Arg.(
      value
      & opt int Chaos_runs.default_seeds_per_budget
      & info [ "runs" ] ~docv:"K" ~doc)
  in
  let jobs_t =
    let doc =
      "Worker domains for the sweep (0 = all cores). The rows are \
       byte-identical at any value. Defaults to the UBPA_JOBS environment \
       variable, then 1."
    in
    Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)
  in
  let run protocol budgets runs jobs seed =
    let protocols =
      match protocol with None -> Chaos_runs.protocols | Some p -> [ p ]
    in
    let rows, records =
      Chaos_runs.sweep ?jobs ~protocols ~budgets ~seeds_per_budget:runs
        ~base_seed:(i64 seed) ()
    in
    Fmt.pr "%-10s %-7s %-9s %-5s %-9s %s@." "protocol" "budget" "envelope"
      "green" "violated" "sample violation";
    List.iter
      (fun (r : Ubpa_harness.Chaos.row) ->
        Fmt.pr "%-10s %-7d %-9s %d/%-3d %-9d %s@." r.protocol r.budget
          (if r.within then "inside" else "outside")
          r.green r.runs r.violated r.sample)
      rows;
    Fmt.pr "@.first violations:@.";
    let any = ref false in
    List.iter
      (fun (rec_ : Chaos_runs.run_record) ->
        match rec_.violation with
        | None -> ()
        | Some v ->
            any := true;
            Fmt.pr "  %-10s budget=%d seed=%Ld: %a@." rec_.protocol rec_.budget
              rec_.seed Ubpa_monitor.pp_violation v)
      records;
    if not !any then Fmt.pr "  (none — every monitor green)@.";
    Fmt.pr "@.";
    List.iter
      (fun p ->
        match Ubpa_harness.Chaos.max_green_budget ~rows ~protocol:p with
        | Some b -> Fmt.pr "%-10s max all-green budget: %d@." p b
        | None -> Fmt.pr "%-10s degraded at every swept budget@." p)
      protocols
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Seeded chaos sweep: randomized benign-fault schedules under \
             online safety monitors, per fault budget")
    Term.(const run $ protocol_t $ budgets_t $ runs_t $ jobs_t $ seed_t)

(* ----- committee agreement (sub-quadratic) ----- *)

let committee_cmd =
  let n_t =
    let doc =
      "Total population (correct + byzantine). The sampled committee has \
       ceil(2*sqrt(N)) members and every other node watches \
       max(3, 2*ceil(log2 N)) of them."
    in
    Arg.(value & opt int 101 & info [ "n" ] ~docv:"N" ~doc)
  in
  let f_t =
    let doc =
      "Byzantine nodes. Defaults to N/6 — well inside the slacked \
       f <= (1-eps)n/3 regime the sampling analysis assumes (see \
       docs/SCALABILITY.md and docs/MODEL.md)."
    in
    Arg.(value & opt (some int) None & info [ "f" ] ~docv:"F" ~doc)
  in
  let workload_t =
    Arg.(
      value
      & opt (enum [ ("split", `Split); ("unanimous", `Unanimous) ]) `Split
      & info [ "workload" ] ~docv:"W"
          ~doc:"Correct inputs: $(b,split) (node i inputs i mod 2) or \
                $(b,unanimous) (every correct node inputs 7).")
  in
  let trace_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record the run's event trace and write it as JSONL to \
             $(docv); analyze it offline with ubpa trace --file (the \
             worked session in docs/SCALABILITY.md).")
  in
  let run n f seed workload adversary trace_out =
    let module C = Scenarios.Committee_int in
    let f = match f with Some f -> f | None -> n / 6 in
    check_nf n f;
    let byz = List.init f (fun i -> adversary i) in
    let inputs =
      match workload with
      | `Split -> fun i -> i mod 2
      | `Unanimous -> fun _ -> 7
    in
    let trace = Option.map (fun _ -> Trace.create ~live:false ()) trace_out in
    let s = C.run ~seed:(i64 seed) ?trace ~byz ~n_correct:(n - f) ~inputs () in
    Fmt.pr "n=%d f=%d rounds=%d delivered-msgs=%d@." s.C.n s.C.f s.C.rounds
      s.C.delivered_msgs;
    Fmt.pr "committee: k=%d sampled members (%d byzantine); q=%d attestors \
            per observer@."
      (List.length s.C.committee)
      s.C.byz_members s.C.attestor_q;
    Fmt.pr "per-node wire budget (densest node, sent+received): %d msgs, %d \
            bits@."
      s.C.max_budget_msgs s.C.max_budget_bits;
    (* The population runs into the thousands; print a decision histogram
       rather than one line per node. *)
    let tally =
      List.fold_left
        (fun acc (_, v) ->
          match List.assoc_opt v acc with
          | Some c -> (v, c + 1) :: List.remove_assoc v acc
          | None -> (v, 1) :: acc)
        [] s.C.outputs
      |> List.sort compare
    in
    Fmt.pr "decisions: %s@."
      (String.concat ", "
         (List.map (fun (v, c) -> Printf.sprintf "%d x%d" v c) tally));
    Fmt.pr "agreement=%b unanimity-validity=%b terminated=%b \
            monitors-green=%b@."
      s.C.agreed s.C.valid s.C.all_terminated s.C.monitor_green;
    (match (trace_out, trace) with
    | Some path, Some t ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc (Trace.to_jsonl t));
        Fmt.pr "trace written to %s (analyze with: ubpa trace --file %s \
                --summarize)@."
          path path
    | _ -> ());
    if not (s.C.agreed && s.C.monitor_green) then exit 1
  in
  let adversaries =
    [
      ( "mixed",
        fun i ->
          match i mod 3 with
          | 0 -> Scenarios.Committee_int.Attacks.silent_member
          | 1 -> Scenarios.Committee_int.Attacks.report_flood 99
          | _ -> Scenarios.Committee_int.Attacks.inner_split 0 1 );
      ("silent", fun _ -> Scenarios.Committee_int.Attacks.silent_member);
      ( "report-flood",
        fun _ -> Scenarios.Committee_int.Attacks.report_flood 99 );
      ( "report-equivocate",
        fun _ -> Scenarios.Committee_int.Attacks.report_equivocate 0 1 );
      ( "inner-split",
        fun _ -> Scenarios.Committee_int.Attacks.inner_split 0 1 );
    ]
  in
  Cmd.v
    (Cmd.info "committee"
       ~doc:
         "Sub-quadratic agreement by committee sampling (King-Saia style): \
          O~(sqrt N) per-node wire budget, population into the thousands \
          (see docs/SCALABILITY.md)")
    Term.(
      const run $ n_t $ f_t $ seed_t $ workload_t $ adversary_t adversaries
      $ trace_out_t)

(* ----- model checker ----- *)

let check_cmd =
  let protocol_t =
    let doc =
      "Protocol model to check: rb or consensus (committee is recognized \
       but not modeled — see docs/CHECKING.md)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("rb", `Rb); ("consensus", `Consensus); ("committee", `Committee) ])
          `Rb
      & info [ "protocol" ] ~docv:"PROTOCOL" ~doc)
  in
  let max_rounds_t =
    let doc = "Bound on explored rounds." in
    Arg.(value & opt int 5 & info [ "max-rounds" ] ~docv:"R" ~doc)
  in
  let jobs_t =
    let doc = "Worker domains for frontier expansion (OCaml 5 only)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)
  in
  let max_states_t =
    let doc = "Distinct-configuration budget per root." in
    Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~docv:"S" ~doc)
  in
  let crashes_t =
    let doc = "Crash-stop events the adversary may schedule per execution." in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"C" ~doc)
  in
  let omissions_t =
    let doc =
      "Receive-omission events the adversary may schedule per execution."
    in
    Arg.(value & opt int 0 & info [ "omissions" ] ~docv:"O" ~doc)
  in
  let no_symmetry_t =
    let doc = "Disable the clone-class symmetry reduction." in
    Arg.(value & flag & info [ "no-symmetry" ] ~doc)
  in
  let cex_t =
    let doc = "Write the minimized counterexample trace (JSONL) to $(docv)." in
    Arg.(
      value
      & opt (some string) None
      & info [ "cex" ] ~docv:"FILE" ~doc)
  in
  let expect_t =
    let doc =
      "Exit non-zero unless the verdict is $(docv) (verified or violation)."
    in
    Arg.(
      value
      & opt (some (enum [ ("verified", `Verified); ("violation", `Violation) ]))
          None
      & info [ "expect" ] ~docv:"VERDICT" ~doc)
  in
  let run protocol n f max_rounds jobs max_states crashes omissions
      no_symmetry cex_file expect seed =
    let check (module M : Ubpa_check.Model.S) =
      let module C = Ubpa_check.Checker.Make (M) in
      let r =
        C.check ~jobs ~symmetry:(not no_symmetry) ~max_states
          ~crash_budget:crashes ~omit_budget:omissions ~seed:(i64 seed) ~n ~f
          ~max_rounds ()
      in
      Fmt.pr "%s n=%d f=%d max-rounds=%d: %s@." M.name n f max_rounds
        (Ubpa_check.Checker.verdict_to_string r.verdict);
      Fmt.pr
        "  roots=%d explored=%d distinct=%d dedup-hits=%d sym-skips=%d \
         frontier-peak=%d depth=%d@."
        r.stats.roots r.stats.explored r.stats.distinct r.stats.dedup_hits
        r.stats.sym_skips r.stats.frontier_peak r.stats.depth;
      (match r.cex with
      | None -> ()
      | Some cx ->
          Fmt.pr
            "  counterexample: root=%s property=%s round=%d byz-msgs=%d \
             crashes=%d omissions=%d replayed=%b@.  %s@."
            cx.cx_root cx.cx_property cx.cx_round cx.cx_byz_msgs
            cx.cx_crashes cx.cx_omits cx.cx_replayed cx.cx_detail;
          match cex_file with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              output_string oc cx.cx_jsonl;
              close_out oc;
              Fmt.pr "  trace written to %s (replay with: ubpa trace --file \
                      %s)@." path path);
      r.verdict
    in
    let verdict =
      match protocol with
      | `Rb -> check (module Ubpa_check.Models.Rb)
      | `Consensus -> check (module Ubpa_check.Models.Consensus)
      | `Committee ->
          Fmt.epr
            "committee is not modeled by the bounded checker: its state \
             space is population-sized (the construction only makes sense \
             with n in the hundreds) and its guarantees are probabilistic \
             over the sampling seed, not exhaustive. Use `ubpa committee` \
             for seeded runs and the CX2 experiment for the gated \
             envelope — see docs/CHECKING.md and docs/SCALABILITY.md.@.";
          exit 2
    in
    match (expect, verdict) with
    | None, (Ubpa_check.Checker.Verified | Violated) -> ()
    | None, Out_of_budget -> exit 2
    | Some `Verified, Ubpa_check.Checker.Verified -> ()
    | Some `Violation, Violated -> ()
    | Some _, got ->
        Fmt.epr "expectation failed: got %s@."
          (Ubpa_check.Checker.verdict_to_string got);
        exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Bounded exhaustive safety checking of the core protocols \
             under the finite M1 adversary (see docs/CHECKING.md)")
    Term.(
      const run $ protocol_t $ n_t $ f_t $ max_rounds_t $ jobs_t
      $ max_states_t $ crashes_t $ omissions_t $ no_symmetry_t $ cex_t
      $ expect_t $ seed_t)

(* ----- impossibility ----- *)

let impossibility_cmd =
  let mode_t =
    Arg.(
      value
      & opt (enum [ ("async", `Async); ("semisync", `Semisync) ]) `Async
      & info [ "mode" ] ~docv:"MODE" ~doc:"async or semisync.")
  in
  let delta_t =
    Arg.(
      value & opt float 64.
      & info [ "delta" ] ~docv:"D" ~doc:"Delay bound for semisync mode.")
  in
  let run mode delta =
    let v =
      match mode with
      | `Async -> Ubpa_semisync.Partition.asynchronous ~size_a:3 ~size_b:3 ()
      | `Semisync ->
          Ubpa_semisync.Partition.semi_synchronous ~size_a:3 ~size_b:3 ~delta ()
    in
    Fmt.pr "partition A (inputs 1) decided: %a@."
      Fmt.(list ~sep:comma int)
      v.Ubpa_semisync.Partition.outputs_a;
    Fmt.pr "partition B (inputs 0) decided: %a@."
      Fmt.(list ~sep:comma int)
      v.Ubpa_semisync.Partition.outputs_b;
    Fmt.pr "max delay=%.1f decision times=(%.1f, %.1f)@."
      v.Ubpa_semisync.Partition.max_delay
      v.Ubpa_semisync.Partition.decision_time_a
      v.Ubpa_semisync.Partition.decision_time_b;
    Fmt.pr "disagreement=%b — agreement without knowing n and f requires \
            synchrony.@."
      v.Ubpa_semisync.Partition.disagreement
  in
  Cmd.v
    (Cmd.info "impossibility"
       ~doc:"Partition constructions of Section 'Synchrony is Necessary'")
    Term.(const run $ mode_t $ delta_t)

let () =
  let doc =
    "Byzantine agreement with unknown participants and failures (PODC 2020) \
     — simulation driver"
  in
  let info = Cmd.info "ubpa" ~version:Ubpa_util.Version.current ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            consensus_cmd;
            committee_cmd;
            binary_cmd;
            rb_cmd;
            rotor_cmd;
            aa_cmd;
            parallel_cmd;
            rename_cmd;
            trb_cmd;
            order_cmd;
            run_cmd;
            trace_cmd;
            chaos_cmd;
            check_cmd;
            impossibility_cmd;
          ]))
