(* md_linkcheck — dead-link gate for the repo's markdown.

   Scans every *.md under the given roots (default: the current directory,
   non-recursive, plus docs/) for inline links/images [text](target) and
   checks that relative targets resolve to an existing file or directory.
   External links (http/https/mailto) and pure #fragments are skipped —
   this is an offline gate, not a crawler. Exit status 1 if any link is
   dead, so CI can run it as-is.

   Usage: md_linkcheck [FILE|DIR ...] *)

let is_md name = Filename.check_suffix name ".md"

let files_of_root root =
  if Sys.is_directory root then
    Sys.readdir root |> Array.to_list |> List.sort compare
    |> List.filter is_md
    |> List.map (Filename.concat root)
  else [ root ]

(* Inline [text](target) links, one line at a time. A hand-rolled scanner
   rather than a regex: OCaml's Str is not in the dependency set and the
   grammar here is tiny. Reference-style links and autolinks are out of
   scope. *)
let links_of_line line =
  let n = String.length line in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (match String.index_from_opt line !i '[' with
    | None -> i := n
    | Some lb -> (
        match String.index_from_opt line lb ']' with
        | None -> i := n
        | Some rb ->
            if rb + 1 < n && line.[rb + 1] = '(' then (
              match String.index_from_opt line (rb + 1) ')' with
              | None -> i := n
              | Some rp ->
                  out := String.sub line (rb + 2) (rp - rb - 2) :: !out;
                  i := rp + 1)
            else i := rb + 1));
    ()
  done;
  List.rev !out

let is_external target =
  let has_prefix p =
    String.length target >= String.length p
    && String.sub target 0 (String.length p) = p
  in
  has_prefix "http://" || has_prefix "https://" || has_prefix "mailto:"

let check_file path =
  let dead = ref [] in
  In_channel.with_open_text path (fun ic ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          List.iter
            (fun target ->
              (* Drop any #fragment; an empty remainder was a pure anchor. *)
              let file_part =
                match String.index_opt target '#' with
                | Some 0 -> ""
                | Some i -> String.sub target 0 i
                | None -> target
              in
              if file_part <> "" && not (is_external file_part) then
                let resolved =
                  if Filename.is_relative file_part then
                    Filename.concat (Filename.dirname path) file_part
                  else file_part
                in
                if not (Sys.file_exists resolved) then
                  dead := (!lineno, target) :: !dead)
            (links_of_line line)
        done
      with End_of_file -> ());
  List.rev !dead

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "."; "docs" ]
    | roots -> roots
  in
  let files =
    roots
    |> List.filter (fun r ->
           Sys.file_exists r
           ||
           (Printf.eprintf "md_linkcheck: no such path %s\n" r;
            exit 2))
    |> List.concat_map files_of_root
    |> List.sort_uniq compare
  in
  let broken = ref 0 in
  List.iter
    (fun path ->
      List.iter
        (fun (line, target) ->
          incr broken;
          Printf.printf "%s:%d: dead link (%s)\n" path line target)
        (check_file path))
    files;
  Printf.printf "md_linkcheck: %d file(s), %d dead link(s)\n"
    (List.length files) !broken;
  if !broken > 0 then exit 1
