(** Model signature for the bounded checker.

    A model wraps one {!Ubpa_sim.Protocol.S} state machine with the finite
    adversary vocabulary the checker branches over (the per-arrival-round
    message {e palette}), the canonical state fingerprint driving dedup,
    and the safety properties evaluated on every reachable configuration.
    See docs/CHECKING.md for the adversary model (M1) and its limits. *)

open Ubpa_util

(** Per-node snapshot handed to properties after every round. *)
type ('i, 'o) obs = {
  ob_id : Node_id.t;
  ob_input : 'i;
  ob_halted : bool;
  ob_down : bool;  (** An enumerated crash is in effect (permanent). *)
  ob_output : 'o option;  (** Latest output, final iff [ob_halted]. *)
}

module type S = sig
  module P :
    Ubpa_sim.Protocol.S with type stimulus = Ubpa_sim.Protocol.No_stimulus.t

  val name : string

  val roots :
    correct:Node_id.t list ->
    byzantine:Node_id.t list ->
    (string * P.input list) list
  (** Named initial input assignments for the correct nodes (same order as
      [correct]). Every root is explored exhaustively; all must be safe. *)

  val palette :
    arrival:int ->
    correct:Node_id.t list ->
    byzantine:Node_id.t list ->
    P.message list
  (** Messages a Byzantine node may address to one correct recipient so
      that they {e arrive} in round [arrival]. Silence is always an
      implicit extra option; the empty list means byz nodes stay silent
      that round. Keep palettes curated: the checker is exhaustive with
      respect to this vocabulary, and branching is
      [(length + 1) ^ (byz * recipients)] per round. *)

  val copy_state : P.state -> P.state
  (** Deep copy: stepping the copy must never affect the original. *)

  val state_key : P.state -> string
  (** Canonical fingerprint. Soundness contract: equal keys imply equal
      behavior on equal future inboxes {e and} equal property verdicts. *)

  val input_key : P.input -> string
  val output_key : P.output -> string

  val recipient_symmetric : bool
  (** Declare [true] only when the protocol's dynamics are invariant
      under permuting two correct nodes with identical inputs and
      identical adversary history (no id-order-sensitive logic such as
      the rotor's candidate indexing). Enables canonical-choice-vector
      pruning across interchangeable recipients. *)

  val pinned :
    correct:Node_id.t list -> byzantine:Node_id.t list -> Node_id.t list
  (** Correct nodes referenced by name inside palette messages, roots or
      properties; never considered interchangeable by the symmetry
      reduction. *)

  val properties :
    correct:Node_id.t list ->
    byzantine:Node_id.t list ->
    (string * (round:int -> (P.input, P.output) obs list -> string option))
    list
  (** Safety properties, checked after every round on every new
      configuration; return [Some detail] to report a violation. *)
end
