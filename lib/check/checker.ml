(* Bounded, exhaustive explorer over per-round adversary choices.

   Frontier-based BFS over configurations (round, per-node protocol
   states, pending envelopes). Configurations are stored as adversary
   scripts and re-executed on expansion (protocol states are mutable, so
   a config is cheapest to materialize by replaying its script from the
   root); within one expansion the replayed simulation is branched with
   the model's [copy_state]. Expansion runs on the multicore Pool in
   strict submission order and dedup keeps first occurrences, so results
   are byte-identical at any --jobs. See docs/CHECKING.md. *)

open Ubpa_util
module Protocol = Ubpa_sim.Protocol
module Envelope = Ubpa_sim.Envelope
module Delivery = Ubpa_sim.Delivery
module Trace = Ubpa_sim.Trace

type stats = {
  roots : int;  (** root input assignments explored *)
  explored : int;  (** configurations expanded (successors generated) *)
  distinct : int;  (** distinct canonical configurations *)
  dedup_hits : int;  (** successors folded into an existing config *)
  sym_skips : int;  (** choice vectors pruned by recipient symmetry *)
  frontier_peak : int;
  depth : int;  (** deepest fully explored round *)
}

type verdict = Verified | Violated | Out_of_budget

let verdict_to_string = function
  | Verified -> "verified"
  | Violated -> "violation"
  | Out_of_budget -> "out-of-budget"

(** Protocol-agnostic counterexample summary; the replayable JSONL trace
    uses the standard {!Ubpa_sim.Trace} vocabulary. *)
type cex = {
  cx_root : string;
  cx_property : string;
  cx_detail : string;
  cx_round : int;
  cx_byz_msgs : int;  (** byz messages left after minimization *)
  cx_crashes : int;
  cx_omits : int;
  cx_jsonl : string;
  cx_replayed : bool;  (** the minimized script reproduces the violation *)
}

type result = { verdict : verdict; stats : stats; cex : cex option }

module Make (M : Model.S) = struct
  module P = M.P

  type action = {
    crash : Node_id.t option;  (** crash-stop applied before delivery *)
    omit : (Node_id.t * Node_id.t) option;
        (** receive-omission: (src, dst) deliveries dropped this round *)
    byz : (Node_id.t * Node_id.t * P.message) list;
        (** (byz, recipient, payload) unicasts sent this round, arriving
            next round — the rushing adversary's move *)
  }

  let silent_action = { crash = None; omit = None; byz = [] }

  type cnode = {
    cn_id : Node_id.t;
    cn_input : P.input;
    mutable cn_state : P.state;
    mutable cn_first_output : int option;
    mutable cn_output : P.output option;
    mutable cn_halted : int option;
    mutable cn_down : int option;
  }

  type sim = {
    nodes : cnode array;  (** correct, ascending id *)
    byz_ids : Node_id.t list;  (** ascending *)
    tr : Trace.t;
    mutable round : int;
    mutable pending : P.message Envelope.t list;  (** delivery order *)
  }

  let make_sim ?(trace = Trace.disabled) ~correct ~byzantine () =
    let correct =
      List.sort (fun (a, _) (b, _) -> Node_id.compare a b) correct
    in
    let nodes =
      Array.of_list
        (List.map
           (fun (id, input) ->
             {
               cn_id = id;
               cn_input = input;
               cn_state = P.init ~self:id ~round:1 input;
               cn_first_output = None;
               cn_output = None;
               cn_halted = None;
               cn_down = None;
             })
           correct)
    in
    {
      nodes;
      byz_ids = Node_id.sorted byzantine;
      tr = trace;
      round = 0;
      pending = [];
    }

  let copy_sim sim =
    {
      sim with
      nodes =
        Array.map
          (fun n -> { n with cn_state = M.copy_state n.cn_state })
          sim.nodes;
    }

  let active n = n.cn_halted = None && n.cn_down = None
  let active_ids sim =
    Array.to_list sim.nodes |> List.filter active |> List.map (fun n -> n.cn_id)

  (* Engine parity: halted or permanently down (checker crashes are
     crash-stop, so a down node is written off like Network.all_halted
     writes off Ubpa_faults.permanently_down victims). *)
  let all_done sim =
    Array.for_all (fun n -> n.cn_halted <> None || n.cn_down <> None) sim.nodes

  (* Engine parity: Network.stalled lists every non-halted correct node,
     ascending, including downed ones. *)
  let stalled sim =
    Array.to_list sim.nodes
    |> List.filter (fun n -> n.cn_halted = None)
    |> List.map (fun n -> n.cn_id)

  let find_node sim id =
    let rec go i =
      if i >= Array.length sim.nodes then None
      else if Node_id.equal sim.nodes.(i).cn_id id then Some sim.nodes.(i)
      else go (i + 1)
    in
    go 0

  (* One synchronous round under adversary action [a]. Mirrors
     Network.step_round for the checked fragment: fault transitions, then
     delivery (via the engine's own reference delivery core, so dedup,
     stable sender sort and broadcast-includes-sender semantics are
     inherited rather than re-implemented), then correct nodes in
     ascending id order, then the rushing adversary's scripted sends. *)
  let step sim (a : action) =
    sim.round <- sim.round + 1;
    let round = sim.round in
    let tr = sim.tr in
    if round = 1 then begin
      Array.iter
        (fun n ->
          Trace.recordf tr ~round ~node:n.cn_id ~kind:Trace.Join
            "join (correct)")
        sim.nodes;
      List.iter
        (fun id ->
          Trace.recordf tr ~round ~node:id ~kind:Trace.Join
            "join (byzantine scripted)")
        sim.byz_ids
    end;
    (match a.crash with
    | None -> ()
    | Some id -> (
        match find_node sim id with
        | Some n when active n ->
            n.cn_down <- Some round;
            Trace.recordf tr ~round ~node:id ~kind:Trace.Fault "fault: crash"
        | _ -> ()));
    let present =
      Node_id.Set.union
        (Node_id.Set.of_list (active_ids sim))
        (Node_id.Set.of_list sim.byz_ids)
    in
    let inboxes, _delivered =
      Delivery.route ~interner:None ~impl:Delivery.Naive
        ~equal:P.equal_message ~present ~envelopes:sim.pending ()
    in
    let inbox_of id =
      let inbox =
        match Node_id.Map.find_opt id inboxes with Some l -> l | None -> []
      in
      match a.omit with
      | Some (src, dst) when Node_id.equal dst id ->
          List.filter
            (fun (s, payload) ->
              if Node_id.equal s src then begin
                Trace.recordf tr ~round ~node:dst ~kind:Trace.Fault
                  "fault: recv-omission drop from %a: %a" Node_id.pp src
                  P.pp_message payload;
                false
              end
              else true)
            inbox
      | _ -> inbox
    in
    let correct_envs = ref [] in
    Array.iter
      (fun n ->
        if active n then begin
          let state, sends, status =
            P.step ~self:n.cn_id ~round ~stim:[] n.cn_state
              ~inbox:(inbox_of n.cn_id)
          in
          n.cn_state <- state;
          List.iter
            (fun (dst, payload) ->
              let env = { Envelope.src = n.cn_id; dst; payload } in
              Trace.recordf tr ~round ~node:n.cn_id ~kind:Trace.Send
                "send %a"
                (Envelope.pp P.pp_message)
                env;
              correct_envs := env :: !correct_envs)
            sends;
          match status with
          | Protocol.Continue -> ()
          | Protocol.Deliver out ->
              if n.cn_first_output = None then n.cn_first_output <- Some round;
              n.cn_output <- Some out;
              Trace.recordf tr ~round ~node:n.cn_id ~kind:Trace.Output "output"
          | Protocol.Stop out ->
              if n.cn_first_output = None then n.cn_first_output <- Some round;
              n.cn_output <- Some out;
              n.cn_halted <- Some round;
              Trace.recordf tr ~round ~node:n.cn_id ~kind:Trace.Halt "halt"
        end)
      sim.nodes;
    let byz_envs =
      List.map
        (fun (src, dst, payload) ->
          let env = { Envelope.src; dst = Envelope.To dst; payload } in
          Trace.recordf tr ~round ~node:src ~kind:Trace.Byz_send "byz-send %a"
            (Envelope.pp P.pp_message)
            env;
          env)
        a.byz
    in
    sim.pending <- List.rev !correct_envs @ byz_envs

  (* ---------------------------------------------------------------- *)
  (* Properties                                                        *)
  (* ---------------------------------------------------------------- *)

  let observations sim =
    Array.to_list sim.nodes
    |> List.map (fun n ->
           {
             Model.ob_id = n.cn_id;
             ob_input = n.cn_input;
             ob_halted = n.cn_halted <> None;
             ob_down = n.cn_down <> None;
             ob_output = n.cn_output;
           })

  let check_properties ~props sim =
    let obs = observations sim in
    List.find_map
      (fun (name, f) ->
        match f ~round:sim.round obs with
        | Some detail -> Some (name, detail)
        | None -> None)
      props

  (* ---------------------------------------------------------------- *)
  (* Canonical configuration key                                       *)
  (* ---------------------------------------------------------------- *)

  let config_key sim =
    let b = Buffer.create 256 in
    Buffer.add_string b (string_of_int sim.round);
    Array.iter
      (fun n ->
        Buffer.add_char b '|';
        Buffer.add_string b (Fmt.str "%a" Node_id.pp n.cn_id);
        (match n.cn_halted with
        | Some r -> Buffer.add_string b (Printf.sprintf "!h%d" r)
        | None -> ());
        (match n.cn_down with
        | Some r -> Buffer.add_string b (Printf.sprintf "!d%d" r)
        | None -> ());
        Buffer.add_char b ':';
        Buffer.add_string b (M.state_key n.cn_state);
        Buffer.add_char b ':';
        match n.cn_output with
        | None -> Buffer.add_char b '-'
        | Some o -> Buffer.add_string b (M.output_key o))
      sim.nodes;
    List.iter
      (fun (env : P.message Envelope.t) ->
        Buffer.add_char b '|';
        Buffer.add_string b (Fmt.str "%a" (Envelope.pp P.pp_message) env))
      sim.pending;
    Buffer.contents b

  (* ---------------------------------------------------------------- *)
  (* Scripted replay (counterexamples, differential tests, monitors)   *)
  (* ---------------------------------------------------------------- *)

  type replay_outcome = {
    finished : [ `All_halted | `Max_rounds_reached of Node_id.t list ];
    rounds : int;
    violation : (string * string * int) option;
        (** (property, detail, round) — first violation observed *)
    outputs : (Node_id.t * P.output) list;
    state_keys : (Node_id.t * string) list;
    halted : (Node_id.t * int) list;
  }

  (* Replay [actions], then keep stepping silent rounds until every node
     halted (or is written off) or [max_rounds] is reached — the same
     loop shape as Network.run. A [monitor] observes after every round
     and sees every trace event, exactly like Harness.execute wires it
     for the simulator cores. *)
  let replay ?trace ?monitor ?(max_rounds = 16) ~correct ~byzantine ~actions
      () =
    let trace =
      match (trace, monitor) with
      | Some tr, _ -> tr
      | None, Some _ -> Trace.create ()
      | None, None -> Trace.disabled
    in
    (match monitor with
    | Some m when Trace.enabled trace ->
        Trace.subscribe trace (Ubpa_monitor.observe_event m)
    | _ -> ());
    let sim = make_sim ~trace ~correct ~byzantine () in
    let props = M.properties ~correct:(List.map fst correct) ~byzantine in
    let violation = ref None in
    let observe () =
      (match monitor with
      | None -> ()
      | Some m ->
          Ubpa_monitor.observe m ~round:sim.round
            (Array.to_list sim.nodes
            |> List.map (fun n ->
                   {
                     Ubpa_monitor.node = n.cn_id;
                     joined_at = 1;
                     halted_at = n.cn_halted;
                     down = n.cn_down <> None;
                     output = n.cn_output;
                   })));
      if !violation = None then
        match check_properties ~props sim with
        | Some (prop, detail) ->
            violation := Some (prop, detail, sim.round);
            Trace.recordf trace ~round:sim.round ~kind:Trace.Engine
              "violation %s: %s" prop detail
        | None -> ()
    in
    let actions = ref actions in
    let next_action () =
      match !actions with
      | [] -> silent_action
      | a :: rest ->
          actions := rest;
          a
    in
    let rec go () =
      if all_done sim && !actions = [] then `All_halted
      else if sim.round >= max_rounds then `Max_rounds_reached (stalled sim)
      else begin
        step sim (next_action ());
        observe ();
        go ()
      end
    in
    let finished = go () in
    {
      finished;
      rounds = sim.round;
      violation = !violation;
      outputs =
        Array.to_list sim.nodes
        |> List.filter_map (fun n ->
               Option.map (fun o -> (n.cn_id, o)) n.cn_output);
      state_keys =
        Array.to_list sim.nodes
        |> List.map (fun n -> (n.cn_id, M.state_key n.cn_state));
      halted =
        Array.to_list sim.nodes
        |> List.filter_map (fun n ->
               Option.map (fun r -> (n.cn_id, r)) n.cn_halted);
    }

  (* ---------------------------------------------------------------- *)
  (* Counterexample minimization                                       *)
  (* ---------------------------------------------------------------- *)

  let byz_count actions =
    List.fold_left (fun acc a -> acc + List.length a.byz) 0 actions

  let still_violates ~correct ~byzantine ~max_rounds ~round actions =
    let o = replay ~max_rounds ~correct ~byzantine ~actions () in
    match o.violation with Some (_, _, r) -> r <= round | None -> false

  (* Greedy shrink: repeatedly try replacing one scripted byz message (or
     one crash / omission) with silence, keeping the drop whenever some
     violation still occurs no later than the original round. Quadratic
     in the (tiny) script size; deterministic. *)
  let minimize ~correct ~byzantine ~max_rounds ~round actions =
    let shrink_once actions =
      let rec try_round i =
        if i >= List.length actions then None
        else
          let a = List.nth actions i in
          let candidates =
            (match a.crash with
            | Some _ -> [ { a with crash = None } ]
            | None -> [])
            @ (match a.omit with
              | Some _ -> [ { a with omit = None } ]
              | None -> [])
            @ List.mapi
                (fun j _ ->
                  { a with byz = List.filteri (fun k _ -> k <> j) a.byz })
                a.byz
          in
          let replaced a' = List.mapi (fun k x -> if k = i then a' else x) actions in
          match
            List.find_map
              (fun a' ->
                let actions' = replaced a' in
                if still_violates ~correct ~byzantine ~max_rounds ~round actions'
                then Some actions'
                else None)
              candidates
          with
          | Some actions' -> Some actions'
          | None -> try_round (i + 1)
      in
      try_round 0
    in
    let rec fix actions =
      match shrink_once actions with Some a -> fix a | None -> actions
    in
    (* Drop trailing all-silent actions first; the violation round bounds
       the useful script length. *)
    let truncated = List.filteri (fun i _ -> i < round) actions in
    let start =
      if still_violates ~correct ~byzantine ~max_rounds ~round truncated then
        truncated
      else actions
    in
    fix start

  (* ---------------------------------------------------------------- *)
  (* Exhaustive check                                                  *)
  (* ---------------------------------------------------------------- *)

  type vec = (Node_id.t * Node_id.t * P.message) list

  (* The frontier holds sibling GROUPS, not single configurations: all
     configs sharing the script [gr_prefix] plus round-[k] benign action
     [gr_benign] and differing only in the round-[k] byz vector (one
     entry of [gr_vectors]). Siblings have identical protocol states —
     byz sends only extend [pending] — so one replay serves the whole
     group and the per-config marginal cost drops to copy + step + key.
     [gr_benign = None] only for the root (round 0, no action yet). *)
  type group = {
    gr_prefix : action list;  (** newest first; rounds 1..k-1 *)
    gr_benign : action option;  (** round k's benign action, [byz = []] *)
    gr_vectors : vec list;
    gr_crashes : int;  (** crash events used through round k *)
    gr_omits : int;
  }

  type succ =
    | S_violation of { property : string; detail : string; round : int;
                       script : action list (* newest first *) }
    | S_brood of {
        b_prefix : action list;
            (** the parent config's full script, newest first *)
        b_benign : action;  (** round k+1 benign action, [byz = []] *)
        b_keyed : (string * vec) list;
            (** canonical key per candidate round-k+1 byz vector *)
        b_terminal : bool;
        b_round : int;
        b_crashes : int;
        b_omits : int;
      }

  (* Choice-vector enumeration for the scripted byz sends of one round.
     Each recipient gets a {e column}: one palette option (or silence) per
     byz sender. Permuting two interchangeable recipients permutes their
     whole columns simultaneously across every sender, so the sound
     canonical form under [symmetry] requires columns to be
     lexicographically non-decreasing within a clone class (identical
     input and identical adversary history, neither pinned) — per-sender
     sorting alone would prune both representatives of some orbits when
     several byz senders are in play. *)
  let byz_vectors ~symmetry ~palette ~byz ~recipients ~clone_class =
    let opts = Array.of_list palette in
    let n_opts = 1 + Array.length opts in
    let byz = Array.of_list byz in
    let nb = Array.length byz in
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    let n_cols = pow n_opts nb in
    (* column [c] decoded most-significant-first, so numeric order on the
       index IS lex order on the decoded option arrays *)
    let columns =
      Array.init n_cols (fun c ->
          let a = Array.make nb 0 in
          let c = ref c in
          for i = nb - 1 downto 0 do
            a.(i) <- !c mod n_opts;
            c := !c / n_opts
          done;
          a)
    in
    let tagged =
      List.map
        (fun r -> (r, if symmetry then clone_class r else None))
        recipients
    in
    (* group equal classes adjacently (stable, so ascending id within) *)
    let tagged =
      List.stable_sort
        (fun (_, a) (_, b) ->
          match (a, b) with
          | Some x, Some y -> String.compare x y
          | Some _, None -> -1
          | None, Some _ -> 1
          | None, None -> 0)
        tagged
    in
    let total = pow n_cols (List.length tagged) in
    (* key fragments per (recipient, byz, option), so the hot leaf path
       below never formats — it only sorts and concatenates *)
    let frag =
      List.map
        (fun (r, _) ->
          ( r,
            Array.init nb (fun i ->
                Array.init (n_opts - 1) (fun o ->
                    Fmt.str "|%a->%a:%a" Node_id.pp byz.(i) Node_id.pp r
                      P.pp_message opts.(o))) ))
        tagged
    in
    let vectors = ref [] and emitted = ref 0 in
    let rec go tagged frag prev acc =
      match (tagged, frag) with
      | [], _ ->
          incr emitted;
          let entries =
            List.sort
              (fun (s1, d1, _, _) (s2, d2, _, _) ->
                match Node_id.compare s1 s2 with
                | 0 -> Node_id.compare d1 d2
                | c -> c)
              acc
          in
          let vec = List.map (fun (s, d, m, _) -> (s, d, m)) entries in
          let suffix =
            String.concat "" (List.map (fun (_, _, _, f) -> f) entries)
          in
          vectors := (vec, suffix) :: !vectors
      | (r, cls) :: rest, (_, fr) :: frest ->
          let floor_ =
            match (prev, cls) with
            | Some (pc, pcol), Some c when String.equal pc c -> pcol
            | _ -> 0
          in
          for c = floor_ to n_cols - 1 do
            let col = columns.(c) in
            let acc' = ref acc in
            for i = 0 to nb - 1 do
              if col.(i) > 0 then
                acc' :=
                  (byz.(i), r, opts.(col.(i) - 1), fr.(i).(col.(i) - 1))
                  :: !acc'
            done;
            go rest frest
              (match cls with Some cl -> Some (cl, c) | None -> None)
              !acc'
          done
      | _ -> assert false
    in
    go tagged frag None [];
    (List.rev !vectors, total - !emitted)

  (* Clone classes for the symmetry reduction: a recipient's class string
     is its input plus everything the adversary ever did to it
     specifically (scripted unicasts, omissions); crashed nodes are not
     recipients. Correct traffic is broadcast, so equal class strings
     mean the nodes are indistinguishable clones. *)
  let clone_classes ~pinned ~inputs script_oldest =
    fun id ->
      if List.exists (Node_id.equal id) pinned then None
      else
        let b = Buffer.create 64 in
        (match List.assoc_opt id inputs with
        | Some i -> Buffer.add_string b (M.input_key i)
        | None -> Buffer.add_char b '?');
        List.iteri
          (fun i (a : action) ->
            let mine =
              List.filter_map
                (fun (src, dst, m) ->
                  if Node_id.equal dst id then
                    Some (Fmt.str "%a>%a" Node_id.pp src P.pp_message m)
                  else None)
                a.byz
              |> List.sort String.compare
            in
            if mine <> [] then
              Buffer.add_string b
                (Printf.sprintf "|%d:%s" i (String.concat ";" mine));
            match a.omit with
            | Some (src, dst) when Node_id.equal dst id ->
                Buffer.add_string b
                  (Fmt.str "|%d:om<%a" i Node_id.pp src)
            | _ -> ())
          script_oldest;
        Some (Buffer.contents b)

  type root_outcome =
    | R_verified of stats
    | R_violated of stats * cex
    | R_budget of stats

  let run_root ?jobs ~symmetry ~max_rounds ~max_states ~crash_budget
      ~omit_budget ~correct ~byzantine (root_label, inputs) =
    let correct_inputs = List.combine correct inputs in
    let props = M.properties ~correct ~byzantine in
    let pinned = M.pinned ~correct ~byzantine in
    let explored = ref 0 and dedup_hits = ref 0 and sym_skips = ref 0 in
    let frontier_peak = ref 0 and depth = ref 0 in
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
    let replay_script script_newest =
      let sim = make_sim ~correct:correct_inputs ~byzantine () in
      List.iter (step sim) (List.rev script_newest);
      sim
    in
    (* Expand one sibling group: replay the shared prefix once, take the
       shared benign step, then per sibling vector attach the byz
       envelopes, branch over the next round's benign events, step the
       copy, check properties and enumerate the next canonical byz
       vectors. Pure: safe on the Pool. *)
    let expand g =
      let base = replay_script g.gr_prefix in
      (match g.gr_benign with None -> () | Some b -> step base b);
      let benign' =
        let crashes =
          if g.gr_crashes < crash_budget then
            None :: List.map (fun id -> Some id) (active_ids base)
          else [ None ]
        in
        let omits =
          if g.gr_omits < omit_budget then
            let dsts = active_ids base in
            let srcs =
              List.map (fun n -> n.cn_id) (Array.to_list base.nodes)
              @ base.byz_ids
            in
            None
            :: List.concat_map
                 (fun src ->
                   List.filter_map
                     (fun dst ->
                       if Node_id.equal src dst then None
                       else Some (Some (src, dst)))
                     dsts)
                 (Node_id.sorted srcs)
          else [ None ]
        in
        List.concat_map (fun c -> List.map (fun o -> (c, o)) omits) crashes
      in
      let succs = ref [] and skips = ref 0 in
      List.iter
        (fun w ->
          let parent_script =
            match g.gr_benign with
            | None -> []
            | Some b -> { b with byz = w } :: g.gr_prefix
          in
          let byz_envs =
            List.map
              (fun (src, dst, payload) ->
                { Envelope.src; dst = Envelope.To dst; payload })
              w
          in
          List.iter
            (fun (crash, omit) ->
              let sim' = copy_sim base in
              sim'.pending <- sim'.pending @ byz_envs;
              step sim' { crash; omit; byz = [] };
              let action' = { crash; omit; byz = [] } in
              match check_properties ~props sim' with
              | Some (property, detail) ->
                  succs :=
                    S_violation
                      {
                        property;
                        detail;
                        round = sim'.round;
                        script = action' :: parent_script;
                      }
                    :: !succs
              | None ->
                  let terminal = all_done sim' in
                  let vectors, skipped =
                    if terminal || sim'.round >= max_rounds then
                      ([ ([], "") ], 0)
                    else
                      let palette =
                        M.palette ~arrival:(sim'.round + 1) ~correct
                          ~byzantine
                      in
                      if palette = [] || byzantine = [] then ([ ([], "") ], 0)
                      else
                        byz_vectors
                          ~symmetry:(symmetry && M.recipient_symmetric)
                          ~palette ~byz:base.byz_ids
                          ~recipients:(active_ids sim')
                          ~clone_class:
                            (clone_classes ~pinned ~inputs:correct_inputs
                               (List.rev (action' :: parent_script)))
                  in
                  skips := !skips + skipped;
                  let base_key = config_key sim' in
                  let b_keyed =
                    List.map
                      (fun (vec, suffix) -> (base_key ^ suffix, vec))
                      vectors
                  in
                  succs :=
                    S_brood
                      {
                        b_prefix = parent_script;
                        b_benign = action';
                        b_keyed;
                        b_terminal = terminal;
                        b_round = sim'.round;
                        b_crashes =
                          (g.gr_crashes + if crash <> None then 1 else 0);
                        b_omits =
                          (g.gr_omits + if omit <> None then 1 else 0);
                      }
                    :: !succs)
            benign')
        g.gr_vectors;
      (List.rev !succs, !skips)
    in
    let stats () =
      {
        roots = 1;
        explored = !explored;
        distinct = Hashtbl.length seen;
        dedup_hits = !dedup_hits;
        sym_skips = !sym_skips;
        frontier_peak = !frontier_peak;
        depth = !depth;
      }
    in
    let finish_violation (property, detail, round, script_newest) =
      let actions0 = List.rev script_newest in
      let actions =
        minimize ~correct:correct_inputs ~byzantine ~max_rounds ~round actions0
      in
      let tr = Trace.create () in
      let o =
        replay ~trace:tr ~max_rounds:round ~correct:correct_inputs ~byzantine
          ~actions ()
      in
      let replayed =
        match o.violation with Some (p, _, r) -> r <= round && p <> "" | None -> false
      in
      let property, detail =
        match o.violation with Some (p, d, _) -> (p, d) | None -> (property, detail)
      in
      R_violated
        ( stats (),
          {
            cx_root = root_label;
            cx_property = property;
            cx_detail = detail;
            cx_round = round;
            cx_byz_msgs = byz_count actions;
            cx_crashes =
              List.length (List.filter (fun a -> a.crash <> None) actions);
            cx_omits =
              List.length (List.filter (fun a -> a.omit <> None) actions);
            cx_jsonl = Trace.to_jsonl tr;
            cx_replayed = replayed;
          } )
    in
    let root_sim = make_sim ~correct:correct_inputs ~byzantine () in
    Hashtbl.add seen (config_key root_sim) ();
    let frontier =
      ref
        [
          {
            gr_prefix = [];
            gr_benign = None;
            gr_vectors = [ [] ];
            gr_crashes = 0;
            gr_omits = 0;
          };
        ]
    in
    let result = ref None in
    while !result = None && !frontier <> [] do
      let configs =
        List.fold_left (fun acc g -> acc + List.length g.gr_vectors) 0 !frontier
      in
      frontier_peak := max !frontier_peak configs;
      let expansions = Ubpa_harness.Pool.map ?jobs expand !frontier in
      explored := !explored + configs;
      let next = ref [] in
      (try
         List.iter
           (fun (succs, skips) ->
             sym_skips := !sym_skips + skips;
             List.iter
               (fun succ ->
                 match succ with
                 | S_violation { property; detail; round; script } ->
                     result :=
                       Some
                         (finish_violation (property, detail, round, script));
                     raise Exit
                 | S_brood
                     {
                       b_prefix;
                       b_benign;
                       b_keyed;
                       b_terminal;
                       b_round;
                       b_crashes;
                       b_omits;
                     } ->
                     let surviving =
                       List.filter_map
                         (fun (key, w) ->
                           if Hashtbl.mem seen key then begin
                             incr dedup_hits;
                             None
                           end
                           else begin
                             Hashtbl.add seen key ();
                             if Hashtbl.length seen > max_states then begin
                               result := Some (R_budget (stats ()));
                               raise Exit
                             end;
                             Some w
                           end)
                         b_keyed
                     in
                     if surviving <> [] then begin
                       depth := max !depth b_round;
                       if (not b_terminal) && b_round < max_rounds then
                         next :=
                           {
                             gr_prefix = b_prefix;
                             gr_benign = Some b_benign;
                             gr_vectors = surviving;
                             gr_crashes = b_crashes;
                             gr_omits = b_omits;
                           }
                           :: !next
                     end)
               succs)
           expansions
       with Exit -> ());
      frontier := List.rev !next
    done;
    match !result with
    | Some r -> r
    | None -> R_verified (stats ())

  let add_stats a b =
    {
      roots = a.roots + b.roots;
      explored = a.explored + b.explored;
      distinct = a.distinct + b.distinct;
      dedup_hits = a.dedup_hits + b.dedup_hits;
      sym_skips = a.sym_skips + b.sym_skips;
      frontier_peak = max a.frontier_peak b.frontier_peak;
      depth = max a.depth b.depth;
    }

  let check ?jobs ?(symmetry = true) ?(max_states = 1_000_000)
      ?(crash_budget = 0) ?(omit_budget = 0) ?(seed = 7L) ~n ~f ~max_rounds ()
      =
    if f < 0 || f >= n then invalid_arg "Checker.check: need 0 <= f < n";
    let correct, byzantine =
      Ubpa_harness.Harness.split_population ~seed ~n_correct:(n - f) ~n_byz:f
    in
    let zero =
      {
        roots = 0;
        explored = 0;
        distinct = 0;
        dedup_hits = 0;
        sym_skips = 0;
        frontier_peak = 0;
        depth = 0;
      }
    in
    let rec go acc_stats = function
      | [] -> { verdict = Verified; stats = acc_stats; cex = None }
      | root :: rest -> (
          match
            run_root ?jobs ~symmetry ~max_rounds ~max_states ~crash_budget
              ~omit_budget ~correct ~byzantine root
          with
          | R_verified s -> go (add_stats acc_stats s) rest
          | R_violated (s, cex) ->
              {
                verdict = Violated;
                stats = add_stats acc_stats s;
                cex = Some cex;
              }
          | R_budget s ->
              { verdict = Out_of_budget; stats = add_stats acc_stats s; cex = None })
    in
    go zero (M.roots ~correct ~byzantine)

  let population ~seed ~n ~f =
    Ubpa_harness.Harness.split_population ~seed ~n_correct:(n - f) ~n_byz:f
end
