(** Bounded exhaustive safety checker.

    Explores {e every} execution of a protocol under the finite adversary
    model M1 (docs/CHECKING.md): scripted per-round Byzantine unicasts
    drawn from the model's palette, plus optional crash-stop and
    receive-omission budgets. The search is a frontier BFS over canonical
    configurations with state-hash dedup and an optional clone-class
    symmetry reduction; frontier expansion runs on the multicore
    {!Ubpa_harness.Pool} with submission-order merge, so verdicts, stats
    and counterexamples are byte-identical at any [jobs]. On violation the
    script is greedily minimized and re-executed under a live
    {!Ubpa_sim.Trace}, yielding a standard JSONL trace that [ubpa trace]
    can pretty-print and tests can replay. *)

open Ubpa_util

type stats = {
  roots : int;  (** root input assignments explored *)
  explored : int;  (** configurations expanded (successors generated) *)
  distinct : int;  (** distinct canonical configurations *)
  dedup_hits : int;  (** successors folded into an existing config *)
  sym_skips : int;  (** choice vectors pruned by recipient symmetry *)
  frontier_peak : int;
  depth : int;  (** deepest fully explored round *)
}

type verdict =
  | Verified  (** Every reachable configuration satisfies every property. *)
  | Violated
  | Out_of_budget  (** [max_states] hit; nothing proved. *)

val verdict_to_string : verdict -> string

type cex = {
  cx_root : string;  (** name of the violating input assignment *)
  cx_property : string;
  cx_detail : string;
  cx_round : int;
  cx_byz_msgs : int;  (** byz messages left after minimization *)
  cx_crashes : int;
  cx_omits : int;
  cx_jsonl : string;  (** replayable {!Ubpa_sim.Trace} JSONL *)
  cx_replayed : bool;  (** the minimized script reproduces the violation *)
}

type result = { verdict : verdict; stats : stats; cex : cex option }

module Make (M : Model.S) : sig
  (** Adversary choices for one round. *)
  type action = {
    crash : Node_id.t option;  (** crash-stop applied before delivery *)
    omit : (Node_id.t * Node_id.t) option;
        (** receive-omission: (src, dst) deliveries dropped this round *)
    byz : (Node_id.t * Node_id.t * M.P.message) list;
        (** (byz, recipient, payload) unicasts sent this round, arriving
            next round — the rushing adversary's move *)
  }

  val silent_action : action

  val check :
    ?jobs:int ->
    ?symmetry:bool ->
    ?max_states:int ->
    ?crash_budget:int ->
    ?omit_budget:int ->
    ?seed:int64 ->
    n:int ->
    f:int ->
    max_rounds:int ->
    unit ->
    result
  (** Exhaustively check all of the model's roots with [n - f] correct and
      [f] Byzantine nodes, up to [max_rounds] rounds. [symmetry] (default
      true) applies the clone-class reduction when the model declares
      [recipient_symmetric]; [max_states] (default 1_000_000) bounds
      distinct configurations per root; [crash_budget] / [omit_budget]
      (default 0) bound benign fault events per execution; [seed]
      (default 7) scatters the node-id population exactly like the
      harness does. *)

  type replay_outcome = {
    finished : [ `All_halted | `Max_rounds_reached of Node_id.t list ];
    rounds : int;
    violation : (string * string * int) option;
        (** (property, detail, round) — first violation observed *)
    outputs : (Node_id.t * M.P.output) list;
    state_keys : (Node_id.t * string) list;
    halted : (Node_id.t * int) list;
  }

  val replay :
    ?trace:Ubpa_sim.Trace.t ->
    ?monitor:M.P.output Ubpa_monitor.t ->
    ?max_rounds:int ->
    correct:(Node_id.t * M.P.input) list ->
    byzantine:Node_id.t list ->
    actions:action list ->
    unit ->
    replay_outcome
  (** Deterministically execute one scripted run — counterexample replay,
      differential tests against the engine, monitor smoke tests. Rounds
      beyond the script run the silent action; execution stops when every
      node halted (or was crashed) and the script is exhausted, or at
      [max_rounds] (default 16) with the stalled set reported exactly like
      {!Ubpa_sim.Network}. A [monitor] sees every trace event and gets a
      per-round observation, mirroring the harness wiring. *)

  val population : seed:int64 -> n:int -> f:int -> Node_id.t list * Node_id.t list
  (** The (correct, byzantine) ids {!check} uses — for building replay
      scripts against the same population. *)
end
