(* Checker models for the two core protocols. The palettes are the
   curated adversary vocabularies of model M1 — see docs/CHECKING.md for
   the closure argument (why messages outside the palette cannot reach
   states the palette cannot). *)

open Ubpa_util

let universe = [ "A"; "B" ]

module Rb = struct
  module P = Unknown_ba.Reliable_broadcast.Make (Unknown_ba.Value.String)

  let name = "rb"

  (* Two roots: a Byzantine designated sender (every correct node starts
     with [None]) — the consistency-critical case — and a correct
     designated sender (first correct id broadcasts "A"), which exercises
     correctness/relay under forged echoes. *)
  let roots ~correct ~byzantine =
    let silent = List.map (fun _ -> None) correct in
    let correct_sender =
      match correct with
      | [] -> []
      | _ :: rest -> Some (List.hd universe) :: List.map (fun _ -> None) rest
    in
    if byzantine = [] then [ ("correct-sender", correct_sender) ]
    else
      [ ("byz-sender", silent); ("correct-sender", correct_sender) ]

  (* Arrival round 2: the byz sender's (possibly equivocating) payload, or
     an innocuous [Present]. Later rounds: forged echoes — attributed to
     the byz node itself (consistency attacks) or to the first correct
     node (unforgeability attacks). Echoes for later senders add nothing:
     acceptance is per (payload, sender) and thresholds only count
     distinct echoers. *)
  let palette ~arrival ~correct ~byzantine =
    match byzantine with
    | [] -> []
    | b0 :: _ ->
        if arrival <= 1 then []
        else if arrival = 2 then
          P.inject P.Present
          :: List.map (fun v -> P.inject (P.Payload v)) universe
        else
          let attributed =
            match correct with [] -> [ b0 ] | c0 :: _ -> [ b0; c0 ]
          in
          List.concat_map
            (fun s -> List.map (fun v -> P.inject (P.Echo (v, s))) universe)
            attributed

  let copy_state = P.copy_state
  let state_key = P.state_key

  let input_key = function None -> "-" | Some v -> v
  let output_key out =
    List.map
      (fun (a : P.accepted) ->
        Fmt.str "%s/%a@%d" a.payload Node_id.pp a.sender a.accepted_round)
      out
    |> List.sort String.compare
    |> String.concat ";"

  (* RB's dynamics are id-order-free (thresholds count distinct echoers);
     only the designated sender and the echo-attribution target are
     pinned by name. *)
  let recipient_symmetric = true

  let pinned ~correct ~byzantine:_ =
    match correct with [] -> [] | c0 :: _ -> [ c0 ]

  (* Safety properties of Algorithm 1. RB never terminates, so the
     checked properties are the safety halves:
     - unforgeability: an accepted pair attributed to a correct node
       matches that node's actual input;
     - relay-totality: once any live node has held an acceptance for two
       full rounds, every live node must hold it (the paper's relay
       property gives one round for n > 3f; the checker allows two so the
       bound is conservative at tiny n, and boundary cells still violate
       it — see docs/CHECKING.md). *)
  let properties ~correct:_ ~byzantine:_ =
    let find_input obs id =
      List.find_map
        (fun o ->
          if Node_id.equal o.Model.ob_id id then Some o.Model.ob_input
          else None)
        obs
    in
    let accepted o = match o.Model.ob_output with None -> [] | Some l -> l in
    [
      ( "rb-unforgeability",
        fun ~round:_ obs ->
          List.find_map
            (fun o ->
              List.find_map
                (fun (a : P.accepted) ->
                  match find_input obs a.sender with
                  | Some (Some v) when String.equal v a.payload -> None
                  | Some input ->
                      Some
                        (Fmt.str
                           "%a accepted (%s, %a) but correct %a's input is %s"
                           Node_id.pp o.Model.ob_id a.payload Node_id.pp
                           a.sender Node_id.pp a.sender
                           (input_key input))
                  | None -> (* attributed to a byzantine node *) None)
                (accepted o))
            obs );
      ( "rb-relay-totality",
        fun ~round obs ->
          let live = List.filter (fun o -> not o.Model.ob_down) obs in
          List.find_map
            (fun o ->
              List.find_map
                (fun (a : P.accepted) ->
                  if a.accepted_round > round - 2 then None
                  else
                    List.find_map
                      (fun o' ->
                        let has =
                          List.exists
                            (fun (a' : P.accepted) ->
                              String.equal a'.payload a.payload
                              && Node_id.equal a'.sender a.sender)
                            (accepted o')
                        in
                        if has then None
                        else
                          Some
                            (Fmt.str
                               "%a accepted (%s, %a) in round %d but %a \
                                still lacks it in round %d"
                               Node_id.pp o.Model.ob_id a.payload Node_id.pp
                               a.sender a.accepted_round Node_id.pp
                               o'.Model.ob_id round))
                      live)
                (accepted o))
            live );
    ]
end

module Consensus = struct
  module P = Unknown_ba.Consensus.Make (Unknown_ba.Value.Int)

  let name = "consensus"

  let values = [ 0; 1 ]

  (* Unanimous roots in both polarities (max_by_count tie-breaking is not
     0/1-symmetric, so neither subsumes the other) plus the two mixed
     assignments at the split position. *)
  let roots ~correct ~byzantine:_ =
    let const v = List.map (fun _ -> v) correct in
    let mixed a b =
      List.mapi (fun i _ -> if i = 0 then a else b) correct
    in
    [
      ("all-0", const 0);
      ("all-1", const 1);
      ("mixed-01", mixed 0 1);
      ("mixed-10", mixed 1 0);
    ]

  (* The protocol's round schedule (local_round = global round for nodes
     joining at round 1): round 1 [Init], round 2 [Cand_echo], round 3
     freezes membership, then five-round phases with position
     [((local_round - 3) mod 5) + 1]. A message arriving in round [a] is
     read by the handler for position [(a - 3) mod 5 + 1] once [a >= 4].
     The palette offers the constructors each handler tallies, with two
     documented curations that keep the n = 4 cells tractable
     (docs/CHECKING.md): no late [Init] at arrival 3 (selective round-1
     [Init] already yields every heterogeneous-membership split, the
     paper's central hazard) and no byz [Cand_echo] votes (b0's candidacy
     is already echoed by every correct node that heard its [Init]).
     Other constructors at the wrong position are dead traffic the
     handlers ignore, so excluding them loses no reachable states. *)
  let palette ~arrival ~correct:_ ~byzantine =
    match byzantine with
    | [] -> []
    | _ -> (
        if arrival <= 2 then if arrival = 2 then [ P.Core.Init ] else []
        else
          match ((arrival - 3) mod 5) + 1 with
          | 2 -> List.map (fun v -> P.Core.Input v) values
          | 3 -> List.map (fun v -> P.Core.Prefer v) values
          | 4 -> List.map (fun v -> P.Core.Strongprefer v) values
          | 5 -> List.map (fun v -> P.Core.Opinion v) values
          | _ -> [])

  let copy_state = P.copy_state
  let state_key = P.state_key
  let input_key = string_of_int
  let output_key = string_of_int

  (* The rotor coordinator is List.nth of the sorted candidate set —
     id-order-sensitive, so correct nodes are never interchangeable. *)
  let recipient_symmetric = false
  let pinned ~correct ~byzantine:_ = correct

  let properties ~correct:_ ~byzantine:_ =
    [
      ( "agreement",
        fun ~round:_ obs ->
          let decided =
            List.filter_map
              (fun o ->
                if o.Model.ob_halted then
                  Option.map (fun v -> (o.Model.ob_id, v)) o.Model.ob_output
                else None)
              obs
          in
          match decided with
          | [] | [ _ ] -> None
          | (id0, v0) :: rest ->
              List.find_map
                (fun (id, v) ->
                  if v = v0 then None
                  else
                    Some
                      (Fmt.str "%a decided %d but %a decided %d" Node_id.pp
                         id0 v0 Node_id.pp id v))
                rest );
      ( "unanimity-validity",
        fun ~round:_ obs ->
          match obs with
          | [] -> None
          | o0 :: rest ->
              let v = o0.Model.ob_input in
              if List.for_all (fun o -> o.Model.ob_input = v) rest then
                List.find_map
                  (fun o ->
                    match o.Model.ob_output with
                    | Some d when o.Model.ob_halted && d <> v ->
                        Some
                          (Fmt.str
                             "inputs unanimous at %d but %a decided %d" v
                             Node_id.pp o.Model.ob_id d)
                    | _ -> None)
                  obs
              else None );
    ]
end
