(** Checker models for the core protocols (docs/CHECKING.md).

    [Rb] checks reliable broadcast over the two-value universe
    {"A", "B"}: unforgeability plus a conservative (two-round) relay
    totality. [Consensus] checks the early-terminating consensus over
    inputs {0, 1}: agreement plus unanimity validity. Both are exhaustive
    with respect to the M1 adversary palette documented in the source. *)

val universe : string list
(** The RB payload universe. *)

module Rb : Model.S with type P.input = string option

module Consensus : Model.S with type P.input = int and type P.output = int
