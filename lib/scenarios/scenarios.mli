(** Ready-made, deterministic experiment scenarios.

    One runner per algorithm of the paper, each wiring a concrete value
    type, a population of scattered identifiers, a Byzantine strategy per
    faulty node, and the synchronous engine. Tests, the benchmark harness,
    the CLI and the examples all drive the library through this module, so
    every reported number is reproducible from a seed. *)

open Ubpa_util
open Ubpa_sim
open Unknown_ba

val make_ids : seed:int64 -> int -> Node_id.t list
(** [n] scattered, non-consecutive identifiers. *)

val max_f : int -> int
(** Largest [f] with [n > 3f]. *)

(** {1 Reliable broadcast (Algorithm 1)} *)

module Rb : sig
  module P : module type of Reliable_broadcast.Make (Value.String)
  module Net : module type of Network.Make (P)
  module Attacks : module type of Ubpa_adversary.Rb_attacks.Make (Value.String)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    (* Per correct node: accepted (payload, claimed sender, accept round). *)
    accepted : (Node_id.t * (string * Node_id.t * int) list) list;
    all_accepted_sender_payload : bool;
        (** every correct node accepted the designated sender's payload *)
    consistent_acceptance : bool;
        (** all-or-none: every (payload, sender) pair accepted by some
            correct node was accepted by all of them (relay property) *)
    max_accept_round : int;
    min_accept_round : int;
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:P.message Strategy.t list ->
    ?byz_sender:bool ->
    n_correct:int ->
    payload:string ->
    unit ->
    summary
  (** One designated sender (the first correct node, or Byzantine when
      [byz_sender] — then the first strategy acts as the sender). The run
      stops when every correct node accepted the payload or [max_rounds]
      passed. *)
end

(** {1 Rotor-coordinator (Algorithm 2)} *)

module Rotor_int : sig
  module P : module type of Rotor.Make (Value.Int)
  module Net : module type of Network.Make (P)
  module Attacks : module type of Ubpa_adversary.Rotor_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    all_terminated : bool;
    outputs : (Node_id.t * P.output) list;
    good_round_exists : bool;
        (** a rotor round in which every correct node selected the same
            correct coordinator (Theorem "rc") *)
    termination_rounds : int list;  (** per correct node *)
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:P.message Strategy.t list ->
    n_correct:int ->
    unit ->
    summary
end

(** {1 Early-terminating consensus (Algorithm 3)} *)

module Consensus_int : sig
  module P : module type of Consensus.Make (Value.Int)
  module Net : module type of Network.Make (P)
  module Attacks : module type of Ubpa_adversary.Consensus_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * int) list;
    agreed : bool;
    valid : bool;
        (** unanimity validity: when every correct input is the same value,
            the common output equals it (all Algorithm 3 guarantees for
            multivalued inputs) *)
    all_terminated : bool;
    decision_rounds : int list;
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:P.message Strategy.t list ->
    n_correct:int ->
    inputs:(int -> int) ->
    unit ->
    summary
  (** [inputs i] is the input of the [i]-th correct node. *)
end

(** {1 Committee-sampling agreement (King–Saia style, sub-quadratic)} *)

module Committee_int : sig
  module P : module type of Committee_agreement.Make (Value.Int)
  module Net : module type of Network.Make (P)

  module Attacks : module type of Ubpa_adversary.Committee_attacks.Make
                                    (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * int) list;
    agreed : bool;
    valid : bool;
        (** unanimity validity (w.h.p. over the seed): when every correct
            input is the same value, that value is the common output *)
    all_terminated : bool;
    decision_rounds : int list;
    committee : Node_id.t list;  (** the sampled committee, ascending *)
    byz_members : int;  (** Byzantine identifiers sampled into it *)
    attestor_q : int;  (** per-node attestor sample size *)
    max_budget_msgs : int;
        (** largest per-node wire budget (sent + received messages) over
            the {e correct} nodes — a flooding adversary's own sent-side
            spend is excluded, its inflation of correct receivers is
            not; 0 when [wire_accounting] is off *)
    max_budget_bits : int;  (** ditto, in bits — CX2's gated quantity *)
    monitor_green : bool;
        (** online agreement/validity monitors saw no violation *)
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:P.message Strategy.t list ->
    ?delivery:Delivery.impl ->
    ?wire_accounting:bool ->
    ?rushing:bool ->
    ?trace:Trace.t ->
    n_correct:int ->
    inputs:(int -> int) ->
    unit ->
    summary
  (** [inputs i] is the input of the [i]-th correct node. The universe
      handed to every node is the full scattered population (correct and
      Byzantine); the committee is sampled from it by the public seed. *)
end

(** {1 Approximate agreement (Algorithm 4)} *)

module Aa : sig
  module P : sig
    include module type of Approx_agreement
  end

  module Net : module type of Network.Make (Approx_agreement)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * float) list;
    input_range : float * float;  (** over correct inputs *)
    output_range : float * float;
    within_range : bool;
    contraction : float;
        (** output spread / input spread; 0 when the input spread is 0 *)
  }

  val run :
    ?seed:int64 ->
    ?byz:Approx_agreement.message Strategy.t list ->
    ?iterations:int ->
    n_correct:int ->
    inputs:(int -> float) ->
    unit ->
    summary

  (** {2 Dynamic network variant (Section "Application to Dynamic
      Networks")} *)

  type dynamic_summary = {
    rounds : int;
    range_per_round : (int * float * float) list;
        (** (round, lowest, highest) correct estimate: the spread halves
            each round, except that a join may widen it *)
    joins_applied : (int * float) list;
    within_global_range : bool;
        (** final estimates inside the range of all inputs ever supplied *)
  }

  val run_dynamic :
    ?seed:int64 ->
    ?byz:Approx_agreement.message Strategy.t list ->
    n_start:int ->
    iterations:int ->
    joins:(int * float) list ->
    inputs:(int -> float) ->
    unit ->
    dynamic_summary
  (** [joins] are [(round, value)] arrivals; several joiners may share a
      round (simultaneous arrival is what can widen the range past the
      trimming). *)
end

(** {1 Parallel consensus (Algorithm 5)} *)

module Parallel_int : sig
  module P : module type of Parallel_consensus.Make (Value.Int)
  module Net : module type of Network.Make (P)
  module Attacks : module type of Ubpa_adversary.Pc_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * (int * int) list) list;
    agreed : bool;  (** identical output pair sets *)
    all_terminated : bool;
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:P.message Strategy.t list ->
    n_correct:int ->
    inputs:(int -> (int * int) list) ->
    unit ->
    summary
end


(** {1 Rotor-driven binary consensus (the paper's original king-style
    algorithm)} *)

module Binary : sig
  module Net : module type of Network.Make (Binary_consensus)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * bool) list;
    agreed : bool;
    valid : bool;
        (** strong validity — the binary output is the input of some
            correct node *)
    all_terminated : bool;
    decision_rounds : int list;  (** first-decision round per node *)
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:Binary_consensus.message Strategy.t list ->
    n_correct:int ->
    inputs:(int -> bool) ->
    unit ->
    summary
end

(** {1 Total ordering in a dynamic network (Algorithm 6)} *)

module Total_order_str : sig
  module P : module type of Total_order.Make (Value.String)
  module Net : module type of Network.Make (P)

  type churn = {
    join_at : (int * int) list;
        (** [(round, how_many)] joiners entering at given rounds *)
    leave_at : (int * int) list;
        (** [(round, how_many)] genesis nodes asked to leave *)
  }

  val no_churn : churn

  type summary = {
    rounds : int;
    delivered_msgs : int;
    chains : (Node_id.t * P.chain_output) list;  (** final chain per node *)
    prefix_consistent : bool;
        (** every pair of chains is prefix-ordered (chain-prefix) *)
    chain_lengths : int list;
    frontier_lags : int list;
        (** per node: logical round minus finality frontier — the paper
            predicts ⌊5|S|/2⌋ + 3 *)
    events_submitted : int;
  }

  val run :
    ?seed:int64 ->
    ?byz:P.message Strategy.t list ->
    ?churn:churn ->
    n_genesis:int ->
    rounds:int ->
    events_per_round:int ->
    unit ->
    summary
  (** [events_per_round] correct nodes witness one event each per logical
      round (round-robin over the population). *)
end

(** {1 Byzantine renaming (appendix)} *)

module Renaming_run : sig
  module Net : module type of Network.Make (Renaming)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * Renaming.output) list;
    consistent : bool;  (** identical name assignments at all nodes *)
    names_are_dense : bool;  (** ranks are exactly 1..|S| *)
    all_terminated : bool;
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:Renaming.message Strategy.t list ->
    n_correct:int ->
    unit ->
    summary
end

(** {1 Terminating reliable broadcast (appendix)} *)

module Trb_str : sig
  module P : module type of Terminating_rb.Make (Value.String)
  module Net : module type of Network.Make (P)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * string option) list;
    agreed : bool;
    all_terminated : bool;
  }

  val run :
    ?seed:int64 ->
    ?max_rounds:int ->
    ?byz:P.message Strategy.t list ->
    ?byz_sender:bool ->
    n_correct:int ->
    payload:string ->
    unit ->
    summary
end
