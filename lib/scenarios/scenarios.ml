open Ubpa_util
open Ubpa_harness
open Unknown_ba

let make_ids = Harness.make_ids
let max_f = Harness.max_f
let split_population = Harness.split_population

let is_prefix ~of_:long short =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | a :: sa, b :: sb -> a = b && go (sa, sb)
  in
  go (short, long)

let prefix_ordered a b = is_prefix ~of_:a b || is_prefix ~of_:b a

module Rb = struct
  module P = Reliable_broadcast.Make (Value.String)
  module H = Harness.Make (P)
  module Net = H.Net
  module Attacks = Ubpa_adversary.Rb_attacks.Make (Value.String)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    accepted : (Node_id.t * (string * Node_id.t * int) list) list;
    all_accepted_sender_payload : bool;
    consistent_acceptance : bool;
    max_accept_round : int;
    min_accept_round : int;
  }

  let run ?(seed = 1L) ?(max_rounds = 40) ?(byz = []) ?(byz_sender = false)
      ~n_correct ~payload () =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let sender =
      if byz_sender then List.hd byz_ids else List.hd correct_ids
    in
    let correct =
      List.map
        (fun id ->
          ( id,
            if (not byz_sender) && Node_id.equal id sender then Some payload
            else None ))
        correct_ids
    in
    let byzantine = List.combine byz_ids byz in
    let everyone_accepted net =
      let reports = Net.reports net in
      reports <> []
      && List.for_all
           (fun r ->
             match r.Net.last_output with Some (_ :: _) -> true | _ -> false)
           reports
    in
    (* Two settle rounds so the relay property has finished propagating any
       acceptance that happened on the last round. *)
    let o =
      H.execute ~seed ~max_rounds ~stop:everyone_accepted ~settle:2 ~correct
        ~byzantine ()
    in
    let accepted =
      List.map
        (fun r ->
          let entries =
            match r.Net.last_output with
            | None -> []
            | Some l ->
                List.map
                  (fun a ->
                    (a.P.payload, a.P.sender, a.P.accepted_round))
                  l
          in
          (r.Net.id, entries))
        o.H.reports
    in
    let designated_rounds =
      List.filter_map
        (fun (_, entries) ->
          List.find_map
            (fun (m, s, rd) ->
              if m = payload && Node_id.equal s sender then Some rd else None)
            entries)
        accepted
    in
    let all = List.length designated_rounds = List.length accepted in
    (* All-or-none: every pair accepted somewhere is accepted everywhere. *)
    let consistent =
      let pairs =
        List.concat_map
          (fun (_, entries) -> List.map (fun (m, s, _) -> (m, s)) entries)
        accepted
        |> List.sort_uniq compare
      in
      List.for_all
        (fun pair ->
          List.for_all
            (fun (_, entries) ->
              List.exists (fun (m, s, _) -> (m, s) = pair) entries)
            accepted)
        pairs
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      accepted;
      all_accepted_sender_payload = all;
      consistent_acceptance = consistent;
      max_accept_round =
        List.fold_left max (-1) designated_rounds;
      min_accept_round =
        (match designated_rounds with
        | [] -> -1
        | l -> List.fold_left min max_int l);
    }
end

module Rotor_int = struct
  module P = Rotor.Make (Value.Int)
  module H = Harness.Make (P)
  module Net = H.Net
  module Attacks = Ubpa_adversary.Rotor_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    all_terminated : bool;
    outputs : (Node_id.t * P.output) list;
    good_round_exists : bool;
    termination_rounds : int list;
  }

  let good_round ~correct_ids outputs =
    match outputs with
    | [] -> false
    | (_, (first : P.output)) :: _ ->
        let indices = List.map fst first.P.selections in
        List.exists
          (fun idx ->
            let coords =
              List.map
                (fun (_, (o : P.output)) -> List.assoc_opt idx o.P.selections)
                outputs
            in
            match coords with
            | Some c :: rest ->
                List.for_all (fun c' -> c' = Some c) rest
                && List.exists (Node_id.equal c) correct_ids
            | _ -> false)
          indices

  let run ?(seed = 2L) ?(max_rounds = 500) ?(byz = []) ~n_correct () =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let correct = List.mapi (fun i id -> (id, i)) correct_ids in
    let byzantine = List.combine byz_ids byz in
    let o = H.execute ~seed ~max_rounds ~correct ~byzantine () in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      all_terminated = o.H.finished = `All_halted;
      outputs = o.H.outputs;
      good_round_exists = good_round ~correct_ids o.H.outputs;
      termination_rounds =
        List.filter_map (fun r -> r.Net.halted_at) o.H.reports;
    }
end

module Consensus_int = struct
  module P = Consensus.Make (Value.Int)
  module H = Harness.Make (P)
  module Net = H.Net
  module Attacks = Ubpa_adversary.Consensus_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * int) list;
    agreed : bool;
    valid : bool;
    all_terminated : bool;
    decision_rounds : int list;
  }

  let run ?(seed = 3L) ?(max_rounds = 1000) ?(byz = []) ~n_correct ~inputs ()
      =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let correct = List.mapi (fun i id -> (id, inputs i)) correct_ids in
    let byzantine = List.combine byz_ids byz in
    let o = H.execute ~seed ~max_rounds ~correct ~byzantine () in
    let outputs = o.H.outputs in
    let values = List.map snd outputs in
    let input_values = List.mapi (fun i _ -> inputs i) correct_ids in
    let agreed =
      match values with
      | [] -> false
      | v :: rest ->
          List.for_all (Int.equal v) rest
          && List.length values = List.length correct_ids
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      agreed;
      valid =
        (* Unanimity validity — all Algorithm 3 guarantees for multivalued
           inputs: when every correct input is the same value, that value
           must be the output. For split inputs any common output is
           admissible (a Byzantine coordinator may contribute it). *)
        (match (input_values, values) with
        | [], _ | _, [] -> false
        | iv :: rest, _ ->
            (not (List.for_all (Int.equal iv) rest))
            || List.for_all (Int.equal iv) values);
      all_terminated = o.H.finished = `All_halted;
      decision_rounds =
        List.filter_map (fun r -> r.Net.halted_at) o.H.reports;
    }
end

module Aa = struct
  module P = Approx_agreement
  module H = Harness.Make (Approx_agreement)
  module Net = H.Net

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * float) list;
    input_range : float * float;
    output_range : float * float;
    within_range : bool;
    contraction : float;
  }

  let run ?(seed = 4L) ?(byz = []) ?(iterations = 1) ~n_correct ~inputs () =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let correct =
      List.mapi
        (fun i id -> (id, { Approx_agreement.value = inputs i; iterations }))
        correct_ids
    in
    let byzantine = List.combine byz_ids byz in
    let o =
      H.execute ~seed ~max_rounds:(iterations + 5) ~correct ~byzantine ()
    in
    let outputs =
      List.map
        (fun (id, (p : Approx_agreement.progress)) -> (id, p.estimate))
        o.H.outputs
    in
    let input_values = List.mapi (fun i _ -> inputs i) correct_ids in
    let i_lo, i_hi = Stats.min_max input_values in
    let o_lo, o_hi =
      match outputs with
      | [] -> (nan, nan)
      | _ -> Stats.min_max (List.map snd outputs)
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      input_range = (i_lo, i_hi);
      output_range = (o_lo, o_hi);
      within_range = o_lo >= i_lo && o_hi <= i_hi;
      contraction =
        (if i_hi -. i_lo = 0. then 0. else (o_hi -. o_lo) /. (i_hi -. i_lo));
    }

  type dynamic_summary = {
    rounds : int;
    range_per_round : (int * float * float) list;
        (** (round, lowest, highest) active correct estimate *)
    joins_applied : (int * float) list;
    within_global_range : bool;
  }

  let run_dynamic ?(seed = 41L) ?(byz = []) ~n_start ~iterations ~joins
      ~inputs () =
    let total_joins = List.length joins in
    let n_byz = List.length byz in
    let ids = make_ids ~seed (n_start + total_joins + n_byz) in
    let start_ids = List.filteri (fun i _ -> i < n_start) ids in
    let join_ids =
      List.filteri
        (fun i _ -> i >= n_start && i < n_start + total_joins)
        ids
    in
    let byz_ids =
      List.filteri (fun i _ -> i >= n_start + total_joins) ids
    in
    let correct =
      List.mapi
        (fun i id -> (id, { Approx_agreement.value = inputs i; iterations }))
        start_ids
    in
    let net =
      H.create ~seed ~correct ~byzantine:(List.combine byz_ids byz) ()
    in
    let all_values =
      List.mapi (fun i _ -> inputs i) start_ids @ List.map snd joins
    in
    let g_lo, g_hi = Stats.min_max all_values in
    let ranges = ref [] in
    let join_log = ref [] in
    let rec loop round joins join_ids =
      if Net.all_halted net then ()
      else if round > iterations + 5 then ()
      else begin
        let due, later = List.partition (fun (jr, _) -> jr = round) joins in
        let ids_due = List.filteri (fun i _ -> i < List.length due) join_ids in
        let ids_later =
          List.filteri (fun i _ -> i >= List.length due) join_ids
        in
        List.iter2
          (fun (_, v) id ->
            Net.join_correct net id
              {
                Approx_agreement.value = v;
                iterations = max 1 (iterations - round);
              };
            join_log := (round, v) :: !join_log)
          due ids_due;
        Net.step_round net;
        record round;
        loop (round + 1) later ids_later
      end
    and record round =
      let estimates =
        List.filter_map
          (fun r ->
            Option.map
              (fun (p : Approx_agreement.progress) -> p.estimate)
              r.Net.last_output)
          (Net.reports net)
      in
      match estimates with
      | [] -> ranges := (round, 0., 0.) :: !ranges
      | _ ->
          let lo, hi = Stats.min_max estimates in
          ranges := (round, lo, hi) :: !ranges
    in
    loop 1 (List.sort compare joins) join_ids;
    let o = H.collect net ~finished:`Stopped in
    let finals =
      List.filter_map
        (fun r ->
          Option.map
            (fun (p : Approx_agreement.progress) -> p.estimate)
            r.Net.last_output)
        o.H.reports
    in
    let within =
      finals <> []
      && List.for_all (fun v -> v >= g_lo && v <= g_hi) finals
    in
    {
      rounds = o.H.rounds;
      range_per_round = List.rev !ranges;
      joins_applied = List.rev !join_log;
      within_global_range = within;
    }
end

module Parallel_int = struct
  module P = Parallel_consensus.Make (Value.Int)
  module H = Harness.Make (P)
  module Net = H.Net
  module Attacks = Ubpa_adversary.Pc_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * (int * int) list) list;
    agreed : bool;
    all_terminated : bool;
  }

  let run ?(seed = 5L) ?(max_rounds = 1000) ?(byz = []) ~n_correct ~inputs ()
      =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let correct = List.mapi (fun i id -> (id, inputs i)) correct_ids in
    let byzantine = List.combine byz_ids byz in
    let o = H.execute ~seed ~max_rounds ~correct ~byzantine () in
    let outputs =
      List.map (fun (id, out) -> (id, List.sort compare out)) o.H.outputs
    in
    let agreed =
      match outputs with
      | [] -> false
      | (_, first) :: rest ->
          List.for_all (fun (_, out) -> out = first) rest
          && List.length outputs = List.length correct_ids
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      agreed;
      all_terminated = o.H.finished = `All_halted;
    }
end


module Binary = struct
  module H = Harness.Make (Binary_consensus)
  module Net = H.Net

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * bool) list;
    agreed : bool;
    valid : bool;  (** strong validity: output is some correct input *)
    all_terminated : bool;
    decision_rounds : int list;
  }

  let run ?(seed = 9L) ?(max_rounds = 2000) ?(byz = []) ~n_correct ~inputs ()
      =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let correct = List.mapi (fun i id -> (id, inputs i)) correct_ids in
    let byzantine = List.combine byz_ids byz in
    let o = H.execute ~seed ~max_rounds ~correct ~byzantine () in
    let outputs = o.H.outputs in
    let values = List.map snd outputs in
    let input_values = List.mapi (fun i _ -> inputs i) correct_ids in
    let agreed =
      match values with
      | [] -> false
      | v :: rest ->
          List.for_all (Bool.equal v) rest
          && List.length values = List.length correct_ids
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      agreed;
      valid = (match values with [] -> false | v :: _ -> List.mem v input_values);
      all_terminated = o.H.finished = `All_halted;
      decision_rounds =
        List.filter_map (fun r -> r.Net.first_output_round) o.H.reports;
    }
end

module Total_order_str = struct
  module P = Total_order.Make (Value.String)
  module H = Harness.Make (P)
  module Net = H.Net

  type churn = { join_at : (int * int) list; leave_at : (int * int) list }

  let no_churn = { join_at = []; leave_at = [] }

  type summary = {
    rounds : int;
    delivered_msgs : int;
    chains : (Node_id.t * P.chain_output) list;
    prefix_consistent : bool;
    chain_lengths : int list;
    frontier_lags : int list;
    events_submitted : int;
  }

  let run ?(seed = 6L) ?(byz = []) ?(churn = no_churn) ~n_genesis ~rounds
      ~events_per_round () =
    let joiners_total =
      List.fold_left (fun acc (_, k) -> acc + k) 0 churn.join_at
    in
    let all_ids =
      make_ids ~seed (n_genesis + joiners_total + List.length byz)
    in
    let genesis_ids = List.filteri (fun i _ -> i < n_genesis) all_ids in
    let joiner_ids =
      List.filteri
        (fun i _ -> i >= n_genesis && i < n_genesis + joiners_total)
        all_ids
    in
    let byz_ids =
      List.filteri (fun i _ -> i >= n_genesis + joiners_total) all_ids
    in
    let events_submitted = ref 0 in
    let leavers =
      (* the last genesis nodes leave, scheduled by round *)
      List.concat_map
        (fun (round, k) ->
          List.filteri
            (fun i _ -> i >= n_genesis - k)
            genesis_ids
          |> List.map (fun id -> (round, id)))
        churn.leave_at
    in
    let witness_pool = genesis_ids in
    let stimulus ~round id =
      let leave =
        if List.exists (fun (r, i) -> r = round && Node_id.equal i id) leavers
        then [ P.Leave ]
        else []
      in
      let witness =
        if round <= rounds && events_per_round > 0 then begin
          let pool_size = List.length witness_pool in
          let selected =
            List.filteri
              (fun i _ ->
                (i + round) mod pool_size < events_per_round)
              witness_pool
          in
          if List.exists (Node_id.equal id) selected then begin
            incr events_submitted;
            [ P.Witness (Printf.sprintf "ev-r%d-%s" round (Fmt.to_to_string Node_id.pp id)) ]
          end
          else []
        end
        else []
      in
      leave @ witness
    in
    let correct = List.map (fun id -> (id, P.Genesis)) genesis_ids in
    let byzantine = List.combine byz_ids byz in
    let net = H.create ~seed ~stimulus ~correct ~byzantine () in
    let joins =
      List.concat_map
        (fun (round, k) -> List.init k (fun i -> (round, i)))
        churn.join_at
      |> List.mapi (fun idx (round, _) -> (round, List.nth joiner_ids idx))
    in
    let drain = (5 * (n_genesis + joiners_total) / 2) + 30 in
    for r = 1 to rounds + drain do
      List.iter
        (fun (jr, id) -> if jr = r then Net.join_correct net id P.Joiner)
        joins;
      Net.step_round net
    done;
    let o = H.collect net ~finished:`Stopped in
    let chains = o.H.outputs in
    let entry_list (out : P.chain_output) =
      List.map (fun e -> (e.P.group, Node_id.to_int e.P.origin, e.P.event)) out.chain
    in
    let prefix_consistent =
      let rec pairs = function
        | [] | [ _ ] -> true
        | (_, a) :: rest ->
            List.for_all
              (fun (_, b) ->
                let la = entry_list a and lb = entry_list b in
                match (la, lb) with
                | [], _ | _, [] -> true
                | (ga, _, _) :: _, (gb, _, _) :: _ ->
                    let g0 = max ga gb in
                    let cut l =
                      List.filter (fun (g, _, _) -> g >= g0) l
                    in
                    prefix_ordered (cut la) (cut lb))
              rest
            && pairs rest
      in
      pairs chains
    in
    {
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      chains;
      prefix_consistent;
      chain_lengths = List.map (fun (_, out) -> List.length out.P.chain) chains;
      frontier_lags =
        List.map
          (fun (_, (out : P.chain_output)) -> out.logical_round - out.frontier)
          chains;
      events_submitted = !events_submitted;
    }
end

module Renaming_run = struct
  module H = Harness.Make (Renaming)
  module Net = H.Net

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * Renaming.output) list;
    consistent : bool;
    names_are_dense : bool;
    all_terminated : bool;
  }

  let run ?(seed = 7L) ?(max_rounds = 300) ?(byz = []) ~n_correct () =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let correct = List.map (fun id -> (id, ())) correct_ids in
    let byzantine = List.combine byz_ids byz in
    let o = H.execute ~seed ~max_rounds ~correct ~byzantine () in
    let outputs = o.H.outputs in
    let consistent =
      match outputs with
      | [] -> false
      | (_, first) :: rest ->
          List.for_all
            (fun (_, (out : Renaming.output)) -> out.names = first.Renaming.names)
            rest
          && List.length outputs = List.length correct_ids
    in
    let names_are_dense =
      List.for_all
        (fun (_, (out : Renaming.output)) ->
          let ranks = List.map snd out.names |> List.sort Int.compare in
          ranks = List.init (List.length ranks) (fun i -> i + 1))
        outputs
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      consistent;
      names_are_dense;
      all_terminated = o.H.finished = `All_halted;
    }
end

module Trb_str = struct
  module P = Terminating_rb.Make (Value.String)
  module H = Harness.Make (P)
  module Net = H.Net

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * string option) list;
    agreed : bool;
    all_terminated : bool;
  }

  let run ?(seed = 8L) ?(max_rounds = 1000) ?(byz = []) ?(byz_sender = false)
      ~n_correct ~payload () =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let sender =
      if byz_sender then List.hd byz_ids else List.hd correct_ids
    in
    let correct =
      List.map
        (fun id ->
          let payload =
            if (not byz_sender) && Node_id.equal id sender then Some payload
            else None
          in
          (id, { P.sender; payload }))
        correct_ids
    in
    let byzantine = List.combine byz_ids byz in
    let o = H.execute ~seed ~max_rounds ~correct ~byzantine () in
    let outputs = o.H.outputs in
    let agreed =
      match outputs with
      | [] -> false
      | (_, first) :: rest ->
          List.for_all (fun (_, out) -> out = first) rest
          && List.length outputs = List.length correct_ids
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      agreed;
      all_terminated = o.H.finished = `All_halted;
    }
end

module Committee_int = struct
  module P = Committee_agreement.Make (Value.Int)
  module H = Harness.Make (P)
  module Net = H.Net
  module Attacks = Ubpa_adversary.Committee_attacks.Make (Value.Int)

  type summary = {
    n : int;
    f : int;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * int) list;
    agreed : bool;
    valid : bool;
    all_terminated : bool;
    decision_rounds : int list;
    committee : Node_id.t list;
    byz_members : int;
    attestor_q : int;
    max_budget_msgs : int;
    max_budget_bits : int;
    monitor_green : bool;
  }

  let run ?(seed = 10L) ?(max_rounds = 400) ?(byz = []) ?delivery
      ?wire_accounting ?rushing ?trace ~n_correct ~inputs () =
    let correct_ids, byz_ids =
      split_population ~seed ~n_correct ~n_byz:(List.length byz)
    in
    let universe = Node_id.sorted (correct_ids @ byz_ids) in
    let correct =
      List.mapi
        (fun i id -> (id, { P.value = inputs i; seed; universe }))
        correct_ids
    in
    let byzantine = List.combine byz_ids byz in
    let input_values = List.mapi (fun i _ -> inputs i) correct_ids in
    let unanimous =
      match input_values with
      | [] -> None
      | v :: rest -> if List.for_all (Int.equal v) rest then Some v else None
    in
    let monitor =
      Ubpa_monitor.create
        [
          Ubpa_monitor.agreement ~equal:Int.equal ~pp:Fmt.int ();
          Ubpa_monitor.validity
            ~ok:(fun _ out ->
              match unanimous with None -> true | Some v -> Int.equal v out)
            ();
        ]
    in
    let o =
      H.execute ?delivery ?wire_accounting ?rushing ?trace ~seed ~max_rounds
        ~classify:P.kind ~monitor ~correct ~byzantine ()
    in
    let outputs = o.H.outputs in
    let values = List.map snd outputs in
    let agreed =
      match values with
      | [] -> false
      | v :: rest ->
          List.for_all (Int.equal v) rest
          && List.length values = List.length correct_ids
    in
    let committee = Unknown_ba.Committee.members ~seed ~universe in
    let byz_members =
      List.length
        (List.filter
           (fun id -> List.exists (Node_id.equal id) byz_ids)
           committee)
    in
    (* The per-processor budget the CX2 envelope bounds is a statement
       about correct nodes: a flooding adversary burns Θ(n) of its own
       sent-side budget per round, and that spend must not be what the
       fit measures. Received-side inflation from those floods still
       lands on correct nodes and still counts. *)
    let wire = Net.wire o.H.net in
    let budget =
      List.fold_left
        (fun (acc : Ubpa_obs.Wire.count) id ->
          let b = Ubpa_obs.Wire.budget_of wire id in
          if b.Ubpa_obs.Wire.bits > acc.Ubpa_obs.Wire.bits then b else acc)
        { Ubpa_obs.Wire.msgs = 0; bits = 0 }
        correct_ids
    in
    {
      n = n_correct + List.length byz;
      f = List.length byz;
      rounds = o.H.rounds;
      delivered_msgs = o.H.delivered_msgs;
      outputs;
      agreed;
      valid =
        (* Unanimity validity, with high probability over the seed: when
           every correct input is the same value, the sampled committee
           decides it and the spreading phase carries it everywhere. *)
        (match (unanimous, values) with
        | _, [] -> false
        | None, _ -> true
        | Some v, _ -> List.for_all (Int.equal v) values);
      all_terminated = o.H.finished = `All_halted;
      decision_rounds = List.filter_map (fun r -> r.Net.halted_at) o.H.reports;
      committee;
      byz_members;
      attestor_q = Unknown_ba.Committee.attestor_size (List.length universe);
      max_budget_msgs = budget.Ubpa_obs.Wire.msgs;
      max_budget_bits = budget.Ubpa_obs.Wire.bits;
      monitor_green = Ubpa_monitor.all_green monitor;
    }
end
