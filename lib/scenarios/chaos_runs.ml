(* Seeded chaos sweeps: randomized benign-fault schedules (Ubpa_harness.Chaos)
   run against online invariant monitors (Ubpa_monitor), per protocol.

   Population and envelope: [n_correct = 10] correct nodes plus one
   Byzantine mirror, so n = 11 and f = (n-1)/3 = 3. A schedule with budget
   b crash/omission-faults b correct nodes; b + 1 <= 3 keeps the run
   inside the paper's proven envelope (benign faults are sub-Byzantine),
   so every monitor must stay green there. Victims are excused from the
   monitors — the theorems promise nothing about faulty nodes. *)

open Ubpa_util
open Unknown_ba
module M = Ubpa_monitor
module F = Ubpa_faults
open Ubpa_harness

let n_correct = 10
let n_byz = 1
let n = n_correct + n_byz
let f = Harness.max_f n

module Consensus_chaos = struct
  module P = Consensus.Make (Value.Int)
  module H = Harness.Make (P)

  (* Algorithm 3 decides within 5(f+1)+2 rounds; 30 leaves slack for the
     rotor phases a crashed coordinator wastes. *)
  let deadline = 30

  let run ?style ?loss ?dup ~seed ~budget () =
    let correct_ids, byz_ids = Harness.split_population ~seed ~n_correct ~n_byz in
    let sch = Chaos.schedule ?style ?loss ?dup ~seed ~correct_ids ~budget () in
    let monitor =
      M.create
        ~excused:(Node_id.Set.of_list sch.Chaos.victims)
        [
          M.agreement ~equal:Int.equal ~pp:Fmt.int ();
          (* mirror only replays correct traffic, so any decision must be
             some correct node's input *)
          M.validity ~ok:(fun _ v -> v = 0 || v = 1) ();
          M.termination_by ~round:deadline ();
          M.no_send_after_halt ();
        ]
    in
    let correct = List.mapi (fun i id -> (id, i mod 2)) correct_ids in
    let byzantine =
      List.map (fun id -> (id, Ubpa_adversary.Generic.mirror)) byz_ids
    in
    let _ =
      H.execute ~seed ~faults:sch.Chaos.plan ~monitor
        ~max_rounds:(deadline + 10) ~correct ~byzantine ()
    in
    (sch, M.first_violation monitor)
end

module Rb_chaos = struct
  module P = Reliable_broadcast.Make (Value.String)
  module H = Harness.Make (P)

  let payload = "chaos-payload"

  (* RB accepts in round 3 in the fault-free run; crash-recover victims
     and omission windows can stretch the echo quorum a few rounds. *)
  let deadline = 8
  let horizon = 12

  let keys (out : P.output) =
    List.map (fun (a : P.accepted) -> (a.P.payload, a.P.sender)) out

  let run ?style ?loss ?dup ~seed ~budget () =
    let correct_ids, byz_ids = Harness.split_population ~seed ~n_correct ~n_byz in
    let sch = Chaos.schedule ?style ?loss ?dup ~seed ~correct_ids ~budget () in
    let sender = List.hd correct_ids in
    let forged (m, s) =
      (* every correct node except the designated sender broadcasts only
         [present]; an accepted pair attributed to one of them is a forgery *)
      List.exists (Node_id.equal s) correct_ids
      && not (Node_id.equal s sender && m = payload)
    in
    let monitor =
      M.create
        ~excused:(Node_id.Set.of_list sch.Chaos.victims)
        [
          M.unforgeable ~keys ~forged
            ~pp_key:(fun ppf (m, s) ->
              Fmt.pf ppf "(%s, %a)" m Node_id.pp s)
            ();
          M.accept_relay ~keys ();
          M.progress_by ~name:"rb-correctness" ~round:deadline
            ~ok:(fun o ->
              match o.M.output with
              | None -> false
              | Some out ->
                  List.exists
                    (fun (m, s) -> m = payload && Node_id.equal s sender)
                    (keys out))
            ();
          M.no_send_after_halt ();
        ]
    in
    let correct =
      List.map
        (fun id ->
          (id, if Node_id.equal id sender then Some payload else None))
        correct_ids
    in
    let byzantine =
      List.map (fun id -> (id, Ubpa_adversary.Generic.mirror)) byz_ids
    in
    let _ =
      H.execute ~seed ~faults:sch.Chaos.plan ~monitor ~max_rounds:horizon
        ~correct ~byzantine ()
    in
    (sch, M.first_violation monitor)
end

module Aa_chaos = struct
  module P = Approx_agreement
  module H = Harness.Make (P)

  let iterations = 3
  let deadline = 10
  let inputs i = float_of_int (10 * i) (* correct inputs span [0, 90] *)

  let run ?style ?loss ?dup ~seed ~budget () =
    let correct_ids, byz_ids = Harness.split_population ~seed ~n_correct ~n_byz in
    let sch = Chaos.schedule ?style ?loss ?dup ~seed ~correct_ids ~budget () in
    let lo, hi = (0., float_of_int (10 * (n_correct - 1))) in
    let monitor =
      M.create
        ~excused:(Node_id.Set.of_list sch.Chaos.victims)
        [
          M.validity
            ~ok:(fun _ (p : Approx_agreement.progress) ->
              p.estimate >= lo && p.estimate <= hi)
            ();
          M.termination_by ~round:deadline ();
          M.no_send_after_halt ();
        ]
    in
    let correct =
      List.mapi
        (fun i id -> (id, { Approx_agreement.value = inputs i; iterations }))
        correct_ids
    in
    let byzantine =
      List.map (fun id -> (id, Ubpa_adversary.Generic.mirror)) byz_ids
    in
    let _ =
      H.execute ~seed ~faults:sch.Chaos.plan ~monitor
        ~max_rounds:(deadline + 5) ~correct ~byzantine ()
    in
    (sch, M.first_violation monitor)
end

type run_record = {
  protocol : string;
  seed : int64;
  budget : int;
  violation : M.violation option;
}

let runners =
  [
    ("consensus", Consensus_chaos.run);
    ("rb", Rb_chaos.run);
    ("aa", Aa_chaos.run);
  ]

let protocols = List.map fst runners

let default_budgets = [ 0; 1; 2; 3; 5 ]
let default_seeds_per_budget = 6

(* The sweep: per protocol, increasing fault budget, [seeds_per_budget]
   fresh schedules each. The top budget is a deterministic worst case —
   crash-blackout plus global loss/duplication — so the beyond-envelope
   end of the table degrades by construction, not by luck.

   Each (protocol, budget) cell is seed-deterministic and independent, so
   cells run on the [Pool] ([jobs] defaults to [UBPA_JOBS], then 1) and
   merge in submission order: the rows and records of a parallel sweep are
   byte-identical to a serial one. *)
let sweep ?jobs ?(protocols = protocols) ?(budgets = default_budgets)
    ?(seeds_per_budget = default_seeds_per_budget) ?(base_seed = 0xc4a05L) ()
    =
  let top = List.fold_left max 0 budgets in
  let cells =
    List.concat_map
      (fun protocol ->
        let pi, run =
          let rec find i = function
            | [] -> invalid_arg ("Chaos_runs.sweep: unknown protocol " ^ protocol)
            | (name, run) :: rest -> if name = protocol then (i, run) else find (i + 1) rest
          in
          find 0 runners
        in
        let run ~style ~loss ~dup ~seed ~budget =
          run ~style ~loss ~dup ~seed ~budget ()
        in
        List.map (fun budget -> (protocol, pi, run, budget)) budgets)
      protocols
  in
  let results =
    Pool.map ?jobs
      (fun (protocol, pi, run, budget) ->
        let style, loss, dup =
          if budget >= top && budget > f - n_byz then
            (`Crash_blackout, 0.15, 0.10)
          else (`Mixed, 0., 0.)
        in
        let verdicts = ref [] in
        let cell_records = ref [] in
        let within = ref true in
        for k = 0 to seeds_per_budget - 1 do
          let seed =
            Int64.add base_seed
              (Int64.of_int ((pi * 97) + (budget * 1009) + (k * 13)))
          in
          let sch, violation = run ~style ~loss ~dup ~seed ~budget in
          within := !within && Chaos.within_envelope sch ~n ~byz:n_byz;
          verdicts := violation :: !verdicts;
          cell_records := { protocol; seed; budget; violation } :: !cell_records
        done;
        ( Chaos.row ~protocol ~budget ~byz:n_byz ~n ~within:!within
            (List.rev !verdicts),
          List.rev !cell_records ))
      cells
  in
  (List.map fst results, List.concat_map snd results)
