open Ubpa_util
module Trace = Ubpa_sim.Trace

type violation = {
  invariant : string;
  round : int;
  node : Node_id.t option;
  detail : string;
}

let pp_violation ppf v =
  let pp_node ppf = function
    | None -> ()
    | Some id -> Fmt.pf ppf " at %a" Node_id.pp id
  in
  Fmt.pf ppf "[%s] violated in round %d%a: %s" v.invariant v.round pp_node
    v.node v.detail

type 'o node_obs = {
  node : Node_id.t;
  joined_at : int;
  halted_at : int option;
  down : bool;
  output : 'o option;
}

(* A live instance: fresh closures (hence fresh state) per [create]. *)
type 'o inst = {
  i_name : string;
  i_round :
    (round:int -> 'o node_obs list -> (Node_id.t option * string) option)
    option;
  i_event : (Trace.event -> (Node_id.t option * string) option) option;
}

type 'o invariant = unit -> 'o inst

type 'o t = {
  excused : Node_id.Set.t;
  mutable insts : 'o inst list;
  mutable violations : violation list; (* reversed *)
}

let create ?(excused = Node_id.Set.empty) invariants =
  { excused; insts = List.map (fun mk -> mk ()) invariants; violations = [] }

let fire t inst ~round (node, detail) =
  t.violations <-
    { invariant = inst.i_name; round; node; detail } :: t.violations

let observe t ~round obs =
  if t.insts <> [] then begin
    let obs =
      if Node_id.Set.is_empty t.excused then obs
      else List.filter (fun o -> not (Node_id.Set.mem o.node t.excused)) obs
    in
    t.insts <-
      List.filter
        (fun inst ->
          match inst.i_round with
          | None -> true
          | Some check -> (
              match check ~round obs with
              | None -> true
              | Some v ->
                  fire t inst ~round v;
                  false))
        t.insts
  end

let observe_event t (e : Trace.event) =
  let excused =
    match e.node with Some n -> Node_id.Set.mem n t.excused | None -> false
  in
  if (not excused) && t.insts <> [] then
    t.insts <-
      List.filter
        (fun inst ->
          match inst.i_event with
          | None -> true
          | Some check -> (
              match check e with
              | None -> true
              | Some v ->
                  fire t inst ~round:e.round v;
                  false))
        t.insts

let violations t = List.rev t.violations
let first_violation t = match violations t with [] -> None | v :: _ -> Some v
let all_green t = t.violations = []

(* {2 Invariants} *)

let stateless ~name ?on_round ?on_event () () =
  { i_name = name; i_round = on_round; i_event = on_event }

let custom ~name ?on_round ?on_event () =
  stateless ~name ?on_round ?on_event ()

let decided obs =
  List.filter_map
    (fun o ->
      match (o.halted_at, o.output) with
      | Some _, Some v -> Some (o.node, v)
      | _ -> None)
    obs

let agreement ?(name = "agreement")
    ?(pp = fun ppf _ -> Fmt.string ppf "<output>") ~equal () =
  stateless ~name
    ~on_round:(fun ~round:_ obs ->
      match decided obs with
      | [] | [ _ ] -> None
      | (n0, v0) :: rest ->
          List.find_map
            (fun (n, v) ->
              if equal v v0 then None
              else
                Some
                  ( Some n,
                    Fmt.str "decided %a, but %a decided %a" pp v Node_id.pp
                      n0 pp v0 ))
            rest)
    ()

let validity ?(name = "validity") ~ok () =
  stateless ~name
    ~on_round:(fun ~round:_ obs ->
      List.find_map
        (fun (n, v) ->
          if ok n v then None else Some (Some n, "decision violates validity"))
        (decided obs))
    ()

let laggards ~deadline ~round ~ok obs =
  if round < deadline then None
  else
    List.find_map
      (fun o ->
        if o.down || ok o then None
        else Some (Some o.node, Fmt.str "no progress by round %d" deadline))
      obs

let termination_by ~round:deadline () =
  stateless ~name:"termination"
    ~on_round:(fun ~round obs ->
      laggards ~deadline ~round ~ok:(fun o -> o.halted_at <> None) obs)
    ()

let progress_by ~name ~round:deadline ~ok () =
  stateless ~name ~on_round:(fun ~round obs -> laggards ~deadline ~round ~ok obs) ()

let unforgeable ?(name = "rb-unforgeability") ~keys ~forged
    ?(pp_key = fun ppf _ -> Fmt.string ppf "<entry>") () =
  stateless ~name
    ~on_round:(fun ~round:_ obs ->
      List.find_map
        (fun o ->
          match o.output with
          | None -> None
          | Some out ->
              List.find_map
                (fun k ->
                  if forged k then
                    Some (Some o.node, Fmt.str "accepted forged %a" pp_key k)
                  else None)
                (keys out))
        obs)
    ()

let accept_relay ?(name = "rb-relay") ~keys () () =
  (* first observation round of each key, across all non-excused nodes *)
  let first_seen = Hashtbl.create 16 in
  {
    i_name = name;
    i_event = None;
    i_round =
      Some
        (fun ~round obs ->
          let key_lists =
            List.map
              (fun o ->
                (o, match o.output with None -> [] | Some out -> keys out))
              obs
          in
          List.iter
            (fun (_, ks) ->
              List.iter
                (fun k ->
                  if not (Hashtbl.mem first_seen k) then
                    Hashtbl.add first_seen k round)
                ks)
            key_lists;
          List.find_map
            (fun (o, ks) ->
              if o.down then None
              else
                Hashtbl.fold
                  (fun k r0 acc ->
                    match acc with
                    | Some _ -> acc
                    | None ->
                        if r0 < round && o.joined_at <= r0 && not (List.mem k ks)
                        then
                          Some
                            ( Some o.node,
                              Fmt.str
                                "an entry accepted elsewhere in round %d has \
                                 not been relayed here by round %d"
                                r0 round )
                        else None)
                  first_seen None)
            key_lists);
  }

let no_send_after_halt () () =
  let halted = Hashtbl.create 16 in
  {
    i_name = "no-send-after-halt";
    i_round = None;
    i_event =
      Some
        (fun (e : Trace.event) ->
          match (e.kind, e.node) with
          | Trace.Halt, Some n ->
              Hashtbl.replace halted n ();
              None
          | Trace.Send, Some n when Hashtbl.mem halted n ->
              Some (Some n, "sent a message after halting")
          | _ -> None);
  }
