(** Online safety monitors.

    A monitor watches a run {e while it unfolds} — fed a per-node
    observation after every round and (via {!Ubpa_sim.Trace.subscribe})
    every trace event as it is recorded — and records the first violation
    of each invariant with its round, node and invariant name. Tests and
    the chaos harness read the verdict instead of discovering divergence
    at end-of-run assertion time; a violation is a report, never an
    assertion failure.

    The monitor is polymorphic in the protocol's output type ['o], so one
    library serves every [Protocol.S] instantiation. Nodes in the
    [excused] set — typically the fault plan's victims, which the paper's
    theorems say nothing about — are invisible to every invariant. *)

open Ubpa_util

type violation = {
  invariant : string;
  round : int;
  node : Node_id.t option;
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** What the harness reports about one correct node after a round. *)
type 'o node_obs = {
  node : Node_id.t;
  joined_at : int;
  halted_at : int option;
  down : bool;  (** An injected crash/leave is currently in effect. *)
  output : 'o option;  (** Latest output, final iff [halted_at] is set. *)
}

type 'o invariant
(** A named predicate over a run, instantiated fresh (with fresh internal
    state) for each {!create}. *)

type 'o t

val create : ?excused:Node_id.Set.t -> 'o invariant list -> 'o t

val observe : 'o t -> round:int -> 'o node_obs list -> unit
(** Feed the end-of-round snapshot. Each invariant fires at most once. *)

val observe_event : 'o t -> Ubpa_sim.Trace.event -> unit
(** Feed one trace event; pass this to [Trace.subscribe]. *)

val violations : 'o t -> violation list
(** In order of detection; at most one per invariant. *)

val first_violation : 'o t -> violation option
val all_green : 'o t -> bool

(** {2 Invariants}

    Round-based checks only look at {e halted} nodes' outputs unless
    stated otherwise, so protocols that stream provisional [Deliver]
    outputs are not flagged mid-convergence. *)

val agreement :
  ?name:string -> ?pp:(Format.formatter -> 'o -> unit) ->
  equal:('o -> 'o -> bool) -> unit -> 'o invariant
(** No two halted nodes decided differently. *)

val validity :
  ?name:string -> ok:(Node_id.t -> 'o -> bool) -> unit -> 'o invariant
(** Every halted node's decision satisfies [ok]. *)

val termination_by : round:int -> unit -> 'o invariant
(** From round [round] on, every node that is not down must have halted.
    Fires only if the run actually reaches that round. *)

val progress_by :
  name:string -> round:int -> ok:('o node_obs -> bool) -> unit ->
  'o invariant
(** Like {!termination_by} for protocols that never halt (e.g. reliable
    broadcast): from round [round] on, every node that is not down must
    satisfy [ok]. *)

val unforgeable :
  ?name:string -> keys:('o -> 'k list) -> forged:('k -> bool) ->
  ?pp_key:(Format.formatter -> 'k -> unit) -> unit -> 'o invariant
(** No node's output (halted or not) ever contains a [forged] entry —
    RB-unforgeability with [keys] extracting the accepted
    [(payload, sender)] pairs. *)

val accept_relay :
  ?name:string -> keys:('o -> 'k list) -> unit -> 'o invariant
(** RB-relay: once any observed node's output contains a key (first seen
    in observation round [r]), every node that is not down and joined by
    [r] must contain it from round [r+1] on. Keys are compared
    structurally. *)

val no_send_after_halt : unit -> 'o invariant
(** Event-based engine sanity: a node never emits a [Send] after its
    [Halt]. *)

val custom :
  name:string ->
  ?on_round:(round:int -> 'o node_obs list -> (Node_id.t option * string) option) ->
  ?on_event:(Ubpa_sim.Trace.event -> (Node_id.t option * string) option) ->
  unit ->
  'o invariant
(** Escape hatch: return [Some (node, detail)] to fire. The callbacks see
    observations with excused nodes already removed. *)
