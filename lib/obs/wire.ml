open Ubpa_util

type count = { msgs : int; bits : int }

type t = {
  mutable total : count;
  rounds : (int, count) Hashtbl.t;
  nodes : (int, count) Hashtbl.t; (* recipient, keyed by Node_id.to_int *)
  senders : (int, count) Hashtbl.t; (* sender, keyed by Node_id.to_int *)
  kinds : (string, count) Hashtbl.t;
}

let create () =
  {
    total = { msgs = 0; bits = 0 };
    rounds = Hashtbl.create 32;
    nodes = Hashtbl.create 32;
    senders = Hashtbl.create 32;
    kinds = Hashtbl.create 8;
  }

let bump tbl key bits =
  let prior =
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None -> { msgs = 0; bits = 0 }
  in
  Hashtbl.replace tbl key { msgs = prior.msgs + 1; bits = prior.bits + bits }

let record t ~round ~sender ~recipient ~kind ~bits =
  t.total <- { msgs = t.total.msgs + 1; bits = t.total.bits + bits };
  bump t.rounds round bits;
  bump t.nodes (Node_id.to_int recipient) bits;
  bump t.senders (Node_id.to_int sender) bits;
  bump t.kinds kind bits

let messages t = t.total.msgs
let bits t = t.total.bits

let sorted_bindings tbl cmp =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let per_round t = sorted_bindings t.rounds Int.compare

let per_node t =
  List.map
    (fun (k, v) -> (Node_id.of_int k, v))
    (sorted_bindings t.nodes Int.compare)

let per_sender t =
  List.map
    (fun (k, v) -> (Node_id.of_int k, v))
    (sorted_bindings t.senders Int.compare)

let per_kind t = sorted_bindings t.kinds String.compare

let zero = { msgs = 0; bits = 0 }

let received_by t id =
  Option.value ~default:zero (Hashtbl.find_opt t.nodes (Node_id.to_int id))

let sent_by t id =
  Option.value ~default:zero (Hashtbl.find_opt t.senders (Node_id.to_int id))

(* Per-node bit budget: what node [id] put on the wire plus what the wire
   delivered to it. This is the per-processor cost the sub-quadratic
   experiments bound — a node that only receives still pays for every
   accepted delivery, and a committee member that fans a report out to
   Θ(n/√n · log n) samplers pays on the send side. *)
let budget_of t id =
  let r = received_by t id and s = sent_by t id in
  { msgs = r.msgs + s.msgs; bits = r.bits + s.bits }

let max_budget t =
  let ids =
    List.sort_uniq Int.compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) t.nodes []
      @ Hashtbl.fold (fun k _ acc -> k :: acc) t.senders [])
  in
  List.fold_left
    (fun acc k ->
      let b = budget_of t (Node_id.of_int k) in
      if b.bits > acc.bits then b else acc)
    zero ids

let equal a b =
  a.total = b.total
  && per_round a = per_round b
  && sorted_bindings a.nodes Int.compare = sorted_bindings b.nodes Int.compare
  && sorted_bindings a.senders Int.compare
     = sorted_bindings b.senders Int.compare
  && per_kind a = per_kind b

let pp ppf t =
  Format.fprintf ppf "wire: %d msgs, %d bits%a" t.total.msgs t.total.bits
    (fun ppf kinds ->
      List.iter
        (fun (k, c) -> Format.fprintf ppf " %s=%d/%db" k c.msgs c.bits)
        kinds)
    (per_kind t)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let count_json c : Json.t = `List [ `Int c.msgs; `Int c.bits ]

let to_json t : Json.t =
  let id_rows assoc =
    `List
      (List.map
         (fun (id, c) ->
           `List [ `Int (Node_id.to_int id); `Int c.msgs; `Int c.bits ])
         assoc)
  in
  `Assoc
    [
      ("msgs", `Int t.total.msgs);
      ("bits", `Int t.total.bits);
      ( "per_round",
        `List
          (List.map
             (fun (r, c) -> `List [ `Int r; `Int c.msgs; `Int c.bits ])
             (per_round t)) );
      ("per_node", id_rows (per_node t));
      ("per_sender", id_rows (per_sender t));
      ("per_kind", `Assoc (List.map (fun (k, c) -> (k, count_json c)) (per_kind t)));
    ]

let of_json (j : Json.t) =
  let ( let* ) = Result.bind in
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Wire.of_json: missing int %S" name)
  in
  let triple_list name =
    match Option.bind (Json.member name j) Json.to_list with
    | None -> Error (Printf.sprintf "Wire.of_json: missing list %S" name)
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Option.map (List.filter_map Json.to_int) (Json.to_list item) with
            | Some [ k; msgs; bits ] -> Ok ((k, { msgs; bits }) :: acc)
            | _ -> Error (Printf.sprintf "Wire.of_json: bad %S row" name))
          (Ok []) items
        |> Result.map List.rev
  in
  let* msgs = int_field "msgs" in
  let* bits = int_field "bits" in
  let* rounds = triple_list "per_round" in
  let* nodes = triple_list "per_node" in
  (* Wire JSON written before the per-sender breakdown existed has no
     "per_sender" field; load it with empty sender counters rather than
     rejecting the document. *)
  let* senders =
    match Json.member "per_sender" j with
    | None -> Ok []
    | Some _ -> triple_list "per_sender"
  in
  let* kinds =
    match Json.member "per_kind" j with
    | Some (`Assoc fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Option.map (List.filter_map Json.to_int) (Json.to_list v) with
            | Some [ m; b ] -> Ok ((k, { msgs = m; bits = b }) :: acc)
            | _ -> Error (Printf.sprintf "Wire.of_json: bad kind %S" k))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error "Wire.of_json: missing \"per_kind\""
  in
  let t = create () in
  t.total <- { msgs; bits };
  List.iter (fun (r, c) -> Hashtbl.replace t.rounds r c) rounds;
  List.iter (fun (n, c) -> Hashtbl.replace t.nodes n c) nodes;
  List.iter (fun (s, c) -> Hashtbl.replace t.senders s c) senders;
  List.iter (fun (k, c) -> Hashtbl.replace t.kinds k c) kinds;
  Ok t
