(** Structural wire-size model.

    The paper's bit-complexity bounds need every delivered message priced
    in bits, but the protocols exchange plain OCaml values — there is no
    real codec. This module defines the repo's {e reference encoding}: a
    deterministic, compiler-independent cost model applied to the value's
    structure, used as the default for {!Ubpa_sim.Protocol.S.encoded_bits}.

    The model (documented in [docs/OBSERVABILITY.md]):

    - an immediate (int, bool, char, constant constructor, unit): 64 bits
      — one machine word on the wire, the same convention the paper's
      O(n·b) bounds use for a b-bit value;
    - a non-constant constructor / record / tuple: an 8-bit tag plus the
      cost of every field;
    - a float: 64 bits (plus the 8-bit tag of the box it sits in);
    - a string: a 64-bit length header plus 8 bits per byte;
    - a flat float array: a 64-bit length header plus 64 bits per element;
    - boxed [int32]/[int64]/[nativeint]: 64 bits.

    The traversal follows the runtime representation, so the result is a
    pure function of the value's structure — identical on OCaml 4.14 and
    5.x, on any architecture, at any [--jobs] level. That determinism is
    what lets bit counts live in committed benchmark baselines.

    The model deliberately over-prices small payloads (a [bool] costs a
    word, not one bit); protocols for which that skews a paper bound
    override [encoded_bits] with a hand-written sizer instead
    (e.g. {!Unknown_ba.Binary_consensus}). *)

val word_bits : int
(** Bits charged per immediate value (64). *)

val tag_bits : int
(** Bits charged per non-constant constructor tag (8). *)

val structural_bits : 'a -> int
(** The reference-encoding size of a value, in bits. Total on any acyclic
    pure-data value; messages handed to the engine are exactly that. *)
