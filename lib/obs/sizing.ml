let word_bits = 64
let tag_bits = 8

(* Walk the runtime representation. Messages are immutable pure data
   (required by Protocol.S), so the traversal terminates; sharing is
   deliberately not detected — a value sent twice costs twice. *)
let rec obj_bits (r : Obj.t) : int =
  if Obj.is_int r then word_bits
  else
    let tag = Obj.tag r in
    if tag = Obj.double_tag then tag_bits + word_bits
    else if tag = Obj.string_tag then
      word_bits + (8 * String.length (Obj.obj r : string))
    else if tag = Obj.double_array_tag then
      word_bits + (word_bits * Obj.size r)
    else if tag = Obj.custom_tag then
      (* int32 / int64 / nativeint boxes; priced as one word. *)
      word_bits
    else if tag < Obj.no_scan_tag then begin
      let acc = ref tag_bits in
      for i = 0 to Obj.size r - 1 do
        acc := !acc + obj_bits (Obj.field r i)
      done;
      !acc
    end
    else
      (* Remaining no-scan blocks (abstract data): price the payload as
         opaque words. Protocol messages never get here. *)
      word_bits + (word_bits * Obj.size r)

let structural_bits v = obj_bits (Obj.repr v)
