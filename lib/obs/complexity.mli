(** Asymptotic-envelope fitting for measured complexity curves.

    The paper states message/bit bounds as O(n^k); an experiment measures
    concrete counts along an [n]-sweep. A {!fit} turns those points into a
    machine-checkable verdict: calibrate the constant [c] on the smallest
    sweep point, then require

    - {b envelope}: every measured point stays within
      [headroom * c * n^k], and
    - {b slope}: the least-squares slope of [log y] against [log n] does
      not exceed [k + slope_tol] — growth genuinely of a lower or equal
      order, not just a generous constant.

    Both must hold for [holds]. Fits are serialized into the benchmark
    artifact's [complexity] block (schema [ubpa-bench/2]) and mirrored as
    pass/fail claims, so the asymptotics are regression-gated exactly like
    the correctness claims. *)

type fit = {
  name : string;  (** e.g. ["rb.msgs"]. *)
  exponent : int;  (** [k] in the [c * n^k] envelope. *)
  headroom : float;  (** Allowed multiple of the calibrated envelope. *)
  constant : float;  (** [c], calibrated on the smallest-[n] point. *)
  slope : float;  (** Least-squares log-log slope of the points. *)
  points : (int * float) list;  (** [(n, measured)], ascending in [n]. *)
  holds : bool;
}

val fit :
  name:string ->
  exponent:int ->
  ?headroom:float ->
  ?slope_tol:float ->
  (int * float) list ->
  fit
(** [headroom] defaults to 2.0, [slope_tol] to 0.35. Points are sorted by
    [n]; at least two distinct [n] values with positive measurements are
    required for the slope to be meaningful — with fewer, [holds] is the
    envelope check alone. *)

val pp : Format.formatter -> fit -> unit
val to_json : fit -> Ubpa_util.Json.t
val of_json : Ubpa_util.Json.t -> (fit, string) result
