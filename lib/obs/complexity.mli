(** Asymptotic-envelope fitting for measured complexity curves.

    The paper states message/bit bounds as O(n^k) — and, for the
    committee-sampling protocols, Õ(√n) per processor; an experiment
    measures concrete counts along an [n]-sweep. A {!fit} turns those
    points into a machine-checkable verdict: calibrate the constant [c]
    on the smallest sweep point, then require

    - {b envelope}: every measured point stays within
      [headroom * c * model(n)], and
    - {b slope}: the least-squares slope of [log y] against [log n] does
      not exceed the model's admissible slope plus [slope_tol] — growth
      genuinely of a lower or equal order, not just a generous constant.

    Both must hold for [holds]. For a polynomial the admissible slope is
    the exponent; [Sqrt_polylog] has no constant log-log slope, so its
    bound is the model's own secant slope between the smallest and
    largest swept [n]. Fits are serialized into the benchmark artifact's
    [complexity] block (schema [ubpa-bench/2]) and mirrored as pass/fail
    claims, so the asymptotics are regression-gated exactly like the
    correctness claims. *)

type shape =
  | Poly of int  (** [c * n^k] — the classic dense-protocol envelope. *)
  | Sqrt_polylog of int
      (** [c * sqrt(n) * (log2 n)^p] — the sub-quadratic per-node budget
          of the committee-sampling protocols (experiment CX2). *)

type fit = {
  name : string;  (** e.g. ["rb.msgs"] or ["committee.node-bits"]. *)
  shape : shape;  (** Model the envelope is calibrated against. *)
  headroom : float;  (** Allowed multiple of the calibrated envelope. *)
  constant : float;  (** [c], calibrated on the smallest-[n] point. *)
  slope : float;  (** Least-squares log-log slope of the points. *)
  points : (int * float) list;  (** [(n, measured)], ascending in [n]. *)
  holds : bool;
}

val shape_label : shape -> string
(** Human-readable model, e.g. ["O(n^2)"] or ["O(sqrt(n)*log^2 n)"]. *)

val model_value : shape -> int -> float
(** The un-scaled model evaluated at [n]. *)

val fit :
  name:string ->
  exponent:int ->
  ?headroom:float ->
  ?slope_tol:float ->
  (int * float) list ->
  fit
(** Polynomial fit: [fit_shape] with [Poly exponent]. [headroom] defaults
    to 2.0, [slope_tol] to 0.35. Points are sorted by [n]; at least two
    distinct [n] values with positive measurements are required for the
    slope to be meaningful — with fewer, [holds] is the envelope check
    alone. *)

val fit_shape :
  name:string ->
  shape:shape ->
  ?headroom:float ->
  ?slope_tol:float ->
  (int * float) list ->
  fit
(** General form of {!fit} for non-polynomial envelopes. *)

val pp : Format.formatter -> fit -> unit
val to_json : fit -> Ubpa_util.Json.t

val of_json : Ubpa_util.Json.t -> (fit, string) result
(** Documents written before non-polynomial shapes carry only the integer
    ["exponent"]; a missing ["shape"] field loads as [Poly]. *)
