open Ubpa_util

type shape = Poly of int | Sqrt_polylog of int

type fit = {
  name : string;
  shape : shape;
  headroom : float;
  constant : float;
  slope : float;
  points : (int * float) list;
  holds : bool;
}

let shape_label = function
  | Poly k -> Printf.sprintf "O(n^%d)" k
  | Sqrt_polylog p ->
      if p = 0 then "O(sqrt(n))" else Printf.sprintf "O(sqrt(n)*log^%d n)" p

let model_value shape n =
  let nf = float_of_int n in
  match shape with
  | Poly k -> nf ** float_of_int k
  | Sqrt_polylog p ->
      (* log₂; any fixed base only moves the calibrated constant. *)
      sqrt nf *. (log nf /. log 2.) ** float_of_int p

(* Least-squares slope of log y over log n, over points with n > 1 aggregated
   per distinct n. Returns 0. when fewer than two usable points exist. *)
let loglog_slope points =
  let pts =
    List.filter_map
      (fun (n, y) ->
        if n > 0 && y > 0. then Some (log (float_of_int n), log y) else None)
      points
  in
  match pts with
  | [] | [ _ ] -> 0.
  | pts ->
      let len = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
      let denom = (len *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then 0.
      else ((len *. sxy) -. (sx *. sy)) /. denom

(* The admissible log-log slope of a shape over the swept range. A
   polynomial's is its exponent everywhere; sqrt·polylog has no constant
   slope, so bound by the model's own secant between the smallest and
   largest swept n — the steepest the model itself grows on that range. *)
let model_slope shape points =
  match shape with
  | Poly k -> float_of_int k
  | Sqrt_polylog _ -> (
      let ns =
        List.filter_map (fun (n, _) -> if n > 1 then Some n else None) points
        |> List.sort_uniq Int.compare
      in
      match ns with
      | [] | [ _ ] -> 0.5
      | n0 :: _ ->
          let n1 = List.nth ns (List.length ns - 1) in
          let y0 = model_value shape n0 and y1 = model_value shape n1 in
          (log y1 -. log y0) /. (log (float_of_int n1) -. log (float_of_int n0))
      )

let fit_shape ~name ~shape ?(headroom = 2.0) ?(slope_tol = 0.35) points =
  let points = List.sort (fun (a, _) (b, _) -> Int.compare a b) points in
  let constant =
    match points with
    | (n, y) :: _ when n > 1 -> y /. model_value shape n
    | _ -> 0.
  in
  let envelope_ok =
    points <> []
    && List.for_all
         (fun (n, y) -> y <= headroom *. constant *. model_value shape n)
         points
  in
  let slope = loglog_slope points in
  let distinct_ns =
    List.sort_uniq Int.compare (List.map fst points) |> List.length
  in
  let slope_ok = distinct_ns < 2 || slope <= model_slope shape points +. slope_tol in
  let holds = envelope_ok && slope_ok in
  { name; shape; headroom; constant; slope; points; holds }

let fit ~name ~exponent ?headroom ?slope_tol points =
  fit_shape ~name ~shape:(Poly exponent) ?headroom ?slope_tol points

let pp ppf f =
  Format.fprintf ppf "%s: %s %s (c=%.3f slope=%.2f headroom=%.1f)" f.name
    (shape_label f.shape)
    (if f.holds then "holds" else "VIOLATED")
    f.constant f.slope f.headroom

let shape_to_json = function
  | Poly k -> [ ("exponent", `Int k) ]
  | Sqrt_polylog p ->
      [ ("shape", `String "sqrt_polylog"); ("exponent", `Int p) ]

let to_json f : Json.t =
  `Assoc
    (("name", `String f.name)
     :: shape_to_json f.shape
    @ [
        ("headroom", `Float f.headroom);
        ("constant", `Float f.constant);
        ("slope", `Float f.slope);
        ( "points",
          `List
            (List.map (fun (n, y) -> `List [ `Int n; `Float y ]) f.points) );
        ("holds", `Bool f.holds);
      ])

let of_json (j : Json.t) =
  let ( let* ) = Result.bind in
  let* name =
    match Option.bind (Json.member "name" j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error "Complexity.of_json: missing \"name\""
  in
  let* exponent =
    match Option.bind (Json.member "exponent" j) Json.to_int with
    | Some i -> Ok i
    | None -> Error "Complexity.of_json: missing \"exponent\""
  in
  (* Fits written before non-polynomial shapes existed carry only the
     integer "exponent"; absent "shape" means Poly. *)
  let* shape =
    match Option.bind (Json.member "shape" j) Json.to_string_opt with
    | None | Some "poly" -> Ok (Poly exponent)
    | Some "sqrt_polylog" -> Ok (Sqrt_polylog exponent)
    | Some other ->
        Error (Printf.sprintf "Complexity.of_json: unknown shape %S" other)
  in
  let float_field field =
    match Option.bind (Json.member field j) Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "Complexity.of_json: missing %S" field)
  in
  let* headroom = float_field "headroom" in
  let* constant = float_field "constant" in
  let* slope = float_field "slope" in
  let* points =
    match Option.bind (Json.member "points" j) Json.to_list with
    | None -> Error "Complexity.of_json: missing \"points\""
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_list item with
            | Some [ n; y ] -> (
                match (Json.to_int n, Json.to_float y) with
                | Some n, Some y -> Ok ((n, y) :: acc)
                | _ -> Error "Complexity.of_json: bad point")
            | _ -> Error "Complexity.of_json: bad point")
          (Ok []) items
        |> Result.map List.rev
  in
  let* holds =
    match Option.bind (Json.member "holds" j) Json.to_bool with
    | Some b -> Ok b
    | None -> Error "Complexity.of_json: missing \"holds\""
  in
  Ok { name; shape; headroom; constant; slope; points; holds }
