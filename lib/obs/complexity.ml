open Ubpa_util

type fit = {
  name : string;
  exponent : int;
  headroom : float;
  constant : float;
  slope : float;
  points : (int * float) list;
  holds : bool;
}

(* Least-squares slope of log y over log n, over points with n > 1 aggregated
   per distinct n. Returns 0. when fewer than two usable points exist. *)
let loglog_slope points =
  let pts =
    List.filter_map
      (fun (n, y) ->
        if n > 0 && y > 0. then Some (log (float_of_int n), log y) else None)
      points
  in
  match pts with
  | [] | [ _ ] -> 0.
  | pts ->
      let len = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
      let denom = (len *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-12 then 0.
      else ((len *. sxy) -. (sx *. sy)) /. denom

let fit ~name ~exponent ?(headroom = 2.0) ?(slope_tol = 0.35) points =
  let points = List.sort (fun (a, _) (b, _) -> Int.compare a b) points in
  let pow n = float_of_int n ** float_of_int exponent in
  let constant =
    match points with
    | (n, y) :: _ when n > 0 -> y /. pow n
    | _ -> 0.
  in
  let envelope_ok =
    points <> []
    && List.for_all (fun (n, y) -> y <= headroom *. constant *. pow n) points
  in
  let slope = loglog_slope points in
  let distinct_ns =
    List.sort_uniq Int.compare (List.map fst points) |> List.length
  in
  let slope_ok =
    distinct_ns < 2 || slope <= float_of_int exponent +. slope_tol
  in
  let holds = envelope_ok && slope_ok in
  { name; exponent; headroom; constant; slope; points; holds }

let pp ppf f =
  Format.fprintf ppf "%s: O(n^%d) %s (c=%.3f slope=%.2f headroom=%.1f)" f.name
    f.exponent
    (if f.holds then "holds" else "VIOLATED")
    f.constant f.slope f.headroom

let to_json f : Json.t =
  `Assoc
    [
      ("name", `String f.name);
      ("exponent", `Int f.exponent);
      ("headroom", `Float f.headroom);
      ("constant", `Float f.constant);
      ("slope", `Float f.slope);
      ( "points",
        `List
          (List.map (fun (n, y) -> `List [ `Int n; `Float y ]) f.points) );
      ("holds", `Bool f.holds);
    ]

let of_json (j : Json.t) =
  let ( let* ) = Result.bind in
  let* name =
    match Option.bind (Json.member "name" j) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error "Complexity.of_json: missing \"name\""
  in
  let* exponent =
    match Option.bind (Json.member "exponent" j) Json.to_int with
    | Some i -> Ok i
    | None -> Error "Complexity.of_json: missing \"exponent\""
  in
  let float_field field =
    match Option.bind (Json.member field j) Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "Complexity.of_json: missing %S" field)
  in
  let* headroom = float_field "headroom" in
  let* constant = float_field "constant" in
  let* slope = float_field "slope" in
  let* points =
    match Option.bind (Json.member "points" j) Json.to_list with
    | None -> Error "Complexity.of_json: missing \"points\""
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_list item with
            | Some [ n; y ] -> (
                match (Json.to_int n, Json.to_float y) with
                | Some n, Some y -> Ok ((n, y) :: acc)
                | _ -> Error "Complexity.of_json: bad point")
            | _ -> Error "Complexity.of_json: bad point")
          (Ok []) items
        |> Result.map List.rev
  in
  let* holds =
    match Option.bind (Json.member "holds" j) Json.to_bool with
    | Some b -> Ok b
    | None -> Error "Complexity.of_json: missing \"holds\""
  in
  Ok { name; exponent; headroom; constant; slope; points; holds }
