(** Wire-level delivery accounting.

    One accumulator per network run: every envelope a delivery core
    accepts (post-dedup — a dropped duplicate never crossed the model's
    wire twice) is recorded here with its recipient, round, message kind,
    and encoded size in bits. Receive-omission faults are applied {e
    after} routing, so wire counts include messages a faulty receiver
    subsequently dropped: the message was transmitted either way.

    Counters are totals plus three breakdowns — per round, per recipient
    node, per message kind — each a [(messages, bits)] pair. Both delivery
    cores feed the same accumulator through the same hook, which is what
    makes {!equal} a meaningful cross-core identity check (claim-gated in
    experiment CX1, like delivery counts before it). *)

open Ubpa_util

type t

type count = { msgs : int; bits : int }

val create : unit -> t
val record : t -> round:int -> recipient:Node_id.t -> kind:string -> bits:int -> unit

val messages : t -> int
(** Total deliveries recorded (equals the sum of any breakdown). *)

val bits : t -> int
(** Total bits delivered. *)

val per_round : t -> (int * count) list
(** Ascending by round. *)

val per_node : t -> (Node_id.t * count) list
(** Ascending by recipient id. *)

val per_kind : t -> (string * count) list
(** Ascending by kind. Kinds come from the network's [classify] function;
    ["msg"] when none was given. *)

val equal : t -> t -> bool
(** Totals and all three breakdowns agree. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
