(** Wire-level delivery accounting.

    One accumulator per network run: every envelope a delivery core
    accepts (post-dedup — a dropped duplicate never crossed the model's
    wire twice) is recorded here with its sender, recipient, round,
    message kind, and encoded size in bits. Receive-omission faults are
    applied {e after} routing, so wire counts include messages a faulty
    receiver subsequently dropped: the message was transmitted either way.

    Counters are totals plus four breakdowns — per round, per recipient
    node, per sender node, per message kind — each a [(messages, bits)]
    pair. Both directions matter for per-processor budgets: a broadcast
    costs its sender one send but every present recipient one delivery,
    while a sparse unicast fan-out (the committee protocols) bills the
    sender once per addressed peer. All delivery cores feed the same
    accumulator through the same hook, which is what makes {!equal} a
    meaningful cross-core identity check (claim-gated in experiments CX1
    and CX2, like delivery counts before it). *)

open Ubpa_util

type t

type count = { msgs : int; bits : int }

val create : unit -> t

val record :
  t ->
  round:int ->
  sender:Node_id.t ->
  recipient:Node_id.t ->
  kind:string ->
  bits:int ->
  unit

val messages : t -> int
(** Total deliveries recorded (equals the sum of any breakdown). *)

val bits : t -> int
(** Total bits delivered. *)

val per_round : t -> (int * count) list
(** Ascending by round. *)

val per_node : t -> (Node_id.t * count) list
(** Ascending by recipient id. *)

val per_sender : t -> (Node_id.t * count) list
(** Ascending by sender id. A broadcast accepted by [k] recipients
    contributes [k] to its sender — wire accounting prices what actually
    crossed the wire, and a broadcast in the model is [k] point-to-point
    transmissions (see docs/OBSERVABILITY.md on sparse-send semantics). *)

val per_kind : t -> (string * count) list
(** Ascending by kind. Kinds come from the network's [classify] function;
    ["msg"] when none was given. *)

val received_by : t -> Node_id.t -> count
(** This node's recipient-side counters; zero when it never received. *)

val sent_by : t -> Node_id.t -> count
(** This node's sender-side counters; zero when it never sent. *)

val budget_of : t -> Node_id.t -> count
(** Per-node bit budget: sent plus received — the per-processor cost the
    sub-quadratic experiments (CX2) bound against √n·polylog envelopes. *)

val max_budget : t -> count
(** The largest per-node budget over every node that sent or received;
    the budget whose [bits] component is maximal. *)

val equal : t -> t -> bool
(** Totals and all four breakdowns agree. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Accepts documents written before the per-sender breakdown existed
    (their sender counters load empty). *)
