(** Shared experiment-runner layer.

    Every consumer of the engine — the scenario library, the benchmark
    suite, the CLI — needs the same scaffolding: scatter node identifiers,
    split them into correct and Byzantine populations, build a network,
    drive it, and collect rounds / delivery counts / outputs into a
    summary. This module is the single copy of that scaffolding.

    {!Make.execute} covers the common shapes (run to halt, run until a
    predicate, plus optional settle rounds). Experiments that drive rounds
    by hand — dynamic-membership loops, stimulus-driven churn — build the
    network with {!Make.create}, loop with [Net.step_round] themselves, and
    snapshot the result with {!Make.collect}. *)

open Ubpa_util
open Ubpa_sim

val make_ids : seed:int64 -> int -> Node_id.t list
(** [n] well-spread node identifiers (deterministic in [seed]). *)

val max_f : int -> int
(** Largest [f] with [n > 3f]. *)

val split_population :
  seed:int64 -> n_correct:int -> n_byz:int -> Node_id.t list * Node_id.t list
(** One scattered id population, first [n_correct] ids correct, the rest
    Byzantine. *)

module Make (P : Protocol.S) : sig
  module Net : module type of Network.Make (P)

  type finished =
    [ `All_halted
    | `Max_rounds_reached of Node_id.t list
      (** Carries the correct nodes that never halted. *)
    | `No_correct_nodes
    | `Stopped ]

  type outcome = {
    finished : finished;
    rounds : int;  (** Rounds executed. *)
    delivered_msgs : int;  (** Deduplicated deliveries, whole run. *)
    outputs : (Node_id.t * P.output) list;
        (** Correct nodes that produced an output, with their latest. *)
    reports : Net.node_report list;
    metrics : Metrics.t;
    net : Net.t;  (** The network itself, for ad-hoc inspection. *)
  }

  val create :
    ?rushing:bool ->
    ?delivery:Delivery.impl ->
    ?wire_accounting:bool ->
    ?seed:int64 ->
    ?faults:Ubpa_faults.plan ->
    ?trace:Trace.t ->
    ?classify:(P.message -> string) ->
    ?stimulus:(round:int -> Node_id.t -> P.stimulus list) ->
    correct:(Node_id.t * P.input) list ->
    byzantine:(Node_id.t * P.message Strategy.t) list ->
    unit ->
    Net.t
  (** [Net.create], re-exported so hand-driven experiments need only this
      module. *)

  val collect : Net.t -> finished:finished -> outcome
  (** Snapshot a (finished) network into an {!outcome}. *)

  val observations : Net.t -> P.output Ubpa_monitor.node_obs list
  (** The per-node snapshot {!Ubpa_monitor.observe} expects, derived from
      [Net.reports]. *)

  val observe : P.output Ubpa_monitor.t -> Net.t -> unit
  (** Feed the network's current state to a monitor — what hand-driven
      round loops call after each [Net.step_round]. *)

  val execute :
    ?rushing:bool ->
    ?delivery:Delivery.impl ->
    ?wire_accounting:bool ->
    ?seed:int64 ->
    ?faults:Ubpa_faults.plan ->
    ?trace:Trace.t ->
    ?classify:(P.message -> string) ->
    ?stimulus:(round:int -> Node_id.t -> P.stimulus list) ->
    ?max_rounds:int ->
    ?stop:(Net.t -> bool) ->
    ?settle:int ->
    ?monitor:P.output Ubpa_monitor.t ->
    correct:(Node_id.t * P.input) list ->
    byzantine:(Node_id.t * P.message Strategy.t) list ->
    unit ->
    outcome
  (** Build, run, collect. Without [stop], runs until every correct node
      halts ([Net.run]); with [stop], until the predicate holds
      ([Net.run_until]). [settle] (default 0) executes that many extra
      rounds after the run ends — e.g. to let relay properties propagate —
      before collecting. [faults] is handed to [Net.create]. [monitor]
      switches to a hand-driven loop with the same semantics that feeds
      the monitor after every round (settle rounds included) and
      subscribes it to the trace — an enabled trace is created on the
      caller's behalf if none was supplied, so event-based invariants
      always see the run. *)
end
