(* Sequential fallback for runtimes without domains (OCaml 4.x): same
   interface and observable semantics as the multicore backend, one item
   at a time. *)

let parallel_available = false
let available_parallelism () = 1
let map ~jobs:_ f items = List.map f items
