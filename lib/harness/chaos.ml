open Ubpa_util
module F = Ubpa_faults

type schedule = {
  seed : int64;
  budget : int;
  victims : Node_id.t list;
  plan : F.plan;
}

(* Every fault starts at round >= 2: round 1 is when inputs circulate, and
   a node silenced from the very beginning is indistinguishable from one
   that never joined — a different (and less interesting) experiment. *)
let mixed_fault rng =
  match Rng.int rng 6 with
  | 0 -> F.crash ~at:(2 + Rng.int rng 5) ()
  | 1 ->
      let at = 2 + Rng.int rng 4 in
      F.crash ~at ~recover:(at + 1 + Rng.int rng 3) ()
  | 2 -> F.leave ~at:(2 + Rng.int rng 5) ()
  | 3 ->
      let at = 2 + Rng.int rng 4 in
      F.leave ~at ~rejoin:(at + 1 + Rng.int rng 3) ()
  | 4 ->
      let first = 2 + Rng.int rng 3 in
      F.send_omission ~first
        ~last:(first + 2 + Rng.int rng 4)
        ~prob:(0.5 +. Rng.float rng 0.5)
        ()
  | _ ->
      let first = 2 + Rng.int rng 3 in
      F.recv_omission ~first
        ~last:(first + 2 + Rng.int rng 4)
        ~prob:(0.5 +. Rng.float rng 0.5)
        ()

let schedule ?(style = `Mixed) ?(loss = 0.) ?(dup = 0.) ~seed ~correct_ids
    ~budget () =
  let rng = Rng.create seed in
  let budget = min budget (List.length correct_ids) in
  let victims =
    List.filteri (fun i _ -> i < budget) (Rng.shuffle rng correct_ids)
    |> Node_id.sorted
  in
  let node_faults =
    List.map
      (fun v ->
        ( v,
          [
            (match style with
            | `Mixed -> mixed_fault rng
            | `Crash_blackout -> F.crash ~at:2 ());
          ] ))
      victims
  in
  { seed; budget; victims; plan = F.make ~loss ~dup node_faults }

let within_envelope s ~n ~byz =
  F.benign_only s.plan && s.budget + byz <= (n - 1) / 3

type row = {
  protocol : string;
  budget : int;
  byz : int;
  n : int;
  within : bool;
  runs : int;
  green : int;
  violated : int;
  reported : int;
  sample : string;
}

let row ~protocol ~budget ~byz ~n ~within verdicts =
  let runs = List.length verdicts in
  let violations = List.filter_map Fun.id verdicts in
  let violated = runs - List.length (List.filter (( = ) None) verdicts) in
  let sample =
    match violations with
    | [] -> "-"
    | (v : Ubpa_monitor.violation) :: _ ->
        Printf.sprintf "%s@r%d" v.invariant v.round
  in
  {
    protocol;
    budget;
    byz;
    n;
    within;
    runs;
    green = runs - violated;
    violated;
    (* every violated run that handed us a report; by construction of the
       monitor these coincide, and the R1 claim checks exactly that *)
    reported = List.length violations;
    sample;
  }

let max_green_budget ~rows ~protocol =
  let mine =
    List.filter (fun r -> r.protocol = protocol) rows
    |> List.sort (fun a b -> compare a.budget b.budget)
  in
  List.fold_left
    (fun acc r ->
      match acc with
      | `Stopped best -> `Stopped best
      | `Scanning best ->
          if r.violated = 0 then `Scanning (Some r.budget) else `Stopped best)
    (`Scanning None) mine
  |> function
  | `Scanning best | `Stopped best -> best
