(** Backend for {!Pool}, chosen at build time by dune's [(select)]: on
    OCaml 5 (detected via the [runtime_events] library, which only exists
    there) the multicore implementation runs items on worker domains; on
    4.14 the sequential fallback keeps the same interface and semantics. *)

val parallel_available : bool
(** Whether this build can actually run items concurrently. *)

val available_parallelism : unit -> int
(** Domains the runtime recommends (1 on the sequential backend). *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item and returns the results
    in the order of [items], regardless of completion order. If any [f]
    raises, the exception of the lowest-indexed failing item is re-raised
    (with its backtrace) after all workers have drained — no worker is
    leaked. [jobs <= 1] degrades to [List.map]. *)
