(* Multicore backend: worker domains pull item indices from a shared
   atomic counter (self-balancing: a slow cell never blocks the others)
   and write results into an index-addressed array, so merge order is
   submission order whatever the completion order was. *)

let parallel_available = true
let available_parallelism () = Domain.recommended_domain_count ()

let map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let ix = Atomic.fetch_and_add next 1 in
        if ix < n then begin
          (results.(ix) <-
             Some
               (match f arr.(ix) with
               | v -> Ok v
               | exception e -> Error (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let others = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join others;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end
