open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) = struct
  module RT = Ubpa_runtime.Runner.Make (P)
  module H = Harness.Make (P)

  type check = { c_name : string; c_ok : bool; c_detail : string }

  type verdict = {
    v_run : RT.run;
    v_oracle : RT.Oracle.outcome;
    v_sim : H.outcome;
    v_checks : check list;
    v_ok : bool;
  }

  let eq_assoc eq a b =
    List.length a = List.length b
    && List.for_all2
         (fun (ia, va) (ib, vb) -> Node_id.equal ia ib && eq va vb)
         a b

  let check name ok detail =
    { c_name = name; c_ok = ok; c_detail = (if ok then "" else detail) }

  let compare_with_sim ?(equal_output = Stdlib.( = )) ?transport ?round_ms
      ?max_rounds ~correct () =
    match RT.run ?transport ?round_ms ?max_rounds ~correct () with
    | Error e -> Error e
    | Ok run ->
        let oracle = RT.replay run in
        let sim_trace = Trace.create () in
        let sim =
          H.execute ~trace:sim_trace ?max_rounds ~correct ~byzantine:[] ()
        in
        let rt_outputs =
          List.filter_map
            (fun (n : RT.node_summary) ->
              Option.map (fun o -> (n.RT.ns_id, o)) n.RT.ns_output)
            run.RT.r_nodes
        in
        let rt_decides =
          List.filter_map
            (fun (n : RT.node_summary) ->
              Option.map (fun r -> (n.RT.ns_id, r)) n.RT.ns_decide_round)
            run.RT.r_nodes
        in
        let sim_decides =
          List.filter_map
            (fun (r : H.Net.node_report) ->
              Option.map (fun d -> (r.H.Net.id, d)) r.H.Net.first_output_round)
            sim.H.reports
        in
        let checks =
          [
            check "oracle-replay" oracle.RT.Oracle.ok
              (match oracle.RT.Oracle.divergence with
              | Some d -> Fmt.str "%a" RT.Oracle.pp_divergence d
              | None -> "schedule replay diverged");
            check "decisions"
              (eq_assoc equal_output rt_outputs oracle.RT.Oracle.outputs
              && eq_assoc equal_output rt_outputs sim.H.outputs)
              (Fmt.str
                 "runtime %d / oracle %d / sim %d deciding node(s) or values \
                  differ"
                 (List.length rt_outputs)
                 (List.length oracle.RT.Oracle.outputs)
                 (List.length sim.H.outputs));
            check "decide-rounds"
              (eq_assoc ( = ) rt_decides oracle.RT.Oracle.decide_rounds
              && eq_assoc ( = ) rt_decides sim_decides)
              "first-output rounds differ between runtime, oracle and sim";
            check "rounds"
              (run.RT.r_rounds = sim.H.rounds
              && run.RT.r_rounds = oracle.RT.Oracle.rounds)
              (Fmt.str "executed rounds differ: runtime %d, oracle %d, sim %d"
                 run.RT.r_rounds oracle.RT.Oracle.rounds sim.H.rounds);
            check "trace"
              (Trace.equal_events run.RT.r_events (Trace.events sim_trace))
              (let d =
                 Trace.diff_events run.RT.r_events (Trace.events sim_trace)
               in
               match d.Trace.first_divergence with
               | Some (i, _, _) ->
                   Fmt.str "first trace divergence at event %d (%d vs %d events)"
                     i d.Trace.length_a d.Trace.length_b
               | None -> "trace streams differ");
            check "wire"
              (Ubpa_obs.Wire.equal run.RT.r_wire oracle.RT.Oracle.wire
              && Ubpa_obs.Wire.equal run.RT.r_wire (H.Net.wire sim.H.net))
              (Fmt.str
                 "wire accounting differs: runtime %d msgs / %d bits, oracle \
                  %d / %d, sim %d / %d"
                 (Ubpa_obs.Wire.messages run.RT.r_wire)
                 (Ubpa_obs.Wire.bits run.RT.r_wire)
                 (Ubpa_obs.Wire.messages oracle.RT.Oracle.wire)
                 (Ubpa_obs.Wire.bits oracle.RT.Oracle.wire)
                 (Ubpa_obs.Wire.messages (H.Net.wire sim.H.net))
                 (Ubpa_obs.Wire.bits (H.Net.wire sim.H.net)));
          ]
        in
        Ok
          {
            v_run = run;
            v_oracle = oracle;
            v_sim = sim;
            v_checks = checks;
            v_ok = List.for_all (fun c -> c.c_ok) checks;
          }

  type fault_verdict = {
    f_run : RT.run;
    f_oracle : RT.Oracle.outcome;
    f_survivors : Node_id.t list;
    f_checks : check list;
    f_ok : bool;
  }

  let run_with_faults ?(equal_output = Stdlib.( = )) ?transport ?round_ms
      ?max_rounds ?dead_after ~faults ~seed ~correct () =
    match
      RT.run ?transport ?round_ms ?max_rounds ~faults ~fault_seed:seed
        ?dead_after ~correct ()
    with
    | Error e -> Error e
    | Ok run ->
        let oracle = RT.replay ~delivered:true run in
        let victims =
          List.filter_map
            (fun (n : RT.node_summary) ->
              Option.map (fun _ -> n.RT.ns_id) n.RT.ns_crashed_at)
            run.RT.r_nodes
        in
        let survivors =
          List.filter_map
            (fun (n : RT.node_summary) ->
              if n.RT.ns_crashed_at = None then Some n else None)
            run.RT.r_nodes
        in
        let monitor_violations =
          let m =
            Ubpa_monitor.create
              ~excused:(Node_id.Set.of_list victims)
              [
                Ubpa_monitor.agreement ~equal:equal_output ();
                Ubpa_monitor.no_send_after_halt ();
              ]
          in
          List.iter (Ubpa_monitor.observe_event m) run.RT.r_events;
          Ubpa_monitor.observe m ~round:run.RT.r_rounds
            (List.map
               (fun (n : RT.node_summary) ->
                 {
                   Ubpa_monitor.node = n.RT.ns_id;
                   joined_at = 1;
                   halted_at = n.RT.ns_halted_at;
                   down = n.RT.ns_crashed_at <> None;
                   output = n.RT.ns_output;
                 })
               run.RT.r_nodes);
          Ubpa_monitor.violations m
        in
        let decided = List.filter (fun (n : RT.node_summary) -> n.RT.ns_output <> None) survivors in
        let rec pairwise_agree = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) -> equal_output a b && pairwise_agree rest
        in
        let survivor_outputs =
          List.filter_map (fun (n : RT.node_summary) -> n.RT.ns_output) survivors
        in
        (* The oracle's crashed-node view must match the runtime's crash
           ledger: every victim whose crash round the run reached is
           missing from the delivered schedule, and nothing else is. *)
        let crash_view_ok =
          let missing_ids = List.map fst oracle.RT.Oracle.missing in
          List.for_all
            (fun id -> List.exists (Node_id.equal id) victims)
            missing_ids
          && List.for_all
               (fun (n : RT.node_summary) ->
                 match n.RT.ns_crashed_at with
                 | Some at when at <= run.RT.r_rounds ->
                     List.exists (Node_id.equal n.RT.ns_id) missing_ids
                 | _ -> true)
               run.RT.r_nodes
        in
        let checks =
          [
            check "oracle-replay" oracle.RT.Oracle.ok
              (match oracle.RT.Oracle.divergence with
              | Some d -> Fmt.str "%a" RT.Oracle.pp_divergence d
              | None -> "delivered-schedule replay diverged");
            check "crash-view" crash_view_ok
              (Fmt.str
                 "oracle sees %d missing node(s), runtime crashed %d"
                 (List.length oracle.RT.Oracle.missing)
                 (List.length victims));
            check "monitors" (monitor_violations = [])
              (match monitor_violations with
              | v :: _ -> Fmt.str "%a" Ubpa_monitor.pp_violation v
              | [] -> "monitor violation");
            check "survivor-agreement"
              (pairwise_agree survivor_outputs)
              "two surviving correct nodes decided differently";
            check "survivors-decide"
              (List.length decided = List.length survivors)
              (Fmt.str "%d of %d surviving node(s) decided"
                 (List.length decided) (List.length survivors));
          ]
        in
        Ok
          {
            f_run = run;
            f_oracle = oracle;
            f_survivors =
              List.map (fun (n : RT.node_summary) -> n.RT.ns_id) survivors;
            f_checks = checks;
            f_ok = List.for_all (fun c -> c.c_ok) checks;
          }
end
