open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) = struct
  module RT = Ubpa_runtime.Runner.Make (P)
  module H = Harness.Make (P)

  type check = { c_name : string; c_ok : bool; c_detail : string }

  type verdict = {
    v_run : RT.run;
    v_oracle : RT.Oracle.outcome;
    v_sim : H.outcome;
    v_checks : check list;
    v_ok : bool;
  }

  let eq_assoc eq a b =
    List.length a = List.length b
    && List.for_all2
         (fun (ia, va) (ib, vb) -> Node_id.equal ia ib && eq va vb)
         a b

  let check name ok detail =
    { c_name = name; c_ok = ok; c_detail = (if ok then "" else detail) }

  let compare_with_sim ?(equal_output = Stdlib.( = )) ?transport ?round_ms
      ?max_rounds ~correct () =
    match RT.run ?transport ?round_ms ?max_rounds ~correct () with
    | Error e -> Error e
    | Ok run ->
        let oracle = RT.replay run in
        let sim_trace = Trace.create () in
        let sim =
          H.execute ~trace:sim_trace ?max_rounds ~correct ~byzantine:[] ()
        in
        let rt_outputs =
          List.filter_map
            (fun (n : RT.node_summary) ->
              Option.map (fun o -> (n.RT.ns_id, o)) n.RT.ns_output)
            run.RT.r_nodes
        in
        let rt_decides =
          List.filter_map
            (fun (n : RT.node_summary) ->
              Option.map (fun r -> (n.RT.ns_id, r)) n.RT.ns_decide_round)
            run.RT.r_nodes
        in
        let sim_decides =
          List.filter_map
            (fun (r : H.Net.node_report) ->
              Option.map (fun d -> (r.H.Net.id, d)) r.H.Net.first_output_round)
            sim.H.reports
        in
        let checks =
          [
            check "oracle-replay" oracle.RT.Oracle.ok
              (match oracle.RT.Oracle.divergence with
              | Some d -> Fmt.str "%a" RT.Oracle.pp_divergence d
              | None -> "schedule replay diverged");
            check "decisions"
              (eq_assoc equal_output rt_outputs oracle.RT.Oracle.outputs
              && eq_assoc equal_output rt_outputs sim.H.outputs)
              (Fmt.str
                 "runtime %d / oracle %d / sim %d deciding node(s) or values \
                  differ"
                 (List.length rt_outputs)
                 (List.length oracle.RT.Oracle.outputs)
                 (List.length sim.H.outputs));
            check "decide-rounds"
              (eq_assoc ( = ) rt_decides oracle.RT.Oracle.decide_rounds
              && eq_assoc ( = ) rt_decides sim_decides)
              "first-output rounds differ between runtime, oracle and sim";
            check "rounds"
              (run.RT.r_rounds = sim.H.rounds
              && run.RT.r_rounds = oracle.RT.Oracle.rounds)
              (Fmt.str "executed rounds differ: runtime %d, oracle %d, sim %d"
                 run.RT.r_rounds oracle.RT.Oracle.rounds sim.H.rounds);
            check "trace"
              (Trace.equal_events run.RT.r_events (Trace.events sim_trace))
              (let d =
                 Trace.diff_events run.RT.r_events (Trace.events sim_trace)
               in
               match d.Trace.first_divergence with
               | Some (i, _, _) ->
                   Fmt.str "first trace divergence at event %d (%d vs %d events)"
                     i d.Trace.length_a d.Trace.length_b
               | None -> "trace streams differ");
            check "wire"
              (Ubpa_obs.Wire.equal run.RT.r_wire oracle.RT.Oracle.wire
              && Ubpa_obs.Wire.equal run.RT.r_wire (H.Net.wire sim.H.net))
              (Fmt.str
                 "wire accounting differs: runtime %d msgs / %d bits, oracle \
                  %d / %d, sim %d / %d"
                 (Ubpa_obs.Wire.messages run.RT.r_wire)
                 (Ubpa_obs.Wire.bits run.RT.r_wire)
                 (Ubpa_obs.Wire.messages oracle.RT.Oracle.wire)
                 (Ubpa_obs.Wire.bits oracle.RT.Oracle.wire)
                 (Ubpa_obs.Wire.messages (H.Net.wire sim.H.net))
                 (Ubpa_obs.Wire.bits (H.Net.wire sim.H.net)));
          ]
        in
        Ok
          {
            v_run = run;
            v_oracle = oracle;
            v_sim = sim;
            v_checks = checks;
            v_ok = List.for_all (fun c -> c.c_ok) checks;
          }
end
