(** Networked runtime vs lockstep simulator, as one verdict.

    The runtime ({!Ubpa_runtime.Runner}) claims trace equivalence with
    the simulator; this module is where the claim is checked. One call
    runs the protocol three ways —

    + over the wire (domains or socket transport),
    + through the replay oracle on the recorded delivery schedule,
    + as a fresh simulator run on the same population —

    and compares decisions, decide rounds, trace events and wire
    accounting across all three. The CLI ([ubpa run]), the differential
    tests and the RT1 bench experiment all gate on the same {!Make.check}
    list rather than re-deriving their own comparisons. *)

open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) : sig
  module RT : module type of Ubpa_runtime.Runner.Make (P)
  module H : module type of Harness.Make (P)

  type check = {
    c_name : string;
        (** "oracle-replay", "decisions", "decide-rounds", "rounds",
            "trace", "wire". *)
    c_ok : bool;
    c_detail : string;  (** Human-readable; "" when [c_ok]. *)
  }

  type verdict = {
    v_run : RT.run;
    v_oracle : RT.Oracle.outcome;
    v_sim : H.outcome;
    v_checks : check list;
    v_ok : bool;  (** Every check passed. *)
  }

  val compare_with_sim :
    ?equal_output:(P.output -> P.output -> bool) ->
    ?transport:RT.transport ->
    ?round_ms:float ->
    ?max_rounds:int ->
    correct:(Node_id.t * P.input) list ->
    unit ->
    (verdict, string) result
  (** [Error] only when the networked run itself fails (runtime
      unavailable, bad population, node crash); an inequivalence is a
      failed check, not an error. [equal_output] defaults to structural
      equality — right for the pure-data outputs scenario protocols
      use. *)
end
