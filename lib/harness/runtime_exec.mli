(** Networked runtime vs lockstep simulator, as one verdict.

    The runtime ({!Ubpa_runtime.Runner}) claims trace equivalence with
    the simulator; this module is where the claim is checked. One call
    runs the protocol three ways —

    + over the wire (domains or socket transport),
    + through the replay oracle on the recorded delivery schedule,
    + as a fresh simulator run on the same population —

    and compares decisions, decide rounds, trace events and wire
    accounting across all three. The CLI ([ubpa run]), the differential
    tests and the RT1 bench experiment all gate on the same {!Make.check}
    list rather than re-deriving their own comparisons. *)

open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) : sig
  module RT : module type of Ubpa_runtime.Runner.Make (P)
  module H : module type of Harness.Make (P)

  type check = {
    c_name : string;
        (** "oracle-replay", "decisions", "decide-rounds", "rounds",
            "trace", "wire". *)
    c_ok : bool;
    c_detail : string;  (** Human-readable; "" when [c_ok]. *)
  }

  type verdict = {
    v_run : RT.run;
    v_oracle : RT.Oracle.outcome;
    v_sim : H.outcome;
    v_checks : check list;
    v_ok : bool;  (** Every check passed. *)
  }

  val compare_with_sim :
    ?equal_output:(P.output -> P.output -> bool) ->
    ?transport:RT.transport ->
    ?round_ms:float ->
    ?max_rounds:int ->
    correct:(Node_id.t * P.input) list ->
    unit ->
    (verdict, string) result
  (** [Error] only when the networked run itself fails (runtime
      unavailable, bad population, node crash); an inequivalence is a
      failed check, not an error. [equal_output] defaults to structural
      equality — right for the pure-data outputs scenario protocols
      use. *)

  (** The graceful-degradation verdict for a faulty run. *)
  type fault_verdict = {
    f_run : RT.run;
    f_oracle : RT.Oracle.outcome;  (** Delivered-mode replay. *)
    f_survivors : Node_id.t list;
        (** Nodes the plan did not crash, ascending. *)
    f_checks : check list;
        (** "oracle-replay" (delivered-schedule equivalence),
            "crash-view" (the oracle's missing set matches the runtime's
            crash ledger), "monitors" (agreement + event sanity with the
            victims excused), "survivor-agreement", "survivors-decide". *)
    f_ok : bool;
  }

  val run_with_faults :
    ?equal_output:(P.output -> P.output -> bool) ->
    ?transport:RT.transport ->
    ?round_ms:float ->
    ?max_rounds:int ->
    ?dead_after:int ->
    faults:Ubpa_faults.plan ->
    seed:int64 ->
    correct:(Node_id.t * P.input) list ->
    unit ->
    (fault_verdict, string) result
  (** Run under a fault plan and gate on graceful degradation instead of
      exact lockstep equivalence: the delivered schedule must replay
      clean through the oracle's delivered mode, the safety monitors
      (with the crashed victims excused) must stay green, and the
      surviving correct nodes must all decide and agree. A plan beyond
      the protocol's fault budget is {e expected} to fail one of these
      checks — the verdict reports it, the caller decides whether that
      was the experiment's point. [equal_output] is both the monitor's
      agreement relation and the survivor-agreement comparison; for
      protocols whose outputs are streams (reliable broadcast), pass the
      appropriate consistency relation. *)
end
