(** Randomized fault schedules and graceful-degradation sweeps.

    A {e schedule} picks a set of victim nodes and a benign fault for each
    (plus, optionally, global loss/duplication), deterministically from a
    seed. The {e budget} is the number of victims; a schedule is inside
    the paper's proven envelope iff it is crash/omission-only and
    [budget + #byzantine <= f] — benign faults are sub-Byzantine
    behaviours, so the theorems continue to cover the non-victim nodes.
    Protocol glue lives in [Ubpa_scenarios.Chaos_runs]; this module is
    protocol-agnostic. *)

open Ubpa_util

type schedule = {
  seed : int64;
  budget : int;  (** Number of victims. *)
  victims : Node_id.t list;
  plan : Ubpa_faults.plan;
}

val schedule :
  ?style:[ `Mixed | `Crash_blackout ] ->
  ?loss:float ->
  ?dup:float ->
  seed:int64 ->
  correct_ids:Node_id.t list ->
  budget:int ->
  unit ->
  schedule
(** Draw [budget] victims from [correct_ids] and one fault each, all
    deterministic in [seed]. [`Mixed] (default) draws from the full benign
    menu — crash-stop, crash-recover, leave, leave-and-rejoin, windowed
    send/receive omission — with every fault round >= 2 so round-1 inputs
    always circulate. [`Crash_blackout] crash-stops every victim at round
    2 — the worst benign schedule, used by the over-budget sweep end so
    degradation is deterministic, not luck. [loss]/[dup] (default 0) add
    the global link faults, which leave the proven envelope for every
    node. [budget] is capped at the population size. *)

val within_envelope : schedule -> n:int -> byz:int -> bool
(** Crash/omission-only and [budget + byz <= max_f n]. *)

(** One row of a graceful-degradation table: all runs of one protocol at
    one budget. *)
type row = {
  protocol : string;
  budget : int;
  byz : int;
  n : int;
  within : bool;
  runs : int;
  green : int;  (** Runs with every monitor green. *)
  violated : int;  (** Runs with at least one violation. *)
  reported : int;  (** Violated runs that produced a first-violation report. *)
  sample : string;  (** One violation, ["invariant@rN"], or ["-"]. *)
}

val row :
  protocol:string ->
  budget:int ->
  byz:int ->
  n:int ->
  within:bool ->
  Ubpa_monitor.violation option list ->
  row
(** Aggregate per-run verdicts ([None] = green) into a {!row}. *)

val max_green_budget : rows:row list -> protocol:string -> int option
(** Largest budget at which every run of [protocol] stayed green,
    scanning budgets upward and stopping at the first degraded one. *)
