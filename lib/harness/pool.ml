let parallel_available = Pool_backend.parallel_available
let available_parallelism () = Pool_backend.available_parallelism ()

let env_jobs () =
  match Sys.getenv_opt "UBPA_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 0 -> Some j
      | _ -> None)

let resolve_jobs ?jobs () =
  let requested =
    match jobs with Some j -> Some j | None -> env_jobs ()
  in
  match requested with
  | None -> 1
  | Some 0 -> available_parallelism ()
  | Some j -> max 1 j

let map ?jobs f items =
  let jobs = resolve_jobs ?jobs () in
  if jobs <= 1 then List.map f items else Pool_backend.map ~jobs f items
