open Ubpa_util
open Ubpa_sim

let make_ids ~seed n = Node_id.scatter ~seed n
let max_f n = (n - 1) / 3

let split_population ~seed ~n_correct ~n_byz =
  let ids = make_ids ~seed (n_correct + n_byz) in
  let correct = List.filteri (fun i _ -> i < n_correct) ids in
  let byz = List.filteri (fun i _ -> i >= n_correct) ids in
  (correct, byz)

module Make (P : Protocol.S) = struct
  module Net = Network.Make (P)

  type finished =
    [ `All_halted
    | `Max_rounds_reached of Node_id.t list
    | `No_correct_nodes
    | `Stopped ]

  type outcome = {
    finished : finished;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * P.output) list;
    reports : Net.node_report list;
    metrics : Metrics.t;
    net : Net.t;
  }

  let create ?rushing ?delivery ?wire_accounting ?seed ?faults ?trace
      ?classify ?stimulus ~correct ~byzantine () =
    Net.create ?rushing ?delivery ?wire_accounting ?seed ?faults ?trace
      ?classify ?stimulus ~correct ~byzantine ()

  let collect net ~finished =
    let metrics = Net.metrics net in
    {
      finished;
      rounds = Net.round net;
      delivered_msgs = Metrics.delivered metrics;
      outputs = Net.outputs net;
      reports = Net.reports net;
      metrics;
      net;
    }

  let observations net =
    List.map
      (fun (r : Net.node_report) ->
        {
          Ubpa_monitor.node = r.id;
          joined_at = r.joined_at;
          halted_at = r.halted_at;
          down = r.down_since <> None;
          output = r.last_output;
        })
      (Net.reports net)

  let observe monitor net =
    Ubpa_monitor.observe monitor ~round:(Net.round net) (observations net)

  (* [Net.run] / [Net.run_until], with a monitor observation after every
     round. *)
  let run_monitored ?(max_rounds = 10_000) ?stop net ~monitor =
    if stop = None && not (Net.has_correct net) then `No_correct_nodes
    else
      let finished () =
        match stop with
        | None -> if Net.all_halted net then Some `All_halted else None
        | Some stop -> if stop net then Some `Stopped else None
      in
      let rec go () =
        match finished () with
        | Some f -> f
        | None ->
            if Net.round net >= max_rounds then
              `Max_rounds_reached (Net.stalled net)
            else begin
              Net.step_round net;
              observe monitor net;
              go ()
            end
      in
      go ()

  let execute ?rushing ?delivery ?wire_accounting ?seed ?faults ?trace
      ?classify ?stimulus ?max_rounds ?stop ?(settle = 0) ?monitor ~correct
      ~byzantine () =
    (* Event-based invariants need an enabled trace to subscribe to; give
       monitored runs one even if the caller did not ask for a trace. *)
    let trace =
      match (trace, monitor) with
      | Some tr, _ -> Some tr
      | None, Some _ -> Some (Trace.create ())
      | None, None -> None
    in
    let net =
      create ?rushing ?delivery ?wire_accounting ?seed ?faults ?trace
        ?classify ?stimulus ~correct ~byzantine ()
    in
    let finished =
      match monitor with
      | None -> (
          match stop with
          | None -> (Net.run ?max_rounds net :> finished)
          | Some stop -> (Net.run_until ?max_rounds net ~stop :> finished))
      | Some monitor ->
          Option.iter
            (fun tr ->
              if Trace.enabled tr then
                Trace.subscribe tr (Ubpa_monitor.observe_event monitor))
            trace;
          (run_monitored ?max_rounds ?stop net ~monitor :> finished)
    in
    for _ = 1 to settle do
      Net.step_round net;
      match monitor with None -> () | Some m -> observe m net
    done;
    collect net ~finished
end
