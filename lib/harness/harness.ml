open Ubpa_util
open Ubpa_sim

let make_ids ~seed n = Node_id.scatter ~seed n
let max_f n = (n - 1) / 3

let split_population ~seed ~n_correct ~n_byz =
  let ids = make_ids ~seed (n_correct + n_byz) in
  let correct = List.filteri (fun i _ -> i < n_correct) ids in
  let byz = List.filteri (fun i _ -> i >= n_correct) ids in
  (correct, byz)

module Make (P : Protocol.S) = struct
  module Net = Network.Make (P)

  type finished =
    [ `All_halted | `Max_rounds_reached | `No_correct_nodes | `Stopped ]

  type outcome = {
    finished : finished;
    rounds : int;
    delivered_msgs : int;
    outputs : (Node_id.t * P.output) list;
    reports : Net.node_report list;
    metrics : Metrics.t;
    net : Net.t;
  }

  let create ?rushing ?delivery ?seed ?trace ?classify ?stimulus ~correct
      ~byzantine () =
    Net.create ?rushing ?delivery ?seed ?trace ?classify ?stimulus ~correct
      ~byzantine ()

  let collect net ~finished =
    let metrics = Net.metrics net in
    {
      finished;
      rounds = Net.round net;
      delivered_msgs = Metrics.delivered metrics;
      outputs = Net.outputs net;
      reports = Net.reports net;
      metrics;
      net;
    }

  let execute ?rushing ?delivery ?seed ?trace ?classify ?stimulus ?max_rounds
      ?stop ?(settle = 0) ~correct ~byzantine () =
    let net =
      create ?rushing ?delivery ?seed ?trace ?classify ?stimulus ~correct
        ~byzantine ()
    in
    let finished =
      match stop with
      | None -> (Net.run ?max_rounds net :> finished)
      | Some stop -> (Net.run_until ?max_rounds net ~stop :> finished)
    in
    for _ = 1 to settle do
      Net.step_round net
    done;
    collect net ~finished
end
