(** Order-preserving parallel map over independent sweep cells.

    Every bench/chaos cell is seed-deterministic and owns its RNG, network
    and metrics, so cells can run on worker domains concurrently; the only
    requirement for byte-identical tables is that results merge in
    submission order, which {!map} guarantees. The multicore backend is
    compiled on OCaml 5; on 4.x a sequential fallback with the same
    semantics is selected at build time (see [pool_backend.mli]). *)

val parallel_available : bool
(** False when this build uses the sequential fallback. *)

val available_parallelism : unit -> int
(** Worker count the runtime recommends; 1 on the sequential backend. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items] computed by up to [jobs]
    workers, results in input order. [~jobs:0] means
    [available_parallelism ()]. When [jobs] is omitted it defaults to the
    [UBPA_JOBS] environment variable, then 1. If some [f] raises, the
    exception of the lowest-indexed failing item is re-raised after all
    workers finish. *)
