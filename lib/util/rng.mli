(** Deterministic, splittable pseudo-random number generator (splitmix64).

    Every simulation is reproducible from a single integer seed; adversary
    strategies and workload generators take a split of the root generator so
    adding a new consumer never perturbs the stream of an existing one. *)

type t

val create : int64 -> t
(** Fresh generator from a seed. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)
