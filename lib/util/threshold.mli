(** Exact fractional threshold tests.

    The paper's algorithms compare message counts against [n_v / 3] and
    [2 n_v / 3] where the division is real-valued ("at least n_v/3"). We
    avoid floating point entirely: [count >= n/3  <=>  3*count >= n]. *)

val ge_third : count:int -> of_:int -> bool
(** [ge_third ~count ~of_:n] is [count >= n / 3] over the rationals. *)

val ge_two_thirds : count:int -> of_:int -> bool
(** [ge_two_thirds ~count ~of_:n] is [count >= 2 n / 3] over the rationals. *)

val lt_third : count:int -> of_:int -> bool
(** [lt_third ~count ~of_:n] is [count < n / 3] over the rationals;
    the negation of {!ge_third}. *)

val floor_third : int -> int
(** [floor_third n] is [⌊n / 3⌋] — the number of extreme values discarded by
    the approximate-agreement algorithm. *)

val majority : count:int -> of_:int -> bool
(** [majority ~count ~of_:n] is [count > n / 2] over the rationals. *)
