(** Aligned text tables and CSV export for the experiment harness. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells — convenient for numeric rows. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** In insertion order. *)

val print : t -> unit
(** Render with aligned columns on stdout. *)

val to_csv : t -> string
(** CSV rendering (header row included). *)

val cell_int : int -> string
val cell_float : ?digits:int -> float -> string
val cell_bool : bool -> string
