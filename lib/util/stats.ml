let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
      sqrt var

let sorted xs = List.sort Float.compare xs

let median = function
  | [] -> 0.
  | xs ->
      let a = Array.of_list (sorted xs) in
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let percentile p = function
  | [] -> 0.
  | xs ->
      let a = Array.of_list (sorted xs) in
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let range = function
  | [] | [ _ ] -> 0.
  | xs ->
      let lo, hi = min_max xs in
      hi -. lo

let histogram ~buckets xs =
  match xs with
  | [] -> []
  | _ ->
      let lo, hi = min_max xs in
      let width =
        if hi = lo then 1. else (hi -. lo) /. float_of_int buckets
      in
      let counts = Array.make buckets 0 in
      let place x =
        let i = int_of_float ((x -. lo) /. width) in
        let i = max 0 (min (buckets - 1) i) in
        counts.(i) <- counts.(i) + 1
      in
      List.iter place xs;
      List.init buckets (fun i ->
          ( lo +. (float_of_int i *. width),
            lo +. (float_of_int (i + 1) *. width),
            counts.(i) ))
