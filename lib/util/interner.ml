type t = {
  tbl : (int, int) Hashtbl.t;  (** raw identifier -> dense index *)
  mutable ids : Node_id.t array;  (** dense index -> identifier *)
  mutable size : int;
}

let create ?(hint = 16) () =
  {
    tbl = Hashtbl.create hint;
    ids = Array.make (max hint 1) (Node_id.of_int 0);
    size = 0;
  }

let size t = t.size

let grow t =
  let cap = Array.length t.ids in
  if t.size >= cap then begin
    let ids = Array.make (2 * cap) (Node_id.of_int 0) in
    Array.blit t.ids 0 ids 0 t.size;
    t.ids <- ids
  end

let intern t id =
  let raw = Node_id.to_int id in
  match Hashtbl.find_opt t.tbl raw with
  | Some ix -> ix
  | None ->
      let ix = t.size in
      Hashtbl.add t.tbl raw ix;
      grow t;
      t.ids.(ix) <- id;
      t.size <- t.size + 1;
      ix

let copy t = { tbl = Hashtbl.copy t.tbl; ids = Array.copy t.ids; size = t.size }
let find_opt t id = Hashtbl.find_opt t.tbl (Node_id.to_int id)
let mem t id = Hashtbl.mem t.tbl (Node_id.to_int id)

let extern t ix =
  if ix < 0 || ix >= t.size then
    invalid_arg (Printf.sprintf "Interner.extern: index %d out of 0..%d" ix (t.size - 1));
  t.ids.(ix)

let iter t f =
  for ix = 0 to t.size - 1 do
    f ix t.ids.(ix)
  done
