type t =
  [ `Null
  | `Bool of bool
  | `Int of int
  | `Float of float
  | `String of string
  | `List of t list
  | `Assoc of (string * t) list ]

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(pretty = true) (v : t) =
  let buf = Buffer.create 256 in
  let nl indent =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | `Null -> Buffer.add_string buf "null"
    | `Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | `Int i -> Buffer.add_string buf (string_of_int i)
    | `Float f -> Buffer.add_string buf (float_literal f)
    | `String s -> Buffer.add_string buf (escape_string s)
    | `List [] -> Buffer.add_string buf "[]"
    | `List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            go (indent + 2) item)
          items;
        nl indent;
        Buffer.add_char buf ']'
    | `Assoc [] -> Buffer.add_string buf "{}"
    | `Assoc fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 2);
            Buffer.add_string buf (escape_string k);
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (indent + 2) item)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word (v : t) =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf code =
    (* Encode a Unicode scalar value as UTF-8. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  let hi = parse_hex4 () in
                  if hi >= 0xd800 && hi <= 0xdbff then begin
                    (* Surrogate pair. *)
                    expect '\\';
                    expect 'u';
                    let lo = parse_hex4 () in
                    if lo < 0xdc00 || lo > 0xdfff then
                      fail "invalid low surrogate";
                    add_utf8 buf
                      (0x10000
                      + ((hi - 0xd800) lsl 10)
                      + (lo - 0xdc00))
                  end
                  else add_utf8 buf hi
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    if lexeme = "" then fail "expected a number";
    if
      String.contains lexeme '.'
      || String.contains lexeme 'e'
      || String.contains lexeme 'E'
    then
      match float_of_string_opt lexeme with
      | Some f -> `Float f
      | None -> fail (Printf.sprintf "bad number %S" lexeme)
    else
      match int_of_string_opt lexeme with
      | Some i -> `Int i
      | None -> (
          (* Out of int range; fall back to float. *)
          match float_of_string_opt lexeme with
          | Some f -> `Float f
          | None -> fail (Printf.sprintf "bad number %S" lexeme))
  in
  let rec parse_value () : t =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" `Null
    | Some 't' -> literal "true" (`Bool true)
    | Some 'f' -> literal "false" (`Bool false)
    | Some '"' -> `String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          `List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          `List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          `Assoc []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          `Assoc (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | `Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function `List l -> Some l | _ -> None
let to_int = function `Int i -> Some i | _ -> None

let to_float = function
  | `Float f -> Some f
  | `Int i -> Some (float_of_int i)
  | `String "nan" -> Some Float.nan
  | `String "inf" -> Some Float.infinity
  | `String "-inf" -> Some Float.neg_infinity
  | _ -> None

let to_string_opt = function `String s -> Some s | _ -> None
let to_bool = function `Bool b -> Some b | _ -> None
