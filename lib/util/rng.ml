type t = { mutable state : int64 }

let gamma = 0x9e3779b97f4a7c15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state gamma;
  mix t.state

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to 62 bits so the conversion to OCaml's 63-bit int stays
     non-negative. *)
  let v = Int64.to_int (Int64.logand (int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
