type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d" t.title
         (List.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf
    (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim))
    fmt

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows

let widths t =
  let all = t.columns :: List.rev t.rows in
  let ncols = List.length t.columns in
  let w = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row)
    all;
  w

let print t =
  let w = widths t in
  let pad i s = s ^ String.make (w.(i) - String.length s) ' ' in
  let line row =
    String.concat "  " (List.mapi pad row) |> String.trim |> print_endline
  in
  print_endline "";
  Printf.printf "== %s ==\n" t.title;
  line t.columns;
  line (Array.to_list (Array.map (fun n -> String.make n '-') w));
  List.iter line (List.rev t.rows)

let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let row r = String.concat "," (List.map quote r) in
  String.concat "\n" (row t.columns :: List.map row (List.rev t.rows)) ^ "\n"

let cell_int = string_of_int
let cell_float ?(digits = 2) f = Printf.sprintf "%.*f" digits f
let cell_bool b = if b then "yes" else "no"
