(** Order statistics and summaries used by experiment tables. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float
(** Median (average of middle two for even length); 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank method. *)

val min_max : float list -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on []. *)

val range : float list -> float
(** [max - min]; 0 on lists shorter than 2. *)

val sum : float list -> float

val histogram : buckets:int -> float list -> (float * float * int) list
(** [histogram ~buckets xs] is a list of [(lo, hi, count)] rows covering
    [\[min xs, max xs\]] with [buckets] equal-width buckets. *)
