(** The package version.

    [current] is generated at build time from [dune-project]'s
    [(version ...)] stanza — the single source of truth the CLI's
    [--version], release tags, and any tooling all report, so bumping the
    stanza is the whole release-versioning story. *)

val current : string
