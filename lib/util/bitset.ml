type t = { mutable bits : Bytes.t; mutable count : int }

let create ?(hint = 64) () = { bits = Bytes.make ((max hint 1 + 7) / 8) '\000'; count = 0 }

let mem t ix =
  let byte = ix lsr 3 in
  byte < Bytes.length t.bits
  && Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl (ix land 7)) <> 0

let add t ix =
  if ix < 0 then invalid_arg "Bitset.add: negative index";
  let byte = ix lsr 3 in
  if byte >= Bytes.length t.bits then begin
    let grown = Bytes.make (max (byte + 1) (2 * Bytes.length t.bits)) '\000' in
    Bytes.blit t.bits 0 grown 0 (Bytes.length t.bits);
    t.bits <- grown
  end;
  let c = Char.code (Bytes.unsafe_get t.bits byte) in
  let bit = 1 lsl (ix land 7) in
  if c land bit = 0 then begin
    Bytes.unsafe_set t.bits byte (Char.chr (c lor bit));
    t.count <- t.count + 1
  end

let count t = t.count
let copy t = { bits = Bytes.copy t.bits; count = t.count }

let clear t =
  if t.count > 0 then Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0

let fold t ~init ~f =
  let acc = ref init in
  for ix = 0 to (8 * Bytes.length t.bits) - 1 do
    if mem t ix then acc := f !acc ix
  done;
  !acc
