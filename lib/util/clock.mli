(** Monotonic wall-clock shim.

    The simulator stamps per-round wall-clock durations into {!Metrics};
    [Unix.gettimeofday] can jump backwards under NTP adjustment, producing
    negative round timings. This shim monotonizes the wall clock: reads are
    clamped to never decrease, so durations computed as differences of
    {!now_ms} values are always non-negative. *)

val now_ms : unit -> float
(** Milliseconds from an arbitrary epoch. Non-decreasing across calls
    within a process, even if the system clock is stepped backwards. *)

val elapsed_ms : since:float -> float
(** [elapsed_ms ~since:t0] is [now_ms () -. t0], clamped to [>= 0.]. *)
