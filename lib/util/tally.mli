(** Per-round tallies of who sent what.

    Algorithms in the id-only model repeatedly ask "how many distinct nodes
    sent me message [m] this round?". A tally ingests the round's inbox and
    answers per-content counts while suppressing duplicate (sender, content)
    pairs, as the model prescribes. *)

type ('k, 'v) t
(** A tally keyed by message content ['k]; remembers the set of senders. *)

val create : compare:('k -> 'k -> int) -> unit -> ('k, 'v) t

val create_dense :
  compare:('k -> 'k -> int) -> interner:Interner.t -> unit -> ('k, 'v) t
(** Like {!create}, but sender sets are bitmaps over [interner]'s dense
    indices instead of balanced trees — O(1) insert and duplicate check.
    Observable behaviour is identical to a sparse tally; senders met after
    the tally was created are interned on the fly. *)

val add : ('k, 'v) t -> sender:Node_id.t -> 'k -> unit
(** Record that [sender] sent content [k]. Duplicate (sender, content)
    pairs are ignored. *)

val count : ('k, 'v) t -> 'k -> int
(** Number of distinct senders that sent [k]. *)

val senders : ('k, 'v) t -> 'k -> Node_id.t list
(** The distinct senders of [k], unordered. *)

val contents : ('k, 'v) t -> 'k list
(** All contents seen, each once. *)

val max_by_count : ('k, 'v) t -> ('k * int) option
(** Content with the highest distinct-sender count (ties broken by the
    content ordering, smallest first), or [None] if the tally is empty. *)

val meeting : ('k, 'v) t -> threshold:(int -> bool) -> 'k list
(** Contents whose distinct-sender count satisfies [threshold]. *)
