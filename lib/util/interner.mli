(** Dense interning of scattered node identifiers.

    Identifiers drawn by {!Node_id.scatter} are sparse 30-bit integers, so
    hot paths that key per-node state on them pay for balanced-tree lookups.
    An interner assigns each identifier a dense index [0..n-1] in first-seen
    order, letting those paths switch to arrays and byte-sized bitmaps. *)

type t

val create : ?hint:int -> unit -> t
(** Fresh empty interner. [hint] sizes the initial tables. *)

val copy : t -> t
(** Independent snapshot: interning into the copy never affects the
    original (and vice versa). Used by the bounded checker to branch
    mutable protocol states. *)

val intern : t -> Node_id.t -> int
(** Dense index for [id], assigning the next free index ([size t]) on first
    sight. Idempotent: interning the same id twice returns the same index. *)

val find_opt : t -> Node_id.t -> int option
(** Dense index for [id] if already interned, without assigning one. *)

val mem : t -> Node_id.t -> bool

val extern : t -> int -> Node_id.t
(** Inverse of {!intern}. Raises [Invalid_argument] when the index was never
    assigned. *)

val size : t -> int
(** Number of distinct identifiers interned so far. *)

val iter : t -> (int -> Node_id.t -> unit) -> unit
(** [iter t f] applies [f index id] in ascending index (first-seen) order. *)
