(** Growable bitmap over small non-negative integers.

    Companion to {!Interner}: once node identifiers are interned to dense
    indices, per-round sender sets become byte-packed bitmaps with O(1)
    membership and insert, replacing [Set.Make] balanced trees on the
    per-message hot paths. *)

type t

val create : ?hint:int -> unit -> t
(** Empty set; [hint] is the expected index bound (grows on demand). *)

val mem : t -> int -> bool
(** [mem t ix] — false for any index never added, however large. *)

val add : t -> int -> unit
(** Insert [ix], growing the backing bytes if needed. Idempotent. Raises
    [Invalid_argument] on negative indices. *)

val count : t -> int
(** Number of distinct indices added. *)

val copy : t -> t
(** Independent snapshot of the set. *)

val clear : t -> unit
(** Remove every member, keeping the backing bytes at their grown size —
    the round-reuse primitive of the arena delivery core. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold over the member indices in ascending order. *)
