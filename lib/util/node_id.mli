(** Node identifiers.

    The id-only model gives every node a unique identifier that is {e not}
    necessarily consecutive — nodes cannot derive the network size from the
    identifier space. This module generates deterministic, well-spread,
    non-consecutive identifiers so that no algorithm can accidentally rely
    on density of the id space. *)

type t
(** An opaque node identifier. Totally ordered. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val of_int : int -> t
(** [of_int i] builds an identifier from a raw integer. Raw values are used
    by tests that need precise control over ordering; real deployments use
    {!scatter}. *)

val to_int : t -> int

val scatter : seed:int64 -> int -> t list
(** [scatter ~seed k] returns [k] distinct, pseudo-random, non-consecutive
    identifiers. Deterministic in [seed]. The identifiers are spread over a
    large space so that their ranks reveal nothing about [k]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val sorted : t list -> t list
(** Sort ascending and remove duplicates. *)
