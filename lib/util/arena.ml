type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(hint = 16) ~dummy () =
  { data = Array.make (max hint 1) dummy; len = 0; dummy }

let length t = t.len
let capacity t = Array.length t.data
let clear t = t.len <- 0

let reset t =
  if t.len > 0 then Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let ensure t cap =
  let old = Array.length t.data in
  if cap > old then begin
    let data = Array.make (max cap (2 * old)) t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Arena.get: index %d out of 0..%d" i (t.len - 1));
  Array.unsafe_get t.data i

let set t i x =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Arena.set: index %d out of 0..%d" i (t.len - 1));
  Array.unsafe_set t.data i x

let unsafe_get t i = Array.unsafe_get t.data i

let iteri t f =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc
