type senders =
  | Sparse of Node_id.Set.t ref
  | Dense of { intr : Interner.t; seen : Bitset.t }

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  interner : Interner.t option;
  mutable entries : ('k * senders) list;
}

let create ~compare () = { compare; interner = None; entries = [] }

let create_dense ~compare ~interner () =
  { compare; interner = Some interner; entries = [] }

let fresh_senders t =
  match t.interner with
  | None -> Sparse (ref Node_id.Set.empty)
  | Some intr -> Dense { intr; seen = Bitset.create ~hint:(Interner.size intr) () }

let record ss sender =
  match ss with
  | Sparse s -> s := Node_id.Set.add sender !s
  | Dense d -> Bitset.add d.seen (Interner.intern d.intr sender)

let find t k = List.find_opt (fun (k', _) -> t.compare k k' = 0) t.entries

let add t ~sender k =
  match find t k with
  | Some (_, ss) -> record ss sender
  | None ->
      let ss = fresh_senders t in
      record ss sender;
      t.entries <- (k, ss) :: t.entries

let cardinal = function
  | Sparse s -> Node_id.Set.cardinal !s
  | Dense d -> Bitset.count d.seen

let count t k = match find t k with Some (_, ss) -> cardinal ss | None -> 0

let senders t k =
  match find t k with
  | None -> []
  | Some (_, Sparse s) -> Node_id.Set.elements !s
  | Some (_, Dense d) ->
      let out = ref [] in
      for ix = Interner.size d.intr - 1 downto 0 do
        if Bitset.mem d.seen ix then out := Interner.extern d.intr ix :: !out
      done;
      List.sort Node_id.compare !out

let contents t = List.map fst t.entries

let max_by_count t =
  let best acc (k, ss) =
    let c = cardinal ss in
    match acc with
    | None -> Some (k, c)
    | Some (k', c') ->
        if c > c' || (c = c' && t.compare k k' < 0) then Some (k, c) else acc
  in
  List.fold_left best None t.entries

let meeting t ~threshold =
  List.filter_map
    (fun (k, ss) -> if threshold (cardinal ss) then Some k else None)
    t.entries
