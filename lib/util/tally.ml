type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable entries : ('k * Node_id.Set.t ref) list;
}

let create ~compare () = { compare; entries = [] }

let find t k = List.find_opt (fun (k', _) -> t.compare k k' = 0) t.entries

let add t ~sender k =
  match find t k with
  | Some (_, senders) -> senders := Node_id.Set.add sender !senders
  | None -> t.entries <- (k, ref (Node_id.Set.singleton sender)) :: t.entries

let count t k =
  match find t k with Some (_, s) -> Node_id.Set.cardinal !s | None -> 0

let senders t k =
  match find t k with Some (_, s) -> Node_id.Set.elements !s | None -> []

let contents t = List.map fst t.entries

let max_by_count t =
  let best acc (k, s) =
    let c = Node_id.Set.cardinal !s in
    match acc with
    | None -> Some (k, c)
    | Some (k', c') ->
        if c > c' || (c = c' && t.compare k k' < 0) then Some (k, c) else acc
  in
  List.fold_left best None t.entries

let meeting t ~threshold =
  List.filter_map
    (fun (k, s) -> if threshold (Node_id.Set.cardinal !s) then Some k else None)
    t.entries
