(* The switch has no mtime/clock_gettime binding, so the monotonic source
   is a clamped gettimeofday: a backwards step of the system clock freezes
   the reading instead of rewinding it. Single-threaded by design (the
   whole simulator is). *)

let last = ref neg_infinity

let now_ms () =
  let t = Unix.gettimeofday () *. 1000. in
  if t > !last then last := t;
  !last

let elapsed_ms ~since = Float.max 0. (now_ms () -. since)
