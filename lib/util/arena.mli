(** Grow-only scratch buffers reused across rounds.

    The engine-v3 delivery core keys one round's records into flat arrays
    and throws the {e contents} away every round while keeping the
    {e storage}: {!clear} drops the length back to zero without freeing,
    so a steady-state round allocates nothing in the arena no matter how
    many messages pass through it. Companion to {!Interner} (dense
    indices) and {!Bitset} (dense member sets).

    An arena is single-owner mutable state — exactly like [Buffer] — and
    values read out of it are only valid until the next {!clear}. *)

type 'a t

val create : ?hint:int -> dummy:'a -> unit -> 'a t
(** Empty arena backed by [hint] preallocated slots (grows on demand).
    [dummy] fills unused capacity; it is never observable through
    {!get}. *)

val length : 'a t -> int
val capacity : 'a t -> int

val clear : 'a t -> unit
(** Forget the contents, keep the storage. Slots retain their old values
    (and thus keep them live for the GC) until overwritten; use {!reset}
    when the elements are heap blocks that must be released eagerly. *)

val reset : 'a t -> unit
(** {!clear} plus overwriting every used slot with [dummy], releasing the
    old elements to the GC. *)

val push : 'a t -> 'a -> unit
(** Append, doubling the backing array when full (amortized O(1),
    allocation-free once capacity has grown to the working set). *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] outside [0 .. length - 1]. *)

val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** No bounds check; the hot-loop read for indices already validated. *)

val iteri : 'a t -> (int -> 'a -> unit) -> unit
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
