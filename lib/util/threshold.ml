let ge_third ~count ~of_ = 3 * count >= of_
let ge_two_thirds ~count ~of_ = 3 * count >= 2 * of_
let lt_third ~count ~of_ = not (ge_third ~count ~of_)
let floor_third n = n / 3
let majority ~count ~of_ = 2 * count > of_
