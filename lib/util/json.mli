(** Minimal JSON values: encoder, pretty-printer, and parser.

    Implemented from scratch so the bench/trace pipeline adds no
    dependencies. Covers the whole of RFC 8259 except that integers and
    floating-point numbers are kept distinct on the OCaml side ([`Int]
    vs [`Float]) so that counters round-trip exactly. *)

type t =
  [ `Null
  | `Bool of bool
  | `Int of int
  | `Float of float
  | `String of string
  | `List of t list
  | `Assoc of (string * t) list ]

(** {2 Encoding} *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default [true]) indents with two spaces; the
    compact form has no whitespace at all. Non-finite floats are encoded
    as the strings ["nan"], ["inf"], ["-inf"] (JSON has no lexeme for
    them; the parser maps these strings back only via {!to_float}). *)

val escape_string : string -> string
(** The quoted, escaped JSON form of a string literal. *)

(** {2 Parsing} *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; the error string carries a byte
    offset. Trailing whitespace is allowed, trailing garbage is not. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Failure]. *)

(** {2 Accessors}

    Total accessors for digging into parsed documents; they return
    [None] rather than raising on shape mismatches. *)

val member : string -> t -> t option
(** Field of an [`Assoc]. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts [`Int], [`Float], and the non-finite string encodings. *)

val to_string_opt : t -> string option
val to_bool : t -> bool option
