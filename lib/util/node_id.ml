type t = int

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let of_int i = i
let to_int t = t
let pp ppf t = Format.fprintf ppf "#%d" t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let sorted ids = Set.elements (Set.of_list ids)

(* splitmix64 step; good enough dispersion for scattering ids. *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let scatter ~seed k =
  (* Draw from a 30-bit space to keep ids readable; reject collisions and
     adjacent values so the result is guaranteed non-consecutive. *)
  let rec draw state acc taken remaining =
    if remaining = 0 then List.rev acc
    else
      let state = Int64.add state 0x9e3779b97f4a7c15L in
      let v = Int64.to_int (Int64.logand (mix state) 0x3FFFFFFFL) in
      let clash =
        Set.mem v taken || Set.mem (v + 1) taken || (v > 0 && Set.mem (v - 1) taken)
      in
      if clash then draw state acc taken remaining
      else draw state (v :: acc) (Set.add v taken) (remaining - 1)
  in
  draw seed [] Set.empty k
