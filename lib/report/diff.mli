(** The regression gate: compare two benchmark artifact sets.

    Two checks feed CI:

    - {!check_claims} — every claim in every artifact must be [Pass];
      this is the self-checking part (the paper's bounds, re-evaluated on
      every run).
    - {!compare} — candidate artifacts against a baseline directory:
      fails on claim regressions (pass → fail), on complexity fits that
      vanished or stopped holding, on missing experiments, and on
      deterministic derived metrics (message counts, round counts, …)
      that grew beyond a relative threshold. Wall-clock time
      is only gated when an explicit [time_threshold] is supplied, since
      timing is noisy on shared CI runners. *)

type severity = Info | Failure

type issue = { experiment : string; severity : severity; message : string }

val failures : issue list -> issue list

val pp_issue : Format.formatter -> issue -> unit

val check_claims : Artifact.t list -> issue list
(** One [Failure] per failed claim and per violated complexity fit; one
    [Info] per artifact with an empty claims block (an experiment without
    machine-checked claims is suspicious but not fatal). *)

val exact_exempt_columns : string list
(** Table columns holding wall-clock / allocator measurements; their cells
    are masked by the [exact] refactor gate. *)

val compare :
  ?threshold:float ->
  ?time_threshold:float ->
  ?exact:bool ->
  baseline:Artifact.t list ->
  candidate:Artifact.t list ->
  unit ->
  issue list
(** [threshold] (percent, default [10.]) bounds the allowed relative
    growth of each shared derived metric. Metrics are only compared when
    the two artifacts ran the same sweep ([fast] flag and row count
    match); otherwise an [Info] issue notes the skip. [time_threshold]
    (percent) additionally gates [elapsed_ms]. [exact] (default [false])
    is the refactor gate: for every experiment present in both sets, the
    candidate's columns and rows must be cell-for-cell identical to the
    baseline's — any drift is a [Failure]. Wall-clock [elapsed_ms]
    (metadata) and the measurement columns in {!exact_exempt_columns}
    (elapsed / throughput / minor-words / deadline cells, which vary by
    machine and compiler) stay exempt; behavioural statements about those
    cells are claim-gated instead. When the [fast] flags differ — a
    full-mode committed baseline against a [--fast] smoke run — the cell
    comparison is skipped with an [Info] note. Claims of the candidate
    are checked unconditionally. *)
