(** Machine-readable benchmark artifacts.

    One artifact corresponds to one experiment of the bench suite
    (E1–E13, A1–A4): the table it printed, how long it took, the seeds it
    used, and — the part that keeps the reproduction honest — a [claims]
    block in which every paper-derived bound the experiment exercises is
    evaluated to pass/fail. Artifacts are written as [BENCH_<id>.json]
    files and diffed across commits by {!Diff} / [bench_diff]. *)

open Ubpa_util

val schema_version : string
(** Currently ["ubpa-bench/2"] (v1 plus the per-experiment [complexity]
    block); bumped on incompatible schema changes. *)

val schema_v1 : string
(** The pre-complexity schema string ["ubpa-bench/1"]; still accepted by
    {!of_json} so historical baselines remain diffable. *)

type status = Pass | Fail

type claim = {
  cid : string;  (** Stable identifier, e.g. ["E3.round-bound"]. *)
  description : string;  (** The bound being checked, human-readable. *)
  status : status;
}

type t = {
  experiment : string;  (** "E1" … "A4". *)
  title : string;
  fast : bool;  (** Whether the sweep was shrunk with [--fast]. *)
  seeds : int list;
  elapsed_ms : float;  (** Wall-clock time of the experiment function. *)
  columns : string list;
  rows : string list list;
  claims : claim list;
  metrics : (string * float) list;
      (** Derived scalar metrics, e.g. [("msgs:sum", 1234.)]; the
          regression gate compares these across artifact directories. *)
  complexity : Ubpa_obs.Complexity.fit list;
      (** Machine-checked asymptotic fits (schema v2, e.g. the CX1
          [c*n^k] envelopes); empty for experiments without a sweep-wide
          complexity story and for loaded v1 artifacts. *)
}

val derive_metrics :
  columns:string list -> rows:string list list -> (string * float) list
(** For every column whose cells are all numeric, the [<col>:sum] and
    [<col>:max] scalars. Column order is preserved. *)

(** {2 Serialization} *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** {2 Filesystem} *)

val filename : string -> string
(** [filename "E1"] is ["BENCH_E1.json"]. *)

val mkdir_p : string -> unit
(** Recursive [mkdir]; a no-op for existing directories. *)

val write : dir:string -> t -> string
(** Serialize into [dir] (created recursively); returns the path. *)

val load : string -> (t, string) result

val load_dir : string -> (t list, string) result
(** All [BENCH_*.json] files in a directory, sorted by experiment id.
    Errors on an unreadable/invalid file or a missing directory. *)
