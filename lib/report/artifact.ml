open Ubpa_util

let schema_version = "ubpa-bench/2"
let schema_v1 = "ubpa-bench/1"

type status = Pass | Fail

type claim = { cid : string; description : string; status : status }

type t = {
  experiment : string;
  title : string;
  fast : bool;
  seeds : int list;
  elapsed_ms : float;
  columns : string list;
  rows : string list list;
  claims : claim list;
  metrics : (string * float) list;
  complexity : Ubpa_obs.Complexity.fit list;
}

let status_to_string = function Pass -> "pass" | Fail -> "fail"

let status_of_string = function
  | "pass" -> Some Pass
  | "fail" -> Some Fail
  | _ -> None

let derive_metrics ~columns ~rows =
  List.concat
    (List.mapi
       (fun i col ->
         let cells = List.filter_map (fun row -> List.nth_opt row i) rows in
         let nums = List.filter_map float_of_string_opt cells in
         if nums = [] || List.length nums <> List.length cells then []
         else
           [
             (col ^ ":sum", List.fold_left ( +. ) 0. nums);
             (col ^ ":max", List.fold_left Float.max neg_infinity nums);
           ])
       columns)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let claim_to_json c : Json.t =
  `Assoc
    [
      ("id", `String c.cid);
      ("description", `String c.description);
      ("status", `String (status_to_string c.status));
    ]

let to_json t : Json.t =
  `Assoc
    [
      ("schema", `String schema_version);
      ("experiment", `String t.experiment);
      ("title", `String t.title);
      ("fast", `Bool t.fast);
      ("seeds", `List (List.map (fun s -> `Int s) t.seeds));
      ("elapsed_ms", `Float t.elapsed_ms);
      ( "table",
        `Assoc
          [
            ("columns", `List (List.map (fun c -> `String c) t.columns));
            ( "rows",
              `List
                (List.map
                   (fun row -> `List (List.map (fun c -> `String c) row))
                   t.rows) );
          ] );
      ("claims", `List (List.map claim_to_json t.claims));
      ("metrics", `Assoc (List.map (fun (k, v) -> (k, `Float v)) t.metrics));
      ( "complexity",
        `List (List.map Ubpa_obs.Complexity.to_json t.complexity) );
    ]

let ( let* ) = Result.bind

let string_field name j =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "artifact: missing string field %S" name)

let string_list j =
  match Json.to_list j with
  | None -> Error "artifact: expected a list"
  | Some items -> (
      let strs = List.filter_map Json.to_string_opt items in
      match List.length strs = List.length items with
      | true -> Ok strs
      | false -> Error "artifact: expected a list of strings")

let claim_of_json j =
  let* cid = string_field "id" j in
  let* description = string_field "description" j in
  let* status = string_field "status" j in
  match status_of_string status with
  | Some status -> Ok { cid; description; status }
  | None -> Error (Printf.sprintf "artifact: bad claim status %S" status)

let of_json j =
  let* schema = string_field "schema" j in
  (* v1 artifacts (pre-complexity) stay loadable so old baselines can be
     diffed against v2 candidates; they simply have no complexity block. *)
  if schema <> schema_version && schema <> schema_v1 then
    Error (Printf.sprintf "artifact: unsupported schema %S" schema)
  else
    let* experiment = string_field "experiment" j in
    let* title = string_field "title" j in
    let* fast =
      match Option.bind (Json.member "fast" j) Json.to_bool with
      | Some b -> Ok b
      | None -> Error "artifact: missing bool field \"fast\""
    in
    let seeds =
      match Option.bind (Json.member "seeds" j) Json.to_list with
      | Some items -> List.filter_map Json.to_int items
      | None -> []
    in
    let* elapsed_ms =
      match Option.bind (Json.member "elapsed_ms" j) Json.to_float with
      | Some f -> Ok f
      | None -> Error "artifact: missing float field \"elapsed_ms\""
    in
    let* table =
      match Json.member "table" j with
      | Some t -> Ok t
      | None -> Error "artifact: missing \"table\""
    in
    let* columns =
      match Json.member "columns" table with
      | Some c -> string_list c
      | None -> Error "artifact: missing \"table.columns\""
    in
    let* rows =
      match Option.bind (Json.member "rows" table) Json.to_list with
      | None -> Error "artifact: missing \"table.rows\""
      | Some items ->
          List.fold_left
            (fun acc row ->
              let* acc = acc in
              let* row = string_list row in
              Ok (row :: acc))
            (Ok []) items
          |> Result.map List.rev
    in
    let* claims =
      match Option.bind (Json.member "claims" j) Json.to_list with
      | None -> Error "artifact: missing \"claims\""
      | Some items ->
          List.fold_left
            (fun acc c ->
              let* acc = acc in
              let* c = claim_of_json c in
              Ok (c :: acc))
            (Ok []) items
          |> Result.map List.rev
    in
    let metrics =
      match Json.member "metrics" j with
      | Some (`Assoc fields) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float v))
            fields
      | _ -> []
    in
    let* complexity =
      match Option.bind (Json.member "complexity" j) Json.to_list with
      | None -> Ok []
      | Some items ->
          List.fold_left
            (fun acc c ->
              let* acc = acc in
              let* c = Ubpa_obs.Complexity.of_json c in
              Ok (c :: acc))
            (Ok []) items
          |> Result.map List.rev
    in
    Ok
      {
        experiment;
        title;
        fast;
        seeds;
        elapsed_ms;
        columns;
        rows;
        claims;
        metrics;
        complexity;
      }

(* ------------------------------------------------------------------ *)
(* Filesystem                                                          *)
(* ------------------------------------------------------------------ *)

let filename experiment = "BENCH_" ^ experiment ^ ".json"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let write ~dir t =
  mkdir_p dir;
  let path = Filename.concat dir (filename t.experiment) in
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_string oc "\n";
  close_out oc;
  path

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let* j = Json.of_string contents in
      Result.map_error
        (fun msg -> Printf.sprintf "%s: %s" path msg)
        (of_json j)

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else
    let is_artifact name =
      String.length name > String.length "BENCH_.json"
      && String.sub name 0 6 = "BENCH_"
      && Filename.check_suffix name ".json"
    in
    let files =
      Sys.readdir dir |> Array.to_list |> List.filter is_artifact
      |> List.sort compare
    in
    let* artifacts =
      List.fold_left
        (fun acc name ->
          let* acc = acc in
          let* a = load (Filename.concat dir name) in
          Ok (a :: acc))
        (Ok []) files
    in
    Ok (List.sort (fun a b -> compare a.experiment b.experiment) artifacts)
