type severity = Info | Failure

type issue = { experiment : string; severity : severity; message : string }

let failures issues = List.filter (fun i -> i.severity = Failure) issues

let pp_issue ppf i =
  Format.fprintf ppf "[%s] %s: %s"
    (match i.severity with Info -> "info" | Failure -> "FAIL")
    i.experiment i.message

let check_claims (artifacts : Artifact.t list) =
  List.concat_map
    (fun (a : Artifact.t) ->
      if a.claims = [] then
        [
          {
            experiment = a.experiment;
            severity = Info;
            message = "no machine-checked claims";
          };
        ]
      else
        List.filter_map
          (fun (c : Artifact.claim) ->
            match c.status with
            | Artifact.Pass -> None
            | Artifact.Fail ->
                Some
                  {
                    experiment = a.experiment;
                    severity = Failure;
                    message =
                      Printf.sprintf "claim %s failed: %s" c.cid c.description;
                  })
          a.claims
        @ List.filter_map
            (fun (f : Ubpa_obs.Complexity.fit) ->
              if f.holds then None
              else
                Some
                  {
                    experiment = a.experiment;
                    severity = Failure;
                    message =
                      Printf.sprintf
                        "complexity fit %s violated: measured slope %.2f \
                         against %s"
                        f.name f.slope
                        (Ubpa_obs.Complexity.shape_label f.shape);
                  })
            a.complexity)
    artifacts

let pct_growth ~baseline ~candidate =
  if baseline = 0. then if candidate = 0. then 0. else infinity
  else (candidate -. baseline) /. Float.abs baseline *. 100.

let compare_metric ~experiment ~threshold name ~baseline ~candidate =
  let growth = pct_growth ~baseline ~candidate in
  if growth > threshold then
    Some
      {
        experiment;
        severity = Failure;
        message =
          Printf.sprintf "%s regressed %.1f%% (%g -> %g, budget %.1f%%)" name
            growth baseline candidate threshold;
      }
  else None

(* Columns whose cells are wall-clock or allocator measurements: their
   values vary run to run, machine to machine and compiler to compiler, so
   the refactor gate masks them. Behavioural statements about these cells
   are claim-gated instead (SCALE.alloc-flat, RT3.under-deadline), and
   claim regressions are always Failures. *)
let exact_exempt_columns =
  [
    "elapsed";
    "rounds/s";
    "msgs/s";
    "speedup";
    "minor-w/msg";
    "frames/s";
    "avg-round-ms";
    "under-deadline";
  ]

(* Exact mode: the refactor gate. The candidate table must be cell-for-cell
   identical to the baseline — any drift in columns, row count, or any
   non-exempt cell is a Failure, regardless of thresholds. *)
let exact_issues ~experiment (base : Artifact.t) (cand : Artifact.t) =
  if base.columns <> cand.columns then
    [
      {
        experiment;
        severity = Failure;
        message =
          Printf.sprintf "columns differ: [%s] -> [%s]"
            (String.concat "; " base.columns)
            (String.concat "; " cand.columns);
      };
    ]
  else if List.length base.rows <> List.length cand.rows then
    [
      {
        experiment;
        severity = Failure;
        message =
          Printf.sprintf "row count differs: %d -> %d"
            (List.length base.rows) (List.length cand.rows);
      };
    ]
  else
    let exempt =
      List.map (fun c -> List.mem c exact_exempt_columns) base.columns
    in
    let mask row =
      if List.length row <> List.length exempt then row
      else List.map2 (fun ex cell -> if ex then "-" else cell) exempt row
    in
    List.concat
      (List.mapi
         (fun i (b_row, c_row) ->
           if mask b_row = mask c_row then []
           else
             [
               {
                 experiment;
                 severity = Failure;
                 message =
                   Printf.sprintf "row %d differs: [%s] -> [%s]" i
                     (String.concat "; " b_row)
                     (String.concat "; " c_row);
               };
             ])
         (List.combine base.rows cand.rows))

let compare_pair ~threshold ~time_threshold ~exact (base : Artifact.t)
    (cand : Artifact.t) =
  let experiment = cand.experiment in
  let claim_regressions =
    List.filter_map
      (fun (bc : Artifact.claim) ->
        match
          List.find_opt
            (fun (cc : Artifact.claim) -> cc.cid = bc.cid)
            cand.claims
        with
        | None ->
            Some
              {
                experiment;
                severity = Failure;
                message = Printf.sprintf "claim %s disappeared" bc.cid;
              }
        | Some cc
          when bc.status = Artifact.Pass && cc.status = Artifact.Fail ->
            Some
              {
                experiment;
                severity = Failure;
                message =
                  Printf.sprintf "claim %s regressed pass -> fail: %s" bc.cid
                    cc.description;
              }
        | Some _ -> None)
      base.claims
  in
  (* Complexity fits (schema v2) gate like claims: a fit that vanished or
     whose envelope no longer holds is a regression. A v1 baseline has no
     fits, so candidates may add them freely. *)
  let complexity_regressions =
    List.filter_map
      (fun (bf : Ubpa_obs.Complexity.fit) ->
        match
          List.find_opt
            (fun (cf : Ubpa_obs.Complexity.fit) -> cf.name = bf.name)
            cand.complexity
        with
        | None ->
            Some
              {
                experiment;
                severity = Failure;
                message =
                  Printf.sprintf "complexity fit %s disappeared" bf.name;
              }
        | Some cf when bf.holds && not cf.holds ->
            Some
              {
                experiment;
                severity = Failure;
                message =
                  Printf.sprintf
                    "complexity fit %s regressed: %s envelope no longer \
                     holds (slope %.2f)"
                    cf.name
                    (Ubpa_obs.Complexity.shape_label cf.shape)
                    cf.slope;
              }
        | Some _ -> None)
      base.complexity
  in
  let comparable =
    base.fast = cand.fast && List.length base.rows = List.length cand.rows
  in
  let metric_issues =
    if not comparable then
      [
        {
          experiment;
          severity = Info;
          message =
            "sweeps differ (fast flag or row count); metric comparison skipped";
        };
      ]
    else
      List.filter_map
        (fun (name, candidate) ->
          match List.assoc_opt name base.metrics with
          | None -> None
          | Some baseline ->
              compare_metric ~experiment ~threshold name ~baseline ~candidate)
        cand.metrics
  in
  let time_issues =
    match time_threshold with
    | None -> []
    | Some t when comparable ->
        Option.to_list
          (compare_metric ~experiment ~threshold:t "elapsed_ms"
             ~baseline:base.elapsed_ms ~candidate:cand.elapsed_ms)
    | Some _ -> []
  in
  let exactness =
    if not exact then []
    else if base.fast <> cand.fast then
      (* A full-mode committed baseline (e.g. BENCH_SCALE.json with its
         n=10,000 rows) cannot be cell-compared against a --fast smoke
         run; the candidate's own claims still gate it. *)
      [
        {
          experiment;
          severity = Info;
          message = "fast flags differ; exact cell comparison skipped";
        };
      ]
    else exact_issues ~experiment base cand
  in
  claim_regressions @ complexity_regressions @ metric_issues @ time_issues
  @ exactness

let compare ?(threshold = 10.) ?time_threshold ?(exact = false)
    ~(baseline : Artifact.t list) ~(candidate : Artifact.t list) () =
  let missing =
    List.filter_map
      (fun (b : Artifact.t) ->
        if
          List.exists
            (fun (c : Artifact.t) -> c.experiment = b.experiment)
            candidate
        then None
        else
          Some
            {
              experiment = b.experiment;
              severity = Failure;
              message = "experiment missing from candidate artifacts";
            })
      baseline
  in
  let new_ones =
    List.filter_map
      (fun (c : Artifact.t) ->
        if
          List.exists
            (fun (b : Artifact.t) -> b.experiment = c.experiment)
            baseline
        then None
        else
          Some
            {
              experiment = c.experiment;
              severity = Info;
              message = "new experiment (no baseline)";
            })
      candidate
  in
  let pairwise =
    List.concat_map
      (fun (c : Artifact.t) ->
        match
          List.find_opt
            (fun (b : Artifact.t) -> b.experiment = c.experiment)
            baseline
        with
        | None -> []
        | Some b -> compare_pair ~threshold ~time_threshold ~exact b c)
      candidate
  in
  missing @ new_ones @ pairwise @ check_claims candidate
