open Ubpa_util
open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  type input = { value : V.t; members : Node_id.t list; f : int }
  type message_view = Value of V.t | Propose of V.t | King of V.t
  type message = message_view
  type stimulus = Protocol.No_stimulus.t
  type output = V.t

  type state = {
    self : Node_id.t;
    members : Node_id.t list;  (** ascending; kings rotate through it *)
    n : int;
    f : int;
    mutable x : V.t;
    mutable local_round : int;
    mutable propose_count_high : bool;
        (** saw >= n - f proposals for the adopted value this phase *)
    mutable king_pending : Node_id.t option;
        (** king whose broadcast arrives next round *)
  }

  let name = "phase-king"

  let init ~self ~round:_ { value; members; f } =
    let members = Node_id.sorted members in
    {
      self;
      members;
      n = List.length members;
      f;
      x = value;
      local_round = 0;
      propose_count_high = false;
      king_pending = None;
    }

  let pp_message ppf = function
    | Value x -> Fmt.pf ppf "value(%a)" V.pp x
    | Propose x -> Fmt.pf ppf "propose(%a)" V.pp x
    | King x -> Fmt.pf ppf "king(%a)" V.pp x

  let compare_message a b =
    match (a, b) with
    | Value x, Value y -> V.compare x y
    | Value _, (Propose _ | King _) -> -1
    | (Propose _ | King _), Value _ -> 1
    | Propose x, Propose y -> V.compare x y
    | Propose _, King _ -> -1
    | King _, Propose _ -> 1
    | King x, King y -> V.compare x y

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  let king_of st phase = List.nth st.members ((phase - 1) mod st.n)

  (* Phase structure (local rounds, 1-based):
     round 3k+1: apply pending king, broadcast value(x);
     round 3k+2: value counts -> maybe propose;
     round 3k+3: propose counts -> maybe adopt; king broadcasts king(x). *)
  let step ~self:_ ~round:_ ~stim:_ st ~inbox =
    st.local_round <- st.local_round + 1;
    let phase = ((st.local_round - 1) / 3) + 1 in
    let pos = ((st.local_round - 1) mod 3) + 1 in
    let tally_of extract =
      let t = Tally.create ~compare:V.compare () in
      List.iter
        (fun (src, msg) ->
          if List.exists (Node_id.equal src) st.members then
            match extract msg with
            | Some x -> Tally.add t ~sender:src x
            | None -> ())
        inbox;
      t
    in
    match pos with
    | 1 ->
        (* Apply the previous phase's king if we were not confident. *)
        (match st.king_pending with
        | None -> ()
        | Some king ->
            let king_value =
              List.fold_left
                (fun acc (src, msg) ->
                  match msg with
                  | King x when Node_id.equal src king -> Some x
                  | _ -> acc)
                None inbox
            in
            (match king_value with
            | Some kx when not st.propose_count_high -> st.x <- kx
            | _ -> ());
            st.king_pending <- None);
        if phase > st.f + 1 then (st, [], Protocol.Stop st.x)
        else begin
          st.propose_count_high <- false;
          (st, [ (Envelope.Broadcast, Value st.x) ], Protocol.Continue)
        end
    | 2 ->
        let t = tally_of (function Value x -> Some x | _ -> None) in
        let sends =
          match Tally.max_by_count t with
          | Some (y, c) when c >= st.n - st.f ->
              [ (Envelope.Broadcast, Propose y) ]
          | _ -> []
        in
        (st, sends, Protocol.Continue)
    | _ ->
        let t = tally_of (function Propose x -> Some x | _ -> None) in
        (match Tally.max_by_count t with
        | Some (z, c) when c >= st.f + 1 ->
            st.x <- z;
            st.propose_count_high <- c >= st.n - st.f
        | _ -> st.propose_count_high <- false);
        st.king_pending <- Some (king_of st phase);
        let sends =
          if Node_id.equal (king_of st phase) st.self then
            [ (Envelope.Broadcast, King st.x) ]
          else []
        in
        (st, sends, Protocol.Continue)
end
