open Ubpa_util
open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  type accepted = { payload : V.t; sender : Node_id.t; accepted_round : int }
  type input = { payload : V.t option; f : int }
  type message_view = Payload of V.t | Present | Echo of V.t * Node_id.t
  type message = message_view
  type stimulus = Protocol.No_stimulus.t
  type output = accepted list

  module Pair = struct
    type t = V.t * Node_id.t

    let compare (m, s) (m', s') =
      match V.compare m m' with 0 -> Node_id.compare s s' | c -> c
  end

  module Pair_map = Map.Make (Pair)

  type state = {
    my_payload : V.t option;
    f : int;
    mutable accepted : accepted list;
    mutable accepted_set : int Pair_map.t;
    mutable local_round : int;
  }

  let name = "st-broadcast"

  let init ~self:_ ~round:_ { payload; f } =
    {
      my_payload = payload;
      f;
      accepted = [];
      accepted_set = Pair_map.empty;
      local_round = 0;
    }

  let pp_message ppf = function
    | Payload m -> Fmt.pf ppf "payload(%a)" V.pp m
    | Present -> Fmt.string ppf "present"
    | Echo (m, s) -> Fmt.pf ppf "echo(%a,%a)" V.pp m Node_id.pp s

  let compare_message a b =
    match (a, b) with
    | Payload m, Payload m' -> V.compare m m'
    | Payload _, (Present | Echo _) -> -1
    | (Present | Echo _), Payload _ -> 1
    | Present, Present -> 0
    | Present, Echo _ -> -1
    | Echo _, Present -> 1
    | Echo (m, s), Echo (m', s') -> (
        match V.compare m m' with 0 -> Node_id.compare s s' | c -> c)

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  let step ~self:_ ~round ~stim:_ st ~inbox =
    st.local_round <- st.local_round + 1;
    match st.local_round with
    | 1 ->
        let send =
          match st.my_payload with Some m -> Payload m | None -> Present
        in
        (st, [ (Envelope.Broadcast, send) ], Protocol.Continue)
    | 2 ->
        let sends =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Payload m -> Some (Envelope.Broadcast, Echo (m, src))
              | Present | Echo _ -> None)
            inbox
        in
        (st, sends, Protocol.Continue)
    | _ ->
        let tally = Tally.create ~compare:Pair.compare () in
        List.iter
          (fun (src, msg) ->
            match msg with
            | Echo (m, s) -> Tally.add tally ~sender:src (m, s)
            | Payload _ | Present -> ())
          inbox;
        let sends = ref [] in
        let newly = ref false in
        List.iter
          (fun pair ->
            let already = Pair_map.mem pair st.accepted_set in
            let count = Tally.count tally pair in
            if (not already) && count >= st.f + 1 then begin
              let m, s = pair in
              sends := (Envelope.Broadcast, Echo (m, s)) :: !sends
            end;
            if (not already) && count >= (2 * st.f) + 1 then begin
              let m, s = pair in
              st.accepted_set <- Pair_map.add pair round st.accepted_set;
              st.accepted <-
                { payload = m; sender = s; accepted_round = round }
                :: st.accepted;
              newly := true
            end)
          (Tally.contents tally);
        let status =
          if !newly then Protocol.Deliver (List.rev st.accepted)
          else Protocol.Continue
        in
        (st, !sends, status)
end
