open Ubpa_util
open Ubpa_sim

type input = { value : float; iterations : int; f : int }
type progress = { iteration : int; estimate : float; n_v : int }
type message = Estimate of float
type output = progress
type stimulus = Protocol.No_stimulus.t

type state = {
  iterations : int;
  f : int;
  mutable estimate : float;
  mutable iteration : int;
}

let name = "dolev-approximate-agreement"

let init ~self:_ ~round:_ { value; iterations; f } =
  { iterations; f; estimate = value; iteration = 0 }

let pp_message ppf (Estimate v) = Fmt.pf ppf "estimate(%g)" v

let compare_message (Estimate a) (Estimate b) = Float.compare a b
let equal_message a b = compare_message a b = 0
let encoded_bits = Protocol.structural_bits

let reduce ~f values =
  match values with
  | [] -> None
  | _ ->
      let sorted = List.sort Float.compare values in
      let n = List.length sorted in
      let discard = min f ((n - 1) / 2) in
      let kept =
        List.filteri (fun i _ -> i >= discard && i < n - discard) sorted
      in
      let lo = List.nth kept 0 in
      let hi = List.nth kept (List.length kept - 1) in
      Some ((lo +. hi) /. 2.)

let step ~self:_ ~round:_ ~stim:_ st ~inbox =
  if st.iteration = 0 then begin
    st.iteration <- 1;
    (st, [ (Envelope.Broadcast, Estimate st.estimate) ], Protocol.Continue)
  end
  else begin
    let values =
      List.fold_left
        (fun (seen, acc) (src, Estimate v) ->
          if Node_id.Set.mem src seen then (seen, acc)
          else (Node_id.Set.add src seen, v :: acc))
        (Node_id.Set.empty, []) inbox
      |> snd
    in
    let estimate =
      match reduce ~f:st.f values with None -> st.estimate | Some m -> m
    in
    st.estimate <- estimate;
    let out =
      { iteration = st.iteration; estimate; n_v = List.length values }
    in
    if st.iteration >= st.iterations then (st, [], Protocol.Stop out)
    else begin
      st.iteration <- st.iteration + 1;
      (st, [ (Envelope.Broadcast, Estimate estimate) ], Protocol.Deliver out)
    end
  end
