(** Phase-king consensus with {e known} [n], [f], and participant list
    (Berman, Garay, Perry — the paper's \cite{king} baseline).

    [f + 1] phases of three rounds each: value exchange (threshold
    [n - f]), proposal exchange (threshold [f + 1]), and the king round in
    which the [k]-th smallest identifier dictates the value of every node
    that saw fewer than [n - f] proposals. Requires consecutive-enough
    knowledge the id-only model denies: the full membership list, [n], and
    [f]. Decides after [3(f + 1) + 1] rounds. *)

open Ubpa_util
open Unknown_ba

module Make (V : Value.S) : sig
  type input = { value : V.t; members : Node_id.t list; f : int }

  type message_view = Value of V.t | Propose of V.t | King of V.t

  include
    Ubpa_sim.Protocol.S
      with type input := input
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = V.t
       and type message = message_view
end
