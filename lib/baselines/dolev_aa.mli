(** Approximate agreement with a {e known} fault bound [f] (Dolev,
    Lynch, Pinter, Stark, Weihl — the classic the paper's Algorithm 4
    generalizes).

    Identical exchange pattern to the unknown-participant version but each
    node discards exactly [f] smallest and [f] largest received values —
    the information the id-only model withholds. Baseline for the
    convergence-rate comparison (the paper claims the rate is unchanged). *)

type input = { value : float; iterations : int; f : int }

type progress = { iteration : int; estimate : float; n_v : int }

type message = Estimate of float

include
  Ubpa_sim.Protocol.S
    with type input := input
     and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
     and type output = progress
     and type message := message

val reduce : f:int -> float list -> float option
(** Discard [f] extremes on each side and take the midpoint. *)
