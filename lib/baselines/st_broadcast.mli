(** Srikanth–Toueg reliable broadcast with a {e known} fault bound [f]
    (the classic algorithm the paper's Algorithm 1 generalizes).

    Identical message pattern to the unknown-participant version, but the
    thresholds are the absolute counts [f + 1] (echo relay) and [2f + 1]
    (accept) instead of the relative [n_v/3] and [2n_v/3]. Used as the
    baseline in the message/round-complexity comparison (the paper claims
    complexity is unaffected by removing the knowledge of [n] and [f]). *)

open Ubpa_util
open Unknown_ba

module Make (V : Value.S) : sig
  type accepted = { payload : V.t; sender : Node_id.t; accepted_round : int }

  type input = { payload : V.t option; f : int }

  type message_view = Payload of V.t | Present | Echo of V.t * Node_id.t

  include
    Ubpa_sim.Protocol.S
      with type input := input
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = accepted list
       and type message = message_view
end
