(** Binary consensus driven by the rotor-coordinator (the paper's original
    king-style algorithm; its full version appears in the appendix of the
    technical report).

    Unlike the early-terminating Algorithm 3 — which decides as soon as a
    [2n_v/3] strong-preference quorum forms — this algorithm runs one
    five-round phase per rotor turn and terminates exactly when the
    rotor-coordinator does, i.e. after every candidate had a turn (O(n)
    rounds). In exchange it is simpler and gives {e strong} validity for
    binary inputs: the output is always the input of some correct node.

    Phase structure (after the two rotor-initialization rounds):

    + broadcast [input(x_v)];
    + on a [2n_v/3] quorum for a value, broadcast [support(x)];
    + on [n_v/3] supports adopt [x]; remember whether a [2n_v/3] support
      quorum was seen;
    + rotor round — the selected coordinator broadcasts its opinion;
    + nodes that saw no [2n_v/3] support quorum adopt the coordinator's
      opinion.

    [n_v] is cumulative (updated every round), and there is no
    missing-message substitution: termination is rotor-driven, so the
    last phases are never starved by early deciders. *)

open Ubpa_util

type input = bool
type output = bool

type message_view =
  | Init
  | Cand_echo of Node_id.t
  | Input of bool
  | Support of bool
  | Opinion of bool

include
  Ubpa_sim.Protocol.S
    with type input := input
     and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
     and type output := output
     and type message = message_view

val current_opinion : state -> bool
val phase : state -> int
