(** Total ordering of events in a dynamic network (Algorithm 6).

    Every logical round [r], each participant broadcasts the events it
    witnessed, collects the events of the previous round into input pairs
    [(origin, event)], and starts a fresh parallel-consensus group tagged
    [r] running "with respect to" its current membership view [S]. A round
    [r'] becomes {e final} once [r - r' > 5·|S^{r'}|/2 + 2] — enough rounds
    for its group to have terminated everywhere — and the chain output is
    the concatenation of the final groups' outputs in round order.

    Guarantees (for [n > 3f] in every round): {e chain-prefix} — any two
    correct participants' chains are prefixes of one another — and
    {e chain-growth} — events keep being appended as long as correct nodes
    submit them.

    Membership: nodes join by broadcasting [present], learn the current
    logical round from the majority of [(ack, r)] replies, and leave by
    broadcasting [absent] (finishing their outstanding groups first).
    Genesis nodes — the initial population — know that the logical clock
    starts at 0 and skip the ack handshake. *)

open Ubpa_util

module Make (V : Value.S) : sig
  module Pc : module type of Parallel_consensus_core.Make (V)

  type chain_entry = {
    group : int;  (** Logical round whose group agreed on the event. *)
    origin : Node_id.t;  (** Node that witnessed the event. *)
    event : V.t;
  }

  type chain_output = {
    logical_round : int;
    frontier : int;  (** Largest round [R] with every round [<= R] final. *)
    chain : chain_entry list;  (** Ordered, oldest first. *)
  }

  type role = Genesis | Joiner

  type stimulus_view = Witness of V.t | Leave

  type message_view =
    | Present
    | Ack of int
    | Absent
    | Event of V.t * int  (** [(m, r)]: event [m] witnessed in round [r]. *)
    | Group of int * Pc.message

  include
    Ubpa_sim.Protocol.S
      with type input = role
       and type stimulus = stimulus_view
       and type output = chain_output
       and type message = message_view

  val membership : state -> Node_id.t list
  (** Current [S], ascending (tests). *)

  val logical_round : state -> int
end
