(** Opinion values.

    The consensus algorithms of the paper operate on real-valued opinions
    ("We consider real number inputs here ... since we use it later for
    ordering events"). The implementation is generic in the opinion type;
    instances for the common cases live here. *)

module type S = sig
  type t

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Bool : S with type t = bool = struct
  type t = bool

  let compare = Stdlib.compare
  let pp = Fmt.bool
end

module Int : S with type t = int = struct
  type t = int

  let compare = Stdlib.compare
  let pp = Fmt.int
end

module Float : S with type t = float = struct
  type t = float

  let compare = Float.compare
  let pp = Fmt.float
end

module String : S with type t = string = struct
  type t = string

  let compare = Stdlib.compare
  let pp = Fmt.string
end

(** Lift a value module to values-with-bottom, used by parallel consensus
    where [None] encodes the paper's ⊥ opinion. *)
module Option (V : S) : S with type t = V.t option = struct
  type t = V.t option

  let compare = Option.compare V.compare
  let pp = Fmt.option ~none:(Fmt.any "⊥") V.pp
end
