open Ubpa_util
open Ubpa_sim

(* Observers normally decide on a strict attestor majority; the
   plurality fallback exists only for the w.h.p.-excluded samples where
   a majority can never form. It must not fire before every correct
   attestor has had time to report — otherwise an adversary that pushes
   forged reports from round 1 would meet a fallback quorum of one — so
   it is gated on a deadline computed from public data: the inner
   consensus's worst-case decision round at committee size [k] with
   fewer than [k/3] faulty members (2 init rounds + 5·(f+1) phase
   rounds), one delivery round for the report, plus slack. *)
let fallback_deadline ~k = 2 + (5 * (((k + 2) / 3) + 1)) + 1 + 4

module Make (V : Value.S) = struct
  module Core = Consensus_core.Make (V)

  type input = { value : V.t; seed : int64; universe : Node_id.t list }
  type stimulus = Protocol.No_stimulus.t
  type output = V.t
  type message = Inner of Core.message | Report of V.t

  let name = "committee"

  let pp_message ppf = function
    | Inner m -> Fmt.pf ppf "inner:%a" Core.pp_message m
    | Report v -> Fmt.pf ppf "report:%a" V.pp v

  let compare_message a b =
    match (a, b) with
    | Inner a, Inner b -> Core.compare_message a b
    | Report a, Report b -> V.compare a b
    | Inner _, Report _ -> -1
    | Report _, Inner _ -> 1

  let equal_message a b = compare_message a b = 0

  (* Two bits of constructor tag on top of the wrapped payload's
     reference encoding — the committee overlay prices exactly what the
     dense protocols price, plus the wrapper. *)
  let encoded_bits = function
    | Inner m -> 2 + Core.encoded_bits m
    | Report v -> 2 + Protocol.structural_bits v

  let kind = function Inner _ -> "inner" | Report _ -> "report"

  type member_state = {
    core : Core.t;
    committee : Node_id.Set.t;
    committee_list : Node_id.t list;
  }

  type observer_state = {
    value : V.t;
    attestors : Node_id.Set.t;
    q : int;
    deadline : int;
    mutable reports : (Node_id.t * V.t) list;
        (** first report kept per attestor *)
  }

  type role = Member of member_state | Observer of observer_state

  type state = {
    seed : int64;
    universe : Node_id.t list;
    role : role;
    mutable decided : V.t option;
  }

  let init ~self ~round:_ (input : input) =
    let universe = Node_id.sorted input.universe in
    let committee_list = Committee.members ~seed:input.seed ~universe in
    let committee = Node_id.Set.of_list committee_list in
    let role =
      if Node_id.Set.mem self committee then
        Member
          { core = Core.create ~self ~input:input.value; committee;
            committee_list }
      else
        let att =
          Committee.attestors ~seed:input.seed ~universe ~self
        in
        Observer
          {
            value = input.value;
            attestors = Node_id.Set.of_list att;
            q = List.length att;
            deadline = fallback_deadline ~k:(List.length committee_list);
            reports = [];
          }
    in
    { seed = input.seed; universe; role; decided = None }

  (* The consensus core speaks in broadcasts; the overlay rewrites each
     one into k addressed unicasts — the committee plus the sender
     itself, preserving the dense engine's own-broadcast delivery — so a
     member's per-round fan-out is the committee, never the population. *)
  let to_committee (m : member_state) sends =
    List.concat_map
      (fun (dest, msg) ->
        match dest with
        | Envelope.Broadcast ->
            List.map (fun peer -> (Envelope.To peer, Inner msg))
              m.committee_list
        | Envelope.To p -> [ (Envelope.To p, Inner msg) ])
      sends

  let step_member st (m : member_state) ~self ~inbox =
    let inner_inbox =
      List.filter_map
        (fun (src, msg) ->
          match msg with
          | Inner im when Node_id.Set.mem src m.committee -> Some (src, im)
          | Inner _ | Report _ -> None)
        inbox
    in
    let sends, status = Core.step m.core ~inbox:inner_inbox in
    let sends = to_committee m sends in
    match status with
    | Core.Running -> (st, sends, Protocol.Continue)
    | Core.Decided v ->
        (* Spreading phase: push the decision to exactly the nodes that
           sampled this member as an attestor — Õ(√n) unicasts — then
           halt. Sends returned alongside [Stop] are still delivered. *)
        st.decided <- Some v;
        let listeners =
          Committee.audience ~seed:st.seed ~universe:st.universe ~member:self
        in
        let reports =
          List.map (fun o -> (Envelope.To o, Report v)) listeners
        in
        (st, sends @ reports, Protocol.Stop v)

  let tally reports =
    let rec add acc v =
      match acc with
      | [] -> [ (v, 1) ]
      | (w, c) :: rest ->
          if V.compare v w = 0 then (w, c + 1) :: rest
          else (w, c) :: add rest v
    in
    List.fold_left (fun acc (_, v) -> add acc v) [] reports

  (* Deterministic plurality: highest count, ties to the V.compare-least
     value — every correct observer with the same report multiset picks
     the same value. *)
  let plurality reports =
    match tally reports with
    | [] -> None
    | t ->
        Some
          (fst
             (List.fold_left
                (fun (bv, bc) (v, c) ->
                  if c > bc || (c = bc && V.compare v bv < 0) then (v, c)
                  else (bv, bc))
                (List.hd t) (List.tl t)))

  let step_observer st (o : observer_state) ~round ~inbox =
    List.iter
      (fun (src, msg) ->
        match msg with
        | Report v
          when Node_id.Set.mem src o.attestors
               && not (List.exists (fun (s, _) -> Node_id.equal s src) o.reports)
          ->
            o.reports <- (src, v) :: o.reports
        | Report _ | Inner _ -> ())
      inbox;
    let majority =
      List.find_opt (fun (_, c) -> 2 * c > o.q) (tally o.reports)
    in
    match majority with
    | Some (v, _) ->
        st.decided <- Some v;
        (st, [], Protocol.Stop v)
    | None when round >= o.deadline -> (
        (* Past the deadline every correct attestor has reported (the
           committee's worst-case decision round is public arithmetic in
           k), so a missing majority means an unlucky sample. Terminate
           anyway: plurality of what arrived, own input when nothing
           did — the w.h.p. caveat lives here and only here. *)
        match plurality o.reports with
        | Some v ->
            st.decided <- Some v;
            (st, [], Protocol.Stop v)
        | None ->
            st.decided <- Some o.value;
            (st, [], Protocol.Stop o.value))
    | None -> (st, [], Protocol.Continue)

  let step ~self ~round ~stim:_ st ~inbox =
    match st.role with
    | Member m -> step_member st m ~self ~inbox
    | Observer o -> step_observer st o ~round ~inbox

  (* ----- introspection (tests, traces, CLI) ----- *)

  let is_member st = match st.role with Member _ -> true | Observer _ -> false

  let committee st =
    match st.role with
    | Member m -> m.committee_list
    | Observer _ -> Committee.members ~seed:st.seed ~universe:st.universe

  let attestor_ids st =
    match st.role with
    | Member _ -> []
    | Observer o -> Node_id.Set.elements o.attestors

  let reports_heard st =
    match st.role with
    | Member _ -> []
    | Observer o ->
        List.sort (fun (a, _) (b, _) -> Node_id.compare a b) o.reports

  let decided st = st.decided
end
