(** Standalone rotor-coordinator protocol (Algorithm 2).

    Selects one coordinator per round from a candidate set maintained with
    reliable-broadcast-style echoes, terminating as soon as a coordinator
    repeats. Theorem "rc" of the paper: for [n > 3f] every correct node
    terminates within [O(n)] rounds and there is a {e good round} — a round
    in which every correct node selects the same, correct coordinator —
    whose opinion every correct node then accepts.

    Each node carries a fixed opinion (its input); the consensus algorithms
    embed {!Rotor_core} directly to use evolving opinions. *)

open Ubpa_util

module Make (V : Value.S) : sig
  type output = {
    selections : (int * Node_id.t) list;
        (** (rotor round index, coordinator) pairs, oldest first. *)
    accepted_opinions : (int * Node_id.t * V.t) list;
        (** (rotor round index of the coordinator, coordinator, opinion)
            accepted one round after each selection. *)
    terminated_round : int;  (** Simulator round of the break. *)
  }

  include
    Ubpa_sim.Protocol.S
      with type input = V.t
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output := output

  type message_view =
    | Init
    | Echo of Node_id.t
    | Opinion of V.t

  val view : message -> message_view
  val inject : message_view -> message
end
