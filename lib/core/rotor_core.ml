open Ubpa_util

type t = {
  mutable c : Node_id.t list;  (** candidate coordinators, ascending *)
  mutable s : Node_id.Set.t;  (** already-selected coordinators *)
  mutable r : int;  (** loop index, starts at 0 *)
  mutable history : (int * Node_id.t) list;  (** newest first *)
  echoers : Interner.t;  (** dense indices for echo senders *)
}

let create () =
  {
    c = [];
    s = Node_id.Set.empty;
    r = 0;
    history = [];
    echoers = Interner.create ();
  }

type step_result = {
  selected : Node_id.t option;
  relay_echoes : Node_id.t list;
  i_am_coordinator : bool;
  finished : bool;
}

let rotor_round t ~self ~n_v ~echoes =
  let tally =
    Tally.create_dense ~compare:Node_id.compare ~interner:t.echoers ()
  in
  List.iter (fun (sender, p) -> Tally.add tally ~sender p) echoes;
  let fresh p = not (List.exists (Node_id.equal p) t.c) in
  (* B_v gathers re-echoes for candidates past n_v/3 (reliable-broadcast
     relay step); candidates past 2n_v/3 enter C_v before selection. *)
  let relay_echoes =
    Tally.meeting tally ~threshold:(fun count ->
        Threshold.ge_third ~count ~of_:n_v)
    |> List.filter fresh
  in
  let adds =
    Tally.meeting tally ~threshold:(fun count ->
        Threshold.ge_two_thirds ~count ~of_:n_v)
    |> List.filter fresh
  in
  if adds <> [] then t.c <- Node_id.sorted (adds @ t.c);
  match t.c with
  | [] ->
      t.r <- t.r + 1;
      { selected = None; relay_echoes; i_am_coordinator = false; finished = false }
  | _ :: _ ->
      let size = List.length t.c in
      let p = List.nth t.c (t.r mod size) in
      if Node_id.Set.mem p t.s && t.r >= size then begin
        (* Re-selection after the index wrapped: Algorithm 2's "break".
           The proof of Lemma "rc-gdrnd" derives its contradiction from
           "selecting the same identifier again implies r > |C_v|", so the
           wrap is part of the break condition. Without it a late
           insertion of a smaller identifier shifts C_v and re-hits an
           already-selected coordinator early (see DESIGN.md). *)
        t.r <- t.r + 1;
        { selected = None; relay_echoes; i_am_coordinator = false; finished = true }
      end
      else begin
        (* Either a fresh coordinator, or a shift-induced repeat before the
           wrap — in the latter case the round simply repeats p's turn. *)
        t.s <- Node_id.Set.add p t.s;
        t.history <- (t.r, p) :: t.history;
        t.r <- t.r + 1;
        {
          selected = Some p;
          relay_echoes;
          i_am_coordinator = Node_id.equal p self;
          finished = false;
        }
      end

let candidates t = t.c
let selections t = List.rev t.history

let copy t =
  { t with echoers = Interner.copy t.echoers }

(* Canonical description of the parts of the rotor that influence future
   rounds: C_v (already ascending), S_v (a set), and the loop index.
   [history] only feeds introspection and [echoers] is an index table, so
   neither belongs in the fingerprint. *)
let fingerprint t =
  Fmt.str "c=%a;s=%a;r=%d"
    Fmt.(list ~sep:comma Node_id.pp)
    t.c
    Fmt.(list ~sep:comma Node_id.pp)
    (Node_id.Set.elements t.s)
    t.r
