open Ubpa_util

(* Distinct derivation tags keep the two sampling streams (committee,
   per-node attestor sets) independent consumers of one public seed: a
   new stream never perturbs an existing one, which is what keeps
   committed baselines stable as samplers are added. *)
let gamma = 0x9E3779B97F4A7C15L
let committee_tag = 0x636F6D6D4B53L (* "commKS" *)
let attestor_tag = 0x61747473L (* "atts" *)

let derive ~seed ~tag ~salt =
  Rng.create
    (Int64.logxor seed
       (Int64.mul gamma (Int64.add tag (Int64.of_int (salt + 1)))))

let ceil_log2 n =
  let rec go acc m = if m <= 1 then acc else go (acc + 1) ((m + 1) / 2) in
  go 0 (max 1 n)

let committee_size n =
  if n <= 0 then 0
  else min n (int_of_float (ceil (2.0 *. sqrt (float_of_int n))))

let attestor_size n = min (committee_size n) (max 3 (2 * ceil_log2 n))

(* [count] distinct indices in [0, bound) by rejection — O(count) expected
   draws while count is well below bound (committees are ~2√n of n;
   attestor sets ~2·log n of k), degrading gracefully to coupon-collector
   cost only on toy populations where count ≈ bound. *)
let sample_indices rng ~bound ~count =
  let seen = Hashtbl.create (4 * count) in
  let rec draw acc got =
    if got = count then acc
    else
      let i = Rng.int rng bound in
      if Hashtbl.mem seen i then draw acc got
      else begin
        Hashtbl.add seen i ();
        draw (i :: acc) (got + 1)
      end
  in
  if count <= 0 || bound <= 0 then [] else draw [] 0

let member_indices ~seed ~n =
  let rng = derive ~seed ~tag:committee_tag ~salt:0 in
  sample_indices rng ~bound:n ~count:(committee_size n)

let members ~seed ~universe =
  let u = Array.of_list (Node_id.sorted universe) in
  member_indices ~seed ~n:(Array.length u)
  |> List.map (Array.get u)
  |> Node_id.sorted

(* Indices into the *sorted committee* of the q members node [self]
   samples as its attestors. Keyed by the public seed and the sampler's
   own identifier, so every node can recompute anyone's attestor set. *)
let attestor_indices ~seed ~n ~k ~self =
  let rng = derive ~seed ~tag:attestor_tag ~salt:(Node_id.to_int self) in
  sample_indices rng ~bound:k ~count:(min k (attestor_size n))

let attestors ~seed ~universe ~self =
  let committee = Array.of_list (members ~seed ~universe) in
  let n = List.length universe and k = Array.length committee in
  attestor_indices ~seed ~n ~k ~self
  |> List.map (Array.get committee)
  |> Node_id.sorted

let audience ~seed ~universe ~member =
  let u = Node_id.sorted universe in
  let committee = Array.of_list (members ~seed ~universe) in
  let n = List.length u and k = Array.length committee in
  let member_idx = ref (-1) in
  Array.iteri
    (fun i id -> if Node_id.equal id member then member_idx := i)
    committee;
  if !member_idx < 0 then []
  else
    List.filter
      (fun o ->
        List.exists (Int.equal !member_idx)
          (attestor_indices ~seed ~n ~k ~self:o))
      u
