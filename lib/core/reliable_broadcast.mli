(** Reliable broadcast in the id-only model (Algorithm 1 of the paper).

    A designated node [s] broadcasts a payload [(m, s)] in the first round;
    every other correct node broadcasts [present]. Correct nodes relay
    [echo(m, s)] messages and accept [(m, s)] once [2 n_v / 3] distinct
    echoes arrive in a round, where [n_v] is the number of distinct nodes
    heard from so far. For [n > 3f] the protocol satisfies

    - {e correctness}: a correct sender's payload is accepted by every
      correct node (in round 3);
    - {e unforgeability}: a payload attributed to a correct node is only
      accepted if that node really broadcast it;
    - {e relay}: if some correct node accepts in round [r], every correct
      node accepts by round [r + 1].

    The protocol intentionally never terminates (the paper uses it as a
    subroutine inside algorithms with their own termination); drive it with
    {!Ubpa_sim.Network.Make.run_until}.

    Multiple simultaneous senders are supported: acceptance is tracked per
    [(payload, sender)] pair. *)

open Ubpa_util

module Make (V : Value.S) : sig
  type accepted = { payload : V.t; sender : Node_id.t; accepted_round : int }

  (** [input] is [Some m] for a designated sender and [None] for the rest.
      [output] is the cumulative list of accepted pairs, oldest first,
      re-delivered on every new acceptance. *)
  include
    Ubpa_sim.Protocol.S
      with type input = V.t option
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = accepted list

  (** Message constructors are exposed so adversary strategies can forge
      protocol traffic. *)
  type message_view =
    | Payload of V.t  (** The sender's round-1 broadcast; src authenticates. *)
    | Present
    | Echo of V.t * Node_id.t

  val view : message -> message_view
  val inject : message_view -> message

  val copy_state : state -> state
  (** Independent snapshot; stepping the copy never affects the original.
      Used by the bounded checker to branch a configuration. *)

  val state_key : state -> string
  (** Canonical id-space fingerprint: equal keys mean the two states
      behave identically on identical future inboxes (the [accepted] list
      is compared as a set — its order only shows up in the output list,
      never in a threshold). Feeds the checker's state-hash dedup. *)
end
