(** Byzantine renaming in the id-only model (appendix of the paper).

    Nodes carry unique but arbitrarily large identifiers; the task is to
    consistently assign every node a small name in [1..|S|]. The algorithm
    grows a set [S] of announced identifiers with reliable-broadcast-style
    echoes; once [S] has been stable for two consecutive rounds a node
    floats a [terminate(k)] vote which is itself relayed reliably, and on a
    [2n_v/3] quorum every correct node outputs the rank of each identifier
    in its (by then common) set [S]. Terminates in [O(f)] rounds.

    The appendix pseudocode contains vestigial duplicate lines; this is the
    cleaned algorithm its correctness proof (Lemma "rn-s") describes. *)

open Ubpa_util

type output = {
  names : (Node_id.t * int) list;
      (** Every renamed identifier with its 1-based rank, ascending. *)
  my_name : int;
}

type message_view =
  | Init
  | Echo of Node_id.t
  | Terminate of int  (** [terminate(k)]: [S] stable since round [k]. *)

include
  Ubpa_sim.Protocol.S
    with type input = unit
     and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
     and type output := output
     and type message = message_view
