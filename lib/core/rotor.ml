open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) = struct
  type message_view = Init | Echo of Node_id.t | Opinion of V.t
  type message = message_view

  let view m = m
  let inject m = m

  type input = V.t
  type stimulus = Protocol.No_stimulus.t

  type output = {
    selections : (int * Node_id.t) list;
    accepted_opinions : (int * Node_id.t * V.t) list;
    terminated_round : int;
  }

  type state = {
    opinion : V.t;
    core : Rotor_core.t;
    mutable heard_from : Node_id.Set.t;
    mutable local_round : int;
    mutable prev_selected : (int * Node_id.t) option;
        (** rotor round index and id of the coordinator selected last round,
            whose opinion arrives this round. *)
    mutable accepted_opinions : (int * Node_id.t * V.t) list;  (** newest first *)
  }

  let name = "rotor-coordinator"

  let init ~self:_ ~round:_ opinion =
    {
      opinion;
      core = Rotor_core.create ();
      heard_from = Node_id.Set.empty;
      local_round = 0;
      prev_selected = None;
      accepted_opinions = [];
    }

  let pp_message ppf = function
    | Init -> Fmt.string ppf "init"
    | Echo p -> Fmt.pf ppf "echo(%a)" Node_id.pp p
    | Opinion x -> Fmt.pf ppf "opinion(%a)" V.pp x

  let compare_message a b =
    match (a, b) with
    | Init, Init -> 0
    | Init, (Echo _ | Opinion _) -> -1
    | (Echo _ | Opinion _), Init -> 1
    | Echo p, Echo q -> Node_id.compare p q
    | Echo _, Opinion _ -> -1
    | Opinion _, Echo _ -> 1
    | Opinion x, Opinion y -> V.compare x y

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  let note_senders st inbox =
    List.iter
      (fun (src, _) -> st.heard_from <- Node_id.Set.add src st.heard_from)
      inbox

  let step ~self ~round ~stim:_ st ~inbox =
    st.local_round <- st.local_round + 1;
    note_senders st inbox;
    let n_v = Node_id.Set.cardinal st.heard_from in
    match st.local_round with
    | 1 -> (st, [ (Envelope.Broadcast, Init) ], Protocol.Continue)
    | 2 ->
        let sends =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Init -> Some (Envelope.Broadcast, Echo src)
              | Echo _ | Opinion _ -> None)
            inbox
        in
        (st, sends, Protocol.Continue)
    | _ ->
        (* Accept the opinion of the coordinator selected in the previous
           round, if it arrived (Algorithm 2, line "opnac"). *)
        (match st.prev_selected with
        | None -> ()
        | Some (ridx, p') ->
            List.iter
              (fun (src, msg) ->
                match msg with
                | Opinion x when Node_id.equal src p' ->
                    st.accepted_opinions <-
                      (ridx, p', x) :: st.accepted_opinions
                | Opinion _ | Init | Echo _ -> ())
              inbox);
        let echoes =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Echo p -> Some (src, p)
              | Init | Opinion _ -> None)
            inbox
        in
        let res = Rotor_core.rotor_round st.core ~self ~n_v ~echoes in
        if res.finished then
          ( st,
            [],
            Protocol.Stop
              {
                selections = Rotor_core.selections st.core;
                accepted_opinions = List.rev st.accepted_opinions;
                terminated_round = round;
              } )
        else begin
          st.prev_selected <-
            Option.map
              (fun p ->
                (* rotor index of this selection = last recorded entry *)
                match List.rev (Rotor_core.selections st.core) with
                | (i, _) :: _ -> (i, p)
                | [] -> (0, p))
              res.selected;
          let sends =
            List.map (fun p -> (Envelope.Broadcast, Echo p)) res.relay_echoes
          in
          let sends =
            if res.i_am_coordinator then
              (Envelope.Broadcast, Opinion st.opinion) :: sends
            else sends
          in
          (st, sends, Protocol.Continue)
        end
end
