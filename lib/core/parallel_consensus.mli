(** Standalone parallel-consensus protocol: a {!Ubpa_sim.Protocol.S}
    wrapper over {!Parallel_consensus_core} (Algorithm 5, Theorem
    "parCon").

    Each node contributes a set of [(identifier, value)] input pairs — not
    necessarily the same set at every node — and all correct nodes output a
    common set of pairs: pairs held by every correct node are guaranteed to
    appear; identifiers held by no correct node are guaranteed not to. *)

module Make (V : Value.S) : sig
  module Core : module type of Parallel_consensus_core.Make (V)

  include
    Ubpa_sim.Protocol.S
      with type input = (int * V.t) list
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = (int * V.t) list
       and type message = Core.message

  val decided_all : state -> (int * V.t option) list
  (** All decided instances including ⊥ decisions (tests). *)
end
