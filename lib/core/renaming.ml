open Ubpa_util
open Ubpa_sim
module Int_set = Set.Make (Int)

type output = { names : (Node_id.t * int) list; my_name : int }
type message_view = Init | Echo of Node_id.t | Terminate of int
type message = message_view
type input = unit
type stimulus = Protocol.No_stimulus.t

type state = {
  self : Node_id.t;
  mutable local_round : int;
  mutable heard_from : Node_id.Set.t;
  mutable s : Node_id.Set.t;  (** the growing set of announced identifiers *)
  mutable last_change : int;  (** last local round in which [s] grew *)
  mutable relayed_terminates : Int_set.t;  (** k values already relayed *)
}

let name = "renaming"

let init ~self ~round:_ () =
  {
    self;
    local_round = 0;
    heard_from = Node_id.Set.empty;
    s = Node_id.Set.empty;
    last_change = 0;
    relayed_terminates = Int_set.empty;
  }

let pp_message ppf = function
  | Init -> Fmt.string ppf "init"
  | Echo p -> Fmt.pf ppf "echo(%a)" Node_id.pp p
  | Terminate k -> Fmt.pf ppf "terminate(%d)" k

(* Ground constructors (ints and node ids only): the structural order is
   already the right one. *)
include Protocol.Structural (struct
  type t = message
end)

let ranks s =
  List.mapi (fun i p -> (p, i + 1)) (Node_id.Set.elements s)

let step ~self:_ ~round:_ ~stim:_ st ~inbox =
  st.local_round <- st.local_round + 1;
  List.iter
    (fun (src, _) -> st.heard_from <- Node_id.Set.add src st.heard_from)
    inbox;
  let n_v = Node_id.Set.cardinal st.heard_from in
  match st.local_round with
  | 1 -> (st, [ (Envelope.Broadcast, Init) ], Protocol.Continue)
  | 2 ->
      let sends =
        List.filter_map
          (fun (src, msg) ->
            match msg with
            | Init -> Some (Envelope.Broadcast, Echo src)
            | Echo _ | Terminate _ -> None)
          inbox
      in
      (st, sends, Protocol.Continue)
  | r ->
      let echo_tally = Tally.create ~compare:Node_id.compare () in
      let term_tally = Tally.create ~compare:Int.compare () in
      List.iter
        (fun (src, msg) ->
          match msg with
          | Echo p -> Tally.add echo_tally ~sender:src p
          | Terminate k -> Tally.add term_tally ~sender:src k
          | Init -> ())
        inbox;
      let m = ref [] in
      let fresh p = not (Node_id.Set.mem p st.s) in
      (* Identifier echoes, reliable-broadcast style. *)
      List.iter
        (fun p ->
          if fresh p then m := Echo p :: !m)
        (Tally.meeting echo_tally ~threshold:(fun count ->
             Threshold.ge_third ~count ~of_:n_v));
      let adds =
        Tally.meeting echo_tally ~threshold:(fun count ->
            Threshold.ge_two_thirds ~count ~of_:n_v)
        |> List.filter fresh
      in
      if adds <> [] then begin
        List.iter (fun p -> st.s <- Node_id.Set.add p st.s) adds;
        st.last_change <- r
      end;
      (* Stability vote: S unchanged through rounds r-1 and r. *)
      if
        r - st.last_change >= 2
        && not (Int_set.mem (r - 1) st.relayed_terminates)
      then begin
        st.relayed_terminates <- Int_set.add (r - 1) st.relayed_terminates;
        m := Terminate (r - 1) :: !m
      end;
      (* Relay terminate votes past n_v/3. *)
      List.iter
        (fun k ->
          if not (Int_set.mem k st.relayed_terminates) then begin
            st.relayed_terminates <- Int_set.add k st.relayed_terminates;
            m := Terminate k :: !m
          end)
        (Tally.meeting term_tally ~threshold:(fun count ->
             Threshold.ge_third ~count ~of_:n_v));
      let sends = List.map (fun msg -> (Envelope.Broadcast, msg)) !m in
      (* Quorum of terminate votes: output the ranks. *)
      let decided =
        Tally.meeting term_tally ~threshold:(fun count ->
            Threshold.ge_two_thirds ~count ~of_:n_v)
        <> []
      in
      if decided then begin
        let names = ranks st.s in
        let my_name =
          match List.assoc_opt st.self names with Some i -> i | None -> 0
        in
        (st, sends, Protocol.Stop { names; my_name })
      end
      else (st, sends, Protocol.Continue)
