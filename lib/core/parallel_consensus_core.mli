(** Parallel consensus (Algorithm 5): a bundle of [EarlyConsensus(id)]
    instances sharing one membership and one rotor-coordinator, as a
    self-clocked state machine (driven like {!Consensus_core}).

    Every instance follows the 5-round phase schedule of Algorithm 3 in
    lockstep with the others; ⊥ opinions are [None]. Properties (Theorem
    "parCon", for [n > 3f]):

    - {e validity}: a pair [(id, x)], [x ≠ ⊥], input at every correct node
      is output by every correct node;
    - {e agreement}: correct nodes output the same pair set;
    - {e termination}: all instances decide in [O(f)] phases; instances
      whose identifier no correct node holds terminate in the first phase
      without producing output.

    {2 Interpretation of the paper's substitution rules}

    The caption of Algorithm 5 is compressed; we realize it as follows
    (DESIGN.md discusses the choice):

    - {e discovery} is possible only during the first phase, on an
      [id:input] at position 2, an [id:prefer] at position 3, or an
      [id:strongprefer] at the rotor position — later [id]-messages for
      unknown instances are discarded;
    - {e first phase}: members silent in a counting slot are counted as the
      ⊥ message of that slot; explicit [nopreference] /
      [nostrongpreference] markers count as nothing;
    - {e later phases}: aware nodes broadcast their input slot
      unconditionally (an explicit [input(⊥)] plays the role of a marker),
      so a member silent in a slot is terminated or Byzantine-silent and is
      substituted with the node's {e own} most recent send of that slot —
      the caption's rule, which is what lets the remaining nodes finish one
      phase after the first termination. *)

open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) : sig
  type opinion = V.t option
  (** [None] is the paper's ⊥. *)

  type body =
    | Input of opinion
    | Prefer of opinion
    | Strongprefer of opinion
    | Nopreference
    | Nostrongpreference
    | Opinion of opinion  (** coordinator's per-instance opinion *)

  type message =
    | Init
    | Cand_echo of Node_id.t
    | Inst of int * body  (** instance-tagged traffic *)

  val pp_message : message Fmt.t

  val compare_message : message -> message -> int
  (** Constructor rank, then instance id, then per-constructor argument
      order; exposed so wrappers satisfy {!Ubpa_sim.Protocol.S} by
      delegation. *)

  val equal_message : message -> message -> bool

  val encoded_bits : message -> int
  (** Reference-encoding wire size ({!Ubpa_sim.Protocol.S.encoded_bits}). *)

  type status =
    | Running
    | Done of (int * V.t) list
        (** All instances decided; the non-⊥ outputs, sorted by id. *)

  type t

  val create :
    ?restrict:Node_id.Set.t ->
    self:Node_id.t ->
    inputs:(int * V.t) list ->
    unit ->
    t
  (** [restrict] drops messages from senders outside the given set — used
      by the total-ordering algorithm to run an instance group "with
      respect to [S]". *)

  val step :
    t ->
    inbox:(Node_id.t * message) list ->
    (Envelope.dest * message) list * status

  (** {2 Introspection} *)

  val instances : t -> int list
  (** Known instance identifiers, ascending. *)

  val decided : t -> (int * opinion) list
  (** Decided instances so far including ⊥ decisions, ascending id. *)

  val opinion_of : t -> int -> opinion option
  (** Current opinion in one instance, [None] if unknown id. *)

  val members : t -> Node_id.t list

  val phase : t -> int
end
