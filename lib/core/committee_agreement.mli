(** Sub-quadratic Byzantine agreement by committee sampling
    (King–Saia style; "Breaking the O(n²) Bit Barrier").

    Every dense protocol in this library costs Ω(n²) bits per node; this
    one replaces all-to-all traffic with a sparse, seed-derived overlay
    that cuts each node's wire budget — sent plus received bits, see
    {!Ubpa_obs.Wire.budget_of} — by a factor of n (Θ(k²) = Θ(n) per
    member, dominated by the reused core's input-relay rounds; the full
    King–Saia construction sparsifies those too — see
    docs/SCALABILITY.md):

    + {b Committee phase}: the [⌈2√n⌉] sampled members
      ({!Committee.members}) run the unmodified early-terminating
      consensus core ({!Consensus_core.Make}) among themselves, with the
      core's broadcasts rewritten into addressed unicasts to the
      committee, so inner traffic is [O(√n)] messages per member per
      round instead of [O(n)].
    + {b Spreading phase} (almost-everywhere → everywhere): each node
      samples [≈2log₂ n] committee members as its {e attestors}
      ({!Committee.attestors}); a member that decides pushes one
      [Report] to exactly the nodes that sampled it
      ({!Committee.audience}, ≈ √n·log n unicasts) and halts. An
      observer decides on a strict majority of its attestor set; past a
      public deadline — the committee's worst-case decision round,
      arithmetic in [k] — it falls back to a deterministic plurality
      (ties to the [V.compare]-least value, its own input when no report
      arrived) so unlucky samples still terminate. The deadline gate is
      what keeps an adversary that pushes forged reports from round 1
      from ever meeting a fallback quorum before honest reports land.

    Guarantees are with high probability over the seed, against a
    non-adaptive adversary corrupting [f ≤ (1−ε)·n/3] nodes fixed before
    the seed is revealed — see docs/MODEL.md and docs/SCALABILITY.md.
    The bounded model checker does not model this protocol
    (docs/CHECKING.md): its state space is population-sized, and its
    guarantees are probabilistic rather than exhaustive. *)

open Ubpa_util

module Make (V : Value.S) : sig
  module Core : module type of Consensus_core.Make (V)

  type input = {
    value : V.t;  (** This node's opinion. *)
    seed : int64;  (** Public sampling seed, shared by every node. *)
    universe : Node_id.t list;
        (** The full identifier roster the samples are drawn over; every
            node must receive the same universe (any order, duplicates
            ignored). *)
  }

  type message = Inner of Core.message | Report of V.t

  include
    Ubpa_sim.Protocol.S
      with type input := input
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = V.t
       and type message := message

  val kind : message -> string
  (** Wire classification: ["inner"] for committee-internal consensus
      traffic, ["report"] for spreading-phase decision pushes. *)

  (** {2 Introspection (tests, traces)} *)

  val is_member : state -> bool

  val committee : state -> Node_id.t list
  (** The sampled committee, ascending (recomputed from public data). *)

  val attestor_ids : state -> Node_id.t list
  (** This observer's attestor sample; [[]] for members. *)

  val reports_heard : state -> (Node_id.t * V.t) list
  (** Accepted (first-per-attestor) reports, ascending by attestor. *)

  val decided : state -> V.t option
end
