open Ubpa_util
open Ubpa_sim

type input = { value : float; iterations : int }
type progress = { iteration : int; estimate : float; n_v : int }
type message = Estimate of float
type output = progress
type stimulus = Leave

type state = {
  iterations : int;
  mutable estimate : float;
  mutable iteration : int;  (** completed iterations *)
  mutable leaving : bool;
}

let name = "approximate-agreement"

let init ~self:_ ~round:_ { value; iterations } =
  if iterations < 1 then invalid_arg "Approx_agreement: iterations must be >= 1";
  { iterations; estimate = value; iteration = 0; leaving = false }

let pp_message ppf (Estimate v) = Fmt.pf ppf "estimate(%g)" v

(* [Float.compare] rather than the structural default: estimates are
   floats, and polymorphic comparison on boxed floats is both slower and
   ill-defined on nan. *)
let compare_message (Estimate a) (Estimate b) = Float.compare a b
let equal_message a b = compare_message a b = 0
let encoded_bits = Protocol.structural_bits

let midpoint_rule values =
  match values with
  | [] -> None
  | _ ->
      let sorted = List.sort Float.compare values in
      let n_v = List.length sorted in
      let discard = Threshold.floor_third n_v in
      let kept =
        List.filteri (fun i _ -> i >= discard && i < n_v - discard) sorted
      in
      (* n_v >= 1 implies discard < n_v/2 only when n_v >= ... ; for tiny
         n_v (1 or 2) nothing is discarded, so [kept] is never empty. *)
      let lo = List.nth kept 0 in
      let hi = List.nth kept (List.length kept - 1) in
      Some ((lo +. hi) /. 2.)

let step ~self:_ ~round:_ ~stim st ~inbox =
  if List.mem Leave stim then st.leaving <- true;
  if st.iteration = 0 then begin
    (* First activity: just broadcast the input (Algorithm 4 line 1). *)
    st.iteration <- 1;
    (st, [ (Envelope.Broadcast, Estimate st.estimate) ], Protocol.Continue)
  end
  else begin
    (* One value per sender: a double-voting byzantine node contributes
       only its first-listed value (the inbox is sender-sorted and already
       deduplicated per (sender, payload) pair). *)
    let values =
      List.fold_left
        (fun (seen, acc) (src, Estimate v) ->
          if Node_id.Set.mem src seen then (seen, acc)
          else (Node_id.Set.add src seen, v :: acc))
        (Node_id.Set.empty, []) inbox
      |> snd
    in
    match midpoint_rule values with
    | None ->
        (* Heard nothing (degenerate single-node network): keep estimate. *)
        let out =
          { iteration = st.iteration; estimate = st.estimate; n_v = 0 }
        in
        if st.iteration >= st.iterations || st.leaving then
          (st, [], Protocol.Stop out)
        else begin
          st.iteration <- st.iteration + 1;
          (st, [ (Envelope.Broadcast, Estimate st.estimate) ], Protocol.Deliver out)
        end
    | Some midpoint ->
        st.estimate <- midpoint;
        let out =
          {
            iteration = st.iteration;
            estimate = midpoint;
            n_v = List.length values;
          }
        in
        if st.iteration >= st.iterations || st.leaving then
          (st, [], Protocol.Stop out)
        else begin
          st.iteration <- st.iteration + 1;
          (st, [ (Envelope.Broadcast, Estimate midpoint) ], Protocol.Deliver out)
        end
  end
