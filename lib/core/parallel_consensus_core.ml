open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) = struct
  type opinion = V.t option

  type body =
    | Input of opinion
    | Prefer of opinion
    | Strongprefer of opinion
    | Nopreference
    | Nostrongpreference
    | Opinion of opinion

  type message = Init | Cand_echo of Node_id.t | Inst of int * body

  let pp_opinion : opinion Fmt.t = Fmt.option ~none:(Fmt.any "_|_") V.pp

  let pp_body ppf = function
    | Input o -> Fmt.pf ppf "input(%a)" pp_opinion o
    | Prefer o -> Fmt.pf ppf "prefer(%a)" pp_opinion o
    | Strongprefer o -> Fmt.pf ppf "strongprefer(%a)" pp_opinion o
    | Nopreference -> Fmt.string ppf "nopreference"
    | Nostrongpreference -> Fmt.string ppf "nostrongpreference"
    | Opinion o -> Fmt.pf ppf "opinion(%a)" pp_opinion o

  let pp_message ppf = function
    | Init -> Fmt.string ppf "init"
    | Cand_echo p -> Fmt.pf ppf "echo(%a)" Node_id.pp p
    | Inst (id, body) -> Fmt.pf ppf "%d:%a" id pp_body body

  type status = Running | Done of (int * V.t) list

  let compare_opinion = Option.compare V.compare

  let body_tag = function
    | Input _ -> 0
    | Prefer _ -> 1
    | Strongprefer _ -> 2
    | Nopreference -> 3
    | Nostrongpreference -> 4
    | Opinion _ -> 5

  let compare_body a b =
    match (a, b) with
    | Input x, Input y | Prefer x, Prefer y | Strongprefer x, Strongprefer y
    | Opinion x, Opinion y ->
        compare_opinion x y
    | Nopreference, Nopreference | Nostrongpreference, Nostrongpreference -> 0
    | _ -> Int.compare (body_tag a) (body_tag b)

  let compare_message a b =
    match (a, b) with
    | Init, Init -> 0
    | Init, (Cand_echo _ | Inst _) -> -1
    | (Cand_echo _ | Inst _), Init -> 1
    | Cand_echo p, Cand_echo q -> Node_id.compare p q
    | Cand_echo _, Inst _ -> -1
    | Inst _, Cand_echo _ -> 1
    | Inst (i, x), Inst (j, y) -> (
        match Int.compare i j with 0 -> compare_body x y | c -> c)

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  type inst = {
    inst_id : int;
    mutable x : opinion;
    has_real_input : bool;
    mutable terminated : opinion option;  (** [Some d]: decided [d] *)
    mutable sent_input : opinion option;  (** last [Input] body broadcast *)
    mutable sent_prefer : opinion option;
    mutable sent_strong : opinion option;
    mutable strong_stash :
      (Node_id.t * [ `Strong of opinion | `Marker ]) list;
  }

  type t = {
    self : Node_id.t;
    restrict : Node_id.Set.t option;
    rotor : Rotor_core.t;
    mutable local_round : int;
    mutable heard_from : Node_id.Set.t;
    mutable members : Node_id.Set.t;
    mutable n_v : int;
    mutable cand_buffer : (Node_id.t * Node_id.t) list;
    mutable coordinator : Node_id.t option;
    mutable insts : inst list;  (** ascending instance id *)
  }

  let fresh_inst ?(has_real_input = false) ~x inst_id =
    {
      inst_id;
      x;
      has_real_input;
      terminated = None;
      sent_input = None;
      sent_prefer = None;
      sent_strong = None;
      strong_stash = [];
    }

  let create ?restrict ~self ~inputs () =
    let ids = List.map fst inputs in
    if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
      invalid_arg "Parallel_consensus_core: duplicate instance identifiers";
    {
      self;
      restrict;
      rotor = Rotor_core.create ();
      local_round = 0;
      heard_from = Node_id.Set.empty;
      members = Node_id.Set.empty;
      n_v = 0;
      cand_buffer = [];
      coordinator = None;
      insts =
        List.sort
          (fun a b -> Int.compare a.inst_id b.inst_id)
          (List.map
             (fun (id, x) -> fresh_inst ~has_real_input:true ~x:(Some x) id)
             inputs);
    }

  let instances t = List.map (fun i -> i.inst_id) t.insts

  let decided t =
    List.filter_map
      (fun i -> Option.map (fun d -> (i.inst_id, d)) i.terminated)
      t.insts

  let opinion_of t id =
    List.find_opt (fun i -> i.inst_id = id) t.insts
    |> Option.map (fun i -> i.x)

  let members t = Node_id.Set.elements t.members

  let phase t =
    if t.local_round < 3 then 0 else ((t.local_round - 3) / 5) + 1

  let position t = ((t.local_round - 3) mod 5) + 1

  let find_inst t id = List.find_opt (fun i -> i.inst_id = id) t.insts

  let add_inst t inst =
    t.insts <-
      List.sort (fun a b -> Int.compare a.inst_id b.inst_id) (inst :: t.insts)

  let live t = List.filter (fun i -> i.terminated = None) t.insts

  (* Count one slot for one instance. [sent] are the (sender, opinion)
     pairs actually received, [markers] the senders of the slot's no-op
     marker. Silent members are filled per the phase rule. *)
  let slot_tally t ~first_phase ~my_send ~sent ~markers =
    let tally = Tally.create ~compare:compare_opinion () in
    let spoke = ref Node_id.Set.empty in
    List.iter
      (fun (src, o) ->
        spoke := Node_id.Set.add src !spoke;
        Tally.add tally ~sender:src o)
      sent;
    List.iter (fun src -> spoke := Node_id.Set.add src !spoke) markers;
    let fill = if first_phase then Some None else my_send in
    (match fill with
    | None -> ()
    | Some o ->
        Node_id.Set.iter
          (fun m -> Tally.add tally ~sender:m o)
          (Node_id.Set.diff t.members !spoke));
    tally

  (* Instance-tagged messages of this round, restricted to one body shape. *)
  let inst_bodies inbox ~id ~extract =
    List.filter_map
      (fun (src, msg) ->
        match msg with
        | Inst (id', body) when id' = id -> (
            match extract body with Some v -> Some (src, v) | None -> None)
        | _ -> None)
      inbox

  let buffer_cand_echoes t inbox =
    List.iter
      (fun (src, msg) ->
        match msg with
        | Cand_echo p -> t.cand_buffer <- (src, p) :: t.cand_buffer
        | _ -> ())
      inbox

  (* Identifiers appearing in this inbox with a body accepted for discovery
     at the current position. *)
  let discoveries t inbox ~extract =
    if phase t <> 1 then []
    else
      List.filter_map
        (fun (_, msg) ->
          match msg with
          | Inst (id, body) when find_inst t id = None -> (
              match extract body with Some _ -> Some id | None -> None)
          | _ -> None)
        inbox
      |> List.sort_uniq Int.compare

  let step t ~inbox =
    t.local_round <- t.local_round + 1;
    let inbox =
      match t.restrict with
      | None -> inbox
      | Some allowed ->
          List.filter (fun (src, _) -> Node_id.Set.mem src allowed) inbox
    in
    let inbox =
      if t.local_round <= 3 then begin
        List.iter
          (fun (src, _) -> t.heard_from <- Node_id.Set.add src t.heard_from)
          inbox;
        inbox
      end
      else List.filter (fun (src, _) -> Node_id.Set.mem src t.members) inbox
    in
    match t.local_round with
    | 1 -> ([ (Envelope.Broadcast, Init) ], Running)
    | 2 ->
        let sends =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Init -> Some (Envelope.Broadcast, Cand_echo src)
              | _ -> None)
            inbox
        in
        (sends, Running)
    | _ -> (
        if t.local_round = 3 then begin
          t.members <- t.heard_from;
          t.n_v <- Node_id.Set.cardinal t.members
        end;
        buffer_cand_echoes t inbox;
        let first_phase = phase t = 1 in
        match position t with
        | 1 ->
            (* Input slot. In the first phase only real input holders with a
               non-⊥ opinion speak; later every live instance announces its
               opinion, ⊥ included (see the .mli on why). *)
            let sends =
              List.filter_map
                (fun i ->
                  let speak =
                    if first_phase then i.has_real_input && i.x <> None
                    else true
                  in
                  if speak then begin
                    i.sent_input <- Some i.x;
                    Some (Envelope.Broadcast, Inst (i.inst_id, Input i.x))
                  end
                  else begin
                    i.sent_input <- None;
                    None
                  end)
                (live t)
            in
            (sends, Running)
        | 2 ->
            List.iter
              (fun id -> add_inst t (fresh_inst ~x:None id))
              (discoveries t inbox ~extract:(function
                | Input o -> Some o
                | _ -> None));
            let sends =
              List.map
                (fun i ->
                  let sent =
                    inst_bodies inbox ~id:i.inst_id ~extract:(function
                      | Input o -> Some o
                      | _ -> None)
                  in
                  let tally =
                    slot_tally t ~first_phase ~my_send:i.sent_input ~sent
                      ~markers:[]
                  in
                  match Tally.max_by_count tally with
                  | Some (o, count)
                    when Threshold.ge_two_thirds ~count ~of_:t.n_v ->
                      i.sent_prefer <- Some o;
                      (Envelope.Broadcast, Inst (i.inst_id, Prefer o))
                  | _ ->
                      i.sent_prefer <- None;
                      (Envelope.Broadcast, Inst (i.inst_id, Nopreference)))
                (live t)
            in
            (sends, Running)
        | 3 ->
            List.iter
              (fun id -> add_inst t (fresh_inst ~x:None id))
              (discoveries t inbox ~extract:(function
                | Prefer o -> Some o
                | _ -> None));
            let sends =
              List.map
                (fun i ->
                  let sent =
                    inst_bodies inbox ~id:i.inst_id ~extract:(function
                      | Prefer o -> Some o
                      | _ -> None)
                  in
                  let markers =
                    inst_bodies inbox ~id:i.inst_id ~extract:(function
                      | Nopreference -> Some ()
                      | _ -> None)
                    |> List.map fst
                  in
                  let tally =
                    slot_tally t ~first_phase ~my_send:i.sent_prefer ~sent
                      ~markers
                  in
                  match Tally.max_by_count tally with
                  | Some (o, count) when Threshold.ge_third ~count ~of_:t.n_v
                    ->
                      i.x <- o;
                      if Threshold.ge_two_thirds ~count ~of_:t.n_v then begin
                        i.sent_strong <- Some o;
                        (Envelope.Broadcast, Inst (i.inst_id, Strongprefer o))
                      end
                      else begin
                        i.sent_strong <- None;
                        ( Envelope.Broadcast,
                          Inst (i.inst_id, Nostrongpreference) )
                      end
                  | _ ->
                      i.sent_strong <- None;
                      (Envelope.Broadcast, Inst (i.inst_id, Nostrongpreference)))
                (live t)
            in
            (sends, Running)
        | 4 ->
            (* Rotor round; also stash the strong-slot traffic (delivered
               this round, counted next) and discover instances first heard
               of through a strongprefer. *)
            List.iter
              (fun id -> add_inst t (fresh_inst ~x:None id))
              (discoveries t inbox ~extract:(function
                | Strongprefer o -> Some o
                | _ -> None));
            List.iter
              (fun i ->
                i.strong_stash <-
                  inst_bodies inbox ~id:i.inst_id ~extract:(function
                    | Strongprefer o -> Some (`Strong o)
                    | Nostrongpreference -> Some `Marker
                    | _ -> None))
              (live t);
            let echoes = t.cand_buffer in
            t.cand_buffer <- [];
            let res =
              Rotor_core.rotor_round t.rotor ~self:t.self ~n_v:t.n_v ~echoes
            in
            t.coordinator <- res.selected;
            let sends =
              List.map
                (fun p -> (Envelope.Broadcast, Cand_echo p))
                res.relay_echoes
            in
            let sends =
              if res.i_am_coordinator then
                List.map
                  (fun i -> (Envelope.Broadcast, Inst (i.inst_id, Opinion i.x)))
                  (live t)
                @ sends
              else sends
            in
            (sends, Running)
        | _ ->
            (* Position 5: resolve every live instance. *)
            List.iter
              (fun i ->
                let sent =
                  List.filter_map
                    (fun (src, item) ->
                      match item with
                      | `Strong o -> Some (src, o)
                      | `Marker -> None)
                    i.strong_stash
                in
                let markers =
                  List.filter_map
                    (fun (src, item) ->
                      match item with `Marker -> Some src | `Strong _ -> None)
                    i.strong_stash
                in
                i.strong_stash <- [];
                let tally =
                  slot_tally t ~first_phase ~my_send:i.sent_strong ~sent
                    ~markers
                in
                let coordinator_opinion =
                  match t.coordinator with
                  | None -> None
                  | Some p ->
                      List.fold_left
                        (fun acc (src, msg) ->
                          match msg with
                          | Inst (id, Opinion c)
                            when id = i.inst_id && Node_id.equal src p ->
                              Some c
                          | _ -> acc)
                        None inbox
                in
                let best = Tally.max_by_count tally in
                (match best with
                | Some (_, count) when Threshold.ge_third ~count ~of_:t.n_v ->
                    ()
                | _ -> (
                    match coordinator_opinion with
                    | Some c -> i.x <- c
                    | None -> ()));
                match best with
                | Some (o, count)
                  when Threshold.ge_two_thirds ~count ~of_:t.n_v ->
                    i.terminated <- Some o
                | _ -> ())
              (live t);
            let status =
              if live t = [] then
                Done
                  (List.filter_map
                     (fun i ->
                       match i.terminated with
                       | Some (Some d) -> Some (i.inst_id, d)
                       | _ -> None)
                     t.insts)
              else Running
            in
            ([], status))
end
