open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) = struct
  type message =
    | Init
    | Cand_echo of Node_id.t
    | Input of V.t
    | Prefer of V.t
    | Strongprefer of V.t
    | Opinion of V.t

  let pp_message ppf = function
    | Init -> Fmt.string ppf "init"
    | Cand_echo p -> Fmt.pf ppf "echo(%a)" Node_id.pp p
    | Input x -> Fmt.pf ppf "input(%a)" V.pp x
    | Prefer x -> Fmt.pf ppf "prefer(%a)" V.pp x
    | Strongprefer x -> Fmt.pf ppf "strongprefer(%a)" V.pp x
    | Opinion x -> Fmt.pf ppf "opinion(%a)" V.pp x

  (* Rank constructors, then compare arguments with the value's own order. *)
  let tag = function
    | Init -> 0
    | Cand_echo _ -> 1
    | Input _ -> 2
    | Prefer _ -> 3
    | Strongprefer _ -> 4
    | Opinion _ -> 5

  let compare_message a b =
    match (a, b) with
    | Init, Init -> 0
    | Cand_echo p, Cand_echo q -> Node_id.compare p q
    | Input x, Input y
    | Prefer x, Prefer y
    | Strongprefer x, Strongprefer y
    | Opinion x, Opinion y ->
        V.compare x y
    | _ -> Int.compare (tag a) (tag b)

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  type status = Running | Decided of V.t

  type t = {
    self : Node_id.t;
    rotor : Rotor_core.t;
    mutable x_v : V.t;
    mutable local_round : int;
    intr : Interner.t;
        (** dense member indices; fed until round 3, frozen after *)
    mutable members_asc : Node_id.t list;  (** ascending, cached at freeze *)
    mutable n_v : int;
    mutable cand_buffer : (Node_id.t * Node_id.t) list;
        (** (sender, candidate) echoes accumulated for the next rotor round *)
    mutable coordinator : Node_id.t option;
        (** selected at position 4, consulted at position 5 *)
    mutable strong_stash : (Node_id.t * V.t) list;
        (** strongprefer messages delivered at position 4, counted at 5 *)
    mutable sent_input : V.t option;  (** my broadcast at position 1 *)
    mutable sent_prefer : V.t option;  (** my broadcast at position 2 *)
    mutable sent_strong : V.t option;  (** my broadcast at position 3 *)
    mutable phase_silent : Bitset.t;
        (** members (by dense index) that sent no [input] this phase —
            terminated (or byz-silent) nodes whose messages get
            substituted *)
  }

  let create ~self ~input =
    {
      self;
      rotor = Rotor_core.create ();
      x_v = input;
      local_round = 0;
      intr = Interner.create ();
      members_asc = [];
      n_v = 0;
      cand_buffer = [];
      coordinator = None;
      strong_stash = [];
      sent_input = None;
      sent_prefer = None;
      sent_strong = None;
      phase_silent = Bitset.create ();
    }

  let opinion t = t.x_v
  let members t = t.members_asc
  let n_v t = t.n_v

  let copy t =
    {
      t with
      rotor = Rotor_core.copy t.rotor;
      intr = Interner.copy t.intr;
      phase_silent = Bitset.copy t.phase_silent;
    }

  (* Canonical id-space fingerprint for the bounded checker's dedup.
     Set-semantics fields ([intr] membership, [phase_silent], the echo and
     strongprefer buffers — every consumer runs them through a tally whose
     thresholds and deterministic tie-break are insertion-order free) are
     sorted; everything else is copied verbatim. *)
  let key t =
    let members = ref [] in
    Interner.iter t.intr (fun _ id -> members := id :: !members);
    let members = List.sort Node_id.compare !members in
    let silent =
      Bitset.fold t.phase_silent ~init:[] ~f:(fun acc ix ->
          if ix < t.n_v then Interner.extern t.intr ix :: acc else acc)
      |> List.sort Node_id.compare
    in
    let pair_cmp (a, b) (c, d) =
      match Node_id.compare a c with 0 -> Node_id.compare b d | x -> x
    in
    let cands = List.sort pair_cmp t.cand_buffer in
    let stash =
      List.sort
        (fun (a, x) (b, y) ->
          match Node_id.compare a b with 0 -> V.compare x y | c -> c)
        t.strong_stash
    in
    let pp_opt_v = Fmt.(option ~none:(any "-") V.pp) in
    Fmt.str "r=%d;x=%a;n=%d;m=%a;rot=%s;cb=%a;co=%a;ss=%a;si=%a;sp=%a;st=%a;ps=%a"
      t.local_round V.pp t.x_v t.n_v
      Fmt.(list ~sep:comma Node_id.pp)
      members
      (Rotor_core.fingerprint t.rotor)
      Fmt.(
        list ~sep:semi (fun ppf (s, p) ->
            Fmt.pf ppf "%a>%a" Node_id.pp s Node_id.pp p))
      cands
      Fmt.(option ~none:(any "-") Node_id.pp)
      t.coordinator
      Fmt.(
        list ~sep:semi (fun ppf (s, x) ->
            Fmt.pf ppf "%a:%a" Node_id.pp s V.pp x))
      stash pp_opt_v t.sent_input pp_opt_v t.sent_prefer pp_opt_v t.sent_strong
      Fmt.(list ~sep:comma Node_id.pp)
      silent

  let phase t =
    if t.local_round < 3 then 0 else ((t.local_round - 3) / 5) + 1

  let position t = ((t.local_round - 3) mod 5) + 1

  (* Count messages of one kind from this round's inbox. Members of
     [eligible] (a predicate over dense member indices) that sent nothing of
     this kind are substituted with [my_send] — the message this node itself
     sent of that kind — per the caption of Algorithm 3. Returns the tally
     and the dense-index set of real senders. By the time this runs,
     membership is frozen and the inbox is filtered to members, so every
     sender already has a dense index. *)
  let tally_with_substitution t ~extract ~my_send ~eligible inbox =
    let tally = Tally.create_dense ~compare:V.compare ~interner:t.intr () in
    let spoke = Bitset.create ~hint:t.n_v () in
    List.iter
      (fun (src, msg) ->
        match extract msg with
        | Some x ->
            Bitset.add spoke (Interner.intern t.intr src);
            Tally.add tally ~sender:src x
        | None -> ())
      inbox;
    (match my_send with
    | None -> ()
    | Some x ->
        for ix = 0 to t.n_v - 1 do
          if eligible ix && not (Bitset.mem spoke ix) then
            Tally.add tally ~sender:(Interner.extern t.intr ix) x
        done);
    (tally, spoke)

  let buffer_cand_echoes t inbox =
    List.iter
      (fun (src, msg) ->
        match msg with
        | Cand_echo p -> t.cand_buffer <- (src, p) :: t.cand_buffer
        | _ -> ())
      inbox

  let step t ~inbox =
    t.local_round <- t.local_round + 1;
    (* Membership discipline: before round 3 every sender is recorded; from
       round 3 on, messages from non-members are discarded. *)
    let inbox =
      if t.local_round <= 3 then begin
        List.iter (fun (src, _) -> ignore (Interner.intern t.intr src)) inbox;
        inbox
      end
      else List.filter (fun (src, _) -> Interner.mem t.intr src) inbox
    in
    match t.local_round with
    | 1 -> ([ (Envelope.Broadcast, Init) ], Running)
    | 2 ->
        let sends =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Init -> Some (Envelope.Broadcast, Cand_echo src)
              | _ -> None)
            inbox
        in
        (sends, Running)
    | _ -> (
        if t.local_round = 3 then begin
          (* Freeze membership: the interner stops admitting new senders
             (the round >= 4 filter above rejects them before interning). *)
          t.n_v <- Interner.size t.intr;
          let ids = ref [] in
          Interner.iter t.intr (fun _ id -> ids := id :: !ids);
          t.members_asc <- List.sort Node_id.compare !ids
        end;
        buffer_cand_echoes t inbox;
        match position t with
        | 1 ->
            (* Fresh phase: broadcast the current opinion. *)
            t.sent_input <- Some t.x_v;
            t.sent_prefer <- None;
            t.sent_strong <- None;
            t.coordinator <- None;
            t.strong_stash <- [];
            ([ (Envelope.Broadcast, Input t.x_v) ], Running)
        | 2 ->
            let tally, spoke =
              tally_with_substitution t
                ~extract:(function Input x -> Some x | _ -> None)
                ~my_send:t.sent_input
                ~eligible:(fun _ -> true)
                inbox
            in
            (* Members without an input this phase are terminated (or
               byz-silent); their later messages are substituted too. *)
            let silent = Bitset.create ~hint:t.n_v () in
            for ix = 0 to t.n_v - 1 do
              if not (Bitset.mem spoke ix) then Bitset.add silent ix
            done;
            t.phase_silent <- silent;
            let sends =
              match Tally.max_by_count tally with
              | Some (x, count)
                when Threshold.ge_two_thirds ~count ~of_:t.n_v ->
                  t.sent_prefer <- Some x;
                  [ (Envelope.Broadcast, Prefer x) ]
              | _ -> []
            in
            (sends, Running)
        | 3 ->
            let tally, _ =
              tally_with_substitution t
                ~extract:(function Prefer x -> Some x | _ -> None)
                ~my_send:t.sent_prefer
                ~eligible:(Bitset.mem t.phase_silent)
                inbox
            in
            let sends =
              match Tally.max_by_count tally with
              | Some (x, count) when Threshold.ge_third ~count ~of_:t.n_v ->
                  t.x_v <- x;
                  if Threshold.ge_two_thirds ~count ~of_:t.n_v then begin
                    t.sent_strong <- Some x;
                    [ (Envelope.Broadcast, Strongprefer x) ]
                  end
                  else []
              | _ -> []
            in
            (sends, Running)
        | 4 ->
            (* Rotor round: consume buffered candidate echoes, stash the
               strongprefer messages for position 5. *)
            t.strong_stash <-
              List.filter_map
                (fun (src, msg) ->
                  match msg with Strongprefer x -> Some (src, x) | _ -> None)
                inbox;
            let echoes = t.cand_buffer in
            t.cand_buffer <- [];
            let res =
              Rotor_core.rotor_round t.rotor ~self:t.self ~n_v:t.n_v ~echoes
            in
            t.coordinator <- res.selected;
            let sends =
              List.map (fun p -> (Envelope.Broadcast, Cand_echo p)) res.relay_echoes
            in
            let sends =
              if res.i_am_coordinator then
                (Envelope.Broadcast, Opinion t.x_v) :: sends
              else sends
            in
            (sends, Running)
        | _ ->
            (* Position 5: resolve the phase. The strongprefer tally comes
               from position 4's inbox; the coordinator's opinion arrives
               now. *)
            let tally =
              let tly =
                Tally.create_dense ~compare:V.compare ~interner:t.intr ()
              in
              List.iter
                (fun (src, x) -> Tally.add tly ~sender:src x)
                t.strong_stash;
              (* Substitute my own strongprefer for phase-silent members. *)
              (match t.sent_strong with
              | None -> ()
              | Some x ->
                  let spoke = Bitset.create ~hint:t.n_v () in
                  List.iter
                    (fun (src, _) ->
                      Bitset.add spoke (Interner.intern t.intr src))
                    t.strong_stash;
                  for ix = 0 to t.n_v - 1 do
                    if Bitset.mem t.phase_silent ix && not (Bitset.mem spoke ix)
                    then Tally.add tly ~sender:(Interner.extern t.intr ix) x
                  done);
              tly
            in
            let coordinator_opinion =
              match t.coordinator with
              | None -> None
              | Some p ->
                  List.fold_left
                    (fun acc (src, msg) ->
                      match msg with
                      | Opinion x when Node_id.equal src p -> Some x
                      | _ -> acc)
                    None inbox
            in
            let best = Tally.max_by_count tally in
            (match best with
            | Some (x, count) when Threshold.ge_third ~count ~of_:t.n_v ->
                ignore x
            | _ -> (
                (* No value reached n_v/3 strong preferences: adopt the
                   coordinator's opinion. *)
                match coordinator_opinion with
                | Some c -> t.x_v <- c
                | None -> ()));
            let status =
              match best with
              | Some (x, count)
                when Threshold.ge_two_thirds ~count ~of_:t.n_v ->
                  Decided x
              | _ -> Running
            in
            ([], status))
end
