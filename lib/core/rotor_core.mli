(** Candidate/selection state machine of the rotor-coordinator
    (Algorithm 2), factored out so it can run standalone (one rotor round
    per network round, {!Rotor}) or embedded (one rotor round per consensus
    phase, {!Consensus_core} and {!Parallel_consensus_core}).

    The host owns the network plumbing: it feeds each rotor round the
    [echo(p)] messages that arrived for it, broadcasts the returned relay
    echoes, broadcasts its opinion when [i_am_coordinator], and accepts the
    opinion of the previously selected coordinator. *)

open Ubpa_util

type t

val create : unit -> t

type step_result = {
  selected : Node_id.t option;
      (** Coordinator of this rotor round ([None] only in the degenerate
          case of an empty candidate set). *)
  relay_echoes : Node_id.t list;
      (** Candidates whose echo crossed [n_v/3]; the host must re-broadcast
          [echo(p)] for each (the set [B_v]). *)
  i_am_coordinator : bool;
  finished : bool;
      (** The node re-selected an earlier coordinator: Algorithm 2's
          [break]. No coordinator is appointed in this round. *)
}

val rotor_round :
  t ->
  self:Node_id.t ->
  n_v:int ->
  echoes:(Node_id.t * Node_id.t) list ->
  step_result
(** [rotor_round t ~self ~n_v ~echoes] runs one iteration of Algorithm 2's
    loop. [echoes] are the [(sender, candidate)] pairs delivered for this
    rotor round; duplicate senders per candidate are counted once. *)

val candidates : t -> Node_id.t list
(** Current [C_v], ascending. *)

val selections : t -> (int * Node_id.t) list
(** [(rotor round index, coordinator)] history, oldest first. *)

val copy : t -> t
(** Independent snapshot; stepping the copy never affects the original. *)

val fingerprint : t -> string
(** Canonical encoding of the dynamics-relevant state ([C_v], [S_v], loop
    index) in id space: equal fingerprints mean the two rotors behave
    identically on identical future echoes. Used by the bounded checker's
    state-hash dedup. *)
