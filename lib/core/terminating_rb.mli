(** Terminating reliable broadcast (appendix of the paper).

    Unlike Algorithm 1, every correct node must {e terminate} with a common
    output: the sender's payload if the designated sender [s] is correct, a
    common (possibly empty, possibly Byzantine-supplied) opinion otherwise.
    The construction is the one from the paper's appendix: one exchange
    round fixes each node's opinion — the payload received directly from
    [s], or ⊥ — and the [O(f)]-round consensus of Algorithm 3 is run on
    those opinions. *)

open Ubpa_util

module Make (V : Value.S) : sig
  module Opt : module type of Value.Option (V)
  module Core : module type of Consensus_core.Make (Opt)

  type input = { sender : Node_id.t; payload : V.t option }
  (** [payload] is [Some m] iff this node is the designated sender [s]. *)

  type message_view =
    | Trb_payload of V.t  (** sender's round-1 broadcast *)
    | Trb_init  (** everyone else's round-1 presence message *)
    | Con of Core.message  (** embedded consensus traffic *)

  include
    Ubpa_sim.Protocol.S
      with type input := input
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = V.t option
       and type message = message_view
end
