open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) = struct
  type accepted = { payload : V.t; sender : Node_id.t; accepted_round : int }

  type message_view = Payload of V.t | Present | Echo of V.t * Node_id.t
  type message = message_view

  let view m = m
  let inject m = m

  type input = V.t option
  type stimulus = Protocol.No_stimulus.t
  type output = accepted list

  (* Keyed acceptance state per (payload, sender). *)
  module Pair = struct
    type t = V.t * Node_id.t

    let compare (m, s) (m', s') =
      match V.compare m m' with 0 -> Node_id.compare s s' | c -> c
  end

  module Pair_map = Map.Make (Pair)

  type state = {
    my_payload : V.t option;
    heard_from : Interner.t;  (** senders seen so far; [size] = n_v *)
    mutable accepted : accepted list;  (** newest first *)
    mutable accepted_set : int Pair_map.t;  (** pair -> accept round *)
    mutable local_round : int;  (** rounds since this node joined, from 1 *)
  }

  let name = "reliable-broadcast"

  let copy_state st = { st with heard_from = Interner.copy st.heard_from }

  (* Canonical id-space fingerprint. [heard_from] is a set (only [size] and
     membership feed the dynamics), so it is externed and sorted; the
     [accepted] list is sorted by pair because its order only affects the
     order of entries inside the output list, never a tally or threshold —
     equal keys therefore mean equal behavior on equal future inboxes. *)
  let state_key st =
    let heard = ref [] in
    Interner.iter st.heard_from (fun _ id -> heard := id :: !heard);
    let heard = List.sort Node_id.compare !heard in
    let acc =
      List.sort
        (fun a b -> Pair.compare (a.payload, a.sender) (b.payload, b.sender))
        st.accepted
    in
    let pp_acc ppf a =
      Fmt.pf ppf "%a/%a@%d" V.pp a.payload Node_id.pp a.sender a.accepted_round
    in
    Fmt.str "r=%d;p=%a;h=%a;a=%a" st.local_round
      Fmt.(option ~none:(any "-") V.pp)
      st.my_payload
      Fmt.(list ~sep:comma Node_id.pp)
      heard
      Fmt.(list ~sep:semi pp_acc)
      acc

  let init ~self:_ ~round:_ input =
    {
      my_payload = input;
      heard_from = Interner.create ();
      accepted = [];
      accepted_set = Pair_map.empty;
      local_round = 0;
    }

  let pp_message ppf = function
    | Payload m -> Fmt.pf ppf "payload(%a)" V.pp m
    | Present -> Fmt.string ppf "present"
    | Echo (m, s) -> Fmt.pf ppf "echo(%a,%a)" V.pp m Node_id.pp s

  let compare_message a b =
    match (a, b) with
    | Payload m, Payload m' -> V.compare m m'
    | Payload _, (Present | Echo _) -> -1
    | (Present | Echo _), Payload _ -> 1
    | Present, Present -> 0
    | Present, Echo _ -> -1
    | Echo _, Present -> 1
    | Echo (m, s), Echo (m', s') -> (
        match V.compare m m' with 0 -> Node_id.compare s s' | c -> c)

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  let note_senders st inbox =
    List.iter (fun (src, _) -> ignore (Interner.intern st.heard_from src)) inbox

  let step ~self:_ ~round ~stim:_ st ~inbox =
    st.local_round <- st.local_round + 1;
    note_senders st inbox;
    let n_v = Interner.size st.heard_from in
    match st.local_round with
    | 1 ->
        (* Round 1: designated senders broadcast their payload, everyone
           else announces presence so that n_v >= g at every node. *)
        let send =
          match st.my_payload with
          | Some m -> Payload m
          | None -> Present
        in
        (st, [ (Envelope.Broadcast, send) ], Protocol.Continue)
    | 2 ->
        (* Round 2: echo payloads received directly from their sender. *)
        let sends =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Payload m -> Some (Envelope.Broadcast, Echo (m, src))
              | Present | Echo _ -> None)
            inbox
        in
        (st, sends, Protocol.Continue)
    | _ ->
        (* Rounds >= 3: per-round echo tallies against n_v thresholds. *)
        let tally =
          Tally.create_dense ~compare:Pair.compare ~interner:st.heard_from ()
        in
        List.iter
          (fun (src, msg) ->
            match msg with
            | Echo (m, s) -> Tally.add tally ~sender:src (m, s)
            | Payload _ | Present -> ())
          inbox;
        let sends = ref [] in
        let newly_accepted = ref false in
        List.iter
          (fun pair ->
            let already = Pair_map.mem pair st.accepted_set in
            let count = Tally.count tally pair in
            if (not already) && Threshold.ge_third ~count ~of_:n_v then begin
              let m, s = pair in
              sends := (Envelope.Broadcast, Echo (m, s)) :: !sends
            end;
            if (not already) && Threshold.ge_two_thirds ~count ~of_:n_v then begin
              let m, s = pair in
              st.accepted_set <- Pair_map.add pair round st.accepted_set;
              st.accepted <-
                { payload = m; sender = s; accepted_round = round }
                :: st.accepted;
              newly_accepted := true
            end)
          (Tally.contents tally);
        let status =
          if !newly_accepted then Protocol.Deliver (List.rev st.accepted)
          else Protocol.Continue
        in
        (st, !sends, status)
end
