(** Standalone early-terminating consensus protocol (Algorithm 3,
    Theorem "earlyCon").

    Every correct node starts with an input value; for [n > 3f] all correct
    nodes terminate with a common output within [O(f)] phases (five rounds
    each, after two initialization rounds), and if all correct inputs agree
    the nodes decide that value at the end of the very first phase.

    This is a thin {!Ubpa_sim.Protocol.S} wrapper over
    {!Consensus_core.Make}; byzantine strategies can forge any
    {!Consensus_core.Make.message}. *)


module Make (V : Value.S) : sig
  module Core : module type of Consensus_core.Make (V)

  include
    Ubpa_sim.Protocol.S
      with type input = V.t
       and type stimulus = Ubpa_sim.Protocol.No_stimulus.t
       and type output = V.t
       and type message = Core.message

  val decided_phase : state -> int option
  (** Phase in which this node decided, if it has. *)

  val current_opinion : state -> V.t

  val member_count : state -> int
  (** The node's fixed [n_v], 0 before round 3. *)

  val copy_state : state -> state
  (** Independent snapshot; stepping the copy never affects the original.
      Used by the bounded checker to branch a configuration. *)

  val state_key : state -> string
  (** Canonical id-space fingerprint ({!Core.key} plus the decided phase);
      equal keys mean equal behavior on equal future inboxes. *)
end
