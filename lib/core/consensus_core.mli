(** Early-terminating consensus (Algorithm 3) as a self-clocked state
    machine.

    The machine is driven by a host that calls {!Make.step} exactly once per
    synchronous round, handing over the messages delivered in that round and
    broadcasting the returned sends. Factoring it this way lets the same
    logic back the standalone {!Consensus} protocol and the terminating
    reliable broadcast of the appendix.

    Round schedule (local rounds):

    - round 1: broadcast [init] (rotor-coordinator initialization);
    - round 2: broadcast [echo(p)] for every [init] received from [p];
    - round 3 = phase 1 position 1: fix the member set — every identifier
      heard from so far — and [n_v = |members|]; from now on messages from
      non-members are discarded;
    - each phase is five rounds: input / prefer / strong-prefer /
      rotor / resolve, as in the paper.

    Missing-member substitution (caption of Algorithm 3): when a member is
    silent in a round where a message of type input/prefer/strongprefer is
    being counted, the node substitutes the message {e it itself} sent of
    that type most recently in this phase (if any). This is what lets the
    remaining nodes finish one phase after the first node terminates and
    stops sending. *)

open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) : sig
  type message =
    | Init
    | Cand_echo of Node_id.t
        (** Rotor candidate echo — both the round-2 init echo and the
            in-loop relay echoes. *)
    | Input of V.t
    | Prefer of V.t
    | Strongprefer of V.t
    | Opinion of V.t  (** Coordinator's opinion for the current phase. *)

  val pp_message : message Fmt.t

  val compare_message : message -> message -> int
  (** Constructor rank, then per-constructor argument order ([V.compare] /
      [Node_id.compare]); exposed so protocol wrappers satisfy
      {!Ubpa_sim.Protocol.S} by delegation. *)

  val equal_message : message -> message -> bool

  val encoded_bits : message -> int
  (** Reference-encoding wire size ({!Ubpa_sim.Protocol.S.encoded_bits}). *)

  type status = Running | Decided of V.t

  type t

  val create : self:Node_id.t -> input:V.t -> t

  val step :
    t ->
    inbox:(Node_id.t * message) list ->
    (Envelope.dest * message) list * status
  (** Run one local round. After [Decided] is returned the machine must not
      be stepped again. *)

  (** {2 Introspection (tests, traces)} *)

  val opinion : t -> V.t
  (** Current [x_v]. *)

  val phase : t -> int
  (** Current phase number, 0 during initialization. *)

  val members : t -> Node_id.t list
  (** The fixed member set, empty before round 3. *)

  val n_v : t -> int

  val copy : t -> t
  (** Independent snapshot; stepping the copy never affects the
      original. Used by the bounded checker to branch a configuration. *)

  val key : t -> string
  (** Canonical id-space fingerprint: equal keys mean the two machines
      behave identically on identical future inboxes. Set-semantics
      buffers are sorted before encoding (their order never reaches a
      threshold or the deterministic tally tie-break). *)
end
