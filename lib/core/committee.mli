(** Deterministic seeded committee and attestor sampling (King–Saia style).

    The sub-quadratic agreement protocol ({!Committee_agreement}) replaces
    all-to-all traffic with two public, seed-derived samples over the
    sorted identifier universe:

    - a {b committee} of [committee_size n ≈ ⌈2√n⌉] nodes that runs the
      full-strength consensus core among itself, and
    - per node, an {b attestor set} of [attestor_size n ≈ 2⌈log₂ n⌉]
      committee members from which that node accepts decision reports.

    Everything here is a pure function of [(seed, universe)] — splitmix64
    streams with distinct derivation tags, byte-identical however the
    computation is scheduled (any [--jobs], any delivery core) — so every
    node, the adversary, and the test-suite can recompute anyone's sample.
    A committee member inverts the attestor map with {!audience} to learn
    exactly which nodes sampled it, which is what keeps the spreading
    phase at Õ(√n) unicasts per member instead of a broadcast.

    Fault tolerance is statistical: sampling preserves the Byzantine
    fraction only in expectation, so the model assumption is the
    ε-slacked [f ≤ (1−ε)·n/3] (see docs/MODEL.md), under which a sampled
    committee has fewer than [k/3] Byzantine members with high
    probability, and a sampled attestor set has an honest majority with
    high probability. *)

open Ubpa_util

val committee_size : int -> int
(** [committee_size n] = [min n ⌈2√n⌉]; 0 when [n ≤ 0]. *)

val attestor_size : int -> int
(** [attestor_size n] = [min (committee_size n) (max 3 2⌈log₂ n⌉)] —
    how many committee members each node samples as attestors. *)

val members : seed:int64 -> universe:Node_id.t list -> Node_id.t list
(** The committee: [committee_size n] distinct identifiers sampled from
    the sorted universe. Sorted ascending; deterministic in
    [(seed, universe)] as a set — duplicates in [universe] are ignored. *)

val attestors :
  seed:int64 -> universe:Node_id.t list -> self:Node_id.t -> Node_id.t list
(** The committee members node [self] accepts decision reports from:
    [attestor_size n] distinct members keyed by [(seed, self)]. Sorted
    ascending. Any caller can recompute any node's set — the map is
    public. *)

val audience :
  seed:int64 -> universe:Node_id.t list -> member:Node_id.t -> Node_id.t list
(** Inverse of {!attestors}: every node whose attestor set contains
    [member], ascending. Empty when [member] is not on the committee.
    Expected size [n · attestor_size n / committee_size n ≈ √n·log₂ n],
    which is the spreading phase's per-member send budget. *)
