open Ubpa_util
open Ubpa_sim
module Int_set = Set.Make (Int)

module Make (V : Value.S) = struct
  module Pc = Parallel_consensus_core.Make (V)

  type chain_entry = { group : int; origin : Node_id.t; event : V.t }

  type chain_output = {
    logical_round : int;
    frontier : int;
    chain : chain_entry list;
  }

  type role = Genesis | Joiner
  type stimulus_view = Witness of V.t | Leave
  type stimulus = stimulus_view

  type message_view =
    | Present
    | Ack of int
    | Absent
    | Event of V.t * int
    | Group of int * Pc.message

  type message = message_view
  type input = role

  type group_state = {
    g_round : int;
    snapshot : Node_id.Set.t;
    mutable pc : Pc.t option;  (** [None] once terminated *)
    mutable results : (int * V.t) list;
    mutable frozen : bool;
  }

  type mode =
    | Handshake_sent  (** joiner: [present] broadcast, waiting for acks *)
    | Active
    | Leaving  (** [absent] broadcast; finishing outstanding groups *)

  type state = {
    self : Node_id.t;
    mutable mode : mode;
    mutable announced : bool;  (** broadcast [present] already *)
    mutable r : int;  (** logical round *)
    mutable s : Node_id.Set.t;  (** membership view *)
    mutable groups : group_state list;  (** descending g_round *)
    mutable last_chain : chain_entry list;
  }

  type output = chain_output

  let name = "total-order"

  let init ~self ~round:_ role =
    {
      self;
      mode = (match role with Genesis -> Active | Joiner -> Handshake_sent);
      announced = false;
      r = (match role with Genesis -> 0 | Joiner -> min_int);
      s = Node_id.Set.singleton self;
      groups = [];
      last_chain = [];
    }

  let pp_message ppf = function
    | Present -> Fmt.string ppf "present"
    | Ack r -> Fmt.pf ppf "ack(%d)" r
    | Absent -> Fmt.string ppf "absent"
    | Event (m, r) -> Fmt.pf ppf "event(%a,%d)" V.pp m r
    | Group (g, m) -> Fmt.pf ppf "g%d:%a" g Pc.pp_message m

  let msg_tag = function
    | Present -> 0
    | Ack _ -> 1
    | Absent -> 2
    | Event _ -> 3
    | Group _ -> 4

  let compare_message a b =
    match (a, b) with
    | Present, Present | Absent, Absent -> 0
    | Ack r, Ack r' -> Int.compare r r'
    | Event (m, r), Event (m', r') -> (
        match V.compare m m' with 0 -> Int.compare r r' | c -> c)
    | Group (g, m), Group (g', m') -> (
        match Int.compare g g' with 0 -> Pc.compare_message m m' | c -> c)
    | _ -> Int.compare (msg_tag a) (msg_tag b)

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  let membership st = Node_id.Set.elements st.s
  let logical_round st = st.r

  (* A round r' is final once r - r' > 5|S|/2 + 2, i.e. 2(r-r') > 5|S|+4. *)
  let is_time_final ~now g = 2 * (now - g.g_round) > (5 * Node_id.Set.cardinal g.snapshot) + 4

  let pc_decided_values pc =
    List.filter_map
      (fun (id, o) -> Option.map (fun v -> (id, v)) o)
      (Pc.decided pc)

  let freeze g =
    if not g.frozen then begin
      g.frozen <- true;
      match g.pc with
      | Some pc when g.results = [] -> g.results <- pc_decided_values pc
      | _ -> ()
    end

  let chain_of st =
    let final_groups =
      List.filter (fun g -> g.frozen) st.groups |> List.rev
      (* st.groups is descending; rev gives ascending rounds *)
    in
    List.concat_map
      (fun g ->
        List.map
          (fun (origin, event) ->
            { group = g.g_round; origin = Node_id.of_int origin; event })
          (List.sort compare g.results))
      final_groups

  (* Step every live group's parallel-consensus machine with its share of
     the inbox; returns the sends. *)
  let step_groups st ~inbox =
    List.concat_map
      (fun g ->
        match g.pc with
        | None -> []
        | Some pc ->
            let group_inbox =
              List.filter_map
                (fun (src, msg) ->
                  match msg with
                  | Group (g', m) when g' = g.g_round -> Some (src, m)
                  | _ -> None)
                inbox
            in
            let sends, status = Pc.step pc ~inbox:group_inbox in
            (match status with
            | Pc.Running -> ()
            | Pc.Done outputs ->
                if not g.frozen then g.results <- outputs;
                g.pc <- None);
            List.map
              (fun (dest, m) -> (dest, Group (g.g_round, m)))
              sends)
      st.groups

  let frontier st =
    (* Largest round R such that every group with g_round <= R is frozen;
       groups are contiguous per round from this node's first group. *)
    let ascending = List.rev st.groups in
    let rec scan acc = function
      | [] -> acc
      | g :: rest -> if g.frozen then scan g.g_round rest else acc
    in
    scan min_int ascending

  let step ~self:_ ~round:_ ~stim st ~inbox =
    match st.mode with
    | Handshake_sent when st.r = min_int ->
        (* Joiner's first activity: announce. *)
        st.announced <- true;
        st.r <- -1;
        (st, [ (Envelope.Broadcast, Present) ], Protocol.Continue)
    | Handshake_sent when st.r = -1 ->
        (* The [present] reaches participants this round; their acks arrive
           next round. *)
        st.r <- -2;
        (st, [], Protocol.Continue)
    | Handshake_sent ->
        (* Collect (ack, r) replies; adopt the plurality round. *)
        let tally = Hashtbl.create 7 in
        let senders = ref Node_id.Set.empty in
        List.iter
          (fun (src, msg) ->
            match msg with
            | Ack r0 ->
                senders := Node_id.Set.add src !senders;
                Hashtbl.replace tally r0
                  (1 + Option.value ~default:0 (Hashtbl.find_opt tally r0))
            | _ -> ())
          inbox;
        let best =
          Hashtbl.fold
            (fun r0 c acc ->
              match acc with
              | Some (_, c') when c' >= c -> acc
              | _ -> Some (r0, c))
            tally None
        in
        (match best with
        | None -> () (* nobody answered; retry by staying in handshake *)
        | Some (r0, _) ->
            st.r <- r0 + 1;
            st.s <- Node_id.Set.add st.self !senders;
            st.mode <- Active);
        if st.mode = Active then begin
          (* First active round: start an (empty-input) group for it. *)
          let pc = Pc.create ~restrict:st.s ~self:st.self ~inputs:[] () in
          st.groups <-
            { g_round = st.r; snapshot = st.s; pc = Some pc; results = []; frozen = false }
            :: st.groups;
          let sends = step_groups st ~inbox:[] in
          ( st,
            sends,
            Protocol.Deliver
              { logical_round = st.r; frontier = min_int; chain = [] } )
        end
        else begin
          (* Nobody answered: re-announce and wait again. *)
          st.r <- -1;
          (st, [ (Envelope.Broadcast, Present) ], Protocol.Continue)
        end
    | Active | Leaving ->
        st.r <- st.r + 1;
        let sends = ref [] in
        let push s = sends := s :: !sends in
        (* Genesis nodes announce themselves in their first round so that
           every participant's S converges on the initial population. *)
        if not st.announced then begin
          st.announced <- true;
          push (Envelope.Broadcast, Present)
        end;
        (* Membership traffic. *)
        List.iter
          (fun (src, msg) ->
            match msg with
            | Present ->
                st.s <- Node_id.Set.add src st.s;
                push (Envelope.To src, Ack st.r)
            | Absent -> st.s <- Node_id.Set.remove src st.s
            | Ack _ | Event _ | Group _ -> ())
          inbox;
        (* Events of the previous logical round become this group's input
           pairs, keyed by the witnessing node's identifier. *)
        let event_inputs =
          List.filter_map
            (fun (src, msg) ->
              match msg with
              | Event (m, r') when r' = st.r - 1 && Node_id.Set.mem src st.s ->
                  Some (Node_id.to_int src, m)
              | _ -> None)
            inbox
        in
        (* A node reports at most one event per round; keep the first. *)
        let event_inputs =
          let seen = ref Int_set.empty in
          List.filter
            (fun (id, _) ->
              if Int_set.mem id !seen then false
              else begin
                seen := Int_set.add id !seen;
                true
              end)
            event_inputs
        in
        (* Own witnessed events and leave requests. *)
        List.iter
          (fun s ->
            match s with
            | Witness m when st.mode = Active ->
                push (Envelope.Broadcast, Event (m, st.r))
            | Witness _ -> ()
            | Leave ->
                if st.mode = Active then begin
                  st.mode <- Leaving;
                  push (Envelope.Broadcast, Absent)
                end)
          stim;
        (* Start this round's group (only while an active participant). *)
        if st.mode = Active then begin
          let pc =
            Pc.create ~restrict:st.s ~self:st.self ~inputs:event_inputs ()
          in
          st.groups <-
            {
              g_round = st.r;
              snapshot = st.s;
              pc = Some pc;
              results = [];
              frozen = false;
            }
            :: st.groups
        end;
        (* Step all outstanding groups. *)
        let group_sends = step_groups st ~inbox in
        (* Finality. *)
        List.iter
          (fun g -> if is_time_final ~now:st.r g then freeze g)
          st.groups;
        let chain = chain_of st in
        let out =
          { logical_round = st.r; frontier = frontier st; chain }
        in
        let changed = chain <> st.last_chain in
        st.last_chain <- chain;
        let all_sends = group_sends @ List.rev !sends in
        if st.mode = Leaving && List.for_all (fun g -> g.pc = None) st.groups
        then (st, all_sends, Protocol.Stop out)
        else if changed then (st, all_sends, Protocol.Deliver out)
        else (st, all_sends, Protocol.Continue)
end
