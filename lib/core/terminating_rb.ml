open Ubpa_util
open Ubpa_sim

module Make (V : Value.S) = struct
  module Opt = Value.Option (V)
  module Core = Consensus_core.Make (Opt)

  type input = { sender : Node_id.t; payload : V.t option }
  type message_view = Trb_payload of V.t | Trb_init | Con of Core.message
  type message = message_view
  type stimulus = Protocol.No_stimulus.t
  type output = V.t option

  type state = {
    self : Node_id.t;
    sender : Node_id.t;
    payload : V.t option;
    mutable local_round : int;
    mutable core : Core.t option;
  }

  let name = "terminating-reliable-broadcast"

  let init ~self ~round:_ ({ sender; payload } : input) =
    { self; sender; payload; local_round = 0; core = None }

  let pp_message ppf = function
    | Trb_payload m -> Fmt.pf ppf "payload(%a)" V.pp m
    | Trb_init -> Fmt.string ppf "init"
    | Con m -> Fmt.pf ppf "con:%a" Core.pp_message m

  let compare_message a b =
    match (a, b) with
    | Trb_payload m, Trb_payload m' -> V.compare m m'
    | Trb_payload _, (Trb_init | Con _) -> -1
    | (Trb_init | Con _), Trb_payload _ -> 1
    | Trb_init, Trb_init -> 0
    | Trb_init, Con _ -> -1
    | Con _, Trb_init -> 1
    | Con m, Con m' -> Core.compare_message m m'

  let equal_message a b = compare_message a b = 0
  let encoded_bits = Protocol.structural_bits

  let step ~self:_ ~round:_ ~stim:_ st ~inbox =
    st.local_round <- st.local_round + 1;
    match st.local_round with
    | 1 ->
        let send =
          match st.payload with
          | Some m when Node_id.equal st.self st.sender -> Trb_payload m
          | _ -> Trb_init
        in
        (st, [ (Envelope.Broadcast, send) ], Protocol.Continue)
    | _ -> (
        let core =
          match st.core with
          | Some c -> c
          | None ->
              (* Round 2: the opinion is the payload received directly from
                 the designated sender, or ⊥. *)
              let opinion =
                List.fold_left
                  (fun acc (src, msg) ->
                    match msg with
                    | Trb_payload m when Node_id.equal src st.sender -> Some m
                    | _ -> acc)
                  None inbox
              in
              let c = Core.create ~self:st.self ~input:opinion in
              st.core <- Some c;
              c
        in
        let con_inbox =
          List.filter_map
            (fun (src, msg) ->
              match msg with Con m -> Some (src, m) | _ -> None)
            inbox
        in
        let sends, status = Core.step core ~inbox:con_inbox in
        let sends = List.map (fun (d, m) -> (d, Con m)) sends in
        match status with
        | Core.Running -> (st, sends, Protocol.Continue)
        | Core.Decided x -> (st, sends, Protocol.Stop x))
end
