open Ubpa_sim

module Make (V : Value.S) = struct
  module Core = Parallel_consensus_core.Make (V)

  type input = (int * V.t) list
  type stimulus = Protocol.No_stimulus.t
  type output = (int * V.t) list
  type message = Core.message
  type state = Core.t

  let name = "parallel-consensus"
  let pp_message = Core.pp_message
  let compare_message = Core.compare_message
  let equal_message = Core.equal_message
  let encoded_bits = Core.encoded_bits
  let init ~self ~round:_ inputs = Core.create ~self ~inputs ()

  let step ~self:_ ~round:_ ~stim:_ st ~inbox =
    let sends, status = Core.step st ~inbox in
    match status with
    | Core.Running -> (st, sends, Protocol.Continue)
    | Core.Done outputs -> (st, sends, Protocol.Stop outputs)

  let decided_all = Core.decided
end
