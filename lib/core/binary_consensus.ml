open Ubpa_util
open Ubpa_sim

type input = bool
type output = bool

type message_view =
  | Init
  | Cand_echo of Node_id.t
  | Input of bool
  | Support of bool
  | Opinion of bool

type message = message_view
type stimulus = Protocol.No_stimulus.t

type state = {
  self : Node_id.t;
  rotor : Rotor_core.t;
  mutable x_v : bool;
  mutable local_round : int;
  mutable heard_from : Node_id.Set.t;  (** n_v is cumulative here *)
  mutable cand_buffer : (Node_id.t * Node_id.t) list;
  mutable coordinator : Node_id.t option;
  mutable strong_support : bool;
      (** saw a 2n_v/3 support quorum in this phase's position 3 *)
  mutable rotor_finished : bool;
  mutable decided : bool option;
      (** set when the rotor broke; the node participates for one more full
          phase (termination skew is at most one phase) before halting, so
          laggards still see its input/support broadcasts *)
}

let name = "binary-consensus"

let init ~self ~round:_ input =
  {
    self;
    rotor = Rotor_core.create ();
    x_v = input;
    local_round = 0;
    heard_from = Node_id.Set.empty;
    cand_buffer = [];
    coordinator = None;
    strong_support = false;
    rotor_finished = false;
    decided = None;
  }

let pp_message ppf = function
  | Init -> Fmt.string ppf "init"
  | Cand_echo p -> Fmt.pf ppf "echo(%a)" Node_id.pp p
  | Input x -> Fmt.pf ppf "input(%b)" x
  | Support x -> Fmt.pf ppf "support(%b)" x
  | Opinion x -> Fmt.pf ppf "opinion(%b)" x

(* Ground constructors (bools and node ids only): the structural order is
   already the right one. *)
include Protocol.Structural (struct
  type t = message
end)

(* The structural size model charges a full 64-bit word per immediate, which
   misprices this protocol badly: its whole point is voting with single
   bits. Spell the wire content out by hand — a 3-bit constructor tag
   (5 constructors), one bit per boolean, one id-sized word for the echoed
   candidate — so the bit-complexity experiments measure what the paper
   counts. *)
let encoded_bits = function
  | Init -> 3
  | Cand_echo _ -> 3 + Ubpa_obs.Sizing.word_bits
  | Input _ | Support _ | Opinion _ -> 3 + 1

let current_opinion st = st.x_v

let phase st =
  if st.local_round < 3 then 0 else ((st.local_round - 3) / 5) + 1

let position st = ((st.local_round - 3) mod 5) + 1

let tally_bool inbox ~extract =
  let t = Tally.create ~compare:Bool.compare () in
  List.iter
    (fun (src, msg) ->
      match extract msg with Some x -> Tally.add t ~sender:src x | None -> ())
    inbox;
  t

let step ~self:_ ~round:_ ~stim:_ st ~inbox =
  st.local_round <- st.local_round + 1;
  List.iter
    (fun (src, _) -> st.heard_from <- Node_id.Set.add src st.heard_from)
    inbox;
  let n_v = Node_id.Set.cardinal st.heard_from in
  List.iter
    (fun (src, msg) ->
      match msg with
      | Cand_echo p -> st.cand_buffer <- (src, p) :: st.cand_buffer
      | _ -> ())
    inbox;
  match st.local_round with
  | 1 -> (st, [ (Envelope.Broadcast, Init) ], Protocol.Continue)
  | 2 ->
      let sends =
        List.filter_map
          (fun (src, msg) ->
            match msg with
            | Init -> Some (Envelope.Broadcast, Cand_echo src)
            | _ -> None)
          inbox
      in
      (st, sends, Protocol.Continue)
  | _ -> (
      match position st with
      | 1 ->
          st.strong_support <- false;
          st.coordinator <- None;
          (st, [ (Envelope.Broadcast, Input st.x_v) ], Protocol.Continue)
      | 2 ->
          let t =
            tally_bool inbox ~extract:(function Input x -> Some x | _ -> None)
          in
          let sends =
            match Tally.max_by_count t with
            | Some (x, count) when Threshold.ge_two_thirds ~count ~of_:n_v ->
                [ (Envelope.Broadcast, Support x) ]
            | _ -> []
          in
          (st, sends, Protocol.Continue)
      | 3 ->
          let t =
            tally_bool inbox ~extract:(function
              | Support x -> Some x
              | _ -> None)
          in
          (match Tally.max_by_count t with
          | Some (x, count) when Threshold.ge_third ~count ~of_:n_v ->
              if st.decided = None then st.x_v <- x;
              st.strong_support <- Threshold.ge_two_thirds ~count ~of_:n_v
          | _ -> st.strong_support <- false);
          (st, [], Protocol.Continue)
      | 4 ->
          let echoes = st.cand_buffer in
          st.cand_buffer <- [];
          let res =
            Rotor_core.rotor_round st.rotor ~self:st.self ~n_v ~echoes
          in
          st.coordinator <- res.selected;
          st.rotor_finished <- res.finished;
          let sends =
            List.map (fun p -> (Envelope.Broadcast, Cand_echo p)) res.relay_echoes
          in
          let sends =
            if res.i_am_coordinator then
              (Envelope.Broadcast, Opinion st.x_v) :: sends
            else sends
          in
          (st, sends, Protocol.Continue)
      | _ ->
          (* Adopt the coordinator unless this phase produced a strong
             support quorum. *)
          let coordinator_opinion =
            match st.coordinator with
            | None -> None
            | Some p ->
                List.fold_left
                  (fun acc (src, msg) ->
                    match msg with
                    | Opinion c when Node_id.equal src p -> Some c
                    | _ -> acc)
                  None inbox
          in
          (match coordinator_opinion with
          | Some c when (not st.strong_support) && st.decided = None ->
              st.x_v <- c
          | _ -> ());
          (match st.decided with
          | Some d ->
              (* Zombie phase complete: every laggard has terminated too. *)
              (st, [], Protocol.Stop d)
          | None ->
              if st.rotor_finished then begin
                st.decided <- Some st.x_v;
                (st, [], Protocol.Deliver st.x_v)
              end
              else (st, [], Protocol.Continue)))
