open Ubpa_sim

module Make (V : Value.S) = struct
  module Core = Consensus_core.Make (V)

  type input = V.t
  type stimulus = Protocol.No_stimulus.t
  type output = V.t
  type message = Core.message

  type state = { core : Core.t; mutable decided_phase : int option }

  let name = "consensus"
  let pp_message = Core.pp_message
  let compare_message = Core.compare_message
  let equal_message = Core.equal_message
  let encoded_bits = Core.encoded_bits
  let init ~self ~round:_ input = { core = Core.create ~self ~input; decided_phase = None }

  let step ~self:_ ~round:_ ~stim:_ st ~inbox =
    let sends, status = Core.step st.core ~inbox in
    match status with
    | Core.Running -> (st, sends, Protocol.Continue)
    | Core.Decided x ->
        st.decided_phase <- Some (Core.phase st.core);
        (st, sends, Protocol.Stop x)

  let decided_phase st = st.decided_phase
  let current_opinion st = Core.opinion st.core
  let member_count st = Core.n_v st.core

  let copy_state st = { st with core = Core.copy st.core }

  let state_key st =
    Printf.sprintf "%s;d=%s" (Core.key st.core)
      (match st.decided_phase with
      | None -> "-"
      | Some p -> string_of_int p)
end
