(** Approximate agreement in the id-only model (Algorithm 4).

    Each correct node broadcasts its real-valued input, discards the
    [⌊n_v/3⌋] smallest and largest received values and outputs the midpoint
    of the remaining extremes. For [n > 3f] (Lemmas "aaWithin"/"aaMed"):

    - every output lies within the range of correct inputs, and
    - the output range is at most {e half} the input range.

    The protocol generalizes to an iterated form — feed the output back as
    the next round's input — halving the correct range every iteration; the
    iteration count is part of the input (the paper's one-shot algorithm is
    [iterations = 1]). It also runs unchanged in dynamic networks (Section
    "Application to Dynamic Networks"): nodes may join mid-run, subject to
    [n > 3f] per round. *)


type input = { value : float; iterations : int }

type progress = {
  iteration : int;  (** 1-based iteration that just completed. *)
  estimate : float;  (** The node's value after that iteration. *)
  n_v : int;  (** Values received in that iteration. *)
}

type message = Estimate of float

(** Correct nodes may be asked to leave a dynamic run early. *)
type stimulus = Leave

include
  Ubpa_sim.Protocol.S
    with type input := input
     and type stimulus := stimulus
     and type output = progress
     and type message := message

val midpoint_rule : float list -> float option
(** [midpoint_rule values] applies Algorithm 4's reduction to a received
    multiset: discard [⌊n/3⌋] extremes on each side, return the midpoint of
    what remains ([None] on the empty list). Exposed for tests and for the
    known-f baseline comparison. *)
