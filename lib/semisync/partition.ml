open Ubpa_util
open Unknown_ba

module C = Consensus.Make (Value.Int)
module Sim = Event_sim.Make (C)

type verdict = {
  outputs_a : int list;
  outputs_b : int list;
  disagreement : bool;
  decision_time_a : float;
  decision_time_b : float;
  max_delay : float;
  undelivered_at_decision : bool;
}

let build ~seed ~size_a ~size_b ~cross_delay =
  let ids = Node_id.scatter ~seed (size_a + size_b) in
  let group_a = List.filteri (fun i _ -> i < size_a) ids in
  let group_b = List.filteri (fun i _ -> i >= size_a) ids in
  let in_a id = List.exists (Node_id.equal id) group_a in
  let delay ~src ~dst ~at:_ =
    if in_a src = in_a dst then 0.9 else cross_delay
  in
  let nodes =
    List.map (fun id -> (id, 1)) group_a
    @ List.map (fun id -> (id, 0)) group_b
  in
  let sim = Sim.create ~delay ~nodes () in
  (sim, group_a, group_b)

let verdict_of sim ~group_a ~group_b =
  let outputs group =
    List.filter_map
      (fun id ->
        match List.assoc_opt id (Sim.outputs sim) with
        | Some (Some v) -> Some v
        | _ -> None)
      group
  in
  let decision_time group =
    List.fold_left
      (fun acc id ->
        match Sim.decided_at sim id with
        | Some t -> Float.max acc t
        | None -> acc)
      0. group
  in
  let outputs_a = outputs group_a and outputs_b = outputs group_b in
  let disagreement =
    List.exists (fun a -> List.exists (fun b -> a <> b) outputs_b) outputs_a
  in
  {
    outputs_a;
    outputs_b;
    disagreement;
    decision_time_a = decision_time group_a;
    decision_time_b = decision_time group_b;
    max_delay = Sim.max_delay_assigned sim;
    undelivered_at_decision = Sim.messages_in_flight sim > 0;
  }

let asynchronous ?(seed = 51L) ~size_a ~size_b () =
  (* "Unbounded": beyond any horizon the run will reach. *)
  let cross_delay = 1e12 in
  let sim, group_a, group_b = build ~seed ~size_a ~size_b ~cross_delay in
  Sim.run ~until:1e6 sim;
  verdict_of sim ~group_a ~group_b

let semi_synchronous ?(seed = 52L) ~size_a ~size_b ~delta () =
  let sim, group_a, group_b = build ~seed ~size_a ~size_b ~cross_delay:delta in
  (* Run far past [delta] so that, if the partitions failed to decide in
     isolation, the mixed system still runs to a decision and the premise
     check below fires. *)
  Sim.run ~until:(delta +. 100.) sim;
  let v = verdict_of sim ~group_a ~group_b in
  if
    v.outputs_a = [] || v.outputs_b = []
    || v.decision_time_a >= delta
    || v.decision_time_b >= delta
  then
    invalid_arg
      "Partition.semi_synchronous: delta must exceed both groups' decision \
       times (the lemma's requirement)";
  v
