open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) = struct
  type node = {
    id : Node_id.t;
    mutable state : P.state;
    mutable inbox : (Node_id.t * P.message) list;  (** newest first *)
    mutable local_round : int;
    mutable halted : bool;
    mutable last_output : P.output option;
    mutable decided_at : float option;
  }

  type event = Tick of Node_id.t | Deliver of Node_id.t * Node_id.t * P.message

  type t = {
    round_duration : float;
    delay : src:Node_id.t -> dst:Node_id.t -> at:float -> float;
    mutable agenda : (float * int * event) list;  (** time-ordered *)
    mutable seq : int;  (** tie-break so the agenda is a stable order *)
    mutable clock : float;
    mutable max_delay : float;
    nodes : node Node_id.Map.t;
  }

  let create ?(round_duration = 1.0) ~delay ~nodes () =
    let map =
      List.fold_left
        (fun acc (id, input) ->
          Node_id.Map.add id
            {
              id;
              state = P.init ~self:id ~round:0 input;
              inbox = [];
              local_round = 0;
              halted = false;
              last_output = None;
              decided_at = None;
            }
            acc)
        Node_id.Map.empty nodes
    in
    let t =
      {
        round_duration;
        delay;
        agenda = [];
        seq = 0;
        clock = 0.;
        max_delay = 0.;
        nodes = map;
      }
    in
    Node_id.Map.iter
      (fun id _ ->
        t.seq <- t.seq + 1;
        t.agenda <- (round_duration, t.seq, Tick id) :: t.agenda)
      map;
    t

  let schedule t time event =
    t.seq <- t.seq + 1;
    let entry = (time, t.seq, event) in
    (* Insert keeping the agenda sorted by (time, seq). *)
    let rec insert = function
      | [] -> [ entry ]
      | ((time', seq', _) as hd) :: tl ->
          if time' < time || (time' = time && seq' < t.seq) then
            hd :: insert tl
          else entry :: hd :: tl
    in
    t.agenda <- insert t.agenda

  let send t ~src ~at (dest, payload) =
    let targets =
      match dest with
      | Envelope.To id -> [ id ]
      | Envelope.Broadcast ->
          Node_id.Map.fold (fun id _ acc -> id :: acc) t.nodes []
    in
    List.iter
      (fun dst ->
        let d = t.delay ~src ~dst ~at in
        if d <= 0. then invalid_arg "Event_sim: delays must be positive";
        if d > t.max_delay then t.max_delay <- d;
        schedule t (at +. d) (Deliver (dst, src, payload)))
      targets

  let dedup_inbox inbox =
    (* Oldest first; drop repeated (sender, payload) pairs like the
       synchronous engine does per round. *)
    let rec go seen = function
      | [] -> []
      | ((src, payload) as m) :: rest ->
          if
            List.exists
              (fun (s, p) -> Node_id.equal s src && P.equal_message p payload)
              seen
          then go seen rest
          else m :: go (m :: seen) rest
    in
    go [] (List.rev inbox)

  let tick t node ~at =
    if not node.halted then begin
      node.local_round <- node.local_round + 1;
      let inbox =
        dedup_inbox node.inbox
        |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)
      in
      node.inbox <- [];
      let state, sends, status =
        P.step ~self:node.id ~round:node.local_round ~stim:[] node.state ~inbox
      in
      node.state <- state;
      List.iter (send t ~src:node.id ~at) sends;
      (match status with
      | Protocol.Continue -> ()
      | Protocol.Deliver out ->
          if node.decided_at = None then node.decided_at <- Some at;
          node.last_output <- Some out
      | Protocol.Stop out ->
          if node.decided_at = None then node.decided_at <- Some at;
          node.last_output <- Some out;
          node.halted <- true);
      if not node.halted then
        schedule t (at +. t.round_duration) (Tick node.id)
    end

  let all_halted t = Node_id.Map.for_all (fun _ n -> n.halted) t.nodes
  let now t = t.clock

  let run ~until t =
    let rec go () =
      if all_halted t then ()
      else
        match t.agenda with
        | [] -> ()
        | (time, _, event) :: rest ->
            if time > until then ()
            else begin
              t.agenda <- rest;
              t.clock <- time;
              (match event with
              | Tick id -> tick t (Node_id.Map.find id t.nodes) ~at:time
              | Deliver (dst, src, payload) ->
                  let node = Node_id.Map.find dst t.nodes in
                  if not node.halted then
                    node.inbox <- (src, payload) :: node.inbox);
              go ()
            end
    in
    go ()

  let outputs t =
    Node_id.Map.fold (fun id n acc -> (id, n.last_output) :: acc) t.nodes []
    |> List.rev

  let decided_at t id = (Node_id.Map.find id t.nodes).decided_at
  let max_delay_assigned t = t.max_delay

  let messages_in_flight t =
    List.length
      (List.filter (fun (_, _, e) -> match e with Deliver _ -> true | Tick _ -> false) t.agenda)
end
