(** Discrete-event execution of round-based protocols under arbitrary
    message delays.

    The paper's Section "Synchrony is Necessary" constructs executions in
    semi-synchronous and asynchronous systems in which nodes that do not
    know [n] and [f] disagree. This engine realizes those constructions:
    the {e same} protocol state machines that run on the synchronous engine
    are driven here by local timers — every [round_duration] time units a
    node performs one protocol round over whatever messages have arrived —
    while an adversarial [delay] function controls each message's transit
    time. A node has no way to tell a slow link from an absent sender,
    which is precisely the indistinguishability the impossibility proofs
    exploit. *)

open Ubpa_util

module Make (P : Ubpa_sim.Protocol.S) : sig
  type t

  val create :
    ?round_duration:float ->
    delay:(src:Node_id.t -> dst:Node_id.t -> at:float -> float) ->
    nodes:(Node_id.t * P.input) list ->
    unit ->
    t
  (** [delay ~src ~dst ~at] must be positive. [round_duration] defaults to
      1.0 — nodes tick at times 1.0, 2.0, ... *)

  val run : until:float -> t -> unit
  (** Process events up to (and including) time [until], or until every
      node halted. *)

  val all_halted : t -> bool
  val now : t -> float

  val outputs : t -> (Node_id.t * P.output option) list
  val decided_at : t -> Node_id.t -> float option
  (** Time of the node's first output. *)

  val max_delay_assigned : t -> float
  (** Largest delay the [delay] function returned during the run — finite
      evidence that the execution was semi-synchronous. *)

  val messages_in_flight : t -> int
  (** Deliveries scheduled after [now] — nonzero when nodes decided before
      hearing everything (the asynchronous construction). *)
end
