(** The impossibility constructions of Section "Synchrony is Necessary".

    Both lemmas are proved by exhibiting an execution in which two groups of
    correct nodes — [A] with input 1 and [B] with input 0, neither knowing
    [n] or [f] — each behave exactly as if the other group did not exist,
    decide their own input, and thereby disagree.

    {!asynchronous} realizes the first lemma: cross-partition messages are
    delayed beyond any time the nodes are willing to wait (unbounded
    delays), so each side runs to completion as a self-contained system.

    {!semi_synchronous} realizes the second lemma: every message delay is
    bounded by a {e finite} [delta] — the execution is legal in the
    semi-synchronous model — but [delta] exceeds the groups' decision times
    [T_a], [T_b], which the nodes cannot know without knowing [n]. *)

type verdict = {
  outputs_a : int list;  (** decisions in partition A (all inputs were 1) *)
  outputs_b : int list;  (** decisions in partition B (all inputs were 0) *)
  disagreement : bool;
  decision_time_a : float;  (** latest decision time in A *)
  decision_time_b : float;
  max_delay : float;
      (** largest delay assigned; finite in both constructions, and bounded
          by [delta] in the semi-synchronous one *)
  undelivered_at_decision : bool;
      (** some messages were still in flight when the last node decided —
          the hallmark of the construction *)
}

val asynchronous : ?seed:int64 -> size_a:int -> size_b:int -> unit -> verdict
(** Partitioned run of the paper's own consensus algorithm with unbounded
    (here: astronomically large but finite, which is indistinguishable)
    cross delays. *)

val semi_synchronous :
  ?seed:int64 -> size_a:int -> size_b:int -> delta:float -> unit -> verdict
(** Same construction with every delay bounded by [delta]. The function
    raises [Invalid_argument] if [delta] is too small to outlast the
    groups' decisions (the lemma requires [Δ_s > max (T_a, T_b)]). *)
