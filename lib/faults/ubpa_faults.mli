(** Declarative, seed-deterministic fault plans for {e correct} nodes.

    The paper proves its guarantees against at most [f] {e Byzantine}
    nodes; every benign fault below (crash, omission, churn) is a strict
    subset of Byzantine behaviour, so a run stays inside the proven
    envelope as long as [#victims + #byzantine <= f] and no global
    loss/duplication is configured. A plan is pure data: the engine
    ({!Ubpa_sim.Network.Make.create}[ ?faults]) interprets it at the
    delivery boundary, drawing every probabilistic decision from its own
    splitmix64 stream so runs are reproducible from the engine seed and
    identical across delivery cores.

    Faults address nodes by identifier. Plans only ever affect correct
    nodes — Byzantine misbehaviour is expressed as
    {!Ubpa_sim.Strategy.t} values, not here. *)

open Ubpa_util

(** A benign fault on one node. Rounds are 1-based, matching
    [Network.round]. *)
type benign =
  | Crash of { at : int; recover : int option }
      (** Crash-stop at round [at] (inclusive): the node stops stepping,
          sending and receiving. With [recover = Some r] it resumes at
          round [r] with its state intact, having missed everything in
          between (crash-recover). *)
  | Leave of { at : int; rejoin : int option }
      (** Round-scheduled churn: the node leaves the network at round
          [at]; with [rejoin = Some r] it comes back at round [r].
          Operationally identical to {!Crash} — the distinction is kept
          for the trace, where churn and crashes are different stories. *)
  | Send_omission of { first : int; last : int option; prob : float }
      (** While [first <= round <= last] (no [last] = forever), each
          envelope the node sends is dropped with probability [prob]. *)
  | Recv_omission of { first : int; last : int option; prob : float }
      (** While active, each envelope addressed to the node is dropped
          after routing with probability [prob]. *)
  | Delay of { first : int; last : int option; prob : float; rounds : int }
      (** While active, each envelope addressed to the node is held back
          with probability [prob] for [rounds] extra rounds
          ([rounds >= 1]). Under the engine's synchronous semantics a
          held envelope misses its delivery round and is dropped (the
          simulator has no late-delivery slot); the networked runtime
          surfaces it as a {e late frame} — counted, then dropped — so
          both layers agree the message never reached the protocol. *)

type plan

val empty : plan
(** No faults. The engine treats [empty] as "no fault hook at all". *)

val is_empty : plan -> bool

val make :
  ?loss:float -> ?dup:float -> (Node_id.t * benign list) list -> plan
(** [make faults] builds a plan. [loss] (default 0) drops every pending
    envelope — whoever sent it — with that probability before routing;
    [dup] (default 0) re-delivers an envelope a second time {e in the
    next round}, modelling a duplicating link (a same-round duplicate
    would be absorbed by the engine's per-round dedup). Both make the
    run leave the paper's synchronous model for {e every} node, hence
    {!benign_only} turns false. Raises [Invalid_argument] on
    probabilities outside [0, 1], rounds < 1, recovery not after the
    crash, or a node listed twice. *)

(** {2 Constructors} *)

val crash : at:int -> ?recover:int -> unit -> benign
val leave : at:int -> ?rejoin:int -> unit -> benign
val send_omission : first:int -> ?last:int -> prob:float -> unit -> benign
val recv_omission : first:int -> ?last:int -> prob:float -> unit -> benign
val delay : first:int -> ?last:int -> prob:float -> rounds:int -> unit -> benign

(** {2 Queries (used by the engine)} *)

val loss : plan -> float
val dup : plan -> float

val victims : plan -> Node_id.t list
(** Nodes with at least one benign fault, ascending. *)

val benign_only : plan -> bool
(** True iff [loss = 0] and [dup = 0]: only per-node crash/omission/churn
    faults, i.e. behaviours a Byzantine node could exhibit. *)

val status : plan -> node:Node_id.t -> round:int -> [ `Up | `Crashed | `Left ]
(** Whether the node is up in [round]. [`Left] wins over [`Crashed] when
    both apply (the trace label differs, the semantics do not). *)

val permanently_down : plan -> node:Node_id.t -> round:int -> bool
(** Down in [round] with no recovery/rejoin scheduled afterwards — such a
    node can never halt and is written off by [Network.all_halted]. *)

val send_omission_prob : plan -> node:Node_id.t -> round:int -> float
(** Largest active send-omission probability for the node (0 if none). *)

val recv_omission_prob : plan -> node:Node_id.t -> round:int -> float

val delay_spec : plan -> node:Node_id.t -> round:int -> (float * int) option
(** Active delay fault for an envelope addressed to [node] delivered in
    [round]: [(prob, extra_rounds)], picking the highest-probability
    active window. [None] when no delay fault applies — interpreters
    must draw {e no} randomness in that case, so plans without delay
    faults reproduce historical runs bit-for-bit. *)

val has_recovery : plan -> bool
(** True iff any crash has a [recover] or any leave a [rejoin] round.
    The networked runtime rejects such plans (a real crashed process
    cannot resume); the simulator supports them. *)

val crashes : plan -> (Node_id.t * int) list
(** Permanent departures: each node with an unrecovered crash/leave,
    paired with the first round it is down, ascending by id. *)

val pp : Format.formatter -> plan -> unit

val parse_spec : ids:Node_id.t list -> string -> (plan, string) result
(** [parse_spec ~ids s] parses the plan DSL used by [ubpa run --faults]
    and [ubpa chaos]: comma-separated clauses addressing nodes by
    {e 0-based index} into the ascending-id order of [ids] (portable
    across id seeds). Clauses:

    {v
    loss=P                  global loss probability
    dup=P                   global next-round duplication probability
    crash:I@R               node I crash-stops at round R
    leave:I@R               node I leaves (churn) at round R
    send-omit:I@A..B=P      send omission, rounds A..B (A.. open, A = A..A)
    recv-omit:I@A..B=P      receive omission, same window syntax
    delay:I@A..B=PxD        delay to node I: hold prob P, D extra rounds
    v}

    Example: ["crash:1@3,delay:2@1..4=0.5x1,loss=0.05"]. Returns the
    validated plan or a human-readable error. *)
