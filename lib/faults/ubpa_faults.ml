open Ubpa_util

type benign =
  | Crash of { at : int; recover : int option }
  | Leave of { at : int; rejoin : int option }
  | Send_omission of { first : int; last : int option; prob : float }
  | Recv_omission of { first : int; last : int option; prob : float }

type plan = {
  node_faults : (Node_id.t * benign list) list;  (** ascending node id *)
  loss : float;
  dup : float;
}

let empty = { node_faults = []; loss = 0.; dup = 0. }
let is_empty p = p.node_faults = [] && p.loss = 0. && p.dup = 0.

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Ubpa_faults: %s probability %g not in [0,1]" what p)

let check_round what r =
  if r < 1 then invalid_arg (Printf.sprintf "Ubpa_faults: %s round %d < 1" what r)

let check_benign = function
  | Crash { at; recover } ->
      check_round "crash" at;
      Option.iter
        (fun r ->
          if r <= at then invalid_arg "Ubpa_faults: recovery must be after the crash")
        recover
  | Leave { at; rejoin } ->
      check_round "leave" at;
      Option.iter
        (fun r ->
          if r <= at then invalid_arg "Ubpa_faults: rejoin must be after the leave")
        rejoin
  | Send_omission { first; last; prob } | Recv_omission { first; last; prob } ->
      check_round "omission" first;
      check_prob "omission" prob;
      Option.iter
        (fun l ->
          if l < first then invalid_arg "Ubpa_faults: omission window ends before it starts")
        last

let make ?(loss = 0.) ?(dup = 0.) node_faults =
  check_prob "loss" loss;
  check_prob "dup" dup;
  List.iter (fun (_, fs) -> List.iter check_benign fs) node_faults;
  let ids = List.map fst node_faults in
  if List.length (Node_id.sorted ids) <> List.length ids then
    invalid_arg "Ubpa_faults: node listed twice";
  let node_faults =
    List.sort (fun (a, _) (b, _) -> Node_id.compare a b) node_faults
  in
  { node_faults; loss; dup }

let crash ~at ?recover () = Crash { at; recover }
let leave ~at ?rejoin () = Leave { at; rejoin }
let send_omission ~first ?last ~prob () = Send_omission { first; last; prob }
let recv_omission ~first ?last ~prob () = Recv_omission { first; last; prob }

let loss p = p.loss
let dup p = p.dup
let victims p = List.map fst p.node_faults
let benign_only p = p.loss = 0. && p.dup = 0.

let faults_of p node =
  match List.assoc_opt node p.node_faults with Some fs -> fs | None -> []

let down_window ~round ~at ~upto =
  round >= at && match upto with None -> true | Some r -> round < r

let status p ~node ~round =
  let fs = faults_of p node in
  let left =
    List.exists
      (function
        | Leave { at; rejoin } -> down_window ~round ~at ~upto:rejoin
        | _ -> false)
      fs
  and crashed =
    List.exists
      (function
        | Crash { at; recover } -> down_window ~round ~at ~upto:recover
        | _ -> false)
      fs
  in
  if left then `Left else if crashed then `Crashed else `Up

let permanently_down p ~node ~round =
  let fs = faults_of p node in
  List.exists
    (function
      | Crash { at; recover = None } | Leave { at; rejoin = None } -> round >= at
      | _ -> false)
    fs

let omission_prob select p ~node ~round =
  List.fold_left
    (fun acc f ->
      match select f with
      | Some (first, last, prob)
        when round >= first
             && (match last with None -> true | Some l -> round <= l) ->
          Float.max acc prob
      | _ -> 0. |> Float.max acc)
    0. (faults_of p node)

let send_omission_prob p ~node ~round =
  omission_prob
    (function Send_omission { first; last; prob } -> Some (first, last, prob) | _ -> None)
    p ~node ~round

let recv_omission_prob p ~node ~round =
  omission_prob
    (function Recv_omission { first; last; prob } -> Some (first, last, prob) | _ -> None)
    p ~node ~round

let pp_benign ppf = function
  | Crash { at; recover = None } -> Fmt.pf ppf "crash@r%d" at
  | Crash { at; recover = Some r } -> Fmt.pf ppf "crash@r%d..r%d" at (r - 1)
  | Leave { at; rejoin = None } -> Fmt.pf ppf "leave@r%d" at
  | Leave { at; rejoin = Some r } -> Fmt.pf ppf "leave@r%d..r%d" at (r - 1)
  | Send_omission { first; last; prob } ->
      Fmt.pf ppf "send-omit[r%d..%s]p=%.2f" first
        (match last with None -> "" | Some l -> Printf.sprintf "r%d" l)
        prob
  | Recv_omission { first; last; prob } ->
      Fmt.pf ppf "recv-omit[r%d..%s]p=%.2f" first
        (match last with None -> "" | Some l -> Printf.sprintf "r%d" l)
        prob

let pp ppf p =
  if is_empty p then Fmt.string ppf "(no faults)"
  else begin
    List.iter
      (fun (id, fs) ->
        Fmt.pf ppf "%a: %a@." Node_id.pp id (Fmt.list ~sep:Fmt.comma pp_benign) fs)
      p.node_faults;
    if p.loss > 0. then Fmt.pf ppf "loss: %.2f@." p.loss;
    if p.dup > 0. then Fmt.pf ppf "dup: %.2f@." p.dup
  end
