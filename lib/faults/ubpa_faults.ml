open Ubpa_util

type benign =
  | Crash of { at : int; recover : int option }
  | Leave of { at : int; rejoin : int option }
  | Send_omission of { first : int; last : int option; prob : float }
  | Recv_omission of { first : int; last : int option; prob : float }
  | Delay of { first : int; last : int option; prob : float; rounds : int }

type plan = {
  node_faults : (Node_id.t * benign list) list;  (** ascending node id *)
  loss : float;
  dup : float;
}

let empty = { node_faults = []; loss = 0.; dup = 0. }
let is_empty p = p.node_faults = [] && p.loss = 0. && p.dup = 0.

let check_prob what p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Ubpa_faults: %s probability %g not in [0,1]" what p)

let check_round what r =
  if r < 1 then invalid_arg (Printf.sprintf "Ubpa_faults: %s round %d < 1" what r)

let check_benign = function
  | Crash { at; recover } ->
      check_round "crash" at;
      Option.iter
        (fun r ->
          if r <= at then invalid_arg "Ubpa_faults: recovery must be after the crash")
        recover
  | Leave { at; rejoin } ->
      check_round "leave" at;
      Option.iter
        (fun r ->
          if r <= at then invalid_arg "Ubpa_faults: rejoin must be after the leave")
        rejoin
  | Send_omission { first; last; prob } | Recv_omission { first; last; prob } ->
      check_round "omission" first;
      check_prob "omission" prob;
      Option.iter
        (fun l ->
          if l < first then invalid_arg "Ubpa_faults: omission window ends before it starts")
        last
  | Delay { first; last; prob; rounds } ->
      check_round "delay" first;
      check_prob "delay" prob;
      if rounds < 1 then invalid_arg "Ubpa_faults: delay must hold for at least one round";
      Option.iter
        (fun l ->
          if l < first then invalid_arg "Ubpa_faults: delay window ends before it starts")
        last

let make ?(loss = 0.) ?(dup = 0.) node_faults =
  check_prob "loss" loss;
  check_prob "dup" dup;
  List.iter (fun (_, fs) -> List.iter check_benign fs) node_faults;
  let ids = List.map fst node_faults in
  if List.length (Node_id.sorted ids) <> List.length ids then
    invalid_arg "Ubpa_faults: node listed twice";
  let node_faults =
    List.sort (fun (a, _) (b, _) -> Node_id.compare a b) node_faults
  in
  { node_faults; loss; dup }

let crash ~at ?recover () = Crash { at; recover }
let leave ~at ?rejoin () = Leave { at; rejoin }
let send_omission ~first ?last ~prob () = Send_omission { first; last; prob }
let recv_omission ~first ?last ~prob () = Recv_omission { first; last; prob }
let delay ~first ?last ~prob ~rounds () = Delay { first; last; prob; rounds }

let loss p = p.loss
let dup p = p.dup
let victims p = List.map fst p.node_faults
let benign_only p = p.loss = 0. && p.dup = 0.

let faults_of p node =
  match List.assoc_opt node p.node_faults with Some fs -> fs | None -> []

let down_window ~round ~at ~upto =
  round >= at && match upto with None -> true | Some r -> round < r

let status p ~node ~round =
  let fs = faults_of p node in
  let left =
    List.exists
      (function
        | Leave { at; rejoin } -> down_window ~round ~at ~upto:rejoin
        | _ -> false)
      fs
  and crashed =
    List.exists
      (function
        | Crash { at; recover } -> down_window ~round ~at ~upto:recover
        | _ -> false)
      fs
  in
  if left then `Left else if crashed then `Crashed else `Up

let permanently_down p ~node ~round =
  let fs = faults_of p node in
  List.exists
    (function
      | Crash { at; recover = None } | Leave { at; rejoin = None } -> round >= at
      | _ -> false)
    fs

let omission_prob select p ~node ~round =
  List.fold_left
    (fun acc f ->
      match select f with
      | Some (first, last, prob)
        when round >= first
             && (match last with None -> true | Some l -> round <= l) ->
          Float.max acc prob
      | _ -> 0. |> Float.max acc)
    0. (faults_of p node)

let send_omission_prob p ~node ~round =
  omission_prob
    (function Send_omission { first; last; prob } -> Some (first, last, prob) | _ -> None)
    p ~node ~round

let recv_omission_prob p ~node ~round =
  omission_prob
    (function Recv_omission { first; last; prob } -> Some (first, last, prob) | _ -> None)
    p ~node ~round

let delay_spec p ~node ~round =
  List.fold_left
    (fun acc f ->
      match f with
      | Delay { first; last; prob; rounds }
        when round >= first
             && (match last with None -> true | Some l -> round <= l) -> (
          match acc with
          | Some (p0, _) when p0 >= prob -> acc
          | _ -> Some (prob, rounds))
      | _ -> acc)
    None (faults_of p node)

let has_recovery p =
  List.exists
    (fun (_, fs) ->
      List.exists
        (function
          | Crash { recover = Some _; _ } | Leave { rejoin = Some _; _ } -> true
          | _ -> false)
        fs)
    p.node_faults

let crashes p =
  List.filter_map
    (fun (id, fs) ->
      let at =
        List.fold_left
          (fun acc f ->
            match f with
            | Crash { at; recover = None } | Leave { at; rejoin = None } -> (
                match acc with Some a when a <= at -> acc | _ -> Some at)
            | _ -> acc)
          None fs
      in
      Option.map (fun at -> (id, at)) at)
    p.node_faults

let pp_benign ppf = function
  | Crash { at; recover = None } -> Fmt.pf ppf "crash@r%d" at
  | Crash { at; recover = Some r } -> Fmt.pf ppf "crash@r%d..r%d" at (r - 1)
  | Leave { at; rejoin = None } -> Fmt.pf ppf "leave@r%d" at
  | Leave { at; rejoin = Some r } -> Fmt.pf ppf "leave@r%d..r%d" at (r - 1)
  | Send_omission { first; last; prob } ->
      Fmt.pf ppf "send-omit[r%d..%s]p=%.2f" first
        (match last with None -> "" | Some l -> Printf.sprintf "r%d" l)
        prob
  | Recv_omission { first; last; prob } ->
      Fmt.pf ppf "recv-omit[r%d..%s]p=%.2f" first
        (match last with None -> "" | Some l -> Printf.sprintf "r%d" l)
        prob
  | Delay { first; last; prob; rounds } ->
      Fmt.pf ppf "delay[r%d..%s]p=%.2f+%dr" first
        (match last with None -> "" | Some l -> Printf.sprintf "r%d" l)
        prob rounds

let pp ppf p =
  if is_empty p then Fmt.string ppf "(no faults)"
  else begin
    List.iter
      (fun (id, fs) ->
        Fmt.pf ppf "%a: %a@." Node_id.pp id (Fmt.list ~sep:Fmt.comma pp_benign) fs)
      p.node_faults;
    if p.loss > 0. then Fmt.pf ppf "loss: %.2f@." p.loss;
    if p.dup > 0. then Fmt.pf ppf "dup: %.2f@." p.dup
  end

(* Plan DSL: comma-separated clauses over 0-based node indexes (in
   ascending-id order), so a spec is portable across id seeds:

     loss=P | dup=P
     crash:I@R | leave:I@R
     send-omit:I@A..B=P | recv-omit:I@A..B=P   (A.. = open-ended, A = A..A)
     delay:I@A..B=PxD                          (hold prob P, D rounds)   *)

let ( let* ) = Result.bind

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad %s %S" what s)

let parse_prob what s =
  match float_of_string_opt (String.trim s) with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "bad %s %S (want a probability in [0,1])" what s)

(* "A..B" | "A.." | "A" -> (first, last option) *)
let parse_window s =
  match
    let i = ref None in
    String.iteri (fun k c -> if c = '.' && !i = None then i := Some k) s;
    !i
  with
  | None ->
      let* a = parse_int "round" s in
      Ok (a, Some a)
  | Some i ->
      if i + 1 >= String.length s || s.[i + 1] <> '.' then
        Error (Printf.sprintf "bad round window %S" s)
      else
        let* a = parse_int "round" (String.sub s 0 i) in
        let b = String.sub s (i + 2) (String.length s - i - 2) in
        if String.trim b = "" then Ok (a, None)
        else
          let* b = parse_int "round" b in
          Ok (a, Some b)

(* "I@REST" -> (index, rest) *)
let parse_at s =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "expected NODE@... in %S" s)
  | Some i ->
      let* ix = parse_int "node index" (String.sub s 0 i) in
      Ok (ix, String.sub s (i + 1) (String.length s - i - 1))

let split1 c s =
  match String.index_opt s c with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_clause clause =
  let clause = String.trim clause in
  let win_prob rest =
    match split1 '=' rest with
    | None -> Error (Printf.sprintf "expected WINDOW=PROB in %S" rest)
    | Some (w, p) ->
        let* first, last = parse_window w in
        let* prob = parse_prob "probability" p in
        Ok (first, last, prob)
  in
  match split1 ':' clause with
  | None -> (
      match split1 '=' clause with
      | Some ("loss", p) ->
          let* p = parse_prob "loss" p in
          Ok (`Loss p)
      | Some ("dup", p) ->
          let* p = parse_prob "dup" p in
          Ok (`Dup p)
      | _ -> Error (Printf.sprintf "unknown fault clause %S" clause))
  | Some (kind, rest) -> (
      let* ix, rest = parse_at rest in
      match kind with
      | "crash" ->
          let* at = parse_int "round" rest in
          Ok (`Node (ix, Crash { at; recover = None }))
      | "leave" ->
          let* at = parse_int "round" rest in
          Ok (`Node (ix, Leave { at; rejoin = None }))
      | "send-omit" ->
          let* first, last, prob = win_prob rest in
          Ok (`Node (ix, Send_omission { first; last; prob }))
      | "recv-omit" ->
          let* first, last, prob = win_prob rest in
          Ok (`Node (ix, Recv_omission { first; last; prob }))
      | "delay" -> (
          match split1 '=' rest with
          | None -> Error (Printf.sprintf "expected WINDOW=PROBxROUNDS in %S" rest)
          | Some (w, pd) -> (
              let* first, last = parse_window w in
              match split1 'x' pd with
              | None -> Error (Printf.sprintf "expected PROBxROUNDS in %S" pd)
              | Some (p, d) ->
                  let* prob = parse_prob "probability" p in
                  let* rounds = parse_int "delay rounds" d in
                  Ok (`Node (ix, Delay { first; last; prob; rounds }))))
      | _ -> Error (Printf.sprintf "unknown fault kind %S" kind))

let parse_spec ~ids spec =
  let ids = Array.of_list (Node_id.sorted ids) in
  let clauses =
    List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec)
  in
  if clauses = [] then Error "empty fault spec"
  else
    let* parsed =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          let* p = parse_clause c in
          Ok (p :: acc))
        (Ok []) clauses
    in
    let parsed = List.rev parsed in
    let loss =
      List.fold_left (fun a -> function `Loss p -> Float.max a p | _ -> a) 0. parsed
    and dup =
      List.fold_left (fun a -> function `Dup p -> Float.max a p | _ -> a) 0. parsed
    in
    let* by_node =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          match p with
          | `Loss _ | `Dup _ -> Ok acc
          | `Node (ix, f) ->
              if ix < 0 || ix >= Array.length ids then
                Error
                  (Printf.sprintf "node index %d out of range (population has %d nodes)"
                     ix (Array.length ids))
              else
                let id = ids.(ix) in
                let fs = match List.assoc_opt id acc with Some fs -> fs | None -> [] in
                Ok ((id, fs @ [ f ]) :: List.remove_assoc id acc))
        (Ok []) parsed
    in
    match make ~loss ~dup by_node with
    | plan -> Ok plan
    | exception Invalid_argument msg -> Error msg
