(* Unix-domain-socket transport: a full mesh of anonymous socketpairs
   (one per unordered node pair, including the self pair, so broadcast
   to self crosses a real kernel buffer too). Each file descriptor has
   exactly one writing node and one reading node, so no locking is
   needed; receive sides are non-blocking and feed a per-peer
   incremental {!Frame.decoder}, because the kernel is free to hand back
   partial frames. Writes block if a socket buffer fills — fine at the
   small n the runtime targets (the harness pool is the scale story). *)

open Ubpa_util

type peer = {
  p_id : Node_id.t;
  p_send : Unix.file_descr;
  p_recv : Unix.file_descr;
  p_dec : Frame.decoder;
}

type endpoint = { e_self : Node_id.t; e_peers : peer list (* ascending id *) }

type hub = {
  h_eps : (Node_id.t * endpoint) list;
  h_fds : Unix.file_descr list;
  mutable h_closed : bool;
}

let name = "socket"

(* A peer that crashed mid-run closes its end of the pair; without this,
   the next write to it raises SIGPIPE and kills the whole process. With
   the signal ignored the write fails with EPIPE instead, which [send]
   turns into a catchable error. *)
let mask_sigpipe =
  lazy
    (match Sys.os_type with
    | "Unix" -> ( try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())
    | _ -> ())

let create ~ids =
  Lazy.force mask_sigpipe;
  let ids = Node_id.sorted ids in
  let fds = ref [] in
  let pair () =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    fds := a :: b :: !fds;
    (a, b)
  in
  let peers_of = Hashtbl.create 16 in
  let add id peer =
    Unix.set_nonblock peer.p_recv;
    let prior = Option.value ~default:[] (Hashtbl.find_opt peers_of id) in
    Hashtbl.replace peers_of id (peer :: prior)
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then begin
            let fa, fb = pair () in
            add a { p_id = b; p_send = fa; p_recv = fa; p_dec = Frame.decoder () };
            add b { p_id = a; p_send = fb; p_recv = fb; p_dec = Frame.decoder () }
          end
          else if j = i then begin
            let fa, fb = pair () in
            add a { p_id = a; p_send = fa; p_recv = fb; p_dec = Frame.decoder () }
          end)
        ids)
    ids;
  let eps =
    List.map
      (fun id ->
        let peers =
          Hashtbl.find peers_of id
          |> List.sort (fun a b -> Node_id.compare a.p_id b.p_id)
        in
        (id, { e_self = id; e_peers = peers }))
      ids
  in
  { h_eps = eps; h_fds = !fds; h_closed = false }

let endpoint hub ~self =
  match List.find_opt (fun (i, _) -> Node_id.equal i self) hub.h_eps with
  | Some (_, ep) -> ep
  | None -> invalid_arg "Transport_socket.endpoint: unknown node"

(* Loop until the whole frame is on the wire: a kernel write is free to
   accept a prefix, and EINTR/EAGAIN are retries, not lost bytes. EAGAIN
   should not happen on a blocking fd, but backing off and retrying is
   strictly safer than silently dropping the suffix of a frame. *)
let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (try Unix.sleepf 0.0002 with Unix.Unix_error _ -> ());
        write_all fd s off len

let send ep ~dst frame =
  match List.find_opt (fun p -> Node_id.equal p.p_id dst) ep.e_peers with
  | None -> () (* unknown destination: dropped at the edge, like the sim *)
  | Some p -> (
      let s = Frame.encode frame in
      try write_all p.p_send s 0 (String.length s)
      with Unix.Unix_error (Unix.EPIPE, _, _) ->
        failwith
          (Printf.sprintf "Transport_socket.send: peer #%d is gone (EPIPE)"
             (Node_id.to_int dst)))

let drain_peer p =
  let buf = Bytes.create 4096 in
  let chunks = ref [] in
  let continue = ref true in
  while !continue do
    match Unix.read p.p_recv buf 0 (Bytes.length buf) with
    | 0 -> continue := false
    | n -> (
        match Frame.feed p.p_dec buf n with
        | Ok fs -> chunks := fs :: !chunks
        | Error e ->
            failwith
              (Printf.sprintf "Transport_socket.drain: corrupt stream from #%d: %s"
                 (Node_id.to_int p.p_id) e))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> continue := false
  done;
  List.concat (List.rev !chunks)

let drain ep = List.concat_map drain_peer ep.e_peers

let close hub =
  if not hub.h_closed then begin
    hub.h_closed <- true;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) hub.h_fds
  end
