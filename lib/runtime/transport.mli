(** The transport seam of the networked runtime.

    A transport moves encoded {!Frame.t}s between node endpoints; the
    round structure, delivery semantics (dedup, sender-sorted inboxes,
    halt handling) and all accounting live {e above} this interface in
    {!Runner}, so every backend automatically inherits the simulator's
    delivery contract. Two backends ship: {!Transport_domains}
    (in-process mailboxes between OCaml 5 domains) and
    {!Transport_socket} (a full mesh of Unix-domain socketpairs with
    length-prefixed stream framing). *)

module type S = sig
  val name : string
  (** Stable backend name ("domains", "socket") used in results, traces
      and bench tables. *)

  type hub
  (** Shared wiring for one run, created before any node spawns. *)

  type endpoint
  (** One node's view of the hub. [send] may be called by the owning
      node's process only; likewise [drain]. Distinct endpoints are safe
      to use concurrently. *)

  val create : ids:Ubpa_util.Node_id.t list -> hub

  val endpoint : hub -> self:Ubpa_util.Node_id.t -> endpoint
  (** @raise Invalid_argument if [self] was not in [create]'s [ids]. *)

  val send : endpoint -> dst:Ubpa_util.Node_id.t -> Frame.t -> unit
  (** Enqueue one frame for [dst]. A destination outside the hub is
      dropped silently — the simulator routes unicasts only to present
      nodes, and the runtime matches by dropping at the edge. *)

  val drain : endpoint -> Frame.t list
  (** Everything received so far, per-sender FIFO (the property the
      delivery contract's same-sender ordering relies on); cross-sender
      interleaving is unspecified because {!Runner} sorts by sender
      anyway. Never blocks. *)

  val close : hub -> unit
  (** Release OS resources (idempotent). *)
end
