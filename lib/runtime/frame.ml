type kind = Data | Done | Halt

type t = { src : Ubpa_util.Node_id.t; round : int; kind : kind; body : string }

let header_bytes = 17 (* u32 len + i64 src + u32 round + u8 kind *)
let max_body_bytes = 1 lsl 20

let kind_byte = function Data -> 0 | Done -> 1 | Halt -> 2
let kind_of_byte = function 0 -> Some Data | 1 -> Some Done | 2 -> Some Halt | _ -> None

let encode { src; round; kind; body } =
  let len = String.length body in
  if len > max_body_bytes then
    invalid_arg
      (Printf.sprintf "Frame.encode: body %d bytes exceeds max %d" len max_body_bytes);
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int64_be b 4 (Int64.of_int (Ubpa_util.Node_id.to_int src));
  Bytes.set_int32_be b 12 (Int32.of_int round);
  Bytes.set_uint8 b 16 (kind_byte kind);
  Bytes.blit_string body 0 b header_bytes len;
  Bytes.unsafe_to_string b

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Header sanity stands alone so the incremental decoder can reject a
   hostile length prefix *before* buffering toward a body that will
   never legitimately arrive. *)
let check_header buf off =
  let len = Int32.to_int (Bytes.get_int32_be buf off) in
  if len < 0 then corrupt "negative body length %d" len;
  if len > max_body_bytes then
    corrupt "body length %d exceeds max %d" len max_body_bytes;
  let k = Bytes.get_uint8 buf (off + 16) in
  match kind_of_byte k with
  | Some kind -> (len, kind)
  | None -> corrupt "unknown frame kind %d" k

let decode_at buf off =
  let len, kind = check_header buf off in
  let src =
    Ubpa_util.Node_id.of_int (Int64.to_int (Bytes.get_int64_be buf (off + 4)))
  in
  let round = Int32.to_int (Bytes.get_int32_be buf (off + 12)) in
  if Bytes.length buf - off - header_bytes < len then corrupt "truncated frame";
  { src; round; kind; body = Bytes.sub_string buf (off + header_bytes) len }

let decode s =
  match
    let buf = Bytes.of_string s in
    if Bytes.length buf < header_bytes then corrupt "short buffer";
    let f = decode_at buf 0 in
    if header_bytes + String.length f.body <> String.length s then
      corrupt "trailing bytes";
    f
  with
  | f -> Ok f
  | exception Corrupt msg -> Error ("Frame.decode: " ^ msg)

type decoder = { mutable buf : Bytes.t; mutable used : int }

let decoder () = { buf = Bytes.create 4096; used = 0 }

let ensure d extra =
  let need = d.used + extra in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit d.buf 0 b 0 d.used;
    d.buf <- b
  end

let feed d src len =
  match
    ensure d len;
    Bytes.blit src 0 d.buf d.used len;
    d.used <- d.used + len;
    let frames = ref [] in
    let off = ref 0 in
    let continue = ref true in
    while !continue do
      if d.used - !off < header_bytes then continue := false
      else
        let body_len, _ = check_header d.buf !off in
        if d.used - !off < header_bytes + body_len then continue := false
        else begin
          frames := decode_at d.buf !off :: !frames;
          off := !off + header_bytes + body_len
        end
    done;
    if !off > 0 then begin
      Bytes.blit d.buf !off d.buf 0 (d.used - !off);
      d.used <- d.used - !off
    end;
    List.rev !frames
  with
  | frames -> Ok frames
  | exception Corrupt msg -> Error ("Frame.feed: " ^ msg)

let pending_bytes d = d.used
let marshal_message m = Marshal.to_string m []
let unmarshal_message s = Marshal.from_string s 0
