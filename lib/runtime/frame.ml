type t = { src : Ubpa_util.Node_id.t; round : int; body : string }

let header_bytes = 16 (* u32 len + i64 src + u32 round *)

let encode { src; round; body } =
  let len = String.length body in
  let b = Bytes.create (header_bytes + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int64_be b 4 (Int64.of_int (Ubpa_util.Node_id.to_int src));
  Bytes.set_int32_be b 12 (Int32.of_int round);
  Bytes.blit_string body 0 b header_bytes len;
  Bytes.unsafe_to_string b

let decode_at buf off =
  let len = Int32.to_int (Bytes.get_int32_be buf off) in
  if len < 0 then failwith "Frame.decode: negative length";
  let src =
    Ubpa_util.Node_id.of_int (Int64.to_int (Bytes.get_int64_be buf (off + 4)))
  in
  let round = Int32.to_int (Bytes.get_int32_be buf (off + 12)) in
  if Bytes.length buf - off - header_bytes < len then
    failwith "Frame.decode: truncated frame";
  { src; round; body = Bytes.sub_string buf (off + header_bytes) len }

let decode s =
  let buf = Bytes.of_string s in
  if Bytes.length buf < header_bytes then failwith "Frame.decode: short buffer";
  let f = decode_at buf 0 in
  if header_bytes + String.length f.body <> String.length s then
    failwith "Frame.decode: trailing bytes";
  f

type decoder = { mutable buf : Bytes.t; mutable used : int }

let decoder () = { buf = Bytes.create 4096; used = 0 }

let ensure d extra =
  let need = d.used + extra in
  if need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit d.buf 0 b 0 d.used;
    d.buf <- b
  end

let feed d src len =
  ensure d len;
  Bytes.blit src 0 d.buf d.used len;
  d.used <- d.used + len;
  let frames = ref [] in
  let off = ref 0 in
  let continue = ref true in
  while !continue do
    if d.used - !off < header_bytes then continue := false
    else
      let body_len = Int32.to_int (Bytes.get_int32_be d.buf !off) in
      if body_len < 0 then failwith "Frame.feed: negative length"
      else if d.used - !off < header_bytes + body_len then continue := false
      else begin
        frames := decode_at d.buf !off :: !frames;
        off := !off + header_bytes + body_len
      end
  done;
  if !off > 0 then begin
    Bytes.blit d.buf !off d.buf 0 (d.used - !off);
    d.used <- d.used - !off
  end;
  List.rev !frames

let pending_bytes d = d.used
let marshal_message m = Marshal.to_string m []
let unmarshal_message s = Marshal.from_string s 0
