(* OCaml 4.14 stub: the networked runtime needs domains. Keeps the
   interface so [Ubpa_runtime] compiles everywhere; every operation
   raises, and Runner.run checks [available] to fail gracefully first. *)

let available = false

let unavailable_reason =
  "runtime unavailable: the networked runtime needs OCaml 5 domains \
   (this build is sequential-only)"

let unavailable () = failwith unavailable_reason

type handle = unit

let spawn (_ : unit -> unit) : handle = unavailable ()
let join (_ : handle) = unavailable ()

type mailbox = unit

let mailbox () : mailbox = unavailable ()
let push (_ : mailbox) (_ : string) = unavailable ()
let drain (_ : mailbox) : string list = unavailable ()
