module type S = sig
  val name : string

  type hub
  type endpoint

  val create : ids:Ubpa_util.Node_id.t list -> hub
  val endpoint : hub -> self:Ubpa_util.Node_id.t -> endpoint
  val send : endpoint -> dst:Ubpa_util.Node_id.t -> Frame.t -> unit
  val drain : endpoint -> Frame.t list
  val close : hub -> unit
end
