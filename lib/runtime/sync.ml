open Ubpa_util

type verdict = {
  v_inbox : Frame.t list;
  v_missing : Node_id.t list;
  v_newly_dead : Node_id.t list;
}

type event = { e_round : int; e_peer : Node_id.t; e_what : string }

type t = {
  peers : Node_id.t array;  (* ascending, self included *)
  round_ms : float;
  dead_after : int;
  mutable round : int;
  mutable deadline : float;  (* [infinity] = wait for markers forever *)
  done_upto : int array;  (* highest Done/Halt round seen per peer *)
  halted_at : int option array;
  silent : int array;  (* consecutive deadline rounds with no marker *)
  dead : bool array;
  mutable future : Frame.t list;  (* newest first *)
  mutable current : Frame.t list;  (* newest first, Data only *)
  mutable late : int;
  mutable data_frames : int;
  mutable data_bytes : int;
  mutable events : event list;  (* newest first *)
}

let create ~peers ~round_ms ~dead_after =
  if dead_after < 1 then invalid_arg "Sync.create: dead_after < 1";
  let peers = Array.of_list (Node_id.sorted peers) in
  let n = Array.length peers in
  {
    peers;
    round_ms;
    dead_after;
    round = 0;
    deadline = infinity;
    done_upto = Array.make n 0;
    halted_at = Array.make n None;
    silent = Array.make n 0;
    dead = Array.make n false;
    future = [];
    current = [];
    late = 0;
    data_frames = 0;
    data_bytes = 0;
    events = [];
  }

let index t id =
  let n = Array.length t.peers in
  let rec go i = if i >= n then None else if Node_id.equal t.peers.(i) id then Some i else go (i + 1) in
  go 0

(* Classify one frame against the current round. Control markers only
   ever move [done_upto]/[halted_at] forward; Data frames land in the
   current inbox, the future buffer, or the late counter — a late frame
   is dropped here, never handed to the protocol (no cross-round
   contamination). Frame/byte accounting happens at the two terminal
   classifications (current, late), not at drain time: whether a node
   happened to drain a peer's next-round frames before exiting is a
   scheduler race, but what it classified is not. *)
let count_data t (f : Frame.t) =
  t.data_frames <- t.data_frames + 1;
  t.data_bytes <- t.data_bytes + Frame.header_bytes + String.length f.Frame.body

let note_frame t (f : Frame.t) =
  match f.Frame.kind with
  | Frame.Done | Frame.Halt -> (
      match index t f.Frame.src with
      | None -> ()
      | Some i ->
          if f.Frame.round > t.done_upto.(i) then t.done_upto.(i) <- f.Frame.round;
          if f.Frame.kind = Frame.Halt && t.halted_at.(i) = None then
            t.halted_at.(i) <- Some f.Frame.round)
  | Frame.Data ->
      if f.Frame.round = t.round then begin
        count_data t f;
        t.current <- f :: t.current
      end
      else if f.Frame.round > t.round then t.future <- f :: t.future
      else begin
        count_data t f;
        t.late <- t.late + 1;
        t.events <-
          {
            e_round = t.round;
            e_peer = f.Frame.src;
            e_what =
              Printf.sprintf "fault: late frame from #%d (sent r%d) dropped"
                (Node_id.to_int f.Frame.src) f.Frame.round;
          }
          :: t.events
      end

let begin_round t ~round ~now =
  t.round <- round;
  t.deadline <- (if t.round_ms > 0. then now +. (t.round_ms /. 1000.) else infinity);
  let buffered = t.future in
  t.future <- [];
  List.iter (note_frame t) (List.rev buffered)

let offer t frames = List.iter (note_frame t) frames

let waiting_on t =
  let out = ref [] in
  Array.iteri
    (fun i p ->
      let halted_before =
        match t.halted_at.(i) with Some h -> h < t.round | None -> false
      in
      if (not t.dead.(i)) && (not halted_before) && t.done_upto.(i) < t.round then
        out := p :: !out)
    t.peers;
  List.rev !out

let take_inbox t =
  let inbox = List.rev t.current in
  t.current <- [];
  inbox

let ready t ~now =
  let missing = waiting_on t in
  if missing = [] then begin
    Array.iteri (fun i _ -> t.silent.(i) <- 0) t.peers;
    Some { v_inbox = take_inbox t; v_missing = []; v_newly_dead = [] }
  end
  else if now >= t.deadline then begin
    let newly = ref [] in
    Array.iteri
      (fun i p ->
        if List.exists (Node_id.equal p) missing then begin
          t.silent.(i) <- t.silent.(i) + 1;
          if t.silent.(i) >= t.dead_after && not t.dead.(i) then begin
            t.dead.(i) <- true;
            newly := p :: !newly;
            t.events <-
              {
                e_round = t.round;
                e_peer = p;
                e_what =
                  Printf.sprintf "fault: peer #%d presumed dead after %d silent round(s)"
                    (Node_id.to_int p) t.silent.(i);
              }
              :: t.events
          end
        end
        else t.silent.(i) <- 0)
      t.peers;
    Some { v_inbox = take_inbox t; v_missing = missing; v_newly_dead = List.rev !newly }
  end
  else None

let late_frames t = t.late
let data_frames t = t.data_frames
let data_bytes t = t.data_bytes

let dead_peers t =
  let out = ref [] in
  Array.iteri (fun i p -> if t.dead.(i) then out := p :: !out) t.peers;
  List.rev !out

let events t = List.rev t.events
