type t = {
  s_a : Runtime_backend.barrier;
  s_b : Runtime_backend.barrier;
  s_round_ms : float;
}

let create ~parties ~round_ms =
  {
    s_a = Runtime_backend.barrier ~parties;
    s_b = Runtime_backend.barrier ~parties;
    s_round_ms = round_ms;
  }

(* Wall-clock pacing reads the real clock directly: Clock.now_ms has
   process-global clamp state that node domains must not share. *)
let round_start t =
  Runtime_backend.await t.s_a;
  Unix.gettimeofday ()

let sends_done t ~started =
  Runtime_backend.await t.s_b;
  if t.s_round_ms > 0. then begin
    let deadline = started +. (t.s_round_ms /. 1000.) in
    let rec sleep () =
      let left = deadline -. Unix.gettimeofday () in
      if left > 0. then begin
        (try Unix.sleepf left with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        sleep ()
      end
    in
    sleep ()
  end
