open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) = struct
  module Oracle = Replay.Make (P)

  type transport = [ `Domains | `Socket ]

  let transport_name = function `Domains -> "domains" | `Socket -> "socket"

  type node_summary = {
    ns_id : Node_id.t;
    ns_output : P.output option;
    ns_decide_round : int option;
    ns_halted_at : int option;
    ns_crashed_at : int option;
  }

  type run = {
    r_transport : string;
    r_rounds : int;
    r_nodes : node_summary list;
    r_schedule : Oracle.schedule;
    r_events : Trace.event list;
    r_wire : Ubpa_obs.Wire.t;
    r_frames : int;
    r_frame_bytes : int;
    r_ctrl_frames : int;
    r_late_frames : int;
    r_missing : int;
    r_injected : Transport_faulty.injected;
    r_dead : (Node_id.t * Node_id.t * int) list;
    r_crashed : (Node_id.t * int) list;
  }

  let available = Runtime_backend.available
  let unavailable_reason = Runtime_backend.unavailable_reason

  (* Per-node recording cell. Written only by the owning node's domain
     while it runs; read only by the coordinator after Domain.join, which
     provides the synchronization edge. *)
  type slot = {
    sl_id : Node_id.t;
    sl_input : P.input;
    mutable sl_rounds : (int * Oracle.node_round) list; (* newest first *)
    mutable sl_events : (int * Trace.event list) list; (* newest first *)
    mutable sl_first_output : int option;
    mutable sl_last_output : P.output option;
    mutable sl_halted_at : int option;
    mutable sl_crashed_at : int option;
    mutable sl_frame_bytes : int;
    mutable sl_frames : int;
    mutable sl_ctrl_frames : int;
    mutable sl_late : int;
    mutable sl_missing : int;
    mutable sl_dead_marks : (Node_id.t * int) list; (* peer, round; newest first *)
    mutable sl_fault_log : (int * string) list; (* round, what; unsorted *)
    mutable sl_error : string option;
  }

  (* Rebuild the delivery contract from raw received frames: drop
     duplicate (sender, payload) pairs keeping the first (per-sender
     arrival order is send order on every transport), then stable-sort by
     sender id — exactly what Delivery.route produces per recipient. *)
  let assemble_inbox frames =
    let kept = ref [] in
    List.iter
      (fun (src, payload) ->
        let dup =
          List.exists
            (fun (s, p) -> Node_id.equal s src && P.equal_message p payload)
            !kept
        in
        if not dup then kept := (src, payload) :: !kept)
      frames;
    List.stable_sort
      (fun (a, _) (b, _) -> Node_id.compare a b)
      (List.rev !kept)

  let node_loop (type hub endpoint)
      (module F : Transport_faulty.S with type hub = hub and type endpoint = endpoint)
      ~(slot : slot) ~(ids : Node_id.t array) ~plan ~(sync : Sync.t)
      ~(ep : endpoint) ~max_rounds =
    let self = slot.sl_id in
    let state = ref (P.init ~self ~round:1 slot.sl_input) in
    let inbox = ref [] in
    let r = ref 1 in
    let running = ref true in
    while !running do
      if Ubpa_faults.status plan ~node:self ~round:!r <> `Up then begin
        (* Hard process crash: no farewell marker, no sends — the node
           simply stops, and peers find out through the liveness
           tracker's deadline path. *)
        slot.sl_crashed_at <- Some !r;
        running := false
      end
      else begin
        F.note_round ep !r;
        let events = ref [] in
        let ev kind what =
          events := { Trace.round = !r; node = Some self; kind; what } :: !events
        in
        let pending_halt = ref false in
        (match P.step ~self ~round:!r ~stim:[] !state ~inbox:!inbox with
        | exception e ->
            slot.sl_error <-
              Some
                (Printf.sprintf "node %d raised at round %d: %s"
                   (Node_id.to_int self) !r (Printexc.to_string e));
            slot.sl_halted_at <- Some !r;
            pending_halt := true
        | st, sends, status ->
            state := st;
            slot.sl_rounds <-
              (!r, { Oracle.nr_inbox = !inbox; nr_sends = sends }) :: slot.sl_rounds;
            List.iter
              (fun (dst, payload) ->
                let env = { Envelope.src = self; dst; payload } in
                ev Trace.Send (Fmt.str "send %a" (Envelope.pp P.pp_message) env);
                let frame =
                  {
                    Frame.src = self;
                    round = !r;
                    kind = Frame.Data;
                    body = Frame.marshal_message payload;
                  }
                in
                match dst with
                | Envelope.To id -> F.send ep ~dst:id frame
                | Envelope.Broadcast ->
                    (* Every node gets the frame, the sender and even
                       halted ones included: receivers that the model says
                       are absent next round drop it on drain, mirroring
                       present-set routing. *)
                    Array.iter (fun id -> F.send ep ~dst:id frame) ids)
              sends;
            (match status with
            | Protocol.Continue -> ()
            | Protocol.Deliver out ->
                if slot.sl_first_output = None then slot.sl_first_output <- Some !r;
                slot.sl_last_output <- Some out;
                ev Trace.Output "output"
            | Protocol.Stop out ->
                if slot.sl_first_output = None then slot.sl_first_output <- Some !r;
                slot.sl_last_output <- Some out;
                slot.sl_halted_at <- Some !r;
                pending_halt := true;
                ev Trace.Halt "halt");
            slot.sl_events <- (!r, List.rev !events) :: slot.sl_events);
        (* End-of-round marker: Done while running, Halt as a farewell.
           Per-edge FIFO puts it after every Data frame of this round,
           so a peer holding our marker holds all our data too. *)
        let marker =
          {
            Frame.src = self;
            round = !r;
            kind = (if !pending_halt then Frame.Halt else Frame.Done);
            body = "";
          }
        in
        Array.iter (fun id -> F.send ep ~dst:id marker) ids;
        if !pending_halt || !r >= max_rounds then running := false
        else begin
          Sync.begin_round sync ~round:!r ~now:(Unix.gettimeofday ());
          let verdict = ref None in
          while !verdict = None do
            let frames = F.drain ep in
            List.iter
              (fun (f : Frame.t) ->
                if f.Frame.kind <> Frame.Data then
                  slot.sl_ctrl_frames <- slot.sl_ctrl_frames + 1)
              frames;
            Sync.offer sync frames;
            match Sync.ready sync ~now:(Unix.gettimeofday ()) with
            | Some v -> verdict := Some v
            | None -> (
                try Unix.sleepf 0.0002
                with Unix.Unix_error (Unix.EINTR, _, _) -> ())
          done;
          let v = Option.get !verdict in
          slot.sl_missing <- slot.sl_missing + List.length v.Sync.v_missing;
          List.iter
            (fun p -> slot.sl_dead_marks <- (p, !r) :: slot.sl_dead_marks)
            v.Sync.v_newly_dead;
          inbox :=
            assemble_inbox
              (List.map
                 (fun (f : Frame.t) ->
                   (f.Frame.src, (Frame.unmarshal_message f.Frame.body : P.message)))
                 v.Sync.v_inbox);
          incr r
        end
      end
    done;
    slot.sl_late <- Sync.late_frames sync;
    slot.sl_frames <- Sync.data_frames sync;
    slot.sl_frame_bytes <- Sync.data_bytes sync

  let exec (module B : Transport.S) ~plan ~fault_seed ~round_ms ~dead_after
      ~max_rounds ~(correct : (Node_id.t * P.input) list) =
    let module F =
      Transport_faulty.Make
        (B)
        (struct
          let plan = plan
          let seed = fault_seed
        end)
    in
    let slots =
      List.sort (fun (a, _) (b, _) -> Node_id.compare a b) correct
      |> List.map (fun (id, input) ->
             {
               sl_id = id;
               sl_input = input;
               sl_rounds = [];
               sl_events = [];
               sl_first_output = None;
               sl_last_output = None;
               sl_halted_at = None;
               sl_crashed_at = None;
               sl_frame_bytes = 0;
               sl_frames = 0;
               sl_ctrl_frames = 0;
               sl_late = 0;
               sl_missing = 0;
               sl_dead_marks = [];
               sl_fault_log = [];
               sl_error = None;
             })
    in
    let ids = Array.of_list (List.map (fun s -> s.sl_id) slots) in
    let id_list = Array.to_list ids in
    let hub = F.create ~ids:id_list in
    let cells =
      List.map
        (fun slot ->
          let ep = F.endpoint hub ~self:slot.sl_id in
          let sync = Sync.create ~peers:id_list ~round_ms ~dead_after in
          (slot, ep, sync))
        slots
    in
    let handles =
      List.map
        (fun (slot, ep, sync) ->
          Runtime_backend.spawn (fun () ->
              try node_loop (module F) ~slot ~ids ~plan ~sync ~ep ~max_rounds
              with e ->
                slot.sl_error <-
                  Some
                    (Printf.sprintf "node %d died: %s" (Node_id.to_int slot.sl_id)
                       (Printexc.to_string e))))
        cells
    in
    List.iter Runtime_backend.join handles;
    F.close hub;
    (* Collect the per-endpoint fault observations now the owners are
       gone (join is the synchronization edge). Sorting by (round, what)
       inside each owner makes the event stream a pure function of what
       was injected, independent of arrival interleaving. *)
    let injected = { Transport_faulty.inj_lost = 0; inj_dup = 0; inj_delayed = 0 } in
    List.iter
      (fun (slot, ep, sync) ->
        let inj = F.injected ep in
        injected.Transport_faulty.inj_lost <-
          injected.Transport_faulty.inj_lost + inj.Transport_faulty.inj_lost;
        injected.Transport_faulty.inj_dup <-
          injected.Transport_faulty.inj_dup + inj.Transport_faulty.inj_dup;
        injected.Transport_faulty.inj_delayed <-
          injected.Transport_faulty.inj_delayed + inj.Transport_faulty.inj_delayed;
        let log =
          List.map
            (fun (fe : Transport_faulty.fault_event) ->
              (fe.Transport_faulty.fe_round, fe.Transport_faulty.fe_what))
            (F.fault_events ep)
          @ List.map
              (fun (e : Sync.event) -> (e.Sync.e_round, e.Sync.e_what))
              (Sync.events sync)
          @ (match slot.sl_crashed_at with
            | Some at -> [ (at, "fault: crash") ]
            | None -> [])
        in
        slot.sl_fault_log <- List.sort compare log)
      cells;
    match List.find_map (fun s -> s.sl_error) slots with
    | Some err -> Error err
    | None ->
        let rounds =
          List.fold_left
            (fun acc s ->
              match s.sl_rounds with (r, _) :: _ -> max acc r | [] -> acc)
            0 slots
        in
        let sc_rounds =
          List.init rounds (fun i ->
              let round = i + 1 in
              List.fold_left
                (fun acc s ->
                  match List.assoc_opt round s.sl_rounds with
                  | Some nr -> Node_id.Map.add s.sl_id nr acc
                  | None -> acc)
                Node_id.Map.empty slots)
        in
        let schedule = { Oracle.sc_nodes = correct; sc_rounds } in
        (* Wire accounting at the runtime's accept points: every message a
           live node kept post-dedup, attributed to its delivery round —
           the same currency as the simulator's and the oracle's. *)
        let wire = Ubpa_obs.Wire.create () in
        List.iteri
          (fun i recorded ->
            let round = i + 1 in
            Node_id.Map.iter
              (fun id (nr : Oracle.node_round) ->
                List.iter
                  (fun (src, payload) ->
                    Ubpa_obs.Wire.record wire ~round ~sender:src ~recipient:id
                      ~kind:"msg" ~bits:(P.encoded_bits payload))
                  nr.Oracle.nr_inbox)
              recorded)
          sc_rounds;
        let joins =
          List.map
            (fun (id, _) ->
              {
                Trace.round = 1;
                node = Some id;
                kind = Trace.Join;
                what = "join (correct)";
              })
            correct
        in
        let max_event_round =
          List.fold_left
            (fun acc s ->
              List.fold_left (fun acc (r, _) -> max acc r) acc s.sl_fault_log)
            rounds slots
        in
        let events =
          joins
          @ List.concat_map
              (fun i ->
                let round = i + 1 in
                List.concat_map
                  (fun s ->
                    Option.value ~default:[] (List.assoc_opt round s.sl_events)
                    @ List.filter_map
                        (fun (r, what) ->
                          if r = round then
                            Some
                              {
                                Trace.round;
                                node = Some s.sl_id;
                                kind = Trace.Fault;
                                what;
                              }
                          else None)
                        s.sl_fault_log)
                  slots)
              (List.init max_event_round Fun.id)
        in
        Ok
          {
            r_transport = B.name;
            r_rounds = rounds;
            r_nodes =
              List.map
                (fun s ->
                  {
                    ns_id = s.sl_id;
                    ns_output = s.sl_last_output;
                    ns_decide_round = s.sl_first_output;
                    ns_halted_at = s.sl_halted_at;
                    ns_crashed_at = s.sl_crashed_at;
                  })
                slots;
            r_schedule = schedule;
            r_events = events;
            r_wire = wire;
            r_frames = List.fold_left (fun acc s -> acc + s.sl_frames) 0 slots;
            r_frame_bytes =
              List.fold_left (fun acc s -> acc + s.sl_frame_bytes) 0 slots;
            r_ctrl_frames =
              List.fold_left (fun acc s -> acc + s.sl_ctrl_frames) 0 slots;
            r_late_frames = List.fold_left (fun acc s -> acc + s.sl_late) 0 slots;
            r_missing = List.fold_left (fun acc s -> acc + s.sl_missing) 0 slots;
            r_injected = injected;
            r_dead =
              List.concat_map
                (fun s ->
                  List.rev_map (fun (p, r) -> (s.sl_id, p, r)) s.sl_dead_marks)
                slots;
            r_crashed =
              List.filter_map
                (fun s -> Option.map (fun at -> (s.sl_id, at)) s.sl_crashed_at)
                slots;
          }

  let run ?(transport = `Domains) ?(round_ms = 0.) ?(max_rounds = 64)
      ?(faults = Ubpa_faults.empty) ?(fault_seed = 1L) ?(dead_after = 2) ~correct
      () =
    let ids = List.map fst correct in
    let known id = List.exists (Node_id.equal id) ids in
    if not available then Error unavailable_reason
    else if correct = [] then Error "Runner.run: no nodes"
    else if List.length (Node_id.sorted ids) <> List.length correct then
      Error "Runner.run: duplicate node identifiers"
    else if max_rounds < 1 then Error "Runner.run: max_rounds must be >= 1"
    else if dead_after < 1 then Error "Runner.run: dead_after must be >= 1"
    else if not (List.for_all known (Ubpa_faults.victims faults)) then
      Error "Runner.run: fault plan names a node outside the population"
    else if Ubpa_faults.has_recovery faults then
      Error
        "Runner.run: crash-recovery/rejoin plans are not supported by the \
         runtime (a real crashed process cannot resume)"
    else if Ubpa_faults.crashes faults <> [] && round_ms <= 0. then
      Error
        "Runner.run: crash/leave faults need --round-ms > 0 (without a \
         deadline, peers would wait on the crashed node forever)"
    else
      let m : (module Transport.S) =
        match transport with
        | `Domains -> (module Transport_domains)
        | `Socket -> (module Transport_socket)
      in
      exec m ~plan:faults ~fault_seed ~round_ms ~dead_after ~max_rounds ~correct

  let replay ?delivered r = Oracle.replay ?delivered r.r_schedule
end
