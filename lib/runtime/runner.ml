open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) = struct
  module Oracle = Replay.Make (P)

  type transport = [ `Domains | `Socket ]

  let transport_name = function `Domains -> "domains" | `Socket -> "socket"

  type node_summary = {
    ns_id : Node_id.t;
    ns_output : P.output option;
    ns_decide_round : int option;
    ns_halted_at : int option;
  }

  type run = {
    r_transport : string;
    r_rounds : int;
    r_nodes : node_summary list;
    r_schedule : Oracle.schedule;
    r_events : Trace.event list;
    r_wire : Ubpa_obs.Wire.t;
    r_frames : int;
    r_frame_bytes : int;
    r_late_frames : int;
  }

  let available = Runtime_backend.available
  let unavailable_reason = Runtime_backend.unavailable_reason

  (* Per-node recording cell. Written only by the owning node's domain
     while it runs; read only by the coordinator after Domain.join, which
     provides the synchronization edge. *)
  type slot = {
    sl_id : Node_id.t;
    sl_ix : int;
    sl_input : P.input;
    mutable sl_rounds : (int * Oracle.node_round) list; (* newest first *)
    mutable sl_events : (int * Trace.event list) list; (* newest first *)
    mutable sl_first_output : int option;
    mutable sl_last_output : P.output option;
    mutable sl_halted_at : int option;
    mutable sl_frame_bytes : int;
    mutable sl_frames : int;
    mutable sl_late : int;
    mutable sl_error : string option;
  }

  (* Rebuild the delivery contract from raw received frames: drop
     duplicate (sender, payload) pairs keeping the first (per-sender
     arrival order is send order on every transport), then stable-sort by
     sender id — exactly what Delivery.route produces per recipient. *)
  let assemble_inbox frames =
    let kept = ref [] in
    List.iter
      (fun (src, payload) ->
        let dup =
          List.exists
            (fun (s, p) -> Node_id.equal s src && P.equal_message p payload)
            !kept
        in
        if not dup then kept := (src, payload) :: !kept)
      frames;
    List.stable_sort
      (fun (a, _) (b, _) -> Node_id.compare a b)
      (List.rev !kept)

  let node_loop (type hub endpoint)
      (module T : Transport.S with type hub = hub and type endpoint = endpoint)
      ~(slot : slot) ~(ids : Node_id.t array) ~(halted : bool array)
      ~(sync : Sync.t) ~(ep : endpoint) ~max_rounds =
    let self = slot.sl_id in
    let state = ref (P.init ~self ~round:1 slot.sl_input) in
    let inbox = ref [] in
    let r = ref 1 in
    let running = ref true in
    while !running do
      let started = Sync.round_start sync in
      (* halted.(_) reads are confined to [barrier A, barrier B); writes to
         [barrier B, next barrier A) — the barriers' mutexes order them. *)
      let any_live = Array.exists (fun h -> not h) halted in
      if (not any_live) || !r > max_rounds then
        (* Identical state + identical round number: every node takes this
           branch together, so nobody is left waiting at barrier B. *)
        running := false
      else begin
        let live_self = not halted.(slot.sl_ix) in
        let pending_halt = ref false in
        if live_self then begin
          let events = ref [] in
          let ev kind what =
            events :=
              { Trace.round = !r; node = Some self; kind; what } :: !events
          in
          match P.step ~self ~round:!r ~stim:[] !state ~inbox:!inbox with
          | exception e ->
              slot.sl_error <-
                Some
                  (Printf.sprintf "node %d raised at round %d: %s"
                     (Node_id.to_int self) !r (Printexc.to_string e));
              slot.sl_halted_at <- Some !r;
              pending_halt := true
          | st, sends, status ->
              state := st;
              slot.sl_rounds <-
                (!r, { Oracle.nr_inbox = !inbox; nr_sends = sends })
                :: slot.sl_rounds;
              List.iter
                (fun (dst, payload) ->
                  let env = { Envelope.src = self; dst; payload } in
                  ev Trace.Send
                    (Fmt.str "send %a" (Envelope.pp P.pp_message) env);
                  let frame =
                    {
                      Frame.src = self;
                      round = !r;
                      body = Frame.marshal_message payload;
                    }
                  in
                  match dst with
                  | Envelope.To id -> T.send ep ~dst:id frame
                  | Envelope.Broadcast ->
                      (* Every node gets the frame, the sender and even
                         halted ones included: receivers that the model says
                         are absent next round drop it on drain, mirroring
                         present-set routing. *)
                      Array.iter (fun id -> T.send ep ~dst:id frame) ids)
                sends;
              (match status with
              | Protocol.Continue -> ()
              | Protocol.Deliver out ->
                  if slot.sl_first_output = None then
                    slot.sl_first_output <- Some !r;
                  slot.sl_last_output <- Some out;
                  ev Trace.Output "output"
              | Protocol.Stop out ->
                  if slot.sl_first_output = None then
                    slot.sl_first_output <- Some !r;
                  slot.sl_last_output <- Some out;
                  slot.sl_halted_at <- Some !r;
                  pending_halt := true;
                  ev Trace.Halt "halt");
              slot.sl_events <- (!r, List.rev !events) :: slot.sl_events
        end;
        Sync.sends_done sync ~started;
        if !pending_halt then halted.(slot.sl_ix) <- true;
        let frames = T.drain ep in
        List.iter
          (fun (f : Frame.t) ->
            slot.sl_frames <- slot.sl_frames + 1;
            slot.sl_frame_bytes <-
              slot.sl_frame_bytes + Frame.header_bytes + String.length f.body)
          frames;
        if live_self && not !pending_halt then begin
          let on_time, late =
            List.partition (fun (f : Frame.t) -> f.Frame.round = !r) frames
          in
          slot.sl_late <- slot.sl_late + List.length late;
          inbox :=
            assemble_inbox
              (List.map
                 (fun (f : Frame.t) ->
                   (f.Frame.src, (Frame.unmarshal_message f.body : P.message)))
                 on_time)
        end
        else inbox := [];
        incr r
      end
    done

  let exec (module T : Transport.S) ~round_ms ~max_rounds
      ~(correct : (Node_id.t * P.input) list) =
    let slots =
      List.sort (fun (a, _) (b, _) -> Node_id.compare a b) correct
      |> List.mapi (fun i (id, input) ->
             {
               sl_id = id;
               sl_ix = i;
               sl_input = input;
               sl_rounds = [];
               sl_events = [];
               sl_first_output = None;
               sl_last_output = None;
               sl_halted_at = None;
               sl_frame_bytes = 0;
               sl_frames = 0;
               sl_late = 0;
               sl_error = None;
             })
    in
    let ids = Array.of_list (List.map (fun s -> s.sl_id) slots) in
    let n = Array.length ids in
    let halted = Array.make n false in
    let hub = T.create ~ids:(Array.to_list ids) in
    let sync = Sync.create ~parties:n ~round_ms in
    let handles =
      List.map
        (fun slot ->
          let ep = T.endpoint hub ~self:slot.sl_id in
          Runtime_backend.spawn (fun () ->
              node_loop (module T) ~slot ~ids ~halted ~sync ~ep ~max_rounds))
        slots
    in
    List.iter Runtime_backend.join handles;
    T.close hub;
    match List.find_map (fun s -> s.sl_error) slots with
    | Some err -> Error err
    | None ->
        let rounds =
          List.fold_left
            (fun acc s ->
              match s.sl_rounds with (r, _) :: _ -> max acc r | [] -> acc)
            0 slots
        in
        let sc_rounds =
          List.init rounds (fun i ->
              let round = i + 1 in
              List.fold_left
                (fun acc s ->
                  match List.assoc_opt round s.sl_rounds with
                  | Some nr -> Node_id.Map.add s.sl_id nr acc
                  | None -> acc)
                Node_id.Map.empty slots)
        in
        let schedule = { Oracle.sc_nodes = correct; sc_rounds = sc_rounds } in
        (* Wire accounting at the runtime's accept points: every message a
           live node kept post-dedup, attributed to its delivery round —
           the same currency as the simulator's and the oracle's. *)
        let wire = Ubpa_obs.Wire.create () in
        List.iteri
          (fun i recorded ->
            let round = i + 1 in
            Node_id.Map.iter
              (fun id (nr : Oracle.node_round) ->
                List.iter
                  (fun (_src, payload) ->
                    Ubpa_obs.Wire.record wire ~round ~recipient:id ~kind:"msg"
                      ~bits:(P.encoded_bits payload))
                  nr.Oracle.nr_inbox)
              recorded)
          sc_rounds;
        let joins =
          List.map
            (fun (id, _) ->
              {
                Trace.round = 1;
                node = Some id;
                kind = Trace.Join;
                what = "join (correct)";
              })
            correct
        in
        let events =
          joins
          @ List.concat_map
              (fun i ->
                let round = i + 1 in
                List.concat_map
                  (fun s ->
                    Option.value ~default:[]
                      (List.assoc_opt round s.sl_events))
                  slots)
              (List.init rounds Fun.id)
        in
        Ok
          {
            r_transport = T.name;
            r_rounds = rounds;
            r_nodes =
              List.map
                (fun s ->
                  {
                    ns_id = s.sl_id;
                    ns_output = s.sl_last_output;
                    ns_decide_round = s.sl_first_output;
                    ns_halted_at = s.sl_halted_at;
                  })
                slots;
            r_schedule = schedule;
            r_events = events;
            r_wire = wire;
            r_frames = List.fold_left (fun acc s -> acc + s.sl_frames) 0 slots;
            r_frame_bytes =
              List.fold_left (fun acc s -> acc + s.sl_frame_bytes) 0 slots;
            r_late_frames = List.fold_left (fun acc s -> acc + s.sl_late) 0 slots;
          }

  let run ?(transport = `Domains) ?(round_ms = 0.) ?(max_rounds = 64) ~correct
      () =
    if not available then Error unavailable_reason
    else if correct = [] then Error "Runner.run: no nodes"
    else if
      List.length (Node_id.sorted (List.map fst correct))
      <> List.length correct
    then Error "Runner.run: duplicate node identifiers"
    else if max_rounds < 1 then Error "Runner.run: max_rounds must be >= 1"
    else
      let m : (module Transport.S) =
        match transport with
        | `Domains -> (module Transport_domains)
        | `Socket -> (module Transport_socket)
      in
      exec m ~round_ms ~max_rounds ~correct

  let replay r = Oracle.replay r.r_schedule
end
