(** Fault-injecting transport middleware.

    Wraps either backend ({!Transport_domains}, {!Transport_socket}) and
    applies a seeded {!Ubpa_faults.plan} to the wire — the same plan
    vocabulary the simulator interprets, so the runtime and the
    simulator speak one fault language. Per directed edge and per Data
    frame, in order:

    - {b send side}: send-omission (sender's window, at the send round),
      then global loss;
    - {b receive side}: receive-omission, then delay, then global
      duplication (all evaluated at the delivery round, send round + 1,
      matching the simulator). A delayed frame is held for its extra
      rounds and then surfaced — deterministically late, counted and
      dropped by the synchronizer. A duplicate copy is held one round
      and surfaces the same way, the runtime analogue of the
      simulator's per-round dedup absorbing same-round copies.

    Control frames ([Done]/[Halt]) are never faulted: they model the
    synchronizer's knowledge of {e process} liveness, and a lossy wire
    must not make a running peer look dead. Process crashes are not a
    wire fault at all — {!Runner} stops the crashed node's loop.

    Every decision draws from a splitmix64 stream keyed by
    [(seed, src, dst, direction)] only, and edges are FIFO, so outcomes
    are identical across transports, schedulers and [--jobs] — which is
    what lets RT2's fault cells live in a committed baseline. A plan
    that {!Ubpa_faults.is_empty} makes the wrapper a pure pass-through
    (no draws, no buffering): the fault-free path is byte-identical to
    the bare backend. *)

open Ubpa_util

(** Injection counters for one endpoint (receiver side for delay,
    sender side for loss/omission/dup). *)
type injected = {
  mutable inj_lost : int;  (** loss + send-omission + recv-omission drops *)
  mutable inj_dup : int;
  mutable inj_delayed : int;
}

(** One injected-fault observation, in the [fault:] trace vocabulary,
    attributed to the round whose window triggered it. *)
type fault_event = { fe_round : int; fe_what : string }

module type CONFIG = sig
  val plan : Ubpa_faults.plan
  val seed : int64
end

(** {!Transport.S} plus the fault-injection surface. *)
module type S = sig
  val name : string

  type hub
  type endpoint

  val create : ids:Node_id.t list -> hub
  val endpoint : hub -> self:Node_id.t -> endpoint
  val send : endpoint -> dst:Node_id.t -> Frame.t -> unit
  val drain : endpoint -> Frame.t list
  val close : hub -> unit

  val note_round : endpoint -> int -> unit
  (** The owner entered this round: flush held duplicates whose release
      round arrived, and let matured delayed frames surface on the next
      {!drain}. *)

  val injected : endpoint -> injected
  val fault_events : endpoint -> fault_event list
  (** Oldest first. *)
end

module Make (_ : Transport.S) (_ : CONFIG) : S
