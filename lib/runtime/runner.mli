(** The networked runtime: one concurrent process per node.

    [Make (P)] runs an {e unchanged} [Protocol.S] instance per node, each
    on its own OCaml 5 domain, exchanging messages through a
    {!Transport.S} backend wrapped in the {!Transport_faulty} fault
    middleware. The deadline-based round synchronizer ({!Sync}) keeps the
    processes aligned with the synchronous model without any shared
    barrier: each node broadcasts a control marker after its send phase,
    advances as soon as every awaited peer has marked (fast path — on a
    fault-free run this reproduces the lockstep schedule exactly), or
    when its [round_ms] deadline fires (real timeout — missing frames
    become inbox holes, frames arriving afterwards are counted late and
    dropped, and a peer silent for [dead_after] consecutive deadlines is
    presumed dead and no longer waited on). Messages sent in round [r]
    are consumed in round [r + 1], with per-round (sender, payload) dedup
    and sender-sorted inboxes — the simulator's delivery contract,
    rebuilt at the receiving edge.

    Every run records its full {e delivered} schedule (per node per
    round: the inbox consumed and the sends emitted) so the lockstep
    simulator can replay it as an equivalence oracle ({!Make.Oracle},
    {!Ubpa_sim.Replay} — exact mode for fault-free runs, delivered mode
    for runs with holes), plus trace events in the simulator's exact
    vocabulary, wire counters, transport-level accounting (frame bytes,
    late frames), and the fault-injection ledger (injected drops /
    duplicates / delays, presumed-dead marks, crashes).

    On OCaml 4.14 builds the backend is the sequential stub and
    {!Make.run} returns [Error "runtime unavailable: ..."] without
    touching any concurrency primitive. *)

open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) : sig
  module Oracle : module type of Replay.Make (P)
  (** The replay oracle at this protocol — exposed so callers share one
      functor application's types with {!run}'s recorded schedule. *)

  type transport = [ `Domains | `Socket ]

  val transport_name : transport -> string

  type node_summary = {
    ns_id : Node_id.t;
    ns_output : P.output option;  (** Latest output, if any. *)
    ns_decide_round : int option;  (** First output round. *)
    ns_halted_at : int option;
    ns_crashed_at : int option;
        (** Round the fault plan crashed this node's process, if any. *)
  }

  type run = {
    r_transport : string;
    r_rounds : int;  (** Rounds actually executed. *)
    r_nodes : node_summary list;  (** Ascending id. *)
    r_schedule : Oracle.schedule;  (** What the wire actually delivered. *)
    r_events : Trace.event list;
        (** Joins, sends, outputs, halts in the simulator's exact
            vocabulary and order — comparable with a sim run's
            [Trace.events] via {!Trace.equal_events} on fault-free runs —
            plus [fault:] events for every injected fault, late frame,
            presumed-dead mark and crash, in a deterministic order
            (per round, per node, sorted). *)
    r_wire : Ubpa_obs.Wire.t;
        (** Accept-point accounting over the runtime's own deliveries. *)
    r_frames : int;
        (** Data frames that reached a terminal classification (delivered
            on time or late), across all nodes, pre-dedup — a pure
            function of the delivered schedule. *)
    r_frame_bytes : int;
        (** Their transport-level bytes (headers included) — overhead,
            kept separate from semantic bits. *)
    r_ctrl_frames : int;
        (** Done/Halt markers drained before exit. Informative only: how
            many markers a node drains past its last round is a
            scheduler race, so this is not byte-deterministic. *)
    r_late_frames : int;
        (** Data frames that missed their delivery round — counted,
            dropped, never handed to a protocol. 0 on fault-free runs
            (markers make the fast path exact); strictly positive when
            delay faults fire. *)
    r_missing : int;
        (** Peer-rounds the deadline gave up on (wall-clock dependent on
            a loaded machine; the gated experiments only rely on it
            through [r_dead]). *)
    r_injected : Transport_faulty.injected;  (** Summed over endpoints. *)
    r_dead : (Node_id.t * Node_id.t * int) list;
        (** [(observer, peer, round)]: observer presumed peer dead after
            [dead_after] silent deadline rounds. *)
    r_crashed : (Node_id.t * int) list;
        (** Nodes the plan crashed, with their crash round. *)
  }

  val available : bool
  (** False on sequential-only (4.14) builds; {!run} then fails
      gracefully. *)

  val unavailable_reason : string

  val run :
    ?transport:transport ->
    ?round_ms:float ->
    ?max_rounds:int ->
    ?faults:Ubpa_faults.plan ->
    ?fault_seed:int64 ->
    ?dead_after:int ->
    correct:(Node_id.t * P.input) list ->
    unit ->
    (run, string) result
  (** [run ~correct ()] spawns one process per node, all joining at round
      1, and drives rounds until every node halted or [max_rounds]
      (default 64) executed. [round_ms] (default 0) is the per-round
      deadline — 0 means no deadline (wait for markers forever), which
      is only legal for plans without crash/leave faults. [faults]
      (default empty) is applied at the wire by {!Transport_faulty},
      seeded by [fault_seed] (default 1); crash/leave faults stop the
      node's process at their round. [dead_after] (default 2) is the
      liveness tracker's silent-round threshold. Defaults to the
      [`Domains] transport. Errors: runtime unavailable, empty/duplicate
      node list, a plan naming unknown nodes, recovery/rejoin plans
      (a real crashed process cannot resume), crash plans without a
      deadline, or a node process raising (the run still shuts down
      cleanly). *)

  val replay : ?delivered:bool -> run -> Oracle.outcome
  (** Feed the recorded schedule through the simulator's indexed delivery
      core — the oracle verdict callers gate on. [delivered] (default
      false) switches {!Ubpa_sim.Replay.Make.replay} to delivered mode:
      required for runs whose faults created holes, where the runtime's
      schedule is legitimately a sub-schedule of lockstep delivery. *)
end
