(** The networked runtime: one concurrent process per node.

    [Make (P)] runs an {e unchanged} [Protocol.S] instance per node, each
    on its own OCaml 5 domain, exchanging messages through a
    {!Transport.S} backend. A wall-clock round synchronizer (two barriers
    per round, optional round duration) keeps the processes aligned with
    the synchronous model: messages sent in round [r] are drained after
    the send barrier and consumed in round [r + 1], with per-round
    (sender, payload) dedup and sender-sorted inboxes — the simulator's
    delivery contract, rebuilt at the receiving edge.

    Every run records its full delivery schedule (per node per round: the
    inbox consumed and the sends emitted) so the lockstep simulator can
    replay it as an equivalence oracle ({!Make.Oracle},
    {!Ubpa_sim.Replay}), plus the trace events of a simulator run in the
    simulator's exact vocabulary and emission order, wire counters, and
    transport-level accounting (frame bytes, late frames).

    On OCaml 4.14 builds the backend is the sequential stub and
    {!Make.run} returns [Error "runtime unavailable: ..."] without
    touching any concurrency primitive. *)

open Ubpa_util
open Ubpa_sim

module Make (P : Protocol.S) : sig
  module Oracle : module type of Replay.Make (P)
  (** The replay oracle at this protocol — exposed so callers share one
      functor application's types with {!run}'s recorded schedule. *)

  type transport = [ `Domains | `Socket ]

  val transport_name : transport -> string

  type node_summary = {
    ns_id : Node_id.t;
    ns_output : P.output option;  (** Latest output, if any. *)
    ns_decide_round : int option;  (** First output round. *)
    ns_halted_at : int option;
  }

  type run = {
    r_transport : string;
    r_rounds : int;  (** Rounds actually executed. *)
    r_nodes : node_summary list;  (** Ascending id. *)
    r_schedule : Oracle.schedule;  (** What the wire actually did. *)
    r_events : Trace.event list;
        (** Joins, sends, outputs, halts in the simulator's exact
            vocabulary and order — comparable with a sim run's
            [Trace.events] via {!Trace.equal_events}. *)
    r_wire : Ubpa_obs.Wire.t;
        (** Accept-point accounting over the runtime's own deliveries. *)
    r_frames : int;
        (** Frames received across all nodes, pre-dedup (broadcast
            fan-out counts once per recipient) — deterministic, unlike
            byte counts which depend on the marshaller. *)
    r_frame_bytes : int;
        (** Transport-level bytes received across all nodes (headers
            included) — overhead, kept separate from semantic bits. *)
    r_late_frames : int;
        (** Frames drained outside their delivery round. Always 0 under
            barrier synchronization; the counter exists to prove it. *)
  }

  val available : bool
  (** False on sequential-only (4.14) builds; {!run} then fails
      gracefully. *)

  val unavailable_reason : string

  val run :
    ?transport:transport ->
    ?round_ms:float ->
    ?max_rounds:int ->
    correct:(Node_id.t * P.input) list ->
    unit ->
    (run, string) result
  (** [run ~correct ()] spawns one process per node, all joining at round
      1, and drives rounds until every node halted or [max_rounds]
      (default 64) executed. [round_ms] (default 0) stretches each round
      to a wall-clock duration. Defaults to the [`Domains] transport.
      Errors: runtime unavailable, empty/duplicate node list, or a node
      process raising (the run still shuts down cleanly). *)

  val replay : run -> Oracle.outcome
  (** Feed the recorded schedule through the simulator's indexed delivery
      core — the oracle verdict callers gate on. *)
end
