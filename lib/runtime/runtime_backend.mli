(** Concurrency backend for the networked runtime, chosen at build time by
    dune's [(select)] — the same pattern as {!Ubpa_harness.Pool}'s
    executor: on OCaml 5 (detected via the [runtime_events] library, which
    only exists there) nodes run on real domains with Mutex/Condition
    mailboxes; on 4.14 a stub keeps the interface so the rest
    of the runtime compiles, and every operation raises
    [Failure "runtime unavailable: ..."]. Callers must check {!available}
    first — {!Ubpa_runtime.Runner.run} turns it into a graceful [Error]. *)

val available : bool
(** Whether this build can actually run per-node concurrent processes. *)

val unavailable_reason : string
(** The message surfaced when [available = false] (mentions the OCaml 5
    requirement); empty on the concurrent backend. *)

(** {2 Node processes} *)

type handle

val spawn : (unit -> unit) -> handle
(** Start one node process (an OCaml 5 domain). *)

val join : handle -> unit
(** Wait for the node to finish; re-raises its uncaught exception. *)

(** {2 Mailboxes}

    One per node: any node may {!push} an encoded frame, only the owner
    {!drain}s. FIFO per producer. The Mutex inside gives the
    happens-before edge the runtime relies on: anything a node writes
    before {!push} is visible to the owner after {!drain} returns it. *)

type mailbox

val mailbox : unit -> mailbox
val push : mailbox -> string -> unit

val drain : mailbox -> string list
(** Everything currently queued, in arrival order; empties the mailbox. *)
