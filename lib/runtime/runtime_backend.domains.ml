(* OCaml 5 backend: real domains and Mutex-protected mailboxes.
   Selected by dune when the [runtime_events] library exists (OCaml 5). *)

let available = true
let unavailable_reason = ""

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join h = Domain.join h

type mailbox = {
  m_mutex : Mutex.t;
  mutable m_queue : string list;  (* newest first *)
}

let mailbox () = { m_mutex = Mutex.create (); m_queue = [] }

let push m frame =
  Mutex.lock m.m_mutex;
  m.m_queue <- frame :: m.m_queue;
  Mutex.unlock m.m_mutex

let drain m =
  Mutex.lock m.m_mutex;
  let q = m.m_queue in
  m.m_queue <- [];
  Mutex.unlock m.m_mutex;
  List.rev q
