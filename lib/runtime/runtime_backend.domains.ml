(* OCaml 5 backend: real domains, Mutex/Condition barriers and mailboxes.
   Selected by dune when the [runtime_events] library exists (OCaml 5). *)

let available = true
let unavailable_reason = ""

type handle = unit Domain.t

let spawn f = Domain.spawn f
let join h = Domain.join h

type barrier = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  b_parties : int;
  mutable b_arrived : int;
  mutable b_generation : int;
}

let barrier ~parties =
  if parties <= 0 then invalid_arg "Runtime_backend.barrier";
  {
    b_mutex = Mutex.create ();
    b_cond = Condition.create ();
    b_parties = parties;
    b_arrived = 0;
    b_generation = 0;
  }

let await b =
  Mutex.lock b.b_mutex;
  let gen = b.b_generation in
  b.b_arrived <- b.b_arrived + 1;
  if b.b_arrived = b.b_parties then begin
    b.b_arrived <- 0;
    b.b_generation <- gen + 1;
    Condition.broadcast b.b_cond
  end
  else
    while b.b_generation = gen do
      Condition.wait b.b_cond b.b_mutex
    done;
  Mutex.unlock b.b_mutex

type mailbox = {
  m_mutex : Mutex.t;
  mutable m_queue : string list;  (* newest first *)
}

let mailbox () = { m_mutex = Mutex.create (); m_queue = [] }

let push m frame =
  Mutex.lock m.m_mutex;
  m.m_queue <- frame :: m.m_queue;
  Mutex.unlock m.m_mutex

let drain m =
  Mutex.lock m.m_mutex;
  let q = m.m_queue in
  m.m_queue <- [];
  Mutex.unlock m.m_mutex;
  List.rev q
