(* In-process transport for the domain backend: one Mutex-protected
   mailbox per node, frames still serialized through {!Frame.encode} so
   both transports exercise the same codec and carry no shared heap
   structure between domains. *)

open Ubpa_util

let name = "domains"

type hub = (Node_id.t * Runtime_backend.mailbox) list

type endpoint = { e_hub : hub; e_box : Runtime_backend.mailbox }

let create ~ids =
  List.map (fun id -> (id, Runtime_backend.mailbox ())) (Node_id.sorted ids)

let find hub id =
  List.find_opt (fun (i, _) -> Node_id.equal i id) hub |> Option.map snd

let endpoint hub ~self =
  match find hub self with
  | Some box -> { e_hub = hub; e_box = box }
  | None -> invalid_arg "Transport_domains.endpoint: unknown node"

let send ep ~dst frame =
  match find ep.e_hub dst with
  | Some box -> Runtime_backend.push box (Frame.encode frame)
  | None -> () (* unknown destination: dropped at the edge, like the sim *)

let drain ep =
  List.map
    (fun s ->
      match Frame.decode s with
      | Ok f -> f
      (* An in-process mailbox cannot corrupt a frame; a decode error
         here is a codec bug, not a wire condition. *)
      | Error e -> failwith ("Transport_domains.drain: " ^ e))
    (Runtime_backend.drain ep.e_box)

let close (_ : hub) = ()
