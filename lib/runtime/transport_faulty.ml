open Ubpa_util

type injected = {
  mutable inj_lost : int;
  mutable inj_dup : int;
  mutable inj_delayed : int;
}

type fault_event = { fe_round : int; fe_what : string }

module type CONFIG = sig
  val plan : Ubpa_faults.plan
  val seed : int64
end

module type S = sig
  val name : string

  type hub
  type endpoint

  val create : ids:Node_id.t list -> hub
  val endpoint : hub -> self:Node_id.t -> endpoint
  val send : endpoint -> dst:Node_id.t -> Frame.t -> unit
  val drain : endpoint -> Frame.t list
  val close : hub -> unit
  val note_round : endpoint -> int -> unit
  val injected : endpoint -> injected
  val fault_events : endpoint -> fault_event list
end

module Make (B : Transport.S) (C : CONFIG) = struct
  let name = B.name
  let active = not (Ubpa_faults.is_empty C.plan)

  type held_in = { hi_release : int; hi_frame : Frame.t }

  type endpoint = {
    e_base : B.endpoint;
    e_self : Node_id.t;
    e_send_rng : (Node_id.t * Rng.t) list;  (* per outgoing edge *)
    e_recv_rng : (Node_id.t * Rng.t) list;  (* per incoming edge *)
    mutable e_round : int;
    mutable e_in_held : held_in list;  (* delayed/duplicated arrivals, newest first *)
    e_inj : injected;
    mutable e_events : fault_event list;  (* newest first *)
  }

  type hub = { b_hub : B.hub; b_ids : Node_id.t list }

  let create ~ids = { b_hub = B.create ~ids; b_ids = Node_id.sorted ids }

  (* One splitmix64 stream per directed edge, keyed only by (seed, src,
     dst, direction): every edge's decisions are a pure function of its
     own frame sequence, so they are identical across transports and
     immune to scheduler interleaving — the per-edge FIFO fixes the
     order draws happen in. *)
  let edge_stream seed a b salt =
    let open Int64 in
    let h = add seed (mul (of_int (Node_id.to_int a)) 0x9E3779B97F4A7C15L) in
    let h = add h (mul (of_int (Node_id.to_int b)) 0xBF58476D1CE4E5B9L) in
    Rng.create (add h salt)

  let endpoint hub ~self =
    {
      e_base = B.endpoint hub.b_hub ~self;
      e_self = self;
      e_send_rng =
        (if active then
           List.map (fun p -> (p, edge_stream C.seed self p 0x94D049BB133111EBL)) hub.b_ids
         else []);
      e_recv_rng =
        (if active then
           List.map (fun p -> (p, edge_stream C.seed p self 0xD6E8FEB86659FD93L)) hub.b_ids
         else []);
      e_round = 0;
      e_in_held = [];
      e_inj = { inj_lost = 0; inj_dup = 0; inj_delayed = 0 };
      e_events = [];
    }

  let edge_rng edges id =
    match List.find_opt (fun (p, _) -> Node_id.equal p id) edges with
    | Some (_, rng) -> Some rng
    | None -> None

  let event ep ~round what = ep.e_events <- { fe_round = round; fe_what = what } :: ep.e_events

  (* Faults touch Data frames only. Done/Halt markers ride a reliable
     control plane: the liveness tracker is about *process* liveness,
     and a lossy wire must not make a running peer look dead. *)
  let send ep ~dst (f : Frame.t) =
    if (not active) || f.Frame.kind <> Frame.Data then B.send ep.e_base ~dst f
    else
      match edge_rng ep.e_send_rng dst with
      | None -> B.send ep.e_base ~dst f
      | Some rng ->
          let round = f.Frame.round in
          let p_omit = Ubpa_faults.send_omission_prob C.plan ~node:ep.e_self ~round in
          let p_loss = Ubpa_faults.loss C.plan in
          if p_omit > 0. && Rng.float rng 1.0 < p_omit then begin
            ep.e_inj.inj_lost <- ep.e_inj.inj_lost + 1;
            event ep ~round
              (Printf.sprintf "fault: send-omission drop #%d->#%d"
                 (Node_id.to_int ep.e_self) (Node_id.to_int dst))
          end
          else if p_loss > 0. && Rng.float rng 1.0 < p_loss then begin
            ep.e_inj.inj_lost <- ep.e_inj.inj_lost + 1;
            event ep ~round
              (Printf.sprintf "fault: loss #%d->#%d" (Node_id.to_int ep.e_self)
                 (Node_id.to_int dst))
          end
          else B.send ep.e_base ~dst f

  let note_round ep r = ep.e_round <- r

  let drain ep =
    let raw = B.drain ep.e_base in
    if not active then raw
    else begin
      let out = ref [] in
      List.iter
        (fun (f : Frame.t) ->
          if f.Frame.kind <> Frame.Data then out := f :: !out
          else
            match edge_rng ep.e_recv_rng f.Frame.src with
            | None -> out := f :: !out
            | Some rng -> (
                (* Windows are evaluated at the delivery round (send
                   round + 1), matching the simulator's convention. *)
                let at = f.Frame.round + 1 in
                let p_recv = Ubpa_faults.recv_omission_prob C.plan ~node:ep.e_self ~round:at in
                if p_recv > 0. && Rng.float rng 1.0 < p_recv then begin
                  ep.e_inj.inj_lost <- ep.e_inj.inj_lost + 1;
                  event ep ~round:at
                    (Printf.sprintf "fault: recv-omission drop from #%d"
                       (Node_id.to_int f.Frame.src))
                end
                else begin
                  (match Ubpa_faults.delay_spec C.plan ~node:ep.e_self ~round:at with
                  | Some (dp, dr) when Rng.float rng 1.0 < dp ->
                      ep.e_inj.inj_delayed <- ep.e_inj.inj_delayed + 1;
                      event ep ~round:at
                        (Printf.sprintf "fault: delay +%dr from #%d (sent r%d)" dr
                           (Node_id.to_int f.Frame.src) f.Frame.round);
                      ep.e_in_held <-
                        { hi_release = f.Frame.round + dr; hi_frame = f } :: ep.e_in_held
                  | _ -> out := f :: !out);
                  (* Duplication is receiver-side: a copy is held one
                     round and surfaces in the next — where the
                     synchronizer deterministically counts it late and
                     drops it, the runtime analogue of the simulator's
                     per-round dedup absorbing a same-round copy. *)
                  let p_dup = Ubpa_faults.dup C.plan in
                  if p_dup > 0. && Rng.float rng 1.0 < p_dup then begin
                    ep.e_inj.inj_dup <- ep.e_inj.inj_dup + 1;
                    event ep ~round:at
                      (Printf.sprintf "fault: duplicate (next round) from #%d"
                         (Node_id.to_int f.Frame.src));
                    ep.e_in_held <-
                      { hi_release = f.Frame.round + 1; hi_frame = f } :: ep.e_in_held
                  end
                end))
        raw;
      let due, keep = List.partition (fun h -> h.hi_release <= ep.e_round) ep.e_in_held in
      ep.e_in_held <- keep;
      (* Matured held frames surface first (they are older), then this
         drain's arrivals in order. A released frame's send round is
         behind the receiver's current round by construction, so the
         synchronizer deterministically counts it late. *)
      List.map (fun h -> h.hi_frame) (List.rev due) @ List.rev !out
    end

  let close hub = B.close hub.b_hub
  let injected ep = ep.e_inj
  let fault_events ep = List.rev ep.e_events
end
