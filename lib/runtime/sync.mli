(** Wall-clock round synchronizer.

    Two cyclic barriers per round keep every node process in lockstep
    with the synchronous model: barrier A opens the round (all nodes
    agree on who is still live before anyone steps), barrier B closes
    the send phase (every frame for this round is in flight before
    anyone drains). With [round_ms > 0] each node additionally sleeps
    out the remainder of the configured round duration after barrier B,
    giving rounds a real wall-clock length; [round_ms = 0] runs flat
    out. *)

type t

val create : parties:int -> round_ms:float -> t

val round_start : t -> float
(** Block until all parties arrive; returns this node's round start
    time (for {!sends_done}'s pacing). *)

val sends_done : t -> started:float -> unit
(** Block until all parties finished sending, then sleep until
    [round_ms] has elapsed since [started]. *)
