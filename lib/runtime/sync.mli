(** Deadline-based round synchronizer.

    One instance per node, no shared state, no barriers. After stepping
    round [r] and emitting its Data frames, a node broadcasts a control
    marker to every peer (itself included): [Done r] normally, [Halt r]
    as a farewell when it halts. Per-edge FIFO order means a peer's
    [Done r] arrives after all of its round-[r] data, so:

    - {b fast path} — once every awaited peer's marker for round [r] is
      in, the round is complete: all its data has been drained, and the
      node advances immediately. On a fault-free run this reproduces the
      lockstep schedule exactly, at marker speed, regardless of
      [round_ms].
    - {b deadline path} — with [round_ms > 0], a node whose deadline
      fires advances anyway: whatever data arrived is the inbox, the
      missing peers are reported, and frames that show up afterwards are
      {e late} — counted and dropped, never delivered to the protocol.
      With [round_ms <= 0] there is no deadline (wait forever), which is
      only sound when every peer keeps marking — plans that crash nodes
      require a real timeout, and {!Runner.run} enforces that.
    - {b liveness tracking} — a peer that misses [dead_after]
      consecutive deadlines is presumed dead: removed from the wait set
      for good, so one crashed process costs [dead_after] timeouts, not
      a timeout per remaining round.

    The synchronizer is pure state + an injected clock ([~now]), so the
    deadline/liveness logic unit-tests on any OCaml, including the 4.14
    leg where the runtime itself cannot run. *)

open Ubpa_util

type t

(** What a completed wait returns. *)
type verdict = {
  v_inbox : Frame.t list;
      (** Data frames sent in this round, in arrival order. *)
  v_missing : Node_id.t list;
      (** Peers whose marker had not arrived when the deadline fired
          (empty on the fast path), ascending. *)
  v_newly_dead : Node_id.t list;
      (** Peers that just crossed [dead_after] silent rounds, ascending. *)
}

(** A synchronizer-level fault observation (late frame, presumed-dead
    peer), in the [fault:] trace vocabulary. *)
type event = { e_round : int; e_peer : Node_id.t; e_what : string }

val create : peers:Node_id.t list -> round_ms:float -> dead_after:int -> t
(** [peers] is the full population including self. Raises
    [Invalid_argument] if [dead_after < 1]. *)

val begin_round : t -> round:int -> now:float -> unit
(** Enter the wait for [round]: sets the deadline ([now + round_ms]) and
    re-classifies any buffered future frames under the new round. *)

val offer : t -> Frame.t list -> unit
(** Feed drained frames: markers advance per-peer progress, on-time data
    joins the inbox, data for a later round is buffered, data for an
    earlier round is counted late and dropped. *)

val ready : t -> now:float -> verdict option
(** [None] while still waiting. [Some] when every awaited peer has
    marked this round (fast path) or the deadline has fired. *)

val waiting_on : t -> Node_id.t list
(** Peers currently blocking the round: not presumed dead, not halted
    before this round, marker not yet seen. Ascending. *)

val late_frames : t -> int
(** Total late frames counted so far (monotone). *)

val data_frames : t -> int
val data_bytes : t -> int
(** Data frames (and their on-wire bytes, headers included) that reached
    a terminal classification — delivered on time or counted late.
    Frames still buffered for a future round are not counted yet: the
    count is a pure function of the delivered schedule, not of how much
    a node happened to drain before exiting. *)

val dead_peers : t -> Node_id.t list
(** Peers presumed dead so far, ascending. *)

val events : t -> event list
(** Late-frame and presumed-dead observations, oldest first. *)
