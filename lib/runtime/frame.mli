(** Length-prefixed wire framing for the networked runtime.

    One frame carries one protocol message — or one control marker —
    from one sender for one round:

    {v
      [u32 BE body length][i64 BE sender id][u32 BE send round][u8 kind][body]
    v}

    The body of a {!Data} frame is the protocol message serialized with
    [Marshal] — protocol messages are pure structural data (the
    [Protocol.Structural] contract), so marshalling round-trips them
    exactly. Control frames ({!Done}, {!Halt}) carry an empty body; they
    are the deadline synchronizer's round markers and never reach the
    protocol. Semantic wire-size accounting stays with
    [Protocol.encoded_bits] (the simulator's and oracle's common
    currency); frame bytes are reported separately as transport
    overhead. *)

(** Frame kinds. [Data] is a protocol message; [Done r] marks "sender
    finished emitting for round [r]"; [Halt r] is a farewell — the
    sender halted after round [r] and will not mark again. *)
type kind = Data | Done | Halt

type t = {
  src : Ubpa_util.Node_id.t;  (** Sender. *)
  round : int;  (** Round the sender emitted this in (delivered at +1). *)
  kind : kind;
  body : string;  (** Marshalled protocol message; [""] for control. *)
}

val encode : t -> string
(** Header + body, ready to write to a stream or mailbox.
    @raise Invalid_argument if the body exceeds {!max_body_bytes}. *)

val header_bytes : int
(** Fixed per-frame overhead (17 bytes). *)

val max_body_bytes : int
(** Hard upper bound on a frame body (1 MiB). Both decoders reject a
    length prefix above it — a hostile or corrupt header must surface
    as a clean [Error], never as an unbounded allocation or a decoder
    buffering forever toward a body that will never arrive. *)

val decode : string -> (t, string) result
(** Inverse of {!encode} on exactly one whole frame. [Error] on a
    short buffer, negative/oversized length prefix, unknown kind byte,
    or trailing bytes. *)

(** {2 Incremental decoding}

    Stream transports read whatever the kernel gives them; the decoder
    buffers partial data and yields each frame as soon as it is whole. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> (t list, string) result
(** [feed d buf len] appends [buf[0..len)] and returns every frame
    completed by it, in stream order. [Error] means the stream is
    corrupt (hostile header — see {!max_body_bytes} — or unknown kind);
    the decoder must be discarded with its connection. *)

val pending_bytes : decoder -> int
(** Buffered bytes not yet forming a whole frame (0 on clean EOF). *)

val marshal_message : 'm -> string
val unmarshal_message : string -> 'm
(** Body (de)serialization used by both transports. The ['m] is
    unavoidably untyped at this seam — [Runner.Make] only ever pairs
    [marshal_message] and [unmarshal_message] at the same protocol
    message type. *)
