(** Length-prefixed wire framing for the networked runtime.

    One frame carries one protocol message from one sender for one round:

    {v
      [u32 BE body length][i64 BE sender id][u32 BE send round][body]
    v}

    The body is the protocol message serialized with [Marshal] — protocol
    messages are pure structural data (the [Protocol.Structural] contract),
    so marshalling round-trips them exactly. Semantic wire-size accounting
    stays with [Protocol.encoded_bits] (the simulator's and oracle's
    common currency); frame bytes are reported separately as transport
    overhead. *)

type t = {
  src : Ubpa_util.Node_id.t;  (** Sender. *)
  round : int;  (** Round the sender emitted this in (delivered at +1). *)
  body : string;  (** Marshalled protocol message. *)
}

val encode : t -> string
(** Header + body, ready to write to a stream or mailbox. *)

val header_bytes : int
(** Fixed per-frame overhead (16 bytes). *)

val decode : string -> t
(** Inverse of {!encode} on exactly one whole frame.
    @raise Failure on a short or corrupt buffer. *)

(** {2 Incremental decoding}

    Stream transports read whatever the kernel gives them; the decoder
    buffers partial data and yields each frame as soon as it is whole. *)

type decoder

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> t list
(** [feed d buf len] appends [buf[0..len)] and returns every frame
    completed by it, in stream order. *)

val pending_bytes : decoder -> int
(** Buffered bytes not yet forming a whole frame (0 on clean EOF). *)

val marshal_message : 'm -> string
val unmarshal_message : string -> 'm
(** Body (de)serialization used by both transports. The ['m] is
    unavoidably untyped at this seam — [Runner.Make] only ever pairs
    [marshal_message] and [unmarshal_message] at the same protocol
    message type. *)
