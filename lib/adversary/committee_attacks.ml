open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  module P = Committee_agreement.Make (V)

  let split_half targets =
    let half = List.length targets / 2 in
    List.partition_map
      (fun (i, t) -> if i < half then Either.Left t else Either.Right t)
      (List.mapi (fun i t -> (i, t)) targets)
    |> fun (a, b) -> (a, b)

  let report_equivocate v0 v1 =
    Strategy.v ~name:"committee-report-equivocate" (fun _rng _self view ->
        let lo, hi = split_half view.Strategy.correct in
        List.map (fun t -> (Envelope.To t, P.Report v0)) lo
        @ List.map (fun t -> (Envelope.To t, P.Report v1)) hi)

  let report_flood v =
    Strategy.v ~name:"committee-report-flood" (fun _rng _self _view ->
        [ (Envelope.Broadcast, P.Report v) ])

  let inner_split v0 v1 =
    Strategy.v ~name:"committee-inner-split" (fun _rng _self view ->
        if view.Strategy.round = 1 then
          [ (Envelope.Broadcast, P.Inner P.Core.Init) ]
        else
          let lo, hi = split_half view.Strategy.correct in
          List.map (fun t -> (Envelope.To t, P.Inner (P.Core.Input v0))) lo
          @ List.map (fun t -> (Envelope.To t, P.Inner (P.Core.Input v1))) hi)

  let silent_member = Strategy.silent
end
