(** Targeted attacks on the Byzantine renaming algorithm (appendix). *)

open Ubpa_sim
open Unknown_ba

val partial_announcer : fraction:float -> Renaming.message Strategy.t
(** Announces [init] to only the first [fraction] of the correct nodes, so
    its identifier percolates into the sets [S] of different nodes in
    different rounds — the staggered insertions Lemma "rn-s" must survive
    (the stability window and termination votes must still produce a
    common set). *)

val vote_rusher : Renaming.message Strategy.t
(** Floods premature [terminate(k)] votes for many [k] values every round;
    with only [f < n_v/3] colluders the votes must never reach the relay
    threshold, let alone the termination quorum. *)

val churning_candidate : Renaming.message Strategy.t
(** Announces normally, then echoes a fresh ghost identifier every round —
    trying to keep some [S] unstable forever. Ghost echoes from [f]
    colluders never cross [n_v/3], so stability must still be reached. *)
