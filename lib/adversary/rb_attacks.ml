open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  module Rb = Reliable_broadcast.Make (V)

  let take_fraction fraction l =
    let k =
      int_of_float (ceil (fraction *. float_of_int (List.length l)))
    in
    List.filteri (fun i _ -> i < k) l

  let equivocating_sender m1 m2 =
    Strategy.v ~name:"rb-equivocating-sender" (fun _rng _self view ->
        if view.Strategy.round <> 1 then []
        else
          let correct = view.Strategy.correct in
          let half = List.length correct / 2 in
          List.mapi
            (fun i t ->
              let m = if i < half then m1 else m2 in
              (Envelope.To t, Rb.inject (Rb.Payload m)))
            correct)

  let partial_sender m ~fraction =
    Strategy.v ~name:"rb-partial-sender" (fun _rng _self view ->
        if view.Strategy.round <> 1 then []
        else
          List.map
            (fun t -> (Envelope.To t, Rb.inject (Rb.Payload m)))
            (take_fraction fraction view.Strategy.correct))

  let forging_echoer m ~claimed =
    Strategy.v ~name:"rb-forging-echoer" (fun _rng _self view ->
        if view.Strategy.round = 1 then
          (* Stay counted in n_v. *)
          [ (Envelope.Broadcast, Rb.inject Rb.Present) ]
        else [ (Envelope.Broadcast, Rb.inject (Rb.Echo (m, claimed))) ])

  let echo_amplifier =
    Strategy.v ~name:"rb-echo-amplifier" (fun _rng _self view ->
        let echoes =
          List.filter_map
            (fun (_, msg) ->
              match Rb.view msg with
              | Rb.Echo (m, s) -> Some (Rb.inject (Rb.Echo (m, s)))
              | _ -> None)
            view.Strategy.inbox
        in
        if view.Strategy.round = 1 then
          [ (Envelope.Broadcast, Rb.inject Rb.Present) ]
        else List.map (fun e -> (Envelope.Broadcast, e)) echoes)
end
