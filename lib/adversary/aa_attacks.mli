(** Targeted attacks on approximate agreement (Algorithm 4). The classic
    adversary pulls different correct nodes toward opposite extremes;
    Lemma "aaWithin" says the [⌊n_v/3⌋] trimming absorbs it. *)

open Ubpa_sim
open Unknown_ba

val pull_apart : low:float -> high:float -> Approx_agreement.message Strategy.t
(** Sends [low] to the first half of the correct nodes and [high] to the
    rest, every round. *)

val outlier : float -> Approx_agreement.message Strategy.t
(** Broadcasts one absurd value to everyone, every round. *)

val tracker : offset:float -> Approx_agreement.message Strategy.t
(** Observes the correct nodes' current estimates (rushing view) and sends
    each node the maximum estimate plus [offset] — an adaptive drag toward
    the top of the range. *)
