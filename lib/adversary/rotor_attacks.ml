open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  module R = Rotor.Make (V)

  let take_fraction fraction l =
    let k = int_of_float (ceil (fraction *. float_of_int (List.length l))) in
    List.filteri (fun i _ -> i < k) l

  let staggered_announcer ~fraction =
    Strategy.v ~name:"rotor-staggered-announcer" (fun _rng _self view ->
        if view.Strategy.round = 1 then
          List.map
            (fun t -> (Envelope.To t, R.inject R.Init))
            (take_fraction fraction view.Strategy.correct)
        else [])

  let two_faced_coordinator a b =
    Strategy.v ~name:"rotor-two-faced-coordinator" (fun _rng _self view ->
        if view.Strategy.round = 1 then
          [ (Envelope.Broadcast, R.inject R.Init) ]
        else
          let correct = view.Strategy.correct in
          let half = List.length correct / 2 in
          List.mapi
            (fun i t ->
              let x = if i < half then a else b in
              (Envelope.To t, R.inject (R.Opinion x)))
            correct)

  let ghost_candidate_pusher ghosts =
    Strategy.v ~name:"rotor-ghost-pusher" (fun _rng _self view ->
        if view.Strategy.round = 1 then
          [ (Envelope.Broadcast, R.inject R.Init) ]
        else
          List.map
            (fun g -> (Envelope.Broadcast, R.inject (R.Echo g)))
            ghosts)
end
