(** Targeted attacks on the rotor-coordinator (Algorithm 2). The lever the
    adversary actually has is {e staggered self-announcement}: announcing
    [init] to only part of the network makes its candidacy percolate
    through relayed echoes over several rounds, maximizing non-silent
    rounds and stretching termination — the situation Lemma "rc-gdrnd"
    reasons about. *)

open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) : sig
  module R : module type of Rotor.Make (V)

  val staggered_announcer : fraction:float -> R.message Strategy.t
  (** Round 1: sends [init] to only the first [fraction] of the correct
      nodes; never echoes anything afterwards. *)

  val two_faced_coordinator : V.t -> V.t -> R.message Strategy.t
  (** Announces normally; every round sends opinion [a] to one half of the
      correct nodes and [b] to the other — when this node's turn as
      coordinator comes, correct nodes accept conflicting opinions (the
      rotor only guarantees a {e correct} common coordinator eventually). *)

  val ghost_candidate_pusher : Ubpa_util.Node_id.t list -> R.message Strategy.t
  (** Echoes non-existent identifiers every round; with only [f < n_v/3]
      colluders those ghosts must never enter any correct [C_v]. *)
end
