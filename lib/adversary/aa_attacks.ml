open Ubpa_sim
open Unknown_ba
open Approx_agreement

let pull_apart ~low ~high =
  Strategy.v ~name:"aa-pull-apart" (fun _rng _self view ->
      let correct = view.Strategy.correct in
      let half = List.length correct / 2 in
      List.mapi
        (fun i t ->
          let v = if i < half then low else high in
          (Envelope.To t, Estimate v))
        correct)

let outlier v =
  Strategy.v ~name:"aa-outlier" (fun _rng _self _view ->
      [ (Envelope.Broadcast, Estimate v) ])

let tracker ~offset =
  Strategy.v ~name:"aa-tracker" (fun _rng _self view ->
      let estimates =
        List.filter_map
          (fun (_, _, Estimate v) -> Some v)
          view.Strategy.rushing
      in
      match estimates with
      | [] -> []
      | _ ->
          let top = List.fold_left Float.max neg_infinity estimates in
          [ (Envelope.Broadcast, Estimate (top +. offset)) ])
