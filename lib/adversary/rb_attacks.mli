(** Targeted attacks on the reliable-broadcast algorithm. Each strategy
    attacks one proof obligation of Algorithm 1. *)

open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) : sig
  module Rb : module type of Reliable_broadcast.Make (V)

  val equivocating_sender : V.t -> V.t -> Rb.message Strategy.t
  (** A Byzantine {e designated sender}: round 1 sends payload [m1] to the
      first half of the correct nodes and [m2] to the rest. Attacks the
      relay property — correct nodes must still converge (accept both or
      neither, within one round of each other). *)

  val partial_sender : V.t -> fraction:float -> Rb.message Strategy.t
  (** Sends the payload to only [fraction] of the correct nodes in round 1
      and stays silent after, staggering echo counts across nodes. *)

  val forging_echoer : V.t -> claimed:Ubpa_util.Node_id.t -> Rb.message Strategy.t
  (** Every round echoes [(m, claimed)] for a sender that never broadcast —
      attacks unforgeability ([f < n_v/3] echoes must never be enough). *)

  val echo_amplifier : Rb.message Strategy.t
  (** Re-echoes every echo it observes, trying to push borderline payloads
      over thresholds at some nodes only. *)
end
