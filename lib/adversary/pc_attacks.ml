open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  module Pc = Parallel_consensus_core.Make (V)

  (* The input slot is the round in which correct nodes broadcast
     [Inst (_, Input _)] traffic; observed from the rushing view. *)
  let correct_sending_inputs view =
    List.exists
      (fun (_, _, payload) ->
        match payload with Pc.Inst (_, Pc.Input _) -> true | _ -> false)
      view.Strategy.rushing

  let ghost_instance ~id v =
    Strategy.v ~name:"pc-ghost-instance" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, Pc.Init) ]
        else if view.Strategy.round = 3 then
          (* Phase 1, input slot: plant the ghost. *)
          [ (Envelope.Broadcast, Pc.Inst (id, Pc.Input (Some v))) ]
        else [])

  let late_instance ~id v ~after_round =
    Strategy.v ~name:"pc-late-instance" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, Pc.Init) ]
        else if view.Strategy.round > after_round then
          [ (Envelope.Broadcast, Pc.Inst (id, Pc.Input (Some v))) ]
        else [])

  let marker_flood ~id =
    Strategy.v ~name:"pc-marker-flood" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, Pc.Init) ]
        else
          [
            (Envelope.Broadcast, Pc.Inst (id, Pc.Nopreference));
            (Envelope.Broadcast, Pc.Inst (id, Pc.Nostrongpreference));
          ])

  let split_instance ~id v0 v1 =
    Strategy.v ~name:"pc-split-instance" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, Pc.Init) ]
        else if correct_sending_inputs view then
          let correct = view.Strategy.correct in
          let half = List.length correct / 2 in
          List.mapi
            (fun i t ->
              let v = if i < half then v0 else v1 in
              (Envelope.To t, Pc.Inst (id, Pc.Input (Some v))))
            correct
        else [])
end
