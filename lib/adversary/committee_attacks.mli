(** Attacks on the committee-sampling agreement ({!Committee_agreement}).

    The overlay's exposed surface is the spreading phase: observers
    accept [Report]s only from their own seed-derived attestor sample,
    decide on strict majority, and fall back to plurality after a grace
    window. These strategies probe exactly that surface — forged and
    equivocating reports from nodes that may or may not have been
    sampled into the committee, and classic inner-consensus equivocation
    for the rounds where the adversary {e was} sampled. A strategy's
    bite therefore depends on the seed: safety must hold regardless, and
    the tests pin seeds for both placements. *)

open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) : sig
  module P : module type of Committee_agreement.Make (V)

  val report_equivocate : V.t -> V.t -> P.message Strategy.t
  (** Unicasts [Report v0] to the first half of the correct nodes and
      [Report v1] to the rest, every round — observers that did not
      sample this node must ignore it; observers that did must outvote
      it with honest attestor majority. *)

  val report_flood : V.t -> P.message Strategy.t
  (** Broadcasts a fixed forged [Report] every round — the cheap global
      attack the attestor filter is there to blunt. *)

  val inner_split : V.t -> V.t -> P.message Strategy.t
  (** Announces itself in the committee's init round, then feeds
      [Input v0] to one half and [Input v1] to the other — the
      split-world attack of the dense consensus, fired through the
      sparse overlay. *)

  val silent_member : P.message Strategy.t
  (** Never speaks — when sampled into the committee this exercises the
      core's missing-member substitution; when sampled as an attestor it
      starves observers toward the plurality fallback. *)
end
