(** Targeted attacks on parallel consensus (Algorithm 5). *)

open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) : sig
  module Pc : module type of Parallel_consensus_core.Make (V)

  val ghost_instance : id:int -> V.t -> Pc.message Strategy.t
  (** Injects [id:input(v)] traffic for an instance no correct node holds.
      Theorem "parCon": the correct nodes must discover the instance,
      converge on ⊥ and output nothing for [id]. *)

  val late_instance : id:int -> V.t -> after_round:int -> Pc.message Strategy.t
  (** Injects the instance only after [after_round] — past the first phase
      the messages must simply be discarded. *)

  val marker_flood : id:int -> Pc.message Strategy.t
  (** Floods [nopreference]/[nostrongpreference] markers for a real
      instance in every round — markers must suppress substitution without
      ever counting toward a value's tally. *)

  val split_instance : id:int -> V.t -> V.t -> Pc.message Strategy.t
  (** Equivocates within one instance: sends [input(v0)] to half the
      correct nodes and [input(v1)] to the rest in the input slot. *)
end
