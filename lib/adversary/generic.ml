open Ubpa_util
open Ubpa_sim

let silent = Strategy.silent

(* Broadcasts of correct node [who] in the current (rushed) round. *)
let broadcasts_of view who =
  List.filter_map
    (fun (src, dst, payload) ->
      match dst with
      | Envelope.Broadcast when Node_id.equal src who -> Some payload
      | _ -> None)
    view.Strategy.rushing

let crash_after k =
  Strategy.v ~name:(Printf.sprintf "crash-after-%d" k) (fun _rng _self view ->
      if view.Strategy.round > k then []
      else
        match view.Strategy.correct with
        | [] -> []
        | who :: _ ->
            List.map
              (fun p -> (Envelope.Broadcast, p))
              (broadcasts_of view who))

let replay ~delay =
  Strategy.stateful
    ~name:(Printf.sprintf "replay-%d" delay)
    ~init:(fun _rng _self -> Hashtbl.create 16)
    ~act:(fun stash view ->
      Hashtbl.replace stash view.Strategy.round
        (List.map snd view.Strategy.inbox);
      match Hashtbl.find_opt stash (view.Strategy.round - delay) with
      | None -> []
      | Some payloads ->
          List.map (fun p -> (Envelope.Broadcast, p)) payloads)

let mirror =
  {
    Strategy.name = "mirror";
    make =
      (fun _rng _self view ->
      match view.Strategy.correct with
      | [] -> []
      | who :: _ ->
          List.map (fun p -> (Envelope.Broadcast, p)) (broadcasts_of view who));
  }

let split_mirror =
  {
    Strategy.name = "split-mirror";
    make =
      (fun _rng _self view ->
      match view.Strategy.correct with
      | [] | [ _ ] -> []
      | correct ->
          let a = List.hd correct in
          let b = List.nth correct (List.length correct - 1) in
          let half = List.length correct / 2 in
          let left = List.filteri (fun i _ -> i < half) correct in
          let right = List.filteri (fun i _ -> i >= half) correct in
          let to_targets targets payloads =
            List.concat_map
              (fun t -> List.map (fun p -> (Envelope.To t, p)) payloads)
              targets
          in
          to_targets left (broadcasts_of view a)
          @ to_targets right (broadcasts_of view b));
  }

let spam =
  {
    Strategy.name = "spam";
    make =
      (fun _rng _self view ->
      let observed =
        List.map snd view.Strategy.inbox
        @ List.map (fun (_, _, p) -> p) view.Strategy.rushing
      in
      List.map (fun p -> (Envelope.Broadcast, p)) observed);
  }

let random_mix =
  {
    Strategy.name = "random-mix";
    make =
      (fun rng _self view ->
      let observed =
        List.map snd view.Strategy.inbox
        @ List.map (fun (_, _, p) -> p) view.Strategy.rushing
      in
      match (observed, view.Strategy.correct) with
      | [], _ | _, [] -> []
      | _ ->
          List.filter_map
            (fun p ->
              if Rng.bool rng then
                Some (Envelope.To (Rng.pick rng view.Strategy.correct), p)
              else None)
            observed);
  }
