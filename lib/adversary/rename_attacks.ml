open Ubpa_util
open Ubpa_sim
open Unknown_ba

let take_fraction fraction l =
  let k = int_of_float (ceil (fraction *. float_of_int (List.length l))) in
  List.filteri (fun i _ -> i < k) l

let partial_announcer ~fraction =
  Strategy.v ~name:"rename-partial-announcer" (fun _rng _self view ->
      if view.Strategy.round = 1 then
        List.map
          (fun t -> (Envelope.To t, Renaming.Init))
          (take_fraction fraction view.Strategy.correct)
      else [])

let vote_rusher =
  Strategy.v ~name:"rename-vote-rusher" (fun _rng _self view ->
      if view.Strategy.round = 1 then [ (Envelope.Broadcast, Renaming.Init) ]
      else
        List.init 4 (fun i ->
            (Envelope.Broadcast, Renaming.Terminate (view.Strategy.round + i - 2))))

let churning_candidate =
  Strategy.v ~name:"rename-churning-candidate" (fun _rng self view ->
      if view.Strategy.round = 1 then [ (Envelope.Broadcast, Renaming.Init) ]
      else
        let ghost =
          Node_id.of_int ((Node_id.to_int self * 1000) + view.Strategy.round)
        in
        [ (Envelope.Broadcast, Renaming.Echo ghost) ])
