open Ubpa_sim
open Unknown_ba
module B = Binary_consensus

let observed_slot view =
  let kinds =
    List.filter_map
      (fun (_, _, payload) ->
        match payload with
        | B.Input _ -> Some `Input
        | B.Support _ -> Some `Support
        | B.Opinion _ -> Some `Opinion
        | B.Init | B.Cand_echo _ -> None)
      view.Strategy.rushing
  in
  match kinds with k :: _ -> Some k | [] -> None

let split_world =
  Strategy.v ~name:"bc-split-world" (fun _rng _self view ->
      if view.Strategy.round = 1 then [ (Envelope.Broadcast, B.Init) ]
      else
        let correct = view.Strategy.correct in
        let half = List.length correct / 2 in
        let split make =
          List.mapi
            (fun i t -> (Envelope.To t, make (i >= half)))
            correct
        in
        match observed_slot view with
        | Some `Input -> split (fun v -> B.Input v)
        | Some `Support -> split (fun v -> B.Support v)
        | Some `Opinion | None -> split (fun v -> B.Opinion v))

let stubborn v =
  Strategy.v ~name:"bc-stubborn" (fun _rng _self view ->
      if view.Strategy.round = 1 then [ (Envelope.Broadcast, B.Init) ]
      else
        match observed_slot view with
        | Some `Input -> [ (Envelope.Broadcast, B.Input v) ]
        | Some `Support -> [ (Envelope.Broadcast, B.Support v) ]
        | Some `Opinion | None -> [ (Envelope.Broadcast, B.Opinion v) ])

let silent_member =
  Strategy.v ~name:"bc-silent-member" (fun _rng _self view ->
      if view.Strategy.round = 1 then [ (Envelope.Broadcast, B.Init) ] else [])
