(** Targeted attacks on the dynamic total-ordering algorithm. *)

open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) : sig
  module T : module type of Total_order.Make (V)

  val ack_liar : offset:int -> T.message Strategy.t
  (** Answers every [present] announcement with a wrong [(ack, r+offset)] —
      trying to desynchronize joiners' logical clocks. Joiners take the
      plurality of acks, so [f] liars lose against [g] honest answers. *)

  val event_forger : V.t -> T.message Strategy.t
  (** Broadcasts events tagged with many different round numbers each
      round. Correct nodes fold them into the matching group's inputs
      (events are keyed by the {e sender}, which is authenticated), so the
      worst case is a legitimate-looking byzantine event — never a split
      chain. *)

  val phantom_present : T.message Strategy.t
  (** Sends [present] to only half of the correct nodes, making membership
      views diverge: half include the byzantine node in their group
      snapshots, half do not. Group parallel consensus must still agree. *)

  val group_splitter : T.message Strategy.t
  (** Equivocates {e inside} the youngest live parallel-consensus group —
      replaying an observed event input to half the nodes and ⊥ to the
      rest. Pair-set agreement inside the group must hold, or the chains
      would fork. *)

  val absent_flipper : T.message Strategy.t
  (** Alternates [present] / [absent] announcements every few rounds,
      churning every correct node's [S]. *)
end
