open Ubpa_util
open Ubpa_sim

let switch_at ~round before after =
  Strategy.v
    ~name:
      (Printf.sprintf "switch-at-%d(%s,%s)" round (Strategy.name before)
         (Strategy.name after))
    (fun rng self ->
      let before = Strategy.instantiate before (Rng.split rng) self in
      let after = Strategy.instantiate after (Rng.split rng) self in
      fun view ->
        if view.Strategy.round < round then before view else after view)

let merge strategies =
  Strategy.v
    ~name:
      (Printf.sprintf "merge(%s)"
         (String.concat "," (List.map Strategy.name strategies)))
    (fun rng self ->
      let acts =
        List.map
          (fun s -> Strategy.instantiate s (Rng.split rng) self)
          strategies
      in
      fun view -> List.concat_map (fun act -> act view) acts)

let only_rounds pred inner =
  Strategy.v
    ~name:(Printf.sprintf "gated(%s)" (Strategy.name inner))
    (fun rng self ->
      let act = Strategy.instantiate inner (Rng.split rng) self in
      fun view -> if pred view.Strategy.round then act view else [])

let target_subset ~fraction inner =
  Strategy.v
    ~name:(Printf.sprintf "subset-%.2f(%s)" fraction (Strategy.name inner))
    (fun rng self ->
      let act = Strategy.instantiate inner (Rng.split rng) self in
      fun view ->
        let correct = view.Strategy.correct in
        let k =
          int_of_float (ceil (fraction *. float_of_int (List.length correct)))
        in
        let targets = List.filteri (fun i _ -> i < k) correct in
        List.concat_map
          (fun (dest, payload) ->
            match dest with
            | Envelope.Broadcast ->
                List.map (fun t -> (Envelope.To t, payload)) targets
            | Envelope.To t ->
                if List.exists (Node_id.equal t) targets then
                  [ (Envelope.To t, payload) ]
                else [])
          (act view))

let with_probability p inner =
  Strategy.v
    ~name:(Printf.sprintf "p=%.2f(%s)" p (Strategy.name inner))
    (fun rng self ->
      let coin = Rng.split rng in
      let act = Strategy.instantiate inner (Rng.split rng) self in
      fun view -> if Rng.float coin 1.0 < p then act view else [])
