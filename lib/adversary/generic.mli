(** Protocol-agnostic Byzantine strategies.

    These work for any message type because they only replay, remix, or
    redirect traffic the adversary observed (its inbox, plus — since the
    engine runs a rushing adversary — the messages correct nodes are sending
    in the current round). *)

open Ubpa_sim

val silent : 'm Strategy.t
(** Joins (so it is counted in [n_v]) but never speaks. Re-exported from
    {!Ubpa_sim.Strategy}. *)

val crash_after : int -> 'm Strategy.t
(** Mirrors a correct node's traffic for [k] rounds, then goes silent —
    a crash fault. *)

val replay : delay:int -> 'm Strategy.t
(** Re-broadcasts every payload it received, [delay] rounds late: stale
    messages from past rounds. *)

val mirror : 'm Strategy.t
(** Copies the broadcasts of the first correct node each round — a
    plausible-looking but valueless participant. *)

val split_mirror : 'm Strategy.t
(** Equivocation kit: copies the round's broadcasts of one correct node to
    the first half of the correct nodes and those of a different correct
    node to the second half — correct nodes receive conflicting but
    individually well-formed traffic. *)

val spam : 'm Strategy.t
(** Re-broadcasts everything observed this round (inbox and rushed correct
    traffic), flooding tallies with duplicates that the model forces the
    engine to drop. *)

val random_mix : 'm Strategy.t
(** Each round, sends a random subset of observed payloads to random
    individual targets — unstructured noise. *)
