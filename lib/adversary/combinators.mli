(** Strategy combinators: build compound Byzantine behaviours from simple
    ones. All combinators preserve determinism (per-node state is created
    at instantiation). *)

open Ubpa_sim

val switch_at : round:int -> 'm Strategy.t -> 'm Strategy.t -> 'm Strategy.t
(** [switch_at ~round before after] behaves like [before] strictly before
    [round] and like [after] from [round] on — e.g. announce normally, turn
    hostile later. Both sub-strategies are instantiated upfront so their
    internal state evolves even while the other is active. *)

val merge : 'm Strategy.t list -> 'm Strategy.t
(** Send the union of what every sub-strategy would send each round. *)

val only_rounds : (int -> bool) -> 'm Strategy.t -> 'm Strategy.t
(** Gate a strategy: act only in rounds satisfying the predicate,
    stay silent otherwise. *)

val target_subset : fraction:float -> 'm Strategy.t -> 'm Strategy.t
(** Re-route every send of the inner strategy (including broadcasts) to
    point-to-point deliveries covering only the first [fraction] of the
    correct nodes — turns any attack into a partial-visibility attack. *)

val with_probability : float -> 'm Strategy.t -> 'm Strategy.t
(** Flip a (seeded, per-node) coin each round; act only on heads. *)
