open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  module T = Total_order.Make (V)

  let ack_liar ~offset =
    Strategy.v ~name:"to-ack-liar" (fun _rng _self view ->
        (* Answer presents observed in the rushing view (the announcement
           arrives at correct nodes this round; honest acks go out now). *)
        let announcers =
          List.filter_map
            (fun (src, _, payload) ->
              match payload with T.Present -> Some src | _ -> None)
            view.Strategy.rushing
        in
        List.map
          (fun u -> (Envelope.To u, T.Ack (view.Strategy.round + offset)))
          announcers)

  let event_forger v =
    Strategy.v ~name:"to-event-forger" (fun _rng _self view ->
        let r = view.Strategy.round in
        [
          (Envelope.Broadcast, T.Event (v, r));
          (Envelope.Broadcast, T.Event (v, r - 1));
          (Envelope.Broadcast, T.Event (v, r + 3));
        ])

  let phantom_present =
    Strategy.v ~name:"to-phantom-present" (fun _rng _self view ->
        if view.Strategy.round = 1 then
          let correct = view.Strategy.correct in
          let half = List.length correct / 2 in
          List.filteri (fun i _ -> i < half) correct
          |> List.map (fun t -> (Envelope.To t, T.Present))
        else [])

  let group_splitter =
    Strategy.v ~name:"to-group-splitter" (fun _rng _self view ->
        (* Find the youngest parallel-consensus group the correct nodes
           are speaking in and equivocate inside it: an observed event
           value to one half of the nodes, ⊥ to the other. Chain forks
           would follow if the group's pair-set agreement broke. *)
        let groups =
          List.filter_map
            (fun (_, _, payload) ->
              match payload with
              | T.Group (g, T.Pc.Inst (id, T.Pc.Input (Some v))) ->
                  Some (g, id, v)
              | _ -> None)
            view.Strategy.rushing
        in
        match groups with
        | [] -> []
        | _ ->
            let g, id, v =
              List.fold_left
                (fun ((g, _, _) as acc) ((g', _, _) as c) ->
                  if g' > g then c else acc)
                (List.hd groups) groups
            in
            let correct = view.Strategy.correct in
            let half = List.length correct / 2 in
            List.mapi
              (fun i t ->
                let body =
                  if i < half then T.Pc.Input (Some v) else T.Pc.Input None
                in
                (Envelope.To t, T.Group (g, T.Pc.Inst (id, body))))
              correct)

  let absent_flipper =
    Strategy.v ~name:"to-absent-flipper" (fun _rng _self view ->
        match view.Strategy.round mod 6 with
        | 1 -> [ (Envelope.Broadcast, T.Present) ]
        | 4 -> [ (Envelope.Broadcast, T.Absent) ]
        | _ -> [])
end
