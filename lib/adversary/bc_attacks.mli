(** Targeted attacks on the rotor-driven binary consensus. *)

open Ubpa_sim
open Unknown_ba

val split_world : Binary_consensus.message Strategy.t
(** Sends [input]/[support]/[opinion] value [false] to one half of the
    correct nodes and [true] to the other, in whatever slot the correct
    nodes are currently speaking. *)

val stubborn : bool -> Binary_consensus.message Strategy.t
(** Pushes one value everywhere, every slot. *)

val silent_member : Binary_consensus.message Strategy.t
(** Announces itself during initialization and never speaks again. *)
