(** Targeted attacks on the early-terminating consensus (Algorithm 3).

    The canonical attack keeps the correct nodes split for as long as
    possible: the colluders observe (via the rushing view) which message
    kind the correct nodes are exchanging and send value [v0] to one half
    of them and [v1] to the other, at every protocol position including the
    coordinator-opinion slot. Theorem "earlyCon" says a correct coordinator
    phase still forces agreement within [O(f)] rounds. *)

open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) : sig
  module C : module type of Consensus_core.Make (V)

  val split_world : V.t -> V.t -> C.message Strategy.t
  (** Phase-position-aware equivocation as described above. *)

  val stubborn : V.t -> C.message Strategy.t
  (** Pushes one fixed value in every slot to every node — a biased but
      consistent participant (validity must still hold: if all correct
      inputs agree, the output is that input). *)

  val half_stubborn : V.t -> C.message Strategy.t
  (** Feeds one value to only the first half of the correct nodes and stays
      silent toward the rest — quorums form at some nodes but not others,
      exercising the relay lemmas (rn-g1/rn-g2). *)

  val silent_member : C.message Strategy.t
  (** Announces itself during initialization (so it inflates every [n_v])
      and never speaks again — exercises the substitution rule. *)
end
