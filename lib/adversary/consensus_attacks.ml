open Ubpa_sim
open Unknown_ba

module Make (V : Value.S) = struct
  module C = Consensus_core.Make (V)

  (* What slot are the correct nodes speaking in this round? Observed from
     the rushing view so the attack stays aligned even when the consensus
     machine is embedded with a different round offset. *)
  let observed_slot view =
    let kinds =
      List.filter_map
        (fun (_, _, payload) ->
          match payload with
          | C.Input _ -> Some `Input
          | C.Prefer _ -> Some `Prefer
          | C.Strongprefer _ -> Some `Strong
          | C.Opinion _ -> Some `Opinion
          | C.Init | C.Cand_echo _ -> None)
        view.Strategy.rushing
    in
    match kinds with k :: _ -> Some k | [] -> None

  let split_send ~half ~correct ~v0 ~v1 make =
    List.mapi
      (fun i t ->
        let v = if i < half then v0 else v1 in
        (Envelope.To t, make v))
      correct

  let split_world v0 v1 =
    Strategy.v ~name:"consensus-split-world" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, C.Init) ]
        else
          let correct = view.Strategy.correct in
          let half = List.length correct / 2 in
          let split make = split_send ~half ~correct ~v0 ~v1 make in
          match observed_slot view with
          | Some `Input -> split (fun v -> C.Input v)
          | Some `Prefer -> split (fun v -> C.Prefer v)
          | Some `Strong -> split (fun v -> C.Strongprefer v)
          | Some `Opinion | None ->
              (* Rotor slot (or silence): equivocate as a would-be
                 coordinator. *)
              split (fun v -> C.Opinion v))

  let stubborn v =
    Strategy.v ~name:"consensus-stubborn" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, C.Init) ]
        else
          match observed_slot view with
          | Some `Input -> [ (Envelope.Broadcast, C.Input v) ]
          | Some `Prefer -> [ (Envelope.Broadcast, C.Prefer v) ]
          | Some `Strong -> [ (Envelope.Broadcast, C.Strongprefer v) ]
          | Some `Opinion | None -> [ (Envelope.Broadcast, C.Opinion v) ])

  let half_stubborn v =
    Strategy.v ~name:"consensus-half-stubborn" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, C.Init) ]
        else
          let correct = view.Strategy.correct in
          let half = (List.length correct + 1) / 2 in
          let targets = List.filteri (fun i _ -> i < half) correct in
          let send make = List.map (fun t -> (Envelope.To t, make v)) targets in
          match observed_slot view with
          | Some `Input -> send (fun v -> C.Input v)
          | Some `Prefer -> send (fun v -> C.Prefer v)
          | Some `Strong -> send (fun v -> C.Strongprefer v)
          | Some `Opinion | None -> send (fun v -> C.Opinion v))

  let silent_member =
    Strategy.v ~name:"consensus-silent-member" (fun _rng _self view ->
        if view.Strategy.round = 1 then [ (Envelope.Broadcast, C.Init) ]
        else [])
end
