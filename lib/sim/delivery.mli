(** Per-round message delivery cores.

    Both cores implement the same delivery contract over one round's worth
    of envelopes:

    - only nodes in [present] receive anything;
    - a recipient sees at most one copy of each [(sender, payload)] pair,
      where payload equality is the protocol's [equal_message];
    - each inbox is sorted by sender id, with messages from the same sender
      kept in send order;
    - the returned count is the number of (deduplicated) deliveries, i.e.
      the total length of all inboxes.

    {!route_reference} is the seed engine's list-scan implementation, kept
    verbatim as an executable specification: the differential test replays
    randomized traffic through both cores, and the PERF experiment races
    them head to head. {!route_indexed} is engine v2 — single pass over the
    envelopes with hash-keyed dedup, plus sender-level suppression of
    repeated broadcast envelopes before fan-out. *)

open Ubpa_util

type impl = Indexed  (** Engine v2 (default). *) | Naive  (** Seed engine. *)

type 'm on_deliver = recipient:Node_id.t -> src:Node_id.t -> 'm -> unit
(** Delivery-accounting hook. Every core invokes it at its accept point —
    immediately after a push survives the dedup and is counted — so a run
    observed through [on_deliver] sees exactly the deliveries the returned
    count reports, in the core's acceptance order. The network layer uses
    it to feed {!Ubpa_obs.Wire} with per-message sizes. *)

val route_indexed :
  ?on_deliver:'m on_deliver ->
  interner:Interner.t option ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  (Node_id.t * 'm) list Node_id.Map.t * int
(** Single-pass bucketed delivery. Per recipient, a hash table keyed by
    sender holds the payloads already delivered from that sender, so each
    push costs a lookup plus a scan of that sender's (few) distinct
    payloads instead of a scan of the whole inbox. A repeated broadcast
    envelope — same sender, [equal] payload — is dropped before fan-out:
    since the present set is fixed for the round, it could not deliver
    anything the first copy did not. [envelopes] must be in send order.

    When [interner] is given (the per-network id table), recipients resolve
    to dense indices and broadcast fan-out walks an array instead of a hash
    table — same results, cheaper per push. Present ids are interned on
    entry; unknown recipients are dropped exactly like absent ones. *)

val route_reference :
  ?on_deliver:'m on_deliver ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  (Node_id.t * 'm) list Node_id.Map.t * int
(** The seed engine's core: list inboxes, linear duplicate scan per push.
    Quadratic in per-recipient traffic; bit-for-bit the same result as
    {!route_indexed} — including the [on_deliver] multiset, which is what
    the CX1 cross-core wire-identity claim checks. *)

val route :
  ?on_deliver:'m on_deliver ->
  interner:Interner.t option ->
  impl:impl ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  (Node_id.t * 'm) list Node_id.Map.t * int
(** Dispatch on [impl]. [interner] only affects the [Indexed] core; the
    reference core stays the untouched executable specification. *)
