(** Per-round message delivery cores.

    Every core implements the same delivery contract over one round's worth
    of envelopes:

    - only nodes in [present] receive anything;
    - a recipient sees at most one copy of each [(sender, payload)] pair,
      where payload equality is the protocol's [equal_message];
    - each inbox is sorted by sender id, with messages from the same sender
      kept in send order;
    - the returned count is the number of (deduplicated) deliveries, i.e.
      the total length of all inboxes.

    {!route_reference} is the seed engine's list-scan implementation, kept
    verbatim as an executable specification: the differential test replays
    randomized traffic through the cores, and the PERF experiment races
    them head to head. {!route_indexed} is engine v2 — single pass over the
    envelopes with hash-keyed dedup, plus sender-level suppression of
    repeated broadcast envelopes before fan-out. {!route_arena} is engine
    v3 — a grow-only flat-arena state reused across rounds, broadcasts kept
    as single logical records expanded lazily at read time, built for the
    n ≈ 10,000 SCALE sweeps. *)

open Ubpa_util

type impl =
  | Indexed  (** Engine v2 (default). *)
  | Naive  (** Seed engine. *)
  | Arena  (** Engine v3: arena state, lazy broadcast expansion. *)

type 'm on_deliver = recipient:Node_id.t -> src:Node_id.t -> 'm -> unit
(** Delivery-accounting hook. Every core invokes it at its accept point —
    immediately after a push survives the dedup and is counted — so a run
    observed through [on_deliver] sees exactly the deliveries the returned
    count reports, in the core's acceptance order. The network layer uses
    it to feed {!Ubpa_obs.Wire} with per-message sizes. *)

val route_indexed :
  ?on_deliver:'m on_deliver ->
  interner:Interner.t option ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  (Node_id.t * 'm) list Node_id.Map.t * int
(** Single-pass bucketed delivery. Per recipient, a hash table keyed by
    sender holds the payloads already delivered from that sender, so each
    push costs a lookup plus a scan of that sender's (few) distinct
    payloads instead of a scan of the whole inbox. A repeated broadcast
    envelope — same sender, [equal] payload — is dropped before fan-out:
    since the present set is fixed for the round, it could not deliver
    anything the first copy did not. [envelopes] must be in send order.

    When [interner] is given (the per-network id table), recipients resolve
    to dense indices and broadcast fan-out walks an array instead of a hash
    table — same results, cheaper per push. Present ids are interned on
    entry; unknown recipients are dropped exactly like absent ones. *)

val route_reference :
  ?on_deliver:'m on_deliver ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  (Node_id.t * 'm) list Node_id.Map.t * int
(** The seed engine's core: list inboxes, linear duplicate scan per push.
    Quadratic in per-recipient traffic; bit-for-bit the same result as
    {!route_indexed} — including the [on_deliver] multiset, which is what
    the CX1 cross-core wire-identity claim checks. *)

type 'm arena_state
(** Engine v3 round state: interner, presence stamps, flat record arenas
    and CSR inbox slices, all grow-only and reused across rounds. Create
    one per network and feed it every round through {!route_arena}; a
    steady-state round allocates only the inbox lists actually read. *)

val arena_create : ?hint:int -> unit -> 'm arena_state
(** Fresh arena state. [hint] sizes the interner and backing arrays to
    the expected participant count. *)

type 'm view
(** One routed round, borrowed from an {!arena_state}: valid until the
    state's next {!route_arena} call. Inboxes are expanded on demand from
    broadcast records and unicast slices — reading is the only per-inbox
    allocation. *)

val route_arena :
  ?on_deliver:'m on_deliver ->
  state:'m arena_state ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  'm view
(** Engine v3 entry point. Scans [envelopes] once (dedup decisions and
    [on_deliver] fire here, at the accept points), seals unicasts into
    per-recipient CSR slices, and returns the round's read view. A
    broadcast is accepted as one record and charged [|present|] minus its
    exclusions to the delivered count without fanning out; when
    [on_deliver] is present it is still invoked once per (non-excluded)
    present recipient so wire accounting sees the fan-out multiset. *)

val view_delivered : 'm view -> int
(** Total deliveries this round — same number the other cores return. *)

val view_inbox : 'm view -> Node_id.t -> (Node_id.t * 'm) list
(** [view_inbox v id] expands [id]'s inbox: a merge of the broadcast
    records (minus exclusions) with [id]'s unicast slice, sorted by
    (sender id, send order) exactly like the other cores' inboxes.
    Empty for absent or unknown recipients. *)

val view_present : 'm view -> Node_id.t list
(** The round's present set in ascending id order. *)

val view_to_map : 'm view -> (Node_id.t * 'm) list Node_id.Map.t
(** Materialise every present inbox — the bridge back to the map-shaped
    contract, used by the generic {!route} dispatch and the differential
    tests. Costs the full fan-out the lazy representation avoids. *)

val route :
  ?on_deliver:'m on_deliver ->
  interner:Interner.t option ->
  impl:impl ->
  equal:('m -> 'm -> bool) ->
  present:Node_id.Set.t ->
  envelopes:'m Envelope.t list ->
  unit ->
  (Node_id.t * 'm) list Node_id.Map.t * int
(** Dispatch on [impl]. [interner] only affects the [Indexed] core; the
    reference core stays the untouched executable specification. [Arena]
    routes through an ephemeral {!arena_state} and materialises the map —
    use {!route_arena} directly to get the cross-round reuse. *)
