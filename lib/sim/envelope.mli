(** Message envelopes.

    The simulator authenticates the [src] field: a Byzantine node cannot put
    another node's identifier there (matching the model: "a Byzantine node
    cannot forge its identifier when communicating directly"). Whatever lies
    a Byzantine node tells live in the [payload]. *)

open Ubpa_util

type dest =
  | Broadcast  (** Deliver to every node present next round, sender included. *)
  | To of Node_id.t  (** Point-to-point. *)

type 'm t = { src : Node_id.t; dst : dest; payload : 'm }

val broadcast : src:Node_id.t -> 'm -> 'm t
val send : src:Node_id.t -> dst:Node_id.t -> 'm -> 'm t

val pp :
  'm Fmt.t -> Format.formatter -> 'm t -> unit
