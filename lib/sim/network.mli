(** Synchronous round-based network engine.

    The engine realizes the paper's model: computation proceeds in rounds;
    messages sent in round [r] are delivered in round [r+1]; broadcasts reach
    every node present at delivery time (sender included); senders are
    authenticated; per-round duplicate (sender, payload) pairs are dropped.

    Membership may change between rounds ({!join_correct},
    {!join_byzantine}, {!remove_byzantine}, and protocol-driven halts), which
    is how the dynamic-network experiments of the paper are driven. A purely
    static run is simply one where everybody joins before round 1.

    Byzantine nodes are driven by {!Strategy.t} values. By default the
    adversary is {e rushing}: in each round it sees the messages correct
    nodes send in that very round before choosing its own. *)

open Ubpa_util

module Make (P : Protocol.S) : sig
  type t

  type node_report = {
    id : Node_id.t;
    joined_at : int;
    first_output_round : int option;
        (** Round of the first [Deliver]/[Stop]. *)
    last_output : P.output option;
    halted_at : int option;
    down_since : int option;
        (** [Some r] while an injected crash/leave from the fault plan is
            in effect (since round [r]); [None] for healthy nodes. *)
  }

  val create :
    ?rushing:bool ->
    ?delivery:Delivery.impl ->
    ?wire_accounting:bool ->
    ?seed:int64 ->
    ?faults:Ubpa_faults.plan ->
    ?trace:Trace.t ->
    ?classify:(P.message -> string) ->
    ?stimulus:(round:int -> Node_id.t -> P.stimulus list) ->
    correct:(Node_id.t * P.input) list ->
    byzantine:(Node_id.t * P.message Strategy.t) list ->
    unit ->
    t
  (** All listed nodes join in round 1. Identifiers must be distinct across
      both lists. [delivery] selects the delivery core (default
      {!Delivery.Indexed}; {!Delivery.Naive} keeps the seed engine's
      list-scan core — same results, slower — for differential testing and
      head-to-head benchmarks; {!Delivery.Arena} is the engine-v3 arena
      core, which feeds the round loop through lazy inbox slices instead
      of a per-round map when the fault plan is empty).
      [wire_accounting] (default [true]) controls the per-delivery
      {!Ubpa_obs.Wire} hook; switching it off leaves {!wire} empty and
      lets the arena core keep broadcasts O(1) instead of fanning out for
      the observer — the n ≈ 10,000 SCALE sweeps run with it off.
      [faults] (default {!Ubpa_faults.empty})
      injects benign faults into correct nodes at the delivery boundary:
      crashed/left nodes are absent from the present set (they neither
      step nor receive, state kept for recovery), send/receive omission
      and per-envelope loss/duplication drop or re-deliver envelopes, and
      every injected fault is recorded as a {!Trace.Fault} event. The
      plan's random decisions come from a dedicated stream, so an empty
      plan is byte-identical to no plan and a non-empty plan makes the
      same decisions on both delivery cores. *)

  (** {2 Dynamic membership} *)

  val join_correct : t -> Node_id.t -> P.input -> unit
  (** The node participates from the next executed round on. *)

  val join_byzantine : t -> Node_id.t -> P.message Strategy.t -> unit

  val remove_byzantine : t -> Node_id.t -> unit
  (** The adversary withdraws a faulty node before the next round. *)

  (** {2 Execution} *)

  val step_round : t -> unit
  (** Execute one synchronous round. *)

  val run :
    ?max_rounds:int ->
    t ->
    [ `All_halted | `Max_rounds_reached of Node_id.t list | `No_correct_nodes ]
  (** Step until every correct node halted. [max_rounds] (default 10_000)
      bounds non-terminating protocols; hitting it reports {e who}
      stalled — the correct nodes that never halted, ascending. Nodes the
      fault plan keeps down forever (crash-stop, leave without rejoin)
      are written off by the halt check but still listed as stalled. A
      network with no correct node — present or queued to join — returns
      [`No_correct_nodes] without stepping: "all correct nodes halted"
      would be vacuous, and since correct nodes are never removed and
      [run] admits no new joins, the condition cannot change mid-run. *)

  val run_until :
    ?max_rounds:int ->
    t ->
    stop:(t -> bool) ->
    [ `Stopped | `Max_rounds_reached of Node_id.t list ]
  (** Step until [stop] holds (checked after each round). *)

  val stalled : t -> Node_id.t list
  (** Correct nodes that have not halted, ascending — the
      [`Max_rounds_reached] payload. *)

  val has_correct : t -> bool
  (** A correct node is present or queued to join. *)

  (** {2 Observation} *)

  val round : t -> int
  (** Rounds executed so far (0 before the first {!step_round}). *)

  val metrics : t -> Metrics.t

  val wire : t -> Ubpa_obs.Wire.t
  (** Wire-level accounting: per-node / per-round / per-kind message and
      bit counters, recorded at the delivery cores' accept points
      (post-dedup, pre receive-omission — see {!Ubpa_obs.Wire}). Message
      sizes come from the protocol's [encoded_bits]; kinds from
      [classify] (["msg"] when none was given). *)

  val trace : t -> Trace.t

  val correct_ids : t -> Node_id.t list
  (** Every correct node that ever joined, ascending. *)

  val active_correct : t -> Node_id.t list
  (** Correct nodes present and not halted, ascending. *)

  val byzantine_ids : t -> Node_id.t list

  val report : t -> Node_id.t -> node_report
  (** Raises [Not_found] for unknown ids. *)

  val reports : t -> node_report list
  (** One report per correct node, ascending id. *)

  val outputs : t -> (Node_id.t * P.output) list
  (** Correct nodes that produced an output, with their latest output. *)

  val states : t -> (Node_id.t * P.state) list
  (** Every correct node's current protocol state, ascending id. Exposed
      for differential tests (engine vs the bounded checker's synthetic
      delivery) that compare terminal states byte for byte. *)

  val all_halted : t -> bool
end
