(** Byzantine node behaviour.

    A strategy is instantiated once per Byzantine node. Each round the node
    observes a {!view} — its inbox, the whole membership (Byzantine nodes are
    omniscient about who exists), and, when the engine runs in rushing mode,
    the messages the correct nodes send in the {e current} round — and emits
    arbitrary envelopes. The engine still stamps the true [src], so identity
    cannot be forged; everything else is fair game. *)

open Ubpa_util

type 'm view = {
  round : int;
  self : Node_id.t;
  correct : Node_id.t list;  (** Correct nodes currently present. *)
  byzantine : Node_id.t list;  (** Fellow Byzantine nodes (collusion). *)
  inbox : (Node_id.t * 'm) list;
  rushing : (Node_id.t * Envelope.dest * 'm) list;
      (** Messages correct nodes are sending this round ([] when the engine
          runs non-rushing). *)
  equal_message : 'm -> 'm -> bool;
      (** The protocol's message equality ({!Protocol.S.equal_message}),
          supplied by the engine so strategies that filter or dedup observed
          messages never fall back to polymorphic [=]. *)
}

type 'm t = {
  name : string;
  make : Rng.t -> Node_id.t -> 'm view -> (Envelope.dest * 'm) list;
}
(** A (named) strategy over protocol messages ['m]. The type is concrete so
    that polymorphic strategies can be written as record literals (which
    generalize, unlike {!v} applications). *)

val v :
  name:string ->
  (Rng.t -> Node_id.t -> 'm view -> (Envelope.dest * 'm) list) ->
  'm t
(** [v ~name make] wraps a behaviour. [make] receives a private generator
    and the node's own identifier when the node is created; per-node mutable
    state lives in the closure. *)

val stateful :
  name:string ->
  init:(Rng.t -> Node_id.t -> 's) ->
  act:('s -> 'm view -> (Envelope.dest * 'm) list) ->
  'm t
(** Like {!v} with explicit per-node state. *)

val name : 'm t -> string

val instantiate :
  'm t -> Rng.t -> Node_id.t -> 'm view -> (Envelope.dest * 'm) list
(** Used by the engine: bind a strategy to a concrete node. *)

val silent : 'm t
(** Never sends anything — the node is invisible unless others count it. *)
