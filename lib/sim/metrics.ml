open Ubpa_util

type t = {
  mutable rounds : int;
  mutable sends_correct : int;
  mutable sends_byzantine : int;
  mutable delivered : int;
  mutable wire_msgs : int;
  mutable wire_bits : int;
  mutable bits_per_round : (int * int) list; (* reversed *)
  mutable per_round : (int * int) list; (* reversed *)
  mutable round_times : (int * float) list; (* reversed, ms *)
  mutable elapsed_ms : float;
  by_kind : (string, int) Hashtbl.t;
}

let create () =
  {
    rounds = 0;
    sends_correct = 0;
    sends_byzantine = 0;
    delivered = 0;
    wire_msgs = 0;
    wire_bits = 0;
    bits_per_round = [];
    per_round = [];
    round_times = [];
    elapsed_ms = 0.;
    by_kind = Hashtbl.create 8;
  }

let rounds t = t.rounds
let sends_correct t = t.sends_correct
let sends_byzantine t = t.sends_byzantine
let delivered t = t.delivered
let wire_msgs t = t.wire_msgs
let wire_bits t = t.wire_bits
let delivered_per_round t = List.rev t.per_round
let wire_bits_per_round t = List.rev t.bits_per_round
let elapsed_ms t = t.elapsed_ms
let round_times_ms t = List.rev t.round_times
let tick_round t = t.rounds <- t.rounds + 1

let record_send t ~byzantine =
  if byzantine then t.sends_byzantine <- t.sends_byzantine + 1
  else t.sends_correct <- t.sends_correct + 1

let record_kind t kind =
  Hashtbl.replace t.by_kind kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_kind kind))

let kinds t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind []
  |> List.sort compare

let record_delivered t ~round n =
  t.delivered <- t.delivered + n;
  match t.per_round with
  | (r, c) :: rest when r = round -> t.per_round <- (r, c + n) :: rest
  | _ -> t.per_round <- (round, n) :: t.per_round

let record_wire t ~round ~bits =
  t.wire_msgs <- t.wire_msgs + 1;
  t.wire_bits <- t.wire_bits + bits;
  match t.bits_per_round with
  | (r, acc) :: rest when r = round ->
      t.bits_per_round <- (r, acc + bits) :: rest
  | _ -> t.bits_per_round <- (round, bits) :: t.bits_per_round

let record_round_time t ~round ms =
  t.elapsed_ms <- t.elapsed_ms +. ms;
  match t.round_times with
  | (r, acc) :: rest when r = round -> t.round_times <- (r, acc +. ms) :: rest
  | _ -> t.round_times <- (round, ms) :: t.round_times

let pp ppf t =
  Format.fprintf ppf "rounds=%d sends(correct=%d byz=%d) delivered=%d"
    t.rounds t.sends_correct t.sends_byzantine t.delivered

let to_json t : Json.t =
  `Assoc
    [
      ("rounds", `Int t.rounds);
      ("sends_correct", `Int t.sends_correct);
      ("sends_byzantine", `Int t.sends_byzantine);
      ("delivered", `Int t.delivered);
      ("wire_msgs", `Int t.wire_msgs);
      ("wire_bits", `Int t.wire_bits);
      ("elapsed_ms", `Float t.elapsed_ms);
      ( "delivered_per_round",
        `List
          (List.map
             (fun (r, c) -> `List [ `Int r; `Int c ])
             (delivered_per_round t)) );
      ( "wire_bits_per_round",
        `List
          (List.map
             (fun (r, b) -> `List [ `Int r; `Int b ])
             (wire_bits_per_round t)) );
      ( "round_times_ms",
        `List
          (List.map
             (fun (r, ms) -> `List [ `Int r; `Float ms ])
             (round_times_ms t)) );
      ("kinds", `Assoc (List.map (fun (k, v) -> (k, `Int v)) (kinds t)));
    ]

let of_json (j : Json.t) =
  let ( let* ) r f = Result.bind r f in
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Metrics.of_json: missing int %S" name)
  in
  let float_field name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "Metrics.of_json: missing float %S" name)
  in
  let pair_list name of_snd =
    match Option.bind (Json.member name j) Json.to_list with
    | None -> Error (Printf.sprintf "Metrics.of_json: missing list %S" name)
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_list item with
            | Some [ r; v ] -> (
                match (Json.to_int r, of_snd v) with
                | Some r, Some v -> Ok ((r, v) :: acc)
                | _ ->
                    Error (Printf.sprintf "Metrics.of_json: bad %S row" name))
            | _ -> Error (Printf.sprintf "Metrics.of_json: bad %S row" name))
          (Ok []) items
        |> Result.map List.rev
  in
  let* rounds = int_field "rounds" in
  let* sends_correct = int_field "sends_correct" in
  let* sends_byzantine = int_field "sends_byzantine" in
  let* delivered = int_field "delivered" in
  (* Wire accounting postdates the v1 schema; absent fields mean an old
     recording with no wire data, not a malformed document. *)
  let opt_int name =
    Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int)
  in
  let wire_msgs = opt_int "wire_msgs" in
  let wire_bits = opt_int "wire_bits" in
  let* bits_per_round =
    match Json.member "wire_bits_per_round" j with
    | None -> Ok []
    | Some _ -> pair_list "wire_bits_per_round" Json.to_int
  in
  let* elapsed_ms = float_field "elapsed_ms" in
  let* per_round = pair_list "delivered_per_round" Json.to_int in
  let* round_times = pair_list "round_times_ms" Json.to_float in
  let by_kind = Hashtbl.create 8 in
  (match Json.member "kinds" j with
  | Some (`Assoc fields) ->
      List.iter
        (fun (k, v) ->
          match Json.to_int v with
          | Some c -> Hashtbl.replace by_kind k c
          | None -> ())
        fields
  | _ -> ());
  Ok
    {
      rounds;
      sends_correct;
      sends_byzantine;
      delivered;
      wire_msgs;
      wire_bits;
      bits_per_round = List.rev bits_per_round;
      per_round = List.rev per_round;
      round_times = List.rev round_times;
      elapsed_ms;
      by_kind;
    }
