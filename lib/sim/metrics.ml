type t = {
  mutable rounds : int;
  mutable sends_correct : int;
  mutable sends_byzantine : int;
  mutable delivered : int;
  mutable per_round : (int * int) list; (* reversed *)
  by_kind : (string, int) Hashtbl.t;
}

let create () =
  {
    rounds = 0;
    sends_correct = 0;
    sends_byzantine = 0;
    delivered = 0;
    per_round = [];
    by_kind = Hashtbl.create 8;
  }

let rounds t = t.rounds
let sends_correct t = t.sends_correct
let sends_byzantine t = t.sends_byzantine
let delivered t = t.delivered
let delivered_per_round t = List.rev t.per_round
let tick_round t = t.rounds <- t.rounds + 1

let record_send t ~byzantine =
  if byzantine then t.sends_byzantine <- t.sends_byzantine + 1
  else t.sends_correct <- t.sends_correct + 1

let record_kind t kind =
  Hashtbl.replace t.by_kind kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_kind kind))

let kinds t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_kind []
  |> List.sort compare

let record_delivered t ~round n =
  t.delivered <- t.delivered + n;
  match t.per_round with
  | (r, c) :: rest when r = round -> t.per_round <- (r, c + n) :: rest
  | _ -> t.per_round <- (round, n) :: t.per_round

let pp ppf t =
  Format.fprintf ppf "rounds=%d sends(correct=%d byz=%d) delivered=%d"
    t.rounds t.sends_correct t.sends_byzantine t.delivered
