open Ubpa_util

type cell = {
  mutable joined : bool;
  mutable sends : int;
  mutable byz_sends : int;
  mutable output : bool;
  mutable halted : bool;
  mutable faults : int;
}

type t = {
  max_round : int;
  cells : (Node_id.t * (int, cell) Hashtbl.t) list;  (** ascending node id *)
}

let fresh_cell () =
  {
    joined = false;
    sends = 0;
    byz_sends = 0;
    output = false;
    halted = false;
    faults = 0;
  }

let of_events events =
  let by_node : (Node_id.t, (int, cell) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let max_round = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      match e.node with
      | None -> ()
      | Some node ->
          if e.round > !max_round then max_round := e.round;
          let rows =
            match Hashtbl.find_opt by_node node with
            | Some rows -> rows
            | None ->
                let rows = Hashtbl.create 16 in
                Hashtbl.add by_node node rows;
                rows
          in
          let cell =
            match Hashtbl.find_opt rows e.round with
            | Some c -> c
            | None ->
                let c = fresh_cell () in
                Hashtbl.add rows e.round c;
                c
          in
          (match e.kind with
          | Trace.Join -> cell.joined <- true
          | Trace.Send -> cell.sends <- cell.sends + 1
          | Trace.Byz_send -> cell.byz_sends <- cell.byz_sends + 1
          | Trace.Output -> cell.output <- true
          | Trace.Halt -> cell.halted <- true
          | Trace.Fault -> cell.faults <- cell.faults + 1
          | Trace.Leave | Trace.Engine -> ()))
    events;
  let cells =
    Hashtbl.fold (fun node rows acc -> (node, rows) :: acc) by_node []
    |> List.sort (fun (a, _) (b, _) -> Node_id.compare a b)
  in
  { max_round = !max_round; cells }

let of_trace trace = of_events (Trace.events trace)

let rounds t = t.max_round
let nodes t = List.map fst t.cells

let render_cell cell =
  match cell with
  | None -> "."
  | Some c ->
      let marks =
        (if c.joined then "J" else "")
        ^ (if c.sends > 0 then Printf.sprintf "+%d" c.sends else "")
        ^ (if c.byz_sends > 0 then Printf.sprintf "!%d" c.byz_sends else "")
        ^ (if c.faults > 0 then
             if c.faults = 1 then "x" else Printf.sprintf "x%d" c.faults
           else "")
        ^ (if c.halted then "D" else if c.output then "o" else "")
      in
      if marks = "" then "." else marks

let to_string ?(max_rounds = 40) ?(stalled = []) ?wire t =
  let footer =
    (match wire with
    | None -> ""
    | Some (msgs, bits) ->
        Printf.sprintf "wire: %d msgs, %d bits (%.1f KiB)\n" msgs bits
          (float_of_int bits /. 8192.))
    ^
    if stalled = [] then ""
    else
      Fmt.str "stalled (never halted): %a\n"
        (Fmt.list ~sep:Fmt.sp Node_id.pp)
        stalled
  in
  if t.cells = [] then "(empty timeline)\n" ^ footer
  else begin
    let shown = min t.max_round max_rounds in
    let truncated = t.max_round > shown in
    let header =
      "node"
      :: (List.init shown (fun i -> Printf.sprintf "r%03d" (i + 1))
         @ if truncated then [ "..." ] else [])
    in
    let rows =
      List.map
        (fun (node, cells) ->
          Fmt.str "%a" Node_id.pp node
          :: (List.init shown (fun i -> render_cell (Hashtbl.find_opt cells (i + 1)))
             @ if truncated then [ "..." ] else []))
        t.cells
    in
    let all = header :: rows in
    let ncols = List.length header in
    let widths = Array.make ncols 0 in
    List.iter
      (List.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)))
      all;
    let buf = Buffer.create 1024 in
    List.iter
      (fun row ->
        List.iteri
          (fun i s ->
            Buffer.add_string buf s;
            if i < ncols - 1 then
              Buffer.add_string buf
                (String.make (widths.(i) - String.length s + 2) ' '))
          row;
        Buffer.add_char buf '\n')
      all;
    Buffer.contents buf ^ footer
  end

let pp ppf t = Format.pp_print_string ppf (to_string t)
