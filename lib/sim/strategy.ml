open Ubpa_util

type 'm view = {
  round : int;
  self : Node_id.t;
  correct : Node_id.t list;
  byzantine : Node_id.t list;
  inbox : (Node_id.t * 'm) list;
  rushing : (Node_id.t * Envelope.dest * 'm) list;
  equal_message : 'm -> 'm -> bool;
}

type 'm t = {
  name : string;
  make : Rng.t -> Node_id.t -> 'm view -> (Envelope.dest * 'm) list;
}

let v ~name make = { name; make }

let stateful ~name ~init ~act =
  let make rng self =
    let state = init rng self in
    fun view -> act state view
  in
  { name; make }

let name t = t.name
let instantiate t rng self = t.make rng self
let silent = { name = "silent"; make = (fun _ _ _ -> []) }
