open Ubpa_util

module Make (P : Protocol.S) = struct
  type node_round = {
    nr_inbox : (Node_id.t * P.message) list;
    nr_sends : (Envelope.dest * P.message) list;
  }

  type schedule = {
    sc_nodes : (Node_id.t * P.input) list;
    sc_rounds : node_round Node_id.Map.t list;
  }

  type divergence = { d_round : int; d_node : Node_id.t option; d_what : string }

  type outcome = {
    ok : bool;
    divergence : divergence option;
    outputs : (Node_id.t * P.output) list;
    decide_rounds : (Node_id.t * int) list;
    halted : (Node_id.t * int) list;
    missing : (Node_id.t * int) list;
    rounds : int;
    wire : Ubpa_obs.Wire.t;
  }

  let eq_dest a b =
    match (a, b) with
    | Envelope.Broadcast, Envelope.Broadcast -> true
    | Envelope.To x, Envelope.To y -> Node_id.equal x y
    | _ -> false

  let eq_inbox a b =
    List.length a = List.length b
    && List.for_all2
         (fun (sa, ma) (sb, mb) -> Node_id.equal sa sb && P.equal_message ma mb)
         a b

  let eq_sends a b =
    List.length a = List.length b
    && List.for_all2
         (fun (da, ma) (db, mb) -> eq_dest da db && P.equal_message ma mb)
         a b

  type replay_node = {
    rn_id : Node_id.t;
    mutable rn_state : P.state;
    mutable rn_first_output : int option;
    mutable rn_last_output : P.output option;
    mutable rn_halted_at : int option;
    mutable rn_missing_since : int option;
        (* delivered mode: first round the schedule stopped recording
           this node — the oracle treats it as crashed from then on. *)
  }

  (* Is [recd] a subsequence of [routed]? The greedy scan is sound
     because both lists are post-dedup (entries unique per
     (sender, payload) within a round) and sender-sorted with per-sender
     emit order preserved — skipping a routed entry can never discard a
     match a later recorded entry would have needed. *)
  let rec sub_inbox recd routed =
    match (recd, routed) with
    | [], _ -> true
    | _ :: _, [] -> false
    | (sa, ma) :: ra, (sb, mb) :: rb ->
        if Node_id.equal sa sb && P.equal_message ma mb then sub_inbox ra rb
        else sub_inbox recd rb

  let replay ?(delivered = false) (sc : schedule) : outcome =
    let nodes =
      List.map
        (fun (id, input) ->
          {
            rn_id = id;
            rn_state = P.init ~self:id ~round:1 input;
            rn_first_output = None;
            rn_last_output = None;
            rn_halted_at = None;
            rn_missing_since = None;
          })
        (List.sort (fun (a, _) (b, _) -> Node_id.compare a b) sc.sc_nodes)
    in
    let intr = Interner.create () in
    let wire = Ubpa_obs.Wire.create () in
    let divergence = ref None in
    let diverge ~round ?node what =
      if !divergence = None then
        divergence := Some { d_round = round; d_node = node; d_what = what }
    in
    let pending = ref [] in
    let rounds_executed = ref 0 in
    let rec go round = function
      | [] -> ()
      | (recorded : node_round Node_id.Map.t) :: rest ->
          rounds_executed := round;
          let live =
            List.filter
              (fun n -> n.rn_halted_at = None && n.rn_missing_since = None)
              nodes
          in
          let recorded_ids =
            Node_id.Map.fold (fun id _ acc -> id :: acc) recorded []
            |> List.rev
          in
          (if delivered then begin
             (* Delivered mode: the recorded round may legitimately be a
                sub-population (crashed processes stop recording), but it
                must stay within what the oracle considers alive — a node
                stepping after the oracle saw it halt, or reappearing
                after it vanished, is a real divergence. *)
             List.iter
               (fun id ->
                 if
                   not (List.exists (fun n -> Node_id.equal n.rn_id id) live)
                 then
                   diverge ~round ~node:id
                     "delivered schedule steps a node the oracle considers \
                      halted or crashed")
               recorded_ids;
             List.iter
               (fun n ->
                 if not (Node_id.Map.mem n.rn_id recorded) then
                   n.rn_missing_since <- Some round)
               live
           end
           else if
             (* Exact mode: the recorded round must cover exactly the
                nodes the replay still considers present: a halt the
                runtime missed (or invented) shows up here, before any
                inbox comparison. *)
             not
               (List.length recorded_ids = List.length live
               && List.for_all2
                    (fun id n -> Node_id.equal id n.rn_id)
                    recorded_ids live)
           then
             diverge ~round
               (Printf.sprintf
                  "present set mismatch: runtime stepped %d nodes, oracle expects %d"
                  (List.length recorded_ids) (List.length live)));
          let stepping =
            if delivered then
              List.filter (fun n -> Node_id.Map.mem n.rn_id recorded) live
            else live
          in
          let present =
            Node_id.Set.of_list (List.map (fun n -> n.rn_id) stepping)
          in
          let on_deliver ~recipient ~src payload =
            (* Delivered mode records the wire from what the runtime
               actually handed its protocols (below), not from what
               lockstep routing would have delivered. *)
            if not delivered then
              Ubpa_obs.Wire.record wire ~round ~sender:src ~recipient
                ~kind:"msg" ~bits:(P.encoded_bits payload)
          in
          let inboxes, _delivered =
            Delivery.route ~on_deliver ~interner:(Some intr)
              ~impl:Delivery.Indexed ~equal:P.equal_message ~present
              ~envelopes:(List.rev !pending) ()
          in
          pending := [];
          List.iter
            (fun n ->
              let routed =
                match Node_id.Map.find_opt n.rn_id inboxes with
                | Some l -> l
                | None -> []
              in
              let nr = Node_id.Map.find_opt n.rn_id recorded in
              (match nr with
              | None -> ()
              | Some nr ->
                  if delivered then begin
                    (* Faults only ever remove deliveries (drops, holes,
                       late frames): the runtime's inbox must be a
                       sub-schedule of lockstep routing. An extra or
                       reordered message is a divergence. *)
                    if not (sub_inbox nr.nr_inbox routed) then
                      diverge ~round ~node:n.rn_id
                        (Printf.sprintf
                           "inbox not a sub-schedule: runtime delivered %d \
                            message(s), oracle routes %d"
                           (List.length nr.nr_inbox) (List.length routed));
                    List.iter
                      (fun (src, payload) ->
                        Ubpa_obs.Wire.record wire ~round ~sender:src
                          ~recipient:n.rn_id ~kind:"msg"
                          ~bits:(P.encoded_bits payload))
                      nr.nr_inbox
                  end
                  else if not (eq_inbox nr.nr_inbox routed) then
                    diverge ~round ~node:n.rn_id
                      (Printf.sprintf
                         "inbox mismatch: runtime delivered %d message(s), \
                          oracle routes %d"
                         (List.length nr.nr_inbox) (List.length routed)));
              let inbox =
                if delivered then
                  match nr with Some nr -> nr.nr_inbox | None -> routed
                else routed
              in
              let state, sends, status =
                P.step ~self:n.rn_id ~round ~stim:[] n.rn_state ~inbox
              in
              n.rn_state <- state;
              (match nr with
              | None -> ()
              | Some nr ->
                  if not (eq_sends nr.nr_sends sends) then
                    diverge ~round ~node:n.rn_id
                      (Printf.sprintf
                         "send mismatch: runtime emitted %d send(s), oracle \
                          steps to %d"
                         (List.length nr.nr_sends) (List.length sends)));
              List.iter
                (fun (dst, payload) ->
                  pending :=
                    { Envelope.src = n.rn_id; dst; payload } :: !pending)
                sends;
              match status with
              | Protocol.Continue -> ()
              | Protocol.Deliver out ->
                  if n.rn_first_output = None then
                    n.rn_first_output <- Some round;
                  n.rn_last_output <- Some out
              | Protocol.Stop out ->
                  if n.rn_first_output = None then
                    n.rn_first_output <- Some round;
                  n.rn_last_output <- Some out;
                  n.rn_halted_at <- Some round)
            stepping;
          go (round + 1) rest
    in
    go 1 sc.sc_rounds;
    {
      ok = !divergence = None;
      divergence = !divergence;
      outputs =
        List.filter_map
          (fun n -> Option.map (fun o -> (n.rn_id, o)) n.rn_last_output)
          nodes;
      decide_rounds =
        List.filter_map
          (fun n -> Option.map (fun r -> (n.rn_id, r)) n.rn_first_output)
          nodes;
      halted =
        List.filter_map
          (fun n -> Option.map (fun r -> (n.rn_id, r)) n.rn_halted_at)
          nodes;
      missing =
        List.filter_map
          (fun n -> Option.map (fun r -> (n.rn_id, r)) n.rn_missing_since)
          nodes;
      rounds = !rounds_executed;
      wire;
    }

  let pp_divergence ppf d =
    Fmt.pf ppf "round %d%a: %s" d.d_round
      (Fmt.option (fun ppf id -> Fmt.pf ppf " %a" Node_id.pp id))
      d.d_node d.d_what
end
