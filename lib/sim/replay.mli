(** Schedule replay: the lockstep simulator as an oracle for the wire.

    The networked runtime ({!Ubpa_runtime}) records, per node per round,
    the inbox it actually consumed and the sends its protocol instance
    emitted. This module feeds that recorded delivery schedule back
    through the simulator's indexed delivery core and re-steps the pure
    state machines, flagging the {e first} round where the wire diverged
    from the model:

    - {e present-set check} — the runtime stepped exactly the nodes the
      oracle considers alive (halts propagate identically);
    - {e inbox check} — what each node received over the wire is exactly
      what {!Delivery.route_indexed} routes from the previous round's
      sends (same dedup, same sender-sorted order);
    - {e send check} — the protocol instance driven by the runtime emitted
      exactly the sends the oracle's replayed state machine emits.

    {b Delivered mode} ([~delivered:true]) relaxes the first two checks
    for runs where injected wire faults or deadline timeouts legitimately
    created holes: the recorded round may step a {e sub-population} (a
    node that vanishes is treated as crashed from that round on, and
    must stay gone), and each recorded inbox must be a {e sub-schedule}
    — a subsequence — of what lockstep routing would have delivered.
    Faults only ever remove deliveries, so an extra, altered or
    reordered message is still a divergence; the protocol step then runs
    on the {e recorded} inbox, making the oracle's verdict "the pure
    state machines, fed exactly what the faulty wire delivered". The
    send check stays exact in both modes.

    The returned outputs/decide rounds are the oracle's verdict; callers
    ({!Ubpa_harness.Runtime_exec}, bench RT1) additionally require them to
    equal the networked run's — decision equivalence is claim-gated, not
    assumed. *)

open Ubpa_util

module Make (P : Protocol.S) : sig
  type node_round = {
    nr_inbox : (Node_id.t * P.message) list;
        (** Post-dedup, sorted by sender id — the delivery-core contract. *)
    nr_sends : (Envelope.dest * P.message) list;  (** In emit order. *)
  }

  type schedule = {
    sc_nodes : (Node_id.t * P.input) list;
        (** Every node with its input; all join in round 1. *)
    sc_rounds : node_round Node_id.Map.t list;
        (** One map per executed round (round [i + 1] at index [i]), over
            exactly the nodes that stepped in that round. *)
  }

  type divergence = { d_round : int; d_node : Node_id.t option; d_what : string }

  type outcome = {
    ok : bool;  (** No divergence anywhere in the schedule. *)
    divergence : divergence option;  (** The first one, if any. *)
    outputs : (Node_id.t * P.output) list;
        (** Latest oracle output per node, ascending id. *)
    decide_rounds : (Node_id.t * int) list;
        (** First output round per node, ascending id. *)
    halted : (Node_id.t * int) list;
    missing : (Node_id.t * int) list;
        (** Delivered mode only: nodes that vanished from the schedule,
            with the first round they were absent — the oracle's view of
            crashed processes. Always empty in exact mode. *)
    rounds : int;
    wire : Ubpa_obs.Wire.t;
        (** Wire counters recorded at the oracle's accept points — totals
            and breakdowns comparable ({!Ubpa_obs.Wire.equal}) with the
            runtime's own accounting and the simulator's. In delivered
            mode they are recorded from the recorded inboxes (what the
            wire actually handed the protocols), matching the runtime's
            own accounting by construction of the same data. *)
  }

  val replay : ?delivered:bool -> schedule -> outcome
  (** Replay never raises on divergence: it reports, like a monitor.
      [delivered] (default false) switches from exact lockstep
      equivalence to sub-schedule equivalence — see the module doc. *)

  val eq_dest : Envelope.dest -> Envelope.dest -> bool

  val pp_divergence : Format.formatter -> divergence -> unit
end
