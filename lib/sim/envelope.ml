open Ubpa_util

type dest = Broadcast | To of Node_id.t
type 'm t = { src : Node_id.t; dst : dest; payload : 'm }

let broadcast ~src payload = { src; dst = Broadcast; payload }
let send ~src ~dst payload = { src; dst = To dst; payload }

let pp pp_payload ppf t =
  let pp_dest ppf = function
    | Broadcast -> Fmt.string ppf "*"
    | To id -> Node_id.pp ppf id
  in
  Fmt.pf ppf "%a->%a:%a" Node_id.pp t.src pp_dest t.dst pp_payload t.payload
