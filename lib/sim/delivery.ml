open Ubpa_util

type impl = Indexed | Naive

type 'm on_deliver = recipient:Node_id.t -> src:Node_id.t -> 'm -> unit

let no_notify : _ on_deliver = fun ~recipient:_ ~src:_ _ -> ()

let notify_of = function None -> no_notify | Some f -> f

let by_sender (a, _) (b, _) = Node_id.compare a b

(* Seed-engine core, kept as the executable specification. The final
   [List.sort] is OCaml's stable sort, so same-sender messages stay in
   send order — the indexed core must match that, not just the multiset.

   [on_deliver] fires at the accept point — after the dedup decided the
   delivery counts — with the recipient, sender, and payload; both cores
   call it at exactly the point where they [incr delivered], so wire
   accounting inherits the cores' delivery-identity guarantee. *)
let route_reference ?on_deliver ~equal ~present ~envelopes () =
  let notify = notify_of on_deliver in
  let inboxes : (Node_id.t * 'm) list ref Node_id.Map.t =
    Node_id.Set.fold
      (fun id acc -> Node_id.Map.add id (ref []) acc)
      present Node_id.Map.empty
  in
  let delivered = ref 0 in
  let push recipient (env : 'm Envelope.t) =
    match Node_id.Map.find_opt recipient inboxes with
    | None -> ()
    | Some box ->
        let dup =
          List.exists
            (fun (src, payload) ->
              Node_id.equal src env.src && equal payload env.payload)
            !box
        in
        if not dup then begin
          box := (env.src, env.payload) :: !box;
          incr delivered;
          notify ~recipient ~src:env.src env.payload
        end
  in
  List.iter
    (fun (env : 'm Envelope.t) ->
      match env.dst with
      | Envelope.To id -> push id env
      | Envelope.Broadcast -> Node_id.Set.iter (fun id -> push id env) present)
    envelopes;
  let sorted = Node_id.Map.map (fun box -> List.sort by_sender (List.rev !box)) inboxes in
  (sorted, !delivered)

(* Per-recipient delivery bucket: items newest-first, plus a sender-keyed
   table of the payloads already delivered so the dup check scans only one
   sender's distinct payloads instead of the whole inbox. [owner] is the
   recipient's id, carried so the accept point can report deliveries. *)
type 'm box = {
  owner : Node_id.t;
  mutable rev_items : (Node_id.t * 'm) list;
  seen : (Node_id.t, 'm list) Hashtbl.t;
}

(* Dense variant of the indexed core: recipients are resolved through a
   per-network interner so broadcast fan-out indexes an array instead of
   hashing node ids. Per-recipient dedup state is identical to the sparse
   indexed path, so results are bit-for-bit the same. *)
let route_indexed_dense ?on_deliver ~intr ~equal ~present ~envelopes () =
  let notify = notify_of on_deliver in
  let pres = Node_id.Set.elements present in
  let pres_ix = List.map (Interner.intern intr) pres in
  let boxes = Array.make (max 1 (Interner.size intr)) None in
  List.iter2
    (fun id ix ->
      boxes.(ix) <- Some { owner = id; rev_items = []; seen = Hashtbl.create 8 })
    pres pres_ix;
  let delivered = ref 0 in
  let push box src payload =
    let prior = Option.value ~default:[] (Hashtbl.find_opt box.seen src) in
    if not (List.exists (equal payload) prior) then begin
      Hashtbl.replace box.seen src (payload :: prior);
      box.rev_items <- (src, payload) :: box.rev_items;
      incr delivered;
      notify ~recipient:box.owner ~src payload
    end
  in
  let bcast_seen : (Node_id.t, 'm list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (env : 'm Envelope.t) ->
      match env.dst with
      | Envelope.To id -> (
          match Interner.find_opt intr id with
          | Some ix when ix < Array.length boxes -> (
              match boxes.(ix) with
              | Some box -> push box env.src env.payload
              | None -> ())
          | _ -> ())
      | Envelope.Broadcast ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt bcast_seen env.src)
          in
          if not (List.exists (equal env.payload) prior) then begin
            Hashtbl.replace bcast_seen env.src (env.payload :: prior);
            List.iter
              (fun ix ->
                match boxes.(ix) with
                | Some box -> push box env.src env.payload
                | None -> ())
              pres_ix
          end)
    envelopes;
  let inboxes =
    List.fold_left2
      (fun acc id ix ->
        match boxes.(ix) with
        | None -> acc
        | Some box ->
            let sorted = List.stable_sort by_sender (List.rev box.rev_items) in
            Node_id.Map.add id sorted acc)
      Node_id.Map.empty pres pres_ix
  in
  (inboxes, !delivered)

let route_indexed_sparse ?on_deliver ~equal ~present ~envelopes () =
  let notify = notify_of on_deliver in
  let n = Node_id.Set.cardinal present in
  let boxes : (Node_id.t, _ box) Hashtbl.t = Hashtbl.create (max 16 (2 * n)) in
  Node_id.Set.iter
    (fun id ->
      Hashtbl.replace boxes id
        { owner = id; rev_items = []; seen = Hashtbl.create 8 })
    present;
  let delivered = ref 0 in
  let push box src payload =
    let prior = Option.value ~default:[] (Hashtbl.find_opt box.seen src) in
    if not (List.exists (equal payload) prior) then begin
      Hashtbl.replace box.seen src (payload :: prior);
      box.rev_items <- (src, payload) :: box.rev_items;
      incr delivered;
      notify ~recipient:box.owner ~src payload
    end
  in
  (* Sender-level broadcast dedup: the present set is fixed for the round,
     so a repeated broadcast from the same sender cannot deliver anything
     the first copy did not (any interleaved unicast of the same payload is
     caught by the per-recipient check either way). *)
  let bcast_seen : (Node_id.t, 'm list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (env : 'm Envelope.t) ->
      match env.dst with
      | Envelope.To id -> (
          match Hashtbl.find_opt boxes id with
          | None -> ()
          | Some box -> push box env.src env.payload)
      | Envelope.Broadcast ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt bcast_seen env.src)
          in
          if not (List.exists (equal env.payload) prior) then begin
            Hashtbl.replace bcast_seen env.src (env.payload :: prior);
            Node_id.Set.iter
              (fun id -> push (Hashtbl.find boxes id) env.src env.payload)
              present
          end)
    envelopes;
  let inboxes =
    Node_id.Set.fold
      (fun id acc ->
        let box = Hashtbl.find boxes id in
        let sorted = List.stable_sort by_sender (List.rev box.rev_items) in
        Node_id.Map.add id sorted acc)
      present Node_id.Map.empty
  in
  (inboxes, !delivered)

let route_indexed ?on_deliver ~interner ~equal ~present ~envelopes () =
  match interner with
  | Some intr -> route_indexed_dense ?on_deliver ~intr ~equal ~present ~envelopes ()
  | None -> route_indexed_sparse ?on_deliver ~equal ~present ~envelopes ()

let route ?on_deliver ~interner ~impl ~equal ~present ~envelopes () =
  match impl with
  | Indexed -> route_indexed ?on_deliver ~interner ~equal ~present ~envelopes ()
  | Naive -> route_reference ?on_deliver ~equal ~present ~envelopes ()
