open Ubpa_util

type impl = Indexed | Naive | Arena

type 'm on_deliver = recipient:Node_id.t -> src:Node_id.t -> 'm -> unit

let no_notify : _ on_deliver = fun ~recipient:_ ~src:_ _ -> ()

let notify_of = function None -> no_notify | Some f -> f

let by_sender (a, _) (b, _) = Node_id.compare a b

(* Seed-engine core, kept as the executable specification. The final
   [List.sort] is OCaml's stable sort, so same-sender messages stay in
   send order — the indexed core must match that, not just the multiset.

   [on_deliver] fires at the accept point — after the dedup decided the
   delivery counts — with the recipient, sender, and payload; both cores
   call it at exactly the point where they [incr delivered], so wire
   accounting inherits the cores' delivery-identity guarantee. *)
let route_reference ?on_deliver ~equal ~present ~envelopes () =
  let notify = notify_of on_deliver in
  let inboxes : (Node_id.t * 'm) list ref Node_id.Map.t =
    Node_id.Set.fold
      (fun id acc -> Node_id.Map.add id (ref []) acc)
      present Node_id.Map.empty
  in
  let delivered = ref 0 in
  let push recipient (env : 'm Envelope.t) =
    match Node_id.Map.find_opt recipient inboxes with
    | None -> ()
    | Some box ->
        let dup =
          List.exists
            (fun (src, payload) ->
              Node_id.equal src env.src && equal payload env.payload)
            !box
        in
        if not dup then begin
          box := (env.src, env.payload) :: !box;
          incr delivered;
          notify ~recipient ~src:env.src env.payload
        end
  in
  List.iter
    (fun (env : 'm Envelope.t) ->
      match env.dst with
      | Envelope.To id -> push id env
      | Envelope.Broadcast -> Node_id.Set.iter (fun id -> push id env) present)
    envelopes;
  let sorted = Node_id.Map.map (fun box -> List.sort by_sender (List.rev !box)) inboxes in
  (sorted, !delivered)

(* Per-recipient delivery bucket: items newest-first, plus a sender-keyed
   table of the payloads already delivered so the dup check scans only one
   sender's distinct payloads instead of the whole inbox. [owner] is the
   recipient's id, carried so the accept point can report deliveries. *)
type 'm box = {
  owner : Node_id.t;
  mutable rev_items : (Node_id.t * 'm) list;
  seen : (Node_id.t, 'm list) Hashtbl.t;
}

(* Dense variant of the indexed core: recipients are resolved through a
   per-network interner so broadcast fan-out indexes an array instead of
   hashing node ids. Per-recipient dedup state is identical to the sparse
   indexed path, so results are bit-for-bit the same. *)
let route_indexed_dense ?on_deliver ~intr ~equal ~present ~envelopes () =
  let notify = notify_of on_deliver in
  let pres = Node_id.Set.elements present in
  let pres_ix = List.map (Interner.intern intr) pres in
  let boxes = Array.make (max 1 (Interner.size intr)) None in
  List.iter2
    (fun id ix ->
      boxes.(ix) <- Some { owner = id; rev_items = []; seen = Hashtbl.create 8 })
    pres pres_ix;
  let delivered = ref 0 in
  (* [find_opt] allocates its option on every hit, and this runs once per
     (envelope, recipient): match on the lookup instead of defaulting
     through [Option.value] so the accept path allocates nothing beyond
     the delivery record itself. *)
  let push box src payload =
    match Hashtbl.find_opt box.seen src with
    | Some prior when List.exists (equal payload) prior -> ()
    | prior_opt ->
        let prior = match prior_opt with Some l -> l | None -> [] in
        Hashtbl.replace box.seen src (payload :: prior);
        box.rev_items <- (src, payload) :: box.rev_items;
        incr delivered;
        notify ~recipient:box.owner ~src payload
  in
  let bcast_seen : (Node_id.t, 'm list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (env : 'm Envelope.t) ->
      match env.dst with
      | Envelope.To id -> (
          match Interner.find_opt intr id with
          | Some ix when ix < Array.length boxes -> (
              match boxes.(ix) with
              | Some box -> push box env.src env.payload
              | None -> ())
          | _ -> ())
      | Envelope.Broadcast ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt bcast_seen env.src)
          in
          if not (List.exists (equal env.payload) prior) then begin
            Hashtbl.replace bcast_seen env.src (env.payload :: prior);
            List.iter
              (fun ix ->
                match boxes.(ix) with
                | Some box -> push box env.src env.payload
                | None -> ())
              pres_ix
          end)
    envelopes;
  let inboxes =
    List.fold_left2
      (fun acc id ix ->
        match boxes.(ix) with
        | None -> acc
        | Some box ->
            let sorted = List.stable_sort by_sender (List.rev box.rev_items) in
            Node_id.Map.add id sorted acc)
      Node_id.Map.empty pres pres_ix
  in
  (inboxes, !delivered)

let route_indexed_sparse ?on_deliver ~equal ~present ~envelopes () =
  let notify = notify_of on_deliver in
  let n = Node_id.Set.cardinal present in
  let boxes : (Node_id.t, _ box) Hashtbl.t = Hashtbl.create (max 16 (2 * n)) in
  Node_id.Set.iter
    (fun id ->
      Hashtbl.replace boxes id
        { owner = id; rev_items = []; seen = Hashtbl.create 8 })
    present;
  let delivered = ref 0 in
  (* Same per-push shape as the dense path: no [Option.value ~default]
     allocation in the dedup check. *)
  let push box src payload =
    match Hashtbl.find_opt box.seen src with
    | Some prior when List.exists (equal payload) prior -> ()
    | prior_opt ->
        let prior = match prior_opt with Some l -> l | None -> [] in
        Hashtbl.replace box.seen src (payload :: prior);
        box.rev_items <- (src, payload) :: box.rev_items;
        incr delivered;
        notify ~recipient:box.owner ~src payload
  in
  (* Sender-level broadcast dedup: the present set is fixed for the round,
     so a repeated broadcast from the same sender cannot deliver anything
     the first copy did not (any interleaved unicast of the same payload is
     caught by the per-recipient check either way). *)
  let bcast_seen : (Node_id.t, 'm list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (env : 'm Envelope.t) ->
      match env.dst with
      | Envelope.To id -> (
          match Hashtbl.find_opt boxes id with
          | None -> ()
          | Some box -> push box env.src env.payload)
      | Envelope.Broadcast ->
          let prior =
            Option.value ~default:[] (Hashtbl.find_opt bcast_seen env.src)
          in
          if not (List.exists (equal env.payload) prior) then begin
            Hashtbl.replace bcast_seen env.src (env.payload :: prior);
            (* [find_opt], matching the dense path: every present id has a
               box, but an exception-raising [find] here would turn any
               future bookkeeping slip into a routed-round abort instead
               of a droppable miss. *)
            Node_id.Set.iter
              (fun id ->
                match Hashtbl.find_opt boxes id with
                | Some box -> push box env.src env.payload
                | None -> ())
              present
          end)
    envelopes;
  let inboxes =
    Node_id.Set.fold
      (fun id acc ->
        let box = Hashtbl.find boxes id in
        let sorted = List.stable_sort by_sender (List.rev box.rev_items) in
        Node_id.Map.add id sorted acc)
      present Node_id.Map.empty
  in
  (inboxes, !delivered)

(* -------------------------------------------------------------------- *)
(* Engine v3: arena-based sparse delivery.                               *)
(*                                                                       *)
(* The indexed cores rebuild per-recipient hashtables and a Node_id.Map  *)
(* every round, which is fine at n ≈ 300 and dominates the profile at    *)
(* n ≈ 10,000. The arena core keeps one grow-only state across rounds:   *)
(*                                                                       *)
(*   - recipients and senders are interned once (the interner persists   *)
(*     and only grows), and per-round presence is a stamp in a flat      *)
(*     array — nothing is cleared between rounds, the stamp just moves;  *)
(*   - a broadcast is ONE logical record (sender, payload, exclusions),  *)
(*     expanded lazily when an inbox is read, never fanned out into n    *)
(*     physical copies;                                                  *)
(*   - unicasts land in flat parallel arenas and are sealed into CSR     *)
(*     slices — (offset, length) ranges into one position array — by a   *)
(*     counting sort, so reading an inbox is a merge of two sorted       *)
(*     cursors;                                                          *)
(*   - sender-level broadcast dedup is a Bitset membership test in the   *)
(*     common one-payload-per-sender case, falling back to a hashed      *)
(*     payload list only for senders that broadcast twice.               *)
(*                                                                       *)
(* Delivery identity with the other cores is the contract: same sorted   *)
(* inboxes, same [delivered] count, same accept-point [on_deliver]       *)
(* multiset. The subtle case is cross-shape dedup — a unicast equal to   *)
(* an earlier broadcast from the same sender is suppressed at scan time, *)
(* while a broadcast equal to an earlier accepted unicast records the    *)
(* already-served recipients in its exclusion list and skips them at     *)
(* read time (and subtracts them from [delivered]).                      *)
(*                                                                       *)
(* Ordering: the reference core stable-sorts each inbox by sender over   *)
(* send order, which is exactly ascending (sender id, global scan        *)
(* position). Every record carries its scan position, so the read-time   *)
(* merge compares (raw sender id, seq) and reproduces the reference      *)
(* order without ever materialising an unsorted inbox.                   *)
(* -------------------------------------------------------------------- *)

type 'm arena_state = {
  intr : Interner.t;
      (* Private to the state; persists and grows across rounds. *)
  mutable stamp : int;
      (* Round stamp. A dense index ix is present this round iff
         [present_at.(ix) = stamp]; advancing the stamp invalidates every
         mark in O(1). *)
  mutable present_at : int array;
  pres_ixs : int Arena.t; (* present members, ascending-id order *)
  pres_ids : Node_id.t Arena.t; (* parallel ids for [pres_ixs] *)
  (* Broadcast records: parallel arenas, one slot per accepted broadcast. *)
  b_src : Node_id.t Arena.t;
  b_seq : int Arena.t; (* global scan position, merge tie-break *)
  b_pay : 'm option Arena.t;
  b_excl : int list Arena.t; (* recipient ixs already served by unicast *)
  mutable b_order : int array; (* sealed: record indices by (sender, seq) *)
  bc_any : Bitset.t; (* senders with ≥1 accepted broadcast this round *)
  bc_pay : (int, 'm list) Hashtbl.t; (* sender ix -> distinct payloads *)
  (* Unicast records: parallel arenas, one slot per accepted unicast. *)
  u_rcpt : int Arena.t; (* recipient ix *)
  u_src : Node_id.t Arena.t;
  u_seq : int Arena.t;
  u_pay : 'm option Arena.t;
  uni_seen : (int * int, 'm list) Hashtbl.t;
      (* (recipient ix, sender ix) -> distinct payloads accepted *)
  uni_by_sender : (int, (int * 'm) list) Hashtbl.t;
      (* sender ix -> accepted (recipient ix, payload), for broadcast
         exclusion lists *)
  (* CSR slices into [u_pos], indexed by recipient ix and stamp-guarded
     like [present_at]. *)
  mutable sl_off : int array;
  mutable sl_len : int array;
  mutable sl_fill : int array;
  mutable sl_stamp : int array;
  mutable u_pos : int array;
  mutable delivered : int;
}

type 'm view = 'm arena_state

let dummy_id = Node_id.of_int 0

let arena_create ?(hint = 16) () =
  let hint = max hint 1 in
  {
    intr = Interner.create ~hint ();
    stamp = 0;
    present_at = Array.make hint 0;
    pres_ixs = Arena.create ~hint ~dummy:0 ();
    pres_ids = Arena.create ~hint ~dummy:dummy_id ();
    b_src = Arena.create ~hint ~dummy:dummy_id ();
    b_seq = Arena.create ~hint ~dummy:0 ();
    b_pay = Arena.create ~hint ~dummy:None ();
    b_excl = Arena.create ~hint ~dummy:[] ();
    b_order = [||];
    bc_any = Bitset.create ~hint ();
    bc_pay = Hashtbl.create 16;
    u_rcpt = Arena.create ~hint ~dummy:0 ();
    u_src = Arena.create ~hint ~dummy:dummy_id ();
    u_seq = Arena.create ~hint ~dummy:0 ();
    u_pay = Arena.create ~hint ~dummy:None ();
    uni_seen = Hashtbl.create 16;
    uni_by_sender = Hashtbl.create 16;
    sl_off = Array.make hint 0;
    sl_len = Array.make hint 0;
    sl_fill = Array.make hint 0;
    sl_stamp = Array.make hint 0;
    u_pos = Array.make hint 0;
    delivered = 0;
  }

(* Grow the stamp-guarded column arrays to cover every interned index.
   New slots are stamp 0, i.e. "never present". *)
let ensure_columns st =
  let need = Interner.size st.intr in
  let old = Array.length st.present_at in
  if need > old then begin
    let grow a =
      let g = Array.make (max need (2 * old)) 0 in
      Array.blit a 0 g 0 old;
      g
    in
    st.present_at <- grow st.present_at;
    st.sl_off <- grow st.sl_off;
    st.sl_len <- grow st.sl_len;
    st.sl_fill <- grow st.sl_fill;
    st.sl_stamp <- grow st.sl_stamp
  end

let raw = Node_id.to_int

(* Seal the unicast arenas into per-recipient CSR slices of [u_pos]:
   counting sort by recipient, then an in-place insertion sort of each
   slice by (sender, seq). Slices arrive in seq order already, so the
   inner sort only moves records when a recipient heard from multiple
   senders out of id order. *)
let seal st =
  let nu = Arena.length st.u_rcpt in
  (* Recipients touched this round, so offset assignment skips the other
     interned indices entirely. *)
  let touched = Arena.create ~hint:16 ~dummy:0 () in
  for k = 0 to nu - 1 do
    let rix = Arena.unsafe_get st.u_rcpt k in
    if st.sl_stamp.(rix) <> st.stamp then begin
      st.sl_stamp.(rix) <- st.stamp;
      st.sl_len.(rix) <- 0;
      Arena.push touched rix
    end;
    st.sl_len.(rix) <- st.sl_len.(rix) + 1
  done;
  let off = ref 0 in
  Arena.iteri touched (fun _ rix ->
      st.sl_off.(rix) <- !off;
      st.sl_fill.(rix) <- !off;
      off := !off + st.sl_len.(rix));
  if nu > Array.length st.u_pos then
    st.u_pos <- Array.make (max nu (2 * Array.length st.u_pos)) 0;
  for k = 0 to nu - 1 do
    let rix = Arena.unsafe_get st.u_rcpt k in
    st.u_pos.(st.sl_fill.(rix)) <- k;
    st.sl_fill.(rix) <- st.sl_fill.(rix) + 1
  done;
  (* Record index order IS seq order, so ties never reach beyond the
     record index comparison. *)
  let before a b =
    let c = compare (raw (Arena.unsafe_get st.u_src a)) (raw (Arena.unsafe_get st.u_src b)) in
    if c <> 0 then c < 0 else a < b
  in
  Arena.iteri touched (fun _ rix ->
      let lo = st.sl_off.(rix) and len = st.sl_len.(rix) in
      for i = lo + 1 to lo + len - 1 do
        let v = st.u_pos.(i) in
        let j = ref i in
        while !j > lo && before v st.u_pos.(!j - 1) do
          st.u_pos.(!j) <- st.u_pos.(!j - 1);
          decr j
        done;
        st.u_pos.(!j) <- v
      done);
  let nb = Arena.length st.b_src in
  let order = Array.init nb (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (raw (Arena.unsafe_get st.b_src a)) (raw (Arena.unsafe_get st.b_src b)) in
      if c <> 0 then c else compare a b)
    order;
  st.b_order <- order

let payload_of = function Some p -> p | None -> assert false

let route_arena ?on_deliver ~state:st ~equal ~present ~envelopes () =
  (* New round: advance the stamp, drop lengths to zero, keep capacity.
     Payload slots from the previous round stay live until overwritten;
     that pins at most one round of messages, which is the price of the
     allocation-free clear. *)
  st.stamp <- st.stamp + 1;
  st.delivered <- 0;
  Arena.clear st.pres_ixs;
  Arena.clear st.pres_ids;
  Arena.clear st.b_src;
  Arena.clear st.b_seq;
  Arena.clear st.b_pay;
  Arena.clear st.b_excl;
  Arena.clear st.u_rcpt;
  Arena.clear st.u_src;
  Arena.clear st.u_seq;
  Arena.clear st.u_pay;
  Bitset.clear st.bc_any;
  Hashtbl.clear st.bc_pay;
  Hashtbl.clear st.uni_seen;
  Hashtbl.clear st.uni_by_sender;
  Node_id.Set.iter
    (fun id ->
      let ix = Interner.intern st.intr id in
      ensure_columns st;
      st.present_at.(ix) <- st.stamp;
      Arena.push st.pres_ixs ix;
      Arena.push st.pres_ids id)
    present;
  let npresent = Arena.length st.pres_ixs in
  let seq = ref 0 in
  let scan (env : 'm Envelope.t) =
    match env.dst with
    | Envelope.To id -> (
        match Interner.find_opt st.intr id with
        | Some rix
          when rix < Array.length st.present_at
               && st.present_at.(rix) = st.stamp ->
            let six = Interner.intern st.intr env.src in
            ensure_columns st;
            let ukey = (rix, six) in
            let prior = Hashtbl.find_opt st.uni_seen ukey in
            let dup_unicast =
              match prior with
              | Some l -> List.exists (equal env.payload) l
              | None -> false
            in
            let dup_broadcast =
              Bitset.mem st.bc_any six
              && (match Hashtbl.find_opt st.bc_pay six with
                 | Some l -> List.exists (equal env.payload) l
                 | None -> false)
            in
            if not (dup_unicast || dup_broadcast) then begin
              Hashtbl.replace st.uni_seen ukey
                (env.payload :: (match prior with Some l -> l | None -> []));
              Hashtbl.replace st.uni_by_sender six
                ((rix, env.payload)
                ::
                (match Hashtbl.find_opt st.uni_by_sender six with
                | Some l -> l
                | None -> []));
              Arena.push st.u_rcpt rix;
              Arena.push st.u_src env.src;
              Arena.push st.u_seq !seq;
              incr seq;
              Arena.push st.u_pay (Some env.payload);
              st.delivered <- st.delivered + 1;
              match on_deliver with
              | Some f -> f ~recipient:id ~src:env.src env.payload
              | None -> ()
            end
        | _ -> ())
    | Envelope.Broadcast ->
        let six = Interner.intern st.intr env.src in
        ensure_columns st;
        let dup =
          Bitset.mem st.bc_any six
          && (match Hashtbl.find_opt st.bc_pay six with
             | Some l -> List.exists (equal env.payload) l
             | None -> false)
        in
        if not dup then begin
          Bitset.add st.bc_any six;
          Hashtbl.replace st.bc_pay six
            (env.payload
            ::
            (match Hashtbl.find_opt st.bc_pay six with
            | Some l -> l
            | None -> []));
          let excl =
            match Hashtbl.find_opt st.uni_by_sender six with
            | None -> []
            | Some l ->
                List.filter_map
                  (fun (rix, p) -> if equal p env.payload then Some rix else None)
                  l
          in
          Arena.push st.b_src env.src;
          Arena.push st.b_seq !seq;
          incr seq;
          Arena.push st.b_pay (Some env.payload);
          Arena.push st.b_excl excl;
          st.delivered <- st.delivered + npresent - List.length excl;
          match on_deliver with
          | None -> ()
          | Some f ->
              (* Accept-point notification per recipient, ascending id —
                 the multiset matches the fan-out cores. Only walked when
                 a hook is installed, so the wire-accounting-off hot path
                 keeps broadcasts O(1). *)
              Arena.iteri st.pres_ixs (fun k rix ->
                  if not (List.exists (Int.equal rix) excl) then
                    f
                      ~recipient:(Arena.unsafe_get st.pres_ids k)
                      ~src:env.src env.payload)
        end
  in
  List.iter scan envelopes;
  seal st;
  st

let view_delivered st = st.delivered

(* Lazily expand one recipient's inbox: merge the (sender, seq)-sorted
   broadcast records (skipping this recipient's exclusions) with the
   recipient's sealed unicast slice. The resulting list is the only
   per-read allocation the core makes. *)
let view_inbox st id =
  match Interner.find_opt st.intr id with
  | Some rix
    when rix < Array.length st.present_at && st.present_at.(rix) = st.stamp ->
      let border = st.b_order in
      let nb = Array.length border in
      let uoff, ulen =
        if rix < Array.length st.sl_stamp && st.sl_stamp.(rix) = st.stamp then
          (st.sl_off.(rix), st.sl_len.(rix))
        else (0, 0)
      in
      let excluded b = List.exists (Int.equal rix) (Arena.unsafe_get st.b_excl b) in
      let acc = ref [] in
      let bi = ref 0 and ui = ref 0 in
      let emit_b b =
        acc :=
          (Arena.unsafe_get st.b_src b, payload_of (Arena.unsafe_get st.b_pay b))
          :: !acc
      in
      let emit_u u =
        acc :=
          (Arena.unsafe_get st.u_src u, payload_of (Arena.unsafe_get st.u_pay u))
          :: !acc
      in
      while !bi < nb && excluded border.(!bi) do incr bi done;
      while !bi < nb || !ui < ulen do
        if !bi >= nb then begin
          emit_u st.u_pos.(uoff + !ui);
          incr ui
        end
        else if !ui >= ulen then begin
          emit_b border.(!bi);
          incr bi;
          while !bi < nb && excluded border.(!bi) do incr bi done
        end
        else begin
          let b = border.(!bi) and u = st.u_pos.(uoff + !ui) in
          let c =
            compare (raw (Arena.unsafe_get st.b_src b)) (raw (Arena.unsafe_get st.u_src u))
          in
          let b_first =
            if c <> 0 then c < 0
            else Arena.unsafe_get st.b_seq b < Arena.unsafe_get st.u_seq u
          in
          if b_first then begin
            emit_b b;
            incr bi;
            while !bi < nb && excluded border.(!bi) do incr bi done
          end
          else begin
            emit_u u;
            incr ui
          end
        end
      done;
      List.rev !acc
  | _ -> []

let view_present st =
  Arena.fold st.pres_ids ~init:[] ~f:(fun acc id -> id :: acc) |> List.rev

let view_to_map st =
  Arena.fold st.pres_ids ~init:Node_id.Map.empty ~f:(fun acc id ->
      Node_id.Map.add id (view_inbox st id) acc)

let route_indexed ?on_deliver ~interner ~equal ~present ~envelopes () =
  match interner with
  | Some intr -> route_indexed_dense ?on_deliver ~intr ~equal ~present ~envelopes ()
  | None -> route_indexed_sparse ?on_deliver ~equal ~present ~envelopes ()

let route ?on_deliver ~interner ~impl ~equal ~present ~envelopes () =
  match impl with
  | Indexed -> route_indexed ?on_deliver ~interner ~equal ~present ~envelopes ()
  | Naive -> route_reference ?on_deliver ~equal ~present ~envelopes ()
  | Arena ->
      (* Ephemeral state: the map-returning entry point can't reuse the
         arena across rounds, so this path exists for the generic [route]
         API and the differential tests. Long-lived callers (the network
         round loop) hold an [arena_state] and call [route_arena]. *)
      let st = arena_create ~hint:(Node_id.Set.cardinal present) () in
      let view = route_arena ?on_deliver ~state:st ~equal ~present ~envelopes () in
      (view_to_map view, view_delivered view)
