open Ubpa_util

type kind = Join | Leave | Send | Byz_send | Output | Halt | Fault | Engine

let kind_to_string = function
  | Join -> "join"
  | Leave -> "leave"
  | Send -> "send"
  | Byz_send -> "byz-send"
  | Output -> "output"
  | Halt -> "halt"
  | Fault -> "fault"
  | Engine -> "engine"

let kind_of_string = function
  | "join" -> Some Join
  | "leave" -> Some Leave
  | "send" -> Some Send
  | "byz-send" -> Some Byz_send
  | "output" -> Some Output
  | "halt" -> Some Halt
  | "fault" -> Some Fault
  | "engine" -> Some Engine
  | _ -> None

type event = { round : int; node : Node_id.t option; kind : kind; what : string }

type t = {
  enabled : bool;
  live : bool;
  mutable events : event list;
  mutable taps : (event -> unit) list;  (** reversed subscription order *)
}

let create ?(live = false) () = { enabled = true; live; events = []; taps = [] }
let disabled = { enabled = false; live = false; events = []; taps = [] }

let subscribe t f =
  if not t.enabled then
    invalid_arg "Trace.subscribe: the shared disabled trace records nothing";
  t.taps <- f :: t.taps

let pp_event ppf e =
  let pp_node ppf = function
    | None -> Fmt.string ppf "engine"
    | Some id -> Node_id.pp ppf id
  in
  Fmt.pf ppf "[r%03d %a] %s" e.round pp_node e.node e.what

let record t ~round ?node ?(kind = Engine) what =
  if t.enabled then begin
    let e = { round; node; kind; what } in
    t.events <- e :: t.events;
    if t.live then Fmt.epr "%a@." pp_event e;
    match t.taps with
    | [] -> ()
    | taps -> List.iter (fun f -> f e) (List.rev taps)
  end

let recordf t ~round ?node ?kind fmt =
  Format.kasprintf (fun s -> record t ~round ?node ?kind s) fmt

let enabled t = t.enabled
let events t = List.rev t.events
let find t ~f = List.find_opt f (events t)

let of_events evs =
  let t = create () in
  List.iter (fun e -> record t ~round:e.round ?node:e.node ~kind:e.kind e.what) evs;
  t

let equal_event a b =
  a.round = b.round
  && Option.equal Node_id.equal a.node b.node
  && a.kind = b.kind
  && String.equal a.what b.what

type diff = {
  first_divergence : (int * event option * event option) option;
  kind_counts : (string * int * int) list;
  length_a : int;
  length_b : int;
}

let diff_events a b =
  let counts evs =
    let h = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let k = kind_to_string e.kind in
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
      evs;
    h
  in
  let ca = counts a and cb = counts b in
  let kinds =
    List.filter
      (fun k -> Hashtbl.mem ca k || Hashtbl.mem cb k)
      (List.map kind_to_string
         [ Join; Leave; Send; Byz_send; Output; Halt; Fault; Engine ])
  in
  let kind_counts =
    List.map
      (fun k ->
        ( k,
          Option.value ~default:0 (Hashtbl.find_opt ca k),
          Option.value ~default:0 (Hashtbl.find_opt cb k) ))
      kinds
  in
  let rec first ix a b =
    match (a, b) with
    | [], [] -> None
    | ea :: _, [] -> Some (ix, Some ea, None)
    | [], eb :: _ -> Some (ix, None, Some eb)
    | ea :: ra, eb :: rb ->
        if equal_event ea eb then first (ix + 1) ra rb
        else Some (ix, Some ea, Some eb)
  in
  {
    first_divergence = first 0 a b;
    kind_counts;
    length_a = List.length a;
    length_b = List.length b;
  }

let equal_events a b = (diff_events a b).first_divergence = None
let pp ppf t = Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp_event) (events t)

let event_to_json e : Json.t =
  `Assoc
    [
      ("round", `Int e.round);
      ( "node",
        match e.node with
        | None -> `Null
        | Some id -> `Int (Node_id.to_int id) );
      ("kind", `String (kind_to_string e.kind));
      ("what", `String e.what);
    ]

let event_of_json j =
  match
    ( Option.bind (Json.member "round" j) Json.to_int,
      Json.member "node" j,
      Option.bind (Json.member "kind" j) Json.to_string_opt,
      Option.bind (Json.member "what" j) Json.to_string_opt )
  with
  | Some round, Some node, Some kind, Some what -> (
      let node =
        match node with `Int i -> Some (Node_id.of_int i) | _ -> None
      in
      match kind_of_string kind with
      | Some kind -> Ok { round; node; kind; what }
      | None -> Error (Printf.sprintf "Trace.event_of_json: bad kind %S" kind))
  | _ -> Error "Trace.event_of_json: missing field"

let to_json t : Json.t = `List (List.map event_to_json (events t))

let to_jsonl t =
  String.concat ""
    (List.map
       (fun e -> Json.to_string ~pretty:false (event_to_json e) ^ "\n")
       (events t))

let of_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else
          let parsed =
            Result.bind (Json.of_string line) (fun j -> event_of_json j)
          in
          (match parsed with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines
