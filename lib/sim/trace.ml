open Ubpa_util

type event = { round : int; node : Node_id.t option; what : string }
type t = { enabled : bool; live : bool; mutable events : event list }

let create ?(live = false) () = { enabled = true; live; events = [] }
let disabled = { enabled = false; live = false; events = [] }

let pp_event ppf e =
  let pp_node ppf = function
    | None -> Fmt.string ppf "engine"
    | Some id -> Node_id.pp ppf id
  in
  Fmt.pf ppf "[r%03d %a] %s" e.round pp_node e.node e.what

let record t ~round ?node what =
  if t.enabled then begin
    let e = { round; node; what } in
    t.events <- e :: t.events;
    if t.live then Fmt.epr "%a@." pp_event e
  end

let recordf t ~round ?node fmt =
  Format.kasprintf (fun s -> record t ~round ?node s) fmt

let enabled t = t.enabled
let events t = List.rev t.events
let find t ~f = List.find_opt f (events t)
let pp ppf t = Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut pp_event) (events t)
