(** ASCII round timelines from execution traces.

    Turns a {!Trace.t} into a per-node, per-round activity matrix — joins,
    sends, outputs, halts — so protocol executions can be eyeballed:

    {v
    node         r001 r002 r003 r004 r005
    #151149761   J+1  +4   +1   .    D
    #630123623   J+1  +4   +1   .    D
    v}

    Legend: [J] joined, [+k] sent k messages, [D] decided/halted, [o]
    produced an output, [.] idle. Byzantine sends are bracketed ([!k]);
    injected faults (crash, recovery, omission drops, ...) show as [x]
    ([xk] for k fault events in one round). *)

open Ubpa_util

type t

val of_trace : Trace.t -> t
(** Builds the matrix from the events the engine recorded. Traces created
    with tracing disabled yield an empty timeline. *)

val of_events : Trace.event list -> t
(** Same, from a bare event list — what [ubpa trace --file] builds after
    {!Trace.of_jsonl}. *)

val rounds : t -> int
val nodes : t -> Node_id.t list

val to_string :
  ?max_rounds:int -> ?stalled:Node_id.t list -> ?wire:int * int -> t -> string
(** Render; [max_rounds] (default 40) truncates wide executions with an
    ellipsis column. [stalled] (typically the [`Max_rounds_reached]
    payload of [Network.run]) appends a footer naming the correct nodes
    that never halted. [wire] (a [(messages, bits)] pair, typically
    [Metrics.wire_msgs]/[wire_bits]) prepends a wire-load footer. *)

val pp : Format.formatter -> t -> unit
