(** Protocol interface for correct nodes.

    A protocol is a deterministic state machine driven once per synchronous
    round. Messages handed to [step] at round [r] are exactly those sent in
    round [r - 1] (with per-round duplicates from the same sender removed).
    Messages must be pure, structurally comparable data; each protocol names
    its own message order through {!S.compare_message}/{!S.equal_message}
    (use {!Structural} for the plain structural default), so the engine
    never applies polymorphic comparison to opaque state. *)

open Ubpa_util

type 'o status =
  | Continue  (** Keep running, no new output. *)
  | Deliver of 'o
      (** Produce an output but keep participating (e.g. reliable-broadcast
          accept, total-order chain snapshots). The engine remembers the
          latest delivered output and the round of the first one. *)
  | Stop of 'o  (** Final output; the node halts and leaves the network. *)

module type S = sig
  type input
  (** Per-node input handed over at initialization. *)

  type stimulus
  (** External per-round stimulus (events witnessed, leave requests, ...).
      Use {!No_stimulus.t} when the protocol has none. *)

  type output
  type message
  type state

  val name : string

  val init : self:Node_id.t -> round:int -> input -> state
  (** Called when the node enters the network; its first [step] happens in
      the same [round] with an empty inbox. *)

  val step :
    self:Node_id.t ->
    round:int ->
    stim:stimulus list ->
    state ->
    inbox:(Node_id.t * message) list ->
    state * (Envelope.dest * message) list * output status

  val compare_message : message -> message -> int
  (** Total order on messages. Used by generic tooling that needs ordered
      or keyed message collections. *)

  val equal_message : message -> message -> bool
  (** Message equality, consistent with {!compare_message}. The engine's
      delivery core uses it for the per-round per-recipient
      [(sender, payload)] dedup. *)

  val encoded_bits : message -> int
  (** Wire size of a message under the repo's reference encoding, in bits.
      The delivery cores charge this for every accepted delivery
      ({!Ubpa_obs.Wire}), which is what the bit-complexity experiments
      measure. Most protocols take the structural default
      ({!Ubpa_obs.Sizing.structural_bits}, re-exported as
      {!structural_bits} and included in {!Structural}); override it only
      where the structural model misprices the payload (e.g. one-bit
      votes). Must be deterministic and compiler-independent — sizes land
      in committed benchmark baselines. *)

  val pp_message : message Fmt.t
end

let structural_bits : 'a -> int = Ubpa_obs.Sizing.structural_bits

(** The pre-engine-v2 default: plain structural (polymorphic) comparison.
    Correct for any message type built from immutable non-float
    constructors; protocols whose messages carry abstract or float-valued
    components should spell out their own comparators instead. *)
module Structural (M : sig
  type t
end) =
struct
  let compare_message : M.t -> M.t -> int = Stdlib.compare
  let equal_message : M.t -> M.t -> bool = Stdlib.( = )
  let encoded_bits : M.t -> int = Ubpa_obs.Sizing.structural_bits
end

module No_stimulus = struct
  type t = |

  let none : t list = []
end
