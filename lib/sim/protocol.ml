(** Protocol interface for correct nodes.

    A protocol is a deterministic state machine driven once per synchronous
    round. Messages handed to [step] at round [r] are exactly those sent in
    round [r - 1] (with per-round duplicates from the same sender removed).
    Messages must be pure, structurally comparable data — the engine and the
    tallies rely on polymorphic comparison. *)

open Ubpa_util

type 'o status =
  | Continue  (** Keep running, no new output. *)
  | Deliver of 'o
      (** Produce an output but keep participating (e.g. reliable-broadcast
          accept, total-order chain snapshots). The engine remembers the
          latest delivered output and the round of the first one. *)
  | Stop of 'o  (** Final output; the node halts and leaves the network. *)

module type S = sig
  type input
  (** Per-node input handed over at initialization. *)

  type stimulus
  (** External per-round stimulus (events witnessed, leave requests, ...).
      Use {!No_stimulus.t} when the protocol has none. *)

  type output
  type message
  type state

  val name : string

  val init : self:Node_id.t -> round:int -> input -> state
  (** Called when the node enters the network; its first [step] happens in
      the same [round] with an empty inbox. *)

  val step :
    self:Node_id.t ->
    round:int ->
    stim:stimulus list ->
    state ->
    inbox:(Node_id.t * message) list ->
    state * (Envelope.dest * message) list * output status

  val pp_message : message Fmt.t
end

module No_stimulus = struct
  type t = |

  let none : t list = []
end
