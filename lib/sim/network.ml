open Ubpa_util

module Make (P : Protocol.S) = struct
  type node_report = {
    id : Node_id.t;
    joined_at : int;
    first_output_round : int option;
    last_output : P.output option;
    halted_at : int option;
    down_since : int option;
  }

  type correct_node = {
    c_id : Node_id.t;
    c_joined_at : int;
    mutable c_state : P.state;
    mutable c_first_output_round : int option;
    mutable c_last_output : P.output option;
    mutable c_halted_at : int option;
    mutable c_down_since : int option;  (* injected crash/leave in effect *)
  }

  type byz_node = {
    b_id : Node_id.t;
    b_act : P.message Strategy.view -> (Envelope.dest * P.message) list;
  }

  type pending_join =
    | Join_correct of Node_id.t * P.input
    | Join_byzantine of Node_id.t * P.message Strategy.t

  (* One routed round as the stepping loop consumes it. [Mapped] is the
     historical shape (and the one fault filters rewrite); [Sliced] is the
     engine-v3 cursor view, where each inbox stays a lazy (offset, length)
     slice into the arena until the owning node is actually stepped — no
     per-round Node_id.Map is ever built. *)
  type inboxes =
    | Mapped of (Node_id.t * P.message) list Node_id.Map.t
    | Sliced of P.message Delivery.view

  type t = {
    rushing : bool;
    delivery : Delivery.impl;
    wire_accounting : bool;
    arena : P.message Delivery.arena_state option;
        (* engine-v3 cross-round state, allocated iff delivery = Arena *)
    rng : Rng.t;
    faults : Ubpa_faults.plan;
    frng : Rng.t;
        (* Fault-plan decisions draw from their own stream so an empty plan
           leaves every existing random stream untouched, and a non-empty
           one gives identical decisions on both delivery cores. *)
    tr : Trace.t;
    intr : Interner.t;
        (* per-network dense id table; every member id is interned at join
           so the indexed delivery core can use array-addressed fan-out *)
    classify : (P.message -> string) option;
    stimulus : round:int -> Node_id.t -> P.stimulus list;
    metrics : Metrics.t;
    wire : Ubpa_obs.Wire.t;
    mutable round : int;
    mutable correct : correct_node Node_id.Map.t;
    mutable byzantine : byz_node Node_id.Map.t;
    mutable queued_joins : pending_join list; (* reversed *)
    mutable queued_removals : Node_id.Set.t;
    mutable pending : P.message Envelope.t list; (* sent last round, reversed *)
    mutable dup_next : P.message Envelope.t list;
        (* envelopes duplicated by the fault plan, re-delivered next round *)
  }

  let no_stimulus ~round:_ _ = []

  let create ?(rushing = true) ?(delivery = Delivery.Indexed)
      ?(wire_accounting = true) ?(seed = 0xbadc0ffeeL)
      ?(faults = Ubpa_faults.empty) ?(trace = Trace.disabled) ?classify
      ?(stimulus = no_stimulus) ~correct ~byzantine () =
    let t =
      {
        rushing;
        delivery;
        wire_accounting;
        arena =
          (match delivery with
          | Delivery.Arena -> Some (Delivery.arena_create ())
          | _ -> None);
        rng = Rng.create seed;
        faults;
        frng = Rng.create (Int64.logxor seed 0x6661756c745eedL);
        tr = trace;
        intr = Interner.create ();
        classify;
        stimulus;
        metrics = Metrics.create ();
        wire = Ubpa_obs.Wire.create ();
        round = 0;
        correct = Node_id.Map.empty;
        byzantine = Node_id.Map.empty;
        queued_joins = [];
        queued_removals = Node_id.Set.empty;
        pending = [];
        dup_next = [];
      }
    in
    let ids = List.map fst correct @ List.map fst byzantine in
    if List.length (Node_id.sorted ids) <> List.length ids then
      invalid_arg "Network.create: duplicate node identifiers";
    t.queued_joins <-
      List.rev_map (fun (id, input) -> Join_correct (id, input)) correct
      @ List.rev_map (fun (id, s) -> Join_byzantine (id, s)) byzantine;
    t

  let join_correct t id input =
    t.queued_joins <- Join_correct (id, input) :: t.queued_joins

  let join_byzantine t id strat =
    t.queued_joins <- Join_byzantine (id, strat) :: t.queued_joins

  let remove_byzantine t id =
    t.queued_removals <- Node_id.Set.add id t.queued_removals

  let apply_membership t =
    List.iter
      (function
        | Join_correct (id, input) ->
            if Node_id.Map.mem id t.correct || Node_id.Map.mem id t.byzantine
            then invalid_arg "Network: joining identifier already present";
            Trace.recordf t.tr ~round:t.round ~node:id ~kind:Trace.Join
              "join (correct)";
            ignore (Interner.intern t.intr id);
            t.correct <-
              Node_id.Map.add id
                {
                  c_id = id;
                  c_joined_at = t.round;
                  c_state = P.init ~self:id ~round:t.round input;
                  c_first_output_round = None;
                  c_last_output = None;
                  c_halted_at = None;
                  c_down_since = None;
                }
                t.correct
        | Join_byzantine (id, strat) ->
            if Node_id.Map.mem id t.correct || Node_id.Map.mem id t.byzantine
            then invalid_arg "Network: joining identifier already present";
            Trace.recordf t.tr ~round:t.round ~node:id ~kind:Trace.Join
              "join (byzantine %s)" (Strategy.name strat);
            ignore (Interner.intern t.intr id);
            let act = Strategy.instantiate strat (Rng.split t.rng) id in
            t.byzantine <- Node_id.Map.add id { b_id = id; b_act = act } t.byzantine)
      (List.rev t.queued_joins);
    t.queued_joins <- [];
    Node_id.Set.iter
      (fun id ->
        Trace.recordf t.tr ~round:t.round ~node:id ~kind:Trace.Leave
          "leave (byzantine)";
        t.byzantine <- Node_id.Map.remove id t.byzantine)
      t.queued_removals;
    t.queued_removals <- Node_id.Set.empty

  let active_correct_nodes t =
    Node_id.Map.fold
      (fun _ n acc ->
        if n.c_halted_at = None && n.c_down_since = None then n :: acc else acc)
      t.correct []
    |> List.rev (* fold yields descending; reverse to ascending id order *)

  (* Crash / churn transitions scheduled by the fault plan for this round.
     A downed node keeps its state (crash-recover resumes where it left
     off) but is absent from [present]: it neither steps, sends, nor
     receives while down. *)
  let apply_fault_transitions t =
    Node_id.Map.iter
      (fun id n ->
        if n.c_halted_at = None then
          let status = Ubpa_faults.status t.faults ~node:id ~round:t.round in
          match (n.c_down_since, status) with
          | None, (`Crashed | `Left) ->
              n.c_down_since <- Some t.round;
              Trace.recordf t.tr ~round:t.round ~node:id ~kind:Trace.Fault
                "%s"
                (match status with
                | `Left -> "fault: leave (churn)"
                | _ -> "fault: crash")
          | Some _, `Up ->
              n.c_down_since <- None;
              Trace.recordf t.tr ~round:t.round ~node:id ~kind:Trace.Fault
                "%s"
                (match
                   Ubpa_faults.status t.faults ~node:id ~round:(t.round - 1)
                 with
                | `Left -> "fault: rejoin (churn, state intact)"
                | _ -> "fault: recover (state intact)")
          | _ -> ())
      t.correct

  let active_correct t = List.map (fun n -> n.c_id) (active_correct_nodes t)

  let correct_ids t = Node_id.Map.fold (fun id _ acc -> id :: acc) t.correct [] |> List.rev

  let byzantine_ids t =
    Node_id.Map.fold (fun id _ acc -> id :: acc) t.byzantine [] |> List.rev

  (* Deliver pending envelopes to the nodes present this round. Returns a map
     from recipient to its inbox sorted by sender id. Duplicate
     (sender, payload) pairs for the same recipient are dropped, with payload
     equality decided by [P.equal_message]. *)
  let rec deliver t ~present =
    let faulty = not (Ubpa_faults.is_empty t.faults) in
    let envelopes = List.rev t.pending in
    (* Link-level faults happen before routing: per-envelope loss drops the
       envelope for every recipient; duplication re-injects a copy into the
       *next* round (a same-round copy would be absorbed by the dedup). *)
    let envelopes =
      if not faulty then envelopes
      else begin
        let loss = Ubpa_faults.loss t.faults
        and dup = Ubpa_faults.dup t.faults in
        let kept =
          if loss <= 0. then envelopes
          else
            List.filter
              (fun (env : P.message Envelope.t) ->
                if Rng.float t.frng 1.0 < loss then begin
                  if Trace.enabled t.tr then
                    Trace.recordf t.tr ~round:t.round ~node:env.src
                      ~kind:Trace.Fault "fault: loss %a"
                      (Envelope.pp P.pp_message) env;
                  false
                end
                else true)
              envelopes
        in
        if dup > 0. then
          List.iter
            (fun (env : P.message Envelope.t) ->
              if Rng.float t.frng 1.0 < dup then begin
                if Trace.enabled t.tr then
                  Trace.recordf t.tr ~round:t.round ~node:env.src
                    ~kind:Trace.Fault "fault: duplicate (next round) %a"
                    (Envelope.pp P.pp_message) env;
                t.dup_next <- env :: t.dup_next
              end)
            kept;
        kept
      end
    in
    (* Wire accounting fires at the cores' accept points: post-dedup (a
       suppressed duplicate never crossed the wire twice), pre
       receive-omission (the message was transmitted; the faulty receiver
       dropped it afterwards). Both cores drive the same hook, so CX1's
       cross-core wire-identity claim inherits the delivery-identity
       guarantee. *)
    let kind_of =
      match t.classify with Some f -> f | None -> fun _ -> "msg"
    in
    (* [?wire_accounting:false] disables the hook entirely: at n ≈ 10,000
       the per-delivery hash updates dominate the round, and the SCALE
       sweeps measure the engine, not the observer. With the hook off the
       arena core never fans a broadcast out at all. *)
    let on_deliver =
      if not t.wire_accounting then None
      else
        Some
          (fun ~recipient ~src payload ->
            let bits = P.encoded_bits payload in
            Ubpa_obs.Wire.record t.wire ~round:t.round ~sender:src ~recipient
              ~kind:(kind_of payload) ~bits;
            Metrics.record_wire t.metrics ~round:t.round ~bits)
    in
    let inboxes, delivered =
      match t.arena with
      | Some state when not faulty ->
          (* Cursor fast path: scan + seal, no map, no fan-out. Inboxes
             are expanded one node at a time as the step loop reads them.
             Fault plans fall through to the map path below so the
             post-route filters (and their [frng] draw order) stay
             byte-identical with the other cores. *)
          let view =
            Delivery.route_arena ?on_deliver ~state ~equal:P.equal_message
              ~present ~envelopes ()
          in
          (Sliced view, Delivery.view_delivered view)
      | Some state ->
          let view =
            Delivery.route_arena ?on_deliver ~state ~equal:P.equal_message
              ~present ~envelopes ()
          in
          (Mapped (Delivery.view_to_map view), Delivery.view_delivered view)
      | None ->
          let inboxes, delivered =
            Delivery.route ?on_deliver ~interner:(Some t.intr)
              ~impl:t.delivery ~equal:P.equal_message ~present ~envelopes ()
          in
          (Mapped inboxes, delivered)
    in
    (* Receive-omission is per recipient, after routing: a broadcast may be
       lost at one victim and arrive everywhere else. *)
    let inboxes, delivered =
      if not faulty then (inboxes, delivered)
      else
        match inboxes with
        | Sliced _ -> (inboxes, delivered) (* unreachable: faulty => Mapped *)
        | Mapped mapped ->
            let mapped, delivered = fault_filter t mapped delivered in
            (Mapped mapped, delivered)
    in
    Metrics.record_delivered t.metrics ~round:t.round delivered;
    inboxes

  and fault_filter t inboxes delivered =
        let dropped = ref 0 in
        let inboxes =
          Node_id.Map.mapi
            (fun dst inbox ->
              let p =
                Ubpa_faults.recv_omission_prob t.faults ~node:dst
                  ~round:t.round
              in
              let inbox =
                if p <= 0. then inbox
                else
                  List.filter
                    (fun (src, payload) ->
                      if Rng.float t.frng 1.0 < p then begin
                        incr dropped;
                        if Trace.enabled t.tr then
                          Trace.recordf t.tr ~round:t.round ~node:dst
                            ~kind:Trace.Fault
                            "fault: recv-omission drop from %a: %a" Node_id.pp
                            src P.pp_message payload;
                        false
                      end
                      else true)
                    inbox
              in
              (* A delayed envelope misses its delivery round; the
                 synchronous engine has no late slot, so it is dropped.
                 No randomness is drawn unless a delay window is active,
                 keeping delay-free plans bit-reproducible. *)
              match Ubpa_faults.delay_spec t.faults ~node:dst ~round:t.round with
              | None -> inbox
              | Some (dp, dr) ->
                  List.filter
                    (fun (src, payload) ->
                      if Rng.float t.frng 1.0 < dp then begin
                        incr dropped;
                        if Trace.enabled t.tr then
                          Trace.recordf t.tr ~round:t.round ~node:dst
                            ~kind:Trace.Fault
                            "fault: delay +%dr (missed its round) from %a: %a"
                            dr Node_id.pp src P.pp_message payload;
                        false
                      end
                      else true)
                    inbox)
            inboxes
        in
        (inboxes, delivered - !dropped)

  let step_round_untimed t =
    t.round <- t.round + 1;
    Metrics.tick_round t.metrics;
    apply_membership t;
    if not (Ubpa_faults.is_empty t.faults) then apply_fault_transitions t;
    let present =
      Node_id.Set.union
        (Node_id.Set.of_list (active_correct t))
        (Node_id.Set.of_list (byzantine_ids t))
    in
    let inboxes = deliver t ~present in
    let inbox_of id =
      match inboxes with
      | Mapped m -> (
          match Node_id.Map.find_opt id m with Some l -> l | None -> [])
      | Sliced view -> Delivery.view_inbox view id
    in
    (* Correct nodes first (their sends feed the rushing adversary). *)
    let correct_sends = ref [] in
    let faulty = not (Ubpa_faults.is_empty t.faults) in
    List.iter
      (fun n ->
        let stim = t.stimulus ~round:t.round n.c_id in
        let state, sends, status =
          P.step ~self:n.c_id ~round:t.round ~stim n.c_state
            ~inbox:(inbox_of n.c_id)
        in
        n.c_state <- state;
        let omit_p =
          if faulty then
            Ubpa_faults.send_omission_prob t.faults ~node:n.c_id
              ~round:t.round
          else 0.
        in
        List.iter
          (fun (dst, payload) ->
            let env = { Envelope.src = n.c_id; dst; payload } in
            if omit_p > 0. && Rng.float t.frng 1.0 < omit_p then begin
              if Trace.enabled t.tr then
                Trace.recordf t.tr ~round:t.round ~node:n.c_id
                  ~kind:Trace.Fault "fault: send-omission drop %a"
                  (Envelope.pp P.pp_message) env
            end
            else begin
              Metrics.record_send t.metrics ~byzantine:false;
              (match t.classify with
              | Some f -> Metrics.record_kind t.metrics (f payload)
              | None -> ());
              if Trace.enabled t.tr then
                Trace.recordf t.tr ~round:t.round ~node:n.c_id
                  ~kind:Trace.Send "send %a" (Envelope.pp P.pp_message) env;
              correct_sends := env :: !correct_sends
            end)
          sends;
        (match status with
        | Protocol.Continue -> ()
        | Protocol.Deliver out ->
            if n.c_first_output_round = None then
              n.c_first_output_round <- Some t.round;
            n.c_last_output <- Some out;
            Trace.recordf t.tr ~round:t.round ~node:n.c_id ~kind:Trace.Output
              "output"
        | Protocol.Stop out ->
            if n.c_first_output_round = None then
              n.c_first_output_round <- Some t.round;
            n.c_last_output <- Some out;
            n.c_halted_at <- Some t.round;
            Trace.recordf t.tr ~round:t.round ~node:n.c_id ~kind:Trace.Halt
              "halt"))
      (active_correct_nodes t);
    let rushing_view =
      if t.rushing then
        List.rev_map
          (fun (env : P.message Envelope.t) -> (env.src, env.dst, env.payload))
          !correct_sends
      else []
    in
    let correct_now = active_correct t in
    let byz_now = byzantine_ids t in
    let byz_sends = ref [] in
    Node_id.Map.iter
      (fun _ b ->
        let view =
          {
            Strategy.round = t.round;
            self = b.b_id;
            correct = correct_now;
            byzantine = byz_now;
            inbox = inbox_of b.b_id;
            rushing = rushing_view;
            equal_message = P.equal_message;
          }
        in
        List.iter
          (fun (dst, payload) ->
            Metrics.record_send t.metrics ~byzantine:true;
            let env = { Envelope.src = b.b_id; dst; payload } in
            if Trace.enabled t.tr then
              Trace.recordf t.tr ~round:t.round ~node:b.b_id
                ~kind:Trace.Byz_send "byz-send %a" (Envelope.pp P.pp_message)
                env;
            byz_sends := env :: !byz_sends)
          (b.b_act view))
      t.byzantine;
    t.pending <- !byz_sends @ !correct_sends;
    if t.dup_next <> [] then begin
      (* Reversed like [pending]; prepending re-delivers the duplicates
         after next round's fresh traffic. *)
      t.pending <- t.dup_next @ t.pending;
      t.dup_next <- []
    end

  let step_round t =
    let t0 = Clock.now_ms () in
    step_round_untimed t;
    Metrics.record_round_time t.metrics ~round:t.round
      (Clock.elapsed_ms ~since:t0)

  let all_halted t =
    (* A node the fault plan keeps down forever (crash-stop, leave with no
       rejoin) can never halt; it is written off rather than spinning the
       run to max_rounds. *)
    Node_id.Map.for_all
      (fun id n ->
        n.c_halted_at <> None
        || n.c_down_since <> None
           && Ubpa_faults.permanently_down t.faults ~node:id ~round:t.round)
      t.correct
    && t.queued_joins = []

  let stalled t =
    Node_id.Map.fold
      (fun id n acc -> if n.c_halted_at = None then id :: acc else acc)
      t.correct []
    |> List.rev

  let has_correct t =
    (not (Node_id.Map.is_empty t.correct))
    || List.exists
         (function Join_correct _ -> true | Join_byzantine _ -> false)
         t.queued_joins

  let run ?(max_rounds = 10_000) t =
    (* Correct nodes are never removed and [run] itself admits no joins, so
       a network with no correct node (present or queued) stays that way:
       report it instead of vacuously claiming everyone halted. *)
    if not (has_correct t) then `No_correct_nodes
    else
      let rec go () =
        if all_halted t then `All_halted
        else if t.round >= max_rounds then `Max_rounds_reached (stalled t)
        else begin
          step_round t;
          go ()
        end
      in
      go ()

  let run_until ?(max_rounds = 10_000) t ~stop =
    let rec go () =
      if stop t then `Stopped
      else if t.round >= max_rounds then `Max_rounds_reached (stalled t)
      else begin
        step_round t;
        go ()
      end
    in
    go ()

  let round t = t.round
  let metrics t = t.metrics
  let wire t = t.wire
  let trace t = t.tr

  let report t id =
    match Node_id.Map.find_opt id t.correct with
    | None -> raise Not_found
    | Some n ->
        {
          id = n.c_id;
          joined_at = n.c_joined_at;
          first_output_round = n.c_first_output_round;
          last_output = n.c_last_output;
          halted_at = n.c_halted_at;
          down_since = n.c_down_since;
        }

  let reports t = List.map (report t) (correct_ids t)

  let states t =
    List.map
      (fun id -> (id, (Node_id.Map.find id t.correct).c_state))
      (correct_ids t)

  let outputs t =
    List.filter_map
      (fun r -> Option.map (fun o -> (r.id, o)) r.last_output)
      (reports t)
end
