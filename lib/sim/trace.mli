(** Structured execution traces.

    A trace records engine events (joins, sends, deliveries, decisions) so
    tests and the CLI can inspect or pretty-print what happened. Disabled
    traces are free. *)

open Ubpa_util

type event = {
  round : int;
  node : Node_id.t option;  (** [None] for engine-level events. *)
  what : string;
}

type t

val create : ?live:bool -> unit -> t
(** [live] additionally prints each event as it is recorded. *)

val disabled : t
(** A shared sink that records nothing. *)

val record : t -> round:int -> ?node:Node_id.t -> string -> unit
val recordf :
  t -> round:int -> ?node:Node_id.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val enabled : t -> bool
(** False only for {!disabled}; lets hot paths skip formatting. *)

val events : t -> event list
(** In order of recording. *)

val find : t -> f:(event -> bool) -> event option
val pp : Format.formatter -> t -> unit
