(** Structured execution traces.

    A trace records engine events (joins, sends, deliveries, decisions) so
    tests, the CLI, and the bench pipeline can inspect, pretty-print, or
    serialize what happened. Every event carries a typed {!kind} in
    addition to its human-readable description, so consumers no longer
    have to parse the description strings. Disabled traces are free. *)

open Ubpa_util

type kind =
  | Join  (** A node joined (correct or Byzantine). *)
  | Leave  (** The adversary withdrew a Byzantine node. *)
  | Send  (** A correct node emitted an envelope. *)
  | Byz_send  (** A Byzantine node emitted an envelope. *)
  | Output  (** A correct node produced (non-final) output. *)
  | Halt  (** A correct node halted with final output. *)
  | Fault  (** An injected benign fault took effect ({!Ubpa_faults}). *)
  | Engine  (** Engine-level bookkeeping; also the default. *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type event = {
  round : int;
  node : Node_id.t option;  (** [None] for engine-level events. *)
  kind : kind;
  what : string;
}

type t

val create : ?live:bool -> unit -> t
(** [live] additionally prints each event as it is recorded. *)

val disabled : t
(** A shared sink that records nothing. *)

val subscribe : t -> (event -> unit) -> unit
(** [subscribe t f] calls [f] on every event the moment it is recorded —
    the hook online monitors ({!Ubpa_monitor}) attach to. Subscribers run
    in subscription order, after the event is stored. Raises
    [Invalid_argument] on {!disabled}, which never records anything. *)

val record : t -> round:int -> ?node:Node_id.t -> ?kind:kind -> string -> unit
(** [kind] defaults to [Engine]. *)

val recordf :
  t ->
  round:int ->
  ?node:Node_id.t ->
  ?kind:kind ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a

val enabled : t -> bool
(** False only for {!disabled}; lets hot paths skip formatting. *)

val events : t -> event list
(** In order of recording. *)

val find : t -> f:(event -> bool) -> event option
val pp : Format.formatter -> t -> unit

val of_events : event list -> t
(** A fresh enabled trace holding exactly [events], in order — how offline
    tooling (the networked runtime, [ubpa trace --diff]) materializes a
    trace it assembled event by event. *)

(** {2 Comparison}

    The networked runtime claims {e trace equivalence} with the lockstep
    simulator; these helpers are the comparison primitive behind that
    claim and behind [ubpa trace --diff]. *)

val equal_event : event -> event -> bool
(** All four fields equal. *)

val equal_events : event list -> event list -> bool

type diff = {
  first_divergence : (int * event option * event option) option;
      (** [(index, a, b)] of the first position where the streams differ;
          [None] on one side means that stream ended first. [None] overall
          means the streams are identical. *)
  kind_counts : (string * int * int) list;
      (** Per-kind event counts [(kind, count_a, count_b)] for every kind
          present in either stream, in declaration order. *)
  length_a : int;
  length_b : int;
}

val diff_events : event list -> event list -> diff

(** {2 Serialization} *)

val event_to_json : event -> Json.t
(** [{"round", "node" (or null), "kind", "what"}]. *)

val event_of_json : Json.t -> (event, string) result
val to_json : t -> Json.t

val to_jsonl : t -> string
(** One compact JSON object per line, in order of recording — the trace
    interchange format written by [--trace-jsonl] style tooling. *)

val of_jsonl : string -> (event list, string) result
(** Parse a JSONL trace back into events ([ubpa trace --file] reads
    these). Blank lines are skipped; the first malformed line fails the
    whole parse with its line number. Inverse of {!to_jsonl}. *)
