(** Run metrics: rounds executed and message complexity.

    Messages are counted in two ways: [sends] counts send operations (one
    per broadcast instruction), [delivered] counts point-to-point deliveries
    (a broadcast to [k] present nodes contributes [k]). Message-complexity
    tables use [delivered], matching the convention of the classic papers. *)

type t

val create : unit -> t
val rounds : t -> int
val sends_correct : t -> int
val sends_byzantine : t -> int
val delivered : t -> int
val delivered_per_round : t -> (int * int) list
(** [(round, delivered-in-that-round)] rows, ascending. *)

val kinds : t -> (string * int) list
(** Per-message-kind send counts, sorted by kind; populated only when the
    engine was created with a [classify] function. *)

(** Engine-side recording. *)

val tick_round : t -> unit
val record_send : t -> byzantine:bool -> unit
val record_kind : t -> string -> unit
val record_delivered : t -> round:int -> int -> unit

val pp : Format.formatter -> t -> unit
