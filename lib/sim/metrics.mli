(** Run metrics: rounds executed, message complexity, and wall-clock time.

    Messages are counted in two ways: [sends] counts send operations (one
    per broadcast instruction), [delivered] counts point-to-point deliveries
    (a broadcast to [k] present nodes contributes [k]). Message-complexity
    tables use [delivered], matching the convention of the classic papers.

    The engine additionally records how long each round took on the wall
    clock, so benchmark artifacts can track the perf trajectory of the
    simulator itself. *)

open Ubpa_util

type t

val create : unit -> t
val rounds : t -> int
val sends_correct : t -> int
val sends_byzantine : t -> int
val delivered : t -> int
val delivered_per_round : t -> (int * int) list
(** [(round, delivered-in-that-round)] rows, ascending. *)

val kinds : t -> (string * int) list
(** Per-message-kind send counts, sorted by kind; populated only when the
    engine was created with a [classify] function. *)

val elapsed_ms : t -> float
(** Total wall-clock milliseconds spent executing rounds. *)

val round_times_ms : t -> (int * float) list
(** [(round, wall-clock-ms)] rows, ascending. *)

(** Engine-side recording. *)

val tick_round : t -> unit
val record_send : t -> byzantine:bool -> unit
val record_kind : t -> string -> unit
val record_delivered : t -> round:int -> int -> unit

val record_round_time : t -> round:int -> float -> unit
(** Wall-clock milliseconds the given round took. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Stable schema:
    [{"rounds", "sends_correct", "sends_byzantine", "delivered",
      "elapsed_ms", "delivered_per_round": [[round, count], ...],
      "round_times_ms": [[round, ms], ...], "kinds": {kind: count}}]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; used by artifact tooling and tests. *)
