(** Run metrics: rounds executed, message complexity, and wall-clock time.

    Messages are counted in two ways: [sends] counts send operations (one
    per broadcast instruction), [delivered] counts point-to-point deliveries
    (a broadcast to [k] present nodes contributes [k]). Message-complexity
    tables use [delivered], matching the convention of the classic papers.

    The engine additionally records how long each round took on the wall
    clock, so benchmark artifacts can track the perf trajectory of the
    simulator itself. *)

open Ubpa_util

type t

val create : unit -> t
val rounds : t -> int
val sends_correct : t -> int
val sends_byzantine : t -> int
val delivered : t -> int
val delivered_per_round : t -> (int * int) list
(** [(round, delivered-in-that-round)] rows, ascending. *)

val wire_msgs : t -> int
(** Messages that crossed the wire: deduplicated deliveries {e before}
    receive-omission faults (the message was transmitted even if a faulty
    receiver then dropped it). Equals [delivered] under fault-free runs. *)

val wire_bits : t -> int
(** Total bits that crossed the wire, priced by the protocol's
    [encoded_bits]; same pre-receive-omission semantics as
    {!wire_msgs}. *)

val wire_bits_per_round : t -> (int * int) list
(** [(round, wire-bits-in-that-round)] rows, ascending. *)

val kinds : t -> (string * int) list
(** Per-message-kind send counts, sorted by kind; populated only when the
    engine was created with a [classify] function. *)

val elapsed_ms : t -> float
(** Total wall-clock milliseconds spent executing rounds. *)

val round_times_ms : t -> (int * float) list
(** [(round, wall-clock-ms)] rows, ascending. *)

(** Engine-side recording. *)

val tick_round : t -> unit
val record_send : t -> byzantine:bool -> unit
val record_kind : t -> string -> unit
val record_delivered : t -> round:int -> int -> unit

val record_wire : t -> round:int -> bits:int -> unit
(** One message of the given size crossed the wire. *)

val record_round_time : t -> round:int -> float -> unit
(** Wall-clock milliseconds the given round took. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Stable schema:
    [{"rounds", "sends_correct", "sends_byzantine", "delivered",
      "wire_msgs", "wire_bits", "elapsed_ms",
      "delivered_per_round": [[round, count], ...],
      "wire_bits_per_round": [[round, bits], ...],
      "round_times_ms": [[round, ms], ...], "kinds": {kind: count}}]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; used by artifact tooling and tests. The wire
    fields are optional on input (they postdate the v1 artifacts) and
    default to zero/empty. *)
